#!/usr/bin/env python3
"""Diff Google Benchmark JSON results against a checked-in baseline.

Two kinds of comparison, matching what the lplow benches report:

* deterministic counters (rounds, KB, max_load_KB, iters, threads, ...):
  fixed seeds make these machine-independent, so any drift is a real
  behavior change — it is reported exactly;
* real_time: machine-dependent, so it is compared as a ratio and only
  flagged beyond --max-regression (default 1.5x slower).

Counters whose name ends in _p50/_p90/_p99/_mean are latency-derived
(histogram percentiles, timer means — see docs/runtime.md §"Tracing and
histograms"), and _rpt marks other machine-dependent exports (e.g. which
scan-kernel variant CPU dispatch picked): like real_time they are printed
as `report` lines and never count as drift, even under --strict.

Exit status is 0 unless a gating mode is given:

* --strict fails on counter drift OR a flagged time regression (local use);
* --strict-counters fails on counter drift only, leaving timings
  report-only — this is what the bench-perf CI job runs, because the
  counters are machine-independent under fixed seeds while runner timing
  is noisy.

Usage:
  bench_compare.py --baseline bench/baselines/baseline.json out/*.json
  bench_compare.py --update --baseline bench/baselines/baseline.json out/*.json

The baseline file is a distilled {benchmark name -> {real_time, time_unit,
counters}} map produced by --update from raw --benchmark_out files.
"""

import argparse
import json
import sys

# Google Benchmark JSON keys that are not user counters.
NON_COUNTER_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "family_index", "per_family_instance_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "items_per_second",
    "bytes_per_second", "label", "error_occurred", "error_message",
    "aggregate_name", "aggregate_unit", "big_o", "rms",
}


def load_results(paths):
    """Distills raw benchmark_out files into {name: record}."""
    results = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            counters = {
                key: value
                for key, value in bench.items()
                if key not in NON_COUNTER_KEYS and isinstance(value, (int, float))
            }
            results[bench["name"]] = {
                "real_time": bench.get("real_time"),
                "time_unit": bench.get("time_unit", "ns"),
                "counters": counters,
            }
    return results


# Exported counters with these suffixes carry machine-dependent values:
# wall-time-derived (_p50/_p90/_p99/_mean: histogram percentiles, timer
# means) or hardware-dispatch-dependent (_rpt: e.g. the violator-scan
# vector-block/scalar-lane tallies, which vary with CPU features and
# LPLOW_FORCE_SCALAR_SCAN). Report-only, never gated.
REPORT_ONLY_SUFFIXES = ("_p50", "_p90", "_p99", "_mean", "_rpt")

# Keys every distilled record (baseline entry or load_results output) must
# carry for compare() to work.
REQUIRED_RECORD_KEYS = ("real_time", "time_unit", "counters")


def check_records(label, records):
    """Returns a diagnostic naming the offending entry and key, or None.

    A baseline written by an older tool version (or hand-edited) can lack a
    record key; without this check that surfaces as a KeyError stack trace
    deep inside compare().
    """
    if not isinstance(records, dict):
        return f"{label} is not a JSON object of benchmark records"
    for name, record in records.items():
        if not isinstance(record, dict):
            return f"{label} entry '{name}' is not an object"
        for key in REQUIRED_RECORD_KEYS:
            if key not in record:
                return (f"{label} entry '{name}' is missing key '{key}' "
                        f"(regenerate with --update?)")
        if not isinstance(record["counters"], dict):
            return f"{label} entry '{name}' key 'counters' is not an object"
        if record["real_time"] is not None and not isinstance(
                record["real_time"], (int, float)):
            return f"{label} entry '{name}' key 'real_time' is not a number"
        if not isinstance(record["time_unit"], str):
            return f"{label} entry '{name}' key 'time_unit' is not a string"
    return None


def compare(baseline, current, max_regression, counter_rel_tol):
    """Returns (report lines, drift count, regression count)."""
    lines = []
    drift = 0
    regressions = 0
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            lines.append(f"MISSING  {name}: in baseline but not in results")
            drift += 1
            continue
        if name not in baseline:
            lines.append(f"NEW      {name}: not in baseline (run --update)")
            continue
        base, cur = baseline[name], current[name]

        for key in sorted(set(base["counters"]) | set(cur["counters"])):
            b = base["counters"].get(key)
            c = cur["counters"].get(key)
            if key.endswith(REPORT_ONLY_SUFFIXES):
                if b is not None and c is not None and b != c:
                    lines.append(f"report   {name} [{key}]: {b:g} -> {c:g}")
                continue
            if b is None or c is None:
                lines.append(f"DRIFT    {name} [{key}]: {b} -> {c}")
                drift += 1
                continue
            tol = counter_rel_tol * max(abs(b), 1e-12)
            if abs(c - b) > tol:
                lines.append(f"DRIFT    {name} [{key}]: {b:g} -> {c:g}")
                drift += 1

        b_time, c_time = base["real_time"], cur["real_time"]
        if b_time and c_time and base["time_unit"] == cur["time_unit"]:
            ratio = c_time / b_time
            marker = "ok"
            if ratio > max_regression:
                marker = "REGRESSION"
                regressions += 1
            elif ratio < 1.0 / max_regression:
                marker = "improved"
            lines.append(
                f"{marker:<9}{name}: {b_time:.3g} -> {c_time:.3g} "
                f"{cur['time_unit']} ({ratio:.2f}x)")
    return lines, drift, regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="distilled baseline JSON (see --update)")
    parser.add_argument("results", nargs="+",
                        help="raw --benchmark_out JSON files")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the results and exit")
    parser.add_argument("--max-regression", type=float, default=1.5,
                        help="flag real_time slower than this ratio "
                             "(default 1.5)")
    parser.add_argument("--counter-rel-tol", type=float, default=0.0,
                        help="relative tolerance for counter drift "
                             "(default 0 = exact)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on counter drift or time regression")
    parser.add_argument("--strict-counters", action="store_true",
                        help="exit 1 on counter drift only (timings stay "
                             "report-only); the CI gating mode")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SUBSTRING",
                        help="fail unless some result benchmark name "
                             "contains SUBSTRING (repeatable); guards CI "
                             "against a bench silently dropping out of the "
                             "run matrix")
    args = parser.parse_args()

    current = load_results(args.results)
    if not current:
        print("bench_compare: no benchmark records in results", file=sys.stderr)
        return 1

    missing = [req for req in args.require
               if not any(req in name for name in current)]
    if missing:
        for req in missing:
            print(f"bench_compare: --require '{req}' matched no result "
                  f"benchmark name", file=sys.stderr)
        return 1

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(current, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"bench_compare: wrote {len(current)} baselines to "
              f"{args.baseline}")
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot load baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2

    for label, records in (("baseline", baseline), ("results", current)):
        error = check_records(label, records)
        if error:
            print(f"bench_compare: {error}", file=sys.stderr)
            return 2

    lines, drift, regressions = compare(
        baseline, current, args.max_regression, args.counter_rel_tol)
    print("\n".join(lines))
    print(f"\nbench_compare: {len(current)} benchmarks, {drift} counter "
          f"drift(s), {regressions} time regression(s) "
          f"(threshold {args.max_regression:.2f}x)")
    if args.strict and (drift or regressions):
        return 1
    if args.strict_counters and drift:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Guard for the quick/slow test-label split: runs `ctest -L quick` and fails
# if the lane's wall time exceeds the budget (default 60 s). ROADMAP promises
# a sub-minute quick inner loop; this keeps the promise honest as suites
# grow — a test that belongs under the `slow` label shows up here as a
# budget failure instead of silently bloating everyone's inner loop.
#
# Usage: scripts/check_quick_lane.sh [build-dir]
#   LPLOW_QUICK_LANE_BUDGET_SECONDS overrides the budget.
set -euo pipefail

build_dir="${1:-build}"
budget="${LPLOW_QUICK_LANE_BUDGET_SECONDS:-60}"

start=$(date +%s)
ctest --test-dir "$build_dir" -L quick --output-on-failure -j "$(nproc)"
elapsed=$(( $(date +%s) - start ))

echo "check_quick_lane: quick lane took ${elapsed}s (budget ${budget}s)"
if [ "$elapsed" -gt "$budget" ]; then
  echo "check_quick_lane: FAIL — quick lane exceeded its ${budget}s budget." >&2
  echo "Move the offending suite under the 'slow' label" \
       "(tests/CMakeLists.txt, LPLOW_SLOW_TESTS) or shrink it." >&2
  exit 1
fi

#!/usr/bin/env sh
# One-command inner loop: configure (if needed), build, run the quick tests.
#
#   scripts/dev.sh            # quick label only (sub-minute)
#   scripts/dev.sh all        # full suite, including the slow suites
#   scripts/dev.sh asan       # quick label under ASan/UBSan
#   scripts/dev.sh tsan       # concurrency suites under ThreadSanitizer
set -eu

cd "$(dirname "$0")/.."
mode="${1:-quick}"

case "$mode" in
  asan)
    build=build-asan
    cmake_flags="-DCMAKE_BUILD_TYPE=Debug -DLPLOW_SANITIZE=address"
    ctest_flags="-L quick"
    ;;
  tsan)
    build=build-tsan
    cmake_flags="-DCMAKE_BUILD_TYPE=Debug -DLPLOW_SANITIZE=thread"
    ctest_flags="-R runtime_test|runtime_stress_test|coordinator_test|mpc_test|models_edge_test"
    # Full-size stress (180 jobs) overruns the CTest timeout under TSan.
    export LPLOW_STRESS_JOBS_PER_KIND="${LPLOW_STRESS_JOBS_PER_KIND:-6}"
    ;;
  all)
    build=build
    cmake_flags="-DCMAKE_BUILD_TYPE=Release"
    ctest_flags=""
    ;;
  quick)
    build=build
    cmake_flags="-DCMAKE_BUILD_TYPE=Release"
    ctest_flags="-L quick"
    ;;
  *)
    echo "usage: scripts/dev.sh [quick|all|asan|tsan]" >&2
    exit 2
    ;;
esac

[ -f "$build/CMakeCache.txt" ] || cmake -B "$build" -S . $cmake_flags
cmake --build "$build" -j "$(nproc)"
# shellcheck disable=SC2086  # ctest_flags is intentionally word-split.
ctest --test-dir "$build" --output-on-failure -j "$(nproc)" $ctest_flags

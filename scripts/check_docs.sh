#!/usr/bin/env bash
# Docs cross-reference checker: fails if any checked markdown file contains
# a dangling reference, so renames and deletions cannot silently rot the
# documentation. Runs in the release CI lane.
#
# Two kinds of reference are verified in README.md, bench/README.md, and
# every docs/*.md:
#
#   1. relative markdown links `[text](path)` (external http(s)/mailto links
#      and pure #anchors are skipped), resolved against the file's own
#      directory;
#   2. repo paths mentioned in prose or backticks — any
#      src/|scripts/|tests/|bench/|examples/|docs/|data/ token ending in a
#      known extension, plus the same prefixes with a trailing slash naming
#      a directory — resolved against the repo root.
#
# The script self-tests first: a synthetic doc with a dangling link and a
# dangling path MUST fail the checker, so a regression in the checker
# itself (e.g. a broken regex silently matching nothing) also fails CI.
#
# Usage: scripts/check_docs.sh [repo-root]
set -euo pipefail

root="$(cd "${1:-$(dirname "$0")/..}" && pwd)"

# Extensions a bare path mention must end in to be checked (keeps prose like
# "src/models/..." or shell globs out of scope). Each token must start at a
# non-path-character boundary so e.g. `integration-tests/runner.sh` is not
# misread as the repo path `tests/runner.sh`; the boundary character is
# stripped again after extraction.
boundary='(^|[^A-Za-z0-9_./-])'
path_regex="$boundary"'(src|scripts|tests|bench|examples|docs|data)/[A-Za-z0-9_./-]*[A-Za-z0-9_]\.(h|cc|md|sh|py|json|lp|txt|yml)'
dir_regex="$boundary"'(src|scripts|tests|bench|examples|docs|data)(/[A-Za-z0-9_-]+)*/'

# check_one <markdown-file> <root-for-repo-paths>; prints each dangling
# reference, returns non-zero if any.
check_one() {
  local doc="$1" repo="$2" bad=0 target resolved
  local doc_dir
  doc_dir="$(dirname "$doc")"

  # --- relative markdown links.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    target="${target%%#*}"           # Strip in-page anchors.
    [ -n "$target" ] || continue
    resolved="$doc_dir/$target"
    if [ ! -e "$resolved" ]; then
      echo "DANGLING LINK  $doc: ($target)"
      bad=1
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$doc" 2>/dev/null \
             | sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/' | sort -u)

  # --- repo path mentions (files with known extensions, and directories
  # written with a trailing slash).
  while IFS= read -r target; do
    if [ ! -e "$repo/$target" ]; then
      echo "DANGLING PATH  $doc: $target"
      bad=1
    fi
  done < <({ grep -oE "$path_regex" "$doc" 2>/dev/null;
             grep -oE "$dir_regex" "$doc" 2>/dev/null; } \
             | sed -E 's|^[^A-Za-z0-9_./-]||' | sort -u)

  return $bad
}

# ------------------------------------------------------------- self-test
# The checker must FAIL on a doc with dangling references; a checker that
# passes everything is itself a bug.
selftest_dir="$(mktemp -d)"
trap 'rm -rf "$selftest_dir"' EXIT
cat > "$selftest_dir/bad.md" <<'EOF'
A [dangling link](no-such-file.md) and a dangling path mention:
`src/models/definitely_not_real.h`.
EOF
if check_one "$selftest_dir/bad.md" "$root" > /dev/null; then
  echo "check_docs: SELF-TEST FAILED — dangling references were not detected" >&2
  exit 1
fi
cat > "$selftest_dir/good.md" <<'EOF'
A fine link: [bad](bad.md); a fine path: `scripts/check_docs.sh`.
scripts/check_docs.sh also resolves at line start. Hyphenated or nested
names like integration-tests/runner.sh and testdata/missing.json are NOT
repo paths and must not be flagged.
EOF
if ! check_one "$selftest_dir/good.md" "$root" > /dev/null; then
  echo "check_docs: SELF-TEST FAILED — clean doc was flagged" >&2
  exit 1
fi

# ---------------------------------------------------------- the real docs
docs=("$root/README.md" "$root/bench/README.md")
for f in "$root"/docs/*.md; do
  docs+=("$f")
done

failures=0
for doc in "${docs[@]}"; do
  check_one "$doc" "$root" || failures=1
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs: FAIL — fix the dangling references above (or update the" >&2
  echo "docs when renaming files; this check runs in the release CI lane)." >&2
  exit 1
fi
echo "check_docs: OK — ${#docs[@]} files, all cross-references resolve."

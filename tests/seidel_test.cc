#include "src/solvers/seidel.h"

#include <gtest/gtest.h>

#include "src/solvers/vertex_enum.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

TEST(SeidelTest, UnconstrainedHitsBoxCorner) {
  SolverConfig cfg;
  cfg.box_bound = 100;
  SeidelSolver solver(cfg);
  LpSolution s = solver.Solve({}, Vec{1, 1});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.point[0], -100, 1e-9);
  EXPECT_NEAR(s.point[1], -100, 1e-9);
}

TEST(SeidelTest, SingleConstraint2d) {
  // min x + y s.t. -x - y <= -1 (x + y >= 1): optimum value 1.
  SeidelSolver solver;
  LpSolution s = solver.Solve({Halfspace(Vec{-1, -1}, -1)}, Vec{1, 1});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(SeidelTest, KnownVertexOptimum) {
  // min -x - y s.t. x <= 3, y <= 4: optimum (3, 4).
  SeidelSolver solver;
  LpSolution s = solver.Solve(
      {Halfspace(Vec{1, 0}, 3), Halfspace(Vec{0, 1}, 4)}, Vec{-1, -1});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.point[0], 3, 1e-7);
  EXPECT_NEAR(s.point[1], 4, 1e-7);
  EXPECT_NEAR(s.objective, -7, 1e-7);
}

TEST(SeidelTest, DetectsInfeasible) {
  SeidelSolver solver;
  LpSolution s = solver.Solve(
      {Halfspace(Vec{1, 0}, -5), Halfspace(Vec{-1, 0}, -5)}, Vec{1, 0});
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(SeidelTest, ZeroNormalFeasibleConstraintIgnored) {
  SeidelSolver solver;
  LpSolution s =
      solver.Solve({Halfspace(Vec{0, 0}, 1), Halfspace(Vec{-1, -1}, -1)},
                   Vec{1, 1});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(SeidelTest, ZeroNormalInfeasibleConstraint) {
  SeidelSolver solver;
  LpSolution s = solver.Solve({Halfspace(Vec{0, 0}, -1)}, Vec{1, 1});
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(SeidelTest, DuplicateConstraintsHarmless) {
  SeidelSolver solver;
  std::vector<Halfspace> cs(10, Halfspace(Vec{-1, -1}, -1));
  LpSolution s = solver.Solve(cs, Vec{1, 1});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(SeidelTest, DeterministicForFixedSeed) {
  Rng rng(77);
  auto inst = workload::RandomFeasibleLp(200, 3, &rng);
  SeidelSolver solver;
  LpSolution s1 = solver.Solve(inst.constraints, inst.objective);
  LpSolution s2 = solver.Solve(inst.constraints, inst.objective);
  ASSERT_TRUE(s1.optimal());
  EXPECT_EQ(s1.point.data(), s2.point.data());
}

// --- Property suite: Seidel agrees with brute-force vertex enumeration on
// random instances across dimensions.
struct SeidelParam {
  size_t n;
  size_t d;
  uint64_t seed;
};

class SeidelVsBruteForce : public ::testing::TestWithParam<SeidelParam> {};

TEST_P(SeidelVsBruteForce, ObjectiveMatches) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  auto inst = workload::RandomFeasibleLp(p.n, p.d, &rng);
  SolverConfig cfg;
  cfg.box_bound = 1e4;  // Keep vertex enumeration well-conditioned.
  SeidelSolver seidel(cfg);
  VertexEnumSolver brute(cfg);
  LpSolution fast = seidel.Solve(inst.constraints, inst.objective);
  LpSolution slow = brute.Solve(inst.constraints, inst.objective);
  ASSERT_TRUE(fast.optimal());
  ASSERT_TRUE(slow.optimal());
  EXPECT_NEAR(fast.objective, slow.objective,
              1e-6 * std::max(1.0, std::fabs(slow.objective)));
}

INSTANTIATE_TEST_SUITE_P(
    RandomLps, SeidelVsBruteForce,
    ::testing::Values(SeidelParam{6, 2, 1}, SeidelParam{12, 2, 2},
                      SeidelParam{25, 2, 3}, SeidelParam{8, 3, 4},
                      SeidelParam{14, 3, 5}, SeidelParam{20, 3, 6},
                      SeidelParam{10, 4, 7}, SeidelParam{15, 4, 8},
                      SeidelParam{12, 5, 9}, SeidelParam{16, 5, 10},
                      SeidelParam{30, 2, 11}, SeidelParam{24, 3, 12}));

// Infeasible random instances are detected as such.
class SeidelInfeasible : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeidelInfeasible, Detected) {
  Rng rng(GetParam());
  auto inst = workload::RandomInfeasibleLp(20, 3, &rng);
  SeidelSolver solver;
  EXPECT_EQ(solver.Solve(inst.constraints, inst.objective).status,
            LpStatus::kInfeasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeidelInfeasible,
                         ::testing::Values(21, 22, 23, 24, 25));

TEST(SeidelTest, LargeInstanceLinearishTime) {
  Rng rng(31);
  auto inst = workload::RandomFeasibleLp(20000, 3, &rng);
  SeidelSolver solver;
  LpSolution s = solver.Solve(inst.constraints, inst.objective);
  ASSERT_TRUE(s.optimal());
  // Every constraint satisfied.
  for (const auto& h : inst.constraints) {
    EXPECT_GE(h.Slack(s.point), -1e-6);
  }
}

}  // namespace
}  // namespace lplow

// Unit tests of the src/engine layer: ConstraintStore/ConstraintView
// weighted storage (sampling draw discipline, scan determinism incl. the
// pool-routed bitmap variants), RefinementPolicy construction parity with
// the paper formulas, the oversized-basis-solve routing, and the
// Rng::ForkStream derivation contract.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/clarkson.h"
#include "src/engine/constraint_store.h"
#include "src/engine/refinement.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using engine::ConstraintStore;
using engine::ConstraintView;
using engine::ViolatorStats;

TEST(ConstraintStoreTest, StartsWithUnitWeights) {
  ConstraintStore<int> store({10, 20, 30});
  EXPECT_EQ(store.size(), 3u);
  auto view = store.View();
  EXPECT_FALSE(view.unit_weights());  // Weighted view, all weights = 1.
  EXPECT_DOUBLE_EQ(view.TotalWeight(), 3.0);
  EXPECT_DOUBLE_EQ(view.weight(1), 1.0);
  EXPECT_EQ(view[2], 30);
}

TEST(ConstraintStoreTest, UnweightedViewHasUnitSemantics) {
  std::vector<int> items = {1, 2, 3, 4};
  ConstraintView<int> view{std::span<const int>(items)};
  EXPECT_TRUE(view.unit_weights());
  EXPECT_DOUBLE_EQ(view.TotalWeight(), 4.0);
  EXPECT_DOUBLE_EQ(view.weight(0), 1.0);
}

TEST(ConstraintStoreTest, ScaleViolatorsMultipliesMatchingWeights) {
  ConstraintStore<int> store({1, 2, 3, 4, 5});
  store.View().ScaleViolators([](int v) { return v % 2 == 0; }, 3.0);
  auto view = store.View();
  EXPECT_DOUBLE_EQ(view.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(view.weight(1), 3.0);
  EXPECT_DOUBLE_EQ(view.weight(3), 3.0);
  EXPECT_DOUBLE_EQ(view.TotalWeight(), 1 + 3 + 1 + 3 + 1);
}

TEST(ConstraintStoreTest, CountViolatorsAscendingOrder) {
  ConstraintStore<int> store({5, -1, 7, -2, 9});
  ViolatorStats st =
      store.View().CountViolators([](int v) { return v < 0; });
  EXPECT_EQ(st.count, 2u);
  EXPECT_DOUBLE_EQ(st.weight, 2.0);
}

TEST(ConstraintStoreTest, CollectViolatorsPreservesIndexOrder) {
  std::vector<int> items = {4, -3, 8, -1, 6};
  ConstraintView<int> view{std::span<const int>(items)};
  auto violated = view.CollectViolators([](int v) { return v < 0; });
  ASSERT_EQ(violated.size(), 2u);
  EXPECT_EQ(violated[0], -3);
  EXPECT_EQ(violated[1], -1);
}

TEST(ConstraintStoreTest, SampleConsumesExactlyCountDraws) {
  ConstraintStore<int> store({1, 2, 3, 4, 5, 6, 7, 8});
  Rng a(42), b(42);
  auto picks = store.View().SampleIndices(5, &a);
  EXPECT_EQ(picks.size(), 5u);
  // Same generator state evolution as five raw uniform draws.
  for (int i = 0; i < 5; ++i) b.UniformDouble();
  EXPECT_EQ(a.engine()(), b.engine()());
}

TEST(ConstraintStoreTest, EmptyViewSamplesNothingAndDrawsNothing) {
  ConstraintStore<int> store;
  Rng a(7), b(7);
  EXPECT_TRUE(store.View().SampleIndices(9, &a).empty());
  EXPECT_EQ(a.engine()(), b.engine()());  // Zero draws consumed.
}

TEST(ConstraintStoreTest, SamplingFollowsWeights) {
  // Weight mass concentrated on index 2: nearly all picks land there.
  ConstraintStore<int> store({0, 1, 2, 3});
  store.View().ScaleViolators([](int v) { return v == 2; }, 1e9);
  Rng rng(3);
  auto picks = store.View().SampleIndices(200, &rng);
  size_t heavy = 0;
  for (size_t p : picks) heavy += p == 2 ? 1 : 0;
  EXPECT_GT(heavy, 195u);
}

TEST(ConstraintStoreTest, PoolScanBitIdenticalToSerial) {
  // Above the parallel threshold with irregular weights: the bitmap scan
  // must reproduce the serial ascending accumulation exactly.
  const size_t n = 3 * engine::kParallelScanMinItems + 17;
  std::vector<int> items(n);
  for (size_t i = 0; i < n; ++i) items[i] = static_cast<int>(i % 1000);
  ConstraintStore<int> store(items);
  store.View().ScaleViolators([](int v) { return v % 3 == 0; }, 1.0 / 3.0);
  auto pred = [](int v) { return v % 7 < 3; };

  ViolatorStats serial = store.View().CountViolators(pred);
  runtime::ThreadPool pool(8);
  ViolatorStats pooled = store.View().CountViolators(&pool, pred);
  EXPECT_EQ(pooled.count, serial.count);
  EXPECT_EQ(pooled.weight, serial.weight);  // Bitwise, not approximate.

  // Pool-routed reweighting must land on exactly the serial weights
  // (compared on a fresh pair: `store` above already carries reweighting).
  ConstraintStore<int> serial_store(items);
  serial_store.View().ScaleViolators(pred, 2.5);
  ConstraintStore<int> pooled_store(items);
  pooled_store.View().ScaleViolators(&pool, pred, 2.5);
  EXPECT_EQ(pooled_store.View().TotalWeight(),
            serial_store.View().TotalWeight());
}

TEST(ConstraintStoreTest, ScaleViolatorsSaturatesAtTheCeiling) {
  // The deterministic transport reweights on EVERY iteration, so it passes
  // a finite ceiling: weights cap there instead of overflowing double, and
  // the pooled variant lands on exactly the serial weights.
  ConstraintStore<int> store({1, 2, 3, 4});
  auto even = [](int v) { return v % 2 == 0; };
  for (int i = 0; i < 5; ++i) {
    store.View().ScaleViolators(even, 10.0, /*ceiling=*/500.0);
  }
  auto view = store.View();
  EXPECT_DOUBLE_EQ(view.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(view.weight(1), 500.0);  // 10^5 capped at 500.
  EXPECT_DOUBLE_EQ(view.weight(3), 500.0);

  const size_t n = engine::kParallelScanMinItems + 13;
  std::vector<int> items(n);
  for (size_t i = 0; i < n; ++i) items[i] = static_cast<int>(i % 100);
  auto pred = [](int v) { return v % 3 == 0; };
  ConstraintStore<int> serial_store(items);
  ConstraintStore<int> pooled_store(items);
  runtime::ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    serial_store.View().ScaleViolators(pred, 7.0, /*ceiling=*/50.0);
    pooled_store.View().ScaleViolators(&pool, pred, 7.0, /*ceiling=*/50.0);
  }
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(pooled_store.View().weight(i), serial_store.View().weight(i));
  }
}

TEST(EnginePolicyTest, MatchesPaperFormulas) {
  auto c = testing_util::MakeFeasibleLpCase(5000, 2, 11);
  const size_t nu = c.problem.CombinatorialDimension();
  const size_t lambda = c.problem.VcDimension();
  EpsNetConfig net;
  auto policy = engine::MakePolicy(c.problem, 5000, 3, net);
  EXPECT_DOUBLE_EQ(policy.eps, AlgorithmEpsilon(nu, 5000, 3));
  EXPECT_DOUBLE_EQ(policy.rate, WeightIncreaseRate(5000, 3));
  EXPECT_EQ(policy.sample_size,
            EpsNetSampleSize(policy.eps, lambda, net, nu + 1, 5000));
}

TEST(EnginePolicyTest, OverridesWinAndSampleSizeClamps) {
  auto c = testing_util::MakeFeasibleLpCase(100, 2, 12);
  auto policy =
      engine::MakePolicy(c.problem, 100, 2, EpsNetConfig{}, /*eps=*/0.25,
                         /*rate=*/2.0, /*sample_size=*/100000);
  EXPECT_DOUBLE_EQ(policy.eps, 0.25);
  EXPECT_DOUBLE_EQ(policy.rate, 2.0);
  EXPECT_EQ(policy.sample_size, 100u);  // Clamped to n.
}

TEST(EnginePolicyTest, ZeroSizeInputEdgeCases) {
  // Edge cases the sampling-free model surfaced: MakePolicy must stay
  // finite at n = 0 (the formulas guard with max(n, 1)), and a sample-size
  // override is clamped to n — so with n = 0 an override yields a
  // ZERO-sample policy, while the paper formula keeps its nu + 1 floor.
  auto c = testing_util::MakeFeasibleLpCase(10, 2, 15);
  const size_t nu = c.problem.CombinatorialDimension();

  auto formula = engine::MakePolicy(c.problem, 0, 2, EpsNetConfig{});
  EXPECT_TRUE(std::isfinite(formula.eps));
  EXPECT_GT(formula.eps, 0.0);
  EXPECT_GE(formula.rate, 1.0);
  EXPECT_GE(formula.sample_size, nu + 1);  // The floor survives n = 0.

  auto overridden = engine::MakePolicy(c.problem, 0, 2, EpsNetConfig{},
                                       /*eps=*/0, /*rate=*/0,
                                       /*sample_size=*/64);
  EXPECT_EQ(overridden.sample_size, 0u);  // min(override, n) with n = 0.
}

// Minimal transport over LinearProgram for engine-loop edge cases: serves a
// fixed undersized sample (so violators always remain), counts hook calls,
// and reports a recognizable cap status.
class StubTransport {
 public:
  using Constraint = Halfspace;
  using Value = LinearProgram::Value;

  StubTransport(const LinearProgram& problem, std::vector<Halfspace> all,
                size_t sample_size)
      : problem_(problem), all_(std::move(all)), sample_size_(sample_size) {}

  Result<std::vector<Halfspace>> NextSample() {
    ++samples_served;
    return std::vector<Halfspace>(all_.begin(), all_.begin() + sample_size_);
  }
  engine::ViolatorScan ScanViolators(
      const BasisResult<Value, Halfspace>& basis) {
    engine::ViolatorScan scan;
    for (const auto& h : all_) {
      scan.total_weight += 1.0;
      if (problem_.Violates(basis.value, h)) {
        scan.violator_weight += 1.0;
        ++scan.violator_count;
      }
    }
    return scan;
  }
  void EndIteration(bool success, const BasisResult<Value, Halfspace>&) {
    ++iterations_closed;
    successes += success ? 1 : 0;
  }
  void OnTerminal() { ++terminals; }
  std::vector<Halfspace> GatherAll() {
    ++gathers;
    return all_;
  }
  Status IterationCapStatus() { return Status::ResourceExhausted("stub cap"); }
  Result<BasisResult<Value, Halfspace>> Finish(
      BasisResult<Value, Halfspace> result) {
    ++finishes;
    return result;
  }

  size_t samples_served = 0;
  size_t iterations_closed = 0;
  size_t successes = 0;
  size_t terminals = 0;
  size_t gathers = 0;
  size_t finishes = 0;

 private:
  const LinearProgram& problem_;
  std::vector<Halfspace> all_;
  size_t sample_size_;
};

/// An instance + policy where the stub's fixed 3-constraint sample always
/// leaves violators, so RunRefinement can only exit through the cap.
struct CapFixture {
  CapFixture()
      : c(testing_util::MakeFeasibleLpCase(2000, 2, 16)),
        transport(c.problem, c.constraints, 3) {
    policy = engine::MakePolicy(c.problem, c.constraints.size(), 2,
                                EpsNetConfig{});
    policy.fallback_to_direct = false;
    counters = engine::IterationCounters{&iterations, &successful,
                                         &direct_solve, &sample_bytes};
  }

  testing_util::LpCase c;
  StubTransport transport;
  engine::RefinementPolicy policy;
  size_t iterations = 0, successful = 0, sample_bytes = 0;
  bool direct_solve = false;
  engine::IterationCounters counters;
};

TEST(EngineRunTest, IterationCapWithoutFallbackReturnsTransportStatus) {
  CapFixture f;
  f.policy.max_iterations = 4;
  auto result =
      engine::RunRefinement(f.c.problem, f.transport, f.policy, f.counters);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(f.iterations, 4u);
  EXPECT_EQ(f.transport.samples_served, 4u);
  EXPECT_EQ(f.transport.iterations_closed, 4u);
  EXPECT_FALSE(f.direct_solve);
  // The cap path must not touch the terminal/fallback hooks.
  EXPECT_EQ(f.transport.terminals, 0u);
  EXPECT_EQ(f.transport.gathers, 0u);
  EXPECT_EQ(f.transport.finishes, 0u);
}

TEST(EngineRunTest, ZeroIterationCapSkipsTheLoopEntirely) {
  // A zero cap (e.g. from an unguarded max_iterations knob) must not crash
  // or sample: without fallback it is an immediate cap status...
  CapFixture f;
  f.policy.max_iterations = 0;
  auto result =
      engine::RunRefinement(f.c.problem, f.transport, f.policy, f.counters);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(f.transport.samples_served, 0u);

  // ...and with fallback it degenerates to gather-everything + direct
  // solve, which still returns the exact optimum (the Las Vegas promise
  // with zero refinement budget).
  CapFixture g;
  g.policy.max_iterations = 0;
  g.policy.fallback_to_direct = true;
  auto recovered =
      engine::RunRefinement(g.c.problem, g.transport, g.policy, g.counters);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(g.direct_solve);
  EXPECT_EQ(g.transport.gathers, 1u);
  EXPECT_EQ(g.transport.finishes, 1u);
  testing_util::ExpectMatchesDirect(g.c.problem, g.c.constraints,
                                    recovered->value, "zero-cap fallback");
}

TEST(EngineBasisSolveTest, PoolRoutedSolveMatchesInline) {
  auto c = testing_util::MakeFeasibleLpCase(6000, 2, 13);
  engine::RefinementPolicy inline_policy;
  inline_policy.oversized_basis_threshold = 4096;
  auto inline_result =
      engine::SolveSampleBasis(c.problem, c.constraints, inline_policy);

  runtime::ThreadPool pool(4);
  engine::RefinementPolicy pooled_policy = inline_policy;
  pooled_policy.pool = &pool;
  auto pooled_result =
      engine::SolveSampleBasis(c.problem, c.constraints, pooled_policy);

  EXPECT_EQ(c.problem.CompareValues(inline_result.value, pooled_result.value),
            0);
  ASSERT_EQ(inline_result.basis.size(), pooled_result.basis.size());
  BitWriter wa, wb;
  for (const auto& h : inline_result.basis) {
    c.problem.SerializeConstraint(h, &wa);
  }
  for (const auto& h : pooled_result.basis) {
    c.problem.SerializeConstraint(h, &wb);
  }
  EXPECT_EQ(wa.Release(), wb.Release());
}

TEST(EngineMetricsTest, MetricsAreRegisteredGlobally) {
  auto& m = engine::GlobalEngineMetrics();
  ASSERT_NE(m.iterations, nullptr);
  ASSERT_NE(m.violator_scan_seconds, nullptr);
  // The registry hands back the same pointers for the engine names.
  auto& registry = runtime::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("engine.iterations"), m.iterations);
  EXPECT_EQ(registry.GetCounter("engine.resample_bytes"), m.resample_bytes);
  EXPECT_EQ(registry.GetTimer("engine.basis_solve_seconds"),
            m.basis_solve_seconds);
}

TEST(RngForkStreamTest, MatchesReTemperedForkDerivation) {
  // ForkStream(i) == Rng(Fork().engine()()): one parent draw consumed, the
  // child seeded from the fork's first output (the coordinator-site
  // derivation the models standardized on).
  Rng parent_a(123), parent_b(123);
  Rng via_helper = parent_a.ForkStream(0);
  Rng via_hand = Rng(parent_b.Fork().engine()());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(via_helper.engine()(), via_hand.engine()());
  }
  // Parent states advanced identically (exactly one draw each).
  EXPECT_EQ(parent_a.engine()(), parent_b.engine()());
}

TEST(EngineNestedParallelismTest, SingleHugeSiteMatchesSerial) {
  // One site holding the whole input pushes the per-site scan above
  // kParallelScanMinItems, so with threads > 1 the site's violator scan and
  // reweighting run as a *nested* ParallelFor inside the SiteExecutor round
  // — the transcript must still be bit-identical to the serial path.
  auto c = testing_util::MakeFeasibleLpCase(20000, 2, 14);
  coord::CoordinatorStats serial_stats;
  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 77;
  auto serial =
      coord::SolveCoordinator(c.problem, {c.constraints}, opt, &serial_stats);
  ASSERT_TRUE(serial.ok());

  opt.runtime.num_threads = 4;
  coord::CoordinatorStats pooled_stats;
  auto pooled =
      coord::SolveCoordinator(c.problem, {c.constraints}, opt, &pooled_stats);
  ASSERT_TRUE(pooled.ok());

  EXPECT_EQ(c.problem.CompareValues(serial->value, pooled->value), 0);
  EXPECT_EQ(serial_stats.total_bytes, pooled_stats.total_bytes);
  EXPECT_EQ(serial_stats.rounds, pooled_stats.rounds);
  EXPECT_EQ(serial_stats.iterations, pooled_stats.iterations);
  EXPECT_EQ(serial_stats.sample_bytes, pooled_stats.sample_bytes);
  BitWriter wa, wb;
  for (const auto& h : serial->basis) c.problem.SerializeConstraint(h, &wa);
  for (const auto& h : pooled->basis) c.problem.SerializeConstraint(h, &wb);
  EXPECT_EQ(wa.Release(), wb.Release());
}

TEST(RngForkStreamTest, SequentialStreamIdsRequired) {
  Rng parent(9);
  Rng s0 = parent.ForkStream(0);
  Rng s1 = parent.ForkStream(1);
  // Sibling streams differ.
  EXPECT_NE(s0.engine()(), s1.engine()());
}

}  // namespace
}  // namespace lplow

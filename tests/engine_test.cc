// Unit tests of the src/engine layer: ConstraintStore/ConstraintView
// weighted storage (sampling draw discipline, scan determinism incl. the
// pool-routed bitmap variants), RefinementPolicy construction parity with
// the paper formulas, the oversized-basis-solve routing, and the
// Rng::ForkStream derivation contract.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/clarkson.h"
#include "src/engine/constraint_store.h"
#include "src/engine/refinement.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using engine::ConstraintStore;
using engine::ConstraintView;
using engine::ViolatorStats;

TEST(ConstraintStoreTest, StartsWithUnitWeights) {
  ConstraintStore<int> store({10, 20, 30});
  EXPECT_EQ(store.size(), 3u);
  auto view = store.View();
  EXPECT_FALSE(view.unit_weights());  // Weighted view, all weights = 1.
  EXPECT_DOUBLE_EQ(view.TotalWeight(), 3.0);
  EXPECT_DOUBLE_EQ(view.weight(1), 1.0);
  EXPECT_EQ(view[2], 30);
}

TEST(ConstraintStoreTest, UnweightedViewHasUnitSemantics) {
  std::vector<int> items = {1, 2, 3, 4};
  ConstraintView<int> view{std::span<const int>(items)};
  EXPECT_TRUE(view.unit_weights());
  EXPECT_DOUBLE_EQ(view.TotalWeight(), 4.0);
  EXPECT_DOUBLE_EQ(view.weight(0), 1.0);
}

TEST(ConstraintStoreTest, ScaleViolatorsMultipliesMatchingWeights) {
  ConstraintStore<int> store({1, 2, 3, 4, 5});
  store.View().ScaleViolators([](int v) { return v % 2 == 0; }, 3.0);
  auto view = store.View();
  EXPECT_DOUBLE_EQ(view.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(view.weight(1), 3.0);
  EXPECT_DOUBLE_EQ(view.weight(3), 3.0);
  EXPECT_DOUBLE_EQ(view.TotalWeight(), 1 + 3 + 1 + 3 + 1);
}

TEST(ConstraintStoreTest, CountViolatorsAscendingOrder) {
  ConstraintStore<int> store({5, -1, 7, -2, 9});
  ViolatorStats st =
      store.View().CountViolators([](int v) { return v < 0; });
  EXPECT_EQ(st.count, 2u);
  EXPECT_DOUBLE_EQ(st.weight, 2.0);
}

TEST(ConstraintStoreTest, CollectViolatorsPreservesIndexOrder) {
  std::vector<int> items = {4, -3, 8, -1, 6};
  ConstraintView<int> view{std::span<const int>(items)};
  auto violated = view.CollectViolators([](int v) { return v < 0; });
  ASSERT_EQ(violated.size(), 2u);
  EXPECT_EQ(violated[0], -3);
  EXPECT_EQ(violated[1], -1);
}

TEST(ConstraintStoreTest, SampleConsumesExactlyCountDraws) {
  ConstraintStore<int> store({1, 2, 3, 4, 5, 6, 7, 8});
  Rng a(42), b(42);
  auto picks = store.View().SampleIndices(5, &a);
  EXPECT_EQ(picks.size(), 5u);
  // Same generator state evolution as five raw uniform draws.
  for (int i = 0; i < 5; ++i) b.UniformDouble();
  EXPECT_EQ(a.engine()(), b.engine()());
}

TEST(ConstraintStoreTest, EmptyViewSamplesNothingAndDrawsNothing) {
  ConstraintStore<int> store;
  Rng a(7), b(7);
  EXPECT_TRUE(store.View().SampleIndices(9, &a).empty());
  EXPECT_EQ(a.engine()(), b.engine()());  // Zero draws consumed.
}

TEST(ConstraintStoreTest, SamplingFollowsWeights) {
  // Weight mass concentrated on index 2: nearly all picks land there.
  ConstraintStore<int> store({0, 1, 2, 3});
  store.View().ScaleViolators([](int v) { return v == 2; }, 1e9);
  Rng rng(3);
  auto picks = store.View().SampleIndices(200, &rng);
  size_t heavy = 0;
  for (size_t p : picks) heavy += p == 2 ? 1 : 0;
  EXPECT_GT(heavy, 195u);
}

TEST(ConstraintStoreTest, PoolScanBitIdenticalToSerial) {
  // Above the parallel threshold with irregular weights: the bitmap scan
  // must reproduce the serial ascending accumulation exactly.
  const size_t n = 3 * engine::kParallelScanMinItems + 17;
  std::vector<int> items(n);
  for (size_t i = 0; i < n; ++i) items[i] = static_cast<int>(i % 1000);
  ConstraintStore<int> store(items);
  store.View().ScaleViolators([](int v) { return v % 3 == 0; }, 1.0 / 3.0);
  auto pred = [](int v) { return v % 7 < 3; };

  ViolatorStats serial = store.View().CountViolators(pred);
  runtime::ThreadPool pool(8);
  ViolatorStats pooled = store.View().CountViolators(&pool, pred);
  EXPECT_EQ(pooled.count, serial.count);
  EXPECT_EQ(pooled.weight, serial.weight);  // Bitwise, not approximate.

  // Pool-routed reweighting must land on exactly the serial weights
  // (compared on a fresh pair: `store` above already carries reweighting).
  ConstraintStore<int> serial_store(items);
  serial_store.View().ScaleViolators(pred, 2.5);
  ConstraintStore<int> pooled_store(items);
  pooled_store.View().ScaleViolators(&pool, pred, 2.5);
  EXPECT_EQ(pooled_store.View().TotalWeight(),
            serial_store.View().TotalWeight());
}

TEST(EnginePolicyTest, MatchesPaperFormulas) {
  auto c = testing_util::MakeFeasibleLpCase(5000, 2, 11);
  const size_t nu = c.problem.CombinatorialDimension();
  const size_t lambda = c.problem.VcDimension();
  EpsNetConfig net;
  auto policy = engine::MakePolicy(c.problem, 5000, 3, net);
  EXPECT_DOUBLE_EQ(policy.eps, AlgorithmEpsilon(nu, 5000, 3));
  EXPECT_DOUBLE_EQ(policy.rate, WeightIncreaseRate(5000, 3));
  EXPECT_EQ(policy.sample_size,
            EpsNetSampleSize(policy.eps, lambda, net, nu + 1, 5000));
}

TEST(EnginePolicyTest, OverridesWinAndSampleSizeClamps) {
  auto c = testing_util::MakeFeasibleLpCase(100, 2, 12);
  auto policy =
      engine::MakePolicy(c.problem, 100, 2, EpsNetConfig{}, /*eps=*/0.25,
                         /*rate=*/2.0, /*sample_size=*/100000);
  EXPECT_DOUBLE_EQ(policy.eps, 0.25);
  EXPECT_DOUBLE_EQ(policy.rate, 2.0);
  EXPECT_EQ(policy.sample_size, 100u);  // Clamped to n.
}

TEST(EngineBasisSolveTest, PoolRoutedSolveMatchesInline) {
  auto c = testing_util::MakeFeasibleLpCase(6000, 2, 13);
  engine::RefinementPolicy inline_policy;
  inline_policy.oversized_basis_threshold = 4096;
  auto inline_result =
      engine::SolveSampleBasis(c.problem, c.constraints, inline_policy);

  runtime::ThreadPool pool(4);
  engine::RefinementPolicy pooled_policy = inline_policy;
  pooled_policy.pool = &pool;
  auto pooled_result =
      engine::SolveSampleBasis(c.problem, c.constraints, pooled_policy);

  EXPECT_EQ(c.problem.CompareValues(inline_result.value, pooled_result.value),
            0);
  ASSERT_EQ(inline_result.basis.size(), pooled_result.basis.size());
  BitWriter wa, wb;
  for (const auto& h : inline_result.basis) {
    c.problem.SerializeConstraint(h, &wa);
  }
  for (const auto& h : pooled_result.basis) {
    c.problem.SerializeConstraint(h, &wb);
  }
  EXPECT_EQ(wa.Release(), wb.Release());
}

TEST(EngineMetricsTest, MetricsAreRegisteredGlobally) {
  auto& m = engine::GlobalEngineMetrics();
  ASSERT_NE(m.iterations, nullptr);
  ASSERT_NE(m.violator_scan_seconds, nullptr);
  // The registry hands back the same pointers for the engine names.
  auto& registry = runtime::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("engine.iterations"), m.iterations);
  EXPECT_EQ(registry.GetCounter("engine.resample_bytes"), m.resample_bytes);
  EXPECT_EQ(registry.GetTimer("engine.basis_solve_seconds"),
            m.basis_solve_seconds);
}

TEST(RngForkStreamTest, MatchesReTemperedForkDerivation) {
  // ForkStream(i) == Rng(Fork().engine()()): one parent draw consumed, the
  // child seeded from the fork's first output (the coordinator-site
  // derivation the models standardized on).
  Rng parent_a(123), parent_b(123);
  Rng via_helper = parent_a.ForkStream(0);
  Rng via_hand = Rng(parent_b.Fork().engine()());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(via_helper.engine()(), via_hand.engine()());
  }
  // Parent states advanced identically (exactly one draw each).
  EXPECT_EQ(parent_a.engine()(), parent_b.engine()());
}

TEST(EngineNestedParallelismTest, SingleHugeSiteMatchesSerial) {
  // One site holding the whole input pushes the per-site scan above
  // kParallelScanMinItems, so with threads > 1 the site's violator scan and
  // reweighting run as a *nested* ParallelFor inside the SiteExecutor round
  // — the transcript must still be bit-identical to the serial path.
  auto c = testing_util::MakeFeasibleLpCase(20000, 2, 14);
  coord::CoordinatorStats serial_stats;
  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 77;
  auto serial =
      coord::SolveCoordinator(c.problem, {c.constraints}, opt, &serial_stats);
  ASSERT_TRUE(serial.ok());

  opt.runtime.num_threads = 4;
  coord::CoordinatorStats pooled_stats;
  auto pooled =
      coord::SolveCoordinator(c.problem, {c.constraints}, opt, &pooled_stats);
  ASSERT_TRUE(pooled.ok());

  EXPECT_EQ(c.problem.CompareValues(serial->value, pooled->value), 0);
  EXPECT_EQ(serial_stats.total_bytes, pooled_stats.total_bytes);
  EXPECT_EQ(serial_stats.rounds, pooled_stats.rounds);
  EXPECT_EQ(serial_stats.iterations, pooled_stats.iterations);
  EXPECT_EQ(serial_stats.sample_bytes, pooled_stats.sample_bytes);
  BitWriter wa, wb;
  for (const auto& h : serial->basis) c.problem.SerializeConstraint(h, &wa);
  for (const auto& h : pooled->basis) c.problem.SerializeConstraint(h, &wb);
  EXPECT_EQ(wa.Release(), wb.Release());
}

TEST(RngForkStreamTest, SequentialStreamIdsRequired) {
  Rng parent(9);
  Rng s0 = parent.ForkStream(0);
  Rng s1 = parent.ForkStream(1);
  // Sibling streams differ.
  EXPECT_NE(s0.engine()(), s1.engine()());
}

}  // namespace
}  // namespace lplow

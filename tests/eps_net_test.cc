#include "src/core/eps_net.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/sampling.h"
#include "src/util/rng.h"

namespace lplow {
namespace {

TEST(EpsNetTest, TheoryFormulaMatchesLemma22) {
  // m = max(8L/e log(8L/e), 4/e log(2/delta)).
  double eps = 0.1;
  size_t lambda = 3;
  double delta = 1.0 / 3.0;
  double a = 8.0 * 3 / 0.1;
  double expected = std::max(a * std::log(a), 4.0 / 0.1 * std::log(6.0));
  EXPECT_EQ(EpsNetTheorySampleSize(eps, lambda, delta),
            static_cast<size_t>(std::ceil(expected)));
}

TEST(EpsNetTest, TheorySizeGrowsWithShrinkingEps) {
  EXPECT_LT(EpsNetTheorySampleSize(0.1, 3, 0.3),
            EpsNetTheorySampleSize(0.01, 3, 0.3));
}

TEST(EpsNetTest, TheorySizeGrowsWithLambda) {
  EXPECT_LT(EpsNetTheorySampleSize(0.1, 2, 0.3),
            EpsNetTheorySampleSize(0.1, 8, 0.3));
}

TEST(EpsNetTest, PracticalSizeHasSameGrowth) {
  EpsNetConfig cfg;
  // eps = 1/(10 nu n^{1/r}): practical m ~ lambda nu n^{1/r}.
  double eps1 = AlgorithmEpsilon(3, 1000, 2);
  double eps2 = AlgorithmEpsilon(3, 100000, 2);
  size_t m1 = EpsNetSampleSize(eps1, 3, cfg, 1, 0);
  size_t m2 = EpsNetSampleSize(eps2, 3, cfg, 1, 0);
  double ratio = static_cast<double>(m2) / static_cast<double>(m1);
  EXPECT_NEAR(ratio, 10.0, 1.0);  // sqrt(100000/1000) = 10.
}

TEST(EpsNetTest, FloorAndClampRespected) {
  EpsNetConfig cfg;
  EXPECT_GE(EpsNetSampleSize(0.5, 1, cfg, 100, 0), 100u);
  EXPECT_LE(EpsNetSampleSize(1e-9, 5, cfg, 1, 500), 500u);
}

TEST(EpsNetTest, ScaleMultiplies) {
  EpsNetConfig cfg1;
  EpsNetConfig cfg4;
  cfg4.scale = 4.0;
  double eps = AlgorithmEpsilon(3, 10000, 2);
  size_t m1 = EpsNetSampleSize(eps, 4, cfg1, 1, 0);
  size_t m4 = EpsNetSampleSize(eps, 4, cfg4, 1, 0);
  EXPECT_NEAR(static_cast<double>(m4) / m1, 4.0, 0.1);
}

TEST(EpsNetTest, AlgorithmEpsilonFormula) {
  // eps = 1/(10 nu n^{1/r}).
  EXPECT_NEAR(AlgorithmEpsilon(3, 10000, 2), 1.0 / (10 * 3 * 100), 1e-12);
  EXPECT_NEAR(WeightIncreaseRate(10000, 2), 100.0, 1e-9);
  EXPECT_NEAR(WeightIncreaseRate(8, 3), 2.0, 1e-9);
}

// Empirical eps-net property (experiment E8's test-sized sibling): sample
// m points from weighted 1-d intervals and check net coverage. Ranges are
// intervals [t, +inf): VC dimension 1.
TEST(EpsNetTest, EmpiricalNetPropertyOnIntervals) {
  Rng rng(113);
  const size_t n = 5000;
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 1);

  const double eps = 0.05;
  const size_t m = EpsNetTheorySampleSize(eps, 1, 1.0 / 3.0);

  int failures = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    // Uniform weights; sample m values i.i.d.
    std::vector<double> sample;
    for (size_t i = 0; i < m; ++i) {
      sample.push_back(values[rng.UniformIndex(n)]);
    }
    // The net property for threshold ranges: for any threshold with >= eps
    // mass above it, the sample contains a point above it. Equivalently the
    // sample max must exceed the (1-eps)-quantile.
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    double quantile = sorted[static_cast<size_t>((1.0 - eps) * n)];
    double sample_max = *std::max_element(sample.begin(), sample.end());
    if (sample_max < quantile) ++failures;
  }
  // Lemma 2.2 promises failure probability <= 1/3; the margin here is large.
  EXPECT_LE(failures, trials / 3);
}

}  // namespace
}  // namespace lplow

// The sampling-free deterministic model (src/models/deterministic/):
// direct-solve agreement on LP/SVM/MEB, the zero-random-bits contract
// (there is no seed to vary — reruns, partition skew, and thread counts
// must all leave the transcript bit-identical), the merge/broadcast cost
// accounting, the tiny-input direct path, and the iteration-cap discipline
// with the Las Vegas fallback disabled.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/models/deterministic/deterministic_solver.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using testing_util::BasisHash;

/// The full deterministic transcript: basis bytes plus every stat the model
/// reports. Two runs are "the same run" iff these are equal.
struct Transcript {
  uint64_t basis_hash = 0;
  size_t iterations = 0;
  size_t successful = 0;
  size_t merge_rounds = 0;
  size_t candidate_bytes = 0;
  size_t broadcast_bytes = 0;
  size_t sample_bytes = 0;

  bool operator==(const Transcript&) const = default;
};

template <LpTypeProblem P>
Transcript RunModel(const P& problem,
               const std::vector<std::vector<typename P::Constraint>>& parts,
               det::DeterministicStats* stats_out = nullptr,
               size_t threads = 1) {
  det::DeterministicOptions opt;
  opt.net.scale = 0.1;
  opt.runtime.num_threads = threads;
  det::DeterministicStats stats;
  auto result = det::SolveDeterministic(problem, parts, opt, &stats);
  EXPECT_TRUE(result.ok());
  if (stats_out) *stats_out = stats;
  if (!result.ok()) return {};
  return Transcript{BasisHash(problem, *result), stats.iterations,
                    stats.successful_iterations, stats.merge_rounds,
                    stats.candidate_bytes, stats.broadcast_bytes,
                    stats.sample_bytes};
}

TEST(DeterministicTest, LpAgreesWithDirectSolve) {
  auto c = testing_util::MakeFeasibleLpCase(4000, 2, 201);
  auto parts = workload::Partition(c.constraints, 6, false, nullptr);
  det::DeterministicOptions opt;
  opt.net.scale = 0.1;
  det::DeterministicStats stats;
  auto result = det::SolveDeterministic(c.problem, parts, opt, &stats);
  ASSERT_TRUE(result.ok());
  testing_util::ExpectMatchesDirect(c.problem, c.constraints, result->value,
                                    "deterministic");
  EXPECT_FALSE(stats.direct_solve);
  EXPECT_GE(stats.iterations, 1u);
  // Terminal exit means f(B) = f(S) exactly: the basis must reproduce the
  // direct solve's basis size, not just its value.
  auto direct = c.problem.SolveBasis(
      std::span<const Halfspace>(c.constraints));
  EXPECT_EQ(result->basis.size(), direct.basis.size());
}

TEST(DeterministicTest, SvmAndMebAgreeWithDirectSolve) {
  {
    // Planted-support instance: the stock SeparableSvmData generator
    // manufactures margin ties that stall the iterative QP dual ascent (in
    // the direct solve as much as in any model), so — like the differential
    // harness — the SVM check runs on the tie-free construction with the
    // measured differential tolerance.
    Rng rng(202);
    auto points = testing_util::PlantedSupportSvm(2000, /*margin=*/1.0, &rng);
    LinearSvm::Config config;
    config.value_tol = 2e-2;  // The differential policy tolerance.
    const LinearSvm problem(2, config);
    auto parts = workload::Partition(points, 5, false, nullptr);
    det::DeterministicOptions opt;
    opt.net.scale = 0.1;
    auto result = det::SolveDeterministic(problem, parts, opt, nullptr);
    ASSERT_TRUE(result.ok());
    testing_util::ExpectMatchesDirect(problem, points, result->value,
                                      "deterministic svm");
  }
  {
    auto c = testing_util::MakeGaussianMebCase(3000, 3, 203);
    auto parts = workload::Partition(c.points, 5, false, nullptr);
    det::DeterministicOptions opt;
    opt.net.scale = 0.1;
    auto result = det::SolveDeterministic(c.problem, parts, opt, nullptr);
    ASSERT_TRUE(result.ok());
    testing_util::ExpectMatchesDirect(c.problem, c.points, result->value,
                                      "deterministic meb");
  }
}

TEST(DeterministicTest, RerunsAreBitIdentical) {
  // There is no DeterministicOptions::seed: the model consumes zero random
  // bits, so rerunning the identical call IS the reproducibility contract —
  // no "same seed" qualifier needed.
  auto c = testing_util::MakeFeasibleLpCase(5000, 2, 204);
  auto parts = workload::Partition(c.constraints, 8, false, nullptr);
  Transcript first = RunModel(c.problem, parts);
  Transcript second = RunModel(c.problem, parts);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, Transcript{});
}

TEST(DeterministicTest, TranscriptInvariantAcrossThreadCounts) {
  auto c = testing_util::MakeGaussianMebCase(6000, 3, 205);
  auto parts = workload::Partition(c.points, 8, false, nullptr);
  Transcript want = RunModel(c.problem, parts, nullptr, /*threads=*/1);
  ASSERT_NE(want, Transcript{});
  for (size_t threads : {2u, 8u}) {
    det::DeterministicStats stats;
    Transcript got = RunModel(c.problem, parts, &stats, threads);
    EXPECT_EQ(got, want) << "transcript drifted at threads=" << threads;
    EXPECT_EQ(stats.threads, threads);
  }
}

TEST(DeterministicTest, PartitionSkewChangesCostsNotTheValue) {
  // Contiguous vs shuffled partitions reshape the merge traffic but the
  // model must land on the same exact optimum either way.
  auto c = testing_util::MakeFeasibleLpCase(3000, 2, 206);
  Rng rng(206);
  auto contiguous = workload::Partition(c.constraints, 6, false, nullptr);
  auto shuffled = workload::Partition(c.constraints, 6, true, &rng);
  auto a = det::SolveDeterministic(c.problem, contiguous,
                                   det::DeterministicOptions{}, nullptr);
  auto b = det::SolveDeterministic(c.problem, shuffled,
                                   det::DeterministicOptions{}, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(c.problem.CompareValues(a->value, b->value), 0);
}

TEST(DeterministicTest, CostAccountingIsPopulated) {
  auto c = testing_util::MakeFeasibleLpCase(4000, 2, 207);
  auto parts = workload::Partition(c.constraints, 6, false, nullptr);
  det::DeterministicStats stats;
  Transcript t = RunModel(c.problem, parts, &stats);
  ASSERT_NE(t, Transcript{});
  EXPECT_EQ(stats.n, 4000u);
  EXPECT_EQ(stats.blocks, 6u);
  EXPECT_GT(stats.sample_size, 0u);
  // Every iteration runs one merge round, one scan round, and (when
  // non-terminal) one reweight round.
  EXPECT_GE(stats.merge_rounds, 2 * stats.iterations);
  EXPECT_GT(stats.candidate_bytes, 0u);
  EXPECT_GT(stats.broadcast_bytes, 0u);
  EXPECT_GT(stats.sample_bytes, 0u);
  EXPECT_GE(stats.iterations, stats.successful_iterations);
}

TEST(DeterministicTest, TinyInputTakesTheDirectPath) {
  auto c = testing_util::MakeFeasibleLpCase(20, 2, 208);
  auto parts = workload::Partition(c.constraints, 3, false, nullptr);
  det::DeterministicStats stats;
  auto result =
      det::SolveDeterministic(c.problem, parts, det::DeterministicOptions{},
                              &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.direct_solve);
  EXPECT_EQ(stats.iterations, 0u);
  testing_util::ExpectMatchesDirect(c.problem, c.constraints, result->value,
                                    "deterministic direct path");
}

TEST(DeterministicTest, DegenerateInputsAreRejected) {
  LinearProgram problem(Vec{1.0, 0.0});
  det::DeterministicOptions opt;
  auto no_blocks = det::SolveDeterministic(
      problem, std::vector<std::vector<Halfspace>>{}, opt, nullptr);
  EXPECT_EQ(no_blocks.status().code(), StatusCode::kInvalidArgument);
  auto empty = det::SolveDeterministic(
      problem, std::vector<std::vector<Halfspace>>{{}, {}}, opt, nullptr);
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeterministicTest, IterationCapWithoutFallbackIsResourceExhausted) {
  auto c = testing_util::MakeFeasibleLpCase(4000, 2, 209);
  auto parts = workload::Partition(c.constraints, 6, false, nullptr);
  det::DeterministicOptions opt;
  // A tiny merge window (m << n) cannot cover the optimum's neighborhood in
  // one iteration, so a cap of 1 is guaranteed to exhaust. (At the default
  // window size a lucky contiguous prefix CAN be violator-free.)
  opt.net.scale = 0.005;
  opt.max_iterations = 1;
  opt.fallback_to_direct = false;
  det::DeterministicStats stats;
  auto result = det::SolveDeterministic(c.problem, parts, opt, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stats.iterations, 1u);
  EXPECT_FALSE(stats.direct_solve);

  // Same cap with the fallback on: the Las Vegas promise holds — gather
  // everything, solve directly, return the exact optimum.
  opt.fallback_to_direct = true;
  auto recovered = det::SolveDeterministic(c.problem, parts, opt, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(stats.direct_solve);
  testing_util::ExpectMatchesDirect(c.problem, c.constraints,
                                    recovered->value,
                                    "deterministic cap fallback");
}

}  // namespace
}  // namespace lplow

// Tests of the Theorem 3 MPC solver: correctness, tree topology, round
// structure O(nu/delta^2), and per-round load O~(n^delta).

#include "src/models/mpc/mpc_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/problems/linear_program.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using testing_util::ExpectMatchesDirect;
using testing_util::MakeFeasibleLpCase;
using mpc::MpcOptions;
using mpc::MpcRuntime;
using mpc::MpcStats;
using mpc::SolveMpc;

TEST(MpcRuntimeTest, TreeTopology) {
  MpcRuntime rt(13, 3);
  EXPECT_EQ(rt.Parent(1), 0u);
  EXPECT_EQ(rt.Parent(3), 0u);
  EXPECT_EQ(rt.Parent(4), 1u);
  auto children = rt.Children(0);
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0], 1u);
  EXPECT_EQ(children[2], 3u);
  EXPECT_EQ(rt.TreeDepth(), 2u);  // 1 + 3 + 9 = 13 machines: depths 0..2.
  EXPECT_EQ(rt.MachinesAtDepth(0).size(), 1u);
  EXPECT_EQ(rt.MachinesAtDepth(1).size(), 3u);
  EXPECT_EQ(rt.MachinesAtDepth(2).size(), 9u);
}

TEST(MpcRuntimeTest, LoadAccounting) {
  MpcRuntime rt(4, 2);
  rt.BeginRound();
  rt.Send(1, 0, 100);
  rt.Send(2, 0, 50);
  rt.EndRound();
  // Machine 0 received 150; that is the round max.
  EXPECT_EQ(rt.max_load_bytes(), 150u);
  rt.BeginRound();
  rt.Send(0, 1, 10);
  rt.EndRound();
  EXPECT_EQ(rt.max_load_bytes(), 150u);  // Unchanged.
  EXPECT_EQ(rt.total_bytes(), 160u);
  EXPECT_EQ(rt.rounds(), 2u);
}

TEST(MpcTest, MatchesDirectSolveLp) {
  Rng rng(1);
  auto [problem, constraints] = MakeFeasibleLpCase(5000, 2, 1);
  auto parts = workload::Partition(constraints, 16, true, &rng);
  MpcOptions opt;
  opt.delta = 0.5;
  MpcStats stats;
  auto result = SolveMpc(problem, parts, opt, &stats);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, constraints, result->value, "mpc");
  EXPECT_GT(stats.machines, 1u);
}

TEST(MpcTest, LoadSublinearInN) {
  Rng rng(2);
  auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 32, true, &rng);
  MpcOptions opt;
  opt.delta = 0.5;
  opt.net.scale = 0.1;  // Leave the sample-everything regime at this n.
  MpcStats stats;
  auto result = SolveMpc(problem, parts, opt, &stats);
  ASSERT_TRUE(result.ok());
  size_t total_input_bytes = 0;
  for (const auto& c : inst.constraints) {
    total_input_bytes += problem.ConstraintBytes(c);
  }
  EXPECT_LT(stats.max_load_bytes, total_input_bytes / 4)
      << "no machine may ever hold a constant fraction of the input";
}

TEST(MpcTest, SmallerDeltaMoreRoundsSmallerFanout) {
  Rng rng(3);
  auto inst = workload::RandomFeasibleLp(10000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 16, true, &rng);
  MpcStats s_half, s_quarter;
  {
    MpcOptions opt;
    opt.delta = 0.5;
    ASSERT_TRUE(SolveMpc(problem, parts, opt, &s_half).ok());
  }
  {
    MpcOptions opt;
    opt.delta = 0.25;
    ASSERT_TRUE(SolveMpc(problem, parts, opt, &s_quarter).ok());
  }
  EXPECT_GT(s_quarter.machines, s_half.machines);
  EXPECT_LT(s_quarter.sample_size, s_half.sample_size)
      << "smaller delta -> smaller per-iteration samples (n^delta)";
}

TEST(MpcTest, ExplicitMachineCount) {
  Rng rng(4);
  auto inst = workload::RandomFeasibleLp(2000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 4, true, &rng);
  MpcOptions opt;
  opt.machines = 7;
  MpcStats stats;
  auto result = SolveMpc(problem, parts, opt, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.machines, 7u);
}

TEST(MpcTest, SingleMachineDegenerate) {
  auto [problem, constraints] = MakeFeasibleLpCase(500, 2, 5);
  MpcOptions opt;
  opt.machines = 1;
  auto result = SolveMpc(problem, {constraints}, opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, constraints, result->value, "mpc");
}

TEST(MpcTest, EmptyInputFails) {
  LinearProgram problem(Vec{1, 1});
  std::vector<std::vector<Halfspace>> parts(3);
  auto result = SolveMpc(problem, parts, {}, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(MpcTest, WorksForMeb) {
  Rng rng(6);
  auto [problem, pts] = testing_util::MakeGaussianMebCase(6000, 3, 6);
  auto parts = workload::Partition(pts, 16, true, &rng);
  MpcOptions opt;
  opt.delta = 1.0 / 3.0;
  auto result = SolveMpc(problem, parts, opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, pts, result->value, "mpc");
}

class MpcSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(MpcSweep, CorrectAcrossDelta) {
  auto [delta, seed] = GetParam();
  Rng rng(seed);
  auto [problem, constraints] = MakeFeasibleLpCase(4000, 2, seed);
  auto parts = workload::Partition(constraints, 8, true, &rng);
  MpcOptions opt;
  opt.delta = delta;
  opt.seed = seed * 13;
  auto result = SolveMpc(problem, parts, opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, constraints, result->value, "mpc");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MpcSweep,
    ::testing::Combine(::testing::Values(0.25, 1.0 / 3.0, 0.5),
                       ::testing::Values(uint64_t{61}, uint64_t{62})));

}  // namespace
}  // namespace lplow

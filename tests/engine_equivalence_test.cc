// Engine equivalence: the iterative-refinement engine under
// SolveCoordinator / SolveMpc / SolveStreaming must reproduce the
// pre-refactor protocol transcripts bit-for-bit.
//
// The golden values below (basis-byte hashes plus the deterministic
// counters) were captured from the hand-rolled per-model loops BEFORE the
// solvers were rewritten as transport adapters over
// src/engine/refinement.h, for LP, SVM, and MEB instances. One deliberate
// re-baseline rode along: `Rng::ForkStream` canonicalized the MPC machine
// stream derivation to the coordinator's re-tempered fork (the MPC goldens
// were captured from the pre-engine loop with only that one-line RNG change
// applied), so these numbers pin the engine refactor itself to be a pure
// behavior-preserving restructuring.
//
// Every case runs at num_threads in {1, 2, 8}: the engine's violator scans
// and oversized basis solves are routed through runtime::ThreadPool /
// SiteExecutor, and the transcript must not depend on the thread count.
// The stored-set models additionally re-run with the SIMD violator-scan
// strategy forced on (kSimd) and off (kSerial): the vector kernels promise
// bitwise-identical violation bitmaps, so the same goldens must hold.
//
// The fourth (sampling-free deterministic) model rides with its own golden
// per instance, captured when the model shipped: it has no pre-engine
// ancestor to compare against, so the golden pins the model against itself
// going forward — and because it draws zero random bits, the pin covers
// reruns as well as thread counts.
//
// Where the paper predicts agreement — all three models are Las Vegas
// implementations of Algorithm 1, so they compute the exact f(S) — the
// test also asserts cross-model value agreement per instance.
//
// Re-baselining (only after an *intentional* behavior change):
//   LPLOW_PRINT_GOLDENS=1 ./build/tests/engine_equivalence_test
// prints the golden table rows to paste below.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/deterministic/deterministic_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/chebyshev_center.h"
#include "src/problems/enclosing_annulus.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/linf_regression.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using testing_util::BasisHash;  // FNV-1a over the problem's wire format.

/// One model run distilled to its deterministic fingerprint. The meaning of
/// a/b/c is per-model:
///   coordinator:   rounds / total_bytes / messages
///   mpc:           rounds / total_bytes / max_load_bytes
///   streaming:     passes / peak_items  / violation_tests
///   deterministic: merge_rounds / candidate_bytes / broadcast_bytes
struct Fingerprint {
  uint64_t basis_hash = 0;
  uint64_t iterations = 0;
  uint64_t successful = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;

  bool operator==(const Fingerprint&) const = default;
};

std::string Show(const Fingerprint& f) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{0x%016llxULL, %llu, %llu, %llu, %llu, %llu}",
                static_cast<unsigned long long>(f.basis_hash),
                static_cast<unsigned long long>(f.iterations),
                static_cast<unsigned long long>(f.successful),
                static_cast<unsigned long long>(f.a),
                static_cast<unsigned long long>(f.b),
                static_cast<unsigned long long>(f.c));
  return buf;
}

bool PrintGoldens() {
  static bool print = std::getenv("LPLOW_PRINT_GOLDENS") != nullptr;
  return print;
}

/// Checks one observed fingerprint against its golden (or prints it in
/// re-baseline mode).
void CheckGolden(const char* model, const char* instance, size_t threads,
                 const Fingerprint& got, const Fingerprint& want) {
  if (PrintGoldens()) {
    std::printf("GOLDEN %s %s threads=%zu %s\n", model, instance, threads,
                Show(got).c_str());
    return;
  }
  EXPECT_EQ(got, want) << model << "/" << instance << " drifted at threads="
                       << threads << "\n  got  " << Show(got) << "\n  want "
                       << Show(want);
}

// ------------------------------------------------------------ model runs

template <LpTypeProblem P>
Fingerprint RunCoordinator(
    const P& problem,
    const std::vector<std::vector<typename P::Constraint>>& parts,
    size_t threads, typename P::Value* value_out,
    runtime::ScanStrategy scan = runtime::ScanStrategy::kAuto) {
  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 0xE4A11CE5ULL;
  opt.runtime.num_threads = threads;
  opt.runtime.scan_strategy = scan;
  coord::CoordinatorStats stats;
  auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
  EXPECT_TRUE(result.ok());
  if (!result.ok()) return {};
  EXPECT_FALSE(stats.direct_solve);
  if (value_out) *value_out = result->value;
  return Fingerprint{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.rounds,
                     stats.total_bytes, stats.messages};
}

template <LpTypeProblem P>
Fingerprint RunMpc(const P& problem,
                   const std::vector<std::vector<typename P::Constraint>>&
                       parts,
                   size_t threads, typename P::Value* value_out,
                   runtime::ScanStrategy scan = runtime::ScanStrategy::kAuto) {
  mpc::MpcOptions opt;
  opt.delta = 0.5;
  opt.net.scale = 0.1;
  opt.seed = 0x3B61DE45ULL;
  opt.runtime.num_threads = threads;
  opt.runtime.scan_strategy = scan;
  mpc::MpcStats stats;
  auto result = mpc::SolveMpc(problem, parts, opt, &stats);
  EXPECT_TRUE(result.ok());
  if (!result.ok()) return {};
  EXPECT_FALSE(stats.direct_solve);
  if (value_out) *value_out = result->value;
  return Fingerprint{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.rounds,
                     stats.total_bytes, stats.max_load_bytes};
}

template <LpTypeProblem P>
Fingerprint RunStreaming(const P& problem,
                         const std::vector<typename P::Constraint>& input,
                         size_t threads, typename P::Value* value_out) {
  stream::VectorStream<typename P::Constraint> s(input);
  stream::StreamingOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 0x57AE4131ULL;
  opt.runtime.num_threads = threads;
  stream::StreamingStats stats;
  auto result = stream::SolveStreaming(problem, s, opt, &stats);
  EXPECT_TRUE(result.ok());
  if (!result.ok()) return {};
  EXPECT_FALSE(stats.direct_solve);
  if (value_out) *value_out = result->value;
  return Fingerprint{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.passes,
                     stats.peak_items, stats.violation_tests};
}

template <LpTypeProblem P>
Fingerprint RunDeterministic(
    const P& problem,
    const std::vector<std::vector<typename P::Constraint>>& parts,
    size_t threads, typename P::Value* value_out,
    runtime::ScanStrategy scan = runtime::ScanStrategy::kAuto) {
  det::DeterministicOptions opt;
  opt.net.scale = 0.1;
  // No seed: the model draws zero random bits, so its golden pins the
  // transcript across reruns as well as thread counts.
  opt.runtime.num_threads = threads;
  opt.runtime.scan_strategy = scan;
  det::DeterministicStats stats;
  auto result = det::SolveDeterministic(problem, parts, opt, &stats);
  EXPECT_TRUE(result.ok());
  if (!result.ok()) return {};
  EXPECT_FALSE(stats.direct_solve);
  if (value_out) *value_out = result->value;
  return Fingerprint{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.merge_rounds,
                     stats.candidate_bytes, stats.broadcast_bytes};
}

/// Golden quadruple for one (model, instance): identical at every thread
/// count. The coordinator/MPC/streaming rows were captured from the
/// pre-engine loops (header comment); the deterministic rows were captured
/// when the model shipped — it has no pre-engine ancestor, so its golden
/// pins the model against itself going forward.
struct ModelGoldens {
  Fingerprint coordinator;
  Fingerprint mpc;
  Fingerprint streaming;
  Fingerprint deterministic;
};

constexpr size_t kThreadCounts[] = {1, 2, 8};

template <LpTypeProblem P>
void CheckInstance(const char* instance, const P& problem,
                   const std::vector<typename P::Constraint>& input,
                   const ModelGoldens& want) {
  Rng rng(0xD15C0ULL);
  auto parts = workload::Partition(input, 8, true, &rng);

  typename P::Value coord_value{};
  typename P::Value mpc_value{};
  typename P::Value stream_value{};
  typename P::Value det_value{};
  for (size_t threads : kThreadCounts) {
    CheckGolden("coordinator", instance, threads,
                RunCoordinator(problem, parts, threads, &coord_value),
                want.coordinator);
    CheckGolden("mpc", instance, threads,
                RunMpc(problem, parts, threads, &mpc_value), want.mpc);
    CheckGolden("streaming", instance, threads,
                RunStreaming(problem, input, threads, &stream_value),
                want.streaming);
    CheckGolden("deterministic", instance, threads,
                RunDeterministic(problem, parts, threads, &det_value),
                want.deterministic);
  }

  // The SIMD scan seam must be transcript-invisible: forcing the kernel
  // path on (kSimd) and off (kSerial) must reproduce the same goldens the
  // default (kAuto) just matched. Streaming has no stored constraint set,
  // so the seam does not apply there.
  for (runtime::ScanStrategy scan :
       {runtime::ScanStrategy::kSimd, runtime::ScanStrategy::kSerial}) {
    CheckGolden("coordinator", instance, 1,
                RunCoordinator(problem, parts, 1, &coord_value, scan),
                want.coordinator);
    CheckGolden("mpc", instance, 1, RunMpc(problem, parts, 1, &mpc_value, scan),
                want.mpc);
    CheckGolden("deterministic", instance, 1,
                RunDeterministic(problem, parts, 1, &det_value, scan),
                want.deterministic);
  }

  // Theorems 1-3 are Las Vegas: every model computes the exact f(S), so the
  // paper predicts value agreement across models on every instance — and
  // the sampling-free model exits only at the same zero-violator terminal,
  // so it joins the same agreement class.
  EXPECT_EQ(problem.CompareValues(coord_value, mpc_value), 0)
      << instance << ": coordinator != mpc";
  EXPECT_EQ(problem.CompareValues(coord_value, stream_value), 0)
      << instance << ": coordinator != streaming";
  EXPECT_EQ(problem.CompareValues(coord_value, det_value), 0)
      << instance << ": coordinator != deterministic";
}

// ------------------------------------------------------------ the goldens

TEST(EngineEquivalenceTest, LpMatchesPreRefactorGoldens) {
  auto c = testing_util::MakeFeasibleLpCase(6000, 2, 93);
  CheckInstance("lp", c.problem, c.constraints,
                ModelGoldens{
                    /*coordinator=*/{0xe1a50ac6730a86acULL, 5, 3, 15, 297080,
                                     240},
                    /*mpc=*/{0xe1a50ac6730a86acULL, 11, 3, 57, 650594, 52360},
                    /*streaming=*/{0xc71a4e41b786d244ULL, 1, 1, 2, 6278, 6000},
                    /*deterministic=*/{0xe1a50ac6730a86acULL, 2, 1, 5, 336000,
                                       896},
                });
}

TEST(EngineEquivalenceTest, SvmMatchesPreRefactorGoldens) {
  auto c = testing_util::MakeSeparableSvmCase(4000, 2, 0.5, 94);
  CheckInstance("svm", c.problem, c.points,
                ModelGoldens{
                    /*coordinator=*/{0x007f4b965f680e81ULL, 3, 1, 9, 109340,
                                     144},
                    /*mpc=*/{0x007f4b965f680e81ULL, 2, 2, 11, 75264, 31752},
                    /*streaming=*/{0x893523d69e1220f1ULL, 5, 3, 6, 5130,
                                   40000},
                    /*deterministic=*/{0x007f4b965f680e81ULL, 1, 1, 2, 84000,
                                       336},
                });
}

TEST(EngineEquivalenceTest, MebMatchesPreRefactorGoldens) {
  auto c = testing_util::MakeGaussianMebCase(5000, 3, 95);
  CheckInstance("meb", c.problem, c.points,
                ModelGoldens{
                    /*coordinator=*/{0x9b542140e333ccceULL, 8, 3, 24, 769264,
                                     384},
                    /*mpc=*/{0x9b542140e333ccceULL, 21, 4, 108, 1966916,
                             84168},
                    /*streaming=*/{0x8a55c56346b3f766ULL, 7, 5, 8, 10203,
                                   90000},
                    /*deterministic=*/{0x9b542140e333ccceULL, 2, 1, 5, 280000,
                                       1792},
                });
}

// The three lifted-LP problems (PR 10) have no pre-engine ancestor; their
// goldens were captured when the problems shipped and pin every model's
// transcript — across thread counts, scan strategies, and reruns — against
// drift from here on.

TEST(EngineEquivalenceTest, ChebyshevMatchesIntroductionGoldens) {
  auto c = testing_util::MakeChebyshevCase(8000, 3, 96);
  CheckInstance("chebyshev", c.problem, c.constraints,
                ModelGoldens{
                    /*coordinator=*/{0x7bc0e716c47638dcULL, 1, 1, 3, 242860, 48},
                    /*mpc=*/{0xc87f0d75553f2bd8ULL, 5, 1, 25, 1135882, 212040},
                    /*streaming=*/{0x3db7bc833e894d00ULL, 2, 1, 3, 20131, 16000},
                    /*deterministic=*/{0x7bc0e716c47638dcULL, 1, 1, 2, 288000, 1152},
                });
}

TEST(EngineEquivalenceTest, LinfRegressionMatchesIntroductionGoldens) {
  auto c = testing_util::MakeLinfRegressionCase(8000, 3, 97);
  CheckInstance("linf", c.problem, c.points,
                ModelGoldens{
                    /*coordinator=*/{0x8080a1b960035903ULL, 13, 3, 39, 3159628, 624},
                    /*mpc=*/{0xbda8e9c80b7f5bd3ULL, 1, 1, 5, 226946, 211104},
                    /*streaming=*/{0x4bf9dae8ee8bc5a7ULL, 5, 4, 6, 20143, 96000},
                    /*deterministic=*/{0xbda8e9c80b7f5bd3ULL, 2, 1, 5, 576000, 2304},
                });
}

TEST(EngineEquivalenceTest, AnnulusMatchesIntroductionGoldens) {
  auto c = testing_util::MakeAnnulusCase(8000, 2, 98);
  CheckInstance("annulus", c.problem, c.points,
                ModelGoldens{
                    /*coordinator=*/{0x6c1ece881ffd0ccdULL, 5, 3, 15, 676444, 240},
                    /*mpc=*/{0x6c1ece881ffd0ccdULL, 7, 1, 35, 892102, 117800},
                    /*streaming=*/{0xa4eb7ab51b3f3661ULL, 6, 1, 7, 20131, 48000},
                    /*deterministic=*/{0x6374a5d034921491ULL, 2, 2, 5, 320000, 1280},
                });
}

}  // namespace
}  // namespace lplow

#include "src/core/sampling.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/util/rng.h"

namespace lplow {
namespace {

TEST(MultiChaoTest, SingleItemFillsAllSlots) {
  Rng rng(1);
  MultiChaoReservoir<int> res(8, &rng);
  res.Offer(42, 3.0);
  for (int v : res.Samples()) EXPECT_EQ(v, 42);
  EXPECT_EQ(res.total_weight(), 3.0);
}

TEST(MultiChaoTest, ZeroWeightSkipped) {
  Rng rng(1);
  MultiChaoReservoir<int> res(4, &rng);
  res.Offer(1, 0.0);
  EXPECT_TRUE(res.empty());
  res.Offer(2, 1.0);
  EXPECT_FALSE(res.empty());
  EXPECT_EQ(res.offered(), 1u);
}

TEST(MultiChaoTest, MarginalsProportionalToWeights) {
  // Items with weights 1:2:5; slot marginals must match 1/8 : 2/8 : 5/8.
  Rng rng(127);
  const size_t m = 4;
  std::map<int, int> counts;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    MultiChaoReservoir<int> res(m, &rng);
    res.Offer(1, 1.0);
    res.Offer(2, 2.0);
    res.Offer(3, 5.0);
    for (int v : res.Samples()) counts[v]++;
  }
  double total = static_cast<double>(trials * m);
  EXPECT_NEAR(counts[1] / total, 1.0 / 8, 0.02);
  EXPECT_NEAR(counts[2] / total, 2.0 / 8, 0.02);
  EXPECT_NEAR(counts[3] / total, 5.0 / 8, 0.02);
}

TEST(MultiChaoTest, OrderInvarianceOfMarginals) {
  // Offering heavy item first or last must not change marginals.
  Rng rng(131);
  const int trials = 3000;
  int heavy_first = 0, heavy_last = 0;
  for (int t = 0; t < trials; ++t) {
    MultiChaoReservoir<int> a(1, &rng);
    a.Offer(9, 9.0);
    a.Offer(1, 1.0);
    if (a.Samples()[0] == 9) ++heavy_first;
    MultiChaoReservoir<int> b(1, &rng);
    b.Offer(1, 1.0);
    b.Offer(9, 9.0);
    if (b.Samples()[0] == 9) ++heavy_last;
  }
  EXPECT_NEAR(heavy_first / static_cast<double>(trials), 0.9, 0.03);
  EXPECT_NEAR(heavy_last / static_cast<double>(trials), 0.9, 0.03);
}

TEST(MultiChaoTest, SlotsAreIndependentDraws) {
  // With-replacement: two slots can hold different items and their joint
  // matches the product of marginals (chi-square-lite check on 2x2 table).
  Rng rng(137);
  const int trials = 4000;
  int both_heavy = 0, heavy_any = 0;
  for (int t = 0; t < trials; ++t) {
    MultiChaoReservoir<int> res(2, &rng);
    res.Offer(0, 1.0);
    res.Offer(1, 1.0);
    auto s = res.Samples();
    if (s[0] == 1 && s[1] == 1) ++both_heavy;
    if (s[0] == 1) ++heavy_any;
  }
  EXPECT_NEAR(heavy_any / static_cast<double>(trials), 0.5, 0.03);
  EXPECT_NEAR(both_heavy / static_cast<double>(trials), 0.25, 0.03);
}

TEST(EfraimidisSpirakisTest, TakesAtMostM) {
  Rng rng(139);
  EfraimidisSpirakisSampler<int> s(5, &rng);
  for (int i = 0; i < 100; ++i) s.Offer(i, 1.0);
  auto out = s.TakeSamples();
  EXPECT_EQ(out.size(), 5u);
  std::set<int> distinct(out.begin(), out.end());
  EXPECT_EQ(distinct.size(), 5u) << "without replacement: distinct";
}

TEST(EfraimidisSpirakisTest, FewerItemsThanM) {
  Rng rng(141);
  EfraimidisSpirakisSampler<int> s(10, &rng);
  s.Offer(1, 1.0);
  s.Offer(2, 1.0);
  EXPECT_EQ(s.TakeSamples().size(), 2u);
}

TEST(EfraimidisSpirakisTest, HeavyItemsAlmostAlwaysKept) {
  Rng rng(149);
  int kept = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    EfraimidisSpirakisSampler<int> s(1, &rng);
    s.Offer(0, 1000.0);
    for (int i = 1; i <= 20; ++i) s.Offer(i, 1.0);
    if (s.TakeSamples()[0] == 0) ++kept;
  }
  EXPECT_GT(kept, trials * 9 / 10);
}

TEST(MultinomialSplitTest, SumsToM) {
  Rng rng(151);
  std::vector<double> w = {1, 2, 3, 4};
  for (int t = 0; t < 100; ++t) {
    auto counts = MultinomialSplit(w, 57, &rng);
    size_t total = 0;
    for (size_t c : counts) total += c;
    EXPECT_EQ(total, 57u);
  }
}

TEST(MultinomialSplitTest, ZeroWeightGetsNothing) {
  Rng rng(157);
  std::vector<double> w = {0, 5, 0, 5};
  for (int t = 0; t < 50; ++t) {
    auto counts = MultinomialSplit(w, 20, &rng);
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[2], 0u);
  }
}

TEST(MultinomialSplitTest, ExpectationProportionalToWeights) {
  Rng rng(163);
  std::vector<double> w = {1, 3};
  double total0 = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    total0 += static_cast<double>(MultinomialSplit(w, 40, &rng)[0]);
  }
  EXPECT_NEAR(total0 / trials, 10.0, 0.5);
}

TEST(MultinomialSplitTest, AllZeroWeights) {
  Rng rng(167);
  std::vector<double> w = {0, 0};
  auto counts = MultinomialSplit(w, 10, &rng);
  EXPECT_EQ(counts[0] + counts[1], 0u);
}

}  // namespace
}  // namespace lplow

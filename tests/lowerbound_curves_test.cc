#include <gtest/gtest.h>

#include "src/lowerbound/aug_index.h"
#include "src/lowerbound/curves.h"
#include "src/lowerbound/tci.h"
#include "src/util/rng.h"

namespace lplow {
namespace lb {
namespace {

TEST(StepCurveTest, CorrectedIndexing) {
  // bits x_1..x_3 drive increments 2..4: z = [1, 1+2+x1, ..., ].
  std::vector<uint8_t> bits = {1, 0, 1};
  auto z = StepCurve(bits, Rational(0));
  ASSERT_EQ(z.size(), 4u);
  EXPECT_EQ(z[0], Rational(1));
  EXPECT_EQ(z[1], Rational(1 + 2 + 1));
  EXPECT_EQ(z[2], Rational(4 + 3 + 0));
  EXPECT_EQ(z[3], Rational(7 + 4 + 1));
}

TEST(StepCurveTest, AlphaShiftsSlopes) {
  std::vector<uint8_t> bits = {0, 0};
  auto base = StepCurve(bits, Rational(0));
  auto shifted = StepCurve(bits, Rational(5));
  for (size_t i = 1; i < base.size(); ++i) {
    Rational ds = (shifted[i] - shifted[i - 1]) - (base[i] - base[i - 1]);
    EXPECT_EQ(ds, Rational(5));
  }
}

TEST(StepCurveTest, AlwaysIncreasingAndConvex) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> bits(10);
    for (auto& b : bits) b = rng.Bernoulli(0.5);
    auto z = StepCurve(bits, Rational(0));
    for (size_t i = 1; i < z.size(); ++i) EXPECT_GT(z[i], z[i - 1]);
    // Convexity: increments i + x_{i-1} can regress by at most... check the
    // defining inequality directly.
    for (size_t i = 2; i < z.size(); ++i) {
      EXPECT_GE(z[i] - z[i - 1], z[i - 1] - z[i - 2]);
    }
  }
}

TEST(LineSegmentTest, MatchesFact55) {
  RationalPoint p1{Rational(1), Rational(10)};
  RationalPoint p2{Rational(5), Rational(2)};  // Slope -2.
  auto z = LineSegment(p1, p2, 1, 5);
  ASSERT_EQ(z.size(), 5u);
  EXPECT_EQ(z[0], Rational(10));
  EXPECT_EQ(z[4], Rational(2));
  for (size_t i = 1; i < z.size(); ++i) {
    EXPECT_EQ(z[i] - z[i - 1], Rational(-2));
  }
}

TEST(LineSegmentTest, RationalSlope) {
  RationalPoint p1{Rational(0), Rational(0)};
  RationalPoint p2{Rational(3), Rational(1)};  // Slope 1/3.
  auto z = LineSegment(p1, p2, 0, 3);
  EXPECT_EQ(z[1], Rational::Make(1, 3));
  EXPECT_EQ(z[3], Rational(1));
}

TEST(SlopesTest, RangeComputation) {
  std::vector<Rational> z = {Rational(0), Rational(1), Rational(3),
                             Rational(6)};
  auto slopes = Slopes(z);
  ASSERT_EQ(slopes.size(), 3u);
  EXPECT_EQ(slopes[2], Rational(3));
  auto range = ComputeSlopeRange(z);
  EXPECT_EQ(range.min, Rational(1));
  EXPECT_EQ(range.max, Rational(3));
}

TEST(TciValidateTest, AcceptsValidInstance) {
  TciInstance t;
  t.a = {Rational(1), Rational(3), Rational(6), Rational(10)};
  t.b = {Rational(9), Rational(5), Rational(2), Rational(0)};
  EXPECT_TRUE(ValidateTci(t).ok());
  auto ans = TciAnswer(t);
  ASSERT_TRUE(ans.has_value());
  EXPECT_EQ(*ans, 2u);  // a_2=3 <= b_2=5, a_3=6 > b_3=2.
}

TEST(TciValidateTest, RejectsNonMonotone) {
  TciInstance t;
  t.a = {Rational(1), Rational(1)};  // Not strictly increasing.
  t.b = {Rational(5), Rational(4)};
  EXPECT_FALSE(ValidateTci(t).ok());
}

TEST(TciValidateTest, RejectsNonConvexA) {
  TciInstance t;
  t.a = {Rational(0), Rational(5), Rational(6), Rational(7)};  // Diffs 5,1,1.
  t.b = {Rational(10), Rational(8), Rational(6), Rational(4)};
  auto st = ValidateTci(t);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("A not convex"), std::string::npos);
}

TEST(TciValidateTest, RejectsNoCrossing) {
  TciInstance t;
  t.a = {Rational(1), Rational(2)};
  t.b = {Rational(9), Rational(8)};  // B stays above A.
  EXPECT_FALSE(ValidateTci(t).ok());
}

TEST(TciValidateTest, RejectsLengthMismatch) {
  TciInstance t;
  t.a = {Rational(1), Rational(2)};
  t.b = {Rational(9)};
  EXPECT_FALSE(ValidateTci(t).ok());
}

TEST(TciGaugeTest, AffineGaugePreservesAnswer) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    AugIndexInstance aug = RandomAugIndex(6, &rng);
    auto red = BuildTciFromAugIndex(aug, Rational(7));
    auto before = TciAnswer(red.tci);
    ASSERT_TRUE(before.has_value());
    ApplyAffineGauge(&red.tci, Rational::Make(rng.UniformInt(-20, 20), 3),
                     Rational(1), Rational(rng.UniformInt(-100, 100)));
    auto after = TciAnswer(red.tci);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*before, *after) << "gauge invariance (slope/origin shifts)";
  }
}

TEST(TciBitComplexityTest, GrowsWithMagnitude) {
  TciInstance small;
  small.a = {Rational(1), Rational(2)};
  small.b = {Rational(5), Rational(3)};
  TciInstance big = small;
  BigInt huge = BigInt::FromString("123456789012345678901234567890");
  big.a[1] = Rational(huge);
  EXPECT_GT(TciBitComplexity(big), TciBitComplexity(small));
}

// --- Lemma 5.6 reduction: exhaustive over all bit patterns and indices for
// small sizes (the DESIGN.md correction's acceptance test).
TEST(AugIndexReductionTest, ExhaustiveSmall) {
  for (size_t m = 1; m <= 8; ++m) {
    for (uint32_t pattern = 0; pattern < (1u << m); ++pattern) {
      for (size_t istar = 1; istar <= m; ++istar) {
        AugIndexInstance aug;
        aug.bits.clear();
        for (size_t j = 0; j < m; ++j) aug.bits.push_back((pattern >> j) & 1);
        aug.index = istar;
        auto red = BuildTciFromAugIndex(aug, Rational(3));
        ASSERT_TRUE(ValidateTci(red.tci).ok())
            << "m=" << m << " pattern=" << pattern << " i*=" << istar;
        auto ans = TciAnswer(red.tci);
        ASSERT_TRUE(ans.has_value());
        // Corrected Lemma 5.6: answer i* iff bit 1, i*+1 iff bit 0.
        size_t expected = aug.TargetBit() ? istar : istar + 1;
        EXPECT_EQ(*ans, expected);
        EXPECT_EQ(DecodeAugIndexBit(red, *ans), aug.TargetBit());
      }
    }
  }
}

TEST(AugIndexReductionTest, WorksWithHugeSlope) {
  Rng rng(3);
  AugIndexInstance aug = RandomAugIndex(10, &rng);
  BigInt k = BigInt::FromString("1000000000000000000000000");
  auto red = BuildTciFromAugIndex(aug, Rational(k));
  EXPECT_TRUE(ValidateTci(red.tci).ok());
  auto ans = TciAnswer(red.tci);
  ASSERT_TRUE(ans.has_value());
  EXPECT_EQ(DecodeAugIndexBit(red, *ans), aug.TargetBit());
}

TEST(RandomAugIndexTest, Shapes) {
  Rng rng(4);
  auto aug = RandomAugIndex(17, &rng);
  EXPECT_EQ(aug.bits.size(), 17u);
  EXPECT_GE(aug.index, 1u);
  EXPECT_LE(aug.index, 17u);
}

}  // namespace
}  // namespace lb
}  // namespace lplow

#include "src/solvers/welzl.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

// O(n^{d+1}) brute force: try every support subset of size <= d+1.
Ball BruteForceMeb(const std::vector<Vec>& pts) {
  Ball best;
  const size_t n = pts.size();
  auto consider = [&](const std::vector<Vec>& boundary) {
    auto b = Circumsphere(boundary);
    if (!b.ok()) return;
    for (const Vec& p : pts) {
      if (!b->Contains(p, 1e-7)) return;
    }
    if (best.empty() || b->radius < best.radius) best = *b;
  };
  for (size_t i = 0; i < n; ++i) {
    consider({pts[i]});
    for (size_t j = i + 1; j < n; ++j) {
      consider({pts[i], pts[j]});
      for (size_t k = j + 1; k < n; ++k) {
        consider({pts[i], pts[j], pts[k]});
      }
    }
  }
  return best;
}

TEST(CircumsphereTest, TwoPointsMidpoint) {
  auto b = Circumsphere({Vec{0, 0}, Vec{2, 0}});
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->center[0], 1, 1e-12);
  EXPECT_NEAR(b->center[1], 0, 1e-12);
  EXPECT_NEAR(b->radius, 1, 1e-12);
}

TEST(CircumsphereTest, EquilateralTriangle) {
  double h = std::sqrt(3.0) / 2.0;
  auto b = Circumsphere({Vec{0, 0}, Vec{1, 0}, Vec{0.5, h}});
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->radius, 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(CircumsphereTest, DuplicatePointsFail) {
  auto b = Circumsphere({Vec{1, 1}, Vec{1, 1}});
  EXPECT_FALSE(b.ok());
}

TEST(WelzlTest, EmptyAndSingle) {
  WelzlSolver solver;
  EXPECT_TRUE(solver.Solve({}).empty());
  Ball b = solver.Solve({Vec{3, 4}});
  EXPECT_NEAR(b.radius, 0, 1e-12);
  EXPECT_NEAR(b.center[0], 3, 1e-12);
}

TEST(WelzlTest, TwoPoints) {
  WelzlSolver solver;
  Ball b = solver.Solve({Vec{-1, 0}, Vec{1, 0}});
  EXPECT_NEAR(b.radius, 1, 1e-9);
  EXPECT_NEAR(b.center[0], 0, 1e-9);
}

TEST(WelzlTest, InteriorPointsIgnored) {
  WelzlSolver solver;
  std::vector<Vec> pts = {Vec{-5, 0}, Vec{5, 0}, Vec{0, 0}, Vec{1, 1},
                          Vec{-2, 2}};
  Ball b = solver.Solve(pts);
  EXPECT_NEAR(b.radius, 5, 1e-9);
}

TEST(WelzlTest, DuplicatedPointsHandled) {
  WelzlSolver solver;
  std::vector<Vec> pts(20, Vec{1, 2});
  pts.push_back(Vec{3, 2});
  Ball b = solver.Solve(pts);
  EXPECT_NEAR(b.radius, 1, 1e-9);
  EXPECT_NEAR(b.center[0], 2, 1e-9);
}

TEST(WelzlTest, AllPointsContained) {
  Rng rng(71);
  WelzlSolver solver;
  for (int trial = 0; trial < 20; ++trial) {
    size_t d = 2 + rng.UniformIndex(4);
    auto pts = workload::GaussianCloud(200, d, &rng);
    Ball b = solver.Solve(pts);
    ASSERT_FALSE(b.empty());
    for (const auto& p : pts) EXPECT_TRUE(b.Contains(p, 1e-6));
  }
}

TEST(WelzlTest, SphereCloudRadiusKnown) {
  Rng rng(73);
  WelzlSolver solver;
  auto pts = workload::SphereCloud(500, 3, 7.0, 0.3, &rng);
  Ball b = solver.Solve(pts);
  EXPECT_NEAR(b.radius, 7.0, 0.05);
}

class WelzlVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WelzlVsBruteForce, RadiusMatches) {
  Rng rng(GetParam());
  size_t n = 4 + rng.UniformIndex(12);
  auto pts = workload::GaussianCloud(n, 2, &rng);
  WelzlSolver solver;
  Ball fast = solver.Solve(pts);
  Ball slow = BruteForceMeb(pts);
  ASSERT_FALSE(slow.empty());
  EXPECT_NEAR(fast.radius, slow.radius, 1e-6 * std::max(1.0, slow.radius));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelzlVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15));

TEST(WelzlTest, MinimalityProperty) {
  // Shrinking the radius by epsilon must exclude some point.
  Rng rng(79);
  WelzlSolver solver;
  for (int trial = 0; trial < 10; ++trial) {
    auto pts = workload::GaussianCloud(50, 3, &rng);
    Ball b = solver.Solve(pts);
    size_t on_boundary = 0;
    for (const auto& p : pts) {
      if (std::fabs((p - b.center).Norm() - b.radius) < 1e-6) ++on_boundary;
    }
    EXPECT_GE(on_boundary, 2u) << "an MEB is pinned by >= 2 points";
  }
}

}  // namespace
}  // namespace lplow

// High-traffic SolverService stress (label `slow`): hundreds of mixed
// LP/SVM/MEB solve jobs — serial, coordinator, and MPC models — drain
// through one shared pool; every result is checked against the direct
// solve and the service must account for every job.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/runtime/solver_service.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using runtime::MetricsRegistry;
using runtime::ShardedSolverService;
using runtime::SolverService;

// Jobs per kind (4 kinds). Overridable so slow environments — TSan CI
// lanes, single-core containers — can run a reduced but complete pass:
//   LPLOW_STRESS_JOBS_PER_KIND=8 ./runtime_stress_test
int JobsPerKind() {
  if (const char* env = std::getenv("LPLOW_STRESS_JOBS_PER_KIND")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 45;  // 180 jobs total.
}

TEST(RuntimeStressTest, HeavyTrafficMixedJobs) {
  MetricsRegistry reg;
  SolverService::Options sopt;
  sopt.num_threads = 8;
  sopt.metrics = &reg;
  SolverService service(sopt);

  const int jobs_per_kind = JobsPerKind();
  std::vector<std::future<bool>> results;
  results.reserve(4 * jobs_per_kind);

  for (int j = 0; j < jobs_per_kind; ++j) {
    // LP through the coordinator model: must match the direct solve exactly.
    results.push_back(service.Submit("coordinator_lp", [j] {
      auto [problem, constraints] =
          testing_util::MakeFeasibleLpCase(3000, 2, 1000 + j);
      Rng rng(1000 + j);
      auto parts = workload::Partition(constraints, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 9000 + j;
      auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
      if (!result.ok()) return false;
      auto direct = testing_util::DirectValue(problem, constraints);
      return problem.CompareValues(result->value, direct) == 0;
    }));

    // LP through the MPC model: must match the direct solve exactly.
    results.push_back(service.Submit("mpc_lp", [j] {
      auto [problem, constraints] =
          testing_util::MakeFeasibleLpCase(3000, 2, 2000 + j);
      Rng rng(2000 + j);
      auto parts = workload::Partition(constraints, 8, true, &rng);
      mpc::MpcOptions opt;
      opt.delta = 0.5;
      opt.net.scale = 0.1;
      opt.seed = 9500 + j;
      auto result = mpc::SolveMpc(problem, parts, opt, nullptr);
      if (!result.ok()) return false;
      auto direct = testing_util::DirectValue(problem, constraints);
      return problem.CompareValues(result->value, direct) == 0;
    }));

    // SVM through the coordinator model: the protocol must succeed and
    // certify separability (exact value agreement across solvers is
    // tolerance-fragile for SVM and not what this stress asserts).
    results.push_back(service.Submit("coordinator_svm", [j] {
      auto [problem, points] =
          testing_util::MakeSeparableSvmCase(1500, 2, 0.5, 2500 + j);
      Rng rng(2500 + j);
      auto parts = workload::Partition(points, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 9700 + j;
      auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
      return result.ok() && result->value.separable;
    }));

    // MEB solved directly (the cheap-request mix).
    results.push_back(service.Submit("direct_meb", [j] {
      auto [problem, points] =
          testing_util::MakeGaussianMebCase(1200, 3, 3000 + j);
      auto direct = testing_util::DirectValue(problem, points);
      return !direct.ball.empty();
    }));
  }

  size_t ok = 0;
  for (auto& f : results) ok += f.get() ? 1 : 0;
  EXPECT_EQ(ok, results.size()) << "some jobs returned wrong answers";

  service.Drain();
  auto stats = service.stats();
  EXPECT_EQ(stats.submitted, results.size());
  EXPECT_EQ(stats.completed, results.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(reg.GetCounter("solver_service.jobs_submitted")->value(),
            results.size());
  EXPECT_EQ(reg.GetTimer("solver_service.job_seconds")->count(),
            results.size());
}

TEST(RuntimeStressTest, ShardedHeavyTrafficWithConcurrentBatchSubmit) {
  // The sharded front-end under the same 180-job mixed traffic, but with
  // the four job kinds batched by four CONCURRENT BatchSubmit callers (the
  // submission side is itself contended), and the coordinator-LP jobs
  // routing their engine basis solves back into the sharded service as its
  // SolveBackend — cross-shard helping waits under real load (and under
  // TSan in the CI matrix).
  MetricsRegistry reg;
  ShardedSolverService::Options sopt;
  sopt.num_shards = 4;
  sopt.threads_per_shard = 2;
  sopt.metrics = &reg;
  ShardedSolverService service(sopt);

  const int jobs_per_kind = JobsPerKind();
  using Job = std::pair<uint64_t, std::function<bool()>>;

  auto make_coordinator_lp = [&service](int j) -> std::function<bool()> {
    return [&service, j] {
      auto [problem, constraints] =
          testing_util::MakeFeasibleLpCase(3000, 2, 1000 + j);
      Rng rng(1000 + j);
      auto parts = workload::Partition(constraints, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 9000 + j;
      opt.runtime.solver_backend = &service;
      opt.runtime.oversized_basis_threshold = 1;
      auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
      if (!result.ok()) return false;
      auto direct = testing_util::DirectValue(problem, constraints);
      return problem.CompareValues(result->value, direct) == 0;
    };
  };
  auto make_mpc_lp = [](int j) -> std::function<bool()> {
    return [j] {
      auto [problem, constraints] =
          testing_util::MakeFeasibleLpCase(3000, 2, 2000 + j);
      Rng rng(2000 + j);
      auto parts = workload::Partition(constraints, 8, true, &rng);
      mpc::MpcOptions opt;
      opt.delta = 0.5;
      opt.net.scale = 0.1;
      opt.seed = 9500 + j;
      auto result = mpc::SolveMpc(problem, parts, opt, nullptr);
      if (!result.ok()) return false;
      auto direct = testing_util::DirectValue(problem, constraints);
      return problem.CompareValues(result->value, direct) == 0;
    };
  };
  auto make_coordinator_svm = [](int j) -> std::function<bool()> {
    return [j] {
      auto [problem, points] =
          testing_util::MakeSeparableSvmCase(1500, 2, 0.5, 2500 + j);
      Rng rng(2500 + j);
      auto parts = workload::Partition(points, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 9700 + j;
      auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
      return result.ok() && result->value.separable;
    };
  };
  auto make_direct_meb = [](int j) -> std::function<bool()> {
    return [j] {
      auto [problem, points] =
          testing_util::MakeGaussianMebCase(1200, 3, 3000 + j);
      auto direct = testing_util::DirectValue(problem, points);
      return !direct.ball.empty();
    };
  };

  // One submitter thread per kind; each splits its jobs into three batches
  // so every shard sees multiple concurrent coalesced dispatches.
  std::vector<std::vector<std::future<bool>>> futures(4);
  std::vector<std::thread> submitters;
  std::vector<std::function<std::function<bool()>(int)>> kinds = {
      make_coordinator_lp, make_mpc_lp, make_coordinator_svm,
      make_direct_meb};
  for (size_t kind = 0; kind < kinds.size(); ++kind) {
    submitters.emplace_back([&, kind] {
      const int per_batch = (jobs_per_kind + 2) / 3;
      for (int start = 0; start < jobs_per_kind; start += per_batch) {
        std::vector<Job> batch;
        for (int j = start;
             j < jobs_per_kind && j < start + per_batch; ++j) {
          batch.emplace_back(static_cast<uint64_t>(kind * 1000 + j),
                             kinds[kind](j));
        }
        auto got = service.BatchSubmit("stress_batch", std::move(batch));
        for (auto& f : got) futures[kind].push_back(std::move(f));
      }
    });
  }
  for (auto& t : submitters) t.join();

  size_t total = 0, ok = 0;
  for (auto& kind_futures : futures) {
    for (auto& f : kind_futures) {
      ++total;
      ok += f.get() ? 1 : 0;
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(4 * jobs_per_kind));
  EXPECT_EQ(ok, total) << "some jobs returned wrong answers";

  service.Drain();
  auto totals = service.total_stats();
  EXPECT_EQ(totals.submitted, total);
  EXPECT_EQ(totals.completed, total);
  EXPECT_EQ(totals.failed, 0u);
  EXPECT_GT(totals.batches, 0u);
  EXPECT_GT(totals.solves, 0u);  // The coordinator-LP engine solves routed.
  uint64_t per_shard = 0;
  for (size_t s = 0; s < service.num_shards(); ++s) {
    per_shard += service.shard_stats(s).submitted;
  }
  EXPECT_EQ(per_shard, total);
  EXPECT_EQ(reg.GetCounter("service.shard.batch_jobs")->value(), total);
}

TEST(RuntimeStressTest, ParallelSolversInsideServiceJobs) {
  // Jobs that themselves fan out across the service's pool: the helping
  // TaskGroup waits must keep this nesting deadlock-free.
  MetricsRegistry reg;
  SolverService::Options sopt;
  sopt.num_threads = 4;
  sopt.metrics = &reg;
  SolverService service(sopt);

  std::vector<std::future<bool>> results;
  for (int j = 0; j < 12; ++j) {
    results.push_back(service.Submit("nested_coordinator", [&service, j] {
      auto [problem, constraints] =
          testing_util::MakeFeasibleLpCase(4000, 2, 4000 + j);
      Rng rng(4000 + j);
      auto parts = workload::Partition(constraints, 16, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 9900 + j;
      opt.runtime.pool = service.pool();
      auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
      if (!result.ok()) return false;
      auto direct = testing_util::DirectValue(problem, constraints);
      return problem.CompareValues(result->value, direct) == 0;
    }));
  }
  size_t ok = 0;
  for (auto& f : results) ok += f.get() ? 1 : 0;
  EXPECT_EQ(ok, results.size());
  service.Drain();
  EXPECT_EQ(service.stats().failed, 0u);
}

}  // namespace
}  // namespace lplow

// High-traffic SolverService stress (label `slow`): hundreds of mixed
// LP/SVM/MEB solve jobs — serial, coordinator, and MPC models — drain
// through one shared pool; every result is checked against the direct
// solve and the service must account for every job.

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/runtime/solver_service.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using runtime::MetricsRegistry;
using runtime::SolverService;

// Jobs per kind (4 kinds). Overridable so slow environments — TSan CI
// lanes, single-core containers — can run a reduced but complete pass:
//   LPLOW_STRESS_JOBS_PER_KIND=8 ./runtime_stress_test
int JobsPerKind() {
  if (const char* env = std::getenv("LPLOW_STRESS_JOBS_PER_KIND")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 45;  // 180 jobs total.
}

TEST(RuntimeStressTest, HeavyTrafficMixedJobs) {
  MetricsRegistry reg;
  SolverService::Options sopt;
  sopt.num_threads = 8;
  sopt.metrics = &reg;
  SolverService service(sopt);

  const int jobs_per_kind = JobsPerKind();
  std::vector<std::future<bool>> results;
  results.reserve(4 * jobs_per_kind);

  for (int j = 0; j < jobs_per_kind; ++j) {
    // LP through the coordinator model: must match the direct solve exactly.
    results.push_back(service.Submit("coordinator_lp", [j] {
      auto [problem, constraints] =
          testing_util::MakeFeasibleLpCase(3000, 2, 1000 + j);
      Rng rng(1000 + j);
      auto parts = workload::Partition(constraints, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 9000 + j;
      auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
      if (!result.ok()) return false;
      auto direct = testing_util::DirectValue(problem, constraints);
      return problem.CompareValues(result->value, direct) == 0;
    }));

    // LP through the MPC model: must match the direct solve exactly.
    results.push_back(service.Submit("mpc_lp", [j] {
      auto [problem, constraints] =
          testing_util::MakeFeasibleLpCase(3000, 2, 2000 + j);
      Rng rng(2000 + j);
      auto parts = workload::Partition(constraints, 8, true, &rng);
      mpc::MpcOptions opt;
      opt.delta = 0.5;
      opt.net.scale = 0.1;
      opt.seed = 9500 + j;
      auto result = mpc::SolveMpc(problem, parts, opt, nullptr);
      if (!result.ok()) return false;
      auto direct = testing_util::DirectValue(problem, constraints);
      return problem.CompareValues(result->value, direct) == 0;
    }));

    // SVM through the coordinator model: the protocol must succeed and
    // certify separability (exact value agreement across solvers is
    // tolerance-fragile for SVM and not what this stress asserts).
    results.push_back(service.Submit("coordinator_svm", [j] {
      auto [problem, points] =
          testing_util::MakeSeparableSvmCase(1500, 2, 0.5, 2500 + j);
      Rng rng(2500 + j);
      auto parts = workload::Partition(points, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 9700 + j;
      auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
      return result.ok() && result->value.separable;
    }));

    // MEB solved directly (the cheap-request mix).
    results.push_back(service.Submit("direct_meb", [j] {
      auto [problem, points] =
          testing_util::MakeGaussianMebCase(1200, 3, 3000 + j);
      auto direct = testing_util::DirectValue(problem, points);
      return !direct.ball.empty();
    }));
  }

  size_t ok = 0;
  for (auto& f : results) ok += f.get() ? 1 : 0;
  EXPECT_EQ(ok, results.size()) << "some jobs returned wrong answers";

  service.Drain();
  auto stats = service.stats();
  EXPECT_EQ(stats.submitted, results.size());
  EXPECT_EQ(stats.completed, results.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(reg.GetCounter("solver_service.jobs_submitted")->value(),
            results.size());
  EXPECT_EQ(reg.GetTimer("solver_service.job_seconds")->count(),
            results.size());
}

TEST(RuntimeStressTest, ParallelSolversInsideServiceJobs) {
  // Jobs that themselves fan out across the service's pool: the helping
  // TaskGroup waits must keep this nesting deadlock-free.
  MetricsRegistry reg;
  SolverService::Options sopt;
  sopt.num_threads = 4;
  sopt.metrics = &reg;
  SolverService service(sopt);

  std::vector<std::future<bool>> results;
  for (int j = 0; j < 12; ++j) {
    results.push_back(service.Submit("nested_coordinator", [&service, j] {
      auto [problem, constraints] =
          testing_util::MakeFeasibleLpCase(4000, 2, 4000 + j);
      Rng rng(4000 + j);
      auto parts = workload::Partition(constraints, 16, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 9900 + j;
      opt.runtime.pool = service.pool();
      auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
      if (!result.ok()) return false;
      auto direct = testing_util::DirectValue(problem, constraints);
      return problem.CompareValues(result->value, direct) == 0;
    }));
  }
  size_t ok = 0;
  for (auto& f : results) ok += f.get() ? 1 : 0;
  EXPECT_EQ(ok, results.size());
  service.Drain();
  EXPECT_EQ(service.stats().failed, 0u);
}

}  // namespace
}  // namespace lplow

// Traffic-replay determinism (src/workload/replay.h): one recorded mix,
// replayed on every service topology — shard counts {1,2,4} x threads
// {1,2,8}, per-job Submit vs coalesced BatchSubmit, in-process serve vs a
// loopback socket daemon — must produce bit-identical per-job response
// fingerprints and the same folded transcript hash. This is the quick
// inner-loop pin of the soak harness; the heavy mix rides in
// bench/bench_replay_soak.cc.

#include <unistd.h>

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/runtime/lp_client.h"
#include "src/runtime/lp_served.h"
#include "src/runtime/metrics.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/workload/replay.h"

namespace lplow {
namespace {

workload::RecordOptions QuickMixOptions() {
  workload::RecordOptions opt;
  opt.seed = 0x5EEDC0DE;
  opt.num_jobs = 240;
  opt.num_tenants = 16;
  opt.base_constraints = 24;
  opt.size_classes = 3;
  return opt;
}

// One shared recording for every replay lane below (recording is pure, so
// sharing it only saves time, never couples the tests).
const workload::RecordedWorkload& QuickMix() {
  static const workload::RecordedWorkload* mix =
      new workload::RecordedWorkload(workload::RecordWorkload(QuickMixOptions()));
  return *mix;
}

workload::ReplayResult ReplayOn(size_t shards, size_t threads, bool batch,
                                runtime::SolveBackend* backend = nullptr) {
  runtime::MetricsRegistry registry;
  runtime::ShardedSolverService::Options sopt;
  sopt.num_shards = shards;
  sopt.threads_per_shard = threads;
  sopt.metrics = &registry;
  runtime::ShardedSolverService service(sopt);
  workload::ReplayOptions ropt;
  ropt.backend = backend;
  ropt.metrics = &registry;
  ropt.batch = batch;
  return workload::Replay(QuickMix(), &service, ropt);
}

TEST(ReplayTest, RecordingIsDeterministic) {
  auto a = workload::RecordWorkload(QuickMixOptions());
  auto b = workload::RecordWorkload(QuickMixOptions());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.request_bytes, b.request_bytes);
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].job_id, b.jobs[i].job_id);
    EXPECT_EQ(a.jobs[i].kind, b.jobs[i].kind);
    EXPECT_EQ(a.jobs[i].constraints, b.jobs[i].constraints);
    ASSERT_EQ(a.jobs[i].request, b.jobs[i].request) << "job " << i;
  }

  auto opt = QuickMixOptions();
  opt.seed ^= 1;
  auto c = workload::RecordWorkload(opt);
  EXPECT_NE(a.request_bytes, c.request_bytes);
}

TEST(ReplayTest, MixIsSkewedAndCoversEveryKind) {
  const auto& mix = QuickMix();
  uint64_t total = 0;
  for (uint64_t k : mix.kind_jobs) {
    EXPECT_GT(k, 0u);
    total += k;
  }
  EXPECT_EQ(total, mix.jobs.size());
  // Zipf head vs tail: linear_program (rank 0) must dominate the annulus
  // (rank 5) by a wide margin.
  EXPECT_GT(mix.kind_jobs[0], 4 * mix.kind_jobs[5]);

  // The size distribution actually spans its classes, small-heavy.
  size_t small = 0, large = 0;
  for (const auto& job : mix.jobs) {
    if (job.constraints == 24) small++;
    if (job.constraints == 96) large++;
  }
  EXPECT_GT(small, large);
  EXPECT_GT(large, 0u);

  // Tenant skew: fewer distinct routing keys than jobs, more than one.
  std::vector<uint64_t> ids;
  for (const auto& job : mix.jobs) ids.push_back(job.job_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_GT(ids.size(), 1u);
  EXPECT_LT(ids.size(), mix.jobs.size());
}

TEST(ReplayTest, TranscriptIsBitIdenticalAcrossTopologies) {
  const auto reference = ReplayOn(1, 1, /*batch=*/false);
  ASSERT_EQ(reference.job_hashes.size(), QuickMix().jobs.size());
  EXPECT_EQ(reference.jobs_failed, 0u);
  EXPECT_EQ(reference.jobs_ok, QuickMix().jobs.size());
  EXPECT_EQ(reference.remote_jobs, 0u);

  for (size_t shards : {1, 2, 4}) {
    for (size_t threads : {1, 2, 8}) {
      auto run = ReplayOn(shards, threads, /*batch=*/false);
      EXPECT_EQ(run.transcript_hash, reference.transcript_hash)
          << shards << " shards, " << threads << " threads";
      ASSERT_EQ(run.job_hashes, reference.job_hashes)
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(run.response_bytes, reference.response_bytes);
      EXPECT_EQ(run.jobs_failed, 0u);
    }
  }
}

TEST(ReplayTest, BatchSubmitMatchesPerJobSubmit) {
  const auto reference = ReplayOn(1, 1, /*batch=*/false);
  for (size_t shards : {1, 4}) {
    auto run = ReplayOn(shards, 2, /*batch=*/true);
    EXPECT_EQ(run.transcript_hash, reference.transcript_hash)
        << shards << " shards (batched)";
    ASSERT_EQ(run.job_hashes, reference.job_hashes);
  }
}

TEST(ReplayTest, LoopbackSocketLaneMatchesInProcess) {
  const auto reference = ReplayOn(1, 1, /*batch=*/false);

  const std::string socket_path =
      "/tmp/lplow_replay_test_" + std::to_string(::getpid()) + ".sock";
  runtime::SolveDaemon::Options dopt;
  dopt.socket_path = socket_path;
  dopt.num_shards = 2;
  dopt.threads_per_shard = 2;
  auto daemon = runtime::SolveDaemon::Start(dopt);
  ASSERT_TRUE(daemon.ok()) << daemon.status().message();
  runtime::SocketSolveBackend::Options copt;
  copt.endpoints = {socket_path};
  auto client = runtime::SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok()) << client.status().message();

  auto run = ReplayOn(2, 2, /*batch=*/false, client->get());
  EXPECT_EQ(run.transcript_hash, reference.transcript_hash);
  ASSERT_EQ(run.job_hashes, reference.job_hashes);
  // Every job crossed the wire; the local-serve failover stayed idle.
  EXPECT_EQ(run.remote_jobs, QuickMix().jobs.size());
  EXPECT_EQ(run.local_serves, 0u);
  (*daemon)->Shutdown();
}

TEST(ReplayTest, ReplayExportsMetrics) {
  runtime::MetricsRegistry registry;
  runtime::ShardedSolverService::Options sopt;
  sopt.num_shards = 2;
  sopt.threads_per_shard = 2;
  sopt.metrics = &registry;
  runtime::ShardedSolverService service(sopt);
  workload::ReplayOptions ropt;
  ropt.metrics = &registry;
  auto result = workload::Replay(QuickMix(), &service, ropt);

  const uint64_t jobs = QuickMix().jobs.size();
  EXPECT_EQ(registry.GetCounter("replay.jobs")->value(), jobs);
  EXPECT_EQ(registry.GetCounter("replay.jobs_failed")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("replay.local_serves")->value(), jobs);
  EXPECT_EQ(registry.GetHistogram("replay.job_seconds")->count(), jobs);
  auto* bytes_hist = registry.GetHistogram("replay.response_bytes");
  EXPECT_EQ(bytes_hist->count(), jobs);
  EXPECT_EQ(bytes_hist->sum(), static_cast<double>(result.response_bytes));
  // Per-kind counters partition the job count.
  uint64_t per_kind = 0;
  for (const char* name :
       {"linear_program", "linear_svm", "min_enclosing_ball",
        "chebyshev_center", "linf_regression", "enclosing_annulus"}) {
    per_kind +=
        registry.GetCounter(std::string("replay.kind.") + name)->value();
  }
  EXPECT_EQ(per_kind, jobs);
  // Latency percentiles come straight off the histogram (wall-time valued,
  // so only sanity-checked here, never pinned).
  EXPECT_GT(registry.GetHistogram("replay.job_seconds")->Quantile(0.99), 0.0);
}

}  // namespace
}  // namespace lplow

// Edge cases and reproducibility guarantees of the three model runtimes.

#include <gtest/gtest.h>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using testing_util::ExpectMatchesDirect;

TEST(ModelsEdgeTest, GeneratorStreamEndToEnd) {
  // Constraints produced on demand — nothing materialized up front.
  const size_t n = 50000;
  Rng gen_rng(3);
  auto inst = workload::RandomFeasibleLp(n, 2, &gen_rng);
  LinearProgram problem(inst.objective);
  stream::GeneratorStream<Halfspace> s(
      n, [&inst](size_t i) { return inst.constraints[i]; });
  stream::StreamingOptions opt;
  opt.r = 3;
  opt.net.scale = 0.1;
  stream::StreamingStats stats;
  auto result = stream::SolveStreaming(problem, s, opt, &stats);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "model");
  EXPECT_LT(stats.peak_items, n / 4);
}

TEST(ModelsEdgeTest, StreamingIsDeterministic) {
  Rng rng(5);
  auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
  LinearProgram problem(inst.objective);
  stream::StreamingOptions opt;
  opt.r = 3;
  opt.net.scale = 0.1;
  opt.seed = 777;
  stream::StreamingStats s1, s2;
  stream::VectorStream<Halfspace> a(inst.constraints);
  stream::VectorStream<Halfspace> b(inst.constraints);
  auto r1 = stream::SolveStreaming(problem, a, opt, &s1);
  auto r2 = stream::SolveStreaming(problem, b, opt, &s2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(s1.passes, s2.passes);
  EXPECT_EQ(s1.iterations, s2.iterations);
  EXPECT_EQ(s1.peak_items, s2.peak_items);
  EXPECT_EQ(r1->value.objective, r2->value.objective);
}

TEST(ModelsEdgeTest, CoordinatorMoreSitesThanConstraints) {
  Rng rng(7);
  auto inst = workload::RandomFeasibleLp(10, 2, &rng);
  LinearProgram problem(inst.objective);
  std::vector<std::vector<Halfspace>> parts(50);  // Mostly empty sites.
  for (size_t i = 0; i < inst.constraints.size(); ++i) {
    parts[i % 50].push_back(inst.constraints[i]);
  }
  auto result = coord::SolveCoordinator(problem, parts, {}, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "model");
}

TEST(ModelsEdgeTest, CoordinatorNoFallbackReportsSamplingFailed) {
  Rng rng(8);
  auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 4, true, &rng);
  coord::CoordinatorOptions opt;
  opt.max_iterations = 1;
  opt.net.scale = 0.02;  // Far too small to finish in one iteration.
  opt.fallback_to_direct = false;
  coord::CoordinatorStats stats;
  auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kSamplingFailed);
    EXPECT_EQ(stats.rounds, 3u);  // Exactly one iteration's protocol.
  }
}

TEST(ModelsEdgeTest, MpcMoreMachinesThanConstraints) {
  Rng rng(9);
  auto inst = workload::RandomFeasibleLp(20, 2, &rng);
  LinearProgram problem(inst.objective);
  mpc::MpcOptions opt;
  opt.machines = 100;
  auto result = mpc::SolveMpc(problem, {inst.constraints}, opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "model");
}

TEST(ModelsEdgeTest, MpcDeterministicAcrossRuns) {
  Rng rng(10);
  auto inst = workload::RandomFeasibleLp(8000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 8, true, &rng);
  mpc::MpcOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 321;
  mpc::MpcStats s1, s2;
  auto r1 = mpc::SolveMpc(problem, parts, opt, &s1);
  auto r2 = mpc::SolveMpc(problem, parts, opt, &s2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(s1.rounds, s2.rounds);
  EXPECT_EQ(s1.max_load_bytes, s2.max_load_bytes);
  EXPECT_EQ(r1->value.objective, r2->value.objective);
}

TEST(ModelsEdgeTest, DuplicateHeavyStream) {
  // 90% of the stream is the same redundant constraint.
  Rng rng(11);
  auto inst = workload::RandomFeasibleLp(2000, 2, &rng);
  std::vector<Halfspace> cs = inst.constraints;
  Halfspace dup(Vec{1.0, 0.0}, 1e6);  // Slack everywhere.
  for (int i = 0; i < 18000; ++i) cs.push_back(dup);
  Rng shuffle_rng(12);
  shuffle_rng.Shuffle(&cs);
  LinearProgram problem(inst.objective);
  stream::VectorStream<Halfspace> s(cs);
  stream::StreamingOptions opt;
  opt.net.scale = 0.1;
  auto result = stream::SolveStreaming(problem, s, opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "model");
}

TEST(ModelsEdgeTest, StreamingSingleConstraint) {
  LinearProgram problem(Vec{1.0, 1.0});
  std::vector<Halfspace> cs = {Halfspace(Vec{-1.0, -1.0}, -2.0)};
  stream::VectorStream<Halfspace> s(cs);
  auto result = stream::SolveStreaming(problem, s, {}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->value.feasible);
  EXPECT_NEAR(result->value.objective, 2.0, 1e-5);
}

}  // namespace
}  // namespace lplow

// Randomized differential harness (label `slow`): ~200 seeded LP / SVM /
// MEB instances, each solved by the three engine transports (coordinator,
// MPC, streaming) AND the baseline solvers (classic Clarkson reweighting,
// ship-all, iterated tree-merge), all checked against the problem's direct
// solve: objective values must agree within the problem's policy tolerance
// (CompareValues == 0) and the reported bases must have identical sizes.
// A further 51 seeded cases run the sampling-free deterministic model
// against the direct solve with EXACT basis-size matching (the randomized
// ±1 SVM band does not apply — see RunDeterministicCase).
//
// Everything is keyed by seed, so a failure reproduces exactly; the case
// index is in the failure message.
//
// SVM rides with two measured accommodations (LP and MEB are fully
// strict). The iterative QP dual ascent stalls within ~1.2% of the optimum
// on a few percent of random samples, so (1) the SVM cases use a
// *planted-support* construction — the two optimal support vectors sit
// exactly on the margin and every other point lives outside a 50% moat, so
// the optimum is known (norm_squared = 1/margin^2, reproduced exactly by
// the direct solve on every case) — with the differential policy tolerance
// value_tol = 2e-2, 1.7x the worst stall observed over 120 probe cases
// (the Config comment's "must absorb the iterative solver's residual");
// and (2) the basis-size check allows +-1,
// because on a stalled dual LinearSvm::SolveBasis deliberately returns the
// unminimized support set (see linear_svm.cc), which is a solver artifact,
// not a protocol property. The stock SeparableSvmData generator is
// unsuitable here by construction: it pushes every in-band point to the
// identical margin distance, manufacturing massive support ties.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/baselines/clarkson_classic.h"
#include "src/baselines/ship_all.h"
#include "src/baselines/tree_merge.h"
#include "src/core/clarkson.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/deterministic/deterministic_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/chebyshev_center.h"
#include "src/problems/enclosing_annulus.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/linf_regression.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

constexpr size_t kCasesPerProblem = 67;  // 6 problems -> 402 cases.

/// Value + basis-size agreement of one solver run against the direct solve.
/// `basis_size_slack` is 0 (strict) except for SVM (see the header comment).
template <LpTypeProblem P>
void ExpectAgrees(const P& problem,
                  const BasisResult<typename P::Value,
                                    typename P::Constraint>& direct,
                  const typename P::Value& value, size_t basis_size,
                  size_t basis_size_slack, const char* solver,
                  const char* tag, size_t case_index) {
  EXPECT_EQ(problem.CompareValues(value, direct.value), 0)
      << tag << " case " << case_index << ": " << solver
      << " objective disagrees with the direct solve";
  size_t diff = basis_size > direct.basis.size()
                    ? basis_size - direct.basis.size()
                    : direct.basis.size() - basis_size;
  EXPECT_LE(diff, basis_size_slack)
      << tag << " case " << case_index << ": " << solver << " basis size "
      << basis_size << " disagrees with the direct solve's "
      << direct.basis.size();
}

/// One instance through every solver under test. `seed` keys the instance;
/// per-solver seeds are derived from it so reruns are exact.
template <LpTypeProblem P>
void RunDifferentialCase(const P& problem,
                         const std::vector<typename P::Constraint>& input,
                         uint64_t seed, const char* tag, size_t case_index,
                         size_t basis_size_slack = 0) {
  using Constraint = typename P::Constraint;
  const auto direct =
      problem.SolveBasis(std::span<const Constraint>(input));

  Rng rng(seed);
  auto parts = workload::Partition(input, 6, true, &rng);

  // --- the three engine transports.
  {
    coord::CoordinatorOptions opt;
    opt.net.scale = 0.1;
    opt.seed = seed ^ 0xC004ULL;
    auto got = coord::SolveCoordinator(problem, parts, opt, nullptr);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": coordinator";
    ExpectAgrees(problem, direct, got->value, got->basis.size(),
                 basis_size_slack, "coordinator", tag, case_index);
  }
  {
    mpc::MpcOptions opt;
    opt.delta = 0.5;
    opt.net.scale = 0.1;
    opt.seed = seed ^ 0x3BCULL;
    auto got = mpc::SolveMpc(problem, parts, opt, nullptr);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": mpc";
    ExpectAgrees(problem, direct, got->value, got->basis.size(), basis_size_slack,
                 "mpc", tag, case_index);
  }
  {
    stream::VectorStream<Constraint> vs(input);
    stream::StreamingOptions opt;
    opt.net.scale = 0.1;
    opt.seed = seed ^ 0x57AEULL;
    auto got = stream::SolveStreaming(problem, vs, opt, nullptr);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": streaming";
    ExpectAgrees(problem, direct, got->value, got->basis.size(), basis_size_slack,
                 "streaming", tag, case_index);
  }

  // --- the baselines.
  {
    // Classic Clarkson/Welzl reweighting (rate 2, fixed sample size).
    ClarksonOptions opt = baselines::ClassicClarksonOptions(
        problem.CombinatorialDimension(), input.size(), seed ^ 0xC1A5ULL);
    auto got =
        ClarksonSolve(problem, std::span<const Constraint>(input), opt,
                      nullptr);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index
                          << ": clarkson_classic";
    ExpectAgrees(problem, direct, got->value, got->basis.size(),
                 basis_size_slack, "clarkson_classic", tag, case_index);
  }
  {
    baselines::ShipAllStats stats;
    auto got = baselines::ShipAll(problem, parts, &stats);
    EXPECT_EQ(stats.rounds, 1u);
    ExpectAgrees(problem, direct, got.value, got.basis.size(), basis_size_slack,
                 "ship_all", tag, case_index);
  }
  {
    baselines::TreeMergeStats stats;
    auto got = baselines::IteratedTreeMerge(problem, parts, &stats);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": tree_merge";
    ExpectAgrees(problem, direct, got->value, got->basis.size(), basis_size_slack,
                 "tree_merge", tag, case_index);
  }
}

TEST(DifferentialRandomTest, LpInstances) {
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1F000ULL + i;
    const size_t n = 600 + (i * 137) % 1400;
    auto c = testing_util::MakeFeasibleLpCase(n, 2, seed);
    RunDifferentialCase(c.problem, c.constraints, seed, "lp", i);
  }
}

// The planted-support SVM construction (see the header comment) lives in
// testing_util.h — the deterministic differential cases below and
// deterministic_test.cc reuse it.
using testing_util::PlantedSupportSvm;

TEST(DifferentialRandomTest, SvmInstances) {
  LinearSvm::Config config;
  config.value_tol = 2e-2;  // The differential policy tolerance (header).
  const LinearSvm problem(2, config);
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1F500ULL + i;
    const size_t n = 400 + (i * 113) % 800;
    Rng rng(seed);
    auto points = PlantedSupportSvm(n, /*margin=*/1.0, &rng);
    RunDifferentialCase(problem, points, seed, "svm", i,
                        /*basis_size_slack=*/1);
  }
}

TEST(DifferentialRandomTest, MebInstances) {
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1FA00ULL + i;
    const size_t n = 500 + (i * 101) % 1200;
    auto c = testing_util::MakeGaussianMebCase(n, 3, seed);
    RunDifferentialCase(c.problem, c.points, seed, "meb", i);
  }
}

// The three lifted-LP problems (PR 10) are fully strict: the planted-optimum
// builders in testing_util.h pin a unique optimum whose basis is exactly the
// planted support, so value AND basis size must match the direct solve with
// zero slack on every case.

TEST(DifferentialRandomTest, ChebyshevInstances) {
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1FC00ULL + i;
    const size_t n = 500 + (i * 127) % 1200;
    const size_t d = 2 + i % 3;
    auto c = testing_util::MakeChebyshevCase(n, d, seed);
    RunDifferentialCase(c.problem, c.constraints, seed, "chebyshev", i);
  }
}

TEST(DifferentialRandomTest, LinfRegressionInstances) {
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1FD00ULL + i;
    const size_t n = 450 + (i * 109) % 1000;
    const size_t d = 2 + i % 3;
    auto c = testing_util::MakeLinfRegressionCase(n, d, seed);
    RunDifferentialCase(c.problem, c.points, seed, "linf", i);
  }
}

TEST(DifferentialRandomTest, AnnulusInstances) {
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1FE00ULL + i;
    const size_t n = 500 + (i * 131) % 1100;
    const size_t d = 2 + i % 2;  // {2, 3}: the 2d-point basis needs 2d <= d+3.
    auto c = testing_util::MakeAnnulusCase(n, d, seed);
    RunDifferentialCase(c.problem, c.points, seed, "annulus", i);
  }
}

// --------------------------------------------- the deterministic model

constexpr size_t kDeterministicCasesPerProblem = 17;  // 6 problems -> 102.

/// One instance through the sampling-free deterministic model vs the direct
/// solve. Unlike the randomized cases above there is NO tolerance band on
/// the basis size — not even for SVM: the deterministic merge always
/// carries the previous basis into the next sample, so the terminal solve
/// sees the support with the full sample as context and the ±1
/// stalled-dual artifact of the randomized samples does not arise. The
/// `seed` keys only the *instance* (and the partition shuffle); the solver
/// itself takes no seed and draws zero random bits.
template <LpTypeProblem P>
void RunDeterministicCase(const P& problem,
                          const std::vector<typename P::Constraint>& input,
                          uint64_t seed, const char* tag, size_t case_index) {
  using Constraint = typename P::Constraint;
  const auto direct = problem.SolveBasis(std::span<const Constraint>(input));

  Rng rng(seed);
  auto parts = workload::Partition(input, 6, true, &rng);

  det::DeterministicOptions opt;
  opt.net.scale = 0.1;
  det::DeterministicStats stats;
  auto got = det::SolveDeterministic(problem, parts, opt, &stats);
  ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": deterministic";
  ExpectAgrees(problem, direct, got->value, got->basis.size(),
               /*basis_size_slack=*/0, "deterministic", tag, case_index);
}

TEST(DifferentialRandomTest, DeterministicLpInstances) {
  for (size_t i = 0; i < kDeterministicCasesPerProblem; ++i) {
    const uint64_t seed = 0xDE7000ULL + i;
    const size_t n = 600 + (i * 137) % 1400;
    auto c = testing_util::MakeFeasibleLpCase(n, 2, seed);
    RunDeterministicCase(c.problem, c.constraints, seed, "det-lp", i);
  }
}

TEST(DifferentialRandomTest, DeterministicSvmInstances) {
  LinearSvm::Config config;
  config.value_tol = 2e-2;  // The differential policy tolerance (header).
  const LinearSvm problem(2, config);
  for (size_t i = 0; i < kDeterministicCasesPerProblem; ++i) {
    const uint64_t seed = 0xDE7500ULL + i;
    const size_t n = 400 + (i * 113) % 800;
    Rng rng(seed);
    auto points = PlantedSupportSvm(n, /*margin=*/1.0, &rng);
    RunDeterministicCase(problem, points, seed, "det-svm", i);
  }
}

TEST(DifferentialRandomTest, DeterministicMebInstances) {
  for (size_t i = 0; i < kDeterministicCasesPerProblem; ++i) {
    const uint64_t seed = 0xDE7A00ULL + i;
    const size_t n = 500 + (i * 101) % 1200;
    auto c = testing_util::MakeGaussianMebCase(n, 3, seed);
    RunDeterministicCase(c.problem, c.points, seed, "det-meb", i);
  }
}

TEST(DifferentialRandomTest, DeterministicChebyshevInstances) {
  for (size_t i = 0; i < kDeterministicCasesPerProblem; ++i) {
    const uint64_t seed = 0xDE7C00ULL + i;
    const size_t n = 500 + (i * 127) % 1200;
    const size_t d = 2 + i % 3;
    auto c = testing_util::MakeChebyshevCase(n, d, seed);
    RunDeterministicCase(c.problem, c.constraints, seed, "det-chebyshev", i);
  }
}

TEST(DifferentialRandomTest, DeterministicLinfRegressionInstances) {
  for (size_t i = 0; i < kDeterministicCasesPerProblem; ++i) {
    const uint64_t seed = 0xDE7D00ULL + i;
    const size_t n = 450 + (i * 109) % 1000;
    const size_t d = 2 + i % 3;
    auto c = testing_util::MakeLinfRegressionCase(n, d, seed);
    RunDeterministicCase(c.problem, c.points, seed, "det-linf", i);
  }
}

TEST(DifferentialRandomTest, DeterministicAnnulusInstances) {
  for (size_t i = 0; i < kDeterministicCasesPerProblem; ++i) {
    const uint64_t seed = 0xDE7E00ULL + i;
    const size_t n = 500 + (i * 131) % 1100;
    const size_t d = 2 + i % 2;
    auto c = testing_util::MakeAnnulusCase(n, d, seed);
    RunDeterministicCase(c.problem, c.points, seed, "det-annulus", i);
  }
}

}  // namespace
}  // namespace lplow

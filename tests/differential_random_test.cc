// Randomized differential harness (label `slow`): ~200 seeded LP / SVM /
// MEB instances, each solved by the three engine transports (coordinator,
// MPC, streaming) AND the baseline solvers (classic Clarkson reweighting,
// ship-all, iterated tree-merge), all checked against the problem's direct
// solve: objective values must agree within the problem's policy tolerance
// (CompareValues == 0) and the reported bases must have identical sizes.
//
// Everything is keyed by seed, so a failure reproduces exactly; the case
// index is in the failure message.
//
// SVM rides with two measured accommodations (LP and MEB are fully
// strict). The iterative QP dual ascent stalls within ~1.2% of the optimum
// on a few percent of random samples, so (1) the SVM cases use a
// *planted-support* construction — the two optimal support vectors sit
// exactly on the margin and every other point lives outside a 50% moat, so
// the optimum is known (norm_squared = 1/margin^2, reproduced exactly by
// the direct solve on every case) — with the differential policy tolerance
// value_tol = 2e-2, 1.7x the worst stall observed over 120 probe cases
// (the Config comment's "must absorb the iterative solver's residual");
// and (2) the basis-size check allows +-1,
// because on a stalled dual LinearSvm::SolveBasis deliberately returns the
// unminimized support set (see linear_svm.cc), which is a solver artifact,
// not a protocol property. The stock SeparableSvmData generator is
// unsuitable here by construction: it pushes every in-band point to the
// identical margin distance, manufacturing massive support ties.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/baselines/clarkson_classic.h"
#include "src/baselines/ship_all.h"
#include "src/baselines/tree_merge.h"
#include "src/core/clarkson.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

constexpr size_t kCasesPerProblem = 67;  // 3 problems -> 201 cases.

/// Value + basis-size agreement of one solver run against the direct solve.
/// `basis_size_slack` is 0 (strict) except for SVM (see the header comment).
template <LpTypeProblem P>
void ExpectAgrees(const P& problem,
                  const BasisResult<typename P::Value,
                                    typename P::Constraint>& direct,
                  const typename P::Value& value, size_t basis_size,
                  size_t basis_size_slack, const char* solver,
                  const char* tag, size_t case_index) {
  EXPECT_EQ(problem.CompareValues(value, direct.value), 0)
      << tag << " case " << case_index << ": " << solver
      << " objective disagrees with the direct solve";
  size_t diff = basis_size > direct.basis.size()
                    ? basis_size - direct.basis.size()
                    : direct.basis.size() - basis_size;
  EXPECT_LE(diff, basis_size_slack)
      << tag << " case " << case_index << ": " << solver << " basis size "
      << basis_size << " disagrees with the direct solve's "
      << direct.basis.size();
}

/// One instance through every solver under test. `seed` keys the instance;
/// per-solver seeds are derived from it so reruns are exact.
template <LpTypeProblem P>
void RunDifferentialCase(const P& problem,
                         const std::vector<typename P::Constraint>& input,
                         uint64_t seed, const char* tag, size_t case_index,
                         size_t basis_size_slack = 0) {
  using Constraint = typename P::Constraint;
  const auto direct =
      problem.SolveBasis(std::span<const Constraint>(input));

  Rng rng(seed);
  auto parts = workload::Partition(input, 6, true, &rng);

  // --- the three engine transports.
  {
    coord::CoordinatorOptions opt;
    opt.net.scale = 0.1;
    opt.seed = seed ^ 0xC004ULL;
    auto got = coord::SolveCoordinator(problem, parts, opt, nullptr);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": coordinator";
    ExpectAgrees(problem, direct, got->value, got->basis.size(),
                 basis_size_slack, "coordinator", tag, case_index);
  }
  {
    mpc::MpcOptions opt;
    opt.delta = 0.5;
    opt.net.scale = 0.1;
    opt.seed = seed ^ 0x3BCULL;
    auto got = mpc::SolveMpc(problem, parts, opt, nullptr);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": mpc";
    ExpectAgrees(problem, direct, got->value, got->basis.size(), basis_size_slack,
                 "mpc", tag, case_index);
  }
  {
    stream::VectorStream<Constraint> vs(input);
    stream::StreamingOptions opt;
    opt.net.scale = 0.1;
    opt.seed = seed ^ 0x57AEULL;
    auto got = stream::SolveStreaming(problem, vs, opt, nullptr);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": streaming";
    ExpectAgrees(problem, direct, got->value, got->basis.size(), basis_size_slack,
                 "streaming", tag, case_index);
  }

  // --- the baselines.
  {
    // Classic Clarkson/Welzl reweighting (rate 2, fixed sample size).
    ClarksonOptions opt = baselines::ClassicClarksonOptions(
        problem.CombinatorialDimension(), input.size(), seed ^ 0xC1A5ULL);
    auto got =
        ClarksonSolve(problem, std::span<const Constraint>(input), opt,
                      nullptr);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index
                          << ": clarkson_classic";
    ExpectAgrees(problem, direct, got->value, got->basis.size(),
                 basis_size_slack, "clarkson_classic", tag, case_index);
  }
  {
    baselines::ShipAllStats stats;
    auto got = baselines::ShipAll(problem, parts, &stats);
    EXPECT_EQ(stats.rounds, 1u);
    ExpectAgrees(problem, direct, got.value, got.basis.size(), basis_size_slack,
                 "ship_all", tag, case_index);
  }
  {
    baselines::TreeMergeStats stats;
    auto got = baselines::IteratedTreeMerge(problem, parts, &stats);
    ASSERT_TRUE(got.ok()) << tag << " case " << case_index << ": tree_merge";
    ExpectAgrees(problem, direct, got->value, got->basis.size(), basis_size_slack,
                 "tree_merge", tag, case_index);
  }
}

TEST(DifferentialRandomTest, LpInstances) {
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1F000ULL + i;
    const size_t n = 600 + (i * 137) % 1400;
    auto c = testing_util::MakeFeasibleLpCase(n, 2, seed);
    RunDifferentialCase(c.problem, c.constraints, seed, "lp", i);
  }
}

/// Planted-support separable SVM instance in 2D (see the header comment):
/// the optimum is exactly w/margin with norm_squared 1/margin^2, supported
/// by the two planted margin points. Both get the SAME raw perpendicular
/// sign: under z = label * x the pair's perp components then have opposite
/// signs, which puts w/margin inside their dual cone (with `side *` on the
/// perp term the cone degenerates and the pair is NOT the support). Every
/// other point is rejection-sampled outside a 50% moat, so the support is
/// unique with a wide conditioning gap.
std::vector<SvmPoint> PlantedSupportSvm(size_t n, double margin, Rng* rng) {
  Vec w(2);
  double norm = 0;
  for (size_t i = 0; i < 2; ++i) {
    w[i] = rng->Normal();
    norm += w[i] * w[i];
  }
  norm = std::sqrt(norm);
  for (size_t i = 0; i < 2; ++i) w[i] /= norm;
  Vec perp(2);
  perp[0] = -w[1];
  perp[1] = w[0];
  std::vector<SvmPoint> out;
  out.reserve(n);
  auto plant = [&](double side) {
    SvmPoint p;
    p.x = w * (side * margin) + perp * rng->UniformDouble(1.0, 8.0);
    p.label = side >= 0 ? 1 : -1;
    out.push_back(std::move(p));
  };
  plant(+1.0);
  plant(-1.0);
  const double moat = margin * 1.5;
  while (out.size() < n) {
    Vec x(2);
    for (size_t i = 0; i < 2; ++i) x[i] = rng->UniformDouble(-10, 10);
    double proj = w.Dot(x);
    if (std::fabs(proj) < moat) continue;
    SvmPoint p;
    p.x = std::move(x);
    p.label = proj >= 0 ? 1 : -1;
    out.push_back(std::move(p));
  }
  // Move the planted pair off the fixed head positions.
  std::swap(out[0], out[rng->UniformIndex(out.size())]);
  std::swap(out[1], out[rng->UniformIndex(out.size())]);
  return out;
}

TEST(DifferentialRandomTest, SvmInstances) {
  LinearSvm::Config config;
  config.value_tol = 2e-2;  // The differential policy tolerance (header).
  const LinearSvm problem(2, config);
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1F500ULL + i;
    const size_t n = 400 + (i * 113) % 800;
    Rng rng(seed);
    auto points = PlantedSupportSvm(n, /*margin=*/1.0, &rng);
    RunDifferentialCase(problem, points, seed, "svm", i,
                        /*basis_size_slack=*/1);
  }
}

TEST(DifferentialRandomTest, MebInstances) {
  for (size_t i = 0; i < kCasesPerProblem; ++i) {
    const uint64_t seed = 0xD1FA00ULL + i;
    const size_t n = 500 + (i * 101) % 1200;
    auto c = testing_util::MakeGaussianMebCase(n, 3, seed);
    RunDifferentialCase(c.problem, c.points, seed, "meb", i);
  }
}

}  // namespace
}  // namespace lplow

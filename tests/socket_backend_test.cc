// lp_served daemon + SocketSolveBackend over loopback Unix and TCP sockets
// (label `slow`; also in the TSan CI matrix). Pins the ISSUE's acceptance
// contract: engine transcripts (deterministic counters + basis hashes) are
// bit-identical between the serial path, the in-process
// ShardedSolverService, and the socket-served backend across shard counts
// {1,2,4}, transports {unix, tcp}, pipeline windows {1,8}, and
// multi-daemon shard clusters {1,2,3} — plus the failure ladder: failover
// off a dead endpoint (with dial-attempt accounting), local fallback when
// every endpoint is dead, clean handling of busy, mute (timeout),
// garbage-speaking, and oversized-reply servers, and the live-socket
// hijack refusal.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/deterministic/deterministic_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/lp_client.h"
#include "src/runtime/lp_served.h"
#include "src/runtime/net_io.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/runtime/trace.h"
#include "src/runtime/wire.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

namespace wire = runtime::wire;
namespace net = runtime::net;
using runtime::MetricsRegistry;
using runtime::ShardedSolverService;
using runtime::SocketSolveBackend;
using runtime::SolveDaemon;
using testing_util::BasisHash;

std::string TestSocketPath(const std::string& name) {
  return "/tmp/lplow_" + std::to_string(::getpid()) + "_" + name + ".sock";
}

// ------------------------------------------------ transcript fingerprints
// Same fingerprint the in-process backend sweep pins
// (sharded_service_test.cc): basis bytes + every deterministic counter.

struct Transcript {
  uint64_t basis_hash = 0;
  uint64_t iterations = 0;
  uint64_t successful = 0;
  uint64_t rounds_or_passes = 0;
  uint64_t bytes = 0;
  uint64_t sample_bytes = 0;

  bool operator==(const Transcript&) const = default;
};

struct ModelTranscripts {
  Transcript coordinator;
  Transcript mpc;
  Transcript streaming;
  Transcript deterministic;

  bool operator==(const ModelTranscripts&) const = default;
};

template <LpTypeProblem P>
ModelTranscripts RunAllModels(
    const P& problem,
    const std::vector<std::vector<typename P::Constraint>>& parts,
    const std::vector<typename P::Constraint>& input,
    const runtime::RuntimeOptions& runtime) {
  ModelTranscripts out;
  {
    coord::CoordinatorOptions opt;
    opt.net.scale = 0.1;
    opt.seed = 0x5A4DED01ULL;
    opt.runtime = runtime;
    coord::CoordinatorStats stats;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      out.coordinator =
          Transcript{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.rounds,
                     stats.total_bytes, stats.sample_bytes};
    }
  }
  {
    mpc::MpcOptions opt;
    opt.delta = 0.5;
    opt.net.scale = 0.1;
    opt.seed = 0x5A4DED02ULL;
    opt.runtime = runtime;
    mpc::MpcStats stats;
    auto result = mpc::SolveMpc(problem, parts, opt, &stats);
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      out.mpc = Transcript{BasisHash(problem, *result), stats.iterations,
                           stats.successful_iterations, stats.rounds,
                           stats.total_bytes, stats.sample_bytes};
    }
  }
  {
    stream::VectorStream<typename P::Constraint> vs(input);
    stream::StreamingOptions opt;
    opt.net.scale = 0.1;
    opt.seed = 0x5A4DED03ULL;
    opt.runtime = runtime;
    stream::StreamingStats stats;
    auto result = stream::SolveStreaming(problem, vs, opt, &stats);
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      out.streaming =
          Transcript{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.passes,
                     stats.peak_bytes, stats.sample_bytes};
    }
  }
  {
    det::DeterministicOptions opt;
    opt.net.scale = 0.1;
    opt.runtime = runtime;
    det::DeterministicStats stats;
    auto result = det::SolveDeterministic(problem, parts, opt, &stats);
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      out.deterministic =
          Transcript{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.merge_rounds,
                     stats.candidate_bytes, stats.sample_bytes};
    }
  }
  return out;
}

// --------------------------------------------------- transcript identity

TEST(SocketBackendTest, TranscriptsBitIdenticalOverLoopbackAcrossShards) {
  auto c = testing_util::MakeFeasibleLpCase(1500, 2, 71);
  Rng rng(0xD15C1ULL);
  auto parts = workload::Partition(c.constraints, 8, true, &rng);

  // Reference: the serial path, no backend.
  ModelTranscripts want =
      RunAllModels(c.problem, parts, c.constraints, runtime::RuntimeOptions{});
  ASSERT_NE(want.coordinator, Transcript{});

  // Cross-check: the in-process sharded backend reproduces it (so the
  // loopback comparison below is a three-way identity).
  {
    MetricsRegistry reg;
    ShardedSolverService::Options sopt;
    sopt.num_shards = 2;
    sopt.threads_per_shard = 2;
    sopt.metrics = &reg;
    ShardedSolverService service(sopt);
    runtime::RuntimeOptions ropt;
    ropt.num_threads = 2;
    ropt.solver_backend = &service;
    ropt.oversized_basis_threshold = 1;
    EXPECT_EQ(RunAllModels(c.problem, parts, c.constraints, ropt), want)
        << "in-process sharded transcript drifted";
  }

  for (size_t shards : {1u, 2u, 4u}) {
    MetricsRegistry reg;
    SolveDaemon::Options dopt;
    dopt.socket_path = TestSocketPath("loopback" + std::to_string(shards));
    dopt.num_shards = shards;
    dopt.threads_per_shard = 2;
    dopt.metrics = &reg;
    auto daemon = SolveDaemon::Start(dopt);
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

    SocketSolveBackend::Options copt;
    copt.endpoints = {dopt.socket_path};
    copt.metrics = &reg;
    auto client = SocketSolveBackend::Create(copt);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    runtime::RuntimeOptions ropt;
    ropt.num_threads = 2;
    ropt.solver_backend = client->get();
    ropt.oversized_basis_threshold = 1;  // Route every basis solve.
    ModelTranscripts got = RunAllModels(c.problem, parts, c.constraints, ropt);
    EXPECT_EQ(got, want) << "loopback transcript drifted at shards=" << shards;

    // The solves really crossed the socket: no local fallback ran, and the
    // daemon solved exactly what the client counts as remote successes.
    auto cstats = (*client)->stats();
    EXPECT_GT(cstats.remote_success, 0u);
    EXPECT_EQ(cstats.local_fallbacks, 0u);
    EXPECT_EQ(cstats.remote_errors, 0u);
    auto dstats = (*daemon)->stats();
    EXPECT_EQ(dstats.solved, cstats.remote_success);
    EXPECT_EQ(dstats.malformed, 0u);
    EXPECT_GT((*daemon)->service().total_stats().solves, 0u);

    (*daemon)->Shutdown();
  }
}

TEST(SocketBackendTest, TranscriptsBitIdenticalOverTcpLoopback) {
  auto c = testing_util::MakeFeasibleLpCase(1000, 2, 31);
  Rng rng(0x7C9ULL);
  auto parts = workload::Partition(c.constraints, 6, true, &rng);

  ModelTranscripts want =
      RunAllModels(c.problem, parts, c.constraints, runtime::RuntimeOptions{});
  ASSERT_NE(want.coordinator, Transcript{});

  for (size_t shards : {1u, 2u}) {
    MetricsRegistry reg;
    SolveDaemon::Options dopt;
    dopt.socket_path = "tcp:127.0.0.1:0";  // Ephemeral port.
    dopt.num_shards = shards;
    dopt.threads_per_shard = 2;
    dopt.metrics = &reg;
    auto daemon = SolveDaemon::Start(dopt);
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
    // The bound endpoint carries the kernel-assigned port.
    const std::string bound = (*daemon)->bound_endpoint();
    ASSERT_NE(bound, dopt.socket_path) << "ephemeral port not resolved";

    SocketSolveBackend::Options copt;
    copt.endpoints = {bound};
    copt.metrics = &reg;
    auto client = SocketSolveBackend::Create(copt);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    runtime::RuntimeOptions ropt;
    ropt.num_threads = 2;
    ropt.solver_backend = client->get();
    ropt.oversized_basis_threshold = 1;
    ModelTranscripts got = RunAllModels(c.problem, parts, c.constraints, ropt);
    EXPECT_EQ(got, want) << "tcp transcript drifted at shards=" << shards;

    auto cstats = (*client)->stats();
    EXPECT_GT(cstats.remote_success, 0u);
    EXPECT_EQ(cstats.local_fallbacks, 0u);
    // The transport's bytes really were accounted.
    auto estats = (*client)->endpoint_stats(0);
    EXPECT_GT(estats.tx_bytes, 0u);
    EXPECT_GT(estats.rx_bytes, 0u);
    (*daemon)->Shutdown();
  }
}

TEST(SocketBackendTest, TranscriptsBitIdenticalUnderPipelining) {
  auto c = testing_util::MakeFeasibleLpCase(1000, 2, 47);
  Rng rng(0x91BEULL);
  auto parts = workload::Partition(c.constraints, 6, true, &rng);

  ModelTranscripts want =
      RunAllModels(c.problem, parts, c.constraints, runtime::RuntimeOptions{});
  ASSERT_NE(want.coordinator, Transcript{});

  for (size_t window : {1u, 8u}) {
    MetricsRegistry reg;
    SolveDaemon::Options dopt;
    dopt.socket_path = TestSocketPath("pipeline" + std::to_string(window));
    dopt.num_shards = 2;
    dopt.threads_per_shard = 2;
    dopt.metrics = &reg;
    auto daemon = SolveDaemon::Start(dopt);
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

    SocketSolveBackend::Options copt;
    copt.endpoints = {dopt.socket_path};
    copt.pipeline_window = window;
    copt.metrics = &reg;
    auto client = SocketSolveBackend::Create(copt);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    runtime::RuntimeOptions ropt;
    ropt.num_threads = 4;  // Concurrent callers share the pipelined wire.
    ropt.solver_backend = client->get();
    ropt.oversized_basis_threshold = 1;
    ModelTranscripts got = RunAllModels(c.problem, parts, c.constraints, ropt);
    EXPECT_EQ(got, want) << "pipelined transcript drifted at window="
                         << window;

    auto cstats = (*client)->stats();
    EXPECT_GT(cstats.remote_success, 0u);
    EXPECT_EQ(cstats.local_fallbacks, 0u);
    EXPECT_EQ(cstats.timeouts, 0u);
    EXPECT_EQ((*daemon)->stats().solved, cstats.remote_success);
    (*daemon)->Shutdown();
  }
}

TEST(SocketBackendTest, ShardedDaemonClusterIsBitIdenticalAcrossSizes) {
  auto c = testing_util::MakeFeasibleLpCase(1000, 2, 53);
  Rng rng(0x5AADD5ULL);
  auto parts = workload::Partition(c.constraints, 6, true, &rng);

  ModelTranscripts want =
      RunAllModels(c.problem, parts, c.constraints, runtime::RuntimeOptions{});
  ASSERT_NE(want.coordinator, Transcript{});

  for (size_t cluster : {1u, 2u, 3u}) {
    MetricsRegistry reg;
    std::vector<std::unique_ptr<SolveDaemon>> daemons;
    std::vector<std::string> endpoints;
    for (size_t i = 0; i < cluster; ++i) {
      SolveDaemon::Options dopt;
      dopt.socket_path = TestSocketPath("cluster" + std::to_string(cluster) +
                                        "_" + std::to_string(i));
      dopt.num_shards = 1;
      dopt.threads_per_shard = 2;
      dopt.metrics = &reg;
      auto daemon = SolveDaemon::Start(dopt);
      ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
      endpoints.push_back(dopt.socket_path);
      daemons.push_back(std::move(*daemon));
    }

    SocketSolveBackend::Options copt;
    copt.endpoints = endpoints;
    copt.routing = SocketSolveBackend::RoutingMode::kShardByJobHash;
    copt.metrics = &reg;
    auto client = SocketSolveBackend::Create(copt);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    runtime::RuntimeOptions ropt;
    ropt.num_threads = 2;
    ropt.solver_backend = client->get();
    ropt.oversized_basis_threshold = 1;
    ModelTranscripts got = RunAllModels(c.problem, parts, c.constraints, ropt);
    EXPECT_EQ(got, want) << "sharded-cluster transcript drifted at size="
                         << cluster;

    // Every remote solve landed on exactly one daemon of the cluster, and
    // nothing fell back or moved off its home shard.
    auto cstats = (*client)->stats();
    EXPECT_GT(cstats.remote_success, 0u);
    EXPECT_EQ(cstats.local_fallbacks, 0u);
    EXPECT_EQ(cstats.failovers, 0u);
    uint64_t daemon_solved = 0;
    for (auto& daemon : daemons) daemon_solved += daemon->stats().solved;
    EXPECT_EQ(daemon_solved, cstats.remote_success);
    for (auto& daemon : daemons) daemon->Shutdown();
  }
}

// ------------------------------------------------------------- failover

TEST(SocketBackendTest, FailsOverFromADeadEndpoint) {
  auto c = testing_util::MakeFeasibleLpCase(64, 2, 5);

  MetricsRegistry reg;
  SolveDaemon::Options dopt;
  dopt.socket_path = TestSocketPath("failover_live");
  dopt.num_shards = 2;
  dopt.metrics = &reg;
  auto daemon = SolveDaemon::Start(dopt);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  SocketSolveBackend::Options copt;
  // Endpoint 0 never existed; jobs homed there must fail over to 1.
  copt.endpoints = {TestSocketPath("failover_dead"), dopt.socket_path};
  copt.failover_threshold = 3;
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  size_t homed_dead = 0;
  for (uint64_t job_id = 0; job_id < 24; ++job_id) {
    if (runtime::StableJobHash(job_id) % 2 == 0) ++homed_dead;
    auto request = wire::EncodeSolveRequestPayload(
        job_id, c.problem,
        std::span<const Halfspace>(c.constraints.data(),
                                   c.constraints.size()));
    std::vector<uint8_t> response;
    ASSERT_TRUE(
        (*client)->ExecuteSerialized(job_id, "test", request, &response))
        << "job " << job_id << " was not served";
    auto decoded =
        wire::DecodeSolveResponsePayload(c.problem, response, job_id);
    EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  }
  ASSERT_GT(homed_dead, 0u);  // The hash really homed some jobs on the dead end.

  auto stats = (*client)->stats();
  EXPECT_EQ(stats.remote_success, 24u);
  EXPECT_GT(stats.failovers, 0u);
  auto dead = (*client)->endpoint_stats(0);
  EXPECT_GT(dead.failures, 0u);
  EXPECT_FALSE(dead.healthy);  // Threshold consecutive dial failures.
  // Dial accounting counts ATTEMPTS: a daemon that never answered still
  // shows its dials, and every one of them as a dial failure (the old
  // code only counted successful hellos, so a dead endpoint reported 0
  // dials — indistinguishable from "never tried").
  EXPECT_GT(dead.dials, 0u);
  EXPECT_EQ(dead.dial_failures, dead.dials);
  auto live = (*client)->endpoint_stats(1);
  EXPECT_TRUE(live.healthy);
  EXPECT_GT(live.dials, 0u);
  EXPECT_EQ(live.dial_failures, 0u);
  (*daemon)->Shutdown();
}

TEST(SocketBackendTest, AllEndpointsDeadFallsBackToIdenticalLocalSolve) {
  auto c = testing_util::MakeFeasibleLpCase(400, 2, 9);
  Rng rng(0xD15C1ULL);
  auto parts = workload::Partition(c.constraints, 4, true, &rng);

  ModelTranscripts want =
      RunAllModels(c.problem, parts, c.constraints, runtime::RuntimeOptions{});

  MetricsRegistry reg;
  SocketSolveBackend::Options copt;
  copt.endpoints = {TestSocketPath("dead0"), TestSocketPath("dead1")};
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  runtime::RuntimeOptions ropt;
  ropt.solver_backend = client->get();
  ropt.oversized_basis_threshold = 1;
  ModelTranscripts got = RunAllModels(c.problem, parts, c.constraints, ropt);
  EXPECT_EQ(got, want)
      << "local fallback transcript differs from the serial path";

  auto stats = (*client)->stats();
  EXPECT_EQ(stats.remote_success, 0u);
  EXPECT_GT(stats.local_fallbacks, 0u);
  EXPECT_EQ(stats.local_fallbacks, stats.requests);
}

// ----------------------------------------------------- hostile servers

/// A scripted one-connection server: sends `hello_bytes` on accept, then
/// answers every request frame with `reply` (empty = stay mute).
class FakeServer {
 public:
  FakeServer(const std::string& path, std::vector<uint8_t> hello_bytes,
             std::vector<uint8_t> reply)
      : path_(path) {
    auto listen = net::ListenUnix(path, 4);
    EXPECT_TRUE(listen.ok()) << listen.status().ToString();
    listen_fd_ = *listen;
    thread_ = std::thread([this, hello = std::move(hello_bytes),
                           reply = std::move(reply)] {
      while (true) {
        auto accepted = net::AcceptConnection(listen_fd_);
        if (!accepted.ok()) return;  // Listen fd closed: shutting down.
        int fd = *accepted;
        if (!hello.empty()) {
          (void)net::WriteAll(fd, hello.data(), hello.size());
        }
        // Serve request frames until the peer hangs up.
        while (true) {
          auto frame = net::ReadFrame(fd, /*timeout_ms=*/2000);
          if (!frame.ok()) break;
          if (reply.empty()) continue;  // Mute server: never answer.
          if (!net::WriteAll(fd, reply.data(), reply.size()).ok()) break;
        }
        net::CloseFd(fd);
      }
    });
  }

  ~FakeServer() {
    // shutdown() is what wakes a thread blocked in accept(2); close alone
    // would leave it hanging.
    ::shutdown(listen_fd_, SHUT_RDWR);
    net::CloseFd(listen_fd_);
    thread_.join();
    ::unlink(path_.c_str());
  }

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::thread thread_;
};

std::vector<uint8_t> ValidHelloBytes() {
  wire::Hello hello;
  hello.num_shards = 1;
  return wire::EncodeFrame(wire::FrameKind::kHello,
                           wire::EncodeHelloPayload(hello));
}

std::vector<uint8_t> SmallLpRequest(uint64_t job_id,
                                    const testing_util::LpCase& c) {
  return wire::EncodeSolveRequestPayload(
      job_id, c.problem,
      std::span<const Halfspace>(c.constraints.data(), c.constraints.size()));
}

TEST(SocketBackendTest, BusyServerMeansLocalFallbackNotAnError) {
  auto c = testing_util::MakeFeasibleLpCase(16, 2, 3);
  const std::string path = TestSocketPath("busy");
  FakeServer server(path, ValidHelloBytes(),
                    wire::EncodeFrame(wire::FrameKind::kBusy, {}));

  MetricsRegistry reg;
  SocketSolveBackend::Options copt;
  copt.endpoints = {path};
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  std::vector<uint8_t> response;
  EXPECT_FALSE(
      (*client)->ExecuteSerialized(1, "test", SmallLpRequest(1, c), &response));
  auto stats = (*client)->stats();
  EXPECT_GE(stats.busy, 1u);
  // Busy is saturation, not breakage: the endpoint stays healthy.
  EXPECT_TRUE((*client)->endpoint_stats(0).healthy);
}

TEST(SocketBackendTest, MuteServerTimesOutCleanly) {
  auto c = testing_util::MakeFeasibleLpCase(16, 2, 3);
  const std::string path = TestSocketPath("mute");
  FakeServer server(path, ValidHelloBytes(), /*reply=*/{});

  MetricsRegistry reg;
  SocketSolveBackend::Options copt;
  copt.endpoints = {path};
  copt.request_timeout_ms = 150;
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  std::vector<uint8_t> response;
  EXPECT_FALSE(
      (*client)->ExecuteSerialized(2, "test", SmallLpRequest(2, c), &response));
  EXPECT_GE((*client)->stats().timeouts, 1u);
}

TEST(SocketBackendTest, GarbageServerResponseHandledCleanly) {
  auto c = testing_util::MakeFeasibleLpCase(16, 2, 3);
  const std::string path = TestSocketPath("garbage");
  // 32 bytes that are not a frame (wrong magic).
  FakeServer server(path, ValidHelloBytes(),
                    std::vector<uint8_t>(32, uint8_t{0xAB}));

  MetricsRegistry reg;
  SocketSolveBackend::Options copt;
  copt.endpoints = {path};
  copt.request_timeout_ms = 1000;
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  std::vector<uint8_t> response;
  EXPECT_FALSE(
      (*client)->ExecuteSerialized(3, "test", SmallLpRequest(3, c), &response));
}

TEST(SocketBackendTest, OversizedReplyIsNeitherBusyNorTimeout) {
  auto c = testing_util::MakeFeasibleLpCase(16, 2, 3);
  const std::string path = TestSocketPath("oversized");
  // A well-formed frame whose declared payload exceeds the client's frame
  // ceiling: the client must reject it at the header — and classify it as
  // a protocol error, NOT a timeout (the old substring/status-code match
  // lumped every ResourceExhausted into `timeouts`).
  FakeServer server(path, ValidHelloBytes(),
                    wire::EncodeFrame(wire::FrameKind::kSolveResponse,
                                      std::vector<uint8_t>(2048, uint8_t{7})));

  MetricsRegistry reg;
  SocketSolveBackend::Options copt;
  copt.endpoints = {path};
  copt.max_frame_payload = 1024;
  copt.request_timeout_ms = 2000;
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  std::vector<uint8_t> response;
  EXPECT_FALSE(
      (*client)->ExecuteSerialized(4, "test", SmallLpRequest(4, c), &response));
  auto stats = (*client)->stats();
  EXPECT_EQ(stats.timeouts, 0u) << "oversized reply misclassified as timeout";
  EXPECT_EQ(stats.busy, 0u);
}

TEST(SocketBackendTest, SecondDaemonCannotHijackALiveSocket) {
  MetricsRegistry reg;
  SolveDaemon::Options dopt;
  dopt.socket_path = TestSocketPath("owner");
  dopt.num_shards = 1;
  dopt.metrics = &reg;
  auto first = SolveDaemon::Start(dopt);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // A second daemon on the same path must fail LOUDLY at startup — the old
  // listener unlinked the socket unconditionally, silently stealing every
  // future client from the running daemon.
  auto second = SolveDaemon::Start(dopt);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists)
      << second.status().ToString();

  // The first daemon still owns the socket and still serves.
  SocketSolveBackend::Options copt;
  copt.endpoints = {dopt.socket_path};
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping(0).ok());
  (*first)->Shutdown();
}

// ------------------------------------------------- daemon-side protocol

TEST(SocketBackendTest, PingPongAndRemoteShutdown) {
  MetricsRegistry reg;
  SolveDaemon::Options dopt;
  dopt.socket_path = TestSocketPath("shutdown");
  dopt.num_shards = 1;
  dopt.allow_remote_shutdown = true;
  dopt.metrics = &reg;
  auto daemon = SolveDaemon::Start(dopt);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  SocketSolveBackend::Options copt;
  copt.endpoints = {dopt.socket_path};
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  EXPECT_TRUE((*client)->Ping(0).ok());
  EXPECT_GE((*daemon)->stats().pings, 1u);

  Status st = (*client)->RequestServerShutdown(0);
  EXPECT_TRUE(st.ok()) << st.ToString();
  (*daemon)->WaitForShutdownRequest();  // Returns promptly: flag is set.
  (*daemon)->Shutdown();

  // The daemon is gone: fresh connections fail.
  (*client)->CloseIdleConnections();
  EXPECT_FALSE((*client)->Ping(0).ok());
}

TEST(SocketBackendTest, RemoteShutdownRefusedWhenNotAllowed) {
  MetricsRegistry reg;
  SolveDaemon::Options dopt;
  dopt.socket_path = TestSocketPath("no_shutdown");
  dopt.num_shards = 1;
  dopt.metrics = &reg;  // allow_remote_shutdown defaults to false.
  auto daemon = SolveDaemon::Start(dopt);
  ASSERT_TRUE(daemon.ok());

  SocketSolveBackend::Options copt;
  copt.endpoints = {dopt.socket_path};
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  Status st = (*client)->RequestServerShutdown(0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The daemon kept running.
  EXPECT_TRUE((*client)->Ping(0).ok());
  (*daemon)->Shutdown();
}

TEST(SocketBackendTest, DaemonSurvivesMalformedClient) {
  auto c = testing_util::MakeFeasibleLpCase(16, 2, 3);
  MetricsRegistry reg;
  SolveDaemon::Options dopt;
  dopt.socket_path = TestSocketPath("malformed");
  dopt.num_shards = 1;
  dopt.metrics = &reg;
  auto daemon = SolveDaemon::Start(dopt);
  ASSERT_TRUE(daemon.ok());

  {
    // A peer speaking garbage: the daemon answers kError and cuts it off.
    auto fd = net::DialUnix(dopt.socket_path);
    ASSERT_TRUE(fd.ok());
    auto hello = net::ReadFrame(*fd, 2000);
    ASSERT_TRUE(hello.ok());
    ASSERT_EQ(hello->header.kind, wire::FrameKind::kHello);
    std::vector<uint8_t> garbage(wire::kFrameHeaderBytes, uint8_t{0xEE});
    ASSERT_TRUE(net::WriteAll(*fd, garbage.data(), garbage.size()).ok());
    auto reply = net::ReadFrame(*fd, 2000);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->header.kind, wire::FrameKind::kError);
    net::CloseFd(*fd);
  }
  EXPECT_GE((*daemon)->stats().malformed, 1u);

  // And a well-formed client is still served afterwards.
  SocketSolveBackend::Options copt;
  copt.endpoints = {dopt.socket_path};
  copt.metrics = &reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());
  std::vector<uint8_t> response;
  EXPECT_TRUE(
      (*client)->ExecuteSerialized(9, "test", SmallLpRequest(9, c), &response));
  auto decoded = wire::DecodeSolveResponsePayload(c.problem, response, 9);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  (*daemon)->Shutdown();
}

TEST(SocketBackendTest, StatsScrapeReturnsTheDaemonsLiveRegistryJson) {
  auto c = testing_util::MakeFeasibleLpCase(16, 2, 3);
  MetricsRegistry daemon_reg;
  SolveDaemon::Options dopt;
  dopt.socket_path = TestSocketPath("scrape");
  dopt.num_shards = 1;
  dopt.metrics = &daemon_reg;
  auto daemon = SolveDaemon::Start(dopt);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  MetricsRegistry client_reg;
  SocketSolveBackend::Options copt;
  copt.endpoints = {dopt.socket_path};
  copt.metrics = &client_reg;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  // Put one real solve on the books so the scraped registry is populated.
  std::vector<uint8_t> response;
  ASSERT_TRUE(
      (*client)->ExecuteSerialized(5, "test", SmallLpRequest(5, c), &response));

  auto stats = (*client)->ScrapeStats(0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The daemon's registry, not the client's: wire.daemon.* counters with a
  // populated request-bytes histogram.
  EXPECT_NE(stats->metrics_json.find("\"wire.daemon.requests\":"),
            std::string::npos)
      << stats->metrics_json;
  EXPECT_NE(stats->metrics_json.find(
                "\"wire.daemon.request_bytes\":{\"count\":1"),
            std::string::npos)
      << stats->metrics_json;
  EXPECT_TRUE(stats->trace_json.empty());  // Not asked for.
  EXPECT_EQ(daemon_reg.ToJson(), stats->metrics_json);
  EXPECT_GE((*daemon)->stats().stats_requests, 1u);

  // The one-shot convenience wrapper sees the same registry.
  auto oneshot = runtime::ScrapeDaemonStats(dopt.socket_path);
  ASSERT_TRUE(oneshot.ok()) << oneshot.status().ToString();
  EXPECT_NE(oneshot->metrics_json.find("\"wire.daemon.solved\":"),
            std::string::npos);
  (*daemon)->Shutdown();
}

TEST(SocketBackendTest, TraceContextStitchesAcrossTheSocketBoundary) {
  auto c = testing_util::MakeFeasibleLpCase(600, 2, 17);
  Rng rng(0x57D7C4ULL);
  auto parts = workload::Partition(c.constraints, 4, true, &rng);

  MetricsRegistry daemon_reg;
  runtime::trace::TraceRecorder daemon_recorder(true);
  SolveDaemon::Options dopt;
  dopt.socket_path = TestSocketPath("stitch");
  dopt.num_shards = 1;
  dopt.metrics = &daemon_reg;
  dopt.trace = &daemon_recorder;
  auto daemon = SolveDaemon::Start(dopt);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  MetricsRegistry client_reg;
  runtime::trace::TraceRecorder client_recorder(true);
  SocketSolveBackend::Options copt;
  copt.endpoints = {dopt.socket_path};
  copt.metrics = &client_reg;
  copt.trace = &client_recorder;
  auto client = SocketSolveBackend::Create(copt);
  ASSERT_TRUE(client.ok());

  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 0x57D7C4ULL;
  opt.runtime.trace = &client_recorder;
  opt.runtime.solver_backend = client->get();
  opt.runtime.oversized_basis_threshold = 1;  // Route every basis solve.
  auto result = coord::SolveCoordinator(c.problem, parts, opt, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT((*client)->stats().remote_success, 0u);

  // Some client basis-solve span's trace id crossed inside the v2 frames
  // and must come back verbatim in the daemon's exported spans.
  uint64_t basis_trace_id = 0;
  for (const auto& event : client_recorder.Snapshot()) {
    if (std::string(event.name) == "engine.basis_solve" &&
        event.trace_id != 0) {
      basis_trace_id = event.trace_id;
      break;
    }
  }
  ASSERT_NE(basis_trace_id, 0u);

  auto stats = (*client)->ScrapeStats(0, /*include_trace=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_FALSE(stats->trace_json.empty());
  const std::string needle = "\"trace_id\":" + std::to_string(basis_trace_id);
  EXPECT_NE(stats->trace_json.find(needle), std::string::npos);
  for (const char* span : {"daemon.request", "daemon.decode", "daemon.solve",
                           "daemon.encode"}) {
    EXPECT_NE(stats->trace_json.find(span), std::string::npos) << span;
  }
  // And the daemon recorded queue-wait/execute histograms while serving.
  EXPECT_NE(stats->metrics_json.find("service.shard.execute_seconds"),
            std::string::npos);
  (*daemon)->Shutdown();
}

}  // namespace
}  // namespace lplow

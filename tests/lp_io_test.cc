#include "src/workload/lp_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/problems/linear_program.h"
#include "src/util/rng.h"

namespace lplow {
namespace workload {
namespace {

TEST(LpIoTest, ParsesMinimalInstance) {
  std::istringstream in(
      "# comment\n"
      "lp 2\n"
      "objective 1 0.5\n"
      "c -1 0 2   # x >= -2\n"
      "c 0 -1 3\n");
  auto inst = ReadLpInstance(in);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  EXPECT_EQ(inst->objective.dim(), 2u);
  EXPECT_EQ(inst->objective[1], 0.5);
  ASSERT_EQ(inst->constraints.size(), 2u);
  EXPECT_EQ(inst->constraints[0].a[0], -1);
  EXPECT_EQ(inst->constraints[1].b, 3);
}

TEST(LpIoTest, GoldenFormat) {
  // Pins the exact on-disk text for a hand-built instance, so accidental
  // format changes (which would orphan saved instance files) fail loudly.
  LpInstance inst;
  inst.objective = Vec{1, 0.5};
  inst.constraints.push_back(Halfspace(Vec{-1, 0}, 2));
  inst.constraints.push_back(Halfspace(Vec{0.25, -1}, 3.5));
  std::ostringstream out;
  ASSERT_TRUE(WriteLpInstance(inst, out).ok());
  EXPECT_EQ(out.str(),
            "lp 2\n"
            "objective 1 0.5\n"
            "c -1 0 2\n"
            "c 0.25 -1 3.5\n");
  std::istringstream in(out.str());
  auto parsed = ReadLpInstance(in);
  ASSERT_TRUE(parsed.ok());
  std::ostringstream out2;
  ASSERT_TRUE(WriteLpInstance(*parsed, out2).ok());
  EXPECT_EQ(out2.str(), out.str()) << "write -> read -> write must be a fixpoint";
}

TEST(LpIoTest, RoundTripExact) {
  Rng rng(9);
  auto inst = RandomFeasibleLp(50, 3, &rng);
  std::ostringstream out;
  ASSERT_TRUE(WriteLpInstance(inst, out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadLpInstance(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->constraints.size(), inst.constraints.size());
  for (size_t i = 0; i < inst.constraints.size(); ++i) {
    EXPECT_EQ(parsed->constraints[i].b, inst.constraints[i].b);
    EXPECT_TRUE(parsed->constraints[i].a.ApproxEquals(
        inst.constraints[i].a, 0.0));
  }
  EXPECT_TRUE(parsed->objective.ApproxEquals(inst.objective, 0.0));
}

TEST(LpIoTest, RoundTripSolvesToSameOptimum) {
  Rng rng(10);
  auto inst = RandomFeasibleLp(100, 2, &rng);
  std::ostringstream out;
  ASSERT_TRUE(WriteLpInstance(inst, out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadLpInstance(in);
  ASSERT_TRUE(parsed.ok());
  LinearProgram problem(inst.objective);
  auto a = problem.SolveValue(std::span<const Halfspace>(inst.constraints));
  auto b = problem.SolveValue(
      std::span<const Halfspace>(parsed->constraints));
  EXPECT_EQ(problem.CompareValues(a, b), 0);
}

TEST(LpIoTest, ErrorsCarryLineNumbers) {
  {
    std::istringstream in("objective 1 2\n");
    auto r = ReadLpInstance(in);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  }
  {
    std::istringstream in("lp 2\nobjective 1\n");
    auto r = ReadLpInstance(in);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  }
  {
    std::istringstream in("lp 2\nobjective 1 2\nc 1 2\n");
    EXPECT_FALSE(ReadLpInstance(in).ok());  // Missing b.
  }
  {
    std::istringstream in("lp 2\nobjective 1 2\nfrobnicate\n");
    auto r = ReadLpInstance(in);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("frobnicate"), std::string::npos);
  }
}

TEST(LpIoTest, RejectsMissingPieces) {
  {
    std::istringstream in("");
    EXPECT_FALSE(ReadLpInstance(in).ok());
  }
  {
    std::istringstream in("lp 2\n");
    EXPECT_FALSE(ReadLpInstance(in).ok());  // No objective.
  }
  {
    std::istringstream in("lp 0\n");
    EXPECT_FALSE(ReadLpInstance(in).ok());  // Bad dimension.
  }
  {
    std::istringstream in("lp 2\nlp 2\n");
    EXPECT_FALSE(ReadLpInstance(in).ok());  // Duplicate header.
  }
  {
    std::istringstream in("lp 2\nobjective 1 2\nc 1 x 3\n");
    EXPECT_FALSE(ReadLpInstance(in).ok());  // Non-numeric.
  }
}

TEST(LpIoTest, FileRoundTrip) {
  Rng rng(11);
  auto inst = RandomFeasibleLp(10, 2, &rng);
  const std::string path = "/tmp/lplow_io_test.lp";
  ASSERT_TRUE(WriteLpInstanceToFile(inst, path).ok());
  auto parsed = ReadLpInstanceFromFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->constraints.size(), 10u);
  auto missing = ReadLpInstanceFromFile("/tmp/does_not_exist.lp");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(LpIoTest, DimensionMismatchOnWrite) {
  LpInstance inst;
  inst.objective = Vec{1, 2};
  inst.constraints.push_back(Halfspace(Vec{1, 2, 3}, 4));
  std::ostringstream out;
  EXPECT_FALSE(WriteLpInstance(inst, out).ok());
}

}  // namespace
}  // namespace workload
}  // namespace lplow

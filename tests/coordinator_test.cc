// Tests of the Theorem 2 coordinator solver and the Lemma 3.7 sampling
// protocol: correctness, round structure (3 rounds per iteration),
// communication accounting, and scaling in k.

#include "src/models/coordinator/coordinator_solver.h"

#include <gtest/gtest.h>

#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using testing_util::ExpectMatchesDirect;
using testing_util::MakeFeasibleLpCase;
using coord::CoordinatorOptions;
using coord::CoordinatorStats;
using coord::SolveCoordinator;

TEST(ChannelTest, AccountsBytesAndRounds) {
  coord::Channel ch(2);
  ch.BeginRound();
  ch.ToSite(0, {1, 2, 3});
  ch.ToCoordinator(0, {4, 5});
  ch.BeginRound();
  ch.ToSite(1, {6});
  EXPECT_EQ(ch.rounds(), 2u);
  EXPECT_EQ(ch.total_bytes(), 6u);
  EXPECT_EQ(ch.total_bits(), 48u);
  EXPECT_EQ(ch.messages(), 3u);
  EXPECT_EQ(ch.bytes_to_sites(), 4u);
  EXPECT_EQ(ch.bytes_to_coordinator(), 2u);
}

TEST(CoordinatorTest, MatchesDirectSolveLp) {
  Rng rng(1);
  auto [problem, constraints] = MakeFeasibleLpCase(4000, 2, 1);
  auto parts = workload::Partition(constraints, 4, true, &rng);
  CoordinatorStats stats;
  auto result = SolveCoordinator(problem, parts, {}, &stats);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, constraints, result->value, "coordinator");
  EXPECT_EQ(stats.k, 4u);
  EXPECT_EQ(stats.n, constraints.size());
}

TEST(CoordinatorTest, RoundsAreThreePerIteration) {
  Rng rng(2);
  auto inst = workload::RandomFeasibleLp(6000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 3, true, &rng);
  CoordinatorStats stats;
  auto result = SolveCoordinator(problem, parts, {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.rounds, 3 * stats.iterations);
}

TEST(CoordinatorTest, CommunicationSublinearInN) {
  Rng rng(3);
  auto inst = workload::RandomFeasibleLp(100000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 4, true, &rng);
  CoordinatorOptions opt;
  opt.r = 4;
  opt.net.scale = 0.25;
  CoordinatorStats stats;
  auto result = SolveCoordinator(problem, parts, opt, &stats);
  ASSERT_TRUE(result.ok());
  size_t ship_all_bytes = 0;
  for (const auto& c : inst.constraints) {
    ship_all_bytes += problem.ConstraintBytes(c);
  }
  EXPECT_LT(stats.total_bytes, ship_all_bytes / 2)
      << "must beat ship-everything";
}

TEST(CoordinatorTest, SkewedPartitionStillCorrect) {
  // All constraints on one site, others empty (adversarial partition).
  auto [problem, constraints] = MakeFeasibleLpCase(3000, 2, 4);
  std::vector<std::vector<Halfspace>> parts(5);
  parts[2] = constraints;
  CoordinatorStats stats;
  auto result = SolveCoordinator(problem, parts, {}, &stats);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, constraints, result->value, "coordinator");
}

TEST(CoordinatorTest, ContiguousPartitionStillCorrect) {
  Rng rng(5);
  auto inst = workload::RandomFeasibleLp(3000, 2, &rng);
  // Adversarial: sort then contiguous-partition, so related constraints are
  // co-located.
  std::sort(inst.constraints.begin(), inst.constraints.end(),
            [](const Halfspace& a, const Halfspace& b) { return a.b < b.b; });
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 8, false, &rng);
  auto result = SolveCoordinator(problem, parts, {}, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "coordinator");
}

TEST(CoordinatorTest, SingleSiteWorks) {
  Rng rng(6);
  auto inst = workload::RandomFeasibleLp(2000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto result = SolveCoordinator(problem, {inst.constraints}, {}, nullptr);
  ASSERT_TRUE(result.ok());
}

TEST(CoordinatorTest, NoSitesFails) {
  LinearProgram problem(Vec{1, 1});
  std::vector<std::vector<Halfspace>> parts;
  auto result = SolveCoordinator(problem, parts, {}, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoordinatorTest, InfeasibleDetected) {
  Rng rng(7);
  auto inst = workload::RandomInfeasibleLp(2000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 3, true, &rng);
  auto result = SolveCoordinator(problem, parts, {}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->value.feasible);
}

TEST(CoordinatorTest, WorksForSvmAndMeb) {
  Rng rng(8);
  {
    auto pts = workload::SeparableSvmData(2000, 2, 0.5, &rng);
    LinearSvm problem(2);
    auto parts = workload::Partition(pts, 4, true, &rng);
    auto result = SolveCoordinator(problem, parts, {}, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectMatchesDirect(problem, pts, result->value, "coordinator");
  }
  {
    auto pts = workload::GaussianCloud(4000, 3, &rng);
    MinEnclosingBall problem(3);
    auto parts = workload::Partition(pts, 4, true, &rng);
    auto result = SolveCoordinator(problem, parts, {}, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectMatchesDirect(problem, pts, result->value, "coordinator");
  }
}

class CoordinatorSweep
    : public ::testing::TestWithParam<std::tuple<size_t, int, uint64_t>> {};

TEST_P(CoordinatorSweep, CorrectAcrossKAndR) {
  auto [k, r, seed] = GetParam();
  Rng rng(seed);
  auto [problem, constraints] = MakeFeasibleLpCase(3000, 2, seed);
  auto parts = workload::Partition(constraints, k, true, &rng);
  CoordinatorOptions opt;
  opt.r = r;
  opt.seed = seed * 7;
  auto result = SolveCoordinator(problem, parts, opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, constraints, result->value, "coordinator");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoordinatorSweep,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{8}, size_t{32}),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(51, 52)));

}  // namespace
}  // namespace lplow

// Property suite for the SIMD violator-scan fast path (engine/scan_kernel,
// engine/soa_block, and ConstraintView's problem-aware entry points):
//
//  * bitmap bit-equality: scalar reference kernel == vector kernel ==
//    problem.Violates, for all three problems, across dimensions, sizes
//    straddling kSoaBlockWidth and kParallelScanMinItems, and hostile
//    values (NaN coordinates, +/-inf offsets, denormal weights);
//  * strategy equivalence: every ScanStrategy produces bitwise-identical
//    ViolatorStats and weights;
//  * fused scan-and-reweight: reuses the scan bitmap only when the
//    predicate is byte-identical (counter increments), falls back on a new
//    value or an Append, and always leaves exactly the weights the
//    unfused reference produces;
//  * the SampleIndices prefix cache: identical draws to the uncached
//    span-view reference, invalidated by reweights and appends.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/engine/constraint_store.h"
#include "src/engine/scan_kernel.h"
#include "src/engine/soa_block.h"
#include "src/problems/chebyshev_center.h"
#include "src/problems/enclosing_annulus.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/linf_regression.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"

namespace lplow {
namespace {

using engine::ConstraintStore;
using engine::ConstraintView;
using engine::GlobalScanMetrics;
using engine::kParallelScanMinItems;
using engine::kSoaBlockWidth;
using engine::RunScanKernelVariant;
using engine::ScanOptions;
using engine::ScanQuery;
using engine::ScanWorkspace;
using engine::SimdScannable;
using engine::SoaBlock;
using engine::SoaPaddedSize;
using engine::ViolatorStats;
using runtime::ScanStrategy;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

// ---------------------------------------------------------------- SoaBlock

TEST(SoaBlockTest, PadsColumnsToBlockWidth) {
  SoaBlock b;
  b.Reset(3, 1);
  EXPECT_TRUE(b.shaped());
  EXPECT_EQ(b.padded(), 0u);
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(b.AppendLane(), i);
    b.Set(0, i, static_cast<double>(i));
  }
  EXPECT_EQ(b.size(), 9u);
  EXPECT_EQ(b.padded(), SoaPaddedSize(9));
  EXPECT_EQ(b.padded() % kSoaBlockWidth, 0u);
  // Padding lanes stay zero.
  for (size_t i = 9; i < b.padded(); ++i) EXPECT_EQ(b.Column(0)[i], 0.0);
  EXPECT_EQ(b.Column(0)[4], 4.0);
  b.SetAux(0, 2, 7.5);
  EXPECT_EQ(b.AuxColumn(0)[2], 7.5);
}

TEST(SoaBlockTest, SoaPaddedSizeRoundsUp) {
  EXPECT_EQ(SoaPaddedSize(0), 0u);
  EXPECT_EQ(SoaPaddedSize(1), kSoaBlockWidth);
  EXPECT_EQ(SoaPaddedSize(kSoaBlockWidth), kSoaBlockWidth);
  EXPECT_EQ(SoaPaddedSize(kSoaBlockWidth + 1), 2 * kSoaBlockWidth);
}

// ---------------------------------------------------- per-problem builders

Halfspace RandomHalfspace(size_t dim, Rng* rng) {
  Vec a(dim);
  for (size_t d = 0; d < dim; ++d) a[d] = rng->UniformDouble(-3, 3);
  return Halfspace(std::move(a), rng->UniformDouble(-5, 5));
}

SvmPoint RandomSvmPoint(size_t dim, Rng* rng) {
  SvmPoint p;
  p.x = Vec(dim);
  for (size_t d = 0; d < dim; ++d) p.x[d] = rng->UniformDouble(-4, 4);
  p.label = rng->UniformDouble() < 0.5 ? -1 : 1;
  return p;
}

Vec RandomPoint(size_t dim, Rng* rng) {
  Vec p(dim);
  for (size_t d = 0; d < dim; ++d) p[d] = rng->UniformDouble(-6, 6);
  return p;
}

LinearProgram::Value LpValueAt(size_t dim, Rng* rng) {
  LinearProgram::Value v;
  v.feasible = true;
  v.point = RandomPoint(dim, rng);
  return v;
}

// The generic harness: mirrors `constraints` through the trait, evaluates
// the query with the scalar reference and (when available) the vector
// kernel, and checks both bitmaps byte-for-byte against problem.Violates.
template <typename P, typename V, typename C>
void CheckBitmapEquality(const P& problem, const V& value,
                         const std::vector<C>& constraints) {
  using Trait = SimdScannable<P>;
  ASSERT_FALSE(constraints.empty());
  const size_t dim = Trait::Dim(problem, constraints[0]);
  SoaBlock soa;
  soa.Reset(dim, Trait::kAux);
  for (const C& c : constraints) {
    ASSERT_EQ(Trait::Dim(problem, c), dim);
    size_t lane = soa.AppendLane();
    ASSERT_TRUE(Trait::Mirror(problem, c, &soa, lane));
  }
  ScanQuery query = Trait::MakeQuery(problem, value, dim);
  ASSERT_EQ(query.mode, ScanQuery::Mode::kKernel);

  const size_t n = constraints.size();
  std::vector<uint8_t> expected(n);
  for (size_t i = 0; i < n; ++i) {
    expected[i] = problem.Violates(value, constraints[i]) ? 1 : 0;
  }

  std::vector<uint8_t> scalar(SoaPaddedSize(n), 0xFF);
  ASSERT_TRUE(RunScanKernelVariant(soa, query, scalar.data(), 0, n,
                                   /*use_vector=*/false));
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(scalar[i], expected[i]) << "scalar kernel lane " << i;
  }

  std::vector<uint8_t> vec(SoaPaddedSize(n), 0xFF);
  if (RunScanKernelVariant(soa, query, vec.data(), 0, n,
                           /*use_vector=*/true)) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(vec[i], expected[i]) << "vector kernel lane " << i;
    }
  }
}

// Sizes straddling the block width; one straddle of kParallelScanMinItems
// rides in the strategy tests below (large sizes are slow to re-run per
// dimension).
std::vector<size_t> StraddleSizes() {
  return {1, kSoaBlockWidth - 1, kSoaBlockWidth, kSoaBlockWidth + 1, 61, 256};
}

TEST(ScanKernelProperty, LpBitmapMatchesViolatesAcrossDims) {
  Rng rng(0x5EED01);
  for (size_t dim : {2u, 3u, 8u, 13u}) {
    LinearProgram problem(RandomPoint(dim, &rng));
    for (size_t n : StraddleSizes()) {
      std::vector<Halfspace> cs;
      cs.reserve(n);
      for (size_t i = 0; i < n; ++i) cs.push_back(RandomHalfspace(dim, &rng));
      CheckBitmapEquality(problem, LpValueAt(dim, &rng), cs);
    }
  }
}

TEST(ScanKernelProperty, SvmBitmapMatchesViolatesAcrossDims) {
  Rng rng(0x5EED02);
  for (size_t dim : {2u, 3u, 8u, 13u}) {
    LinearSvm problem(dim);
    for (size_t n : StraddleSizes()) {
      std::vector<SvmPoint> cs;
      cs.reserve(n);
      for (size_t i = 0; i < n; ++i) cs.push_back(RandomSvmPoint(dim, &rng));
      LinearSvm::Value v;
      v.separable = true;
      v.u = RandomPoint(dim, &rng);
      CheckBitmapEquality(problem, v, cs);
    }
  }
}

TEST(ScanKernelProperty, MebBitmapMatchesViolatesAcrossDims) {
  Rng rng(0x5EED03);
  for (size_t dim : {2u, 3u, 8u, 13u}) {
    MinEnclosingBall problem(dim);
    for (size_t n : StraddleSizes()) {
      std::vector<Vec> cs;
      cs.reserve(n);
      for (size_t i = 0; i < n; ++i) cs.push_back(RandomPoint(dim, &rng));
      MinEnclosingBall::Value v;
      v.ball.center = RandomPoint(dim, &rng);
      v.ball.radius = rng.UniformDouble(0.1, 8.0);
      CheckBitmapEquality(problem, v, cs);
    }
  }
}

ChebyshevCenter::Value ChebValueAt(size_t dim, Rng* rng) {
  ChebyshevCenter::Value v;
  v.feasible = true;
  v.center = RandomPoint(dim, rng);
  v.radius = rng->UniformDouble(0.2, 4.0);
  return v;
}

LinfRegression::Value LinfValueAt(size_t dim, Rng* rng) {
  LinfRegression::Value v;
  v.empty = false;
  v.feasible = true;
  v.w = RandomPoint(dim, rng);
  v.t = rng->UniformDouble(0.1, 3.0);
  return v;
}

EnclosingAnnulus::Value AnnulusValueAt(size_t dim, Rng* rng) {
  EnclosingAnnulus::Value v;
  v.empty = false;
  v.feasible = true;
  v.center = RandomPoint(dim, rng);
  v.l = rng->UniformDouble(0.5, 3.0);
  v.u = v.l + rng->UniformDouble(0.5, 6.0);
  return v;
}

RegressionPoint RandomRegressionPoint(size_t dim, Rng* rng) {
  RegressionPoint p;
  p.x = RandomPoint(dim, rng);
  p.y = rng->UniformDouble(-5, 5);
  return p;
}

TEST(ScanKernelProperty, ChebyshevBitmapMatchesViolatesAcrossDims) {
  Rng rng(0x5EED0D);
  for (size_t dim : {2u, 3u, 8u, 13u}) {
    ChebyshevCenter problem(dim);
    for (size_t n : StraddleSizes()) {
      std::vector<Halfspace> cs;
      cs.reserve(n);
      for (size_t i = 0; i < n; ++i) cs.push_back(RandomHalfspace(dim, &rng));
      CheckBitmapEquality(problem, ChebValueAt(dim, &rng), cs);
    }
  }
}

TEST(ScanKernelProperty, LinfRegressionBitmapMatchesViolatesAcrossDims) {
  Rng rng(0x5EED0E);
  for (size_t dim : {2u, 3u, 8u, 13u}) {
    LinfRegression problem(dim);
    for (size_t n : StraddleSizes()) {
      std::vector<RegressionPoint> cs;
      cs.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        cs.push_back(RandomRegressionPoint(dim, &rng));
      }
      CheckBitmapEquality(problem, LinfValueAt(dim, &rng), cs);
    }
  }
}

TEST(ScanKernelProperty, AnnulusBitmapMatchesViolatesAcrossDims) {
  Rng rng(0x5EED0F);
  for (size_t dim : {2u, 3u, 8u, 13u}) {
    EnclosingAnnulus problem(dim);
    for (size_t n : StraddleSizes()) {
      std::vector<Vec> cs;
      cs.reserve(n);
      for (size_t i = 0; i < n; ++i) cs.push_back(RandomPoint(dim, &rng));
      CheckBitmapEquality(problem, AnnulusValueAt(dim, &rng), cs);
    }
  }
}

// --------------------------------------------------------- hostile values

TEST(ScanKernelProperty, LpHostileValuesMatchScalarSemantics) {
  Rng rng(0x5EED04);
  const size_t dim = 3;
  LinearProgram problem(RandomPoint(dim, &rng));
  std::vector<Halfspace> cs;
  for (size_t i = 0; i < 24; ++i) cs.push_back(RandomHalfspace(dim, &rng));
  cs[1].b = kInf;    // slack +inf: never violated
  cs[2].b = -kInf;   // slack -inf: always violated
  cs[3].a[0] = kNaN; // NaN slack: violated (matches !(NaN >= -tol))
  cs[4].a[1] = kInf;
  cs[5].b = kDenorm;
  // A NaN coordinate in the query point poisons every slack.
  LinearProgram::Value v = LpValueAt(dim, &rng);
  CheckBitmapEquality(problem, v, cs);
  LinearProgram::Value nan_point = v;
  nan_point.point[2] = kNaN;
  CheckBitmapEquality(problem, nan_point, cs);
}

TEST(ScanKernelProperty, SvmHostileValuesMatchScalarSemantics) {
  Rng rng(0x5EED05);
  const size_t dim = 2;
  LinearSvm problem(dim);
  std::vector<SvmPoint> cs;
  for (size_t i = 0; i < 24; ++i) cs.push_back(RandomSvmPoint(dim, &rng));
  cs[0].x[0] = kNaN;  // NaN dot: NOT violated (matches NaN < t0 == false)
  cs[1].x[1] = kInf;
  cs[2].x[0] = -kInf;
  cs[3].x[1] = kDenorm;
  LinearSvm::Value v;
  v.separable = true;
  v.u = RandomPoint(dim, &rng);
  CheckBitmapEquality(problem, v, cs);
  LinearSvm::Value nan_u = v;
  nan_u.u[0] = kNaN;
  CheckBitmapEquality(problem, nan_u, cs);
}

TEST(ScanKernelProperty, MebHostileValuesMatchScalarSemantics) {
  Rng rng(0x5EED06);
  const size_t dim = 3;
  MinEnclosingBall problem(dim);
  std::vector<Vec> cs;
  for (size_t i = 0; i < 24; ++i) cs.push_back(RandomPoint(dim, &rng));
  cs[0][0] = kNaN;  // NaN distance: violated (matches !(NaN <= t0))
  cs[1][1] = kInf;
  cs[2][2] = -kInf;
  cs[3][0] = kDenorm;
  MinEnclosingBall::Value v;
  v.ball.center = RandomPoint(dim, &rng);
  v.ball.radius = 3.0;
  CheckBitmapEquality(problem, v, cs);
}

TEST(ScanKernelProperty, ChebyshevHostileValuesMatchScalarSemantics) {
  Rng rng(0x5EED10);
  const size_t dim = 3;
  ChebyshevCenter problem(dim);
  std::vector<Halfspace> cs;
  for (size_t i = 0; i < 24; ++i) cs.push_back(RandomHalfspace(dim, &rng));
  cs[1].b = kInf;     // slack +inf: never violated
  cs[2].b = -kInf;    // slack -inf: always violated
  cs[3].a[0] = kNaN;  // NaN row scale AND slack: violated
  cs[4].a[1] = kInf;  // inf row scale: slack -inf through the radius term
  cs[5].b = kDenorm;
  ChebyshevCenter::Value v = ChebValueAt(dim, &rng);
  CheckBitmapEquality(problem, v, cs);
  ChebyshevCenter::Value nan_center = v;
  nan_center.center[2] = kNaN;
  CheckBitmapEquality(problem, nan_center, cs);
}

TEST(ScanKernelProperty, LinfRegressionHostileValuesMatchScalarSemantics) {
  Rng rng(0x5EED11);
  const size_t dim = 2;
  LinfRegression problem(dim);
  std::vector<RegressionPoint> cs;
  for (size_t i = 0; i < 24; ++i) {
    cs.push_back(RandomRegressionPoint(dim, &rng));
  }
  cs[0].x[0] = kNaN;  // NaN residual: violated (matches !(fabs(NaN) <= t0))
  cs[1].x[1] = kInf;  // +/-inf residual: violated
  cs[2].y = -kInf;
  cs[3].y = kNaN;
  cs[4].x[0] = kDenorm;
  LinfRegression::Value v = LinfValueAt(dim, &rng);
  CheckBitmapEquality(problem, v, cs);
  LinfRegression::Value nan_w = v;
  nan_w.w[1] = kNaN;
  CheckBitmapEquality(problem, nan_w, cs);
}

TEST(ScanKernelProperty, AnnulusHostileValuesMatchScalarSemantics) {
  Rng rng(0x5EED12);
  const size_t dim = 3;
  EnclosingAnnulus problem(dim);
  std::vector<Vec> cs;
  for (size_t i = 0; i < 24; ++i) cs.push_back(RandomPoint(dim, &rng));
  cs[0][0] = kNaN;  // NaN shell value: violated (outside any band)
  cs[1][1] = kInf;  // ||p||^2 inf: above the outer bound
  cs[2][2] = -kInf;
  cs[3][0] = kDenorm;
  EnclosingAnnulus::Value v = AnnulusValueAt(dim, &rng);
  CheckBitmapEquality(problem, v, cs);
  EnclosingAnnulus::Value nan_center = v;
  nan_center.center[1] = kNaN;
  CheckBitmapEquality(problem, nan_center, cs);
}

// ----------------------------------------------------- strategy equality

// Builds an LP store straddling kParallelScanMinItems and checks that every
// strategy (serial predicate, pool bitmap, SIMD, SIMD+pool) reports
// bitwise-identical ViolatorStats and produces bitwise-identical weights
// after reweighting.
TEST(ScanStrategyTest, AllStrategiesBitIdenticalAcrossPoolThreshold) {
  Rng rng(0x5EED07);
  const size_t dim = 3;
  LinearProgram problem(RandomPoint(dim, &rng));
  runtime::ThreadPool pool(3);
  for (size_t n : {kParallelScanMinItems - 1, kParallelScanMinItems + 17}) {
    std::vector<Halfspace> cs;
    cs.reserve(n);
    for (size_t i = 0; i < n; ++i) cs.push_back(RandomHalfspace(dim, &rng));
    LinearProgram::Value v = LpValueAt(dim, &rng);

    struct Lane {
      ScanStrategy strategy;
      runtime::ThreadPool* pool;
    };
    const Lane lanes[] = {
        {ScanStrategy::kSerial, nullptr},
        {ScanStrategy::kPoolBitmap, &pool},
        {ScanStrategy::kSimd, nullptr},
        {ScanStrategy::kSimd, &pool},  // pool present but strategy ignores it
        {ScanStrategy::kSimdPool, &pool},
        {ScanStrategy::kAuto, nullptr},
        {ScanStrategy::kAuto, &pool},
    };
    ViolatorStats reference;
    std::vector<double> reference_weights;
    bool first = true;
    for (const Lane& lane : lanes) {
      ConstraintStore<Halfspace> store(cs);
      ScanOptions opts{lane.pool, lane.strategy};
      ViolatorStats st = store.View().ScanViolators(problem, v, opts);
      store.View().ScaleViolatorsFused(problem, v, 2.5, opts);
      std::vector<double> weights(store.size());
      for (size_t i = 0; i < store.size(); ++i) {
        weights[i] = store.View().weight(i);
      }
      if (first) {
        reference = st;
        reference_weights = weights;
        first = false;
        EXPECT_GT(st.count, 0u);  // the instance must actually exercise scans
        continue;
      }
      // Bitwise: the determinism contract is exact equality, not tolerance.
      EXPECT_EQ(st.count, reference.count);
      EXPECT_EQ(std::memcmp(&st.weight, &reference.weight, sizeof(double)), 0)
          << "strategy " << static_cast<int>(lane.strategy);
      ASSERT_EQ(std::memcmp(weights.data(), reference_weights.data(),
                            weights.size() * sizeof(double)),
                0)
          << "strategy " << static_cast<int>(lane.strategy);
    }
  }
}

// The two new ops (kAbsResidualAbove, kDotOutsideBand) through the full
// strategy matrix: every ScanStrategy value must report bitwise-identical
// stats and weights on L-inf regression and annulus stores.
TEST(ScanStrategyTest, NewOpsBitIdenticalAcrossAllStrategies) {
  Rng rng(0x5EED13);
  const size_t dim = 3;
  runtime::ThreadPool pool(3);
  struct Lane {
    ScanStrategy strategy;
    runtime::ThreadPool* pool;
  };
  const Lane lanes[] = {
      {ScanStrategy::kSerial, nullptr},     {ScanStrategy::kPoolBitmap, &pool},
      {ScanStrategy::kSimd, nullptr},       {ScanStrategy::kSimdPool, &pool},
      {ScanStrategy::kAuto, nullptr},
  };
  auto check = [&](const auto& problem, const auto& value, const auto& cs) {
    using C = typename std::decay_t<decltype(cs)>::value_type;
    ViolatorStats reference;
    std::vector<double> reference_weights;
    bool first = true;
    for (const Lane& lane : lanes) {
      ConstraintStore<C> store(cs);
      ScanOptions opts{lane.pool, lane.strategy};
      ViolatorStats st = store.View().ScanViolators(problem, value, opts);
      store.View().ScaleViolatorsFused(problem, value, 2.5, opts);
      std::vector<double> weights(store.size());
      for (size_t i = 0; i < store.size(); ++i) {
        weights[i] = store.View().weight(i);
      }
      if (first) {
        reference = st;
        reference_weights = weights;
        first = false;
        EXPECT_GT(st.count, 0u);
        EXPECT_LT(st.count, cs.size());  // both branches exercised
        continue;
      }
      EXPECT_EQ(st.count, reference.count)
          << "strategy " << static_cast<int>(lane.strategy);
      EXPECT_EQ(std::memcmp(&st.weight, &reference.weight, sizeof(double)), 0);
      ASSERT_EQ(std::memcmp(weights.data(), reference_weights.data(),
                            weights.size() * sizeof(double)),
                0)
          << "strategy " << static_cast<int>(lane.strategy);
    }
  };
  const size_t n = kParallelScanMinItems + 17;
  {
    LinfRegression problem(dim);
    std::vector<RegressionPoint> cs;
    cs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      cs.push_back(RandomRegressionPoint(dim, &rng));
    }
    check(problem, LinfValueAt(dim, &rng), cs);
  }
  {
    EnclosingAnnulus problem(dim);
    std::vector<Vec> cs;
    cs.reserve(n);
    for (size_t i = 0; i < n; ++i) cs.push_back(RandomPoint(dim, &rng));
    check(problem, AnnulusValueAt(dim, &rng), cs);
  }
}

// Special modes: infeasible LP (nothing violates), empty-ball MEB and
// zero-u SVM (everything violates) must agree with the predicate path.
TEST(ScanStrategyTest, SpecialModesMatchPredicatePath) {
  Rng rng(0x5EED08);
  const size_t dim = 2;
  {
    LinearProgram problem(RandomPoint(dim, &rng));
    std::vector<Halfspace> cs;
    for (size_t i = 0; i < 20; ++i) cs.push_back(RandomHalfspace(dim, &rng));
    ConstraintStore<Halfspace> store(cs);
    LinearProgram::Value infeasible;
    infeasible.feasible = false;
    ViolatorStats st = store.View().ScanViolators(problem, infeasible,
                                                  ScanOptions{});
    EXPECT_EQ(st.count, 0u);
    EXPECT_EQ(st.weight, 0.0);
  }
  {
    LinearSvm problem(dim);
    std::vector<SvmPoint> cs;
    for (size_t i = 0; i < 20; ++i) cs.push_back(RandomSvmPoint(dim, &rng));
    ConstraintStore<SvmPoint> store(cs);
    LinearSvm::Value zero;  // u.dim() == 0: everything violates
    ViolatorStats st = store.View().ScanViolators(problem, zero, ScanOptions{});
    EXPECT_EQ(st.count, cs.size());
    EXPECT_EQ(st.weight, static_cast<double>(cs.size()));
    store.View().ScaleViolatorsFused(problem, zero, 2.0, ScanOptions{});
    EXPECT_EQ(store.View().weight(0), 2.0);
    EXPECT_EQ(store.View().weight(cs.size() - 1), 2.0);
  }
  {
    MinEnclosingBall problem(dim);
    std::vector<Vec> cs;
    for (size_t i = 0; i < 20; ++i) cs.push_back(RandomPoint(dim, &rng));
    ConstraintStore<Vec> store(cs);
    MinEnclosingBall::Value empty;  // empty ball: everything violates
    ViolatorStats st = store.View().ScanViolators(problem, empty,
                                                  ScanOptions{});
    EXPECT_EQ(st.count, cs.size());
  }
  {
    ChebyshevCenter problem(dim);
    std::vector<Halfspace> cs;
    for (size_t i = 0; i < 20; ++i) cs.push_back(RandomHalfspace(dim, &rng));
    ConstraintStore<Halfspace> store(cs);
    ChebyshevCenter::Value infeasible;
    infeasible.feasible = false;  // maximal: nothing violates
    ViolatorStats st = store.View().ScanViolators(problem, infeasible,
                                                  ScanOptions{});
    EXPECT_EQ(st.count, 0u);
  }
  {
    LinfRegression problem(dim);
    std::vector<RegressionPoint> cs;
    for (size_t i = 0; i < 20; ++i) {
      cs.push_back(RandomRegressionPoint(dim, &rng));
    }
    ConstraintStore<RegressionPoint> store(cs);
    LinfRegression::Value empty;  // f(empty): everything violates
    ViolatorStats st = store.View().ScanViolators(problem, empty,
                                                  ScanOptions{});
    EXPECT_EQ(st.count, cs.size());
  }
  {
    EnclosingAnnulus problem(dim);
    std::vector<Vec> cs;
    for (size_t i = 0; i < 20; ++i) cs.push_back(RandomPoint(dim, &rng));
    ConstraintStore<Vec> store(cs);
    EnclosingAnnulus::Value empty;  // f(empty): everything violates
    ViolatorStats st = store.View().ScanViolators(problem, empty,
                                                  ScanOptions{});
    EXPECT_EQ(st.count, cs.size());
  }
}

// ------------------------------------------------------- fusion behavior

TEST(FusedReweightTest, ReusesBitmapOnlyForIdenticalPredicate) {
  Rng rng(0x5EED09);
  const size_t dim = 3;
  LinearProgram problem(RandomPoint(dim, &rng));
  std::vector<Halfspace> cs;
  for (size_t i = 0; i < 500; ++i) cs.push_back(RandomHalfspace(dim, &rng));
  LinearProgram::Value v = LpValueAt(dim, &rng);
  auto* fused = GlobalScanMetrics().fused_reweights;

  // Reference: unfused serial reweight.
  ConstraintStore<Halfspace> reference(cs);
  reference.View().ScaleViolators(
      [&](const Halfspace& c) { return problem.Violates(v, c); }, 3.0);

  ConstraintStore<Halfspace> store(cs);
  ScanOptions opts{nullptr, ScanStrategy::kSimd};
  store.View().ScanViolators(problem, v, opts);
  const uint64_t before = fused->value();
  store.View().ScaleViolatorsFused(problem, v, 3.0, opts);
  EXPECT_EQ(fused->value(), before + 1);  // bitmap reused
  for (size_t i = 0; i < cs.size(); ++i) {
    double a = store.View().weight(i);
    double b = reference.View().weight(i);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << "weight " << i;
  }

  // A different value must NOT fuse — and must still be correct.
  LinearProgram::Value v2 = LpValueAt(dim, &rng);
  ConstraintStore<Halfspace> reference2(cs);
  reference2.View().ScaleViolators(
      [&](const Halfspace& c) { return problem.Violates(v2, c); }, 3.0);
  ConstraintStore<Halfspace> store2(cs);
  store2.View().ScanViolators(problem, v, opts);
  const uint64_t before2 = fused->value();
  store2.View().ScaleViolatorsFused(problem, v2, 3.0, opts);
  EXPECT_EQ(fused->value(), before2);  // no reuse
  for (size_t i = 0; i < cs.size(); ++i) {
    double a = store2.View().weight(i);
    double b = reference2.View().weight(i);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << "weight " << i;
  }
}

TEST(FusedReweightTest, AppendInvalidatesBitmapButNotCorrectness) {
  Rng rng(0x5EED0A);
  const size_t dim = 2;
  LinearProgram problem(RandomPoint(dim, &rng));
  std::vector<Halfspace> cs;
  for (size_t i = 0; i < 100; ++i) cs.push_back(RandomHalfspace(dim, &rng));
  LinearProgram::Value v = LpValueAt(dim, &rng);

  ConstraintStore<Halfspace> store(cs);
  ScanOptions opts{nullptr, ScanStrategy::kSimd};
  store.View().ScanViolators(problem, v, opts);
  Halfspace extra = RandomHalfspace(dim, &rng);
  store.Append(extra);
  auto* fused = GlobalScanMetrics().fused_reweights;
  const uint64_t before = fused->value();
  store.View().ScaleViolatorsFused(problem, v, 4.0, opts);
  EXPECT_EQ(fused->value(), before);  // stale bitmap not reused

  std::vector<Halfspace> cs2 = cs;
  cs2.push_back(extra);
  ConstraintStore<Halfspace> reference(cs2);
  reference.View().ScaleViolators(
      [&](const Halfspace& c) { return problem.Violates(v, c); }, 4.0);
  ASSERT_EQ(store.size(), reference.size());
  for (size_t i = 0; i < store.size(); ++i) {
    double a = store.View().weight(i);
    double b = reference.View().weight(i);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << "weight " << i;
  }
}

TEST(FusedReweightTest, CollectViolatorsReusesScanBitmap) {
  Rng rng(0x5EED0B);
  const size_t dim = 3;
  MinEnclosingBall problem(dim);
  std::vector<Vec> cs;
  for (size_t i = 0; i < 300; ++i) cs.push_back(RandomPoint(dim, &rng));
  MinEnclosingBall::Value v;
  v.ball.center = RandomPoint(dim, &rng);
  v.ball.radius = 4.0;

  ConstraintStore<Vec> store(cs);
  ScanOptions opts{nullptr, ScanStrategy::kSimd};
  ViolatorStats st = store.View().ScanViolators(problem, v, opts);
  std::vector<Vec> collected = store.View().CollectViolators(problem, v, opts);
  EXPECT_EQ(collected.size(), st.count);
  std::vector<Vec> expected = store.View().CollectViolators(
      [&](const Vec& c) { return problem.Violates(v, c); });
  ASSERT_EQ(collected.size(), expected.size());
  for (size_t i = 0; i < collected.size(); ++i) {
    for (size_t d = 0; d < dim; ++d) {
      EXPECT_EQ(collected[i][d], expected[i][d]);
    }
  }
}

// ----------------------------------------------------- prefix-sum caching

// The cached prefix array must leave the draw sequence identical to a
// fresh, uncached span view consuming the same RNG stream — including
// after reweights and appends (cache invalidation), and with denormal
// weights (no re-normalization sneaking in).
TEST(SampleCacheTest, CachedDrawsMatchUncachedReference) {
  Rng value_rng(0x5EED0C);
  std::vector<int> items(257);
  for (size_t i = 0; i < items.size(); ++i) items[i] = static_cast<int>(i);
  ConstraintStore<int> store(items);

  // Mirror of the store's weights, applied through an uncached span view.
  std::vector<double> mirror_weights(items.size(), 1.0);
  auto mirror_view = [&] {
    return ConstraintView<int>(std::span<const int>(items),
                               std::span<double>(mirror_weights));
  };

  Rng rng_a(42), rng_b(42);
  for (int round = 0; round < 6; ++round) {
    // Two draws in a row from the same weights: the second hits the cache.
    for (int rep = 0; rep < 2; ++rep) {
      auto got = store.View().SampleIndices(25, &rng_a);
      auto want = mirror_view().SampleIndices(25, &rng_b);
      ASSERT_EQ(got, want) << "round " << round << " rep " << rep;
    }
    double t_a = store.View().TotalWeight();
    double t_b = mirror_view().TotalWeight();
    ASSERT_EQ(std::memcmp(&t_a, &t_b, sizeof(double)), 0);
    // Invalidate: reweight through both paths (denormal-heavy rates on some
    // rounds keep the arithmetic hostile).
    const double rate = round % 2 == 0 ? 1.75 : kDenorm;
    auto pred = [round](int v) { return v % (round + 2) == 0; };
    store.View().ScaleViolators(pred, rate);
    mirror_view().ScaleViolators(pred, rate);
  }

  // Append invalidates too.
  store.Append(9999);
  items.push_back(9999);  // NOTE: invalidates mirror spans; rebuild below.
  mirror_weights.push_back(1.0);
  auto got = store.View().SampleIndices(40, &rng_a);
  auto want = ConstraintView<int>(std::span<const int>(items),
                                  std::span<double>(mirror_weights))
                  .SampleIndices(40, &rng_b);
  ASSERT_EQ(got, want);
}

TEST(SampleCacheTest, ZeroAndEmptyWeightDrawDiscipline) {
  ConstraintStore<int> store(std::vector<int>{1, 2, 3});
  store.View().ScaleViolators([](int) { return true; }, 0.0);
  Rng rng(7);
  // Zero total weight: no draws consumed.
  EXPECT_TRUE(store.View().SampleIndices(5, &rng).empty());
  Rng rng2(7);
  EXPECT_EQ(rng.UniformDouble(), rng2.UniformDouble());
}

// ------------------------------------------------- dispatch / environment

TEST(ScanDispatchTest, KernelNameConsistentWithVectorActive) {
  const char* name = engine::ScanKernelName();
  if (engine::VectorScanActive()) {
    EXPECT_TRUE(std::string(name) == "avx2" || std::string(name) == "neon");
  } else {
    EXPECT_EQ(std::string(name), "scalar");
  }
}

TEST(ScanDispatchTest, SamePredicateIsBitwise) {
  ScanQuery a;
  a.mode = ScanQuery::Mode::kKernel;
  a.op = engine::ScanOp::kHalfspace;
  a.q = {1.0, 2.0};
  a.t0 = 1e-5;
  ScanQuery b = a;
  EXPECT_TRUE(a.SamePredicate(b));
  b.t0 = std::nextafter(a.t0, 1.0);
  EXPECT_FALSE(a.SamePredicate(b));
  b = a;
  b.q[1] = -0.0 * b.q[1] == 0.0 ? 2.0 : b.q[1];  // keep value, then flip sign
  b.q[0] = -1.0 * b.q[0];
  EXPECT_FALSE(a.SamePredicate(b));
  b = a;
  b.q = {1.0, 2.0, 3.0};
  EXPECT_FALSE(a.SamePredicate(b));
  // +0 vs -0 differ bitwise, so they must not alias.
  ScanQuery z0 = a, z1 = a;
  z0.t0 = 0.0;
  z1.t0 = -0.0;
  EXPECT_FALSE(z0.SamePredicate(z1));
  // The band op's second threshold participates in the predicate identity.
  ScanQuery band = a;
  band.op = engine::ScanOp::kDotOutsideBand;
  band.t1 = 0.25;
  ScanQuery band2 = band;
  EXPECT_TRUE(band.SamePredicate(band2));
  band2.t1 = std::nextafter(band.t1, 1.0);
  EXPECT_FALSE(band.SamePredicate(band2));
  ScanQuery bz0 = band, bz1 = band;
  bz0.t1 = 0.0;
  bz1.t1 = -0.0;
  EXPECT_FALSE(bz0.SamePredicate(bz1));
}

}  // namespace
}  // namespace lplow

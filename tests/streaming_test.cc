// Tests of the Theorem 1 streaming solver: correctness against the direct
// solve, pass accounting (O(nu r) passes), and space accounting
// (O~(n^{1/r}) items).

#include "src/models/streaming/streaming_solver.h"

#include <gtest/gtest.h>

#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using testing_util::ExpectMatchesDirect;
using testing_util::MakeFeasibleLpCase;
using stream::SolveStreaming;
using stream::StreamingOptions;
using stream::StreamingStats;
using stream::VectorStream;

TEST(StreamTest, VectorStreamPassCounting) {
  VectorStream<int> s({1, 2, 3});
  EXPECT_EQ(s.passes_started(), 0u);
  s.Reset();
  EXPECT_EQ(*s.Next(), 1);
  EXPECT_EQ(*s.Next(), 2);
  EXPECT_EQ(*s.Next(), 3);
  EXPECT_FALSE(s.Next().has_value());
  s.Reset();
  EXPECT_EQ(s.passes_started(), 2u);
  EXPECT_EQ(*s.Next(), 1);
}

TEST(StreamTest, GeneratorStreamProducesOnDemand) {
  stream::GeneratorStream<int> s(5, [](size_t i) {
    return static_cast<int>(i * i);
  });
  s.Reset();
  EXPECT_EQ(*s.Next(), 0);
  EXPECT_EQ(*s.Next(), 1);
  EXPECT_EQ(*s.Next(), 4);
  EXPECT_EQ(s.size(), 5u);
}

TEST(StreamTest, SpaceMeterTracksPeak) {
  stream::SpaceMeter m;
  m.Acquire(10, 100);
  m.Acquire(5, 50);
  m.Release(10, 100);
  m.Acquire(2, 20);
  EXPECT_EQ(m.peak_items(), 15u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  EXPECT_EQ(m.current_items(), 7u);
}

TEST(StreamingSolverTest, MatchesDirectSolveLp) {
  auto [problem, constraints] = MakeFeasibleLpCase(5000, 2, 1);
  VectorStream<Halfspace> s(constraints);
  StreamingOptions opt;
  opt.net.scale = 0.1;  // Leave the direct-solve regime at this n.
  StreamingStats stats;
  auto result = SolveStreaming(problem, s, opt, &stats);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, constraints, result->value, "streaming");
  EXPECT_FALSE(stats.direct_solve);
}

TEST(StreamingSolverTest, PassBoundONuR) {
  Rng rng(2);
  auto inst = workload::RandomFeasibleLp(200000, 2, &rng);
  LinearProgram problem(inst.objective);
  size_t nu = problem.CombinatorialDimension();
  for (int r : {2, 3}) {
    VectorStream<Halfspace> s(inst.constraints);
    StreamingOptions opt;
    opt.r = r;
    opt.seed = 100 + r;
    StreamingStats stats;
    auto result = SolveStreaming(problem, s, opt, &stats);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(stats.direct_solve);
    // Pipelined: passes = iterations + 1 <= (20/9) nu r + slack.
    EXPECT_EQ(stats.passes, stats.iterations + 1);
    EXPECT_LE(stats.passes, (20 * nu * static_cast<size_t>(r)) / 9 + 8);
  }
}

TEST(StreamingSolverTest, SpaceShrinksWithLargerR) {
  Rng rng(3);
  auto inst = workload::RandomFeasibleLp(40000, 2, &rng);
  LinearProgram problem(inst.objective);
  size_t peak_r1 = 0, peak_r3 = 0;
  {
    VectorStream<Halfspace> s(inst.constraints);
    StreamingOptions opt;
    opt.r = 1;  // n^{1/1} sample: stores the stream (direct).
    StreamingStats stats;
    ASSERT_TRUE(SolveStreaming(problem, s, opt, &stats).ok());
    peak_r1 = stats.peak_items;
  }
  {
    VectorStream<Halfspace> s(inst.constraints);
    StreamingOptions opt;
    opt.r = 3;
    opt.net.scale = 0.2;
    StreamingStats stats;
    ASSERT_TRUE(SolveStreaming(problem, s, opt, &stats).ok());
    peak_r3 = stats.peak_items;
  }
  EXPECT_GT(peak_r1, 4 * peak_r3)
      << "space must fall sharply from n^{1} to n^{1/3} samples";
}

TEST(StreamingSolverTest, SpaceSublinearInN) {
  Rng rng(4);
  auto inst = workload::RandomFeasibleLp(40000, 2, &rng);
  LinearProgram problem(inst.objective);
  VectorStream<Halfspace> s(inst.constraints);
  StreamingOptions opt;
  opt.r = 3;
  opt.net.scale = 0.2;
  StreamingStats stats;
  ASSERT_TRUE(SolveStreaming(problem, s, opt, &stats).ok());
  EXPECT_LT(stats.peak_items, inst.constraints.size() / 4)
      << "peak space must be well below n";
}

TEST(StreamingSolverTest, NonPipelinedAgrees) {
  Rng rng(5);
  auto inst = workload::RandomFeasibleLp(4000, 2, &rng);
  LinearProgram problem(inst.objective);
  StreamingOptions pipe;
  pipe.pipeline = true;
  pipe.net.scale = 0.1;
  StreamingOptions two_pass;
  two_pass.pipeline = false;
  two_pass.net.scale = 0.1;
  VectorStream<Halfspace> s1(inst.constraints);
  VectorStream<Halfspace> s2(inst.constraints);
  StreamingStats st1, st2;
  auto r1 = SolveStreaming(problem, s1, pipe, &st1);
  auto r2 = SolveStreaming(problem, s2, two_pass, &st2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(problem.CompareValues(r1->value, r2->value), 0);
  if (!st1.direct_solve && st2.iterations > 1) {
    EXPECT_GT(st2.passes, st2.iterations)
        << "two-pass mode spends an extra pass per iteration";
  }
}

TEST(StreamingSolverTest, SmallStreamDirectSolve) {
  Rng rng(6);
  auto inst = workload::RandomFeasibleLp(20, 2, &rng);
  LinearProgram problem(inst.objective);
  VectorStream<Halfspace> s(inst.constraints);
  StreamingStats stats;
  auto result = SolveStreaming(problem, s, {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.direct_solve);
  EXPECT_EQ(stats.passes, 1u);
}

TEST(StreamingSolverTest, AdversarialOrderSameAnswer) {
  // Sorted constraint order (worst case for naive heuristics).
  Rng rng(7);
  auto inst = workload::RandomFeasibleLp(5000, 2, &rng);
  std::sort(inst.constraints.begin(), inst.constraints.end(),
            [](const Halfspace& a, const Halfspace& b) { return a.b < b.b; });
  LinearProgram problem(inst.objective);
  VectorStream<Halfspace> s(inst.constraints);
  auto result = SolveStreaming(problem, s, {}, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value, "streaming");
}

TEST(StreamingSolverTest, WorksForSvmAndMeb) {
  Rng rng(8);
  {
    auto pts = workload::SeparableSvmData(3000, 2, 0.5, &rng);
    LinearSvm problem(2);
    VectorStream<SvmPoint> s(pts);
    auto result = SolveStreaming(problem, s, {}, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectMatchesDirect(problem, pts, result->value, "streaming");
  }
  {
    auto pts = workload::GaussianCloud(5000, 2, &rng);
    MinEnclosingBall problem(2);
    VectorStream<Vec> s(pts);
    auto result = SolveStreaming(problem, s, {}, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectMatchesDirect(problem, pts, result->value, "streaming");
  }
}

TEST(StreamingSolverTest, EmptyStreamFails) {
  LinearProgram problem(Vec{1, 1});
  VectorStream<Halfspace> s({});
  auto result = SolveStreaming(problem, s, {}, nullptr);
  // n = 0 <= m triggers the direct path, which solves the empty program
  // (the box optimum) — it must not crash.
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->value.feasible);
}

class StreamingSweep
    : public ::testing::TestWithParam<std::tuple<int, size_t, uint64_t>> {};

TEST_P(StreamingSweep, CorrectAcrossRAndD) {
  auto [r, d, seed] = GetParam();
  auto [problem, constraints] = MakeFeasibleLpCase(3000, d, seed);
  VectorStream<Halfspace> s(constraints);
  StreamingOptions opt;
  opt.r = r;
  opt.seed = seed;
  auto result = SolveStreaming(problem, s, opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, constraints, result->value, "streaming");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StreamingSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(size_t{2}, size_t{3}, size_t{4}),
                       ::testing::Values(41, 42)));

}  // namespace
}  // namespace lplow

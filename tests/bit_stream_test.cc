#include "src/util/bit_stream.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "src/util/rng.h"

namespace lplow {
namespace {

TEST(BitStreamTest, FixedWidthRoundTrip) {
  BitWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.5);

  BitReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_EQ(*r.GetDouble(), 3.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStreamTest, VarintRoundTripBoundaries) {
  BitWriter w;
  std::vector<uint64_t> values = {0,    1,    127,        128,
                                  255,  300,  (1u << 14), (1u << 14) + 1,
                                  ~0ULL};
  for (uint64_t v : values) w.PutVarU64(v);
  BitReader r(w.buffer());
  for (uint64_t v : values) EXPECT_EQ(*r.GetVarU64(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStreamTest, VarintIsCompactForSmallValues) {
  BitWriter w;
  w.PutVarU64(5);
  EXPECT_EQ(w.size_bytes(), 1u);
  w.PutVarU64(1000);
  EXPECT_EQ(w.size_bytes(), 3u);  // 1 + 2.
}

TEST(BitStreamTest, StringRoundTrip) {
  BitWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string("\0\x01binary", 8));
  BitReader r(w.buffer());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetString(), std::string("\0\x01binary", 8));
}

TEST(BitStreamTest, TruncatedReadsFail) {
  BitWriter w;
  w.PutU32(7);
  BitReader r(w.buffer());
  EXPECT_TRUE(r.GetU64().status().code() == StatusCode::kOutOfRange);
}

TEST(BitStreamTest, TruncatedVarintFails) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // Unterminated.
  BitReader r(buf);
  EXPECT_EQ(r.GetVarU64().status().code(), StatusCode::kOutOfRange);
}

TEST(BitStreamTest, SizeAccountingMatchesBuffer) {
  BitWriter w;
  w.PutU64(1);
  w.PutU8(2);
  EXPECT_EQ(w.size_bytes(), 9u);
  EXPECT_EQ(w.size_bits(), 72u);
}

TEST(BitStreamTest, RandomizedDoubleRoundTrip) {
  Rng rng(7);
  BitWriter w;
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(rng.Normal(0, 1e6));
    w.PutDouble(values.back());
  }
  BitReader r(w.buffer());
  for (double v : values) EXPECT_EQ(*r.GetDouble(), v);
}

// --------------------------------------------------- adversarial decoding
//
// Regressions for the pre-hardening checks, which computed
// `pos_ + size > size_` and wrapped for attacker-sized lengths: each of
// these inputs used to pass the bounds check and read far out of bounds.

TEST(BitStreamTest, GetStringRejectsHugeDeclaredLength) {
  // Varint length near UINT64_MAX followed by no payload. The wrapped check
  // `pos_ + len > size_` used to accept this and construct a ~2^64-byte
  // string from out-of-bounds memory.
  BitWriter w;
  w.PutVarU64(std::numeric_limits<uint64_t>::max() - 1);
  BitReader r(w.buffer());
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kOutOfRange);
}

TEST(BitStreamTest, GetStringRejectsLengthJustPastEnd) {
  BitWriter w;
  w.PutVarU64(6);
  w.PutBytes("hello", 5);  // One byte short of the declared length.
  BitReader r(w.buffer());
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kOutOfRange);
}

TEST(BitStreamTest, GetBytesRejectsWrappingSize) {
  std::vector<uint8_t> buf = {1, 2, 3, 4};
  uint8_t out[4];
  BitReader r(buf);
  ASSERT_TRUE(r.GetBytes(out, 2).ok());
  // pos_ + SIZE_MAX wraps to pos_ - 1 and used to pass the check.
  EXPECT_EQ(r.GetBytes(out, std::numeric_limits<size_t>::max()).code(),
            StatusCode::kOutOfRange);
  // The reader must still be usable at its old position afterwards.
  EXPECT_EQ(r.remaining(), 2u);
  ASSERT_TRUE(r.GetBytes(out, 2).ok());
  EXPECT_EQ(out[1], 4);
}

TEST(BitStreamTest, VarintOverflowingTenthByteRejected) {
  // Ten bytes whose 10th payload exceeds the single remaining bit: the old
  // decoder silently dropped the bits above bit 63 and returned a wrong
  // value instead of erroring.
  std::vector<uint8_t> buf(10, 0xFF);
  buf[9] = 0x7F;
  BitReader r(buf);
  EXPECT_EQ(r.GetVarU64().status().code(), StatusCode::kOutOfRange);

  std::vector<uint8_t> two = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                              0xFF, 0xFF, 0xFF, 0xFF, 0x02};
  BitReader r2(two);
  EXPECT_EQ(r2.GetVarU64().status().code(), StatusCode::kOutOfRange);
}

TEST(BitStreamTest, VarintMaxCanonicalEncodingStillDecodes) {
  // UINT64_MAX is exactly ten bytes with 0x01 last — the largest encoding
  // that fits, and it must keep round-tripping.
  std::vector<uint8_t> buf(10, 0xFF);
  buf[9] = 0x01;
  BitReader r(buf);
  auto v = r.GetVarU64();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStreamTest, VarintElevenByteEncodingRejected) {
  std::vector<uint8_t> buf(11, 0x80);
  buf[10] = 0x01;
  BitReader r(buf);
  EXPECT_EQ(r.GetVarU64().status().code(), StatusCode::kOutOfRange);
}

// BitReader borrows its buffer, so binding to a temporary
// (`BitReader r(writer.Release());`) would dangle — the rvalue overload is
// deleted.
static_assert(!std::is_constructible_v<BitReader, std::vector<uint8_t>&&>);
static_assert(std::is_constructible_v<BitReader, const std::vector<uint8_t>&>);

TEST(BitStreamTest, BytesRoundTrip) {
  BitWriter w;
  uint8_t data[4] = {1, 2, 3, 4};
  w.PutBytes(data, 4);
  BitReader r(w.buffer());
  uint8_t out[4];
  ASSERT_TRUE(r.GetBytes(out, 4).ok());
  EXPECT_EQ(out[3], 4);
  EXPECT_FALSE(r.GetBytes(out, 1).ok());
}

}  // namespace
}  // namespace lplow

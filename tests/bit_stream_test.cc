#include "src/util/bit_stream.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace lplow {
namespace {

TEST(BitStreamTest, FixedWidthRoundTrip) {
  BitWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.5);

  BitReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_EQ(*r.GetDouble(), 3.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStreamTest, VarintRoundTripBoundaries) {
  BitWriter w;
  std::vector<uint64_t> values = {0,    1,    127,        128,
                                  255,  300,  (1u << 14), (1u << 14) + 1,
                                  ~0ULL};
  for (uint64_t v : values) w.PutVarU64(v);
  BitReader r(w.buffer());
  for (uint64_t v : values) EXPECT_EQ(*r.GetVarU64(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStreamTest, VarintIsCompactForSmallValues) {
  BitWriter w;
  w.PutVarU64(5);
  EXPECT_EQ(w.size_bytes(), 1u);
  w.PutVarU64(1000);
  EXPECT_EQ(w.size_bytes(), 3u);  // 1 + 2.
}

TEST(BitStreamTest, StringRoundTrip) {
  BitWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string("\0\x01binary", 8));
  BitReader r(w.buffer());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetString(), std::string("\0\x01binary", 8));
}

TEST(BitStreamTest, TruncatedReadsFail) {
  BitWriter w;
  w.PutU32(7);
  BitReader r(w.buffer());
  EXPECT_TRUE(r.GetU64().status().code() == StatusCode::kOutOfRange);
}

TEST(BitStreamTest, TruncatedVarintFails) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // Unterminated.
  BitReader r(buf);
  EXPECT_EQ(r.GetVarU64().status().code(), StatusCode::kOutOfRange);
}

TEST(BitStreamTest, SizeAccountingMatchesBuffer) {
  BitWriter w;
  w.PutU64(1);
  w.PutU8(2);
  EXPECT_EQ(w.size_bytes(), 9u);
  EXPECT_EQ(w.size_bits(), 72u);
}

TEST(BitStreamTest, RandomizedDoubleRoundTrip) {
  Rng rng(7);
  BitWriter w;
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(rng.Normal(0, 1e6));
    w.PutDouble(values.back());
  }
  BitReader r(w.buffer());
  for (double v : values) EXPECT_EQ(*r.GetDouble(), v);
}

TEST(BitStreamTest, BytesRoundTrip) {
  BitWriter w;
  uint8_t data[4] = {1, 2, 3, 4};
  w.PutBytes(data, 4);
  BitReader r(w.buffer());
  uint8_t out[4];
  ASSERT_TRUE(r.GetBytes(out, 4).ok());
  EXPECT_EQ(out[3], 4);
  EXPECT_FALSE(r.GetBytes(out, 1).ok());
}

}  // namespace
}  // namespace lplow

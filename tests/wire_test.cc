// Wire protocol (label `quick`, so the whole file also runs under the
// ASan/UBSan CI lane): frame and payload round trips, the served-solve
// response matching a direct SolveBasis byte-for-byte, the v1/v2 version
// gate (trace context + stats frames are v2-only and additive), and the
// adversarial decode sweep — truncation at EVERY byte boundary, bad
// magic/version/kind, hostile declared lengths (dims, counts, frame sizes)
// and hostile trace flags, all failing with a clean Status before any
// allocation, never UB.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/problems/chebyshev_center.h"
#include "src/problems/enclosing_annulus.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/linf_regression.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/runtime/wire.h"
#include "src/util/bit_stream.h"
#include "src/util/status.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

namespace wire = runtime::wire;

// ----------------------------------------------------------------- frames

TEST(WireFrameTest, RoundTripsHeaderAndPayload) {
  const std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 7};
  auto bytes = wire::EncodeFrame(
      wire::FrameKind::kSolveRequest,
      std::span<const uint8_t>(payload.data(), payload.size()));
  ASSERT_EQ(bytes.size(), wire::kFrameHeaderBytes + payload.size());

  auto frame = wire::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->header.kind, wire::FrameKind::kSolveRequest);
  EXPECT_EQ(frame->header.version, wire::kWireVersion);
  EXPECT_EQ(frame->payload, payload);
}

TEST(WireFrameTest, RoundTripsEmptyPayload) {
  for (auto kind : {wire::FrameKind::kPing, wire::FrameKind::kPong,
                    wire::FrameKind::kBusy, wire::FrameKind::kShutdown}) {
    auto bytes = wire::EncodeFrame(kind, {});
    ASSERT_EQ(bytes.size(), wire::kFrameHeaderBytes);
    auto frame = wire::DecodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->header.kind, kind);
    EXPECT_TRUE(frame->payload.empty());
  }
}

TEST(WireFrameTest, RejectsBadMagic) {
  auto bytes = wire::EncodeFrame(wire::FrameKind::kPing, {});
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(wire::DecodeFrame(bytes.data(), bytes.size()).ok());
}

TEST(WireFrameTest, RejectsWrongVersion) {
  auto bytes = wire::EncodeFrame(wire::FrameKind::kPing, {});
  bytes[4] = wire::kWireVersion + 1;
  auto frame = wire::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().ToString().find("version"), std::string::npos);
}

TEST(WireFrameTest, RejectsUnknownKind) {
  for (uint8_t kind : {uint8_t{0}, uint8_t{11}, uint8_t{255}}) {
    auto bytes = wire::EncodeFrame(wire::FrameKind::kPing, {});
    bytes[5] = kind;
    EXPECT_FALSE(wire::DecodeFrame(bytes.data(), bytes.size()).ok())
        << "kind " << int{kind} << " accepted";
  }
}

TEST(WireFrameTest, AcceptsOldVersionRejectsVersionZero) {
  // A v1 frame still decodes (a v2 daemon serves v1 clients)...
  auto bytes = wire::EncodeFrame(wire::FrameKind::kPing, {}, /*version=*/1);
  auto frame = wire::DecodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->header.version, 1);
  // ...but version 0 predates the protocol.
  bytes[4] = 0;
  EXPECT_FALSE(wire::DecodeFrame(bytes.data(), bytes.size()).ok());
}

TEST(WireFrameTest, StatsKindsAreVersionGated) {
  // The valid kind range depends on the frame's own version: the stats
  // kinds decode cleanly under a v2 header and are unknown under v1.
  wire::StatsRequest request;
  auto payload = wire::EncodeStatsRequestPayload(request);
  auto bytes = wire::EncodeFrame(
      wire::FrameKind::kStatsRequest,
      std::span<const uint8_t>(payload.data(), payload.size()));
  EXPECT_TRUE(wire::DecodeFrame(bytes.data(), bytes.size()).ok());
  bytes[4] = 1;  // Same frame relabeled v1: kind 9 does not exist there.
  EXPECT_FALSE(wire::DecodeFrame(bytes.data(), bytes.size()).ok());
}

TEST(WireFrameTest, RejectsOversizedDeclaredPayload) {
  // A header declaring 4 GiB of payload must be rejected from the 10 header
  // bytes alone — before anything is allocated or read.
  BitWriter w;
  wire::EncodeFrameHeader(wire::FrameKind::kSolveRequest, 0xFFFFFFFFu, &w);
  auto bytes = w.Release();
  BitReader r(bytes);
  auto header = wire::DecodeFrameHeader(&r);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kResourceExhausted);

  // A tighter caller-chosen limit binds the same way.
  BitReader r2(bytes);
  bytes[6] = 200;  // payload_size = 200 little-endian...
  bytes[7] = bytes[8] = bytes[9] = 0;
  EXPECT_FALSE(wire::DecodeFrameHeader(&r2, /*max_payload=*/100).ok());
}

TEST(WireFrameTest, RejectsTruncationAtEveryByte) {
  const std::vector<uint8_t> payload = {42, 43, 44, 45};
  auto bytes = wire::EncodeFrame(
      wire::FrameKind::kError,
      std::span<const uint8_t>(payload.data(), payload.size()));
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(wire::DecodeFrame(bytes.data(), len).ok())
        << "prefix of " << len << " bytes decoded as a whole frame";
  }
}

TEST(WireFrameTest, RejectsTrailingBytes) {
  auto bytes = wire::EncodeFrame(wire::FrameKind::kPong, {});
  bytes.push_back(0);
  EXPECT_FALSE(wire::DecodeFrame(bytes.data(), bytes.size()).ok());
}

TEST(WireFrameTest, FrameKindNamesAreStableMetricSuffixes) {
  // These strings are metric-key suffixes (wire.client.tx_bytes.<name>);
  // renaming one silently breaks dashboards, so each is pinned.
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kHello), "hello");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kSolveRequest),
               "solve_request");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kSolveResponse),
               "solve_response");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kError), "error");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kPing), "ping");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kPong), "pong");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kBusy), "busy");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kShutdown), "shutdown");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kStatsRequest),
               "stats_request");
  EXPECT_STREQ(wire::FrameKindName(wire::FrameKind::kStatsResponse),
               "stats_response");
  EXPECT_STREQ(wire::FrameKindName(static_cast<wire::FrameKind>(200)),
               "unknown");
}

// ------------------------------------------------------- control payloads

TEST(WireControlTest, HelloRoundTrips) {
  wire::Hello hello;
  hello.num_shards = 4;
  hello.max_inflight = 1'000'000;
  auto payload = wire::EncodeHelloPayload(hello);
  auto decoded = wire::DecodeHelloPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_shards, hello.num_shards);
  EXPECT_EQ(decoded->max_inflight, hello.max_inflight);

  payload.push_back(1);
  EXPECT_FALSE(wire::DecodeHelloPayload(payload).ok());
}

TEST(WireControlTest, ErrorPayloadRoundTrips) {
  Status in = Status::Infeasible("no point satisfies the sample");
  auto payload = wire::EncodeErrorPayload(in);
  Status out = wire::DecodeErrorPayload(payload);
  EXPECT_EQ(out.code(), in.code());
  EXPECT_EQ(out.message(), in.message());
}

TEST(WireControlTest, ErrorPayloadRejectsOkAndUnknownCodes) {
  {
    BitWriter w;
    w.PutU8(0);  // kOk carried as an error is a protocol violation.
    w.PutString("fine");
    EXPECT_EQ(wire::DecodeErrorPayload(w.Release()).code(),
              StatusCode::kInvalidArgument);
  }
  {
    BitWriter w;
    w.PutU8(200);  // Out of the StatusCode range.
    w.PutString("???");
    EXPECT_EQ(wire::DecodeErrorPayload(w.Release()).code(),
              StatusCode::kInvalidArgument);
  }
}

// ------------------------------------------------- solve request/response

/// Shared round-trip check: served response bytes must equal the bytes of a
/// direct local SolveBasis encoded the same way — bit-identity, the
/// determinism contract the socket backend rests on.
template <wire::WireSolvable P>
void CheckServedSolveMatchesLocal(
    const P& problem, const std::vector<typename P::Constraint>& sample) {
  const uint64_t job_id = 0xAB5501DULL;
  auto request = wire::EncodeSolveRequestPayload(
      job_id, problem,
      std::span<const typename P::Constraint>(sample.data(), sample.size()));

  auto head = wire::PeekSolveRequestHead(request);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->job_id, job_id);
  EXPECT_EQ(head->problem, wire::ProblemCodec<P>::kKind);

  auto served = wire::ServeSolveRequestPayload(request);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  auto local = problem.SolveBasis(
      std::span<const typename P::Constraint>(sample.data(), sample.size()));
  auto local_bytes = wire::EncodeSolveResponsePayload(job_id, problem, local);
  EXPECT_EQ(*served, local_bytes)
      << "served response bytes differ from the local solve";

  // The decoded result round-trips back to the same bytes, and its basis
  // hashes identically to the local one.
  auto decoded = wire::DecodeSolveResponsePayload(problem, *served, job_id);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(wire::EncodeSolveResponsePayload(job_id, problem, *decoded),
            local_bytes);
  EXPECT_EQ(testing_util::BasisHash(problem, *decoded),
            testing_util::BasisHash(problem, local));
  EXPECT_EQ(problem.CompareValues(decoded->value, local.value), 0);

  // Adversarial sweep over the REQUEST: every proper prefix must fail with
  // a clean Status (truncation can land inside any field).
  for (size_t len = 0; len < request.size(); ++len) {
    std::vector<uint8_t> prefix(request.begin(), request.begin() + len);
    EXPECT_FALSE(wire::ServeSolveRequestPayload(prefix).ok())
        << "request prefix of " << len << " bytes was served";
  }
  // And over the RESPONSE: same rule on the client side.
  for (size_t len = 0; len < served->size(); ++len) {
    std::vector<uint8_t> prefix(served->begin(), served->begin() + len);
    EXPECT_FALSE(
        wire::DecodeSolveResponsePayload(problem, prefix, job_id).ok())
        << "response prefix of " << len << " bytes decoded";
  }

  // Trailing bytes are rejected on both sides.
  auto padded_request = request;
  padded_request.push_back(0);
  EXPECT_FALSE(wire::ServeSolveRequestPayload(padded_request).ok());
  auto padded_response = *served;
  padded_response.push_back(0);
  EXPECT_FALSE(
      wire::DecodeSolveResponsePayload(problem, padded_response, job_id).ok());

  // A response echoing some other job id is not this job's answer.
  EXPECT_FALSE(
      wire::DecodeSolveResponsePayload(problem, *served, job_id + 1).ok());
}

TEST(WireSolveTest, LinearProgramServedSolveIsBitIdentical) {
  auto c = testing_util::MakeFeasibleLpCase(40, 2, 7);
  CheckServedSolveMatchesLocal(c.problem, c.constraints);
}

TEST(WireSolveTest, LinearSvmServedSolveIsBitIdentical) {
  auto c = testing_util::MakeSeparableSvmCase(40, 2, 0.5, 11);
  CheckServedSolveMatchesLocal(c.problem, c.points);
}

TEST(WireSolveTest, MinEnclosingBallServedSolveIsBitIdentical) {
  auto c = testing_util::MakeGaussianMebCase(40, 3, 13);
  CheckServedSolveMatchesLocal(c.problem, c.points);
}

TEST(WireSolveTest, ChebyshevCenterServedSolveIsBitIdentical) {
  auto c = testing_util::MakeChebyshevCase(40, 3, 17);
  CheckServedSolveMatchesLocal(c.problem, c.constraints);
}

TEST(WireSolveTest, LinfRegressionServedSolveIsBitIdentical) {
  auto c = testing_util::MakeLinfRegressionCase(40, 3, 19);
  CheckServedSolveMatchesLocal(c.problem, c.points);
}

TEST(WireSolveTest, EnclosingAnnulusServedSolveIsBitIdentical) {
  auto c = testing_util::MakeAnnulusCase(40, 2, 23);
  CheckServedSolveMatchesLocal(c.problem, c.points);
}

TEST(WireSolveTest, ErrorResponseCarriesTheStatusBack) {
  auto c = testing_util::MakeFeasibleLpCase(8, 2, 3);
  const uint64_t job_id = 77;
  auto payload = wire::EncodeSolveErrorResponsePayload(
      job_id, Status::Infeasible("empty region"));
  auto head = wire::PeekSolveResponseHead(payload);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->job_id, job_id);
  EXPECT_EQ(head->status.code(), StatusCode::kInfeasible);

  auto decoded = wire::DecodeSolveResponsePayload(c.problem, payload, job_id);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(decoded.status().message(), "empty region");
}

// -------------------------------------------- v2 trace context and stats

TEST(WireSolveTest, V2RequestWithoutContextServesIdenticallyToV1) {
  auto c = testing_util::MakeFeasibleLpCase(24, 2, 5);
  const uint64_t job_id = 99;
  std::span<const Halfspace> sample(c.constraints.data(),
                                    c.constraints.size());
  auto v1 = wire::EncodeSolveRequestPayload(job_id, c.problem, sample, {},
                                            /*version=*/1);
  auto v2 = wire::EncodeSolveRequestPayload(job_id, c.problem, sample);

  // A context-free v2 request is the v1 bytes with one zero flags byte
  // spliced after the job_id + kind prefix; everything after is identical.
  ASSERT_EQ(v2.size(), v1.size() + 1);
  EXPECT_EQ(v2[9], 0u);
  EXPECT_TRUE(std::equal(v1.begin(), v1.begin() + 9, v2.begin()));
  EXPECT_TRUE(std::equal(v1.begin() + 9, v1.end(), v2.begin() + 10));

  auto head1 = wire::PeekSolveRequestHead(v1, /*version=*/1);
  ASSERT_TRUE(head1.ok()) << head1.status().ToString();
  EXPECT_EQ(head1->job_id, job_id);
  EXPECT_FALSE(head1->trace.present());
  auto head2 = wire::PeekSolveRequestHead(v2);
  ASSERT_TRUE(head2.ok()) << head2.status().ToString();
  EXPECT_FALSE(head2->trace.present());

  // Served under their own versions, the response bytes are identical.
  wire::ServeOptions v1_options;
  v1_options.version = 1;
  auto served_v1 = wire::ServeSolveRequestPayload(v1, v1_options);
  auto served_v2 = wire::ServeSolveRequestPayload(v2);
  ASSERT_TRUE(served_v1.ok()) << served_v1.status().ToString();
  ASSERT_TRUE(served_v2.ok()) << served_v2.status().ToString();
  EXPECT_EQ(*served_v1, *served_v2);
}

TEST(WireSolveTest, TraceContextRoundTripsAndNeverChangesTheResponse) {
  auto c = testing_util::MakeFeasibleLpCase(24, 2, 5);
  const uint64_t job_id = 7;
  std::span<const Halfspace> sample(c.constraints.data(),
                                    c.constraints.size());
  wire::TraceContext ctx;
  ctx.trace_id = 0xDEADBEEFCAFEULL;
  ctx.parent_span = 0x1234;
  auto with = wire::EncodeSolveRequestPayload(job_id, c.problem, sample, ctx);
  auto without = wire::EncodeSolveRequestPayload(job_id, c.problem, sample);
  ASSERT_EQ(with.size(), without.size() + 16);  // Two u64s behind the flag.

  auto head = wire::PeekSolveRequestHead(with);
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_TRUE(head->trace.present());
  EXPECT_EQ(head->trace.trace_id, ctx.trace_id);
  EXPECT_EQ(head->trace.parent_span, ctx.parent_span);

  // The context is observability-only: response bytes are bit-identical
  // with and without it (the determinism acceptance for tracing).
  auto served_with = wire::ServeSolveRequestPayload(with);
  auto served_without = wire::ServeSolveRequestPayload(without);
  ASSERT_TRUE(served_with.ok()) << served_with.status().ToString();
  ASSERT_TRUE(served_without.ok());
  EXPECT_EQ(*served_with, *served_without);

  // The request truncation sweep covers the trace block too.
  for (size_t len = 0; len < with.size(); ++len) {
    std::vector<uint8_t> prefix(with.begin(), with.begin() + len);
    EXPECT_FALSE(wire::ServeSolveRequestPayload(prefix).ok())
        << "request prefix of " << len << " bytes was served";
  }
}

TEST(WireStatsTest, StatsRequestRoundTripsAndRejectsTruncation) {
  for (bool metrics : {false, true}) {
    for (bool trace : {false, true}) {
      wire::StatsRequest in;
      in.include_metrics = metrics;
      in.include_trace = trace;
      auto payload = wire::EncodeStatsRequestPayload(in);
      auto out = wire::DecodeStatsRequestPayload(payload);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      EXPECT_EQ(out->include_metrics, metrics);
      EXPECT_EQ(out->include_trace, trace);
      for (size_t len = 0; len < payload.size(); ++len) {
        std::vector<uint8_t> prefix(payload.begin(), payload.begin() + len);
        EXPECT_FALSE(wire::DecodeStatsRequestPayload(prefix).ok());
      }
      auto padded = payload;
      padded.push_back(0);
      EXPECT_FALSE(wire::DecodeStatsRequestPayload(padded).ok());
    }
  }
  // Unknown flag bits are a protocol violation, not a silent ignore.
  BitWriter w;
  w.PutU8(0x04);
  EXPECT_FALSE(wire::DecodeStatsRequestPayload(w.Release()).ok());
}

TEST(WireStatsTest, StatsResponseRoundTripsAndRejectsTruncation) {
  wire::StatsResponse in;
  in.metrics_json = "{\"counters\":{\"wire.daemon.requests\":3}}";
  in.trace_json = "{\"traceEvents\":[]}";
  auto payload = wire::EncodeStatsResponsePayload(in);
  auto out = wire::DecodeStatsResponsePayload(payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->metrics_json, in.metrics_json);
  EXPECT_EQ(out->trace_json, in.trace_json);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<uint8_t> prefix(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(wire::DecodeStatsResponsePayload(prefix).ok())
        << "response prefix of " << len << " bytes decoded";
  }
  auto padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(wire::DecodeStatsResponsePayload(padded).ok());
}

// ------------------------------------------------------ adversarial input

TEST(WireAdversarialTest, RejectsHostileTraceFlags) {
  auto make = [](uint8_t flags, bool with_ids, uint64_t trace_id) {
    BitWriter w;
    w.PutU64(1);
    w.PutU8(static_cast<uint8_t>(wire::ProblemKind::kLinearProgram));
    w.PutU8(flags);
    if (with_ids) {
      w.PutU64(trace_id);
      w.PutU64(5);
    }
    return w.Release();
  };
  // Unknown flag bits.
  auto unknown = make(0x02, /*with_ids=*/false, 0);
  EXPECT_FALSE(wire::PeekSolveRequestHead(unknown).ok());
  EXPECT_FALSE(wire::ServeSolveRequestPayload(unknown).ok());
  // Flagged context with a zero (= "absent") trace id is self-contradictory.
  auto zero_id = make(wire::kRequestFlagTraceContext, /*with_ids=*/true, 0);
  EXPECT_FALSE(wire::PeekSolveRequestHead(zero_id).ok());
  EXPECT_FALSE(wire::ServeSolveRequestPayload(zero_id).ok());
}

TEST(WireAdversarialTest, RejectsUnknownProblemKind) {
  BitWriter w;
  w.PutU64(1);
  w.PutU8(99);  // No such ProblemKind.
  auto payload = w.Release();
  EXPECT_FALSE(wire::PeekSolveRequestHead(payload).ok());
  EXPECT_FALSE(wire::ServeSolveRequestPayload(payload).ok());
}

TEST(WireAdversarialTest, RejectsHostileConstraintCount) {
  // A count of 2^60 with zero constraint bytes behind it: the decoder must
  // refuse before reserving, not allocate 2^60 slots.
  auto c = testing_util::MakeFeasibleLpCase(8, 2, 3);
  BitWriter w;
  w.PutU64(1);
  w.PutU8(static_cast<uint8_t>(wire::ProblemKind::kLinearProgram));
  w.PutU8(0);  // v2 trace flags: none.
  wire::ProblemCodec<LinearProgram>::EncodeProblem(c.problem, &w);
  w.PutVarU64(uint64_t{1} << 60);
  auto served = wire::ServeSolveRequestPayload(w.Release());
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kOutOfRange);
}

TEST(WireAdversarialTest, RejectsHostileVectorDimension) {
  // Objective vector declaring 2^32-1 coordinates backed by nothing: the
  // dim-vs-remaining guard fires before the Vec is built.
  BitWriter w;
  w.PutU64(1);
  w.PutU8(static_cast<uint8_t>(wire::ProblemKind::kLinearProgram));
  w.PutU8(0);  // v2 trace flags: none.
  w.PutU32(0xFFFFFFFFu);
  auto served = wire::ServeSolveRequestPayload(w.Release());
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kOutOfRange);
}

TEST(WireAdversarialTest, RejectsZeroAndOversizedProblemDimension) {
  // The problem ctors CHECK-fail below dim 1; the decoder must return a
  // clean Status instead of tripping that assert on hostile input. Every
  // dim-carrying kind gets the same sweep — a new codec that forgets the
  // guard fails here.
  for (auto kind :
       {wire::ProblemKind::kMinEnclosingBall, wire::ProblemKind::kLinearSvm,
        wire::ProblemKind::kChebyshevCenter, wire::ProblemKind::kLinfRegression,
        wire::ProblemKind::kEnclosingAnnulus}) {
    for (uint32_t dim : {0u, wire::kMaxWireDim + 1}) {
      BitWriter w;
      w.PutU64(1);
      w.PutU8(static_cast<uint8_t>(kind));
      w.PutU8(0);  // v2 trace flags: none.
      w.PutU32(dim);
      for (int i = 0; i < 4 + 2 * (1 << 17); ++i) {
        w.PutU8(0);  // Plenty of bytes.
      }
      EXPECT_FALSE(wire::ServeSolveRequestPayload(w.Release()).ok())
          << "kind " << static_cast<int>(kind) << " dim " << dim
          << " was accepted";
    }
  }
}

TEST(WireAdversarialTest, RejectsHostileBasisCountInResponse) {
  auto c = testing_util::MakeFeasibleLpCase(8, 2, 3);
  auto local = c.problem.SolveBasis(
      std::span<const Halfspace>(c.constraints.data(), c.constraints.size()));
  const uint64_t job_id = 5;

  BitWriter w;
  w.PutU64(job_id);
  w.PutU8(0);
  w.PutString("");
  wire::ProblemCodec<LinearProgram>::EncodeValue(local.value, &w);
  w.PutVarU64(uint64_t{1} << 59);  // Hostile basis count, no bytes behind it.
  auto decoded =
      wire::DecodeSolveResponsePayload(c.problem, w.Release(), job_id);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST(WireAdversarialTest, RejectsUnknownStatusCodeInResponse) {
  BitWriter w;
  w.PutU64(5);
  w.PutU8(250);  // Not a StatusCode.
  w.PutString("");
  auto c = testing_util::MakeFeasibleLpCase(8, 2, 3);
  EXPECT_FALSE(
      wire::DecodeSolveResponsePayload(c.problem, w.Release(), 5).ok());
  auto head_bytes = wire::EncodeSolveErrorResponsePayload(
      5, Status::Internal("x"));
  head_bytes[8] = 250;  // Corrupt the code byte behind the u64 job id.
  EXPECT_FALSE(wire::PeekSolveResponseHead(head_bytes).ok());
}

}  // namespace
}  // namespace lplow

#include "src/util/status.h"

#include <gtest/gtest.h>

namespace lplow {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Unbounded("x").code(), StatusCode::kUnbounded);
  EXPECT_EQ(Status::SamplingFailed("x").code(), StatusCode::kSamplingFailed);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kSamplingFailed),
               "SamplingFailed");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  LPLOW_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

Result<int> GivesFive() { return 5; }
Result<int> UsesAssignOrReturn() {
  int x;
  LPLOW_ASSIGN_OR_RETURN(x, GivesFive());
  return x * 2;
}

TEST(StatusMacrosTest, AssignOrReturn) {
  auto r = UsesAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

}  // namespace
}  // namespace lplow

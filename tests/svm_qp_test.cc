#include "src/solvers/svm_qp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

TEST(SvmQpTest, TwoSymmetricPoints) {
  // +1 at (1, 0), -1 at (-1, 0): u* = (1, 0), ||u||^2 = 1.
  std::vector<SvmPoint> pts = {{Vec{1, 0}, 1}, {Vec{-1, 0}, -1}};
  SvmSolver solver;
  SvmSolution s = solver.Solve(pts);
  ASSERT_TRUE(s.separable);
  EXPECT_NEAR(s.norm_squared, 1.0, 1e-4);
  EXPECT_NEAR(s.u[0], 1.0, 1e-3);
  EXPECT_NEAR(s.u[1], 0.0, 1e-3);
}

TEST(SvmQpTest, MarginScalesInversely) {
  // Points at distance gamma from the separator: ||u*|| = 1/gamma.
  for (double gamma : {0.5, 1.0, 2.0}) {
    std::vector<SvmPoint> pts = {{Vec{gamma, 0}, 1}, {Vec{-gamma, 0}, -1}};
    SvmSolver solver;
    SvmSolution s = solver.Solve(pts);
    ASSERT_TRUE(s.separable);
    EXPECT_NEAR(std::sqrt(s.norm_squared), 1.0 / gamma, 1e-3);
  }
}

TEST(SvmQpTest, ExactSmallMatchesIterative) {
  Rng rng(83);
  for (int trial = 0; trial < 30; ++trial) {
    size_t d = 2 + rng.UniformIndex(3);
    auto pts = workload::SeparableSvmData(8, d, 0.8, &rng);
    SvmSolver solver;
    SvmSolution iterative = solver.Solve(pts);
    SvmSolution exact = solver.SolveExactSmall(pts);
    ASSERT_TRUE(exact.separable);
    ASSERT_TRUE(iterative.separable);
    EXPECT_NEAR(iterative.norm_squared, exact.norm_squared,
                1e-3 * std::max(1.0, exact.norm_squared));
  }
}

TEST(SvmQpTest, AllConstraintsSatisfiedAtSolution) {
  Rng rng(89);
  auto pts = workload::SeparableSvmData(500, 3, 0.5, &rng);
  SvmSolver solver;
  SvmSolution s = solver.Solve(pts);
  ASSERT_TRUE(s.separable);
  for (const auto& p : pts) {
    EXPECT_GE(p.Z().Dot(s.u), 1.0 - 1e-4);
  }
}

TEST(SvmQpTest, DetectsNonSeparable) {
  // Directly contradictory labels on the same point.
  std::vector<SvmPoint> pts = {{Vec{1, 1}, 1}, {Vec{1, 1}, -1}};
  SvmSolver solver;
  EXPECT_FALSE(solver.Solve(pts).separable);
}

TEST(SvmQpTest, DetectsNonSeparableRandom) {
  Rng rng(97);
  auto pts = workload::NonSeparableSvmData(100, 2, &rng);
  SvmSolver solver;
  EXPECT_FALSE(solver.Solve(pts).separable);
}

TEST(SvmQpTest, ZeroVectorConstraintNonSeparable) {
  // y <u, 0> >= 1 can never hold.
  std::vector<SvmPoint> pts = {{Vec{0, 0}, 1}};
  SvmSolver solver;
  EXPECT_FALSE(solver.Solve(pts).separable);
}

TEST(SvmQpTest, SupportVectorsHaveUnitMargin) {
  Rng rng(101);
  auto pts = workload::SeparableSvmData(200, 2, 0.7, &rng);
  SvmSolver solver;
  SvmSolution s = solver.Solve(pts);
  ASSERT_TRUE(s.separable);
  ASSERT_EQ(s.alpha.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    if (s.alpha[i] > 1e-6) {
      EXPECT_NEAR(pts[i].Z().Dot(s.u), 1.0, 1e-3)
          << "support vector must sit on the margin";
    }
  }
}

TEST(SvmQpTest, SolutionIsMinimalNorm) {
  // Any feasible u has norm >= ||u*||: check against a few random feasible
  // perturbations made feasible by scaling.
  Rng rng(103);
  auto pts = workload::SeparableSvmData(100, 3, 0.6, &rng);
  SvmSolver solver;
  SvmSolution s = solver.Solve(pts);
  ASSERT_TRUE(s.separable);
  for (int trial = 0; trial < 20; ++trial) {
    Vec v(3);
    for (size_t i = 0; i < 3; ++i) {
      v[i] = s.u[i] + rng.Normal(0, 0.2 * std::sqrt(s.norm_squared));
    }
    double min_margin = 1e300;
    for (const auto& p : pts) min_margin = std::min(min_margin, p.Z().Dot(v));
    if (min_margin <= 1e-9) continue;  // Not a separator at any scale.
    Vec feasible = v / min_margin;  // Now all margins >= 1.
    EXPECT_GE(feasible.NormSquared(), s.norm_squared * (1 - 1e-3));
  }
}

TEST(SvmQpTest, ExactSmallRejectsEmpty) {
  SvmSolver solver;
  EXPECT_FALSE(solver.SolveExactSmall({}).separable);
  EXPECT_FALSE(solver.Solve({}).separable);
}

class SvmSeparableSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SvmSeparableSweep, SolvesAndSeparates) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(4);
  size_t n = 20 + rng.UniformIndex(300);
  auto pts = workload::SeparableSvmData(n, d, 0.4, &rng);
  SvmSolver solver;
  SvmSolution s = solver.Solve(pts);
  ASSERT_TRUE(s.separable);
  for (const auto& p : pts) {
    EXPECT_GT(static_cast<double>(p.label) * p.x.Dot(s.u), 0.0)
        << "u must classify all points correctly";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvmSeparableSweep,
                         ::testing::Values(201, 202, 203, 204, 205, 206, 207,
                                           208));

}  // namespace
}  // namespace lplow

// Tests of the src/runtime subsystem: ThreadPool/TaskGroup semantics
// (coverage, shutdown, exception safety, nesting), SiteExecutor barriers,
// MetricsRegistry + JSON export, SolverService job flow, and the
// determinism contract of the concurrent model solvers — bases, byte
// counts, and round counts identical for num_threads in {1, 2, 8}.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/metrics.h"
#include "src/runtime/site_executor.h"
#include "src/runtime/solver_service.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using runtime::MetricsRegistry;
using runtime::ParallelFor;
using runtime::SiteExecutor;
using runtime::SolverService;
using runtime::TaskGroup;
using runtime::ThreadPool;
using testing_util::ExpectMatchesDirect;
using testing_util::MakeFeasibleLpCase;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 3, 9, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 6u);
  for (size_t j = 0; j < order.size(); ++j) EXPECT_EQ(order[j], 3 + j);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(5, 5, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [&](size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SerialPathRunsEveryIterationDespiteException) {
  // Error semantics must not depend on the thread count: like the pooled
  // path, the inline path completes the whole range before rethrowing.
  std::vector<int> hits(10, 0);
  EXPECT_THROW(ParallelFor(nullptr, 0, hits.size(),
                           [&](size_t i) {
                             ++hits[i];
                             if (i == 3) throw std::runtime_error("mid");
                           }),
               std::runtime_error);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    // No explicit wait: ~ThreadPool must finish every queued task.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 4, [&](size_t) {
    pool.ParallelFor(0, 8, [&](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(TaskGroupTest, InlineWhenPoolIsNull) {
  TaskGroup group(nullptr);
  int x = 0;
  group.Run([&] { x = 1; });
  group.Wait();
  EXPECT_EQ(x, 1);
}

TEST(TaskGroupTest, WaitRethrowsInlineError) {
  TaskGroup group(nullptr);
  group.Run([] { throw std::logic_error("inline"); });
  EXPECT_THROW(group.Wait(), std::logic_error);
}

// ----------------------------------------------------------- SiteExecutor

TEST(SiteExecutorTest, RunsEverySiteAndCountsRounds) {
  ThreadPool pool(3);
  SiteExecutor exec(&pool, 17);
  std::vector<std::atomic<int>> hits(17);
  exec.RunRound([&](size_t i) { ++hits[i]; });
  exec.RunRound([&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 2);
  EXPECT_EQ(exec.rounds_run(), 2u);
  EXPECT_TRUE(exec.parallel());
  EXPECT_EQ(exec.threads(), 3u);
}

TEST(SiteExecutorTest, SerialWithoutPool) {
  SiteExecutor exec(nullptr, 5);
  EXPECT_FALSE(exec.parallel());
  EXPECT_EQ(exec.threads(), 1u);
  std::vector<size_t> order;
  exec.RunRound([&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, CounterGaugeTimerRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Increment();
  reg.GetCounter("c")->Increment(41);
  EXPECT_EQ(reg.GetCounter("c")->value(), 42u);
  reg.GetGauge("g")->Set(2.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("g")->value(), 2.5);
  reg.GetTimer("t")->Record(0.5);
  reg.GetTimer("t")->Record(1.5);
  EXPECT_EQ(reg.GetTimer("t")->count(), 2u);
  EXPECT_DOUBLE_EQ(reg.GetTimer("t")->total_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(reg.GetTimer("t")->mean_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(reg.GetTimer("t")->max_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(reg.GetTimer("empty")->mean_seconds(), 0.0);
}

TEST(MetricsTest, ScopedTimerCancelDismissesTheRecording) {
  MetricsRegistry reg;
  auto* t = reg.GetTimer("t");
  { runtime::ScopedTimer timer(t); }
  EXPECT_EQ(t->count(), 1u);
  {
    runtime::ScopedTimer timer(t);
    timer.Cancel();  // The error path: the aborted interval never lands.
  }
  EXPECT_EQ(t->count(), 1u);
}

TEST(MetricsTest, HistogramRecordsIntoLog2Buckets) {
  using runtime::Histogram;
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // Empty.

  // 3.0 lands in (2, 4] = exponent 2; 1024.0 exactly on a bound lands in
  // (512, 1024] = exponent 10.
  h.Record(3.0);
  h.Record(3.5);
  h.Record(1024.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.0 + 3.5 + 1024.0);
  auto nonzero = h.NonzeroBuckets();
  ASSERT_EQ(nonzero.size(), 2u);
  EXPECT_EQ(nonzero[0], (std::pair<int, uint64_t>{2, 2}));
  EXPECT_EQ(nonzero[1], (std::pair<int, uint64_t>{10, 1}));

  // Deterministic quantiles: the upper bound of the bucket holding the
  // rank, never an interpolation.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 1024.0);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.NonzeroBuckets().empty());
}

TEST(MetricsTest, HistogramExtremesGoToEdgeBuckets) {
  using runtime::Histogram;
  Histogram h;
  h.Record(0.0);    // Below every bound: the first bucket.
  h.Record(1e-12);  // Sub-nanosecond timing: also under 2^-30.
  h.Record(1e18);   // Beyond 2^34: the overflow bucket.
  EXPECT_EQ(h.count(), 3u);
  auto nonzero = h.NonzeroBuckets();
  ASSERT_EQ(nonzero.size(), 2u);
  EXPECT_EQ(nonzero.front(),
            (std::pair<int, uint64_t>{Histogram::kMinExponent, 2}));
  EXPECT_EQ(nonzero.back(),
            (std::pair<int, uint64_t>{Histogram::kMaxExponent + 1, 1}));
  // The overflow bucket's quantile reports the table's top bound.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), std::pow(2.0, Histogram::kMaxExponent));
}

TEST(MetricsTest, HistogramBucketBoundsAreOneSharedAscendingTable) {
  auto bounds = runtime::Histogram::BucketBounds();
  ASSERT_EQ(bounds.size(), runtime::Histogram::kNumBuckets - 1);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_DOUBLE_EQ(bounds.front(),
                   std::pow(2.0, runtime::Histogram::kMinExponent));
  EXPECT_DOUBLE_EQ(bounds.back(),
                   std::pow(2.0, runtime::Histogram::kMaxExponent));
  // Same table object for every call — the process-wide sharing contract.
  EXPECT_EQ(bounds.data(), runtime::Histogram::BucketBounds().data());
}

TEST(MetricsTest, PointersAreStableAndShared) {
  MetricsRegistry reg;
  auto* a = reg.GetCounter("same");
  auto* b = reg.GetCounter("same");
  EXPECT_EQ(a, b);
}

TEST(MetricsTest, JsonExportIsSortedAndWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("b.count")->Increment(7);
  reg.GetCounter("a.count")->Increment(3);
  reg.GetGauge("load")->Set(1.0);
  reg.GetTimer("solve")->Record(0.25);
  reg.GetHistogram("bytes")->Record(3.0);
  reg.GetHistogram("bytes")->Record(3.0);
  reg.GetHistogram("bytes")->Record(1024.0);
  std::string json = reg.ToJson();
  EXPECT_EQ(json,
            "{\"counters\":{\"a.count\":3,\"b.count\":7},"
            "\"gauges\":{\"load\":1},"
            "\"histograms\":{\"bytes\":{\"count\":3,\"sum\":1030,"
            "\"p50\":4,\"p90\":1024,\"p99\":1024,"
            "\"buckets\":{\"2^2\":2,\"2^10\":1}}},"
            "\"timers\":{\"solve\":{\"count\":1,\"total_seconds\":0.25,"
            "\"mean_seconds\":0.25,\"max_seconds\":0.25}}}");
}

TEST(MetricsTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  auto* c = reg.GetCounter("c");
  c->Increment(5);
  auto* h = reg.GetHistogram("h");
  h->Record(7.0);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.GetCounter("c"), c);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetHistogram("h"), h);
}

TEST(MetricsTest, ConcurrentIncrementsDoNotLoseCounts) {
  MetricsRegistry reg;
  auto* c = reg.GetCounter("hot");
  ThreadPool pool(4);
  pool.ParallelFor(0, 1000, [&](size_t) { c->Increment(); });
  EXPECT_EQ(c->value(), 1000u);
}

// ------------------------------------------------------------ the solvers

// Serialized basis bytes: the strongest cheap equality check we have — the
// problem's own wire format, so any drift in the computed basis shows up.
template <typename P, typename R>
std::vector<uint8_t> BasisBytes(const P& problem, const R& result) {
  BitWriter w;
  for (const auto& c : result.basis) problem.SerializeConstraint(c, &w);
  return w.Release();
}

TEST(RuntimeDeterminismTest, CoordinatorBitIdenticalAcrossThreadCounts) {
  auto [problem, constraints] = MakeFeasibleLpCase(20000, 2, 99);
  Rng rng(99);
  auto parts = workload::Partition(constraints, 32, true, &rng);

  coord::CoordinatorStats base_stats;
  std::vector<uint8_t> base_basis;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    coord::CoordinatorOptions opt;
    opt.net.scale = 0.1;
    opt.seed = 4242;
    opt.runtime.num_threads = threads;
    coord::CoordinatorStats stats;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    ExpectMatchesDirect(problem, constraints, result->value, "coordinator");
    EXPECT_EQ(stats.threads, threads);
    if (threads == 1) {
      base_stats = stats;
      base_basis = BasisBytes(problem, *result);
      continue;
    }
    EXPECT_EQ(BasisBytes(problem, *result), base_basis)
        << "basis drifted at threads=" << threads;
    EXPECT_EQ(stats.total_bytes, base_stats.total_bytes);
    EXPECT_EQ(stats.messages, base_stats.messages);
    EXPECT_EQ(stats.rounds, base_stats.rounds);
    EXPECT_EQ(stats.iterations, base_stats.iterations);
    EXPECT_EQ(stats.sample_size, base_stats.sample_size);
  }
}

TEST(RuntimeDeterminismTest, MpcBitIdenticalAcrossThreadCounts) {
  auto [problem, constraints] = MakeFeasibleLpCase(16000, 2, 77);
  Rng rng(77);
  auto parts = workload::Partition(constraints, 32, true, &rng);

  mpc::MpcStats base_stats;
  std::vector<uint8_t> base_basis;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    mpc::MpcOptions opt;
    opt.delta = 0.5;
    opt.net.scale = 0.1;
    opt.seed = 1717;
    opt.runtime.num_threads = threads;
    mpc::MpcStats stats;
    auto result = mpc::SolveMpc(problem, parts, opt, &stats);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    ExpectMatchesDirect(problem, constraints, result->value, "mpc");
    EXPECT_EQ(stats.threads, threads);
    if (threads == 1) {
      base_stats = stats;
      base_basis = BasisBytes(problem, *result);
      continue;
    }
    EXPECT_EQ(BasisBytes(problem, *result), base_basis)
        << "basis drifted at threads=" << threads;
    EXPECT_EQ(stats.total_bytes, base_stats.total_bytes);
    EXPECT_EQ(stats.max_load_bytes, base_stats.max_load_bytes);
    EXPECT_EQ(stats.rounds, base_stats.rounds);
    EXPECT_EQ(stats.iterations, base_stats.iterations);
  }
}

TEST(RuntimeDeterminismTest, ExternalPoolMatchesOwnedPool) {
  auto [problem, constraints] = MakeFeasibleLpCase(8000, 2, 55);
  Rng rng(55);
  auto parts = workload::Partition(constraints, 16, true, &rng);

  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 321;
  opt.runtime.num_threads = 4;
  coord::CoordinatorStats owned_stats;
  auto owned = coord::SolveCoordinator(problem, parts, opt, &owned_stats);
  ASSERT_TRUE(owned.ok());

  ThreadPool pool(4);
  opt.runtime.pool = &pool;
  coord::CoordinatorStats ext_stats;
  auto external = coord::SolveCoordinator(problem, parts, opt, &ext_stats);
  ASSERT_TRUE(external.ok());
  EXPECT_EQ(BasisBytes(problem, *owned), BasisBytes(problem, *external));
  EXPECT_EQ(owned_stats.total_bytes, ext_stats.total_bytes);
}

// ---------------------------------------------------------- SolverService

TEST(SolverServiceTest, RunsJobsAndReportsStats) {
  MetricsRegistry reg;
  SolverService::Options sopt;
  sopt.num_threads = 4;
  sopt.metrics = &reg;
  SolverService service(sopt);
  EXPECT_EQ(service.num_threads(), 4u);

  std::vector<std::future<double>> futures;
  for (int j = 0; j < 16; ++j) {
    futures.push_back(service.Submit("lp", [j] {
      auto [problem, constraints] = MakeFeasibleLpCase(500, 2, 100 + j);
      return testing_util::DirectValue(problem, constraints).objective;
    }));
  }
  for (int j = 0; j < 16; ++j) {
    auto [problem, constraints] = MakeFeasibleLpCase(500, 2, 100 + j);
    EXPECT_DOUBLE_EQ(futures[j].get(),
                     testing_util::DirectValue(problem, constraints).objective)
        << "job " << j;
  }
  service.Drain();
  auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(service.inflight(), 0u);
  EXPECT_EQ(reg.GetCounter("solver_service.jobs_submitted")->value(), 16u);
  EXPECT_EQ(reg.GetCounter("solver_service.jobs.lp")->value(), 16u);
  EXPECT_EQ(reg.GetTimer("solver_service.job_seconds")->count(), 16u);
}

TEST(SolverServiceTest, FailedJobCountsAndFutureRethrows) {
  MetricsRegistry reg;
  SolverService::Options sopt;
  sopt.num_threads = 2;
  sopt.metrics = &reg;
  SolverService service(sopt);
  auto bad = service.Submit("bad", []() -> int {
    throw std::runtime_error("job failed");
  });
  auto good = service.Submit("good", [] { return 7; });
  EXPECT_EQ(good.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  service.Drain();
  auto stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(reg.GetCounter("solver_service.jobs_failed")->value(), 1u);
}

TEST(SolverServiceTest, DestructorDrains) {
  std::atomic<int> done{0};
  {
    SolverService::Options sopt;
    sopt.num_threads = 2;
    MetricsRegistry reg;
    sopt.metrics = &reg;
    SolverService service(sopt);
    for (int j = 0; j < 32; ++j) {
      service.Submit("tick", [&done] {
        ++done;
        return 0;
      });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace lplow

// Property tests of the LP-type axioms (paper Section 2.1) for all six
// problem instantiations: monotonicity, locality-consistency of the
// violation test with f, basis size bounds (combinatorial dimension), and
// basis correctness (f(basis) == f(set)).

#include <gtest/gtest.h>

#include <span>

#include "src/core/lp_type.h"
#include "src/problems/chebyshev_center.h"
#include "src/problems/enclosing_annulus.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/linf_regression.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

template <LpTypeProblem P>
void CheckAxioms(const P& problem,
                 const std::vector<typename P::Constraint>& constraints,
                 Rng* rng) {
  using Constraint = typename P::Constraint;
  // Random nested pair X subseteq Y subseteq S.
  std::vector<Constraint> y;
  std::vector<Constraint> x;
  for (const auto& c : constraints) {
    if (rng->Bernoulli(0.7)) {
      y.push_back(c);
      if (rng->Bernoulli(0.5)) x.push_back(c);
    }
  }
  auto fx = problem.SolveValue(std::span<const Constraint>(x));
  auto fy = problem.SolveValue(std::span<const Constraint>(y));
  auto fs = problem.SolveValue(std::span<const Constraint>(constraints));

  // Monotonicity: f(X) <= f(Y) <= f(S).
  EXPECT_LE(problem.CompareValues(fx, fy), 0);
  EXPECT_LE(problem.CompareValues(fy, fs), 0);

  // Violation consistency ((P2)): c violates f(Y) iff f(Y + c) > f(Y).
  for (int t = 0; t < 5 && !constraints.empty(); ++t) {
    const Constraint& c = constraints[rng->UniformIndex(constraints.size())];
    std::vector<Constraint> y_plus = y;
    y_plus.push_back(c);
    auto fyc = problem.SolveValue(std::span<const Constraint>(y_plus));
    int cmp = problem.CompareValues(fyc, fy);
    if (problem.Violates(fy, c)) {
      // Borderline violations (within the comparison tolerance band) may
      // leave f numerically unchanged; f must never decrease.
      EXPECT_GE(cmp, 0) << "violating constraint must not decrease f";
    } else {
      EXPECT_EQ(cmp, 0) << "non-violating constraint must not change f";
    }
  }

  // Basis: f(B) == f(S), |B| <= nu.
  auto basis = problem.SolveBasis(std::span<const Constraint>(constraints));
  EXPECT_EQ(problem.CompareValues(basis.value, fs), 0);
  EXPECT_LE(basis.basis.size(), problem.CombinatorialDimension());
  auto fb = problem.SolveValue(std::span<const Constraint>(basis.basis));
  EXPECT_EQ(problem.CompareValues(fb, basis.value), 0)
      << "basis must reproduce the value";
}

class LpAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LpAxioms, RandomFeasible) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(3);
  auto inst = workload::RandomFeasibleLp(30, d, &rng);
  LinearProgram problem(inst.objective);
  CheckAxioms(problem, inst.constraints, &rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpAxioms,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class SvmAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SvmAxioms, RandomSeparable) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(2);
  auto pts = workload::SeparableSvmData(25, d, 0.6, &rng);
  LinearSvm problem(d);
  CheckAxioms(problem, pts, &rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvmAxioms,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

class MebAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MebAxioms, RandomCloud) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(3);
  auto pts = workload::GaussianCloud(30, d, &rng);
  MinEnclosingBall problem(d);
  CheckAxioms(problem, pts, &rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MebAxioms,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

class ChebyshevAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChebyshevAxioms, PlantedTangent) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(3);
  auto c = testing_util::MakeChebyshevCase(30, d, GetParam() * 977 + 5);
  CheckAxioms(c.problem, c.constraints, &rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChebyshevAxioms,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

class LinfRegressionAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinfRegressionAxioms, PlantedSupport) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(3);
  auto c = testing_util::MakeLinfRegressionCase(28, d, GetParam() * 977 + 7);
  CheckAxioms(c.problem, c.points, &rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinfRegressionAxioms,
                         ::testing::Values(61, 62, 63, 64, 65, 66));

class AnnulusAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnnulusAxioms, PlantedShell) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(2);  // {2, 3}: 2d-point basis vs nu = d+3.
  auto c = testing_util::MakeAnnulusCase(30, d, GetParam() * 977 + 9);
  CheckAxioms(c.problem, c.points, &rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnulusAxioms,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

TEST(LpTypeTest, EmptySetValues) {
  LinearProgram lp(Vec{1, 1});
  auto v = lp.SolveValue({});
  EXPECT_TRUE(v.feasible);  // The box optimum.

  LinearSvm svm(2);
  auto sv = svm.SolveValue({});
  EXPECT_TRUE(sv.separable);
  EXPECT_EQ(sv.norm_squared, 0);

  MinEnclosingBall meb(2);
  auto mv = meb.SolveValue({});
  EXPECT_TRUE(mv.ball.empty());

  // Chebyshev f(empty) is the box optimum: the inscribed ball of the solver
  // box, the largest radius any subset can ever admit.
  ChebyshevCenter cheb(2);
  auto cv = cheb.SolveValue({});
  EXPECT_TRUE(cv.feasible);
  EXPECT_GT(cv.radius, 0);

  // L-inf regression and annulus use an explicit empty flag as the minimal
  // element: every constraint violates it.
  LinfRegression linf(2);
  auto lv = linf.SolveValue({});
  EXPECT_TRUE(lv.empty);
  EXPECT_TRUE(linf.Violates(lv, RegressionPoint{Vec{1, 2}, 0.5}));

  EnclosingAnnulus ann(2);
  auto av = ann.SolveValue({});
  EXPECT_TRUE(av.empty);
  EXPECT_TRUE(ann.Violates(av, Vec{3, 4}));
}

TEST(LpTypeTest, InfeasibleLpIsMaximal) {
  Rng rng(31);
  auto inst = workload::RandomInfeasibleLp(12, 2, &rng);
  LinearProgram lp(inst.objective);
  auto basis = lp.SolveBasis(std::span<const Halfspace>(inst.constraints));
  EXPECT_FALSE(basis.value.feasible);
  // Nothing violates the maximal element.
  for (const auto& c : inst.constraints) {
    EXPECT_FALSE(lp.Violates(basis.value, c));
  }
  // The infeasible core itself must be infeasible and small.
  EXPECT_LE(basis.basis.size(), inst.constraints.size());
  auto core_val = lp.SolveValue(std::span<const Halfspace>(basis.basis));
  EXPECT_FALSE(core_val.feasible);
}

TEST(LpTypeTest, NonSeparableSvmCore) {
  Rng rng(37);
  auto pts = workload::NonSeparableSvmData(40, 2, &rng);
  LinearSvm svm(2);
  auto basis = svm.SolveBasis(std::span<const SvmPoint>(pts));
  EXPECT_FALSE(basis.value.separable);
  auto core = svm.SolveValue(std::span<const SvmPoint>(basis.basis));
  EXPECT_FALSE(core.separable) << "core must witness non-separability";
}

TEST(LpTypeTest, SerializationRoundTripAllProblems) {
  Rng rng(41);
  // LP.
  {
    LinearProgram lp(Vec{1, 0, 0});
    Halfspace h(Vec{1, -2, 3}, 4.5);
    BitWriter w;
    lp.SerializeConstraint(h, &w);
    EXPECT_EQ(w.size_bytes(), lp.ConstraintBytes(h));
    BitReader r(w.buffer());
    auto h2 = lp.DeserializeConstraint(&r);
    ASSERT_TRUE(h2.ok());
    EXPECT_TRUE(h2->a.ApproxEquals(h.a, 0));
  }
  // SVM.
  {
    LinearSvm svm(2);
    SvmPoint p{Vec{1.25, -3.5}, -1};
    BitWriter w;
    svm.SerializeConstraint(p, &w);
    EXPECT_EQ(w.size_bytes(), svm.ConstraintBytes(p));
    BitReader r(w.buffer());
    auto p2 = svm.DeserializeConstraint(&r);
    ASSERT_TRUE(p2.ok());
    EXPECT_EQ(p2->label, -1);
    EXPECT_EQ(p2->x[1], -3.5);
  }
  // MEB.
  {
    MinEnclosingBall meb(3);
    Vec p{1, 2, 3};
    BitWriter w;
    meb.SerializeConstraint(p, &w);
    EXPECT_EQ(w.size_bytes(), meb.ConstraintBytes(p));
    BitReader r(w.buffer());
    auto p2 = meb.DeserializeConstraint(&r);
    ASSERT_TRUE(p2.ok());
    EXPECT_TRUE(p2->ApproxEquals(p, 0));
  }
  // Chebyshev center (halfspace constraints, shared with LP).
  {
    ChebyshevCenter cheb(3);
    Halfspace h(Vec{0.5, -1.5, 2.25}, -7.75);
    BitWriter w;
    cheb.SerializeConstraint(h, &w);
    EXPECT_EQ(w.size_bytes(), cheb.ConstraintBytes(h));
    BitReader r(w.buffer());
    auto h2 = cheb.DeserializeConstraint(&r);
    ASSERT_TRUE(h2.ok());
    EXPECT_TRUE(h2->a.ApproxEquals(h.a, 0));
    EXPECT_EQ(h2->b, -7.75);
  }
  // L-inf regression (sample = regressor vector + response).
  {
    LinfRegression linf(2);
    RegressionPoint p{Vec{1.5, -0.25}, 3.125};
    BitWriter w;
    linf.SerializeConstraint(p, &w);
    EXPECT_EQ(w.size_bytes(), linf.ConstraintBytes(p));
    BitReader r(w.buffer());
    auto p2 = linf.DeserializeConstraint(&r);
    ASSERT_TRUE(p2.ok());
    EXPECT_TRUE(p2->x.ApproxEquals(p.x, 0));
    EXPECT_EQ(p2->y, 3.125);
  }
  // Annulus (point constraints, same wire shape as MEB).
  {
    EnclosingAnnulus ann(4);
    Vec p{-1, 0.5, 2, -3.75};
    BitWriter w;
    ann.SerializeConstraint(p, &w);
    EXPECT_EQ(w.size_bytes(), ann.ConstraintBytes(p));
    BitReader r(w.buffer());
    auto p2 = ann.DeserializeConstraint(&r);
    ASSERT_TRUE(p2.ok());
    EXPECT_TRUE(p2->ApproxEquals(p, 0));
  }
}

}  // namespace
}  // namespace lplow

// Tests of the TCI communication protocols and the Figure 1b LP reduction.

#include <gtest/gtest.h>

#include <cmath>

#include "src/lowerbound/aug_index.h"
#include "src/lowerbound/hard_instance.h"
#include "src/lowerbound/tci_protocols.h"
#include "src/lowerbound/tci_to_lp.h"
#include "src/util/rng.h"

namespace lplow {
namespace lb {
namespace {

TciInstance RandomValidInstance(size_t bits, Rng* rng) {
  AugIndexInstance aug = RandomAugIndex(bits, rng);
  return BuildTciFromAugIndex(aug, Rational(3 + rng->UniformInt(0, 20))).tci;
}

TEST(FullSendTest, CorrectAndLinearCost) {
  Rng rng(1);
  auto t = RandomValidInstance(20, &rng);
  ProtocolStats st;
  auto ans = FullSendProtocol(t, &st);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(*ans, *TciAnswer(t));
  EXPECT_EQ(st.messages, 1u);
  EXPECT_GE(st.bits, t.n() * 16);  // At least the headers of n rationals.
}

TEST(BlockDescentTest, CorrectOnRandomInstances) {
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    auto t = RandomValidInstance(5 + rng.UniformIndex(40), &rng);
    BlockDescentOptions opt;
    opt.grid = 2 + rng.UniformIndex(8);
    ProtocolStats st;
    auto ans = BlockDescentProtocol(t, opt, &st);
    ASSERT_TRUE(ans.ok());
    EXPECT_EQ(*ans, *TciAnswer(t)) << "trial " << trial;
  }
}

TEST(BlockDescentTest, CorrectOnHardInstances) {
  for (int r = 1; r <= 3; ++r) {
    HardInstanceOptions opt;
    opt.base_n = 4;
    opt.rounds = r;
    Rng rng(100 + r);
    HardInstance h = BuildHardInstance(opt, &rng);
    BlockDescentOptions bopt;
    bopt.grid = 4;
    ProtocolStats st;
    auto ans = BlockDescentProtocol(h.tci, bopt, &st);
    ASSERT_TRUE(ans.ok());
    EXPECT_EQ(*ans, h.expected_answer);
    // Grid = n^{1/r} = 4 should finish in about r grid rounds (each round is
    // an Alice message plus a Bob reply).
    EXPECT_LE(st.messages, 2u * (static_cast<size_t>(r) + 2));
  }
}

TEST(BlockDescentTest, CommunicationFallsWithMoreRounds) {
  // The pass/communication trade-off: larger grid = fewer rounds but more
  // bits per round; the total for grid=n is ~n while grid=2 is ~log n.
  HardInstanceOptions opt;
  opt.base_n = 6;
  opt.rounds = 3;  // n = 216.
  Rng rng(7);
  HardInstance h = BuildHardInstance(opt, &rng);

  ProtocolStats one_shot, binary;
  {
    BlockDescentOptions o;
    o.grid = h.tci.n();
    ASSERT_TRUE(BlockDescentProtocol(h.tci, o, &one_shot).ok());
  }
  {
    BlockDescentOptions o;
    o.grid = 2;
    ASSERT_TRUE(BlockDescentProtocol(h.tci, o, &binary).ok());
  }
  EXPECT_LT(one_shot.messages, binary.messages);
  EXPECT_GT(one_shot.bits, binary.bits);
}

TEST(TciToLpTest, LinesCountAndContainCurves) {
  Rng rng(3);
  auto t = RandomValidInstance(10, &rng);
  auto lines = TciToLines(t);
  EXPECT_EQ(lines.size(), 2 * t.n() - 2);
  // Every curve point lies ON its segment's line (and above no line by
  // construction of convexity — spot check containment).
  for (size_t i = 0; i + 1 < t.n(); ++i) {
    Rational x(static_cast<int64_t>(i + 1));
    EXPECT_EQ(lines[i].ValueAt(x), t.a[i]);
  }
}

TEST(TciToLpTest, ReductionMatchesAnswerOnRandomInstances) {
  Rng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    auto t = RandomValidInstance(4 + rng.UniformIndex(30), &rng);
    auto lp = SolveTciViaLp(t);
    ASSERT_TRUE(lp.ok());
    EXPECT_EQ(lp->index, *TciAnswer(t)) << "trial " << trial;
  }
}

TEST(TciToLpTest, ReductionMatchesAnswerOnHardInstances) {
  // Corollary 8 end-to-end with exact arithmetic, including r = 3 instances
  // whose coordinates exceed double precision.
  for (int r = 1; r <= 3; ++r) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      HardInstanceOptions opt;
      opt.base_n = 4;
      opt.rounds = r;
      Rng rng(seed * 17 + r);
      HardInstance h = BuildHardInstance(opt, &rng);
      auto lp = SolveTciViaLp(h.tci);
      ASSERT_TRUE(lp.ok());
      EXPECT_EQ(lp->index, h.expected_answer) << "r=" << r << " s=" << seed;
    }
  }
}

TEST(TciToLpTest, LpOptimumIsOnBothCurveEnvelopes) {
  Rng rng(5);
  auto t = RandomValidInstance(12, &rng);
  auto lp = SolveTciViaLp(t);
  ASSERT_TRUE(lp.ok());
  // The optimum must satisfy every constraint line.
  for (const auto& line : TciToLines(t)) {
    EXPECT_GE(lp->y, line.ValueAt(lp->x));
  }
}

TEST(RationalWireBitsTest, TracksMagnitude) {
  EXPECT_LT(RationalWireBits(Rational(1)),
            RationalWireBits(Rational(BigInt::FromString(
                "9999999999999999999999999999"))));
}

// The measured communication shape of Theorem 7's bracketing upper bound:
// block-descent with grid n^{1/r} costs Theta(r * n^{1/r}) values. Growing
// r must reduce the per-protocol bit count on the same instance family.
TEST(ProtocolShapeTest, BitsShrinkWithRounds) {
  HardInstanceOptions opt;
  opt.base_n = 4;
  opt.rounds = 4;  // n = 256.
  Rng rng(6);
  HardInstance h = BuildHardInstance(opt, &rng);
  const size_t n = h.tci.n();

  size_t bits_r1, bits_r2, bits_r4;
  {
    ProtocolStats st;
    BlockDescentOptions o;
    o.grid = n;  // 1 grid round.
    ASSERT_TRUE(BlockDescentProtocol(h.tci, o, &st).ok());
    bits_r1 = st.bits;
  }
  {
    ProtocolStats st;
    BlockDescentOptions o;
    o.grid = 16;  // n^{1/2}.
    ASSERT_TRUE(BlockDescentProtocol(h.tci, o, &st).ok());
    bits_r2 = st.bits;
  }
  {
    ProtocolStats st;
    BlockDescentOptions o;
    o.grid = 4;  // n^{1/4}.
    ASSERT_TRUE(BlockDescentProtocol(h.tci, o, &st).ok());
    bits_r4 = st.bits;
  }
  EXPECT_GT(bits_r1, bits_r2);
  EXPECT_GT(bits_r2, bits_r4);
}

}  // namespace
}  // namespace lb
}  // namespace lplow

// Cross-model agreement: for identical inputs, the sequential reference
// (Algorithm 1), the streaming solver (Theorem 1), the coordinator solver
// (Theorem 2), the MPC solver (Theorem 3), and a direct solve must all
// report the same f(S) — across all three problems of Section 4.

#include <gtest/gtest.h>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using testing_util::CheckAllModelsAgree;

class CrossModelLp : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossModelLp, AllAgree) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(2);
  auto c = testing_util::MakeFeasibleLpCase(3000, d, GetParam());
  CheckAllModelsAgree(c.problem, c.constraints, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModelLp,
                         ::testing::Values(1, 2, 3, 4, 5));

class CrossModelSvm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossModelSvm, AllAgree) {
  auto c = testing_util::MakeSeparableSvmCase(1500, 2, 0.5, GetParam());
  CheckAllModelsAgree(c.problem, c.points, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModelSvm, ::testing::Values(11, 12, 13));

class CrossModelMeb : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossModelMeb, AllAgree) {
  auto c = testing_util::MakeGaussianMebCase(3000, 3, GetParam());
  CheckAllModelsAgree(c.problem, c.points, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModelMeb, ::testing::Values(21, 22, 23));

TEST(IntegrationTest, ChebyshevRegressionEndToEndStreaming) {
  // The paper's motivating workload: over-constrained robust regression in
  // the streaming model.
  Rng rng(31);
  auto data = workload::RandomRegressionData(4000, 2, 0.25, &rng);
  auto lp = workload::ChebyshevRegressionLp(data);
  LinearProgram problem(lp.objective);
  stream::VectorStream<Halfspace> s(lp.constraints);
  stream::StreamingOptions opt;
  opt.r = 4;
  opt.net.scale = 0.15;
  stream::StreamingStats stats;
  auto result = stream::SolveStreaming(problem, s, opt, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->value.feasible);
  // The optimal max-residual t is bounded by the injected noise.
  EXPECT_LE(result->value.objective, 0.25 + 1e-5);
  EXPECT_GE(result->value.objective, 0.0 - 1e-7);
  EXPECT_LT(stats.peak_items, lp.constraints.size() / 2);
}

TEST(IntegrationTest, InfeasibleAcrossModels) {
  Rng rng(37);
  auto inst = workload::RandomInfeasibleLp(2000, 2, &rng);
  LinearProgram problem(inst.objective);

  stream::VectorStream<Halfspace> s(inst.constraints);
  auto streaming = stream::SolveStreaming(problem, s, {}, nullptr);
  ASSERT_TRUE(streaming.ok());
  EXPECT_FALSE(streaming->value.feasible);

  auto parts = workload::Partition(inst.constraints, 4, true, &rng);
  auto coordinated = coord::SolveCoordinator(problem, parts, {}, nullptr);
  ASSERT_TRUE(coordinated.ok());
  EXPECT_FALSE(coordinated->value.feasible);

  auto parallel = mpc::SolveMpc(problem, parts, {}, nullptr);
  ASSERT_TRUE(parallel.ok());
  EXPECT_FALSE(parallel->value.feasible);
}

TEST(IntegrationTest, BasisCertifiesOptimum) {
  // The returned basis is a succinct certificate: re-solving just the basis
  // reproduces f(S), and nothing in S violates it.
  Rng rng(41);
  auto inst = workload::RandomFeasibleLp(5000, 3, &rng);
  LinearProgram problem(inst.objective);
  stream::VectorStream<Halfspace> s(inst.constraints);
  auto result = stream::SolveStreaming(problem, s, {}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->basis.size(), problem.CombinatorialDimension());
  for (const auto& c : inst.constraints) {
    EXPECT_FALSE(problem.Violates(result->value, c));
  }
}

}  // namespace
}  // namespace lplow

// Structural checks on the D_r assembly that back Observations 5.11/5.12:
// in an even-level instance the *inactive* player's curve (Alice) is linear
// outside the single special block, while the active player's curve (Bob)
// carries genuine per-block structure everywhere — and vice versa at odd
// levels. These are the geometric prerequisites for the information-
// theoretic obliviousness argument.

#include <gtest/gtest.h>

#include <set>

#include "src/lowerbound/curves.h"
#include "src/lowerbound/hard_instance.h"
#include "src/util/rng.h"

namespace lplow {
namespace lb {
namespace {

// Number of indices i where the slope changes (kinks) in z.
size_t CountKinks(const std::vector<Rational>& z) {
  auto slopes = Slopes(z);
  size_t kinks = 0;
  for (size_t i = 1; i < slopes.size(); ++i) {
    if (slopes[i] != slopes[i - 1]) ++kinks;
  }
  return kinks;
}

TEST(HardStructureTest, EvenLevelAliceLinearOutsideSpecialBlock) {
  // r = 2: Alice = extension + one real step-curve block + extension. Her
  // kinks must all fall inside (or at the edges of) block z*.
  HardInstanceOptions opt;
  opt.base_n = 6;
  opt.rounds = 2;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    HardInstance h = BuildHardInstance(opt, &rng);
    const size_t block = 6;  // n_{r-1}.
    const size_t zstar = h.zstar_chain[0];
    auto slopes = Slopes(h.tci.a);
    // Slope index i is the step from point i+1 to i+2 (1-based points).
    size_t lo = (zstar - 1) * block;      // First in-block slope index.
    size_t hi = zstar * block - 1;        // One past the block's last slope.
    for (size_t i = 1; i < slopes.size(); ++i) {
      if (slopes[i] != slopes[i - 1]) {
        EXPECT_GE(i + 1, lo == 0 ? 0 : lo)
            << "kink outside block z* (left), seed " << seed;
        EXPECT_LE(i, hi) << "kink outside block z* (right), seed " << seed;
      }
    }
  }
}

TEST(HardStructureTest, EvenLevelBobCarriesAllBlocks) {
  // Bob's curve concatenates N base lines with distinct gauged slopes: at
  // least N distinct slope values must appear.
  HardInstanceOptions opt;
  opt.base_n = 6;
  opt.rounds = 2;
  Rng rng(3);
  HardInstance h = BuildHardInstance(opt, &rng);
  auto slopes = Slopes(h.tci.b);
  std::set<std::string> distinct;
  for (const auto& s : slopes) distinct.insert(s.ToString());
  EXPECT_GE(distinct.size(), opt.base_n)
      << "every block must contribute its own slope range";
}

TEST(HardStructureTest, OddLevelBobLinearOutsideSpecialBlock) {
  // r = 3 (odd): Bob = extension + one real block + extension; Alice is the
  // concatenation. Bob's kink count must be bounded by the block interior,
  // Alice's must exceed it.
  HardInstanceOptions opt;
  opt.base_n = 4;
  opt.rounds = 3;
  Rng rng(5);
  HardInstance h = BuildHardInstance(opt, &rng);
  const size_t block = 16;  // n_{r-1} = 4^2.
  size_t bob_kinks = CountKinks(h.tci.b);
  size_t alice_kinks = CountKinks(h.tci.a);
  EXPECT_LE(bob_kinks, block + 1) << "Bob is linear outside block z*";
  EXPECT_GT(alice_kinks, bob_kinks)
      << "Alice (active at odd levels) carries all blocks";
}

TEST(HardStructureTest, EvenLevelBobEndsAtAnchor) {
  // The paper's origin anchor p_B = (n_r, 0): Bob's last value is exactly 0
  // at even levels.
  HardInstanceOptions opt;
  opt.base_n = 5;
  opt.rounds = 2;
  Rng rng(7);
  HardInstance h = BuildHardInstance(opt, &rng);
  EXPECT_EQ(h.tci.b.back(), Rational(0));
}

TEST(HardStructureTest, GaugePreservesSubInstanceAnswerMechanism) {
  // The operator invariance the whole construction rests on: applying any
  // affine gauge to a valid instance preserves validity and the answer.
  Rng rng(9);
  HardInstanceOptions opt;
  opt.base_n = 4;
  opt.rounds = 2;
  HardInstance h = BuildHardInstance(opt, &rng);
  size_t before = *TciAnswer(h.tci);
  ApplyAffineGauge(&h.tci, Rational::Make(7, 3), Rational(1),
                   Rational(-12345));
  ASSERT_TRUE(ValidateTci(h.tci).ok());
  EXPECT_EQ(*TciAnswer(h.tci), before);
}

TEST(HardStructureTest, AnswerUniformishAcrossBlocks) {
  // z* is uniform over blocks; a chi-square-lite check that no block is
  // starved over 60 samples (6 blocks, expect 10 each; allow wide band).
  HardInstanceOptions opt;
  opt.base_n = 6;
  opt.rounds = 2;
  std::vector<int> counts(6, 0);
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(1000 + seed);
    HardInstance h = BuildHardInstance(opt, &rng);
    counts[h.zstar_chain[0] - 1]++;
  }
  for (int c : counts) {
    EXPECT_GE(c, 2);
    EXPECT_LE(c, 25);
  }
}

}  // namespace
}  // namespace lb
}  // namespace lplow

#include "src/numeric/bigint.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace lplow {
namespace {

TEST(BigIntTest, ZeroBasics) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ((-z).ToString(), "0");
}

TEST(BigIntTest, Int64Construction) {
  EXPECT_EQ(BigInt(12345).ToString(), "12345");
  EXPECT_EQ(BigInt(-12345).ToString(), "-12345");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
}

TEST(BigIntTest, Int64RoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(INT64_MIN / 2, INT64_MAX / 2);
    BigInt b(v);
    ASSERT_TRUE(b.FitsInt64());
    EXPECT_EQ(b.ToInt64(), v);
  }
  EXPECT_EQ(BigInt(INT64_MIN).ToInt64(), INT64_MIN);
}

TEST(BigIntTest, StringRoundTrip) {
  const char* cases[] = {"0", "1", "-1", "4294967296", "-4294967297",
                         "123456789012345678901234567890",
                         "-99999999999999999999999999999999999999"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::FromString(s).ToString(), s);
  }
}

TEST(BigIntTest, TryParseRejectsGarbage) {
  BigInt out;
  EXPECT_FALSE(BigInt::TryParse("", &out));
  EXPECT_FALSE(BigInt::TryParse("-", &out));
  EXPECT_FALSE(BigInt::TryParse("12a", &out));
  EXPECT_TRUE(BigInt::TryParse("+7", &out));
  EXPECT_EQ(out.ToInt64(), 7);
  EXPECT_TRUE(BigInt::TryParse("-0", &out));
  EXPECT_TRUE(out.is_zero());
  EXPECT_FALSE(out.is_negative());
}

TEST(BigIntTest, ArithmeticAgainstInt64) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.UniformInt(-1000000, 1000000);
    int64_t y = rng.UniformInt(-1000000, 1000000);
    EXPECT_EQ((BigInt(x) + BigInt(y)).ToInt64(), x + y);
    EXPECT_EQ((BigInt(x) - BigInt(y)).ToInt64(), x - y);
    EXPECT_EQ((BigInt(x) * BigInt(y)).ToInt64(), x * y);
    if (y != 0) {
      EXPECT_EQ((BigInt(x) / BigInt(y)).ToInt64(), x / y);
      EXPECT_EQ((BigInt(x) % BigInt(y)).ToInt64(), x % y);
    }
  }
}

TEST(BigIntTest, CompareAgainstInt64) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.UniformInt(-100, 100);
    int64_t y = rng.UniformInt(-100, 100);
    EXPECT_EQ(BigInt(x) < BigInt(y), x < y);
    EXPECT_EQ(BigInt(x) == BigInt(y), x == y);
    EXPECT_EQ(BigInt(x) >= BigInt(y), x >= y);
  }
}

TEST(BigIntTest, MultiplicationLargeKnownValue) {
  BigInt a = BigInt::FromString("123456789123456789123456789");
  BigInt b = BigInt::FromString("987654321987654321");
  EXPECT_EQ((a * b).ToString(),
            "121932631356500531469135800347203169112635269");
}

TEST(BigIntTest, DivModLargeKnownValue) {
  BigInt a =
      BigInt::FromString("121932631356500531469135800347203169112635269");
  BigInt b = BigInt::FromString("987654321987654321");
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q.ToString(), "123456789123456789123456789");
  EXPECT_TRUE(r.is_zero());
}

TEST(BigIntTest, DivModIdentityProperty) {
  // a == q * b + r with |r| < |b| and sign(r) == sign(a), for random big
  // operands (property test for the Knuth-D path).
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    BigInt a(1), b(1);
    int la = 1 + static_cast<int>(rng.UniformIndex(6));
    int lb = 1 + static_cast<int>(rng.UniformIndex(4));
    for (int j = 0; j < la; ++j) a = a * BigInt(rng.UniformInt(1, 1 << 30));
    for (int j = 0; j < lb; ++j) b = b * BigInt(rng.UniformInt(1, 1 << 30));
    if (rng.Bernoulli(0.5)) a = -a;
    if (rng.Bernoulli(0.5)) b = -b;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST(BigIntTest, AddSubRoundTripBig) {
  Rng rng(19);
  for (int i = 0; i < 300; ++i) {
    BigInt a(rng.UniformInt(-1000, 1000));
    BigInt b(1);
    for (int j = 0; j < 5; ++j) {
      a = a * BigInt(rng.UniformInt(1, 1 << 30)) + BigInt(rng.UniformInt(-5, 5));
      b = b * BigInt(rng.UniformInt(1, 1 << 30));
    }
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(0)).ToInt64(), 7);
  EXPECT_EQ(BigInt::Gcd(BigInt(1), BigInt(1)).ToInt64(), 1);
}

TEST(BigIntTest, GcdDividesAndIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    BigInt g0(rng.UniformInt(1, 1000000));
    BigInt a = g0 * BigInt(rng.UniformInt(-1000000, 1000000));
    BigInt b = g0 * BigInt(rng.UniformInt(-1000000, 1000000));
    if (a.is_zero() && b.is_zero()) continue;
    BigInt g = BigInt::Gcd(a, b);
    EXPECT_GT(g.sign(), 0);
    EXPECT_TRUE((a % g).is_zero());
    EXPECT_TRUE((b % g).is_zero());
    EXPECT_TRUE((g % g0).is_zero());  // g0 divides gcd.
  }
}

TEST(BigIntTest, PowerChainMatchesKnownDecimal) {
  // 2^128.
  BigInt two(2);
  BigInt v(1);
  for (int i = 0; i < 128; ++i) v = v * two;
  EXPECT_EQ(v.ToString(), "340282366920938463463374607431768211456");
  EXPECT_EQ(v.BitLength(), 129u);
}

TEST(BigIntTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(1000).ToDouble(), 1000.0);
  BigInt big = BigInt::FromString("1000000000000000000000");  // 1e21.
  EXPECT_NEAR(big.ToDouble(), 1e21, 1e6);
  EXPECT_NEAR((-big).ToDouble(), -1e21, 1e6);
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(2).BitLength(), 2u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt(-256).BitLength(), 9u);
}

}  // namespace
}  // namespace lplow

// Shared test utilities: random-instance builders keyed by seed, the
// direct-solve agreement check used by every model-specific suite, and the
// cross-model agreement harness used by integration_test.cc.
//
// Header-only on purpose: every test binary is a single translation unit, so
// there is nothing to anchor in a .cc file.

#ifndef LPLOW_TESTS_TESTING_UTIL_H_
#define LPLOW_TESTS_TESTING_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/lp_type.h"
#include "src/util/bit_stream.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/deterministic/deterministic_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace testing_util {

// ------------------------------------------------ random-instance builders

/// A ready-to-solve LP test case: the problem plus its constraint set.
struct LpCase {
  LinearProgram problem;
  std::vector<Halfspace> constraints;
};

inline LpCase MakeFeasibleLpCase(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  auto inst = workload::RandomFeasibleLp(n, d, &rng);
  return LpCase{LinearProgram(inst.objective), std::move(inst.constraints)};
}

inline LpCase MakeInfeasibleLpCase(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  auto inst = workload::RandomInfeasibleLp(n, d, &rng);
  return LpCase{LinearProgram(inst.objective), std::move(inst.constraints)};
}

struct SvmCase {
  LinearSvm problem;
  std::vector<SvmPoint> points;
};

inline SvmCase MakeSeparableSvmCase(size_t n, size_t d, double margin,
                                    uint64_t seed) {
  Rng rng(seed);
  return SvmCase{LinearSvm(d), workload::SeparableSvmData(n, d, margin, &rng)};
}

/// Planted-support separable SVM instance in 2D: the optimum is exactly
/// w/margin with norm_squared 1/margin^2, supported by the two planted
/// margin points. Both get the SAME raw perpendicular sign: under
/// z = label * x the pair's perp components then have opposite signs, which
/// puts w/margin inside their dual cone (with `side *` on the perp term the
/// cone degenerates and the pair is NOT the support). Every other point is
/// rejection-sampled outside a 50% moat, so the support is unique with a
/// wide conditioning gap — unlike SeparableSvmData, which pushes every
/// in-band point to the identical margin distance and manufactures massive
/// support ties that stall the iterative QP dual ascent (see
/// differential_random_test.cc for the measured tolerance this implies).
inline std::vector<SvmPoint> PlantedSupportSvm(size_t n, double margin,
                                               Rng* rng) {
  Vec w(2);
  double norm = 0;
  for (size_t i = 0; i < 2; ++i) {
    w[i] = rng->Normal();
    norm += w[i] * w[i];
  }
  norm = std::sqrt(norm);
  for (size_t i = 0; i < 2; ++i) w[i] /= norm;
  Vec perp(2);
  perp[0] = -w[1];
  perp[1] = w[0];
  std::vector<SvmPoint> out;
  out.reserve(n);
  auto plant = [&](double side) {
    SvmPoint p;
    p.x = w * (side * margin) + perp * rng->UniformDouble(1.0, 8.0);
    p.label = side >= 0 ? 1 : -1;
    out.push_back(std::move(p));
  };
  plant(+1.0);
  plant(-1.0);
  const double moat = margin * 1.5;
  while (out.size() < n) {
    Vec x(2);
    for (size_t i = 0; i < 2; ++i) x[i] = rng->UniformDouble(-10, 10);
    double proj = w.Dot(x);
    if (std::fabs(proj) < moat) continue;
    SvmPoint p;
    p.x = std::move(x);
    p.label = proj >= 0 ? 1 : -1;
    out.push_back(std::move(p));
  }
  // Move the planted pair off the fixed head positions.
  std::swap(out[0], out[rng->UniformIndex(out.size())]);
  std::swap(out[1], out[rng->UniformIndex(out.size())]);
  return out;
}

struct MebCase {
  MinEnclosingBall problem;
  std::vector<Vec> points;
};

inline MebCase MakeGaussianMebCase(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  return MebCase{MinEnclosingBall(d), workload::GaussianCloud(n, d, &rng)};
}

// ----------------------------------------------- transcript fingerprints

/// FNV-1a over raw bytes: the transcript-hash primitive shared by
/// engine_equivalence_test and sharded_service_test.
inline uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a of `result.basis` serialized through the problem's own wire
/// format: any drift in the computed basis (constraints, order, or
/// multiplicity) changes the hash.
template <typename P, typename R>
uint64_t BasisHash(const P& problem, const R& result) {
  BitWriter w;
  for (const auto& c : result.basis) problem.SerializeConstraint(c, &w);
  return Fnv1a(w.Release());
}

// ------------------------------------------------- direct-solve agreement

/// f(S) computed by the problem's own direct solver — the ground truth every
/// model must reproduce exactly (CompareValues == 0, not approximate).
template <LpTypeProblem P>
typename P::Value DirectValue(const P& problem,
                              const std::vector<typename P::Constraint>& in) {
  return problem.SolveValue(std::span<const typename P::Constraint>(in));
}

/// Expects `got` to equal the direct solve of `input` under the problem's
/// value order. `what` names the solver under test in the failure message.
template <LpTypeProblem P>
void ExpectMatchesDirect(const P& problem,
                         const std::vector<typename P::Constraint>& input,
                         const typename P::Value& got, const char* what) {
  auto direct = DirectValue(problem, input);
  EXPECT_EQ(problem.CompareValues(got, direct), 0)
      << what << " disagrees with the direct solve";
}

// ------------------------------------------------ cross-model agreement

/// For identical inputs, the sequential reference (Algorithm 1), the
/// streaming solver (Theorem 1), the coordinator solver (Theorem 2), the MPC
/// solver (Theorem 3), the sampling-free deterministic solver, and a direct
/// solve must all report the same f(S).
template <LpTypeProblem P>
void CheckAllModelsAgree(const P& problem,
                         const std::vector<typename P::Constraint>& input,
                         uint64_t seed) {
  using Constraint = typename P::Constraint;
  Rng rng(seed);

  auto direct = DirectValue(problem, input);

  ClarksonOptions copt;
  copt.r = 2;
  copt.net.scale = 0.1;  // Leave the direct-solve regime at test-sized n.
  copt.seed = seed;
  auto sequential =
      ClarksonSolve(problem, std::span<const Constraint>(input), copt,
                    nullptr);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(problem.CompareValues(sequential->value, direct), 0)
      << "sequential != direct";

  stream::VectorStream<Constraint> vs(input);
  stream::StreamingOptions sopt;
  sopt.r = 2;
  sopt.net.scale = 0.1;
  sopt.seed = seed + 1;
  auto streaming = stream::SolveStreaming(problem, vs, sopt, nullptr);
  ASSERT_TRUE(streaming.ok());
  EXPECT_EQ(problem.CompareValues(streaming->value, direct), 0)
      << "streaming != direct";

  auto parts = workload::Partition(input, 4, true, &rng);
  coord::CoordinatorOptions ccopt;
  ccopt.r = 2;
  ccopt.net.scale = 0.1;
  ccopt.seed = seed + 2;
  auto coordinated = coord::SolveCoordinator(problem, parts, ccopt, nullptr);
  ASSERT_TRUE(coordinated.ok());
  EXPECT_EQ(problem.CompareValues(coordinated->value, direct), 0)
      << "coordinator != direct";

  auto parts2 = workload::Partition(input, 8, true, &rng);
  mpc::MpcOptions mopt;
  mopt.delta = 0.5;
  mopt.net.scale = 0.1;
  mopt.seed = seed + 3;
  auto parallel = mpc::SolveMpc(problem, parts2, mopt, nullptr);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(problem.CompareValues(parallel->value, direct), 0)
      << "mpc != direct";

  // The sampling-free model takes no seed at all; a contiguous partition
  // keeps its whole run free of random bits.
  auto parts3 = workload::Partition(input, 4, false, nullptr);
  det::DeterministicOptions dopt;
  dopt.r = 2;
  dopt.net.scale = 0.1;
  auto deterministic = det::SolveDeterministic(problem, parts3, dopt, nullptr);
  ASSERT_TRUE(deterministic.ok());
  EXPECT_EQ(problem.CompareValues(deterministic->value, direct), 0)
      << "deterministic != direct";
}

}  // namespace testing_util
}  // namespace lplow

#endif  // LPLOW_TESTS_TESTING_UTIL_H_

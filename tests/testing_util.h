// Shared test utilities: random-instance builders keyed by seed, the
// direct-solve agreement check used by every model-specific suite, and the
// cross-model agreement harness used by integration_test.cc.
//
// Header-only on purpose: every test binary is a single translation unit, so
// there is nothing to anchor in a .cc file.

#ifndef LPLOW_TESTS_TESTING_UTIL_H_
#define LPLOW_TESTS_TESTING_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/lp_type.h"
#include "src/util/bit_stream.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/deterministic/deterministic_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/chebyshev_center.h"
#include "src/problems/enclosing_annulus.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/linf_regression.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace testing_util {

// ------------------------------------------------ random-instance builders

/// A ready-to-solve LP test case: the problem plus its constraint set.
struct LpCase {
  LinearProgram problem;
  std::vector<Halfspace> constraints;
};

inline LpCase MakeFeasibleLpCase(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  auto inst = workload::RandomFeasibleLp(n, d, &rng);
  return LpCase{LinearProgram(inst.objective), std::move(inst.constraints)};
}

inline LpCase MakeInfeasibleLpCase(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  auto inst = workload::RandomInfeasibleLp(n, d, &rng);
  return LpCase{LinearProgram(inst.objective), std::move(inst.constraints)};
}

struct SvmCase {
  LinearSvm problem;
  std::vector<SvmPoint> points;
};

inline SvmCase MakeSeparableSvmCase(size_t n, size_t d, double margin,
                                    uint64_t seed) {
  Rng rng(seed);
  return SvmCase{LinearSvm(d), workload::SeparableSvmData(n, d, margin, &rng)};
}

/// Planted-support separable SVM instance in 2D: the optimum is exactly
/// w/margin with norm_squared 1/margin^2, supported by the two planted
/// margin points. Both get the SAME raw perpendicular sign: under
/// z = label * x the pair's perp components then have opposite signs, which
/// puts w/margin inside their dual cone (with `side *` on the perp term the
/// cone degenerates and the pair is NOT the support). Every other point is
/// rejection-sampled outside a 50% moat, so the support is unique with a
/// wide conditioning gap — unlike SeparableSvmData, which pushes every
/// in-band point to the identical margin distance and manufactures massive
/// support ties that stall the iterative QP dual ascent (see
/// differential_random_test.cc for the measured tolerance this implies).
inline std::vector<SvmPoint> PlantedSupportSvm(size_t n, double margin,
                                               Rng* rng) {
  Vec w(2);
  double norm = 0;
  for (size_t i = 0; i < 2; ++i) {
    w[i] = rng->Normal();
    norm += w[i] * w[i];
  }
  norm = std::sqrt(norm);
  for (size_t i = 0; i < 2; ++i) w[i] /= norm;
  Vec perp(2);
  perp[0] = -w[1];
  perp[1] = w[0];
  std::vector<SvmPoint> out;
  out.reserve(n);
  auto plant = [&](double side) {
    SvmPoint p;
    p.x = w * (side * margin) + perp * rng->UniformDouble(1.0, 8.0);
    p.label = side >= 0 ? 1 : -1;
    out.push_back(std::move(p));
  };
  plant(+1.0);
  plant(-1.0);
  const double moat = margin * 1.5;
  while (out.size() < n) {
    Vec x(2);
    for (size_t i = 0; i < 2; ++i) x[i] = rng->UniformDouble(-10, 10);
    double proj = w.Dot(x);
    if (std::fabs(proj) < moat) continue;
    SvmPoint p;
    p.x = std::move(x);
    p.label = proj >= 0 ? 1 : -1;
    out.push_back(std::move(p));
  }
  // Move the planted pair off the fixed head positions.
  std::swap(out[0], out[rng->UniformIndex(out.size())]);
  std::swap(out[1], out[rng->UniformIndex(out.size())]);
  return out;
}

struct MebCase {
  MinEnclosingBall problem;
  std::vector<Vec> points;
};

inline MebCase MakeGaussianMebCase(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  return MebCase{MinEnclosingBall(d), workload::GaussianCloud(n, d, &rng)};
}

struct ChebyshevCase {
  ChebyshevCenter problem;
  std::vector<Halfspace> constraints;
};

/// Planted-optimum Chebyshev instance: d+1 tangent facets whose unit normals
/// {-e_1, ..., -e_d, (1,..,1)/sqrt(d)} positively span R^d, each at distance
/// exactly r* from the planted center (b = a.c* + r*). Because the normals
/// admit positive weights lambda with sum(lambda_i a_i) = 0, the weighted
/// average of facet distances equals r* for EVERY candidate center, so no
/// ball of radius > r* fits and tangency to all d+1 facets pins the center:
/// the optimum is unique and its basis is exactly the planted facets. Every
/// filler facet sits at distance >= 1.2 r*, leaving a wide conditioning gap.
inline ChebyshevCase MakeChebyshevCase(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Vec center(d);
  for (size_t i = 0; i < d; ++i) center[i] = rng.UniformDouble(-5, 5);
  const double radius = rng.UniformDouble(0.5, 3.0);
  std::vector<Halfspace> out;
  out.reserve(n);
  auto tangent = [&](Vec a) {
    double b = a.Dot(center) + radius;  // Unit normal: distance == radius.
    out.emplace_back(std::move(a), b);
  };
  for (size_t i = 0; i < d; ++i) {
    Vec a(d);
    a[i] = -1.0;
    tangent(std::move(a));
  }
  {
    Vec a(d);
    const double s = 1.0 / std::sqrt(static_cast<double>(d));
    for (size_t i = 0; i < d; ++i) a[i] = s;
    tangent(std::move(a));
  }
  while (out.size() < n) {
    Vec a(d);
    double norm = 0;
    for (size_t i = 0; i < d; ++i) {
      a[i] = rng.Normal();
      norm += a[i] * a[i];
    }
    norm = std::sqrt(norm);
    if (norm < 1e-6) continue;
    for (size_t i = 0; i < d; ++i) a[i] /= norm;
    double b = a.Dot(center) + radius * rng.UniformDouble(1.2, 4.0);
    out.emplace_back(std::move(a), b);
  }
  // Move the planted facets off the fixed head positions.
  for (size_t i = 0; i <= d && i < out.size(); ++i) {
    std::swap(out[i], out[rng.UniformIndex(out.size())]);
  }
  return ChebyshevCase{ChebyshevCenter(d), std::move(out)};
}

struct LinfRegressionCase {
  LinfRegression problem;
  std::vector<RegressionPoint> points;
};

/// Planted-optimum L-infinity regression instance: d+1 support samples whose
/// regressor vectors {-3 e_1, ..., -3 e_d, (3,..,3)/sqrt(d)} positively span
/// R^d, each with y = w*.x - t* so the residual at the planted (w*, t*) is
/// exactly +t*. The positive-spanning weights certify KKT stationarity (no
/// direction shrinks every support residual at once), the supports' x
/// vectors span R^d so w* is pinned, and every filler sample gets residual
/// magnitude <= 0.8 t*: the optimum is unique with basis exactly the d+1
/// planted samples.
inline LinfRegressionCase MakeLinfRegressionCase(size_t n, size_t d,
                                                 uint64_t seed) {
  Rng rng(seed);
  Vec w(d);
  for (size_t i = 0; i < d; ++i) w[i] = rng.UniformDouble(-2, 2);
  const double t = rng.UniformDouble(0.5, 2.0);
  std::vector<RegressionPoint> out;
  out.reserve(n);
  auto support = [&](Vec x) {
    RegressionPoint p;
    p.y = w.Dot(x) - t;  // Residual +t* at the planted optimum.
    p.x = std::move(x);
    out.push_back(std::move(p));
  };
  for (size_t i = 0; i < d; ++i) {
    Vec x(d);
    x[i] = -3.0;
    support(std::move(x));
  }
  {
    Vec x(d);
    const double s = 3.0 / std::sqrt(static_cast<double>(d));
    for (size_t i = 0; i < d; ++i) x[i] = s;
    support(std::move(x));
  }
  while (out.size() < n) {
    Vec x(d);
    for (size_t i = 0; i < d; ++i) x[i] = rng.UniformDouble(-4, 4);
    RegressionPoint p;
    p.y = w.Dot(x) + rng.UniformDouble(-0.8, 0.8) * t;
    p.x = std::move(x);
    out.push_back(std::move(p));
  }
  for (size_t i = 0; i <= d && i < out.size(); ++i) {
    std::swap(out[i], out[rng.UniformIndex(out.size())]);
  }
  return LinfRegressionCase{LinfRegression(d), std::move(out)};
}

struct AnnulusCase {
  EnclosingAnnulus problem;
  std::vector<Vec> points;
};

/// Planted-optimum enclosing-annulus instance: an antipodal OUTER pair
/// c* +- R* e_1 and antipodal INNER pairs c* +- r* e_j for j >= 2. Any
/// center offset delta pays 2 R* |delta_1| on the outer radius and
/// 2 r* |delta_j| on some inner radius, so the width R*^2 - r*^2 is
/// attained only at c* and the 2d planted points are all extreme (dropping
/// one lets the lex tie-break slide the center). Use d in {2, 3} so the
/// 2d-point basis respects nu = d + 3. Fillers land strictly inside the
/// shell, in the middle 60% of the radial gap.
inline AnnulusCase MakeAnnulusCase(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Vec center(d);
  for (size_t i = 0; i < d; ++i) center[i] = rng.UniformDouble(-4, 4);
  const double inner = rng.UniformDouble(1.0, 2.0);
  const double outer = inner + rng.UniformDouble(0.5, 2.0);
  std::vector<Vec> out;
  out.reserve(n);
  auto antipodal = [&](size_t axis, double r) {
    for (double sign : {+1.0, -1.0}) {
      Vec p = center;
      p[axis] += sign * r;
      out.push_back(std::move(p));
    }
  };
  antipodal(0, outer);
  for (size_t axis = 1; axis < d; ++axis) antipodal(axis, inner);
  while (out.size() < n) {
    Vec u(d);
    double norm = 0;
    for (size_t i = 0; i < d; ++i) {
      u[i] = rng.Normal();
      norm += u[i] * u[i];
    }
    norm = std::sqrt(norm);
    if (norm < 1e-6) continue;
    const double r = inner + (outer - inner) * rng.UniformDouble(0.2, 0.8);
    Vec p(d);
    for (size_t i = 0; i < d; ++i) p[i] = center[i] + u[i] * (r / norm);
    out.push_back(std::move(p));
  }
  for (size_t i = 0; i < 2 * d && i < out.size(); ++i) {
    std::swap(out[i], out[rng.UniformIndex(out.size())]);
  }
  return AnnulusCase{EnclosingAnnulus(d), std::move(out)};
}

// ----------------------------------------------- transcript fingerprints

/// FNV-1a over raw bytes: the transcript-hash primitive shared by
/// engine_equivalence_test and sharded_service_test.
inline uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a of `result.basis` serialized through the problem's own wire
/// format: any drift in the computed basis (constraints, order, or
/// multiplicity) changes the hash.
template <typename P, typename R>
uint64_t BasisHash(const P& problem, const R& result) {
  BitWriter w;
  for (const auto& c : result.basis) problem.SerializeConstraint(c, &w);
  return Fnv1a(w.Release());
}

// ------------------------------------------------- direct-solve agreement

/// f(S) computed by the problem's own direct solver — the ground truth every
/// model must reproduce exactly (CompareValues == 0, not approximate).
template <LpTypeProblem P>
typename P::Value DirectValue(const P& problem,
                              const std::vector<typename P::Constraint>& in) {
  return problem.SolveValue(std::span<const typename P::Constraint>(in));
}

/// Expects `got` to equal the direct solve of `input` under the problem's
/// value order. `what` names the solver under test in the failure message.
template <LpTypeProblem P>
void ExpectMatchesDirect(const P& problem,
                         const std::vector<typename P::Constraint>& input,
                         const typename P::Value& got, const char* what) {
  auto direct = DirectValue(problem, input);
  EXPECT_EQ(problem.CompareValues(got, direct), 0)
      << what << " disagrees with the direct solve";
}

// ------------------------------------------------ cross-model agreement

/// For identical inputs, the sequential reference (Algorithm 1), the
/// streaming solver (Theorem 1), the coordinator solver (Theorem 2), the MPC
/// solver (Theorem 3), the sampling-free deterministic solver, and a direct
/// solve must all report the same f(S).
template <LpTypeProblem P>
void CheckAllModelsAgree(const P& problem,
                         const std::vector<typename P::Constraint>& input,
                         uint64_t seed) {
  using Constraint = typename P::Constraint;
  Rng rng(seed);

  auto direct = DirectValue(problem, input);

  ClarksonOptions copt;
  copt.r = 2;
  copt.net.scale = 0.1;  // Leave the direct-solve regime at test-sized n.
  copt.seed = seed;
  auto sequential =
      ClarksonSolve(problem, std::span<const Constraint>(input), copt,
                    nullptr);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(problem.CompareValues(sequential->value, direct), 0)
      << "sequential != direct";

  stream::VectorStream<Constraint> vs(input);
  stream::StreamingOptions sopt;
  sopt.r = 2;
  sopt.net.scale = 0.1;
  sopt.seed = seed + 1;
  auto streaming = stream::SolveStreaming(problem, vs, sopt, nullptr);
  ASSERT_TRUE(streaming.ok());
  EXPECT_EQ(problem.CompareValues(streaming->value, direct), 0)
      << "streaming != direct";

  auto parts = workload::Partition(input, 4, true, &rng);
  coord::CoordinatorOptions ccopt;
  ccopt.r = 2;
  ccopt.net.scale = 0.1;
  ccopt.seed = seed + 2;
  auto coordinated = coord::SolveCoordinator(problem, parts, ccopt, nullptr);
  ASSERT_TRUE(coordinated.ok());
  EXPECT_EQ(problem.CompareValues(coordinated->value, direct), 0)
      << "coordinator != direct";

  auto parts2 = workload::Partition(input, 8, true, &rng);
  mpc::MpcOptions mopt;
  mopt.delta = 0.5;
  mopt.net.scale = 0.1;
  mopt.seed = seed + 3;
  auto parallel = mpc::SolveMpc(problem, parts2, mopt, nullptr);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(problem.CompareValues(parallel->value, direct), 0)
      << "mpc != direct";

  // The sampling-free model takes no seed at all; a contiguous partition
  // keeps its whole run free of random bits.
  auto parts3 = workload::Partition(input, 4, false, nullptr);
  det::DeterministicOptions dopt;
  dopt.r = 2;
  dopt.net.scale = 0.1;
  auto deterministic = det::SolveDeterministic(problem, parts3, dopt, nullptr);
  ASSERT_TRUE(deterministic.ok());
  EXPECT_EQ(problem.CompareValues(deterministic->value, direct), 0)
      << "deterministic != direct";
}

}  // namespace testing_util
}  // namespace lplow

#endif  // LPLOW_TESTS_TESTING_UTIL_H_

#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace lplow {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(5);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10);
  EXPECT_EQ(rng.Binomial(-5, 0.5), 0);
}

TEST(RngTest, BinomialMeanApproximatelyNp) {
  Rng rng(5);
  double total = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) total += rng.Binomial(100, 0.3);
  double mean = total / trials;
  EXPECT_NEAR(mean, 30.0, 1.0);
}

TEST(RngTest, SampleDistinctIndicesAreDistinctAndInRange) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.UniformIndex(100);
    size_t k = rng.UniformIndex(n + 1);
    auto s = rng.SampleDistinctIndices(n, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), k);
    for (size_t idx : s) EXPECT_LT(idx, n);
  }
}

TEST(RngTest, SampleDistinctIndicesFullRange) {
  Rng rng(5);
  auto s = rng.SampleDistinctIndices(10, 10);
  std::sort(s.begin(), s.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, SampleDistinctIndicesUniformity) {
  // Each index of [0,5) should appear in ~k/n = 2/5 of samples.
  Rng rng(99);
  std::vector<int> counts(5, 0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    for (size_t idx : rng.SampleDistinctIndices(5, 2)) counts[idx]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.4, 0.05);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The child should not replay the parent's stream.
  Rng b(42);
  b.Fork();
  EXPECT_EQ(child.UniformInt(0, 1 << 30), Rng(42).Fork().UniformInt(0, 1 << 30))
      << "fork must be deterministic";
}

}  // namespace
}  // namespace lplow

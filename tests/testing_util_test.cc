// Tests of the shared builders in tests/testing_util.h: the reproducibility
// of every randomized suite rests on "same seed -> same instance", so the
// builders themselves are pinned here.

#include "tests/testing_util.h"

#include <gtest/gtest.h>

namespace lplow {
namespace {

TEST(TestingUtilTest, LpBuilderIsDeterministic) {
  auto a = testing_util::MakeFeasibleLpCase(200, 3, 7);
  auto b = testing_util::MakeFeasibleLpCase(200, 3, 7);
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  for (size_t i = 0; i < a.constraints.size(); ++i) {
    EXPECT_TRUE(a.constraints[i].a.ApproxEquals(b.constraints[i].a, 0.0));
    EXPECT_EQ(a.constraints[i].b, b.constraints[i].b);
  }
}

TEST(TestingUtilTest, LpBuilderVariesWithSeed) {
  auto a = testing_util::MakeFeasibleLpCase(200, 3, 7);
  auto b = testing_util::MakeFeasibleLpCase(200, 3, 8);
  bool any_diff = false;
  for (size_t i = 0; i < a.constraints.size() && !any_diff; ++i) {
    any_diff = !a.constraints[i].a.ApproxEquals(b.constraints[i].a, 0.0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(TestingUtilTest, BuildersProduceSolvableCases) {
  auto lp = testing_util::MakeFeasibleLpCase(500, 2, 3);
  EXPECT_TRUE(testing_util::DirectValue(lp.problem, lp.constraints).feasible);

  auto bad = testing_util::MakeInfeasibleLpCase(500, 2, 3);
  EXPECT_FALSE(
      testing_util::DirectValue(bad.problem, bad.constraints).feasible);

  auto svm = testing_util::MakeSeparableSvmCase(300, 2, 0.5, 3);
  EXPECT_EQ(svm.points.size(), 300u);

  auto meb = testing_util::MakeGaussianMebCase(300, 3, 3);
  EXPECT_EQ(meb.points.size(), 300u);
}

TEST(TestingUtilTest, ExpectMatchesDirectAcceptsDirectValue) {
  auto lp = testing_util::MakeFeasibleLpCase(300, 2, 11);
  auto direct = testing_util::DirectValue(lp.problem, lp.constraints);
  testing_util::ExpectMatchesDirect(lp.problem, lp.constraints, direct,
                                    "direct");
}

}  // namespace
}  // namespace lplow

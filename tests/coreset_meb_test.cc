#include "src/solvers/coreset_meb.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

TEST(CoresetMebTest, EmptyAndSingle) {
  CoresetMebSolver solver;
  EXPECT_TRUE(solver.Solve({}).ball.empty());
  auto r = solver.Solve({Vec{5, 6}});
  EXPECT_NEAR(r.ball.radius, 0, 1e-12);
  EXPECT_NEAR(r.ball.center[0], 5, 1e-12);
}

TEST(CoresetMebTest, ContainsEverything) {
  Rng rng(1);
  CoresetMebSolver solver;
  for (int trial = 0; trial < 10; ++trial) {
    size_t d = 2 + rng.UniformIndex(4);
    auto pts = workload::GaussianCloud(2000, d, &rng);
    auto r = solver.Solve(pts);
    for (const auto& p : pts) {
      EXPECT_TRUE(r.ball.Contains(p, 1e-9));  // Exact by construction.
    }
  }
}

TEST(CoresetMebTest, WithinEpsOfExact) {
  Rng rng(2);
  WelzlSolver exact;
  for (double eps : {0.1, 0.03, 0.01}) {
    CoresetMebSolver::Config cfg;
    cfg.eps = eps;
    CoresetMebSolver approx(cfg);
    auto pts = workload::SphereCloud(3000, 3, 10.0, 0.3, &rng);
    Ball truth = exact.Solve(pts);
    auto r = approx.Solve(pts);
    EXPECT_LE(r.ball.radius, truth.radius * (1 + eps) + 1e-9)
        << "eps=" << eps;
    EXPECT_GE(r.ball.radius, truth.radius - 1e-9);
  }
}

TEST(CoresetMebTest, CoresetSizeIsEpsBounded) {
  Rng rng(3);
  CoresetMebSolver::Config cfg;
  cfg.eps = 0.1;
  CoresetMebSolver solver(cfg);
  auto pts = workload::GaussianCloud(50000, 3, &rng);
  auto r = solver.Solve(pts);
  // 2/eps^2 + startup: independent of n.
  EXPECT_LE(r.coreset.size(), 2.0 / (0.1 * 0.1) + 4);
}

TEST(CoresetMebTest, CoresetExactMebApproximatesFull) {
  // The core-set property: the exact MEB of the core-set, inflated by
  // (1+eps), covers the whole input.
  Rng rng(4);
  CoresetMebSolver::Config cfg;
  cfg.eps = 0.05;
  CoresetMebSolver solver(cfg);
  WelzlSolver exact;
  auto pts = workload::SphereCloud(5000, 3, 20.0, 0.2, &rng);
  auto r = solver.Solve(pts);
  Ball core_ball = exact.Solve(r.coreset);
  Ball inflated = core_ball;
  inflated.radius *= 1.0 + cfg.eps;
  size_t outside = 0;
  for (const auto& p : pts) {
    if (!inflated.Contains(p, 1e-9)) ++outside;
  }
  EXPECT_EQ(outside, 0u);
}

TEST(CoresetMebTest, TightenedIterationCapStillContains) {
  // Failure injection: a tiny iteration budget still yields a valid
  // (if loose) enclosing ball, because the radius is computed exactly.
  Rng rng(5);
  CoresetMebSolver::Config cfg;
  cfg.eps = 0.5;
  cfg.max_iterations = 2;
  CoresetMebSolver solver(cfg);
  auto pts = workload::GaussianCloud(1000, 2, &rng);
  auto r = solver.Solve(pts);
  for (const auto& p : pts) EXPECT_TRUE(r.ball.Contains(p, 1e-9));
}

}  // namespace
}  // namespace lplow

#include <gtest/gtest.h>

#include "src/geometry/halfspace.h"
#include "src/geometry/linear_solve.h"
#include "src/geometry/vec.h"
#include "src/util/rng.h"

namespace lplow {
namespace {

TEST(VecTest, Arithmetic) {
  Vec a{1, 2, 3};
  Vec b{4, 5, 6};
  EXPECT_EQ((a + b)[0], 5);
  EXPECT_EQ((b - a)[2], 3);
  EXPECT_EQ((a * 2.0)[1], 4);
  EXPECT_EQ((2.0 * a)[1], 4);
  EXPECT_EQ(a.Dot(b), 32);
}

TEST(VecTest, Norms) {
  Vec a{3, 4};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(a.InfNorm(), 4.0);
  EXPECT_DOUBLE_EQ((Vec{-7, 2}).InfNorm(), 7.0);
}

TEST(VecTest, LexCompare) {
  Vec a{1, 2};
  Vec b{1, 3};
  EXPECT_EQ(a.LexCompare(b, 1e-9), -1);
  EXPECT_EQ(b.LexCompare(a, 1e-9), 1);
  EXPECT_EQ(a.LexCompare(a, 1e-9), 0);
  // Tolerance makes near-equal coordinates tie.
  Vec c{1.0 + 1e-12, 2};
  EXPECT_EQ(a.LexCompare(c, 1e-9), 0);
}

TEST(VecTest, ApproxEquals) {
  Vec a{1, 2};
  EXPECT_TRUE(a.ApproxEquals(Vec{1 + 1e-10, 2 - 1e-10}, 1e-9));
  EXPECT_FALSE(a.ApproxEquals(Vec{1.1, 2}, 1e-9));
  EXPECT_FALSE(a.ApproxEquals(Vec{1, 2, 3}, 1e-9));
}

TEST(LinearSolveTest, Identity) {
  Mat a(2, 2);
  a.At(0, 0) = 1;
  a.At(1, 1) = 1;
  auto x = SolveLinearSystem(a, Vec{3, 4});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3, 1e-12);
  EXPECT_NEAR((*x)[1], 4, 1e-12);
}

TEST(LinearSolveTest, KnownSystem) {
  // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
  Mat a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = -1;
  auto x = SolveLinearSystem(a, Vec{5, 1});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2, 1e-12);
  EXPECT_NEAR((*x)[1], 1, 1e-12);
}

TEST(LinearSolveTest, RequiresPivoting) {
  // Zero on the diagonal: needs row swap.
  Mat a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  auto x = SolveLinearSystem(a, Vec{7, 9});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 9, 1e-12);
  EXPECT_NEAR((*x)[1], 7, 1e-12);
}

TEST(LinearSolveTest, SingularFails) {
  Mat a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  auto x = SolveLinearSystem(a, Vec{1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(LinearSolveTest, RandomizedResidualProperty) {
  Rng rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = 1 + rng.UniformIndex(8);
    Mat a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a.At(i, j) = rng.UniformDouble(-10, 10);
      a.At(i, i) += 20;  // Diagonal dominance: well-conditioned.
    }
    Vec b(n);
    for (size_t i = 0; i < n; ++i) b[i] = rng.UniformDouble(-10, 10);
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    Vec residual = a.Apply(*x) - b;
    EXPECT_LT(residual.InfNorm(), 1e-9);
  }
}

TEST(LinearSolveTest, MatrixRank) {
  Mat a(3, 3);
  a.At(0, 0) = 1;
  a.At(1, 1) = 1;
  EXPECT_EQ(MatrixRank(a), 2u);
  a.At(2, 2) = 1;
  EXPECT_EQ(MatrixRank(a), 3u);
  Mat zero(4, 4);
  EXPECT_EQ(MatrixRank(zero), 0u);
}

TEST(LinearSolveTest, LeastSquaresExactOnConsistentSystem) {
  // Overdetermined but consistent: y = 2x over three samples.
  Mat a(3, 1);
  a.At(0, 0) = 1;
  a.At(1, 0) = 2;
  a.At(2, 0) = 3;
  auto x = SolveLeastSquares(a, Vec{2, 4, 6});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
}

TEST(HalfspaceTest, SlackAndContains) {
  Halfspace h(Vec{1, 1}, 2);  // x + y <= 2.
  EXPECT_DOUBLE_EQ(h.Slack(Vec{1, 0}), 1.0);
  EXPECT_TRUE(h.Contains(Vec{1, 1}, 1e-9));
  EXPECT_FALSE(h.Contains(Vec{2, 1}, 1e-9));
  // Tolerance admits slight violations.
  EXPECT_TRUE(h.Contains(Vec{1.0, 1.0 + 1e-10}, 1e-9));
}

TEST(HalfspaceTest, SerializationRoundTrip) {
  Halfspace h(Vec{1.5, -2.25, 3.125}, -7.75);
  BitWriter w;
  h.Serialize(&w);
  EXPECT_EQ(w.size_bytes(), h.SerializedBytes());
  BitReader r(w.buffer());
  auto h2 = Halfspace::Deserialize(&r);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h2->dim(), 3u);
  EXPECT_EQ(h2->a[1], -2.25);
  EXPECT_EQ(h2->b, -7.75);
}

TEST(HalfspaceTest, DeserializeTruncatedFails) {
  Halfspace h(Vec{1, 2}, 3);
  BitWriter w;
  h.Serialize(&w);
  auto buf = w.buffer();
  buf.resize(buf.size() - 4);
  BitReader r(buf);
  EXPECT_FALSE(Halfspace::Deserialize(&r).ok());
}

}  // namespace
}  // namespace lplow

#include <gtest/gtest.h>

#include "src/baselines/chan_chen_2d.h"
#include "src/baselines/clarkson_classic.h"
#include "src/baselines/ship_all.h"
#include "src/baselines/tree_merge.h"
#include "src/core/clarkson.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

TEST(ClassicClarksonTest, CorrectButMoreIterationsThanPaper) {
  Rng rng(1);
  auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
  LinearProgram problem(inst.objective);
  size_t nu = problem.CombinatorialDimension();

  ClarksonStats classic_stats;
  auto classic_opt =
      baselines::ClassicClarksonOptions(nu, inst.constraints.size(), 1);
  auto classic = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), classic_opt,
      &classic_stats);
  ASSERT_TRUE(classic.ok());

  ClarksonOptions paper_opt;
  paper_opt.r = 3;
  ClarksonStats paper_stats;
  auto paper = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), paper_opt,
      &paper_stats);
  ASSERT_TRUE(paper.ok());

  EXPECT_EQ(problem.CompareValues(classic->value, paper->value), 0);
  // The headline comparison (E13): classic doubling needs more iterations
  // than the paper's n^{1/r} rate.
  EXPECT_GT(classic_stats.iterations, paper_stats.iterations);
}

TEST(ChanChen2dTest, SolvesParabolaEnvelope) {
  Rng rng(2);
  auto lines = workload::RandomEnvelopeLines(5000, &rng);
  stream::VectorStream<baselines::Line2d> s(lines);
  baselines::ChanChen2dStats stats;
  auto result = baselines::SolveChanChen2d(s, {}, &stats);
  ASSERT_TRUE(result.ok());
  // Envelope of tangents to y = x^2/2 has minimum at the extreme tangent
  // crossing; verify against exhaustive evaluation.
  double best = 1e300;
  for (double x = -60; x <= 60; x += 0.001) {
    double env = -1e300;
    for (const auto& l : lines) env = std::max(env, l.ValueAt(x));
    best = std::min(best, env);
  }
  EXPECT_NEAR(result->y, best, 1e-3 * std::max(1.0, std::fabs(best)));
  EXPECT_TRUE(stats.converged);
}

TEST(ChanChen2dTest, PassSpaceTradeoff) {
  Rng rng(3);
  auto lines = workload::RandomEnvelopeLines(20000, &rng);
  baselines::ChanChen2dStats wide, narrow;
  {
    stream::VectorStream<baselines::Line2d> s(lines);
    baselines::ChanChen2dOptions opt;
    opt.probes = 256;
    ASSERT_TRUE(baselines::SolveChanChen2d(s, opt, &wide).ok());
  }
  {
    stream::VectorStream<baselines::Line2d> s(lines);
    baselines::ChanChen2dOptions opt;
    opt.probes = 4;
    ASSERT_TRUE(baselines::SolveChanChen2d(s, opt, &narrow).ok());
  }
  EXPECT_LE(wide.passes, narrow.passes)
      << "more probes (space) must not need more passes";
  EXPECT_GT(narrow.passes, 2u);
}

TEST(ChanChen2dTest, UnboundedDetected) {
  std::vector<baselines::Line2d> lines = {{1.0, 0.0}, {2.0, 1.0}};
  stream::VectorStream<baselines::Line2d> s(lines);
  auto result = baselines::SolveChanChen2d(s, {}, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnbounded);
}

TEST(ShipAllTest, ExactWithFullCommunication) {
  Rng rng(4);
  auto inst = workload::RandomFeasibleLp(1000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 4, true, &rng);
  baselines::ShipAllStats stats;
  auto result = baselines::ShipAll(problem, parts, &stats);
  auto direct = problem.SolveValue(
      std::span<const Halfspace>(inst.constraints));
  EXPECT_EQ(problem.CompareValues(result.value, direct), 0);
  EXPECT_EQ(stats.rounds, 1u);
  size_t expected_bytes = 0;
  for (const auto& c : inst.constraints) {
    expected_bytes += problem.ConstraintBytes(c);
  }
  EXPECT_EQ(stats.total_bytes, expected_bytes);
}

TEST(TreeMergeTest, OnceIsCheapButCanBeWrong) {
  // Measure the one-shot merge error rate over random partitions: it is a
  // heuristic, and the test asserts only that it never reports a value
  // ABOVE the true optimum (bases only under-constrain).
  Rng rng(5);
  size_t wrong = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto inst = workload::RandomFeasibleLp(400, 2, &rng);
    LinearProgram problem(inst.objective);
    auto parts = workload::Partition(inst.constraints, 8, true, &rng);
    baselines::TreeMergeStats stats;
    auto merged = baselines::TreeMergeOnce(problem, parts, &stats);
    auto direct = problem.SolveValue(
        std::span<const Halfspace>(inst.constraints));
    int cmp = problem.CompareValues(merged.value, direct);
    EXPECT_LE(cmp, 0) << "merge of bases can never overshoot f(S)";
    if (cmp != 0) ++wrong;
  }
  // Not asserting wrong == 0: the point of E6 is that it CAN be nonzero.
  SUCCEED() << "one-shot merge wrong on " << wrong << "/20 instances";
}

TEST(TreeMergeTest, IteratedIsExact) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    auto inst = workload::RandomFeasibleLp(600, 3, &rng);
    LinearProgram problem(inst.objective);
    auto parts = workload::Partition(inst.constraints, 6, true, &rng);
    baselines::TreeMergeStats stats;
    auto result = baselines::IteratedTreeMerge(problem, parts, &stats);
    ASSERT_TRUE(result.ok());
    auto direct = problem.SolveValue(
        std::span<const Halfspace>(inst.constraints));
    EXPECT_EQ(problem.CompareValues(result->value, direct), 0);
    EXPECT_GE(stats.rounds, 1u);
  }
}

TEST(TreeMergeTest, IteratedCommunicationBelowShipAll) {
  Rng rng(7);
  auto inst = workload::RandomFeasibleLp(5000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 8, true, &rng);
  baselines::TreeMergeStats merge_stats;
  ASSERT_TRUE(
      baselines::IteratedTreeMerge(problem, parts, &merge_stats).ok());
  baselines::ShipAllStats ship_stats;
  baselines::ShipAll(problem, parts, &ship_stats);
  EXPECT_LT(merge_stats.total_bytes, ship_stats.total_bytes);
}

}  // namespace
}  // namespace lplow

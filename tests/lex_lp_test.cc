#include "src/solvers/lex_lp.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

TEST(LexLpTest, BreaksTiesLexicographically) {
  // min 0 (constant objective): every feasible point optimal; lex-min picks
  // the smallest x_0, then smallest x_1.
  SolverConfig cfg;
  cfg.box_bound = 10;
  LexLpSolver solver(cfg);
  std::vector<Halfspace> cs = {Halfspace(Vec{-1, 0}, 2),   // x >= -2.
                               Halfspace(Vec{0, -1}, 5)};  // y >= -5.
  LpSolution s = solver.Solve(cs, Vec{0, 0});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.point[0], -2, 1e-5);
  EXPECT_NEAR(s.point[1], -5, 1e-5);
}

TEST(LexLpTest, DegenerateObjectiveEdge) {
  // min y over a square: the whole bottom edge is optimal; lex picks its
  // left endpoint.
  SolverConfig cfg;
  cfg.box_bound = 100;
  LexLpSolver solver(cfg);
  std::vector<Halfspace> cs = {
      Halfspace(Vec{1, 0}, 3), Halfspace(Vec{-1, 0}, 1),   // -1 <= x <= 3.
      Halfspace(Vec{0, 1}, 2), Halfspace(Vec{0, -1}, 1)};  // -1 <= y <= 2.
  LpSolution s = solver.Solve(cs, Vec{0, 1});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.point[1], -1, 1e-5);  // min y.
  EXPECT_NEAR(s.point[0], -1, 1e-5);  // lex tie-break.
}

TEST(LexLpTest, MatchesSeidelObjective) {
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    size_t d = 2 + rng.UniformIndex(3);
    auto inst = workload::RandomFeasibleLp(60, d, &rng);
    LexLpSolver lex;
    SeidelSolver plain;
    LpSolution a = lex.Solve(inst.constraints, inst.objective);
    LpSolution b = plain.Solve(inst.constraints, inst.objective);
    ASSERT_TRUE(a.optimal());
    ASSERT_TRUE(b.optimal());
    EXPECT_NEAR(a.objective, b.objective,
                1e-5 * std::max(1.0, std::fabs(b.objective)));
  }
}

TEST(LexLpTest, InfeasiblePassesThrough) {
  LexLpSolver solver;
  LpSolution s = solver.Solve(
      {Halfspace(Vec{1, 0}, -5), Halfspace(Vec{-1, 0}, -5)}, Vec{1, 0});
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(LexLpTest, TouchesBoxDetectsUnbounded) {
  SolverConfig cfg;
  cfg.box_bound = 1000;
  LexLpSolver solver(cfg);
  // min x with no constraints: optimum pinned at the box.
  LpSolution s = solver.Solve({}, Vec{1, 0});
  ASSERT_TRUE(s.optimal());
  EXPECT_TRUE(solver.TouchesBox(s));
  // A genuinely bounded program does not touch the box.
  LpSolution t = solver.Solve({Halfspace(Vec{-1, 0}, 2),
                               Halfspace(Vec{0, -1}, 2),
                               Halfspace(Vec{1, 0}, 2),
                               Halfspace(Vec{0, 1}, 2)},
                              Vec{1, 1});
  ASSERT_TRUE(t.optimal());
  EXPECT_FALSE(solver.TouchesBox(t));
}

TEST(LexLpTest, LexUniquenessAcrossEquivalentOrderings) {
  // The lex optimum must not depend on constraint order.
  Rng rng(67);
  auto inst = workload::RandomFeasibleLp(30, 3, &rng);
  LexLpSolver solver;
  LpSolution ref = solver.Solve(inst.constraints, inst.objective);
  ASSERT_TRUE(ref.optimal());
  for (int trial = 0; trial < 5; ++trial) {
    auto shuffled = inst.constraints;
    rng.Shuffle(&shuffled);
    LpSolution s = solver.Solve(shuffled, inst.objective);
    ASSERT_TRUE(s.optimal());
    EXPECT_TRUE(s.point.ApproxEquals(ref.point, 1e-4))
        << s.point.ToString() << " vs " << ref.point.ToString();
  }
}

}  // namespace
}  // namespace lplow

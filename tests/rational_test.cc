#include "src/numeric/rational.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace lplow {
namespace {

TEST(RationalTest, NormalizationLowestTerms) {
  Rational r = Rational::Make(6, 8);
  EXPECT_EQ(r.num().ToInt64(), 3);
  EXPECT_EQ(r.den().ToInt64(), 4);
}

TEST(RationalTest, NormalizationSign) {
  Rational r = Rational::Make(3, -6);
  EXPECT_EQ(r.num().ToInt64(), -1);
  EXPECT_EQ(r.den().ToInt64(), 2);
  EXPECT_EQ(r.sign(), -1);
}

TEST(RationalTest, ZeroNormalizesDenominator) {
  Rational r = Rational::Make(0, -7);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.den().ToInt64(), 1);
}

TEST(RationalTest, ArithmeticKnownValues) {
  Rational a = Rational::Make(1, 3);
  Rational b = Rational::Make(1, 6);
  EXPECT_EQ((a + b).ToString(), "1/2");
  EXPECT_EQ((a - b).ToString(), "1/6");
  EXPECT_EQ((a * b).ToString(), "1/18");
  EXPECT_EQ((a / b).ToString(), "2");
}

TEST(RationalTest, ArithmeticAgainstDoubles) {
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    int64_t p1 = rng.UniformInt(-100, 100), q1 = rng.UniformInt(1, 50);
    int64_t p2 = rng.UniformInt(-100, 100), q2 = rng.UniformInt(1, 50);
    Rational a = Rational::Make(p1, q1), b = Rational::Make(p2, q2);
    double da = static_cast<double>(p1) / q1, db = static_cast<double>(p2) / q2;
    EXPECT_NEAR((a + b).ToDouble(), da + db, 1e-12);
    EXPECT_NEAR((a - b).ToDouble(), da - db, 1e-12);
    EXPECT_NEAR((a * b).ToDouble(), da * db, 1e-12);
    if (p2 != 0) {
      EXPECT_NEAR((a / b).ToDouble(), da / db, 1e-9);
    }
  }
}

TEST(RationalTest, ComparisonTotalOrder) {
  Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    int64_t p1 = rng.UniformInt(-50, 50), q1 = rng.UniformInt(1, 30);
    int64_t p2 = rng.UniformInt(-50, 50), q2 = rng.UniformInt(1, 30);
    Rational a = Rational::Make(p1, q1), b = Rational::Make(p2, q2);
    double da = static_cast<double>(p1) / q1, db = static_cast<double>(p2) / q2;
    if (da < db - 1e-9) {
      EXPECT_LT(a, b);
    }
    if (da > db + 1e-9) {
      EXPECT_GT(a, b);
    }
  }
  EXPECT_EQ(Rational::Make(2, 4), Rational::Make(1, 2));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational::Make(7, 2).Floor().ToInt64(), 3);
  EXPECT_EQ(Rational::Make(7, 2).Ceil().ToInt64(), 4);
  EXPECT_EQ(Rational::Make(-7, 2).Floor().ToInt64(), -4);
  EXPECT_EQ(Rational::Make(-7, 2).Ceil().ToInt64(), -3);
  EXPECT_EQ(Rational(5).Floor().ToInt64(), 5);
  EXPECT_EQ(Rational(5).Ceil().ToInt64(), 5);
  EXPECT_EQ(Rational(-5).Floor().ToInt64(), -5);
  EXPECT_EQ(Rational(0).Floor().ToInt64(), 0);
}

TEST(RationalTest, FloorCeilProperty) {
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    int64_t p = rng.UniformInt(-10000, 10000);
    int64_t q = rng.UniformInt(1, 100);
    Rational r = Rational::Make(p, q);
    BigInt fl = r.Floor();
    BigInt ce = r.Ceil();
    EXPECT_LE(Rational(fl), r);
    EXPECT_LT(r - Rational(fl), Rational(1));
    EXPECT_GE(Rational(ce), r);
    EXPECT_LT(Rational(ce) - r, Rational(1));
  }
}

TEST(RationalTest, UnaryNegation) {
  Rational r = Rational::Make(3, 7);
  EXPECT_EQ((-r).ToString(), "-3/7");
  EXPECT_TRUE((r + -r).is_zero());
}

TEST(RationalTest, CompoundAssignment) {
  Rational r = Rational::Make(1, 2);
  r += Rational::Make(1, 3);
  r -= Rational::Make(1, 6);
  r *= Rational(3);
  r /= Rational(2);
  EXPECT_EQ(r.ToString(), "1");
}

TEST(RationalTest, HugeValuesStayExact) {
  // (10^30 + 1) / 10^30 stays distinguishable from 1.
  BigInt p = BigInt::FromString("1000000000000000000000000000001");
  BigInt q = BigInt::FromString("1000000000000000000000000000000");
  Rational r(p, q);
  EXPECT_GT(r, Rational(1));
  EXPECT_LT(r, Rational::Make(2, 1));
  EXPECT_EQ((r - Rational(1)).ToString(),
            "1/1000000000000000000000000000000");
}

TEST(RationalTest, IsIntegerAndToString) {
  EXPECT_TRUE(Rational::Make(10, 5).is_integer());
  EXPECT_EQ(Rational::Make(10, 5).ToString(), "2");
  EXPECT_FALSE(Rational::Make(10, 4).is_integer());
}

TEST(RationalTest, BitLengthGrowsWithComplexity) {
  Rational small = Rational::Make(1, 2);
  Rational big(BigInt::FromString("123456789123456789"),
               BigInt::FromString("987654321987654323"));
  EXPECT_LT(small.BitLength(), big.BitLength());
}

}  // namespace
}  // namespace lplow

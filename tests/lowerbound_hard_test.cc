// Executable versions of Propositions 5.7-5.10 and Observations 5.11-5.12
// for the (gauge-corrected) hard distributions D_r.

#include "src/lowerbound/hard_instance.h"

#include <gtest/gtest.h>

#include "src/lowerbound/curves.h"
#include "src/util/rng.h"

namespace lplow {
namespace lb {
namespace {

struct HardParam {
  size_t base_n;
  int rounds;
  uint64_t seed;
};

class HardInstanceSweep : public ::testing::TestWithParam<HardParam> {};

// Propositions 5.7 / 5.9: stitched instances satisfy the TCI promise.
// Propositions 5.8 / 5.10: the answer equals the embedded block's answer.
TEST_P(HardInstanceSweep, ValidWithEmbeddedAnswer) {
  const auto& p = GetParam();
  HardInstanceOptions opt;
  opt.base_n = p.base_n;
  opt.rounds = p.rounds;
  Rng rng(p.seed);
  HardInstance h = BuildHardInstance(opt, &rng);

  EXPECT_EQ(h.tci.n(), static_cast<size_t>(
                           std::pow(static_cast<double>(p.base_n), p.rounds)));
  Status st = ValidateTci(h.tci);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto ans = TciAnswer(h.tci);
  ASSERT_TRUE(ans.has_value());
  EXPECT_EQ(*ans, h.expected_answer);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HardInstanceSweep,
    ::testing::Values(HardParam{3, 1, 1}, HardParam{3, 2, 2},
                      HardParam{3, 3, 3}, HardParam{4, 1, 4},
                      HardParam{4, 2, 5}, HardParam{4, 3, 6},
                      HardParam{6, 2, 7}, HardParam{6, 3, 8},
                      HardParam{8, 2, 9}, HardParam{5, 4, 10},
                      HardParam{3, 4, 11}, HardParam{10, 2, 12}));

TEST(HardInstanceTest, AnswerLandsInsideSpecialBlock) {
  HardInstanceOptions opt;
  opt.base_n = 5;
  opt.rounds = 3;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    HardInstance h = BuildHardInstance(opt, &rng);
    ASSERT_EQ(h.zstar_chain.size(), 1u);
    size_t zstar = h.zstar_chain[0];
    size_t block = 25;  // n_{r-1} = 5^2.
    size_t lo = (zstar - 1) * block + 1;
    size_t hi = zstar * block;
    EXPECT_GE(h.expected_answer, lo);
    EXPECT_LE(h.expected_answer, hi)
        << "Propositions 5.8/5.10: answer inside block z*";
  }
}

TEST(HardInstanceTest, AnswerDistributionSpreadsAcrossBlocks) {
  // z* is uniform; over many samples the answer must land in different
  // blocks (sanity for the information-theoretic argument).
  HardInstanceOptions opt;
  opt.base_n = 4;
  opt.rounds = 2;
  std::set<size_t> blocks_hit;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 7 + 1);
    HardInstance h = BuildHardInstance(opt, &rng);
    blocks_hit.insert((h.expected_answer - 1) / 4);
  }
  EXPECT_GE(blocks_hit.size(), 3u);
}

TEST(HardInstanceTest, CoordinateMagnitudeGrowsWithRounds) {
  // The construction's slopes grow like N^{O(r)} (the paper's bit-complexity
  // remark); deeper recursions must produce larger coordinates.
  auto max_bits = [](const HardInstance& h) {
    size_t bits = 0;
    for (const auto& v : h.tci.a) bits = std::max(bits, v.BitLength());
    for (const auto& v : h.tci.b) bits = std::max(bits, v.BitLength());
    return bits;
  };
  HardInstanceOptions o1;
  o1.base_n = 4;
  o1.rounds = 1;
  HardInstanceOptions o3 = o1;
  o3.rounds = 3;
  Rng r1(5), r3(5);
  size_t bits1 = max_bits(BuildHardInstance(o1, &r1));
  size_t bits3 = max_bits(BuildHardInstance(o3, &r3));
  EXPECT_GT(bits3, bits1);
}

TEST(HardInstanceTest, BobsCurveAlwaysSteeplyDecreasing) {
  // The K-dominance invariant: every slope of B is negative everywhere.
  HardInstanceOptions opt;
  opt.base_n = 4;
  opt.rounds = 3;
  Rng rng(9);
  HardInstance h = BuildHardInstance(opt, &rng);
  auto slopes = Slopes(h.tci.b);
  for (const auto& s : slopes) EXPECT_LT(s, Rational(0));
}

TEST(HardInstanceTest, AlicesCurveAlwaysIncreasing) {
  HardInstanceOptions opt;
  opt.base_n = 4;
  opt.rounds = 3;
  Rng rng(11);
  HardInstance h = BuildHardInstance(opt, &rng);
  auto slopes = Slopes(h.tci.a);
  for (const auto& s : slopes) EXPECT_GT(s, Rational(0));
}

TEST(HardInstanceTest, DeterministicGivenSeed) {
  HardInstanceOptions opt;
  opt.base_n = 4;
  opt.rounds = 2;
  Rng r1(77), r2(77);
  HardInstance h1 = BuildHardInstance(opt, &r1);
  HardInstance h2 = BuildHardInstance(opt, &r2);
  EXPECT_EQ(h1.expected_answer, h2.expected_answer);
  EXPECT_EQ(h1.tci.a[3], h2.tci.a[3]);
}

TEST(HardInstanceTest, RejectsTooSmallBase) {
  HardInstanceOptions opt;
  opt.base_n = 3;
  opt.rounds = 1;
  Rng rng(1);
  // base_n = 3 is the smallest legal value; just confirm it works.
  HardInstance h = BuildHardInstance(opt, &rng);
  EXPECT_EQ(h.tci.n(), 3u);
  EXPECT_TRUE(ValidateTci(h.tci).ok());
}

}  // namespace
}  // namespace lb
}  // namespace lplow

// Tests of the sequential Clarkson meta-algorithm (Algorithm 1).

#include "src/core/clarkson.h"

#include <gtest/gtest.h>

#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using testing_util::ExpectMatchesDirect;

TEST(ClarksonTest, MatchesDirectSolveLp) {
  Rng rng(1);
  auto inst = workload::RandomFeasibleLp(3000, 3, &rng);
  LinearProgram problem(inst.objective);
  ClarksonOptions opt;
  opt.r = 2;
  opt.net.scale = 0.1;  // Leave the direct-solve regime at this n.
  ClarksonStats stats;
  auto result = ClarksonSolve(problem,
                              std::span<const Halfspace>(inst.constraints),
                              opt, &stats);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "clarkson");
  EXPECT_FALSE(stats.direct_solve);
  EXPECT_GE(stats.iterations, 1u);
}

TEST(ClarksonTest, SmallInputDirectSolve) {
  Rng rng(2);
  auto inst = workload::RandomFeasibleLp(10, 2, &rng);
  LinearProgram problem(inst.objective);
  ClarksonStats stats;
  auto result = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.direct_solve);
}

TEST(ClarksonTest, IterationsWithinLemma33Bound) {
  // Lemma 3.3: O(nu r) iterations w.h.p. — check a slack multiple. The
  // honest sample constant needs n >> (270)^{r/(r-1)} to leave the
  // direct-solve regime, hence the large n.
  Rng rng(3);
  auto inst = workload::RandomFeasibleLp(200000, 2, &rng);
  LinearProgram problem(inst.objective);
  size_t nu = problem.CombinatorialDimension();
  for (int r : {2, 3}) {
    ClarksonOptions opt;
    opt.r = r;
    opt.seed = 1000 + r;
    ClarksonStats stats;
    auto result = ClarksonSolve(
        problem, std::span<const Halfspace>(inst.constraints), opt, &stats);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(stats.direct_solve) << "r=" << r;
    EXPECT_LE(stats.iterations, (20 * nu * static_cast<size_t>(r)) / 9 + 8)
        << "r=" << r;
  }
}

TEST(ClarksonTest, MostIterationsSuccessful) {
  // Claim 3.2: each iteration succeeds w.p. >= 2/3; require an empirical
  // majority over the run.
  Rng rng(4);
  auto inst = workload::RandomFeasibleLp(200000, 2, &rng);
  LinearProgram problem(inst.objective);
  ClarksonOptions opt;
  opt.r = 3;
  ClarksonStats stats;
  auto result = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), opt, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(stats.direct_solve);
  if (stats.iterations >= 2) {
    EXPECT_GE(2 * stats.successful_iterations + 1, stats.iterations);
  }
}

TEST(ClarksonTest, TinySampleStillCorrectLasVegas) {
  // Failure injection: absurdly small eps-net. Las Vegas correctness must
  // survive (possibly via more iterations).
  Rng rng(5);
  auto inst = workload::RandomFeasibleLp(2000, 2, &rng);
  LinearProgram problem(inst.objective);
  ClarksonOptions opt;
  opt.sample_size_override = 8;
  opt.max_iterations = 500;
  ClarksonStats stats;
  auto result = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), opt, &stats);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "clarkson");
}

TEST(ClarksonTest, MonteCarloCanFail) {
  // Remark 3.6: with a sample too small to be an eps-net, the Monte Carlo
  // variant reports SamplingFailed instead of looping.
  Rng rng(6);
  auto inst = workload::RandomFeasibleLp(2000, 3, &rng);
  LinearProgram problem(inst.objective);
  ClarksonOptions opt;
  opt.sample_size_override = 5;
  opt.monte_carlo = true;
  opt.max_iterations = 50;
  auto result = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), opt, nullptr);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kSamplingFailed);
  }
}

TEST(ClarksonTest, InfeasibleLpDetected) {
  Rng rng(7);
  auto inst = workload::RandomInfeasibleLp(2000, 2, &rng);
  LinearProgram problem(inst.objective);
  ClarksonOptions opt;
  opt.r = 2;
  auto result = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), opt, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->value.feasible);
}

TEST(ClarksonTest, WorksForSvm) {
  Rng rng(8);
  auto pts = workload::SeparableSvmData(2000, 2, 0.5, &rng);
  LinearSvm problem(2);
  ClarksonOptions opt;
  opt.r = 2;
  ClarksonStats stats;
  auto result =
      ClarksonSolve(problem, std::span<const SvmPoint>(pts), opt, &stats);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, pts, result->value,
                      "clarkson");
}

TEST(ClarksonTest, WorksForMeb) {
  Rng rng(9);
  auto pts = workload::GaussianCloud(5000, 3, &rng);
  MinEnclosingBall problem(3);
  ClarksonOptions opt;
  opt.r = 2;
  auto result =
      ClarksonSolve(problem, std::span<const Vec>(pts), opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, pts, result->value,
                      "clarkson");
}

TEST(ClarksonTest, ClassicRateOverrideStillCorrect) {
  Rng rng(10);
  auto inst = workload::RandomFeasibleLp(3000, 2, &rng);
  LinearProgram problem(inst.objective);
  ClarksonOptions opt;
  opt.weight_rate_override = 2.0;
  opt.eps_override = 1.0 / 9.0;  // 1/(3 nu) for nu = 3.
  opt.sample_size_override = 6 * 9;
  opt.max_iterations = 2000;
  auto result = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "clarkson");
}

TEST(ClarksonTest, HigherRNeedsMoreIterationsButLessSpace) {
  Rng rng(11);
  auto inst = workload::RandomFeasibleLp(40000, 2, &rng);
  LinearProgram problem(inst.objective);
  ClarksonStats s2, s4;
  ClarksonOptions o2;
  o2.r = 2;
  o2.net.scale = 0.2;
  ClarksonOptions o4;
  o4.r = 4;
  o4.net.scale = 0.2;
  ASSERT_TRUE(ClarksonSolve(problem,
                            std::span<const Halfspace>(inst.constraints), o2,
                            &s2)
                  .ok());
  ASSERT_TRUE(ClarksonSolve(problem,
                            std::span<const Halfspace>(inst.constraints), o4,
                            &s4)
                  .ok());
  // Sample (space) shrinks dramatically with r; this is Result 1's trade.
  ASSERT_FALSE(s2.direct_solve);
  ASSERT_FALSE(s4.direct_solve);
  EXPECT_GT(s2.sample_size, 4 * s4.sample_size);
}

class ClarksonAgreementSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ClarksonAgreementSweep, LpAgreesAcrossR) {
  auto [r, seed] = GetParam();
  Rng rng(seed);
  auto inst = workload::RandomFeasibleLp(4000, 2, &rng);
  LinearProgram problem(inst.objective);
  ClarksonOptions opt;
  opt.r = r;
  opt.seed = seed * 31;
  auto result = ClarksonSolve(
      problem, std::span<const Halfspace>(inst.constraints), opt, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesDirect(problem, inst.constraints, result->value,
                      "clarkson");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClarksonAgreementSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(31, 32, 33)));

}  // namespace
}  // namespace lplow

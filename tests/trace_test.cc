// TraceRecorder / TraceSpan (label `quick`): the observability acceptance
// pins. (1) Determinism: the multiset of span name-paths a traced
// coordinator solve records is identical across {1,2,8} runtime threads x
// {1,2,4} service shards — tracing observes the transcript, it never
// depends on scheduling. (2) Cost: a null or disabled recorder allocates
// NOTHING on the span hot path (global operator new is instrumented in this
// TU). (3) Export: the Chrome trace_event JSON parses with a real JSON
// grammar, starts ts-monotonic, and MergeChromeTraces splices documents
// Perfetto-loadably. (4) The async RecordComplete form and ContextScope
// parent spans correctly across threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/metrics.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/runtime/trace.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

// ------------------------------------------------- allocation instrumenting
//
// Counting passthrough for the WHOLE test binary: when armed, every global
// operator new bumps the counter. The zero-allocation test arms it around
// the disabled-recorder hot path only.

namespace {
std::atomic<size_t> g_new_calls{0};
std::atomic<bool> g_count_news{false};

void* CountingAlloc(std::size_t size) {
  if (g_count_news.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountingAlloc(size); }
void* operator new[](std::size_t size) { return CountingAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lplow {
namespace {

namespace trace = runtime::trace;
using trace::SpanContext;
using trace::TraceRecorder;
using trace::TraceSpan;

// ------------------------------------------------------ tiny JSON grammar

void SkipWs(const std::string& s, size_t* i) {
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
}

bool ParseJsonString(const std::string& s, size_t* i) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  while (*i < s.size() && s[*i] != '"') {
    if (s[*i] == '\\') ++*i;
    ++*i;
  }
  if (*i >= s.size()) return false;
  ++*i;
  return true;
}

bool ParseJsonValue(const std::string& s, size_t* i);

bool ParseJsonSequence(const std::string& s, size_t* i, char close,
                       bool keyed) {
  ++*i;  // Consume the opener.
  SkipWs(s, i);
  if (*i < s.size() && s[*i] == close) {
    ++*i;
    return true;
  }
  for (;;) {
    SkipWs(s, i);
    if (keyed) {
      if (!ParseJsonString(s, i)) return false;
      SkipWs(s, i);
      if (*i >= s.size() || s[*i] != ':') return false;
      ++*i;
    }
    if (!ParseJsonValue(s, i)) return false;
    SkipWs(s, i);
    if (*i < s.size() && s[*i] == ',') {
      ++*i;
      continue;
    }
    if (*i < s.size() && s[*i] == close) {
      ++*i;
      return true;
    }
    return false;
  }
}

bool ParseJsonValue(const std::string& s, size_t* i) {
  SkipWs(s, i);
  if (*i >= s.size()) return false;
  const char c = s[*i];
  if (c == '{') return ParseJsonSequence(s, i, '}', /*keyed=*/true);
  if (c == '[') return ParseJsonSequence(s, i, ']', /*keyed=*/false);
  if (c == '"') return ParseJsonString(s, i);
  if (s.compare(*i, 4, "true") == 0) return *i += 4, true;
  if (s.compare(*i, 5, "false") == 0) return *i += 5, true;
  if (s.compare(*i, 4, "null") == 0) return *i += 4, true;
  const size_t start = *i;
  while (*i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[*i])) || s[*i] == '-' ||
          s[*i] == '+' || s[*i] == '.' || s[*i] == 'e' || s[*i] == 'E')) {
    ++*i;
  }
  return *i > start;
}

bool IsValidJson(const std::string& s) {
  size_t i = 0;
  if (!ParseJsonValue(s, &i)) return false;
  SkipWs(s, &i);
  return i == s.size();
}

// ----------------------------------------------------------- span basics

TEST(TraceSpanTest, NestedSpansParentUnderEachOther) {
  TraceRecorder rec(true);
  SpanContext outer_ctx;
  SpanContext inner_ctx;
  {
    TraceSpan outer(&rec, "outer");
    outer.Arg("job_id", 7);
    outer_ctx = outer.context();
    EXPECT_TRUE(outer_ctx.valid());
    EXPECT_EQ(rec.CurrentContext().span_id, outer_ctx.span_id);
    {
      TraceSpan inner(&rec, "inner");
      inner_ctx = inner.context();
      EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);
      EXPECT_EQ(rec.CurrentContext().span_id, inner_ctx.span_id);
    }
    EXPECT_EQ(rec.CurrentContext().span_id, outer_ctx.span_id);
  }
  EXPECT_FALSE(rec.CurrentContext().valid());

  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  std::map<std::string, TraceRecorder::EventRecord> by_name;
  for (const auto& e : events) by_name[e.name] = e;
  EXPECT_EQ(by_name["inner"].parent_span_id, outer_ctx.span_id);
  EXPECT_EQ(by_name["outer"].parent_span_id, 0u);
  EXPECT_EQ(by_name["outer"].num_args, 1);
  EXPECT_EQ(std::string(by_name["outer"].args[0].key), "job_id");
  EXPECT_EQ(by_name["outer"].args[0].value, 7u);
}

TEST(TraceSpanTest, AsyncRecordCompleteAndCrossThreadContextScope) {
  TraceRecorder rec(true);
  SpanContext root_ctx;
  {
    TraceSpan root(&rec, "root");
    root_ctx = root.context();
    // A worker thread re-installs the submitter's context and nests under
    // it — the ShardedSolverService pattern.
    std::thread worker([&] {
      trace::ContextScope scope(&rec, root_ctx);
      TraceSpan child(&rec, "child");
      EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
    });
    worker.join();
    // The async form: explicit timestamps measured across threads.
    const uint64_t t0 = TraceRecorder::NowMicros();
    SpanContext async_ctx =
        rec.RecordComplete("async", t0, t0 + 5, root_ctx, {{"shard", 3}});
    EXPECT_EQ(async_ctx.trace_id, root_ctx.trace_id);
  }
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  std::map<std::string, TraceRecorder::EventRecord> by_name;
  for (const auto& e : events) by_name[e.name] = e;
  EXPECT_EQ(by_name["child"].parent_span_id, root_ctx.span_id);
  EXPECT_EQ(by_name["child"].trace_id, root_ctx.trace_id);
  EXPECT_EQ(by_name["async"].parent_span_id, root_ctx.span_id);
  EXPECT_EQ(by_name["async"].dur_us, 5u);
  ASSERT_EQ(by_name["async"].num_args, 1);
  EXPECT_EQ(by_name["async"].args[0].value, 3u);
  // The worker recorded under its own registration index.
  EXPECT_NE(by_name["child"].tid, by_name["root"].tid);
}

TEST(TraceSpanTest, ExplicitParentAdoptsTheWireContext) {
  // The daemon-side pattern: the parent arrived inside a v2 frame.
  TraceRecorder rec(true);
  const SpanContext wire_ctx{0xABCD, 0x1234};
  {
    TraceSpan span(&rec, "daemon.request", wire_ctx);
    EXPECT_EQ(span.context().trace_id, wire_ctx.trace_id);
  }
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, wire_ctx.trace_id);
  EXPECT_EQ(events[0].parent_span_id, wire_ctx.span_id);
}

// ------------------------------------------------------- zero allocation

TEST(TraceOverheadTest, DisabledRecorderAllocatesNothingOnTheHotPath) {
  TraceRecorder disabled(/*enabled=*/false);
  TraceRecorder* null_recorder = nullptr;

  g_new_calls.store(0);
  g_count_news.store(true);
  for (uint64_t i = 0; i < 1000; ++i) {
    TraceSpan span(&disabled, "engine.iteration");
    span.Arg("iteration", i);
    TraceSpan inert(null_recorder, "engine.basis_solve");
    inert.Arg("constraints", 99);
    trace::ContextScope scope(&disabled, SpanContext{1, 2});
    (void)disabled.CurrentContext();
    (void)disabled.RecordComplete("service.queue_wait", 0, 1, SpanContext{});
  }
  g_count_news.store(false);

  EXPECT_EQ(g_new_calls.load(), 0u)
      << "the disabled-tracing hot path allocated";
  EXPECT_EQ(disabled.event_count(), 0u);
}

// --------------------------------------------------- cross-config determinism

/// One traced coordinator solve with every basis solve routed through a
/// ShardedSolverService; returns the multiset of span name-paths (each span
/// named by its ancestor chain, e.g. "engine.run/engine.iteration").
std::multiset<std::string> RunTracedSolve(size_t num_threads,
                                          size_t num_shards) {
  TraceRecorder recorder(true);
  runtime::MetricsRegistry registry;
  runtime::ShardedSolverService::Options service_options;
  service_options.num_shards = num_shards;
  service_options.metrics = &registry;
  service_options.trace = &recorder;
  runtime::ShardedSolverService service(service_options);

  Rng rng(0x7EAC0DEULL);
  auto inst = workload::RandomFeasibleLp(2000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 4, true, &rng);

  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 0x7EAC0DEULL;
  opt.runtime.num_threads = num_threads;
  opt.runtime.trace = &recorder;
  opt.runtime.solver_backend = &service;
  opt.runtime.oversized_basis_threshold = 1;  // Route every basis solve.
  auto result = coord::SolveCoordinator(problem, parts, opt, nullptr);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  service.Drain();

  auto events = recorder.Snapshot();
  std::map<uint64_t, const TraceRecorder::EventRecord*> by_id;
  for (const auto& e : events) by_id[e.span_id] = &e;
  std::multiset<std::string> paths;
  for (const auto& e : events) {
    std::string path = e.name;
    uint64_t parent = e.parent_span_id;
    size_t depth = 0;
    while (parent != 0 && by_id.count(parent) != 0 && depth++ < 64) {
      path = std::string(by_id[parent]->name) + "/" + path;
      parent = by_id[parent]->parent_span_id;
    }
    paths.insert(path);
  }
  return paths;
}

TEST(TraceDeterminismTest, SpanTreeIsIdenticalAcrossThreadsAndShards) {
  const auto baseline = RunTracedSolve(1, 1);

  // The taxonomy actually showed up, parented the documented way.
  auto count_prefix = [&](const std::string& needle) {
    size_t n = 0;
    for (const auto& p : baseline) {
      if (p.find(needle) != std::string::npos) ++n;
    }
    return n;
  };
  EXPECT_GT(count_prefix("engine.run"), 0u);
  EXPECT_GT(count_prefix("engine.run/engine.iteration"), 0u);
  EXPECT_GT(count_prefix("engine.iteration/engine.violator_scan"), 0u);
  EXPECT_GT(count_prefix("engine.basis_solve"), 0u);
  EXPECT_GT(count_prefix("engine.basis_solve/service.execute"), 0u);
  EXPECT_EQ(count_prefix("service.queue_wait"),
            count_prefix("service.execute"));

  // The pin: same span tree for every threads x shards configuration.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      EXPECT_EQ(RunTracedSolve(threads, shards), baseline)
          << threads << " threads x " << shards << " shards drifted";
    }
  }
}

// ------------------------------------------------------------------ export

TEST(TraceExportTest, ChromeJsonParsesAndIsMonotonic) {
  TraceRecorder rec(true);
  rec.SetProcessLabel("trace_test");
  {
    TraceSpan a(&rec, "alpha");
    a.Arg("bytes", 123);
    TraceSpan b(&rec, "beta \"quoted\\name\"");  // Exercises escaping.
  }
  std::thread t([&] { TraceSpan c(&rec, "gamma"); });
  t.join();

  const std::string json = rec.ToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process_name.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("trace_test"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":123"), std::string::npos);

  // Snapshot (= exporter order) is sorted by start timestamp.
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  }
  // Distinct threads got distinct registration indices, dense from 0.
  std::set<uint32_t> tids;
  for (const auto& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 2u);
  EXPECT_EQ(*tids.begin(), 0u);
}

TEST(TraceExportTest, MergeChromeTracesSplicesDocuments) {
  TraceRecorder a(true);
  TraceRecorder b(true);
  { TraceSpan s(&a, "alpha"); }
  { TraceSpan s(&b, "beta"); }
  TraceRecorder empty(true);

  std::vector<std::string> docs = {a.ToChromeJson(), std::string(),
                                   empty.ToChromeJson(), b.ToChromeJson()};
  const std::string merged = trace::MergeChromeTraces(docs);
  EXPECT_TRUE(IsValidJson(merged)) << merged;
  EXPECT_NE(merged.find("alpha"), std::string::npos);
  EXPECT_NE(merged.find("beta"), std::string::npos);

  // Degenerate input: nothing to splice still yields a valid document.
  std::vector<std::string> none;
  EXPECT_TRUE(IsValidJson(trace::MergeChromeTraces(none)));
}

TEST(TraceExportTest, ClearDropsEventsButKeepsRegistrations) {
  TraceRecorder rec(true);
  { TraceSpan s(&rec, "one"); }
  EXPECT_EQ(rec.event_count(), 1u);
  rec.Clear();
  EXPECT_EQ(rec.event_count(), 0u);
  { TraceSpan s(&rec, "two"); }
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), "two");
}

}  // namespace
}  // namespace lplow

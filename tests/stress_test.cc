// Wide randomized stress sweeps: many seeds x dimensions x problem kinds,
// cross-checking independent solvers and the model implementations. These
// are the "keep honest over the whole parameter box" tests; each individual
// case is small so the full sweep stays fast.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/clarkson.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/numeric/rational.h"
#include "src/problems/linear_program.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/solvers/simplex.h"
#include "src/solvers/vertex_enum.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, SeidelVsSimplexVsBruteForce) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(3);
  size_t n = 5 + rng.UniformIndex(20);
  auto inst = workload::RandomFeasibleLp(n, d, &rng);
  SolverConfig cfg;
  cfg.box_bound = 1e4;
  SeidelSolver seidel(cfg);
  SimplexSolver simplex(cfg);
  VertexEnumSolver brute(cfg);

  // Sparse instances can be genuinely unbounded; Seidel and the brute-force
  // oracle clamp at the box, so give simplex the same box explicitly.
  std::vector<Halfspace> boxed = inst.constraints;
  auto box = BoxConstraints(d, cfg.box_bound);
  boxed.insert(boxed.end(), box.begin(), box.end());

  LpSolution a = seidel.Solve(inst.constraints, inst.objective);
  LpSolution b = simplex.Solve(boxed, inst.objective);
  LpSolution c = brute.Solve(inst.constraints, inst.objective);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  ASSERT_TRUE(c.optimal());
  double tol = 1e-5 * std::max(1.0, std::fabs(c.objective));
  EXPECT_NEAR(a.objective, c.objective, tol) << "seed " << GetParam();
  EXPECT_NEAR(b.objective, c.objective, tol) << "seed " << GetParam();
}

TEST_P(SeedSweep, MebInvariants) {
  Rng rng(GetParam() * 31 + 1);
  size_t d = 2 + rng.UniformIndex(5);
  size_t n = 10 + rng.UniformIndex(200);
  auto pts = workload::GaussianCloud(n, d, &rng);
  WelzlSolver solver;
  Ball ball = solver.Solve(pts);
  ASSERT_FALSE(ball.empty());
  size_t boundary = 0;
  for (const auto& p : pts) {
    double dist = (p - ball.center).Norm();
    EXPECT_LE(dist, ball.radius + 1e-6);
    if (std::fabs(dist - ball.radius) < 1e-6) ++boundary;
  }
  EXPECT_GE(boundary, 2u);
}

TEST_P(SeedSweep, StreamingLpAgreesWithDirect) {
  Rng rng(GetParam() * 131 + 7);
  size_t d = 2 + rng.UniformIndex(2);
  auto inst = workload::RandomFeasibleLp(1500, d, &rng);
  LinearProgram problem(inst.objective);
  stream::VectorStream<Halfspace> s(inst.constraints);
  stream::StreamingOptions opt;
  opt.r = 2 + static_cast<int>(rng.UniformIndex(3));
  opt.net.scale = 0.1;
  opt.seed = GetParam();
  auto result = stream::SolveStreaming(problem, s, opt, nullptr);
  ASSERT_TRUE(result.ok());
  auto direct = problem.SolveValue(
      std::span<const Halfspace>(inst.constraints));
  EXPECT_EQ(problem.CompareValues(result->value, direct), 0)
      << "seed " << GetParam();
}

TEST_P(SeedSweep, RationalFieldAxioms) {
  Rng rng(GetParam() * 271 + 13);
  auto rand_rational = [&]() {
    return Rational::Make(rng.UniformInt(-200, 200),
                          1 + rng.UniformIndex(60));
  };
  for (int i = 0; i < 20; ++i) {
    Rational a = rand_rational(), b = rand_rational(), c = rand_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    EXPECT_EQ(-(-a), a);
  }
}

TEST_P(SeedSweep, ClarksonMebAgreesWithDirect) {
  Rng rng(GetParam() * 977 + 3);
  size_t d = 2 + rng.UniformIndex(2);
  auto pts = workload::SphereCloud(2500, d, 20.0, 0.3, &rng);
  MinEnclosingBall problem(d);
  ClarksonOptions opt;
  opt.r = 3;
  opt.net.scale = 0.1;
  opt.seed = GetParam();
  auto result = ClarksonSolve(problem, std::span<const Vec>(pts), opt,
                              nullptr);
  ASSERT_TRUE(result.ok());
  auto direct = problem.SolveValue(std::span<const Vec>(pts));
  EXPECT_EQ(problem.CompareValues(result->value, direct), 0)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// Degenerate-input torture: duplicated, parallel, and zero-normal
// constraints must never crash or mis-solve.
TEST(DegenerateStress, PathologicalConstraintMixes) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    size_t d = 2 + rng.UniformIndex(2);
    auto inst = workload::RandomFeasibleLp(20, d, &rng);
    std::vector<Halfspace> cs = inst.constraints;
    // Duplicates.
    for (int i = 0; i < 5; ++i) {
      cs.push_back(cs[rng.UniformIndex(inst.constraints.size())]);
    }
    // Scaled copies (parallel constraints).
    for (int i = 0; i < 5; ++i) {
      Halfspace h = cs[rng.UniformIndex(inst.constraints.size())];
      double s = rng.UniformDouble(0.5, 3.0);
      h.a *= s;
      h.b *= s;
      cs.push_back(h);
    }
    // Trivially satisfied zero-normal constraints.
    cs.push_back(Halfspace(Vec(d), 1.0));
    LinearProgram problem(inst.objective);
    auto with = problem.SolveBasis(std::span<const Halfspace>(cs));
    auto without = problem.SolveValue(
        std::span<const Halfspace>(inst.constraints));
    EXPECT_EQ(problem.CompareValues(with.value, without), 0);
    EXPECT_LE(with.basis.size(), problem.CombinatorialDimension());
  }
}

TEST(DegenerateStress, CollinearAndCoincidentMebPoints) {
  WelzlSolver solver;
  // Collinear points.
  std::vector<Vec> line;
  for (int i = 0; i <= 10; ++i) {
    line.push_back(Vec{static_cast<double>(i), 2.0 * i, -1.0 * i});
  }
  Ball b = solver.Solve(line);
  ASSERT_FALSE(b.empty());
  for (const auto& p : line) EXPECT_TRUE(b.Contains(p, 1e-6));
  // Expected: diameter endpoints define it.
  EXPECT_NEAR(b.radius, (line.back() - line.front()).Norm() / 2, 1e-6);

  // Heavily coincident cloud.
  std::vector<Vec> dup(50, Vec{1, 1, 1});
  dup.push_back(Vec{2, 1, 1});
  dup.push_back(Vec{0, 1, 1});
  Ball b2 = solver.Solve(dup);
  EXPECT_NEAR(b2.radius, 1.0, 1e-9);
}

TEST(DegenerateStress, StreamingInfeasibleManySeeds) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto inst = workload::RandomInfeasibleLp(1200, 2, &rng);
    LinearProgram problem(inst.objective);
    stream::VectorStream<Halfspace> s(inst.constraints);
    stream::StreamingOptions opt;
    opt.net.scale = 0.1;
    opt.seed = seed;
    auto result = stream::SolveStreaming(problem, s, opt, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->value.feasible) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lplow

// net_io tests: the endpoint grammar, the Unix/TCP dial+listen seam, and
// the framed-read deadline contract.
//
// The trickled-header test is a regression pin for a real bug: ReadFrame
// used to give the header read and the payload read a FULL timeout_ms
// EACH, so a peer that dribbled out the header could hold a caller for 2x
// its deadline. The fix spends ONE absolute deadline across both reads;
// the test fails on the old code (total wait ~2x) and passes on the new
// (~1x).

#include "src/runtime/net_io.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/runtime/wire.h"
#include "src/util/status.h"

namespace lplow {
namespace runtime {
namespace {

using Clock = std::chrono::steady_clock;

std::string TestSocketPath(const char* tag) {
  return "/tmp/lplow_net_io_" + std::string(tag) + "_" +
         std::to_string(getpid()) + ".sock";
}

// ------------------------------------------------------- endpoint grammar

TEST(ParseEndpointTest, UnixPrefix) {
  auto ep = net::ParseEndpoint("unix:/tmp/a.sock");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  EXPECT_EQ(ep->family, net::Endpoint::Family::kUnix);
  EXPECT_EQ(ep->path, "/tmp/a.sock");
  EXPECT_EQ(net::FormatEndpoint(*ep), "unix:/tmp/a.sock");
}

TEST(ParseEndpointTest, BarePathIsUnixAlias) {
  auto ep = net::ParseEndpoint("/tmp/bare.sock");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  EXPECT_EQ(ep->family, net::Endpoint::Family::kUnix);
  EXPECT_EQ(ep->path, "/tmp/bare.sock");
}

TEST(ParseEndpointTest, TcpHostPort) {
  auto ep = net::ParseEndpoint("tcp:127.0.0.1:8080");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  EXPECT_EQ(ep->family, net::Endpoint::Family::kTcp);
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 8080);
  EXPECT_EQ(net::FormatEndpoint(*ep), "tcp:127.0.0.1:8080");
}

TEST(ParseEndpointTest, TcpEphemeralPortZero) {
  auto ep = net::ParseEndpoint("tcp:localhost:0");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  EXPECT_EQ(ep->host, "localhost");
  EXPECT_EQ(ep->port, 0);
}

TEST(ParseEndpointTest, Rejections) {
  EXPECT_FALSE(net::ParseEndpoint("").ok());
  EXPECT_FALSE(net::ParseEndpoint("unix:").ok());
  EXPECT_FALSE(net::ParseEndpoint("tcp:hostonly").ok());
  EXPECT_FALSE(net::ParseEndpoint("tcp::123").ok());
  EXPECT_FALSE(net::ParseEndpoint("tcp:host:").ok());
  EXPECT_FALSE(net::ParseEndpoint("tcp:host:65536").ok());
  EXPECT_FALSE(net::ParseEndpoint("tcp:host:12x").ok());
}

// -------------------------------------------------- single-deadline reads

TEST(ReadFrameDeadlineTest, TrickledHeaderSpendsOneTimeoutTotal) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  // A valid header that PROMISES a payload which never comes, delivered
  // one byte at a time — slow enough to eat most of the deadline on the
  // header alone.
  BitWriter w;
  wire::EncodeFrameHeader(wire::FrameKind::kPing, /*payload_size=*/64, &w);
  std::vector<uint8_t> header = w.Release();
  ASSERT_EQ(header.size(), wire::kFrameHeaderBytes);

  std::thread trickler([&] {
    for (uint8_t byte : header) {
      (void)!write(fds[1], &byte, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    // Never send the payload; leave the socket open so the reader's only
    // way out is its deadline.
  });

  const auto start = Clock::now();
  Result<wire::Frame> frame = net::ReadFrame(fds[0], /*timeout_ms=*/400);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);

  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded)
      << frame.status().ToString();
  // One budget (~400ms), not header-budget + payload-budget (~700ms+ on
  // the pre-fix code: the header trickle ate ~300ms and the payload read
  // then got a fresh 400ms). Generous ceiling for slow CI machines.
  EXPECT_LT(elapsed.count(), 650) << "frame read got more than one deadline";
  EXPECT_GE(elapsed.count(), 350) << "deadline cut short";

  trickler.join();
  close(fds[0]);
  close(fds[1]);
}

TEST(ReadFrameDeadlineTest, TimeoutIsTypedAndPeerCloseIsNot) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Silence: typed deadline status.
  Result<wire::Frame> timed_out = net::ReadFrame(fds[0], /*timeout_ms=*/50);
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  // Peer close: a DIFFERENT code, so clients never mistake a hangup (or an
  // oversized-frame rejection) for a timeout.
  close(fds[1]);
  Result<wire::Frame> closed = net::ReadFrame(fds[0], /*timeout_ms=*/50);
  EXPECT_EQ(closed.status().code(), StatusCode::kOutOfRange);
  close(fds[0]);
}

// ------------------------------------------------------ unix listen probe

TEST(ListenUnixTest, RefusesToHijackALiveListener) {
  const std::string path = TestSocketPath("hijack");
  Result<int> first = net::ListenUnix(path, /*backlog=*/4);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // A second bind on the same path must fail LOUDLY — the old code
  // unlinked unconditionally and silently stole all future clients.
  Result<int> second = net::ListenUnix(path, /*backlog=*/4);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists)
      << second.status().ToString();

  // The first listener is untouched: a client still reaches it.
  Result<int> client = net::DialUnix(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<int> served = net::AcceptConnection(*first);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  net::CloseFd(*client);
  net::CloseFd(*served);
  net::CloseFd(*first);
  unlink(path.c_str());
}

TEST(ListenUnixTest, ReclaimsAStaleSocketFile) {
  const std::string path = TestSocketPath("stale");
  Result<int> first = net::ListenUnix(path, /*backlog=*/4);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Close WITHOUT unlinking: the socket file stays behind, exactly what a
  // crashed daemon leaves. Nobody answers the probe, so a restart rebinds.
  net::CloseFd(*first);
  Result<int> second = net::ListenUnix(path, /*backlog=*/4);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  net::CloseFd(*second);
  unlink(path.c_str());
}

// ------------------------------------------------------------ tcp seam

TEST(TcpTest, LoopbackFrameRoundTripWithNoDelay) {
  uint16_t port = 0;
  Result<int> listener =
      net::ListenTcp("127.0.0.1", /*port=*/0, /*backlog=*/4, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ASSERT_GT(port, 0) << "ephemeral port not reported";

  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::thread client_thread([&] {
    Result<int> client = net::DialTcp("127.0.0.1", port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    int nodelay = 0;
    socklen_t len = sizeof(nodelay);
    ASSERT_EQ(getsockopt(*client, IPPROTO_TCP, TCP_NODELAY, &nodelay, &len),
              0);
    EXPECT_NE(nodelay, 0) << "dialed TCP socket missing TCP_NODELAY";
    ASSERT_TRUE(
        net::WriteFrame(*client, wire::FrameKind::kPing, payload).ok());
    Result<wire::Frame> pong = net::ReadFrame(*client, /*timeout_ms=*/5000);
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_EQ(pong->header.kind, wire::FrameKind::kPong);
    EXPECT_EQ(pong->payload, payload);
    net::CloseFd(*client);
  });

  Result<int> served = net::AcceptConnection(*listener);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  int nodelay = 0;
  socklen_t len = sizeof(nodelay);
  ASSERT_EQ(getsockopt(*served, IPPROTO_TCP, TCP_NODELAY, &nodelay, &len), 0);
  EXPECT_NE(nodelay, 0) << "accepted TCP socket missing TCP_NODELAY";
  Result<wire::Frame> ping = net::ReadFrame(*served, /*timeout_ms=*/5000);
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(ping->header.kind, wire::FrameKind::kPing);
  EXPECT_EQ(ping->payload, payload);
  ASSERT_TRUE(net::WriteFrame(*served, wire::FrameKind::kPong, payload).ok());

  client_thread.join();
  net::CloseFd(*served);
  net::CloseFd(*listener);
}

TEST(TcpTest, ListenViaSpecResolvesEphemeralPort) {
  std::string bound;
  Result<int> listener = net::Listen("tcp:127.0.0.1:0", /*backlog=*/4, &bound);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  auto parsed = net::ParseEndpoint(bound);
  ASSERT_TRUE(parsed.ok()) << bound;
  EXPECT_EQ(parsed->family, net::Endpoint::Family::kTcp);
  EXPECT_GT(parsed->port, 0) << "bound spec still carries port 0: " << bound;

  // The bound spec is directly dialable.
  Result<int> client = net::Dial(bound);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  net::CloseFd(*client);
  net::CloseFd(*listener);
}

TEST(TcpTest, DialDeadPortFails) {
  // Bind an ephemeral port, then close it: dialing it afterwards must fail
  // (nobody re-listens on it within this test).
  uint16_t port = 0;
  Result<int> listener =
      net::ListenTcp("127.0.0.1", /*port=*/0, /*backlog=*/1, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  net::CloseFd(*listener);
  Result<int> client = net::DialTcp("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

}  // namespace
}  // namespace runtime
}  // namespace lplow

#include "src/solvers/rational_lp2d.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace lplow {
namespace {

RationalLine MakeLine(int64_t sp, int64_t sq, int64_t tp, int64_t tq) {
  return {Rational::Make(sp, sq), Rational::Make(tp, tq)};
}

// Exact brute force: the optimum of the upper envelope is at a crossing of
// two lines (or flat); try all pairs.
RationalLp2dSolution BruteForce(const std::vector<RationalLine>& lines) {
  RationalLp2dSolution best;
  auto envelope_at = [&](const Rational& x) {
    Rational v = lines[0].ValueAt(x);
    for (const auto& l : lines) {
      Rational lv = l.ValueAt(x);
      if (lv > v) v = lv;
    }
    return v;
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      if (lines[i].slope == lines[j].slope) continue;
      Rational x = (lines[j].intercept - lines[i].intercept) /
                   (lines[i].slope - lines[j].slope);
      Rational y = envelope_at(x);
      if (!best.bounded || y < best.y) {
        best.bounded = true;
        best.x = x;
        best.y = y;
      }
    }
  }
  return best;
}

TEST(RationalLp2dTest, TwoLineVee) {
  // y >= -x and y >= x: minimum at (0, 0).
  RationalLp2dSolver solver;
  auto s = solver.Solve({MakeLine(-1, 1, 0, 1), MakeLine(1, 1, 0, 1)});
  ASSERT_TRUE(s.bounded);
  EXPECT_EQ(s.x, Rational(0));
  EXPECT_EQ(s.y, Rational(0));
}

TEST(RationalLp2dTest, FractionalOptimum) {
  // y >= -2x + 3 and y >= x: cross at x = 1, y = 1... with exact fractions:
  // -2x + 3 = x -> x = 1. Shift: y >= -2x + 4 -> x = 4/3, y = 4/3.
  RationalLp2dSolver solver;
  auto s = solver.Solve({MakeLine(-2, 1, 4, 1), MakeLine(1, 1, 0, 1)});
  ASSERT_TRUE(s.bounded);
  EXPECT_EQ(s.x, Rational::Make(4, 3));
  EXPECT_EQ(s.y, Rational::Make(4, 3));
}

TEST(RationalLp2dTest, UnboundedAllPositiveSlopes) {
  RationalLp2dSolver solver;
  auto s = solver.Solve({MakeLine(1, 1, 0, 1), MakeLine(2, 1, 5, 1)});
  EXPECT_FALSE(s.bounded);
}

TEST(RationalLp2dTest, UnboundedAllNegativeSlopes) {
  RationalLp2dSolver solver;
  auto s = solver.Solve({MakeLine(-1, 1, 0, 1), MakeLine(-3, 2, 5, 1)});
  EXPECT_FALSE(s.bounded);
}

TEST(RationalLp2dTest, AllFlatLines) {
  RationalLp2dSolver solver;
  auto s = solver.Solve({MakeLine(0, 1, 3, 1), MakeLine(0, 1, 7, 2)});
  ASSERT_TRUE(s.bounded);
  EXPECT_EQ(s.y, Rational::Make(7, 2));  // max intercept.
}

TEST(RationalLp2dTest, AllFlatTakesMaxIntercept) {
  RationalLp2dSolver solver;
  auto s = solver.Solve({MakeLine(0, 1, 3, 1), MakeLine(0, 1, 9, 2)});
  ASSERT_TRUE(s.bounded);
  EXPECT_EQ(s.y, Rational::Make(9, 2));
}

TEST(RationalLp2dTest, FlatBottomDominatedByFlatLine) {
  // V plus a flat line above the vee bottom: min = flat level.
  RationalLp2dSolver solver;
  auto s = solver.Solve({MakeLine(-1, 1, 0, 1), MakeLine(1, 1, 0, 1),
                         MakeLine(0, 1, 2, 1)});
  ASSERT_TRUE(s.bounded);
  EXPECT_EQ(s.y, Rational(2));
}

TEST(RationalLp2dTest, DuplicateLinesHarmless) {
  RationalLp2dSolver solver;
  std::vector<RationalLine> lines(5, MakeLine(-1, 1, 0, 1));
  lines.push_back(MakeLine(1, 1, 0, 1));
  auto s = solver.Solve(lines);
  ASSERT_TRUE(s.bounded);
  EXPECT_EQ(s.y, Rational(0));
}

TEST(RationalLp2dTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(107);
  for (int trial = 0; trial < 100; ++trial) {
    size_t n = 3 + rng.UniformIndex(20);
    std::vector<RationalLine> lines;
    for (size_t i = 0; i < n; ++i) {
      lines.push_back(MakeLine(rng.UniformInt(-20, 20),
                               1 + rng.UniformIndex(5),
                               rng.UniformInt(-50, 50),
                               1 + rng.UniformIndex(5)));
    }
    // Force both slope signs so the instance is bounded.
    lines[0].slope = Rational::Make(-21, 1);
    lines[1].slope = Rational::Make(21, 1);
    RationalLp2dSolver solver(trial);
    auto fast = solver.Solve(lines);
    auto slow = BruteForce(lines);
    ASSERT_TRUE(fast.bounded);
    ASSERT_TRUE(slow.bounded);
    EXPECT_EQ(fast.y, slow.y) << "trial " << trial;
  }
}

TEST(RationalLp2dTest, ExactWithHugeCoefficients) {
  // Coefficients beyond double precision: the crossing of
  // y >= K x - K and y >= -K x + K is exactly (1, 0) for huge K.
  BigInt k = BigInt::FromString("123456789012345678901234567890");
  RationalLine up{Rational(k), Rational(-k)};
  RationalLine down{Rational(-k), Rational(k)};
  RationalLp2dSolver solver;
  auto s = solver.Solve({up, down});
  ASSERT_TRUE(s.bounded);
  EXPECT_EQ(s.x, Rational(1));
  EXPECT_EQ(s.y, Rational(0));
}

}  // namespace
}  // namespace lplow

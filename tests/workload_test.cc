#include "src/workload/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/problems/linear_program.h"
#include "src/solvers/lex_lp.h"

namespace lplow {
namespace workload {
namespace {

TEST(WorkloadTest, RandomFeasibleLpIsFeasible) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    auto inst = RandomFeasibleLp(200, 3, &rng);
    LexLpSolver solver;
    EXPECT_TRUE(solver.Solve(inst.constraints, inst.objective).optimal());
  }
}

TEST(WorkloadTest, RandomInfeasibleLpIsInfeasible) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    auto inst = RandomInfeasibleLp(50, 2, &rng);
    LexLpSolver solver;
    EXPECT_EQ(solver.Solve(inst.constraints, inst.objective).status,
              LpStatus::kInfeasible);
  }
}

TEST(WorkloadTest, RegressionDataResidualsBounded) {
  Rng rng(3);
  auto data = RandomRegressionData(100, 3, 0.5, &rng);
  for (size_t j = 0; j < data.x.size(); ++j) {
    double residual = data.y[j] - data.true_w.Dot(data.x[j]) - data.true_b;
    EXPECT_LE(std::fabs(residual), 0.5 + 1e-12);
  }
}

TEST(WorkloadTest, ChebyshevLpRecoversNoiseLevel) {
  // The optimal t of the Chebyshev LP is at most the injected noise bound
  // (the true model achieves it) and nonnegative.
  Rng rng(4);
  auto data = RandomRegressionData(150, 2, 0.3, &rng);
  auto lp = ChebyshevRegressionLp(data);
  LinearProgram problem(lp.objective);
  auto value = problem.SolveValue(std::span<const Halfspace>(lp.constraints));
  ASSERT_TRUE(value.feasible);
  EXPECT_GE(value.objective, -1e-7);
  EXPECT_LE(value.objective, 0.3 + 1e-6);
}

TEST(WorkloadTest, ChebyshevLpDimensions) {
  Rng rng(5);
  auto data = RandomRegressionData(10, 3, 0.1, &rng);
  auto lp = ChebyshevRegressionLp(data);
  EXPECT_EQ(lp.objective.dim(), 5u);          // w(3) + b + t.
  EXPECT_EQ(lp.constraints.size(), 2 * 10 + 1u);
}

TEST(WorkloadTest, SeparableSvmHasMargin) {
  Rng rng(6);
  auto pts = SeparableSvmData(300, 3, 0.8, &rng);
  EXPECT_EQ(pts.size(), 300u);
  // Labels must be realizable: verify against the construction by checking
  // both classes appear and no point is at the origin.
  int pos = 0, neg = 0;
  for (const auto& p : pts) {
    (p.label > 0 ? pos : neg)++;
    EXPECT_GT(p.x.Norm(), 0.0);
  }
  EXPECT_GT(pos, 0);
  EXPECT_GT(neg, 0);
}

TEST(WorkloadTest, NonSeparableContainsContradiction) {
  Rng rng(7);
  auto pts = NonSeparableSvmData(50, 2, &rng);
  // The last point duplicates some x with both labels present.
  bool found = false;
  for (size_t i = 0; i + 1 < pts.size() && !found; ++i) {
    if (pts[i].x.ApproxEquals(pts.back().x, 0) &&
        pts[i].label != pts.back().label) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadTest, GaussianCloudShape) {
  Rng rng(8);
  auto pts = GaussianCloud(500, 4, &rng, 2.0);
  EXPECT_EQ(pts.size(), 500u);
  EXPECT_EQ(pts[0].dim(), 4u);
  // Empirical stddev near 2.
  double sum2 = 0;
  for (const auto& p : pts) sum2 += p[0] * p[0];
  EXPECT_NEAR(std::sqrt(sum2 / 500), 2.0, 0.4);
}

TEST(WorkloadTest, SphereCloudWithinRadius) {
  Rng rng(9);
  auto pts = SphereCloud(400, 3, 5.0, 0.5, &rng);
  // All points within radius 5 of some center; diameter <= 10.
  for (const auto& p : pts) {
    for (const auto& q : pts) {
      EXPECT_LE((p - q).Norm(), 10.0 + 1e-9);
    }
  }
}

TEST(WorkloadTest, EnvelopeLinesBothSigns) {
  Rng rng(10);
  auto lines = RandomEnvelopeLines(50, &rng);
  bool pos = false, neg = false;
  for (const auto& l : lines) {
    if (l.slope > 0) pos = true;
    if (l.slope < 0) neg = true;
  }
  EXPECT_TRUE(pos);
  EXPECT_TRUE(neg);
}

TEST(WorkloadTest, PartitionRoundRobinBalanced) {
  Rng rng(11);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  auto parts = Partition(items, 7, true, &rng);
  ASSERT_EQ(parts.size(), 7u);
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    EXPECT_GE(p.size(), 100 / 7u);
    EXPECT_LE(p.size(), 100 / 7 + 1u);
  }
  EXPECT_EQ(total, 100u);
}

TEST(WorkloadTest, PartitionContiguousPreservesOrder) {
  Rng rng(12);
  std::vector<int> items = {0, 1, 2, 3, 4, 5};
  auto parts = Partition(items, 2, false, &rng);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parts[1], (std::vector<int>{3, 4, 5}));
}

TEST(WorkloadTest, GeneratorsDeterministic) {
  Rng a(13), b(13);
  auto la = RandomFeasibleLp(20, 2, &a);
  auto lb = RandomFeasibleLp(20, 2, &b);
  EXPECT_EQ(la.constraints[7].b, lb.constraints[7].b);
}

}  // namespace
}  // namespace workload
}  // namespace lplow

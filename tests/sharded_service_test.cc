// ShardedSolverService (label `quick`): stable job->shard routing,
// shard-count determinism of the engine transcripts (the acceptance
// contract: counters bit-identical across {1,2,4} shards x {1,2,8}
// threads), batch-vs-sequential submit equivalence, and failure-injection
// accounting (a throwing job is counted against its shard and never wedges
// the queue).

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/deterministic/deterministic_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/runtime/solve_backend.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"
#include "tests/testing_util.h"

namespace lplow {
namespace {

using runtime::MetricsRegistry;
using runtime::ShardedSolverService;

// ------------------------------------------------------------- routing

TEST(ShardedServiceTest, RoutingIsAStableFunctionOfTheJobId) {
  ShardedSolverService::Options opt;
  opt.num_shards = 4;
  MetricsRegistry reg;
  opt.metrics = &reg;
  ShardedSolverService a(opt);
  ShardedSolverService b(opt);

  std::set<size_t> shards_hit;
  for (uint64_t id = 0; id < 256; ++id) {
    size_t shard = a.ShardFor(id);
    ASSERT_LT(shard, a.num_shards());
    // Same id, same shard — across calls and across service instances.
    EXPECT_EQ(shard, a.ShardFor(id));
    EXPECT_EQ(shard, b.ShardFor(id));
    shards_hit.insert(shard);
  }
  // The stable hash must actually spread ids over the shards.
  EXPECT_EQ(shards_hit.size(), a.num_shards());
}

// ------------------------------------------- shard-count determinism

using testing_util::BasisHash;  // FNV-1a over the problem's wire format,
                                // the same hash engine_equivalence_test pins.

/// The transcript fingerprint the acceptance contract pins: basis bytes
/// plus the deterministic counters (rounds, bytes, iters, resample bytes).
struct Transcript {
  uint64_t basis_hash = 0;
  uint64_t iterations = 0;
  uint64_t successful = 0;
  uint64_t rounds_or_passes = 0;
  uint64_t bytes = 0;
  uint64_t sample_bytes = 0;

  bool operator==(const Transcript&) const = default;
};

struct ModelTranscripts {
  Transcript coordinator;
  Transcript mpc;
  Transcript streaming;
  Transcript deterministic;

  bool operator==(const ModelTranscripts&) const = default;
};

/// Runs all three models with `runtime` injected; `threshold 1` forces
/// every engine basis solve through the configured backend.
template <LpTypeProblem P>
ModelTranscripts RunAllModels(
    const P& problem,
    const std::vector<std::vector<typename P::Constraint>>& parts,
    const std::vector<typename P::Constraint>& input,
    const runtime::RuntimeOptions& runtime) {
  ModelTranscripts out;
  {
    coord::CoordinatorOptions opt;
    opt.net.scale = 0.1;
    opt.seed = 0x5A4DED01ULL;
    opt.runtime = runtime;
    coord::CoordinatorStats stats;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      out.coordinator =
          Transcript{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.rounds,
                     stats.total_bytes, stats.sample_bytes};
    }
  }
  {
    mpc::MpcOptions opt;
    opt.delta = 0.5;
    opt.net.scale = 0.1;
    opt.seed = 0x5A4DED02ULL;
    opt.runtime = runtime;
    mpc::MpcStats stats;
    auto result = mpc::SolveMpc(problem, parts, opt, &stats);
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      out.mpc = Transcript{BasisHash(problem, *result), stats.iterations,
                           stats.successful_iterations, stats.rounds,
                           stats.total_bytes, stats.sample_bytes};
    }
  }
  {
    stream::VectorStream<typename P::Constraint> vs(input);
    stream::StreamingOptions opt;
    opt.net.scale = 0.1;
    opt.seed = 0x5A4DED03ULL;
    opt.runtime = runtime;
    stream::StreamingStats stats;
    auto result = stream::SolveStreaming(problem, vs, opt, &stats);
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      out.streaming =
          Transcript{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.passes,
                     stats.peak_bytes, stats.sample_bytes};
    }
  }
  {
    // The sampling-free model: no seed to hold fixed — the sweep pins that
    // the backend seam is equally invisible to a transport that consumes
    // zero random bits.
    det::DeterministicOptions opt;
    opt.net.scale = 0.1;
    opt.runtime = runtime;
    det::DeterministicStats stats;
    auto result = det::SolveDeterministic(problem, parts, opt, &stats);
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      out.deterministic =
          Transcript{BasisHash(problem, *result), stats.iterations,
                     stats.successful_iterations, stats.merge_rounds,
                     stats.candidate_bytes, stats.sample_bytes};
    }
  }
  return out;
}

TEST(ShardedServiceTest, TranscriptsBitIdenticalAcrossShardAndThreadCounts) {
  auto c = testing_util::MakeFeasibleLpCase(3000, 2, 71);
  Rng rng(0xD15C1ULL);
  auto parts = workload::Partition(c.constraints, 8, true, &rng);

  // Reference: the serial path, no backend (the seed transcript).
  ModelTranscripts want =
      RunAllModels(c.problem, parts, c.constraints, runtime::RuntimeOptions{});
  ASSERT_NE(want.coordinator, Transcript{});

  // The default backend (inline, no pool) is the same dispatch the serial
  // path uses; its transcript must match too.
  {
    runtime::InlinePoolBackend inline_backend(nullptr);
    runtime::RuntimeOptions ropt;
    ropt.solver_backend = &inline_backend;
    ropt.oversized_basis_threshold = 1;
    EXPECT_EQ(RunAllModels(c.problem, parts, c.constraints, ropt), want)
        << "InlinePoolBackend transcript drifted";
  }

  for (size_t shards : {1u, 2u, 4u}) {
    MetricsRegistry reg;
    ShardedSolverService::Options sopt;
    sopt.num_shards = shards;
    sopt.threads_per_shard = 2;
    sopt.metrics = &reg;
    ShardedSolverService service(sopt);

    for (size_t threads : {1u, 2u, 8u}) {
      runtime::RuntimeOptions ropt;
      ropt.num_threads = threads;
      ropt.solver_backend = &service;
      ropt.oversized_basis_threshold = 1;  // Route every basis solve.
      ModelTranscripts got =
          RunAllModels(c.problem, parts, c.constraints, ropt);
      EXPECT_EQ(got, want) << "transcript drifted at shards=" << shards
                           << " threads=" << threads;
    }

    // The backend really ran the solves: every engine basis solve of the 12
    // runs (4 models x 3 thread counts) dispatched through a shard.
    auto totals = service.total_stats();
    EXPECT_GT(totals.solves, 0u);
    EXPECT_EQ(totals.failed, 0u);
    uint64_t per_shard_sum = 0;
    for (size_t s = 0; s < service.num_shards(); ++s) {
      per_shard_sum += service.shard_stats(s).solves;
    }
    EXPECT_EQ(per_shard_sum, totals.solves);
    if (shards == 4) {
      // Distinct per-run job ids must spread the dispatches (deterministic
      // under the fixed seeds above).
      size_t shards_used = 0;
      for (size_t s = 0; s < service.num_shards(); ++s) {
        shards_used += service.shard_stats(s).solves > 0 ? 1 : 0;
      }
      EXPECT_GE(shards_used, 2u);
    }
  }
}

// ------------------------------------------- batch-vs-sequential submit

TEST(ShardedServiceTest, BatchSubmitMatchesSequentialSubmit) {
  const size_t kJobs = 48;
  auto job_value = [](uint64_t id) {
    // Deterministic busywork standing in for a solve.
    uint64_t acc = id;
    for (int i = 0; i < 1000; ++i) acc = acc * 6364136223846793005ULL + 1;
    return acc;
  };

  std::vector<uint64_t> sequential(kJobs), batched(kJobs);
  MetricsRegistry seq_reg, batch_reg;

  {
    ShardedSolverService::Options opt;
    opt.num_shards = 4;
    opt.threads_per_shard = 2;
    opt.metrics = &seq_reg;
    ShardedSolverService service(opt);
    std::vector<std::future<uint64_t>> futures;
    for (uint64_t id = 0; id < kJobs; ++id) {
      futures.push_back(
          service.Submit(id, "seq", [&job_value, id] { return job_value(id); }));
    }
    for (size_t i = 0; i < kJobs; ++i) sequential[i] = futures[i].get();
    service.Drain();
    EXPECT_EQ(service.total_stats().submitted, kJobs);
    EXPECT_EQ(service.total_stats().completed, kJobs);
    EXPECT_EQ(service.total_stats().batches, 0u);
  }

  size_t batch_dispatch_units = 0;
  {
    ShardedSolverService::Options opt;
    opt.num_shards = 4;
    opt.threads_per_shard = 2;
    opt.metrics = &batch_reg;
    ShardedSolverService service(opt);
    std::vector<std::pair<uint64_t, std::function<uint64_t()>>> jobs;
    for (uint64_t id = 0; id < kJobs; ++id) {
      jobs.emplace_back(id, [&job_value, id] { return job_value(id); });
    }
    auto futures = service.BatchSubmit("batch", std::move(jobs));
    ASSERT_EQ(futures.size(), kJobs);
    for (size_t i = 0; i < kJobs; ++i) batched[i] = futures[i].get();
    service.Drain();

    auto totals = service.total_stats();
    EXPECT_EQ(totals.submitted, kJobs);
    EXPECT_EQ(totals.completed, kJobs);
    EXPECT_EQ(totals.failed, 0u);
    // Coalescing: at most one dispatch unit per shard for the whole batch,
    // and the inner services saw batches, not individual jobs.
    EXPECT_LE(totals.batches, service.num_shards());
    EXPECT_GT(totals.batches, 0u);
    for (size_t s = 0; s < service.num_shards(); ++s) {
      batch_dispatch_units += service.shard(s).stats().submitted;
    }
    EXPECT_EQ(batch_dispatch_units, totals.batches);
    EXPECT_EQ(batch_reg.GetCounter("service.shard.batch_jobs")->value(),
              kJobs);
  }

  // Same jobs, same results, whichever way they were submitted.
  EXPECT_EQ(sequential, batched);
}

// ------------------------------------------------- failure injection

TEST(ShardedServiceTest, ThrowingJobsAreCountedAndDoNotWedgeTheQueue) {
  MetricsRegistry reg;
  ShardedSolverService::Options opt;
  opt.num_shards = 2;
  opt.threads_per_shard = 1;
  opt.metrics = &reg;
  ShardedSolverService service(opt);

  const size_t kJobs = 16;
  std::vector<std::pair<uint64_t, std::function<int()>>> jobs;
  for (uint64_t id = 0; id < kJobs; ++id) {
    jobs.emplace_back(id, [id]() -> int {
      if (id % 4 == 0) throw std::runtime_error("injected");
      return static_cast<int>(id);
    });
  }
  auto futures = service.BatchSubmit("faulty", std::move(jobs));
  // Drain before consuming: the stored exceptions are then owned solely by
  // the futures, so the rethrow/teardown below all happens on this thread.
  service.Drain();

  size_t threw = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    try {
      EXPECT_EQ(futures[i].get(), static_cast<int>(i));
    } catch (const std::runtime_error& e) {
      ++threw;
      EXPECT_STREQ(e.what(), "injected");
      EXPECT_EQ(i % 4, 0u);
    }
  }
  EXPECT_EQ(threw, kJobs / 4);

  auto totals = service.total_stats();
  EXPECT_EQ(totals.submitted, kJobs);
  EXPECT_EQ(totals.completed, kJobs);  // Failed jobs still complete.
  EXPECT_EQ(totals.failed, kJobs / 4);

  uint64_t failed_metric = 0;
  for (size_t s = 0; s < service.num_shards(); ++s) {
    failed_metric += reg.GetCounter("service.shard." + std::to_string(s) +
                                    ".failed")
                         ->value();
  }
  EXPECT_EQ(failed_metric, kJobs / 4);

  // The queue survives: the same shards keep serving work afterwards.
  auto after = service.Submit(uint64_t{3}, "after", [] { return 7; });
  EXPECT_EQ(after.get(), 7);
  service.Drain();
  EXPECT_EQ(service.total_stats().completed, kJobs + 1);

  // The SolveBackend path accounts failures separately (an Execute
  // dispatch is not a job: no future, no completed/failed entry).
  EXPECT_THROW(
      service.Execute(5, "test", [] { throw std::runtime_error("boom"); }),
      std::runtime_error);
  EXPECT_EQ(service.total_stats().failed, kJobs / 4);
  EXPECT_EQ(service.total_stats().solves, 1u);
  EXPECT_EQ(service.total_stats().solve_failures, 1u);
  EXPECT_EQ(service.total_stats().completed, kJobs + 1);
}

}  // namespace
}  // namespace lplow

#include "src/solvers/simplex.h"

#include <gtest/gtest.h>

#include "src/solvers/seidel.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

TEST(SimplexTest, KnownOptimum) {
  // min -x - 2y s.t. x + y <= 4, x <= 2, y <= 3, x >= 0, y >= 0.
  std::vector<Halfspace> cs = {
      Halfspace(Vec{1, 1}, 4),   Halfspace(Vec{1, 0}, 2),
      Halfspace(Vec{0, 1}, 3),   Halfspace(Vec{-1, 0}, 0),
      Halfspace(Vec{0, -1}, 0)};
  SimplexSolver solver;
  LpSolution s = solver.Solve(cs, Vec{-1, -2});
  ASSERT_TRUE(s.optimal());
  // Optimum at (1, 3): objective -7.
  EXPECT_NEAR(s.objective, -7, 1e-7);
  EXPECT_NEAR(s.point[0], 1, 1e-7);
  EXPECT_NEAR(s.point[1], 3, 1e-7);
}

TEST(SimplexTest, DetectsUnbounded) {
  SimplexSolver solver;
  // min -x with only x >= 0: unbounded below.
  LpSolution s = solver.Solve({Halfspace(Vec{-1, 0}, 0)}, Vec{-1, 0});
  EXPECT_EQ(s.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DetectsInfeasible) {
  SimplexSolver solver;
  LpSolution s = solver.Solve(
      {Halfspace(Vec{1, 0}, -5), Halfspace(Vec{-1, 0}, -5)}, Vec{1, 0});
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, NegativeRhsNeedsPhase1) {
  // x + y >= 2 encoded as -x - y <= -2 (negative RHS row), min x + y.
  SimplexSolver solver;
  LpSolution s = solver.Solve({Halfspace(Vec{-1, -1}, -2)}, Vec{1, 1});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2, 1e-7);
}

TEST(SimplexTest, FreeVariablesGoNegative) {
  // min x s.t. x >= -7 (as -x <= 7), bounded: optimum -7.
  SimplexSolver solver;
  LpSolution s = solver.Solve({Halfspace(Vec{-1.0}, 7.0)}, Vec{1.0});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -7, 1e-7);
}

TEST(SimplexTest, DegenerateConstraintsNoCycle) {
  // Many constraints tight at the optimum (classic cycling risk without
  // Bland's rule).
  std::vector<Halfspace> cs = {
      Halfspace(Vec{-1, 0}, 0),  Halfspace(Vec{0, -1}, 0),
      Halfspace(Vec{-1, -1}, 0), Halfspace(Vec{-2, -1}, 0),
      Halfspace(Vec{-1, -2}, 0), Halfspace(Vec{1, 1}, 10)};
  SimplexSolver solver;
  LpSolution s = solver.Solve(cs, Vec{1, 1});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 0, 1e-7);
}

// Agreement with Seidel (which adds a box; the instances used here have
// optima far from the box, so both solve the same program).
class SimplexVsSeidel : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexVsSeidel, ObjectiveMatches) {
  Rng rng(GetParam());
  size_t d = 2 + rng.UniformIndex(3);
  auto inst = workload::RandomFeasibleLp(40, d, &rng);
  SimplexSolver simplex;
  SeidelSolver seidel;
  LpSolution a = simplex.Solve(inst.constraints, inst.objective);
  LpSolution b = seidel.Solve(inst.constraints, inst.objective);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective,
              1e-5 * std::max(1.0, std::fabs(a.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexVsSeidel,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108, 109, 110));

}  // namespace
}  // namespace lplow

// Experiment E9 (Lemma 3.7): communication of the two-round weighted
// sampling protocol — measured bytes against the O(m bit(S) + k(l/r+1)log n)
// formula, sweeping the number of sites k and the sample size m.
//
// The protocol is isolated by running exactly one iteration of the
// coordinator solver (max_iterations = 1) and subtracting the basis
// broadcast round where appropriate; counters report the full per-iteration
// traffic split.

#include <benchmark/benchmark.h>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_SamplingProtocol(benchmark::State& state) {
  const size_t n = 100000;
  const size_t k = static_cast<size_t>(state.range(0));
  const double scale = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(0xE9);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, k, true, &rng);

  coord::CoordinatorStats stats;
  for (auto _ : state) {
    coord::CoordinatorOptions opt;
    opt.r = 3;
    opt.net.scale = scale;
    opt.max_iterations = 1;  // One iteration: R1 weights, R2 sample, R3 viol.
    opt.fallback_to_direct = false;  // Measure pure protocol cost.
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    benchmark::DoNotOptimize(result);  // Usually SamplingFailed: expected.
  }
  const size_t m = stats.sample_size;
  const size_t bit_s = problem.ConstraintBytes(inst.constraints[0]);
  // Formula terms: m constraints of bit(S) bytes + O(k) weight/count words.
  double formula_bytes =
      static_cast<double>(m * bit_s) + 18.0 * static_cast<double>(k);
  state.counters["n"] = static_cast<double>(n);
  state.counters["k"] = static_cast<double>(k);
  state.counters["m"] = static_cast<double>(m);
  state.counters["formula_KB"] = formula_bytes / 1024.0;
  state.counters["protocol_KB"] = static_cast<double>(stats.total_bytes) /
                                  1024.0;
}

BENCHMARK(BM_SamplingProtocol)
    ->ArgNames({"k", "scale_pct"})
    ->Args({2, 10})
    ->Args({8, 10})
    ->Args({32, 10})
    ->Args({128, 10})
    ->Args({8, 30})
    ->Args({8, 100})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

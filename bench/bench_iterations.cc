// Experiment E7 (Lemma 3.3 + Claim 3.2): iteration counts of Algorithm 1
// against the (20/9) nu r bound, and the per-iteration success rate against
// the 2/3 promise — including the sample-size (eps-net constant) sweep that
// shows how both degrade as the sample shrinks below the Claim 3.2 budget.

#include <benchmark/benchmark.h>

#include "src/core/clarkson.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_Iterations(benchmark::State& state) {
  const size_t n = 200000;
  const int r = static_cast<int>(state.range(0));
  const double scale = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(0xE7);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  const size_t nu = problem.CombinatorialDimension();

  size_t total_iters = 0, total_success = 0, runs = 0;
  ClarksonStats stats;
  for (auto _ : state) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      ClarksonOptions opt;
      opt.r = r;
      opt.net.scale = scale;
      opt.seed = 0xE700 + seed;
      auto result = ClarksonSolve(
          problem, std::span<const Halfspace>(inst.constraints), opt, &stats);
      if (!result.ok()) state.SkipWithError("solve failed");
      total_iters += stats.iterations;
      total_success += stats.successful_iterations;
      ++runs;
    }
  }
  state.counters["iters_avg"] = static_cast<double>(total_iters) / runs;
  state.counters["iters_bound"] = 20.0 * nu * r / 9.0;
  state.counters["success_rate_pct"] =
      total_iters ? 100.0 * total_success / total_iters : 0;
  state.counters["sample_m"] = static_cast<double>(stats.sample_size);
}

BENCHMARK(BM_Iterations)
    ->ArgNames({"r", "scale_pct"})
    // Claim 3.2 regime (scale = 1: the honest Clarkson-moment sample).
    ->Args({2, 100})
    ->Args({3, 100})
    ->Args({4, 100})
    // Undersampled regimes: success rate falls, iterations rise, the answer
    // stays exact (Las Vegas).
    ->Args({3, 30})
    ->Args({3, 10})
    ->Args({3, 3})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// Experiment E8 (Lemma 2.2): empirical eps-net failure rate of weighted
// i.i.d. samples, for halfplane ranges over a weighted 2-d point set, as the
// sample size moves from the practical (Clarkson-moment) budget to the full
// Haussler-Welzl bound.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "src/core/eps_net.h"
#include "src/core/sampling.h"
#include "src/geometry/vec.h"
#include "src/util/rng.h"

namespace lplow {
namespace {

// Checks the eps-net property for direction ranges { p : u.p >= t }: the
// sample must contain a point in every such range of weighted mass >= eps.
// Testing all u on a fine grid of directions is a sound proxy for d=2.
bool IsEpsNet(const std::vector<Vec>& points,
              const std::vector<double>& weights,
              const std::vector<Vec>& sample, double eps) {
  double total = 0;
  for (double w : weights) total += w;
  for (int a = 0; a < 64; ++a) {
    double theta = 2 * M_PI * a / 64;
    Vec u{std::cos(theta), std::sin(theta)};
    // Threshold at the weighted (1-eps)-quantile of u-projections.
    std::vector<std::pair<double, double>> proj;
    proj.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      proj.push_back({u.Dot(points[i]), weights[i]});
    }
    std::sort(proj.begin(), proj.end());
    double acc = 0;
    double threshold = proj.back().first;
    for (size_t i = proj.size(); i-- > 0;) {
      acc += proj[i].second;
      if (acc >= eps * total) {
        threshold = proj[i].first;
        break;
      }
    }
    // The range { p : u.p >= threshold } has mass >= eps; the net must hit it.
    bool hit = false;
    for (const Vec& s : sample) {
      if (u.Dot(s) >= threshold) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

void BM_EpsNetFailureRate(benchmark::State& state) {
  const double eps = 0.02;
  const double m_factor = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(0xE8);
  const size_t n = 20000;
  std::vector<Vec> points;
  std::vector<double> weights;
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Vec{rng.Normal(), rng.Normal()});
    weights.push_back(std::exp(rng.Normal(0, 2)));  // Skewed weights.
  }

  const size_t lambda = 3;
  const size_t m = static_cast<size_t>(m_factor * 3 * lambda / eps);
  size_t failures = 0;
  const int kTrials = 30;
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      MultiChaoReservoir<Vec> res(m, &rng);
      for (size_t i = 0; i < n; ++i) res.Offer(points[i], weights[i]);
      if (!IsEpsNet(points, weights, res.Samples(), eps)) ++failures;
    }
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["m_theory"] =
      static_cast<double>(EpsNetTheorySampleSize(eps, lambda, 1.0 / 3.0));
  state.counters["failure_pct"] = 100.0 * failures / kTrials;
}

BENCHMARK(BM_EpsNetFailureRate)
    ->ArgNames({"m_factor_pct"})
    ->Args({10})    // 0.1x the Clarkson budget: nets often fail.
    ->Args({30})
    ->Args({100})   // The solvers' default budget.
    ->Args({300})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// Experiment E10 (Theorem 7 / Corollary 8 / Theorems 9-10): communication
// on the hard distributions D_r. For each r, the block-descent protocol runs
// with grid = n^{1/#rounds}: its measured bits follow the
// O~(rounds * n^{1/rounds}) upper-bound curve, bracketing the paper's
// Omega(n^{1/2 rounds} / poly) lower bound; the full-send baseline pays the
// 1-round Omega(n) price, exactly the round-communication trade-off the
// lower bound proves unavoidable.

#include <benchmark/benchmark.h>

#include <cmath>

#include "src/lowerbound/aug_index.h"
#include "src/lowerbound/hard_instance.h"
#include "src/lowerbound/tci_protocols.h"
#include "src/lowerbound/tci_to_lp.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"

namespace lplow {
namespace {

void BM_TciProtocols(benchmark::State& state) {
  const size_t base_n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const int protocol_rounds = static_cast<int>(state.range(2));
  lb::HardInstanceOptions opt;
  opt.base_n = base_n;
  opt.rounds = r;
  Rng rng(0xEA + base_n + r);
  lb::HardInstance h = lb::BuildHardInstance(opt, &rng);
  const size_t n = h.tci.n();
  const size_t grid = std::max<size_t>(
      2, static_cast<size_t>(std::llround(
             std::pow(static_cast<double>(n), 1.0 / protocol_rounds))));

  lb::ProtocolStats stats;
  bool correct = true;
  for (auto _ : state) {
    lb::BlockDescentOptions bopt;
    bopt.grid = grid;
    auto ans = lb::BlockDescentProtocol(h.tci, bopt, &stats);
    if (!ans.ok()) state.SkipWithError("protocol failed");
    correct = correct && (*ans == h.expected_answer);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["grid"] = static_cast<double>(grid);
  state.counters["messages"] = static_cast<double>(stats.messages);
  state.counters["Kbits"] = static_cast<double>(stats.bits) / 1024.0;
  state.counters["ub_curve"] =  // rounds * n^{1/rounds} (values sent).
      protocol_rounds * std::pow(static_cast<double>(n),
                                 1.0 / protocol_rounds);
  state.counters["lb_curve"] =  // Theorem 9's n^{1/2 rounds} shape.
      std::pow(static_cast<double>(n), 0.5 / protocol_rounds);
  state.counters["correct"] = correct ? 1 : 0;
}

BENCHMARK(BM_TciProtocols)
    ->ArgNames({"N", "r", "proto_r"})
    // Fixed instance (N=6, r=4: n=1296), protocol round sweep.
    ->Args({6, 4, 1})
    ->Args({6, 4, 2})
    ->Args({6, 4, 3})
    ->Args({6, 4, 4})
    // Instance-size sweep at proto rounds = r.
    ->Args({4, 3, 3})
    ->Args({6, 3, 3})
    ->Args({8, 3, 3})
    ->Args({10, 3, 3})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_TciFullSend(benchmark::State& state) {
  const size_t base_n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  lb::HardInstanceOptions opt;
  opt.base_n = base_n;
  opt.rounds = r;
  Rng rng(0xEA);
  lb::HardInstance h = lb::BuildHardInstance(opt, &rng);
  lb::ProtocolStats stats;
  for (auto _ : state) {
    auto ans = lb::FullSendProtocol(h.tci, &stats);
    if (!ans.ok() || *ans != h.expected_answer) {
      state.SkipWithError("wrong answer");
    }
  }
  state.counters["n"] = static_cast<double>(h.tci.n());
  state.counters["Kbits"] = static_cast<double>(stats.bits) / 1024.0;
}

BENCHMARK(BM_TciFullSend)
    ->ArgNames({"N", "r"})
    ->Args({6, 3})
    ->Args({6, 4})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The 1-round lower bound side (Lemma 5.6 / CC^1(TCI) = Omega(n)): a
// budget-B one-way protocol can only forward B of Alice's n curve values;
// Bob answers exactly when the crossing falls inside the transmitted prefix
// region and must guess otherwise. Measured success probability rises
// ~linearly in B/n — the information-theoretic wall that forces Omega(n)
// bits for constant success, empirically.
void BM_OneWayBudgetSuccess(benchmark::State& state) {
  const size_t bits = 2000;  // n = 2002.
  const double budget_frac = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(0xEA1);
  size_t correct = 0, total = 0;
  for (auto _ : state) {
    for (int t = 0; t < 400; ++t) {
      lb::AugIndexInstance aug = lb::RandomAugIndex(bits, &rng);
      auto red = lb::BuildTciFromAugIndex(aug, Rational(3));
      const size_t n = red.tci.n();
      const size_t budget = static_cast<size_t>(budget_frac * n);
      size_t answer;
      auto truth = lb::TciAnswer(red.tci);
      // Alice sends her first `budget` values; Bob scans for the crossing
      // inside the prefix, else guesses uniformly in the unseen region.
      size_t found = 0;
      for (size_t i = 0; i + 1 < budget; ++i) {
        if (red.tci.a[i] <= red.tci.b[i] &&
            red.tci.a[i + 1] > red.tci.b[i + 1]) {
          found = i + 1;
          break;
        }
      }
      if (found) {
        answer = found;
      } else {
        answer = budget + rng.UniformIndex(std::max<size_t>(n - budget, 1));
      }
      ++total;
      if (truth && answer == *truth) ++correct;
    }
  }
  state.counters["budget_frac_pct"] = 100.0 * budget_frac;
  state.counters["success_pct"] = 100.0 * correct / total;
}

BENCHMARK(BM_OneWayBudgetSuccess)
    ->ArgNames({"budget_pct"})
    ->Args({1})
    ->Args({10})
    ->Args({25})
    ->Args({50})
    ->Args({90})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Theorem 9's other side: run the Theorem 1 streaming solver on the LP that
// the TCI reduction produces (Figure 1b constraints in double precision,
// with a small Bob slope so coordinates stay double-safe). The measured
// pass/space trade-off on reduction instances is the upper-bound curve that
// Theorem 9's Omega(n^{1/2r}/r^3) space bound constrains from below.
void BM_StreamingOnTciReduction(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  Rng rng(0xEA7);
  lb::AugIndexInstance aug = lb::RandomAugIndex(bits, &rng);
  auto red = lb::BuildTciFromAugIndex(aug, Rational(3));
  auto lines = lb::TciToLines(red.tci);

  // y >= s x + t  <=>  s x - y <= -t ; objective: min y.
  std::vector<Halfspace> constraints;
  constraints.reserve(lines.size());
  for (const auto& l : lines) {
    constraints.push_back(Halfspace(
        Vec{l.slope.ToDouble(), -1.0}, -l.intercept.ToDouble()));
  }
  // Curve values grow ~ n^2, well past the default box: widen it.
  SolverConfig cfg;
  cfg.box_bound = 1e13;
  LinearProgram problem(Vec{0.0, 1.0}, cfg);

  stream::StreamingStats stats;
  size_t answer = 0;
  for (auto _ : state) {
    stream::VectorStream<Halfspace> s(constraints);
    stream::StreamingOptions opt;
    opt.r = r;
    opt.net.scale = 0.1;
    auto result = stream::SolveStreaming(problem, s, opt, &stats);
    if (!result.ok() || !result->value.feasible) {
      state.SkipWithError("solve failed");
      break;
    }
    answer = static_cast<size_t>(std::floor(result->value.point[0] + 1e-9));
  }
  auto expected = lb::TciAnswer(red.tci);
  state.counters["n_constraints"] = static_cast<double>(constraints.size());
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["peak_items"] = static_cast<double>(stats.peak_items);
  state.counters["answer_ok"] = (expected && answer == *expected) ? 1 : 0;
  // Index distance: double precision localizes the crossing only up to
  // ~tolerance/slope-gap at coordinate scale ~n^2 — the paper's
  // bit-complexity remark in action (the exact path is SolveTciViaLp).
  state.counters["answer_err"] =
      expected ? std::fabs(static_cast<double>(answer) -
                           static_cast<double>(*expected))
               : -1;
}

BENCHMARK(BM_StreamingOnTciReduction)
    ->ArgNames({"bits", "r"})
    ->Args({20000, 2})
    ->Args({20000, 3})
    ->Args({20000, 4})
    ->Args({100000, 3})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// Experiment E5 (Theorem 6): minimum enclosing ball / core vector machine in
// all three big-data models.

#include <benchmark/benchmark.h>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_MebStreaming(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const size_t d = static_cast<size_t>(state.range(2));
  Rng rng(0xE5 + n + r + d);
  auto pts = workload::SphereCloud(n, d, 50.0, 0.2, &rng);
  MinEnclosingBall problem(d);
  stream::StreamingStats stats;
  double radius = 0;
  for (auto _ : state) {
    stream::VectorStream<Vec> s(pts);
    stream::StreamingOptions opt;
    opt.r = r;
    opt.net.scale = 0.1;
    auto result = stream::SolveStreaming(problem, s, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    radius = result->value.ball.radius;
  }
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["peak_items"] = static_cast<double>(stats.peak_items);
  state.counters["peak_frac_pct"] = 100.0 * stats.peak_items / n;
  state.counters["radius"] = radius;
}

BENCHMARK(BM_MebStreaming)
    ->ArgNames({"n", "r", "d"})
    ->Args({100000, 2, 2})
    ->Args({100000, 3, 3})
    ->Args({300000, 3, 3})
    ->Args({100000, 3, 5})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MebCoordinator(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  Rng rng(0xE5C + n + k);
  auto pts = workload::GaussianCloud(n, 3, &rng);
  MinEnclosingBall problem(3);
  auto parts = workload::Partition(pts, k, true, &rng);
  coord::CoordinatorStats stats;
  for (auto _ : state) {
    coord::CoordinatorOptions opt;
    opt.r = 3;
    opt.net.scale = 0.1;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["KB"] = static_cast<double>(stats.total_bytes) / 1024.0;
}

BENCHMARK(BM_MebCoordinator)
    ->ArgNames({"n", "k"})
    ->Args({100000, 4})
    ->Args({100000, 32})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MebMpc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double delta = 1.0 / static_cast<double>(state.range(1));
  Rng rng(0xE5AB + n);
  auto pts = workload::GaussianCloud(n, 3, &rng);
  MinEnclosingBall problem(3);
  auto parts = workload::Partition(pts, 16, true, &rng);
  mpc::MpcStats stats;
  for (auto _ : state) {
    mpc::MpcOptions opt;
    opt.delta = delta;
    opt.net.scale = 0.1;
    auto result = mpc::SolveMpc(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["max_load_KB"] =
      static_cast<double>(stats.max_load_bytes) / 1024.0;
}

BENCHMARK(BM_MebMpc)
    ->ArgNames({"n", "inv_delta"})
    ->Args({100000, 2})
    ->Args({100000, 3})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// Experiment E6 (Section 1.1 comparisons): our streaming solver vs
// (a) classic Clarkson reweighting (rate 2, fixed sample), (b) the
// Chan-Chen-style 2-d prune-and-search baseline at an equal space budget,
// and (c) the one-shot tree-merge heuristic's error rate in the coordinator
// model. The paper's claim: Result 1 achieves exponentially fewer passes in
// d than [13] and improves the iteration count of classic reweighting.

#include <benchmark/benchmark.h>

#include "src/baselines/chan_chen_2d.h"
#include "src/baselines/clarkson_classic.h"
#include "src/baselines/tree_merge.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_OursStreaming(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  Rng rng(0xE6 + n);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  stream::StreamingStats stats;
  for (auto _ : state) {
    stream::VectorStream<Halfspace> s(inst.constraints);
    stream::StreamingOptions opt;
    opt.r = r;
    opt.net.scale = 0.1;
    auto result = stream::SolveStreaming(problem, s, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["peak_items"] = static_cast<double>(stats.peak_items);
}

BENCHMARK(BM_OursStreaming)
    ->ArgNames({"n", "r"})
    ->Args({200000, 2})
    ->Args({200000, 3})
    ->Args({200000, 4})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ClassicClarksonStreaming(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(0xE6 + n);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  stream::StreamingStats stats;
  for (auto _ : state) {
    stream::VectorStream<Halfspace> s(inst.constraints);
    auto opt = baselines::ClassicClarksonStreamingOptions(
        problem.CombinatorialDimension(), n, 0xE6);
    auto result = stream::SolveStreaming(problem, s, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["peak_items"] = static_cast<double>(stats.peak_items);
}

BENCHMARK(BM_ClassicClarksonStreaming)
    ->ArgNames({"n"})
    ->Args({200000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ChanChen2d(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t probes = static_cast<size_t>(state.range(1));
  Rng rng(0xE6CC + n);
  auto lines = workload::RandomEnvelopeLines(n, &rng);
  baselines::ChanChen2dStats stats;
  for (auto _ : state) {
    stream::VectorStream<baselines::Line2d> s(lines);
    baselines::ChanChen2dOptions opt;
    opt.probes = probes;
    opt.x_bound = 100;
    auto result = baselines::SolveChanChen2d(s, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["peak_items"] = static_cast<double>(stats.peak_items);
}

BENCHMARK(BM_ChanChen2d)
    ->ArgNames({"n", "probes"})
    ->Args({200000, 8})
    ->Args({200000, 64})
    ->Args({200000, 512})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_TreeMergeErrorRate(benchmark::State& state) {
  // One-shot basis-merge heuristic: cheap but inexact; measure its error
  // rate over random partitions (vs the exact iterated variant's rounds).
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  size_t wrong = 0;
  size_t iterated_rounds = 0;
  const int kTrials = 20;
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      Rng rng(0xE6AA + t);
      auto inst = workload::RandomFeasibleLp(n, 2, &rng);
      LinearProgram problem(inst.objective);
      auto parts = workload::Partition(inst.constraints, k, true, &rng);
      auto merged = baselines::TreeMergeOnce(problem, parts, nullptr);
      auto direct = problem.SolveValue(
          std::span<const Halfspace>(inst.constraints));
      if (problem.CompareValues(merged.value, direct) != 0) ++wrong;
      baselines::TreeMergeStats st;
      auto iterated = baselines::IteratedTreeMerge(problem, parts, &st);
      if (iterated.ok()) iterated_rounds += st.rounds;
    }
  }
  state.counters["one_shot_err_pct"] = 100.0 * wrong / kTrials;
  state.counters["iterated_rounds_avg"] =
      static_cast<double>(iterated_rounds) / kTrials;
}

BENCHMARK(BM_TreeMergeErrorRate)
    ->ArgNames({"n", "k"})
    ->Args({2000, 8})
    ->Args({2000, 64})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// Traffic-replay soak (src/workload/replay.h): one heavy recorded mix —
// Zipf-skewed tenants, kinds, and sizes over all six LP-type problems,
// tens of thousands of wire-encoded requests — replayed through the
// ShardedSolverService in-process and across a loopback socket daemon.
// The `jobs` / `failed` / `transcript_lo` / `request_KB` / `response_KB`
// counters are deterministic under the fixed seed and MUST NOT move with
// the shard count, submission style, or transport (`transcript_lo` is the
// low half of the replay's folded response-fingerprint hash, so one flipped
// result bit anywhere in the run trips the strict gate). The `_p50/_p90/
// _p99` latency counters come off the replay.job_seconds histogram and are
// wall-time valued — report-only for scripts/bench_compare.py.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <string>

#include "src/runtime/lp_client.h"
#include "src/runtime/lp_served.h"
#include "src/runtime/metrics.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/workload/replay.h"

namespace lplow {
namespace {

// The shared soak recording, built once outside every timed region.
const workload::RecordedWorkload& SoakMix() {
  static const workload::RecordedWorkload* mix = [] {
    workload::RecordOptions opt;
    opt.seed = 0x50AFC0DE;
    opt.num_jobs = 20000;
    opt.num_tenants = 256;
    opt.tenant_zipf_s = 1.1;
    opt.kind_zipf_s = 1.0;
    opt.size_zipf_s = 1.3;
    opt.base_constraints = 24;
    opt.size_classes = 4;
    return new workload::RecordedWorkload(workload::RecordWorkload(opt));
  }();
  return *mix;
}

void ExportReplayCounters(benchmark::State& state,
                          const workload::ReplayResult& result,
                          const runtime::MetricsRegistry& registry) {
  state.counters["jobs"] =
      static_cast<double>(result.jobs_ok + result.jobs_failed);
  state.counters["failed"] = static_cast<double>(result.jobs_failed);
  // Low 32 bits of the transcript hash: exactly representable in a double,
  // and any nondeterminism in any job's response bytes lands here.
  state.counters["transcript_lo"] =
      static_cast<double>(result.transcript_hash & 0xFFFFFFFFULL);
  state.counters["request_KB"] =
      static_cast<double>(SoakMix().request_bytes) / 1024.0;
  state.counters["response_KB"] =
      static_cast<double>(result.response_bytes) / 1024.0;
  const runtime::Histogram* lat =
      const_cast<runtime::MetricsRegistry&>(registry).GetHistogram(
          "replay.job_seconds");
  state.counters["job_p50"] = lat->Quantile(0.50);
  state.counters["job_p90"] = lat->Quantile(0.90);
  state.counters["job_p99"] = lat->Quantile(0.99);
}

void BM_ReplaySoakInProcess(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  const bool batch = state.range(2) != 0;
  SoakMix();  // Record outside the timed region.

  runtime::MetricsRegistry registry;
  workload::ReplayResult result;
  for (auto _ : state) {
    runtime::ShardedSolverService::Options sopt;
    sopt.num_shards = shards;
    sopt.threads_per_shard = threads;
    sopt.metrics = &registry;
    runtime::ShardedSolverService service(sopt);
    workload::ReplayOptions ropt;
    ropt.metrics = &registry;
    ropt.batch = batch;
    result = workload::Replay(SoakMix(), &service, ropt);
    benchmark::DoNotOptimize(result.transcript_hash);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(SoakMix().jobs.size()) * state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = batch ? 1.0 : 0.0;
  ExportReplayCounters(state, result, registry);
}

BENCHMARK(BM_ReplaySoakInProcess)
    ->ArgNames({"shards", "threads", "batch"})
    ->Args({1, 2, 0})
    ->Args({2, 2, 0})
    ->Args({4, 2, 0})
    ->Args({4, 2, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The same soak across a loopback Unix socket: every request is served by
// an in-process lp_served daemon through SocketSolveBackend's serialized
// path. transcript_lo / response_KB must equal the in-process lane — the
// transport moves the bytes, never the transcript — so the lane prices
// exactly the wire framing + socket hops; remote_jobs pins that no job
// quietly fell back to the local serve.
void BM_ReplaySoakLoopbackSocket(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  SoakMix();

  const std::string socket_path = "/tmp/lplow_replay_soak_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(shards) + ".sock";
  runtime::MetricsRegistry registry;
  runtime::MetricsRegistry daemon_registry;
  workload::ReplayResult result;
  for (auto _ : state) {
    runtime::SolveDaemon::Options dopt;
    dopt.socket_path = socket_path;
    dopt.num_shards = shards;
    dopt.threads_per_shard = 2;
    dopt.metrics = &daemon_registry;
    auto daemon = runtime::SolveDaemon::Start(dopt);
    if (!daemon.ok()) {
      state.SkipWithError("daemon start failed");
      break;
    }
    runtime::SocketSolveBackend::Options copt;
    copt.endpoints = {socket_path};
    copt.metrics = &registry;
    auto client = runtime::SocketSolveBackend::Create(copt);
    if (!client.ok()) {
      state.SkipWithError("client create failed");
      break;
    }
    runtime::ShardedSolverService::Options sopt;
    sopt.num_shards = shards;
    sopt.threads_per_shard = 2;
    sopt.metrics = &registry;
    runtime::ShardedSolverService service(sopt);
    workload::ReplayOptions ropt;
    ropt.backend = client->get();
    ropt.metrics = &registry;
    result = workload::Replay(SoakMix(), &service, ropt);
    benchmark::DoNotOptimize(result.transcript_hash);
    (*daemon)->Shutdown();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(SoakMix().jobs.size()) * state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["remote_jobs"] = static_cast<double>(result.remote_jobs);
  state.counters["local_fallbacks"] =
      static_cast<double>(result.local_serves);
  ExportReplayCounters(state, result, registry);
  state.counters["rtt_p99"] =
      registry.GetHistogram("wire.client.rtt_seconds")->Quantile(0.99);
}

BENCHMARK(BM_ReplaySoakLoopbackSocket)
    ->ArgNames({"shards"})
    ->Args({2})
    ->Args({4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// Thread-scaling of the concurrent execution runtime (src/runtime): the
// same protocols, the same byte-exact communication totals, wall-clock vs
// RuntimeOptions::num_threads. Coordinator and MPC site emulation should
// approach linear speedup while k >= num_threads (sites are independent
// between round barriers); SolverService throughput measures the
// heavy-traffic many-jobs scenario. The `pool_threads` counter is reported
// so bench_compare.py can pair runs (named to dodge Google Benchmark's
// built-in `threads` field, which bench_compare ignores); `KB`/`rounds`
// must not vary with threads (the determinism guarantee).

#include <benchmark/benchmark.h>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/solver_service.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_CoordinatorThreadScaling(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const size_t threads = static_cast<size_t>(state.range(2));
  Rng rng(0x5CA1E + n + 7 * k);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, k, true, &rng);

  coord::CoordinatorStats stats;
  for (auto _ : state) {
    coord::CoordinatorOptions opt;
    opt.r = 3;
    opt.net.scale = 0.1;
    opt.seed = 0x5CA1E;
    opt.runtime.num_threads = threads;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["pool_threads"] = static_cast<double>(stats.threads);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["KB"] = static_cast<double>(stats.total_bytes) / 1024.0;
}

BENCHMARK(BM_CoordinatorThreadScaling)
    ->ArgNames({"n", "k", "threads"})
    ->Args({300000, 64, 1})
    ->Args({300000, 64, 2})
    ->Args({300000, 64, 4})
    ->Args({300000, 64, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_MpcThreadScaling(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t machines = static_cast<size_t>(state.range(1));
  const size_t threads = static_cast<size_t>(state.range(2));
  Rng rng(0x3CA1E + n);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, machines, true, &rng);

  mpc::MpcStats stats;
  for (auto _ : state) {
    mpc::MpcOptions opt;
    opt.delta = 0.5;
    opt.net.scale = 0.1;
    opt.machines = machines;
    opt.seed = 0x3CA1E;
    opt.runtime.num_threads = threads;
    auto result = mpc::SolveMpc(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["pool_threads"] = static_cast<double>(stats.threads);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["KB"] = static_cast<double>(stats.total_bytes) / 1024.0;
  state.counters["max_load_KB"] =
      static_cast<double>(stats.max_load_bytes) / 1024.0;
}

BENCHMARK(BM_MpcThreadScaling)
    ->ArgNames({"n", "machines", "threads"})
    ->Args({300000, 64, 1})
    ->Args({300000, 64, 2})
    ->Args({300000, 64, 4})
    ->Args({300000, 64, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Heavy traffic: `jobs` independent coordinator-LP requests drain through a
// SolverService pool of `threads` workers; the rate counter is jobs/sec.
void BM_SolverServiceThroughput(benchmark::State& state) {
  const size_t jobs = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  Rng rng(0x70B);
  auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 8, true, &rng);

  for (auto _ : state) {
    runtime::SolverService::Options sopt;
    sopt.num_threads = threads;
    runtime::SolverService service(sopt);
    for (size_t j = 0; j < jobs; ++j) {
      service.Submit("bench_lp", [&problem, &parts, j] {
        coord::CoordinatorOptions opt;
        opt.net.scale = 0.1;
        opt.seed = 0x70B + j;
        return coord::SolveCoordinator(problem, parts, opt, nullptr).ok();
      });
    }
    service.Drain();
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs) * state.iterations());
  state.counters["pool_threads"] = static_cast<double>(threads);
}

BENCHMARK(BM_SolverServiceThroughput)
    ->ArgNames({"jobs", "threads"})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({64, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace lplow

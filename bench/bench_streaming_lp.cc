// Experiment E1 (Result 1 / Theorem 4, streaming row): d-dimensional linear
// programming with n constraints in the multi-pass streaming model —
// measured passes and peak space against the predicted O(d r) passes and
// O~(d^3 n^{1/r}) space.
//
// Counters per run:
//   passes          measured stream passes
//   passes_bound    (20/9) nu r + 1 (Lemma 3.3 + pipelining)
//   peak_items      peak constraints held simultaneously
//   peak_frac_pct   peak / n * 100 (sublinearity)
//   sample_m        eps-net size per iteration (the n^{1/r} term)
//   iters           Algorithm 1 iterations

#include <benchmark/benchmark.h>

#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_StreamingLp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const size_t d = static_cast<size_t>(state.range(2));
  Rng rng(0xE1 + n + 31 * r + 7 * d);
  auto inst = workload::RandomFeasibleLp(n, d, &rng);
  LinearProgram problem(inst.objective);

  stream::StreamingStats stats;
  for (auto _ : state) {
    stream::VectorStream<Halfspace> s(inst.constraints);
    stream::StreamingOptions opt;
    opt.r = r;
    // Laptop-scale constant regime (see EXPERIMENTS.md); higher dimensions
    // need more of the Claim 3.2 sampling budget.
    opt.net.scale = d <= 3 ? 0.1 : 0.3;
    opt.seed = 0xE1;
    auto result = stream::SolveStreaming(problem, s, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  const size_t nu = problem.CombinatorialDimension();
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["passes_bound"] = 20.0 * nu * r / 9.0 + 1;
  state.counters["peak_items"] = static_cast<double>(stats.peak_items);
  state.counters["peak_frac_pct"] = 100.0 * stats.peak_items / n;
  state.counters["sample_m"] = static_cast<double>(stats.sample_size);
  state.counters["iters"] = static_cast<double>(stats.iterations);
}

BENCHMARK(BM_StreamingLp)
    ->ArgNames({"n", "r", "d"})
    // n sweep at r=2, d=2.
    ->Args({30000, 2, 2})
    ->Args({100000, 2, 2})
    ->Args({300000, 2, 2})
    ->Args({1000000, 2, 2})
    // r sweep at n=300k, d=2 (the pass/space trade-off of Result 1).
    ->Args({300000, 1, 2})
    ->Args({300000, 3, 2})
    ->Args({300000, 4, 2})
    // d sweep at n=100k, r=3 (pass count grows linearly in d, not
    // exponentially as in Chan-Chen).
    ->Args({100000, 3, 3})
    ->Args({100000, 3, 4})
    ->Args({100000, 3, 5})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

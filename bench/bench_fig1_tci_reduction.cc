// Experiment E11 (Figure 1a/1b): the two-curve intersection problem and its
// reduction to 2-d linear programming. Regenerates the figure's content —
// a TCI instance, its crossing index, the LP's fractional optimum — and
// verifies floor(x*) == answer over many random instances (the figure's
// caption as a theorem).

#include <benchmark/benchmark.h>

#include "src/lowerbound/aug_index.h"
#include "src/lowerbound/tci_to_lp.h"
#include "src/util/rng.h"

namespace lplow {
namespace {

void BM_Fig1Reduction(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  Rng rng(0xF1);
  size_t checked = 0, matched = 0;
  double example_x = 0;
  size_t example_answer = 0;
  for (auto _ : state) {
    for (int t = 0; t < 50; ++t) {
      lb::AugIndexInstance aug = lb::RandomAugIndex(bits, &rng);
      auto red = lb::BuildTciFromAugIndex(
          aug, Rational(2 + rng.UniformInt(0, 30)));
      auto lp = lb::SolveTciViaLp(red.tci);
      if (!lp.ok()) {
        state.SkipWithError("LP failed");
        break;
      }
      auto ans = lb::TciAnswer(red.tci);
      ++checked;
      if (ans && lp->index == *ans) ++matched;
      example_x = lp->x.ToDouble();
      example_answer = ans.value_or(0);
    }
  }
  state.counters["n"] = static_cast<double>(bits + 2);
  state.counters["instances"] = static_cast<double>(checked);
  state.counters["floor_matches_pct"] =
      checked ? 100.0 * matched / checked : 0;
  state.counters["example_lp_x"] = example_x;
  state.counters["example_answer"] = static_cast<double>(example_answer);
}

BENCHMARK(BM_Fig1Reduction)
    ->ArgNames({"bits"})
    ->Args({5})    // The paper's n = 7 illustration scale.
    ->Args({20})
    ->Args({100})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

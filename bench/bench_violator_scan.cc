// Violator-scan microbenchmark: the SIMD SoA fast path against the serial
// predicate path across dimension × size × ScanStrategy, plus the fused
// scan-and-reweight (the engine's "evaluate the predicate once per
// iteration" optimization).
//
// Counter discipline (scripts/bench_compare.py): `violators`, `viol_weight`,
// and `fused` are deterministic on EVERY ISA and strategy — the kernels'
// violation bitmaps are bitwise-equal to the scalar predicate, and fusion
// keys on exact query bytes — so they are strict-gated by the bench-perf CI
// job. Which kernel variant dispatch picks is machine-dependent (CPU
// features, LPLOW_FORCE_SCALAR_SCAN), so the vector-block / scalar-lane
// tallies ride as report-only `_rpt` counters, like the timings.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <span>

#include "src/engine/constraint_store.h"
#include "src/engine/scan_kernel.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

// state.range(2) values (keep in sync with runtime::ScanStrategy — the enum
// is part of the RuntimeOptions API and these are its integral values).
constexpr int64_t kSerial =
    static_cast<int64_t>(runtime::ScanStrategy::kSerial);
constexpr int64_t kPoolBitmap =
    static_cast<int64_t>(runtime::ScanStrategy::kPoolBitmap);
constexpr int64_t kSimd = static_cast<int64_t>(runtime::ScanStrategy::kSimd);
constexpr int64_t kSimdPool =
    static_cast<int64_t>(runtime::ScanStrategy::kSimdPool);

void BM_LpViolatorScan(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const auto strategy = static_cast<runtime::ScanStrategy>(state.range(2));

  Rng rng(0x5CA9 + 31 * dim + n);
  auto inst = workload::RandomFeasibleLp(n, dim, &rng);
  LinearProgram problem(inst.objective);
  engine::ConstraintStore<Halfspace> store;
  for (auto& c : inst.constraints) store.Append(std::move(c));

  // Scan against the optimum of a small prefix: feasible there, violated by
  // a healthy fraction of the rest, so the scan has real work to count.
  auto seed = problem.SolveBasis(std::span<const Halfspace>(
      store.items().data(), std::min(n, 3 * dim + 1)));

  const bool wants_pool = strategy == runtime::ScanStrategy::kPoolBitmap ||
                          strategy == runtime::ScanStrategy::kSimdPool;
  runtime::ThreadPool pool(2);
  engine::ScanOptions opts{wants_pool ? &pool : nullptr, strategy};

  auto& metrics = engine::GlobalScanMetrics();
  const uint64_t fused0 = metrics.fused_reweights->value();
  const uint64_t blocks0 = metrics.simd_blocks->value();
  const uint64_t tail0 = metrics.scalar_tail->value();

  engine::ViolatorStats stats;
  for (auto _ : state) {
    auto view = store.View();
    stats = view.ScanViolators(problem, seed.value, opts);
    // Same value again: on the kernel strategies this reweight is served
    // from the scan's bitmap (the fused path); the predicate strategies
    // re-evaluate every constraint.
    view.ScaleViolatorsFused(problem, seed.value, 2.0, opts);
    benchmark::DoNotOptimize(stats);
  }

  state.counters["violators"] = static_cast<double>(stats.count);
  state.counters["viol_weight"] = stats.weight;
  state.counters["fused"] =
      static_cast<double>(metrics.fused_reweights->value() - fused0);
  state.counters["simd_blocks_rpt"] =
      static_cast<double>(metrics.simd_blocks->value() - blocks0);
  state.counters["scalar_tail_rpt"] =
      static_cast<double>(metrics.scalar_tail->value() - tail0);
}

BENCHMARK(BM_LpViolatorScan)
    ->ArgNames({"d", "n", "strat"})
    // Strategy sweep: identical violators/viol_weight on every row is the
    // bit-identity claim; only `fused` and the times differ.
    ->Args({8, 65536, kSerial})
    ->Args({8, 65536, kPoolBitmap})
    ->Args({8, 65536, kSimd})
    ->Args({8, 65536, kSimdPool})
    // Size sweep (straddles kParallelScanMinItems and the SoA block width).
    ->Args({8, 1000, kSimd})
    ->Args({8, 8192, kSimd})
    // Dimension sweep (lane-per-constraint: cost scales with d, the
    // bitmap does not).
    ->Args({2, 65536, kSimd})
    ->Args({13, 65536, kSimd})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// End-to-end: a coordinator LP solve on the default (kAuto) strategy. The
// strict-gated `rounds`/`iters` must match bench_coordinator_lp's behavior
// exactly (fusion must not change the transcript), while `fused` > 0 shows
// the R1 reweights really are served from the R3 scan bitmaps.
void BM_LpCoordinatorFusedScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(0xE2 + n + 31 * 3 + 7 * 4);  // mirror bench_coordinator_lp's seed
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 4, true, &rng);

  auto& metrics = engine::GlobalScanMetrics();
  const uint64_t fused0 = metrics.fused_reweights->value();

  coord::CoordinatorStats stats;
  for (auto _ : state) {
    coord::CoordinatorOptions opt;
    opt.r = 3;
    opt.net.scale = 0.1;
    opt.seed = 0xE2;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }

  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["iters"] = static_cast<double>(stats.iterations);
  state.counters["fused"] =
      static_cast<double>(metrics.fused_reweights->value() - fused0);
}

BENCHMARK(BM_LpCoordinatorFusedScan)
    ->ArgNames({"n"})
    ->Args({100000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

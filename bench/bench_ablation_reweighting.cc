// Experiment E13 (ablation of Section 3.1's design choices): the paper's
// n^{1/r} weight-increase rate versus the classic doubling rate, at matched
// sample sizes — isolating exactly the reweighting change that buys the
// exponentially smaller pass count; plus the Monte Carlo (Remark 3.6)
// failure behaviour.

#include <benchmark/benchmark.h>

#include "src/core/clarkson.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_ReweightingRate(benchmark::State& state) {
  const size_t n = 200000;
  const bool paper_rate = state.range(0) == 1;
  const int r = 3;
  Rng rng(0xEB);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);

  size_t iters = 0, success = 0, runs = 0;
  ClarksonStats stats;
  for (auto _ : state) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      ClarksonOptions opt;
      opt.r = r;
      opt.net.scale = 0.1;
      // Same sample size for both arms; only the rate differs.
      if (!paper_rate) opt.weight_rate_override = 2.0;
      opt.max_iterations = 3000;
      opt.seed = 0xEB00 + seed;
      auto result = ClarksonSolve(
          problem, std::span<const Halfspace>(inst.constraints), opt, &stats);
      if (!result.ok()) state.SkipWithError("solve failed");
      iters += stats.iterations;
      success += stats.successful_iterations;
      ++runs;
    }
  }
  state.counters["rate_is_paper"] = paper_rate ? 1 : 0;
  state.counters["iters_avg"] = static_cast<double>(iters) / runs;
  state.counters["success_avg"] = static_cast<double>(success) / runs;
}

BENCHMARK(BM_ReweightingRate)
    ->ArgNames({"paper_rate"})
    ->Args({1})   // n^{1/r} (this paper).
    ->Args({0})   // x2 (classic Clarkson/Welzl).
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MonteCarloFailureRate(benchmark::State& state) {
  // Remark 3.6: the Monte Carlo variant declares FAIL instead of retrying;
  // measure its failure rate as the sample shrinks.
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(0xEB2C);
  auto inst = workload::RandomFeasibleLp(100000, 2, &rng);
  LinearProgram problem(inst.objective);
  size_t failures = 0, runs = 0;
  for (auto _ : state) {
    for (uint64_t seed = 0; seed < 10; ++seed) {
      ClarksonOptions opt;
      opt.r = 3;
      opt.net.scale = scale;
      opt.monte_carlo = true;
      opt.seed = 0xEB11 + seed;
      auto result = ClarksonSolve(
          problem, std::span<const Halfspace>(inst.constraints), opt,
          nullptr);
      if (!result.ok()) ++failures;
      ++runs;
    }
  }
  state.counters["mc_failure_pct"] = 100.0 * failures / runs;
}

BENCHMARK(BM_MonteCarloFailureRate)
    ->ArgNames({"scale_pct"})
    ->Args({100})
    ->Args({10})
    ->Args({2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// The sampling-free deterministic model: iterations and merge traffic for
// LP vs n, r, and the number of blocks b — the RNG-free baseline for the
// randomized bounds (compare bench_coordinator_lp on the same axes).
//
// Every counter here is deterministic BY CONSTRUCTION, not merely under a
// fixed seed — the model has no seed — so all of them are gated exactly by
// the bench-perf CI job (bench_compare.py --strict-counters).

#include <benchmark/benchmark.h>

#include "src/models/deterministic/deterministic_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_DeterministicLp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const size_t b = static_cast<size_t>(state.range(2));
  // The instance generator is seeded; the solver draws nothing.
  Rng rng(0xDE7 + n + 31 * r + 7 * b);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, b, false, nullptr);

  det::DeterministicStats stats;
  for (auto _ : state) {
    det::DeterministicOptions opt;
    opt.r = r;
    opt.net.scale = 0.1;
    auto result = det::SolveDeterministic(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  size_t ship_all = 0;
  for (const auto& c : inst.constraints) {
    ship_all += problem.ConstraintBytes(c);
  }
  const size_t traffic = stats.candidate_bytes + stats.broadcast_bytes;
  state.counters["iters"] = static_cast<double>(stats.iterations);
  state.counters["ok_iters"] =
      static_cast<double>(stats.successful_iterations);
  state.counters["merge_rounds"] = static_cast<double>(stats.merge_rounds);
  state.counters["cand_KB"] = static_cast<double>(stats.candidate_bytes) / 1024.0;
  state.counters["bcast_KB"] =
      static_cast<double>(stats.broadcast_bytes) / 1024.0;
  state.counters["resample_KB"] =
      static_cast<double>(stats.sample_bytes) / 1024.0;
  state.counters["ship_all_KB"] = static_cast<double>(ship_all) / 1024.0;
  state.counters["vs_ship_pct"] = 100.0 * traffic / ship_all;
}

BENCHMARK(BM_DeterministicLp)
    ->ArgNames({"n", "r", "b"})
    // n sweep (mirror bench_coordinator_lp's axes).
    ->Args({30000, 3, 4})
    ->Args({100000, 3, 4})
    ->Args({300000, 3, 4})
    // r sweep (merge window shrinks as n^{1/r}; iterations grow).
    ->Args({100000, 2, 4})
    ->Args({100000, 4, 4})
    // b sweep (candidate traffic grows with the block count).
    ->Args({100000, 3, 2})
    ->Args({100000, 3, 16})
    ->Args({100000, 3, 64})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

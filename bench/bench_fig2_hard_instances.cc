// Experiment E12 (Figure 2a/2b): the EvenInstance / OddInstance recursive
// constructions. Regenerates the figure's content — stitched instances at
// even and odd recursion depths — and reports the executable versions of
// Propositions 5.7-5.10 (validity + embedded answer) plus the bit-complexity
// growth the paper's closing remark predicts (slopes N^{O(r)}).

#include <benchmark/benchmark.h>

#include "src/lowerbound/hard_instance.h"
#include "src/util/rng.h"

namespace lplow {
namespace {

void BM_Fig2HardInstances(benchmark::State& state) {
  const size_t base_n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  size_t valid = 0, answer_ok = 0, total = 0;
  size_t max_bits = 0;
  size_t build_ms_n = 0;
  for (auto _ : state) {
    for (uint64_t seed = 0; seed < 10; ++seed) {
      lb::HardInstanceOptions opt;
      opt.base_n = base_n;
      opt.rounds = r;
      Rng rng(0xF2 + seed);
      lb::HardInstance h = lb::BuildHardInstance(opt, &rng);
      ++total;
      if (lb::ValidateTci(h.tci).ok()) ++valid;
      auto ans = lb::TciAnswer(h.tci);
      if (ans && *ans == h.expected_answer) ++answer_ok;
      for (const auto& v : h.tci.a) {
        max_bits = std::max(max_bits, v.BitLength());
      }
      build_ms_n = h.tci.n();
    }
  }
  state.counters["n"] = static_cast<double>(build_ms_n);
  state.counters["valid_pct"] = total ? 100.0 * valid / total : 0;
  state.counters["answer_ok_pct"] = total ? 100.0 * answer_ok / total : 0;
  state.counters["max_coord_bits"] = static_cast<double>(max_bits);
}

BENCHMARK(BM_Fig2HardInstances)
    ->ArgNames({"N", "r"})
    ->Args({6, 1})
    ->Args({6, 2})   // EvenInstance (Figure 2a).
    ->Args({6, 3})   // OddInstance (Figure 2b).
    ->Args({6, 4})
    ->Args({10, 2})
    ->Args({16, 2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// Experiment E3 (Theorem 4, MPC row): rounds and per-machine load for LP in
// the MPC model vs delta and n. Theorem 3 predicts O(nu/delta^2) rounds with
// O~(d^3 n^delta) load per machine.

#include <benchmark/benchmark.h>

#include "src/models/mpc/mpc_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_MpcLp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double delta = 1.0 / static_cast<double>(state.range(1));
  Rng rng(0xE3 + n + 31 * state.range(1));
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 16, true, &rng);

  mpc::MpcStats stats;
  for (auto _ : state) {
    mpc::MpcOptions opt;
    opt.delta = delta;
    opt.net.scale = 0.1;
    opt.seed = 0xE3;
    auto result = mpc::SolveMpc(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  size_t input_bytes = 0;
  for (const auto& c : inst.constraints) {
    input_bytes += problem.ConstraintBytes(c);
  }
  const size_t nu = problem.CombinatorialDimension();
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["rounds_bound"] = static_cast<double>(nu) / (delta * delta);
  state.counters["machines"] = static_cast<double>(stats.machines);
  state.counters["max_load_KB"] =
      static_cast<double>(stats.max_load_bytes) / 1024.0;
  state.counters["load_frac_pct"] =
      100.0 * stats.max_load_bytes / input_bytes;
  state.counters["iters"] = static_cast<double>(stats.iterations);
  // Engine counters (deterministic under fixed seeds; gated by the
  // bench-perf CI job via bench_compare.py --strict-counters).
  state.counters["ok_iters"] =
      static_cast<double>(stats.successful_iterations);
  state.counters["resample_KB"] =
      static_cast<double>(stats.sample_bytes) / 1024.0;
}

BENCHMARK(BM_MpcLp)
    ->ArgNames({"n", "inv_delta"})
    // delta sweep at n=100k: delta = 1/2, 1/3, 1/4.
    ->Args({100000, 2})
    ->Args({100000, 3})
    ->Args({100000, 4})
    // n sweep at delta = 1/2.
    ->Args({30000, 2})
    ->Args({300000, 2})
    ->Args({1000000, 2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

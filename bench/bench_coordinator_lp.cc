// Experiment E2 (Theorem 4, coordinator row): rounds and total communication
// for LP in the coordinator model vs n, r, and the number of sites k.
// Theorem 2 predicts O(nu r) rounds and O~(d^4 n^{1/r} + d^3 k) bits.

#include <benchmark/benchmark.h>

#include "src/baselines/ship_all.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_CoordinatorLp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const size_t k = static_cast<size_t>(state.range(2));
  Rng rng(0xE2 + n + 31 * r + 7 * k);
  auto inst = workload::RandomFeasibleLp(n, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, k, true, &rng);

  coord::CoordinatorStats stats;
  for (auto _ : state) {
    coord::CoordinatorOptions opt;
    opt.r = r;
    opt.net.scale = 0.1;
    opt.seed = 0xE2;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  size_t ship_all = 0;
  for (const auto& c : inst.constraints) {
    ship_all += problem.ConstraintBytes(c);
  }
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["iters"] = static_cast<double>(stats.iterations);
  state.counters["KB"] = static_cast<double>(stats.total_bytes) / 1024.0;
  state.counters["ship_all_KB"] = static_cast<double>(ship_all) / 1024.0;
  state.counters["vs_ship_pct"] = 100.0 * stats.total_bytes / ship_all;
  // Engine counters (deterministic under fixed seeds; gated by the
  // bench-perf CI job via bench_compare.py --strict-counters).
  state.counters["ok_iters"] =
      static_cast<double>(stats.successful_iterations);
  state.counters["resample_KB"] =
      static_cast<double>(stats.sample_bytes) / 1024.0;
}

BENCHMARK(BM_CoordinatorLp)
    ->ArgNames({"n", "r", "k"})
    // n sweep.
    ->Args({30000, 3, 4})
    ->Args({100000, 3, 4})
    ->Args({300000, 3, 4})
    // r sweep (communication falls as n^{1/r}; rounds grow linearly).
    ->Args({100000, 2, 4})
    ->Args({100000, 4, 4})
    // k sweep (the +k term of Theorem 2).
    ->Args({100000, 3, 2})
    ->Args({100000, 3, 16})
    ->Args({100000, 3, 64})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

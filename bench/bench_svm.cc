// Experiment E4 (Theorem 5): hard-margin linear SVM in all three big-data
// models — passes/rounds, space/communication/load, against the same
// predictions as LP (nu = lambda = d + 1).

#include <benchmark/benchmark.h>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_svm.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

std::vector<SvmPoint> MakeData(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  return workload::SeparableSvmData(n, d, 0.4, &rng);
}

void BM_SvmStreaming(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const size_t d = static_cast<size_t>(state.range(2));
  auto pts = MakeData(n, d, 0xE4 + n + r);
  LinearSvm problem(d);
  stream::StreamingStats stats;
  for (auto _ : state) {
    stream::VectorStream<SvmPoint> s(pts);
    stream::StreamingOptions opt;
    opt.r = r;
    opt.net.scale = 0.1;
    auto result = stream::SolveStreaming(problem, s, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["peak_items"] = static_cast<double>(stats.peak_items);
  state.counters["peak_frac_pct"] = 100.0 * stats.peak_items / n;
}

BENCHMARK(BM_SvmStreaming)
    ->ArgNames({"n", "r", "d"})
    ->Args({30000, 2, 2})
    ->Args({100000, 2, 2})
    ->Args({100000, 3, 2})
    ->Args({100000, 3, 3})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SvmCoordinator(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  auto pts = MakeData(n, 2, 0xE4C + n + k);
  LinearSvm problem(2);
  Rng rng(1);
  auto parts = workload::Partition(pts, k, true, &rng);
  coord::CoordinatorStats stats;
  for (auto _ : state) {
    coord::CoordinatorOptions opt;
    opt.r = 3;
    opt.net.scale = 0.1;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["KB"] = static_cast<double>(stats.total_bytes) / 1024.0;
}

BENCHMARK(BM_SvmCoordinator)
    ->ArgNames({"n", "k"})
    ->Args({100000, 4})
    ->Args({100000, 16})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SvmMpc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double delta = 1.0 / static_cast<double>(state.range(1));
  auto pts = MakeData(n, 2, 0xE4AB + n);
  LinearSvm problem(2);
  Rng rng(1);
  auto parts = workload::Partition(pts, 16, true, &rng);
  mpc::MpcStats stats;
  for (auto _ : state) {
    mpc::MpcOptions opt;
    opt.delta = delta;
    opt.net.scale = 0.1;
    auto result = mpc::SolveMpc(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["max_load_KB"] =
      static_cast<double>(stats.max_load_bytes) / 1024.0;
  state.counters["machines"] = static_cast<double>(stats.machines);
}

BENCHMARK(BM_SvmMpc)
    ->ArgNames({"n", "inv_delta"})
    ->Args({100000, 2})
    ->Args({100000, 3})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace lplow

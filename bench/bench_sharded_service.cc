// Shard-scaling of the ShardedSolverService (src/runtime): the same job
// mix, wall-clock vs shard count, for both submission styles (per-job
// Submit vs coalesced BatchSubmit), plus the engine's SolveBackend seam
// under a shard sweep — in-process and across a loopback Unix socket
// (lp_served daemon + SocketSolveBackend). The `jobs` / `batches` /
// `routed_solves` / `remote_solves` counters are deterministic under the
// fixed seeds; `rounds`/`KB` of the backend sweeps must not vary with the
// shard count or the transport (the determinism contract of
// docs/runtime.md §"Sharded solver backend" and §"Wire protocol").

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/lp_client.h"
#include "src/runtime/lp_served.h"
#include "src/runtime/metrics.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

// One fixed coordinator-LP request mix shared by the throughput benches.
struct JobMix {
  LinearProgram problem;
  std::vector<std::vector<Halfspace>> parts;

  static const JobMix& Get() {
    static const JobMix* mix = [] {
      Rng rng(0x5AADED);
      auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
      auto* m = new JobMix{LinearProgram(inst.objective), {}};
      m->parts = workload::Partition(inst.constraints, 8, true, &rng);
      return m;
    }();
    return *mix;
  }
};

bool RunOneJob(size_t j) {
  const JobMix& mix = JobMix::Get();
  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 0x5AADED + j;
  return coord::SolveCoordinator(mix.problem, mix.parts, opt, nullptr).ok();
}

void BM_ShardedSubmitThroughput(benchmark::State& state) {
  const size_t jobs = static_cast<size_t>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  JobMix::Get();  // Build the instance outside the timed region.

  uint64_t completed = 0;
  for (auto _ : state) {
    runtime::ShardedSolverService::Options sopt;
    sopt.num_shards = shards;
    sopt.threads_per_shard = 2;
    runtime::ShardedSolverService service(sopt);
    for (size_t j = 0; j < jobs; ++j) {
      service.Submit(static_cast<uint64_t>(j), "bench_lp",
                     [j] { return RunOneJob(j); });
    }
    service.Drain();
    completed = service.total_stats().completed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs) * state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["jobs"] = static_cast<double>(completed);
}

BENCHMARK(BM_ShardedSubmitThroughput)
    ->ArgNames({"jobs", "shards"})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_ShardedBatchSubmitThroughput(benchmark::State& state) {
  const size_t jobs = static_cast<size_t>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  JobMix::Get();

  uint64_t batches = 0;
  for (auto _ : state) {
    runtime::ShardedSolverService::Options sopt;
    sopt.num_shards = shards;
    sopt.threads_per_shard = 2;
    runtime::ShardedSolverService service(sopt);
    std::vector<std::pair<uint64_t, std::function<bool()>>> batch;
    batch.reserve(jobs);
    for (size_t j = 0; j < jobs; ++j) {
      batch.emplace_back(static_cast<uint64_t>(j),
                         [j] { return RunOneJob(j); });
    }
    auto futures = service.BatchSubmit("bench_lp_batch", std::move(batch));
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
    service.Drain();
    batches = service.total_stats().batches;
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs) * state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batches"] = static_cast<double>(batches);
}

BENCHMARK(BM_ShardedBatchSubmitThroughput)
    ->ArgNames({"jobs", "shards"})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The engine seam under a shard sweep: one big coordinator solve routing
// every basis solve through the sharded backend. rounds/KB must be
// identical at every shard count; routed_solves counts the dispatches.
void BM_SolveBackendShardSweep(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  Rng rng(0xBACE);
  auto inst = workload::RandomFeasibleLp(300000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 64, true, &rng);

  coord::CoordinatorStats stats;
  runtime::MetricsRegistry registry;
  uint64_t routed = 0;
  for (auto _ : state) {
    runtime::ShardedSolverService::Options sopt;
    sopt.num_shards = shards;
    sopt.threads_per_shard = 2;
    sopt.metrics = &registry;
    runtime::ShardedSolverService service(sopt);
    coord::CoordinatorOptions opt;
    opt.r = 3;
    opt.net.scale = 0.1;
    opt.seed = 0xBACE;
    opt.runtime.num_threads = 2;
    opt.runtime.solver_backend = &service;
    opt.runtime.oversized_basis_threshold = 1;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
    routed = service.total_stats().solves;
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["KB"] = static_cast<double>(stats.total_bytes) / 1024.0;
  state.counters["routed_solves"] = static_cast<double>(routed);
  // Shard latency distribution (docs/runtime.md §"Tracing and histograms").
  // The _p99 suffix marks these report-only for scripts/bench_compare.py —
  // wall-time-derived, machine-dependent, never gated.
  state.counters["queue_wait_p99"] =
      registry.GetHistogram("service.shard.queue_wait_seconds")->Quantile(0.99);
  state.counters["execute_p99"] =
      registry.GetHistogram("service.shard.execute_seconds")->Quantile(0.99);
}

BENCHMARK(BM_SolveBackendShardSweep)
    ->ArgNames({"shards"})
    ->Args({1})
    ->Args({2})
    ->Args({4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The same sweep across the process boundary: an in-process lp_served
// daemon on a loopback Unix socket, the engine dispatching through
// SocketSolveBackend (serialize job -> frame -> daemon shard -> frame ->
// deserialize result). rounds/KB must equal the in-process lane above at
// every shard count — the transport moves the work, never the transcript —
// so the lane prices exactly the wire + socket overhead.
void BM_LoopbackSolveBackendShardSweep(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  Rng rng(0xBACE);
  auto inst = workload::RandomFeasibleLp(300000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 64, true, &rng);

  const std::string socket_path = "/tmp/lplow_bench_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(shards) + ".sock";
  coord::CoordinatorStats stats;
  runtime::MetricsRegistry daemon_registry;
  runtime::MetricsRegistry client_registry;
  uint64_t remote = 0, fallbacks = 0;
  for (auto _ : state) {
    runtime::SolveDaemon::Options dopt;
    dopt.socket_path = socket_path;
    dopt.num_shards = shards;
    dopt.threads_per_shard = 2;
    dopt.metrics = &daemon_registry;
    auto daemon = runtime::SolveDaemon::Start(dopt);
    if (!daemon.ok()) {
      state.SkipWithError("daemon start failed");
      break;
    }
    runtime::SocketSolveBackend::Options copt;
    copt.endpoints = {socket_path};
    copt.metrics = &client_registry;
    auto client = runtime::SocketSolveBackend::Create(copt);
    if (!client.ok()) {
      state.SkipWithError("client create failed");
      break;
    }
    coord::CoordinatorOptions opt;
    opt.r = 3;
    opt.net.scale = 0.1;
    opt.seed = 0xBACE;
    opt.runtime.num_threads = 2;
    opt.runtime.solver_backend = client->get();
    opt.runtime.oversized_basis_threshold = 1;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
    remote = (*client)->stats().remote_success;
    fallbacks = (*client)->stats().local_fallbacks;
    (*daemon)->Shutdown();
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["KB"] = static_cast<double>(stats.total_bytes) / 1024.0;
  state.counters["remote_solves"] = static_cast<double>(remote);
  state.counters["local_fallbacks"] = static_cast<double>(fallbacks);
  // Request bytes are deterministic under the fixed seeds (count and sum
  // are strict-comparable); the RTT percentile is wall-time, so its _p99
  // suffix keeps it report-only for scripts/bench_compare.py.
  auto* req_bytes = daemon_registry.GetHistogram("wire.daemon.request_bytes");
  state.counters["request_KB"] = req_bytes->sum() / 1024.0;
  state.counters["requests_histogrammed"] =
      static_cast<double>(req_bytes->count());
  state.counters["rtt_p99"] =
      client_registry.GetHistogram("wire.client.rtt_seconds")->Quantile(0.99);
}

BENCHMARK(BM_LoopbackSolveBackendShardSweep)
    ->ArgNames({"shards"})
    ->Args({1})
    ->Args({2})
    ->Args({4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Transport matrix on top of the loopback lane: Unix vs TCP loopback ×
// pipeline window {1, 8}. rounds/KB stay identical to both sweeps above
// (the transcript never moves with the transport); what varies is wall
// clock and the wire-byte counters, so this lane prices TCP framing and
// the pipelining win side by side. The tx/rx counters are deterministic
// under the fixed seeds.
void BM_LoopbackTransportPipelineSweep(benchmark::State& state) {
  const bool tcp = state.range(0) != 0;
  const size_t window = static_cast<size_t>(state.range(1));
  Rng rng(0xBACE);
  auto inst = workload::RandomFeasibleLp(300000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 64, true, &rng);

  const std::string unix_path = "/tmp/lplow_bench_tp_" +
                                std::to_string(::getpid()) + "_" +
                                std::to_string(window) + ".sock";
  coord::CoordinatorStats stats;
  runtime::MetricsRegistry daemon_registry;
  runtime::MetricsRegistry client_registry;
  uint64_t remote = 0;
  uint64_t tx = 0, rx = 0;
  for (auto _ : state) {
    runtime::SolveDaemon::Options dopt;
    dopt.socket_path = tcp ? "tcp:127.0.0.1:0" : unix_path;
    dopt.num_shards = 2;
    dopt.threads_per_shard = 2;
    dopt.metrics = &daemon_registry;
    auto daemon = runtime::SolveDaemon::Start(dopt);
    if (!daemon.ok()) {
      state.SkipWithError("daemon start failed");
      break;
    }
    runtime::SocketSolveBackend::Options copt;
    copt.endpoints = {(*daemon)->bound_endpoint()};
    copt.pipeline_window = window;
    copt.metrics = &client_registry;
    auto client = runtime::SocketSolveBackend::Create(copt);
    if (!client.ok()) {
      state.SkipWithError("client create failed");
      break;
    }
    coord::CoordinatorOptions opt;
    opt.r = 3;
    opt.net.scale = 0.1;
    opt.seed = 0xBACE;
    opt.runtime.num_threads = 2;
    opt.runtime.solver_backend = client->get();
    opt.runtime.oversized_basis_threshold = 1;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(result);
    remote = (*client)->stats().remote_success;
    tx = (*client)->endpoint_stats(0).tx_bytes;
    rx = (*client)->endpoint_stats(0).rx_bytes;
    (*daemon)->Shutdown();
  }
  state.counters["tcp"] = tcp ? 1.0 : 0.0;
  state.counters["window"] = static_cast<double>(window);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["KB"] = static_cast<double>(stats.total_bytes) / 1024.0;
  state.counters["remote_solves"] = static_cast<double>(remote);
  state.counters["wire_tx_KB"] = static_cast<double>(tx) / 1024.0;
  state.counters["wire_rx_KB"] = static_cast<double>(rx) / 1024.0;
  state.counters["rtt_p99"] =
      client_registry.GetHistogram("wire.client.rtt_seconds")->Quantile(0.99);
}

BENCHMARK(BM_LoopbackTransportPipelineSweep)
    ->ArgNames({"tcp", "window"})
    ->Args({0, 1})
    ->Args({0, 8})
    ->Args({1, 1})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace lplow

// Experiment E14 (Propositions 4.1-4.3): throughput of the T_b (basis
// computation) and T_v (violation test) primitives for LP, SVM, and MEB —
// the quantities the paper's running-time theorems are parameterized by.

#include <benchmark/benchmark.h>

#include <span>

#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/solvers/coreset_meb.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace lplow {
namespace {

void BM_LpBasisSolve(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  Rng rng(0xEC);
  auto inst = workload::RandomFeasibleLp(m, d, &rng);
  LinearProgram problem(inst.objective);
  for (auto _ : state) {
    auto basis = problem.SolveBasis(
        std::span<const Halfspace>(inst.constraints));
    benchmark::DoNotOptimize(basis);
  }
  state.SetItemsProcessed(state.iterations() * m);
}

BENCHMARK(BM_LpBasisSolve)
    ->ArgNames({"m", "d"})
    ->Args({1000, 2})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 6})
    ->Unit(benchmark::kMicrosecond);

void BM_LpViolationScan(benchmark::State& state) {
  const size_t t = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  Rng rng(0xEC);
  auto inst = workload::RandomFeasibleLp(t, d, &rng);
  LinearProgram problem(inst.objective);
  auto value = problem.SolveValue(
      std::span<const Halfspace>(inst.constraints));
  for (auto _ : state) {
    size_t violators = 0;
    for (const auto& c : inst.constraints) {
      violators += problem.Violates(value, c);
    }
    benchmark::DoNotOptimize(violators);
  }
  state.SetItemsProcessed(state.iterations() * t);
}

BENCHMARK(BM_LpViolationScan)
    ->ArgNames({"t", "d"})
    ->Args({100000, 2})
    ->Args({100000, 5})
    ->Unit(benchmark::kMicrosecond);

void BM_SvmBasisSolve(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Rng rng(0xEC);
  auto pts = workload::SeparableSvmData(m, 3, 0.5, &rng);
  LinearSvm problem(3);
  for (auto _ : state) {
    auto basis = problem.SolveBasis(std::span<const SvmPoint>(pts));
    benchmark::DoNotOptimize(basis);
  }
  state.SetItemsProcessed(state.iterations() * m);
}

BENCHMARK(BM_SvmBasisSolve)
    ->ArgNames({"m"})
    ->Args({100})
    ->Args({1000})
    ->Args({5000})
    ->Unit(benchmark::kMicrosecond);

void BM_MebBasisSolve(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  Rng rng(0xEC);
  auto pts = workload::GaussianCloud(m, d, &rng);
  MinEnclosingBall problem(d);
  for (auto _ : state) {
    auto basis = problem.SolveBasis(std::span<const Vec>(pts));
    benchmark::DoNotOptimize(basis);
  }
  state.SetItemsProcessed(state.iterations() * m);
}

BENCHMARK(BM_MebBasisSolve)
    ->ArgNames({"m", "d"})
    ->Args({1000, 2})
    ->Args({10000, 3})
    ->Args({10000, 6})
    ->Unit(benchmark::kMicrosecond);

// Exact Welzl vs the Badoiu-Clarkson (1+eps) core-set solver [42] — the
// approximate T_b alternative core vector machines are named after.
void BM_MebCoreset(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 1000.0;
  Rng rng(0xEC);
  auto pts = workload::GaussianCloud(m, 3, &rng);
  CoresetMebSolver::Config cfg;
  cfg.eps = eps;
  CoresetMebSolver solver(cfg);
  double radius = 0;
  size_t coreset = 0;
  for (auto _ : state) {
    auto r = solver.Solve(pts);
    radius = r.ball.radius;
    coreset = r.coreset.size();
    benchmark::DoNotOptimize(r);
  }
  WelzlSolver exact;
  state.counters["radius_vs_exact_pct"] =
      100.0 * radius / exact.Solve(pts).radius;
  state.counters["coreset_size"] = static_cast<double>(coreset);
  state.SetItemsProcessed(state.iterations() * m);
}

BENCHMARK(BM_MebCoreset)
    ->ArgNames({"m", "eps_milli"})
    ->Args({100000, 100})
    ->Args({100000, 10})
    ->Unit(benchmark::kMicrosecond);

void BM_MebViolationScan(benchmark::State& state) {
  const size_t t = static_cast<size_t>(state.range(0));
  Rng rng(0xEC);
  auto pts = workload::GaussianCloud(t, 3, &rng);
  MinEnclosingBall problem(3);
  auto value = problem.SolveValue(std::span<const Vec>(pts));
  for (auto _ : state) {
    size_t violators = 0;
    for (const auto& c : pts) violators += problem.Violates(value, c);
    benchmark::DoNotOptimize(violators);
  }
  state.SetItemsProcessed(state.iterations() * t);
}

BENCHMARK(BM_MebViolationScan)
    ->ArgNames({"t"})
    ->Args({100000})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lplow

// lp_client_demo: the engine dispatching its basis solves to an lp_served
// daemon across the process boundary. Solves one distributed coordinator LP
// twice — serially in-process, then with every oversized basis solve routed
// through SocketSolveBackend — and checks the two answers agree exactly
// (the wire determinism contract). With --shutdown it then asks the daemon
// to exit, so a pair of these makes a self-contained smoke test:
//
//   ./lp_served --socket=/tmp/lp.sock &
//   ./lp_client_demo --socket=/tmp/lp.sock --shutdown
//
// Observability flags (docs/runtime.md §"Tracing and histograms"):
//   --stats        scrape the live daemon's metrics JSON over the wire and
//                  verify it carries wire.daemon.* counters + histograms;
//   --trace=FILE   record the client side, scrape the daemon's trace, and
//                  write one merged Chrome JSON (load in chrome://tracing
//                  or ui.perfetto.dev) — fails unless a client basis-solve
//                  span and the daemon's spans share a trace id.
//
// --socket takes an endpoint spec ("unix:/path", "tcp:host:port", or a
// bare path); --pipeline=N shares one connection carrying up to N solves
// in flight instead of leasing a connection per request.
//
//   lp_client_demo [--socket=ENDPOINT] [--pipeline=N] [--stats]
//                  [--trace=FILE] [--shutdown]

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/lp_client.h"
#include "src/runtime/trace.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

int main(int argc, char** argv) {
  using namespace lplow;

  std::string socket_path = "/tmp/lplow_served.sock";
  std::string trace_file;
  size_t pipeline_window = 1;
  bool want_stats = false;
  bool shutdown_daemon = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_file = arg.substr(8);
    } else if (arg.rfind("--pipeline=", 0) == 0) {
      pipeline_window = static_cast<size_t>(
          std::strtoul(arg.c_str() + 11, nullptr, 10));
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else {
      std::fprintf(stderr,
                   "usage: lp_client_demo [--socket=ENDPOINT] [--pipeline=N] "
                   "[--stats] [--trace=FILE] [--shutdown]\n");
      return 2;
    }
  }

  runtime::trace::TraceRecorder recorder(/*enabled=*/!trace_file.empty());
  recorder.SetProcessLabel("lp_client_demo");

  runtime::SocketSolveBackend::Options options;
  options.endpoints = {socket_path};
  options.pipeline_window = pipeline_window;
  options.trace = &recorder;
  auto client = runtime::SocketSolveBackend::Create(options);
  if (!client.ok()) {
    std::fprintf(stderr, "lp_client_demo: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  // The daemon may still be coming up (the smoke test backgrounds it):
  // give it a few seconds of ping retries before the first real job.
  bool up = false;
  for (int i = 0; i < 50; ++i) {
    if ((*client)->Ping(0).ok()) {
      up = true;
      break;
    }
    ::usleep(100'000);
  }
  if (!up) {
    std::fprintf(stderr, "lp_client_demo: no daemon at %s\n",
                 socket_path.c_str());
    return 1;
  }
  std::printf("lp_client_demo: daemon at %s is up\n", socket_path.c_str());

  Rng rng(0xC11E57ULL);
  auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 8, true, &rng);

  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 0xC11E57ULL;
  auto serial = coord::SolveCoordinator(problem, parts, opt, nullptr);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial solve failed: %s\n",
                 serial.status().ToString().c_str());
    return 1;
  }

  opt.runtime.solver_backend = client->get();
  opt.runtime.oversized_basis_threshold = 1;  // Route every basis solve.
  opt.runtime.trace = &recorder;
  auto remote = coord::SolveCoordinator(problem, parts, opt, nullptr);
  if (!remote.ok()) {
    std::fprintf(stderr, "remote-backed solve failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  if (problem.CompareValues(remote->value, serial->value) != 0) {
    std::fprintf(stderr,
                 "remote-backed solve disagrees with the serial solve\n");
    return 1;
  }

  auto stats = (*client)->stats();
  std::printf("lp_client_demo: objective %.6f matches the serial solve "
              "(%llu solves served remotely, %llu local fallbacks)\n",
              remote->value.objective,
              static_cast<unsigned long long>(stats.remote_success),
              static_cast<unsigned long long>(stats.local_fallbacks));
  if (stats.remote_success == 0) {
    std::fprintf(stderr, "no solve actually crossed the socket\n");
    return 1;
  }

  if (want_stats || !trace_file.empty()) {
    auto scraped =
        (*client)->ScrapeStats(0, /*include_trace=*/!trace_file.empty());
    if (!scraped.ok()) {
      std::fprintf(stderr, "stats scrape failed: %s\n",
                   scraped.status().ToString().c_str());
      return 1;
    }
    if (want_stats) {
      std::printf("%s\n", scraped->metrics_json.c_str());
      if (scraped->metrics_json.find("\"wire.daemon.requests\"") ==
          std::string::npos) {
        std::fprintf(stderr, "scraped metrics lack wire.daemon.* counters\n");
        return 1;
      }
      const std::string key = "\"wire.daemon.request_bytes\":{\"count\":";
      const size_t pos = scraped->metrics_json.find(key);
      const unsigned long long histogrammed =
          pos == std::string::npos
              ? 0
              : std::strtoull(scraped->metrics_json.c_str() + pos + key.size(),
                              nullptr, 10);
      if (histogrammed == 0) {
        std::fprintf(stderr,
                     "scraped metrics lack a populated request-bytes "
                     "histogram\n");
        return 1;
      }
      std::printf("lp_client_demo: scraped daemon metrics OK "
                  "(%llu requests histogrammed)\n",
                  histogrammed);
    }
    if (!trace_file.empty()) {
      // The acceptance check for cross-process stitching: some client-side
      // basis-solve span's trace id must appear verbatim in the daemon's
      // exported spans (it crossed inside the v2 request frame).
      uint64_t basis_trace_id = 0;
      for (const auto& event : recorder.Snapshot()) {
        if (std::strcmp(event.name, "engine.basis_solve") == 0 &&
            event.trace_id != 0) {
          basis_trace_id = event.trace_id;
          break;
        }
      }
      const std::string needle =
          "\"trace_id\":" + std::to_string(basis_trace_id);
      if (basis_trace_id == 0 ||
          scraped->trace_json.find(needle) == std::string::npos ||
          scraped->trace_json.find("daemon.solve") == std::string::npos) {
        std::fprintf(stderr,
                     "daemon trace does not share a trace id with the "
                     "client's basis-solve spans\n");
        return 1;
      }
      std::vector<std::string> docs = {recorder.ToChromeJson(),
                                       scraped->trace_json};
      const std::string merged = runtime::trace::MergeChromeTraces(docs);
      std::ofstream out(trace_file, std::ios::binary | std::ios::trunc);
      out << merged;
      out.close();
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", trace_file.c_str());
        return 1;
      }
      std::printf("lp_client_demo: wrote merged trace (%zu bytes) to %s; "
                  "trace id %llu spans client and daemon\n",
                  merged.size(), trace_file.c_str(),
                  static_cast<unsigned long long>(basis_trace_id));
    }
  }

  if (shutdown_daemon) {
    Status st = (*client)->RequestServerShutdown(0);
    if (!st.ok()) {
      std::fprintf(stderr, "shutdown request failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("lp_client_demo: daemon acknowledged shutdown\n");
  }
  return 0;
}

// lp_client_demo: the engine dispatching its basis solves to an lp_served
// daemon across the process boundary. Solves one distributed coordinator LP
// twice — serially in-process, then with every oversized basis solve routed
// through SocketSolveBackend — and checks the two answers agree exactly
// (the wire determinism contract). With --shutdown it then asks the daemon
// to exit, so a pair of these makes a self-contained smoke test:
//
//   ./lp_served --socket=/tmp/lp.sock &
//   ./lp_client_demo --socket=/tmp/lp.sock --shutdown
//
//   lp_client_demo [--socket=PATH] [--shutdown]

#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/lp_client.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

int main(int argc, char** argv) {
  using namespace lplow;

  std::string socket_path = "/tmp/lplow_served.sock";
  bool shutdown_daemon = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else {
      std::fprintf(stderr,
                   "usage: lp_client_demo [--socket=PATH] [--shutdown]\n");
      return 2;
    }
  }

  runtime::SocketSolveBackend::Options options;
  options.endpoints = {socket_path};
  auto client = runtime::SocketSolveBackend::Create(options);
  if (!client.ok()) {
    std::fprintf(stderr, "lp_client_demo: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  // The daemon may still be coming up (the smoke test backgrounds it):
  // give it a few seconds of ping retries before the first real job.
  bool up = false;
  for (int i = 0; i < 50; ++i) {
    if ((*client)->Ping(0).ok()) {
      up = true;
      break;
    }
    ::usleep(100'000);
  }
  if (!up) {
    std::fprintf(stderr, "lp_client_demo: no daemon at %s\n",
                 socket_path.c_str());
    return 1;
  }
  std::printf("lp_client_demo: daemon at %s is up\n", socket_path.c_str());

  Rng rng(0xC11E57ULL);
  auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
  LinearProgram problem(inst.objective);
  auto parts = workload::Partition(inst.constraints, 8, true, &rng);

  coord::CoordinatorOptions opt;
  opt.net.scale = 0.1;
  opt.seed = 0xC11E57ULL;
  auto serial = coord::SolveCoordinator(problem, parts, opt, nullptr);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial solve failed: %s\n",
                 serial.status().ToString().c_str());
    return 1;
  }

  opt.runtime.solver_backend = client->get();
  opt.runtime.oversized_basis_threshold = 1;  // Route every basis solve.
  auto remote = coord::SolveCoordinator(problem, parts, opt, nullptr);
  if (!remote.ok()) {
    std::fprintf(stderr, "remote-backed solve failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  if (problem.CompareValues(remote->value, serial->value) != 0) {
    std::fprintf(stderr,
                 "remote-backed solve disagrees with the serial solve\n");
    return 1;
  }

  auto stats = (*client)->stats();
  std::printf("lp_client_demo: objective %.6f matches the serial solve "
              "(%llu solves served remotely, %llu local fallbacks)\n",
              remote->value.objective,
              static_cast<unsigned long long>(stats.remote_success),
              static_cast<unsigned long long>(stats.local_fallbacks));
  if (stats.remote_success == 0) {
    std::fprintf(stderr, "no solve actually crossed the socket\n");
    return 1;
  }

  if (shutdown_daemon) {
    Status st = (*client)->RequestServerShutdown(0);
    if (!st.ok()) {
      std::fprintf(stderr, "shutdown request failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("lp_client_demo: daemon acknowledged shutdown\n");
  }
  return 0;
}

// Quickstart: solve a low-dimensional linear program over a stream you can
// only scan, in sublinear memory.
//
//   build/examples/quickstart
//
// Generates 200,000 random halfspace constraints in R^3, streams them
// through the Theorem 1 solver with r = 3 (space ~ n^{1/3}), and compares
// against a direct in-memory solve.

#include <cstdio>

#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

int main() {
  using namespace lplow;

  const size_t n = 200000;
  const size_t d = 3;
  Rng rng(42);
  workload::LpInstance inst = workload::RandomFeasibleLp(n, d, &rng);

  // The problem object: objective direction + numeric configuration.
  LinearProgram problem(inst.objective);

  // A stream over the constraints (any ConstraintStream works; this one is
  // backed by a vector, GeneratorStream produces items on demand).
  stream::VectorStream<Halfspace> constraint_stream(inst.constraints);

  stream::StreamingOptions options;
  options.r = 3;            // Pass/space trade-off knob: O(d r) passes.
  options.net.scale = 0.1;  // Sampling constant (see EXPERIMENTS.md).
  stream::StreamingStats stats;

  auto result = stream::SolveStreaming(problem, constraint_stream, options,
                                       &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("streaming optimum: objective = %.6f at x = %s\n",
              result->value.objective, result->value.point.ToString().c_str());
  std::printf("certificate basis: %zu constraints\n", result->basis.size());
  std::printf("passes over the stream: %zu (n = %zu)\n", stats.passes, n);
  std::printf("peak memory: %zu constraints (%.2f%% of the stream)\n",
              stats.peak_items, 100.0 * stats.peak_items / n);

  // Cross-check against the direct solve.
  auto direct = problem.SolveValue(
      std::span<const Halfspace>(inst.constraints));
  std::printf("direct optimum:    objective = %.6f  (match: %s)\n",
              direct.objective,
              problem.CompareValues(result->value, direct) == 0 ? "yes"
                                                                : "NO");
  return 0;
}

// A tour of the Section 5 lower-bound machinery: builds a hard two-curve
// intersection instance from the recursive distribution D_r, validates the
// TCI promise, runs the communication protocols at several round budgets,
// and solves the Figure 1b LP reduction exactly over rationals.

#include <cstdio>

#include "src/lowerbound/hard_instance.h"
#include "src/lowerbound/tci_protocols.h"
#include "src/lowerbound/tci_to_lp.h"
#include "src/util/rng.h"

int main() {
  using namespace lplow;
  using namespace lplow::lb;

  HardInstanceOptions options;
  options.base_n = 6;
  options.rounds = 3;  // n = 6^3 = 216 points, an OddInstance at the top.
  Rng rng(5);
  HardInstance hard = BuildHardInstance(options, &rng);
  const size_t n = hard.tci.n();

  std::printf("D_%d hard instance: n = %zu points, embedded block z* = %zu\n",
              options.rounds, n, hard.zstar_chain[0]);
  Status valid = ValidateTci(hard.tci);
  std::printf("TCI promise (monotone + convex + single crossing): %s\n",
              valid.ok() ? "valid" : valid.ToString().c_str());
  std::printf("embedded answer index: %zu\n", hard.expected_answer);

  size_t max_bits = 0;
  for (const auto& v : hard.tci.a) max_bits = std::max(max_bits, v.BitLength());
  for (const auto& v : hard.tci.b) max_bits = std::max(max_bits, v.BitLength());
  std::printf("coordinate bit-complexity: up to %zu bits "
              "(exact rationals; doubles would overflow/round)\n", max_bits);

  // Protocols at different round budgets: the communication/round trade-off
  // Theorem 7 lower-bounds.
  std::printf("\n%-28s %10s %10s %12s\n", "protocol", "messages", "Kbits",
              "answer ok");
  {
    ProtocolStats st;
    auto ans = FullSendProtocol(hard.tci, &st);
    std::printf("%-28s %10zu %10.1f %12s\n", "full-send (1 round)",
                st.messages, st.bits / 1024.0,
                (ans.ok() && *ans == hard.expected_answer) ? "yes" : "NO");
  }
  for (size_t grid : {static_cast<size_t>(n), size_t{15}, size_t{6},
                      size_t{2}}) {
    BlockDescentOptions bopt;
    bopt.grid = grid;
    ProtocolStats st;
    auto ans = BlockDescentProtocol(hard.tci, bopt, &st);
    char name[64];
    std::snprintf(name, sizeof(name), "block-descent grid=%zu", grid);
    std::printf("%-28s %10zu %10.1f %12s\n", name, st.messages,
                st.bits / 1024.0,
                (ans.ok() && *ans == hard.expected_answer) ? "yes" : "NO");
  }

  // The Figure 1b reduction, solved exactly.
  auto lp = SolveTciViaLp(hard.tci);
  if (!lp.ok()) {
    std::fprintf(stderr, "LP reduction failed\n");
    return 1;
  }
  std::printf("\n2-d LP reduction: optimum y* at x* = %s\n",
              lp->x.ToString().c_str());
  std::printf("floor(x*) = %zu  (matches embedded answer: %s)\n", lp->index,
              lp->index == hard.expected_answer ? "yes" : "NO");
  return 0;
}

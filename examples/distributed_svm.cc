// Distributed hard-margin SVM training in the coordinator model (Theorem 5,
// coordinator row): k sites hold label/feature shards; the coordinator
// learns the maximum-margin separator exchanging a few kilobytes instead of
// shipping the dataset.

#include <cstdio>

#include "src/baselines/ship_all.h"
#include "src/models/coordinator/coordinator_solver.h"
#include "src/problems/linear_svm.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

int main() {
  using namespace lplow;

  const size_t n = 400000;
  const size_t d = 2;
  const size_t k = 8;
  Rng rng(13);
  auto points = workload::SeparableSvmData(n, d, 0.3, &rng);
  auto shards = workload::Partition(points, k, true, &rng);

  LinearSvm problem(d);
  coord::CoordinatorOptions options;
  options.r = 3;
  options.net.scale = 0.3;
  coord::CoordinatorStats stats;

  auto result = coord::SolveCoordinator(problem, shards, options, &stats);
  if (!result.ok() || !result->value.separable) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  std::printf("max-margin separator found: ||u||^2 = %.4f (margin %.4f)\n",
              result->value.norm_squared,
              1.0 / std::sqrt(result->value.norm_squared));
  std::printf("support vectors in certificate: %zu\n", result->basis.size());
  std::printf("rounds: %zu, iterations: %zu\n", stats.rounds,
              stats.iterations);
  std::printf("communication: %.1f KB total across %zu sites\n",
              stats.total_bytes / 1024.0, k);

  baselines::ShipAllStats ship;
  baselines::ShipAll(problem, shards, &ship);
  std::printf("ship-everything baseline: %.1f KB (we used %.2f%%)\n",
              ship.total_bytes / 1024.0,
              100.0 * stats.total_bytes / ship.total_bytes);

  // Verify the model separates every shard.
  size_t errors = 0;
  for (const auto& shard : shards) {
    for (const auto& p : shard) {
      if (static_cast<double>(p.label) * p.x.Dot(result->value.u) <= 0) {
        ++errors;
      }
    }
  }
  std::printf("training errors: %zu / %zu\n", errors, n);
  return errors == 0 ? 0 : 1;
}

// Command-line LP solver over instance files (src/workload/lp_io.h format):
//
//   lp_solve_cli FILE [--model=direct|stream|coord|mpc|det] [--r=N] [--k=N]
//                     [--delta=X] [--scale=X] [--seed=N] [--dump-metrics]
//   lp_solve_cli --scrape=SOCKET
//
// Solves min c.x subject to the file's constraints in the chosen model and
// prints the optimum plus the model's cost accounting. With no FILE, reads
// the instance from stdin. --dump-metrics prints the process-global
// MetricsRegistry JSON on exit; --scrape=SOCKET instead asks a live
// lp_served daemon for ITS registry JSON over the wire (kStatsRequest) and
// prints that — no instance needed.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/deterministic/deterministic_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/lp_client.h"
#include "src/runtime/metrics.h"
#include "src/util/rng.h"
#include "src/workload/lp_io.h"

namespace {

using namespace lplow;

struct CliArgs {
  std::string file;
  std::string model = "stream";
  int r = 3;
  size_t k = 4;
  double delta = 0.5;
  double scale = 0.3;
  uint64_t seed = 1;
  bool dump_metrics = false;
  std::string scrape_socket;
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--model=")) {
      args->model = v;
    } else if (const char* v = value_of("--r=")) {
      args->r = std::atoi(v);
    } else if (const char* v = value_of("--k=")) {
      args->k = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--delta=")) {
      args->delta = std::atof(v);
    } else if (const char* v = value_of("--scale=")) {
      args->scale = std::atof(v);
    } else if (const char* v = value_of("--seed=")) {
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value_of("--scrape=")) {
      args->scrape_socket = v;
    } else if (arg == "--dump-metrics") {
      args->dump_metrics = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      args->file = arg;
    }
  }
  return true;
}

void PrintValue(const LinearProgram& problem,
                const LinearProgram::Value& value) {
  if (!value.feasible) {
    std::printf("status: INFEASIBLE\n");
    return;
  }
  std::printf("status: OPTIMAL\nobjective: %.10g\nx: %s\n", value.objective,
              value.point.ToString().c_str());
  (void)problem;
}

}  // namespace

// Prints the process-global registry JSON at scope exit when enabled, so
// every model branch's early return still dumps.
struct MetricsDump {
  bool enabled = false;
  ~MetricsDump() {
    if (!enabled) return;
    std::printf("%s\n",
                lplow::runtime::MetricsRegistry::Global().ToJson().c_str());
  }
};

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  if (!args.scrape_socket.empty()) {
    auto stats = runtime::ScrapeDaemonStats(args.scrape_socket);
    if (!stats.ok()) {
      std::fprintf(stderr, "scrape failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", stats->metrics_json.c_str());
    return 0;
  }

  MetricsDump dump;
  dump.enabled = args.dump_metrics;

  Result<workload::LpInstance> inst =
      args.file.empty() ? workload::ReadLpInstance(std::cin)
                        : workload::ReadLpInstanceFromFile(args.file);
  if (!inst.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 inst.status().ToString().c_str());
    return 2;
  }
  const size_t n = inst->constraints.size();
  std::printf("instance: n = %zu constraints, d = %zu\n", n,
              inst->objective.dim());

  LinearProgram problem(inst->objective);
  Rng rng(args.seed);

  if (args.model == "direct") {
    auto value = problem.SolveValue(
        std::span<const Halfspace>(inst->constraints));
    PrintValue(problem, value);
    return 0;
  }
  if (args.model == "stream") {
    stream::VectorStream<Halfspace> s(inst->constraints);
    stream::StreamingOptions opt;
    opt.r = args.r;
    opt.net.scale = args.scale;
    opt.seed = args.seed;
    stream::StreamingStats stats;
    auto result = stream::SolveStreaming(problem, s, opt, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintValue(problem, result->value);
    std::printf("model: streaming (r = %d): %zu passes, peak %zu items\n",
                args.r, stats.passes, stats.peak_items);
    return 0;
  }
  if (args.model == "coord") {
    auto parts = workload::Partition(inst->constraints, args.k, true, &rng);
    coord::CoordinatorOptions opt;
    opt.r = args.r;
    opt.net.scale = args.scale;
    opt.seed = args.seed;
    coord::CoordinatorStats stats;
    auto result = coord::SolveCoordinator(problem, parts, opt, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintValue(problem, result->value);
    std::printf("model: coordinator (k = %zu, r = %d): %zu rounds, %.1f KB\n",
                args.k, args.r, stats.rounds, stats.total_bytes / 1024.0);
    return 0;
  }
  if (args.model == "mpc") {
    auto parts = workload::Partition(inst->constraints, args.k, true, &rng);
    mpc::MpcOptions opt;
    opt.delta = args.delta;
    opt.net.scale = args.scale;
    opt.seed = args.seed;
    mpc::MpcStats stats;
    auto result = mpc::SolveMpc(problem, parts, opt, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintValue(problem, result->value);
    std::printf(
        "model: mpc (delta = %.3f): %zu machines, %zu rounds, "
        "max load %.1f KB\n",
        args.delta, stats.machines, stats.rounds,
        stats.max_load_bytes / 1024.0);
    return 0;
  }
  if (args.model == "det") {
    // The sampling-free model: the partition is contiguous and the solver
    // takes no seed, so the whole run consumes zero random bits.
    auto parts = workload::Partition(inst->constraints, args.k, false, nullptr);
    det::DeterministicOptions opt;
    opt.r = args.r;
    opt.net.scale = args.scale;
    det::DeterministicStats stats;
    auto result = det::SolveDeterministic(problem, parts, opt, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintValue(problem, result->value);
    std::printf(
        "model: deterministic (b = %zu, r = %d): %zu iterations, "
        "%zu merge rounds, %.1f KB shipped\n",
        stats.blocks, args.r, stats.iterations, stats.merge_rounds,
        (stats.candidate_bytes + stats.broadcast_bytes) / 1024.0);
    return 0;
  }
  std::fprintf(stderr, "unknown model '%s'\n", args.model.c_str());
  return 2;
}

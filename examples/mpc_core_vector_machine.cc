// Core vector machine substrate in the MPC model (Theorem 6): the minimum
// enclosing ball of a point cloud partitioned across a fleet of machines,
// computed in O(nu/delta^2) rounds with sublinear per-machine load.

#include <cstdio>

#include "src/models/mpc/mpc_solver.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

int main() {
  using namespace lplow;

  const size_t n = 300000;
  const size_t d = 4;
  Rng rng(99);
  auto points = workload::SphereCloud(n, d, 25.0, 0.1, &rng);
  auto parts = workload::Partition(points, 64, true, &rng);

  MinEnclosingBall problem(d);
  mpc::MpcOptions options;
  options.delta = 1.0 / 3.0;
  options.net.scale = 0.1;
  mpc::MpcStats stats;

  auto result = mpc::SolveMpc(problem, parts, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("minimum enclosing ball: radius %.4f, center %s\n",
              result->value.ball.radius,
              result->value.ball.center.ToString().c_str());
  std::printf("support points in certificate: %zu (<= d+1 = %zu)\n",
              result->basis.size(), d + 1);
  std::printf("MPC: %zu machines (fanout %zu, tree depth %zu)\n",
              stats.machines, stats.fanout, stats.tree_depth);
  std::printf("rounds: %zu, max per-machine load per round: %.1f KB\n",
              stats.rounds, stats.max_load_bytes / 1024.0);

  // Sanity: every point is inside.
  size_t outside = 0;
  for (const auto& p : points) {
    if (!result->value.ball.Contains(p, 1e-5)) ++outside;
  }
  std::printf("points outside the ball: %zu / %zu\n", outside, n);
  return outside == 0 ? 0 : 1;
}

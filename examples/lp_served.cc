// lp_served: the cross-process solver daemon as a command-line program.
// Listens on a Unix socket or TCP port (--socket takes an endpoint spec:
// "unix:/path", "tcp:host:port" with port 0 for ephemeral, or a bare
// path), drains wire-framed solve jobs into a ShardedSolverService, and
// exits cleanly on a client's --shutdown (remote shutdown is enabled here;
// embedded daemons keep it off).
//
//   lp_served [--socket=ENDPOINT] [--shards=N] [--threads=N]
//             [--max-inflight=N]
//
// Pair with lp_client_demo:
//   ./lp_served --socket=/tmp/lp.sock &
//   ./lp_client_demo --socket=/tmp/lp.sock --shutdown
// or over TCP (the "listening on" line prints the bound port):
//   ./lp_served --socket=tcp:127.0.0.1:7070 &
//   ./lp_client_demo --socket=tcp:127.0.0.1:7070 --shutdown

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/runtime/lp_served.h"
#include "src/runtime/trace.h"

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lplow;

  runtime::SolveDaemon::Options options;
  options.socket_path = "/tmp/lplow_served.sock";
  options.num_shards = 2;
  options.threads_per_shard = 2;
  options.allow_remote_shutdown = true;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const std::string arg = argv[i];
    if (ParseFlag(arg, "socket", &value)) {
      options.socket_path = value;
    } else if (ParseFlag(arg, "shards", &value)) {
      options.num_shards = static_cast<size_t>(std::strtoul(value.c_str(),
                                                            nullptr, 10));
    } else if (ParseFlag(arg, "threads", &value)) {
      options.threads_per_shard =
          static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "max-inflight", &value)) {
      options.max_inflight =
          static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: lp_served [--socket=ENDPOINT] [--shards=N] "
                   "[--threads=N] [--max-inflight=N]\n");
      return 2;
    }
  }

  // Always-on recorder: a client scraping stats (lp_client_demo --trace)
  // gets the daemon-side spans stitched under its own trace ids. Declared
  // before the daemon so it outlives it.
  runtime::trace::TraceRecorder recorder(/*enabled=*/true);
  recorder.SetProcessLabel("lp_served");
  options.trace = &recorder;

  auto daemon = runtime::SolveDaemon::Start(options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "lp_served: %s\n",
                 daemon.status().ToString().c_str());
    return 1;
  }
  // Print the BOUND endpoint: for tcp:...:0 it carries the real port, so
  // scripts can scrape it and dial back.
  std::printf("lp_served: listening on %s (%zu shards x %zu threads)\n",
              (*daemon)->bound_endpoint().c_str(), (*daemon)->num_shards(),
              options.threads_per_shard);
  std::fflush(stdout);

  (*daemon)->WaitForShutdownRequest();
  (*daemon)->Shutdown();

  auto stats = (*daemon)->stats();
  std::printf("lp_served: shutting down — %llu connections, %llu requests, "
              "%llu solved, %llu errors, %llu busy, %llu malformed\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.solved),
              static_cast<unsigned long long>(stats.solve_errors),
              static_cast<unsigned long long>(stats.busy_rejected),
              static_cast<unsigned long long>(stats.malformed));
  return 0;
}

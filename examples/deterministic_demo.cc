// The sampling-free deterministic model, end to end:
//
//   build/examples/deterministic_demo
//
// Solves one LP instance with the fourth model — deterministic
// merge-and-reduce over the shared refinement engine — and demonstrates
// the property the randomized models cannot offer: the ENTIRE run consumes
// zero random bits, so two runs (and runs at any thread count) produce
// byte-identical transcripts with no seed to hold fixed. Only the instance
// generator below is seeded; the solver has no seed parameter at all.

#include <cstdio>

#include "src/models/deterministic/deterministic_solver.h"
#include "src/problems/linear_program.h"
#include "src/runtime/metrics.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

int main() {
  using namespace lplow;

  const size_t n = 200000;
  const size_t d = 3;
  const size_t blocks = 16;
  Rng rng(42);  // Seeds the INSTANCE only; the solver draws nothing.
  workload::LpInstance inst = workload::RandomFeasibleLp(n, d, &rng);
  LinearProgram problem(inst.objective);

  // A contiguous partition needs no shuffle RNG: nothing in this run is
  // random from here on.
  auto parts = workload::Partition(inst.constraints, blocks, false, nullptr);

  det::DeterministicOptions options;
  options.r = 3;
  options.net.scale = 0.1;

  // --- Act 1: solve, and cross-check against the direct in-memory solve.
  det::DeterministicStats stats;
  auto result = det::SolveDeterministic(problem, parts, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("deterministic optimum: objective = %.6f at x = %s\n",
              result->value.objective, result->value.point.ToString().c_str());
  std::printf("certificate basis: %zu constraints\n", result->basis.size());
  std::printf(
      "%zu blocks, merge window m = %zu: %zu iterations, %zu merge rounds\n",
      stats.blocks, stats.sample_size, stats.iterations, stats.merge_rounds);
  std::printf(
      "traffic: %.1f KB candidates up, %.1f KB basis broadcasts down "
      "(ship-all would be %.1f KB)\n",
      stats.candidate_bytes / 1024.0, stats.broadcast_bytes / 1024.0,
      n * problem.ConstraintBytes(inst.constraints[0]) / 1024.0);

  auto direct = problem.SolveValue(
      std::span<const Halfspace>(inst.constraints));
  std::printf("direct optimum:        objective = %.6f  (match: %s)\n",
              direct.objective,
              problem.CompareValues(result->value, direct) == 0 ? "yes"
                                                                : "NO");

  // --- Act 2: reproducibility without a seed. Rerun (serial) and rerun
  // again on 8 threads: every stat must be identical, bit for bit.
  det::DeterministicStats rerun;
  auto again = det::SolveDeterministic(problem, parts, options, &rerun);
  det::DeterministicOptions threaded = options;
  threaded.runtime.num_threads = 8;
  det::DeterministicStats pooled;
  auto thr = det::SolveDeterministic(problem, parts, threaded, &pooled);
  if (!again.ok() || !thr.ok()) {
    std::fprintf(stderr, "rerun failed\n");
    return 1;
  }
  bool identical =
      rerun.iterations == stats.iterations &&
      pooled.iterations == stats.iterations &&
      rerun.candidate_bytes == stats.candidate_bytes &&
      pooled.candidate_bytes == stats.candidate_bytes &&
      rerun.sample_bytes == stats.sample_bytes &&
      pooled.sample_bytes == stats.sample_bytes &&
      problem.CompareValues(again->value, result->value) == 0 &&
      problem.CompareValues(thr->value, result->value) == 0;
  std::printf(
      "rerun + 8-thread rerun transcripts identical, no seed pinned: %s\n",
      identical ? "yes" : "NO");

  // --- Act 3: the model's metrics, as a service dashboard would see them.
  std::printf("\nmetrics (deterministic.*):\n%s\n",
              runtime::MetricsRegistry::Global().ToJson().c_str());
  return identical ? 0 : 1;
}

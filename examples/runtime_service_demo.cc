// The heavy-traffic scenario end to end, in two acts:
//   1. a SolverService drains a burst of mixed LP / SVM / MEB requests
//      through one shared thread pool, the coordinator jobs fan their own
//      site emulation out with RuntimeOptions{num_threads};
//   2. a ShardedSolverService takes the next burst through BatchSubmit
//      (one coalesced dispatch per shard), with the coordinator jobs
//      routing their engine basis solves back into the sharded service via
//      RuntimeOptions{solver_backend}.
// The process metrics registry is exported as JSON at the end (the schema
// docs/runtime.md describes).

#include <cstdio>
#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "src/models/coordinator/coordinator_solver.h"
#include "src/models/mpc/mpc_solver.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/runtime/metrics.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/runtime/solver_service.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/workload/generators.h"

int main() {
  using namespace lplow;

  runtime::SolverService::Options options;
  options.num_threads = 4;
  runtime::SolverService service(options);
  std::printf("solver service up: %zu worker threads\n",
              service.num_threads());

  const int kRequestsPerKind = 16;
  Stopwatch watch;
  std::vector<std::future<bool>> done;

  for (int j = 0; j < kRequestsPerKind; ++j) {
    // Distributed LP in the coordinator model (8 sites per request).
    done.push_back(service.Submit("lp", [j] {
      Rng rng(100 + j);
      auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
      LinearProgram problem(inst.objective);
      auto parts = workload::Partition(inst.constraints, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 100 + j;
      return coord::SolveCoordinator(problem, parts, opt, nullptr).ok();
    }));

    // Distributed SVM training, coordinator model (cf. distributed_svm).
    done.push_back(service.Submit("svm", [j] {
      Rng rng(200 + j);
      auto points = workload::SeparableSvmData(8000, 2, 0.5, &rng);
      LinearSvm problem(2);
      auto parts = workload::Partition(points, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.r = 3;
      opt.net.scale = 0.1;
      opt.seed = 200 + j;
      return coord::SolveCoordinator(problem, parts, opt, nullptr).ok();
    }));

    // LP in the MPC model (32 machines per request).
    done.push_back(service.Submit("mpc_lp", [j] {
      Rng rng(400 + j);
      auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
      LinearProgram problem(inst.objective);
      auto parts = workload::Partition(inst.constraints, 32, true, &rng);
      mpc::MpcOptions opt;
      opt.delta = 0.5;
      opt.net.scale = 0.1;
      opt.seed = 400 + j;
      return mpc::SolveMpc(problem, parts, opt, nullptr).ok();
    }));

    // Smallest-enclosing-ball lookup, solved directly.
    done.push_back(service.Submit("meb", [j] {
      Rng rng(300 + j);
      auto points = workload::GaussianCloud(5000, 3, &rng);
      MinEnclosingBall problem(3);
      auto value = problem.SolveValue(std::span<const Vec>(points));
      return !value.ball.empty();
    }));
  }

  size_t ok = 0;
  for (auto& f : done) {
    try {
      ok += f.get() ? 1 : 0;
    } catch (const std::exception& e) {
      // A throwing job is delivered through its future; count it against
      // `ok` so the failure branch below reports it instead of terminating.
      std::fprintf(stderr, "request threw: %s\n", e.what());
    }
  }
  service.Drain();

  auto stats = service.stats();
  std::printf("served %llu requests (%zu ok, %llu failed) in %.2fs\n",
              static_cast<unsigned long long>(stats.completed), ok,
              static_cast<unsigned long long>(stats.failed),
              watch.ElapsedSeconds());
  if (ok != done.size() || stats.failed != 0) {
    std::fprintf(stderr, "some requests failed\n");
    return 1;
  }

  // ---- Act 2: the same traffic shape through the sharded front-end.
  runtime::ShardedSolverService::Options shard_options;
  shard_options.num_shards = 2;
  shard_options.threads_per_shard = 2;
  runtime::ShardedSolverService sharded(shard_options);
  std::printf("\nsharded service up: %zu shards x %zu threads\n",
              sharded.num_shards(), shard_options.threads_per_shard);

  Stopwatch sharded_watch;
  std::vector<std::pair<uint64_t, std::function<bool()>>> batch;
  for (int j = 0; j < kRequestsPerKind; ++j) {
    // Coordinator LP whose engine basis solves route back into the sharded
    // service (the SolveBackend seam; threshold 1 = route every solve).
    batch.emplace_back(uint64_t(1000 + j), [&sharded, j] {
      Rng rng(500 + j);
      auto inst = workload::RandomFeasibleLp(20000, 2, &rng);
      LinearProgram problem(inst.objective);
      auto parts = workload::Partition(inst.constraints, 8, true, &rng);
      coord::CoordinatorOptions opt;
      opt.net.scale = 0.1;
      opt.seed = 500 + j;
      opt.runtime.solver_backend = &sharded;
      opt.runtime.oversized_basis_threshold = 1;
      return coord::SolveCoordinator(problem, parts, opt, nullptr).ok();
    });
    // MEB lookups fill out the batch.
    batch.emplace_back(uint64_t(2000 + j), [j] {
      Rng rng(600 + j);
      auto points = workload::GaussianCloud(5000, 3, &rng);
      MinEnclosingBall problem(3);
      auto value = problem.SolveValue(std::span<const Vec>(points));
      return !value.ball.empty();
    });
  }
  const size_t batch_size = batch.size();
  auto batch_done = sharded.BatchSubmit("demo_batch", std::move(batch));
  sharded.Drain();  // Before consuming: any stored exception is then ours.
  size_t batch_ok = 0;
  for (auto& f : batch_done) {
    try {
      batch_ok += f.get() ? 1 : 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "batched request threw: %s\n", e.what());
    }
  }

  auto totals = sharded.total_stats();
  std::printf("sharded: served %llu batched requests (%zu ok, %llu failed, "
              "%llu routed solves) in %.2fs\n",
              static_cast<unsigned long long>(totals.completed), batch_ok,
              static_cast<unsigned long long>(totals.failed),
              static_cast<unsigned long long>(totals.solves),
              sharded_watch.ElapsedSeconds());
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    auto ss = sharded.shard_stats(s);
    std::printf("  shard %zu: %llu jobs in %llu batches, %llu solves\n", s,
                static_cast<unsigned long long>(ss.completed),
                static_cast<unsigned long long>(ss.batches),
                static_cast<unsigned long long>(ss.solves));
  }
  if (batch_ok != batch_size || totals.failed != 0) {
    std::fprintf(stderr, "some sharded requests failed\n");
    return 1;
  }

  std::printf("\nmetrics registry export:\n%s\n",
              runtime::MetricsRegistry::Global().ToJson().c_str());
  return 0;
}

// Entity matching with linear classification in the MPC model — the
// database application Tao [41] built on MPC LP solvers and the paper's
// Section 1.1 motivation for improving the MPC round complexity.
//
// Each record pair (from two tables of noisy duplicates) becomes a
// similarity feature vector; pairs referring to the same entity must be
// separated from non-matches by a linear classifier. Training the classifier
// over the pair shards is a low-dimensional LP on a massive constraint set:
// we solve the margin-feasibility LP   max t  s.t.  y_j (w.f_j) >= t,
// ||w||_inf <= 1, encoded as a (d+1)-dimensional LP, in the MPC model.

#include <cstdio>

#include "src/models/mpc/mpc_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace {

using namespace lplow;

// Similarity features for a record pair: equality-ish scores per attribute;
// matches have high scores, non-matches low, with noise.
Vec PairFeatures(bool is_match, size_t d, Rng* rng) {
  Vec f(d);
  for (size_t i = 0; i < d; ++i) {
    double base = is_match ? 0.8 : 0.25;
    f[i] = base + rng->Normal(0, 0.08);
  }
  // Bias feature (constant 1) folded in as the last coordinate by caller.
  return f;
}

}  // namespace

int main() {
  const size_t pairs = 200000;
  const size_t d = 4;  // Similarity features + bias.
  Rng rng(2024);

  // LP variables: (w_1..w_d, w_bias, t); maximize t (= minimize -t) subject
  // to y_j * (w . f_j + w_bias) >= t  and  |w_i| <= 1 (box is implicit).
  const size_t dim = d + 2;
  std::vector<Halfspace> constraints;
  constraints.reserve(pairs + 2 * dim);
  size_t matches = 0;
  for (size_t j = 0; j < pairs; ++j) {
    bool is_match = rng.Bernoulli(0.3);
    matches += is_match;
    Vec f = PairFeatures(is_match, d, &rng);
    double y = is_match ? 1.0 : -1.0;
    // y (w.f + w_bias) >= t  <=>  -y f.w - y w_bias + t <= 0.
    Vec a(dim);
    for (size_t i = 0; i < d; ++i) a[i] = -y * f[i];
    a[d] = -y;
    a[d + 1] = 1.0;
    constraints.emplace_back(std::move(a), 0.0);
  }
  // Normalization |w_i| <= 1 so the margin t is well-scaled and bounded.
  for (size_t i = 0; i <= d; ++i) {
    Vec up(dim);
    up[i] = 1.0;
    constraints.emplace_back(up, 1.0);
    Vec down(dim);
    down[i] = -1.0;
    constraints.emplace_back(down, 1.0);
  }

  Vec objective(dim);
  objective[dim - 1] = -1.0;  // max t.

  LinearProgram problem(objective);
  auto shards = workload::Partition(constraints, 32, true, &rng);
  mpc::MpcOptions options;
  options.delta = 1.0 / 3.0;
  options.net.scale = 0.1;
  mpc::MpcStats stats;

  auto result = mpc::SolveMpc(problem, shards, options, &stats);
  if (!result.ok() || !result->value.feasible) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  const Vec& w = result->value.point;
  double margin = w[dim - 1];
  std::printf("entity-matching classifier over %zu candidate pairs "
              "(%zu matches)\n", pairs, matches);
  std::printf("learned weights: (");
  for (size_t i = 0; i < d; ++i) std::printf("%s%.3f", i ? ", " : "", w[i]);
  std::printf("), bias %.3f, margin t = %.4f\n", w[d], margin);
  std::printf("MPC cost: %zu machines, %zu rounds, max load %.1f KB\n",
              stats.machines, stats.rounds, stats.max_load_bytes / 1024.0);

  if (margin <= 0) {
    std::printf("pairs are not linearly separable at this noise level\n");
    return 1;
  }
  std::printf("all pairs classified with positive margin: yes\n");
  return 0;
}

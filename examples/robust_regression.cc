// Robust (Chebyshev / L-infinity) regression over a constraint stream — the
// over-constrained machine-learning workload the paper's introduction
// motivates. Fitting y ~ w.x + b to minimize the maximum absolute residual
// is a (d+2)-dimensional LP with 2n constraints; the streaming solver fits
// it in sublinear memory.

#include <cstdio>

#include "src/models/streaming/streaming_solver.h"
#include "src/problems/linear_program.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

int main() {
  using namespace lplow;

  const size_t n_samples = 100000;
  const size_t d = 3;
  const double noise = 0.4;
  Rng rng(7);

  workload::RegressionData data =
      workload::RandomRegressionData(n_samples, d, noise, &rng);
  workload::LpInstance lp = workload::ChebyshevRegressionLp(data);
  std::printf("regression: %zu samples, %zu features -> LP with %zu "
              "constraints in %zu variables\n",
              n_samples, d, lp.constraints.size(), lp.objective.dim());

  LinearProgram problem(lp.objective);
  stream::VectorStream<Halfspace> s(lp.constraints);
  stream::StreamingOptions options;
  options.r = 4;
  options.net.scale = 0.15;
  stream::StreamingStats stats;

  auto result = stream::SolveStreaming(problem, s, options, &stats);
  if (!result.ok() || !result->value.feasible) {
    std::fprintf(stderr, "solve failed\n");
    return 1;
  }

  const Vec& sol = result->value.point;
  std::printf("fitted max-residual t = %.4f (noise level injected: %.4f)\n",
              result->value.objective, noise);
  std::printf("fitted weights: (");
  for (size_t i = 0; i < d; ++i) {
    std::printf("%s%.4f", i ? ", " : "", sol[i]);
  }
  std::printf("), intercept %.4f\n", sol[d]);
  std::printf("true weights:   (");
  for (size_t i = 0; i < d; ++i) {
    std::printf("%s%.4f", i ? ", " : "", data.true_w[i]);
  }
  std::printf("), intercept %.4f\n", data.true_b);
  std::printf("streaming cost: %zu passes, peak %zu constraints "
              "(%.2f%% of input)\n",
              stats.passes, stats.peak_items,
              100.0 * stats.peak_items / lp.constraints.size());
  return 0;
}

// SolverService: a shared job queue for the "heavy traffic" scenario — many
// concurrent LP/SVM/MEB solve requests draining through one ThreadPool.
// Each job is an arbitrary callable (typically a closure around
// SolveCoordinator / SolveMpc / SolveStreaming); Submit returns a
// std::future for its result, and the service reports throughput into a
// MetricsRegistry (solver_service.* metrics, schema in docs/runtime.md).
//
// Jobs run one per worker; a job may itself use RuntimeOptions with the
// service's pool() for intra-solve parallelism — TaskGroup waits help-drain
// the queue, so the nesting cannot deadlock — but under heavy traffic
// one-job-per-thread is usually the right granularity.

#ifndef LPLOW_RUNTIME_SOLVER_SERVICE_H_
#define LPLOW_RUNTIME_SOLVER_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>

#include "src/runtime/metrics.h"
#include "src/runtime/thread_pool.h"

namespace lplow {
namespace runtime {

class SolverService {
 public:
  struct Options {
    /// Worker count for the shared pool; 0 = hardware concurrency.
    size_t num_threads = 0;
    /// Registry for solver_service.* metrics; null = MetricsRegistry::Global().
    MetricsRegistry* metrics = nullptr;
  };

  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;  // Includes failed.
    uint64_t failed = 0;     // Jobs that threw; the future re-throws on get().
  };

  SolverService() : SolverService(Options()) {}
  explicit SolverService(const Options& options);

  /// Drains all in-flight jobs, then stops the pool.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Schedules `job` and returns a future for its return value. `name` tags
  /// the per-kind request counter (`solver_service.jobs.<name>`); jobs of a
  /// kind that should not be broken out can share one name. A job that
  /// throws marks the future with the exception and counts as failed.
  template <typename Fn, typename T = std::invoke_result_t<Fn&>>
  std::future<T> Submit(const std::string& name, Fn job) {
    auto promise = std::make_shared<std::promise<T>>();
    std::future<T> future = promise->get_future();
    OnSubmit(name);
    pool_->Submit(
        [this, promise = std::move(promise), job = std::move(job)]() mutable {
          bool failed = false;
          {
            // Scope the timer so the duration is recorded before OnDone —
            // Drain() returning must imply all metrics are final.
            ScopedTimer timer(job_timer_);
            try {
              if constexpr (std::is_void_v<T>) {
                job();
                promise->set_value();
              } else {
                promise->set_value(job());
              }
            } catch (...) {
              failed = true;
              promise->set_exception(std::current_exception());
            }
          }
          OnDone(failed);
        });
    return future;
  }

  /// Blocks until every job submitted so far has completed.
  void Drain();

  /// The shared pool (for jobs that opt into intra-solve parallelism).
  ThreadPool* pool() { return pool_.get(); }

  size_t num_threads() const { return pool_->num_threads(); }
  Stats stats() const;
  size_t inflight() const;

 private:
  void OnSubmit(const std::string& name);
  void OnDone(bool failed);

  std::unique_ptr<ThreadPool> pool_;
  MetricsRegistry* metrics_;
  Timer* job_timer_;
  Counter* submitted_counter_;
  Counter* completed_counter_;
  Counter* failed_counter_;
  Gauge* inflight_gauge_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  Stats stats_;
  size_t inflight_ = 0;
  // Per-kind counter cache: Submit must not pay a string concat plus the
  // registry-wide mutex per job (metrics.h: look up once, keep the pointer).
  std::map<std::string, Counter*, std::less<>> job_counters_;
};

}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_SOLVER_SERVICE_H_

// ShardedSolverService: N independent SolverService shards behind one
// submission front-end — the scaling step after one shared job queue
// (solver_service.h) saturates.
//
// Three entry points:
//   * Submit(job_id, name, fn)  — routes one job to its shard
//     (StableJobHash(job_id) % num_shards, stable across runs) and returns
//     a future, exactly like SolverService::Submit;
//   * BatchSubmit(name, jobs)   — coalesces many jobs into ONE pool
//     dispatch per shard: the batch is grouped by routing key, each group
//     runs back-to-back on its shard's pool, and every job still gets its
//     own future and its own failure accounting (a throwing job fails only
//     its future, never the batch or the queue);
//   * Execute(job_id, kind, t)  — the SolveBackend hook: the engine's
//     oversized-basis / fallback solves run on the routed shard's pool via
//     a helping TaskGroup wait (deadlock-free even when the caller is
//     itself a pool worker) and block until done.
//
// Accounting: each shard keeps job-level ShardStats (submitted / completed /
// failed / batches / solves) mirrored into `service.shard.<i>.*` metrics;
// the shard's inner SolverService counts dispatch units (one per batch), so
// the two views together show the coalescing ratio. Routing is a pure
// function of the job id, so results — and the engine's deterministic
// counters — are bit-identical for every shard count
// (tests/sharded_service_test.cc pins {1,2,4} shards x {1,2,8} threads).

#ifndef LPLOW_RUNTIME_SHARDED_SOLVER_SERVICE_H_
#define LPLOW_RUNTIME_SHARDED_SOLVER_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/runtime/metrics.h"
#include "src/runtime/solve_backend.h"
#include "src/runtime/solver_service.h"
#include "src/runtime/thread_pool.h"
#include "src/runtime/trace.h"

namespace lplow {
namespace runtime {

class ShardedSolverService final : public SolveBackend {
 public:
  struct Options {
    /// Shard count (>= 1); each shard is an independent SolverService with
    /// its own pool and queue.
    size_t num_shards = 2;
    /// Worker threads per shard (>= 1).
    size_t threads_per_shard = 1;
    /// Registry for service.shard.* metrics; null = MetricsRegistry::Global().
    MetricsRegistry* metrics = nullptr;
    /// Span recorder for the queue-wait / execute split on Execute
    /// dispatches; null or disabled = no spans (the queue-wait and execute
    /// histograms record regardless). Must outlive the service.
    trace::TraceRecorder* trace = nullptr;
  };

  /// Job-level accounting for one shard. `submitted`/`completed`/`failed`
  /// count individual jobs (batched or not); `batches` counts BatchSubmit
  /// dispatch units routed here. `solves`/`solve_failures` count
  /// SolveBackend::Execute dispatches separately (synchronous, so never
  /// in-flight at Drain(), and no future to re-throw through) — a solve
  /// that throws inside a job counts once under each view.
  struct ShardStats {
    uint64_t submitted = 0;
    uint64_t completed = 0;  // Includes failed.
    uint64_t failed = 0;     // Jobs that threw; each future re-throws.
    uint64_t batches = 0;
    uint64_t solves = 0;
    uint64_t solve_failures = 0;  // Execute dispatches that threw.
  };

  ShardedSolverService() : ShardedSolverService(Options()) {}
  explicit ShardedSolverService(const Options& options);

  /// Drains every shard, then stops their pools.
  ~ShardedSolverService() override;

  ShardedSolverService(const ShardedSolverService&) = delete;
  ShardedSolverService& operator=(const ShardedSolverService&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// The shard `job_id` routes to: StableJobHash(job_id) % num_shards.
  size_t ShardFor(uint64_t job_id) const {
    return static_cast<size_t>(StableJobHash(job_id) % shards_.size());
  }

  /// Routes `job` to its shard and returns a future for its result; `name`
  /// tags the shard's per-kind counter exactly like SolverService::Submit.
  template <typename Fn, typename T = std::invoke_result_t<Fn&>>
  std::future<T> Submit(uint64_t job_id, const std::string& name, Fn job) {
    Shard& shard = *shards_[ShardFor(job_id)];
    NoteSubmitted(shard, 1);
    return shard.service->Submit(
        name, [this, &shard, job = std::move(job)]() mutable {
          try {
            if constexpr (std::is_void_v<T>) {
              job();
              NoteDone(shard, /*failed=*/false);
            } else {
              T out = job();
              NoteDone(shard, /*failed=*/false);
              return out;
            }
          } catch (...) {
            NoteDone(shard, /*failed=*/true);
            throw;
          }
        });
  }

  /// Coalesced submission: `jobs` is a list of (job_id, callable) pairs; the
  /// batch is grouped by routed shard and each group runs as ONE dispatch
  /// unit on its shard's queue (jobs back-to-back, in batch order within the
  /// group). Futures come back in input order. A job that throws fails its
  /// own future and counts against its shard; the rest of its group still
  /// runs. When harvesting exceptions, Drain() before get(): after Drain
  /// the stored exceptions are owned solely by the returned futures, so
  /// their teardown happens on the consuming thread.
  template <typename Fn, typename T = std::invoke_result_t<Fn&>>
  std::vector<std::future<T>> BatchSubmit(
      const std::string& name, std::vector<std::pair<uint64_t, Fn>> jobs) {
    struct BatchState {
      std::vector<std::pair<uint64_t, Fn>> jobs;
      std::vector<std::promise<T>> promises;
    };
    auto state = std::make_shared<BatchState>();
    state->jobs = std::move(jobs);
    state->promises.resize(state->jobs.size());
    std::vector<std::future<T>> futures;
    futures.reserve(state->jobs.size());
    for (auto& p : state->promises) futures.push_back(p.get_future());

    std::vector<std::vector<size_t>> by_shard(shards_.size());
    for (size_t i = 0; i < state->jobs.size(); ++i) {
      by_shard[ShardFor(state->jobs[i].first)].push_back(i);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (by_shard[s].empty()) continue;
      Shard& shard = *shards_[s];
      NoteSubmitted(shard, by_shard[s].size());
      NoteBatch(shard, by_shard[s].size());
      shard.service->Submit(
          name,
          [this, &shard, indices = std::move(by_shard[s]), state]() mutable {
            for (size_t i : indices) {
              try {
                if constexpr (std::is_void_v<T>) {
                  state->jobs[i].second();
                  state->promises[i].set_value();
                } else {
                  state->promises[i].set_value(state->jobs[i].second());
                }
                NoteDone(shard, /*failed=*/false);
              } catch (...) {
                state->promises[i].set_exception(std::current_exception());
                NoteDone(shard, /*failed=*/true);
              }
            }
            // Drop this group's state reference inside the dispatch, not at
            // task destruction: Drain() (which observes the dispatch's
            // completion) then implies every batch's promises are dead or
            // owned solely by the returned futures, so a stored exception
            // is torn down on the consumer's thread, never concurrently
            // with it.
            state.reset();
          });
    }
    return futures;
  }

  /// SolveBackend: runs `task` on the routed shard's pool and blocks until
  /// it completed. The wait helps drain that pool, so a solver running
  /// inside another service's job may still route its solves here.
  void Execute(uint64_t job_id, const char* kind,
               const std::function<void()>& task) override;

  /// Blocks until every job submitted to any shard has completed.
  void Drain();

  ShardStats shard_stats(size_t shard) const;
  /// Element-wise sum of all shards' ShardStats.
  ShardStats total_stats() const;

  /// The shard's inner service (its stats count dispatch units, so
  /// `shard(i).stats().submitted` vs `shard_stats(i).submitted` shows the
  /// batch coalescing ratio).
  SolverService& shard(size_t i) { return *shards_[i]->service; }

 private:
  struct Shard {
    std::unique_ptr<SolverService> service;
    Counter* submitted_counter;
    Counter* completed_counter;
    Counter* failed_counter;
    Counter* batches_counter;
    Counter* solves_counter;
    Counter* solve_failures_counter;
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> solves{0};
    std::atomic<uint64_t> solve_failures{0};
  };

  void NoteSubmitted(Shard& shard, size_t count);
  void NoteBatch(Shard& shard, size_t jobs_in_batch);
  void NoteDone(Shard& shard, bool failed);
  Counter* SolveKindCounter(const char* kind);

  MetricsRegistry* metrics_;
  trace::TraceRecorder* trace_;
  Counter* batch_jobs_counter_;  // service.shard.batch_jobs (all shards).
  // Queue-wait (enqueue -> worker pickup) and execute (task body) latency
  // distributions across all shards; timing-valued, so report-only.
  Histogram* queue_wait_hist_;  // service.shard.queue_wait_seconds.
  Histogram* execute_hist_;     // service.shard.execute_seconds.
  std::vector<std::unique_ptr<Shard>> shards_;

  // Per-kind solve counter cache: Execute is the engine's per-iteration
  // dispatch path and must not pay a string concat plus the registry-wide
  // mutex per solve (metrics.h: look up once, keep the pointer). Callers
  // pass string literals, so a lock-free pointer-identity table serves the
  // steady state; the mutex-protected map handles first sightings and
  // non-literal (distinct-pointer) names.
  static constexpr size_t kKindFastSlots = 8;
  struct KindSlot {
    std::atomic<const char*> kind{nullptr};
    Counter* counter = nullptr;  // Written before `kind` publishes (release).
  };
  std::array<KindSlot, kKindFastSlots> kind_fast_;
  std::mutex solve_kind_mu_;
  std::map<std::string, Counter*, std::less<>> solve_kind_counters_;
};

}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_SHARDED_SOLVER_SERVICE_H_

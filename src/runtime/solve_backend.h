// SolveBackend: the injectable dispatch seam for the engine's heavyweight
// basis solves (oversized eps-net samples and the Las Vegas fallback).
//
// The engine's RunRefinement loop blocks on every basis solve, so *where*
// the solve runs is pure dispatch policy: the result, and with it every
// deterministic counter (rounds, bytes, iters, resample bytes), is
// bit-identical whichever backend executes it. The default backend is the
// caller's own pool (InlinePoolBackend, the pre-seam behavior); a
// ShardedSolverService routes the same solves across N shards for the
// heavy-traffic scenario. docs/runtime.md §"Sharded solver backend"
// documents the routing rule and the determinism contract.

#ifndef LPLOW_RUNTIME_SOLVE_BACKEND_H_
#define LPLOW_RUNTIME_SOLVE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/runtime/thread_pool.h"

namespace lplow {
namespace runtime {

/// Stable FNV-1a over the eight little-endian bytes of `job_id`. Shard
/// routing is `StableJobHash(id) % num_shards`: a pure function of the id,
/// never of queue state, so a job's shard is reproducible across runs,
/// processes, and thread counts.
inline uint64_t StableJobHash(uint64_t job_id) {
  uint64_t h = 1469598103934665603ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (job_id >> (8 * i)) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Derives the routing key for one dispatch from a run-level id (typically
/// the solver seed) and the dispatch sequence number within the run, so
/// consecutive solves of one run spread across shards deterministically.
inline uint64_t DeriveJobId(uint64_t run_id, uint64_t seq) {
  return run_id ^ (0x9E3779B97F4A7C15ULL * (seq + 1));
}

/// Executes solve tasks on behalf of the engine. Execute() runs `task` as
/// one dispatch unit and returns only after it completed (rethrowing
/// anything the task threw), so callers keep the exact blocking semantics
/// of an inline solve. Implementations must be safe to call from pool
/// workers (no non-helping waits on their own pool).
class SolveBackend {
 public:
  virtual ~SolveBackend() = default;

  /// `job_id` keys deterministic routing (sharded backends); `kind` names
  /// the dispatch for accounting ("SolveCoordinator", ...).
  virtual void Execute(uint64_t job_id, const char* kind,
                       const std::function<void()>& task) = 0;

  /// True when the backend prefers jobs as wire bytes (a socket-served
  /// backend cannot ship a closure across the process boundary). Callers
  /// check this before paying for request serialization, so in-process
  /// backends never do.
  virtual bool WantsSerialized() const { return false; }

  /// Serialized dispatch: `request` is a wire::SolveRequest payload
  /// (src/runtime/wire.h); on success `*response` holds the matching
  /// SolveResponse payload and the call returns true. Returning false means
  /// the job was NOT executed remotely — unsupported backend, every
  /// endpoint down (or, under hash-sharded routing, the job's one home
  /// shard down), or a deterministic server-side error — and the caller
  /// must fall back to Execute() with the local closure. That fallback is
  /// the graceful-failover contract: results are bit-identical either way
  /// (docs/runtime.md §"Wire protocol").
  virtual bool ExecuteSerialized(uint64_t job_id, const char* kind,
                                 const std::vector<uint8_t>& request,
                                 std::vector<uint8_t>* response) {
    (void)job_id;
    (void)kind;
    (void)request;
    (void)response;
    return false;
  }
};

/// The default backend: run on `pool` via a helping TaskGroup wait, or
/// inline when `pool` is null — exactly the dispatch the engine used before
/// the seam existed.
class InlinePoolBackend final : public SolveBackend {
 public:
  explicit InlinePoolBackend(ThreadPool* pool) : pool_(pool) {}

  void Execute(uint64_t /*job_id*/, const char* /*kind*/,
               const std::function<void()>& task) override {
    if (pool_ == nullptr) {
      task();
      return;
    }
    TaskGroup group(pool_);
    group.Run(task);
    group.Wait();
  }

 private:
  ThreadPool* pool_;
};

}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_SOLVE_BACKEND_H_

// Process-wide metrics: named counters, gauges, and timers that the solvers,
// model runtimes, SolverService, and benches report into, with a stable JSON
// export (docs/runtime.md documents the schema). This is the baseline store
// the perf-tracking CI job diffs against.
//
// Metric objects are registered once per name and then updated lock-free
// (counters/gauges) or under a per-metric mutex (timers); pointers returned
// by Get* stay valid for the registry's lifetime, so hot paths look up a
// metric once and keep the pointer.

#ifndef LPLOW_RUNTIME_METRICS_H_
#define LPLOW_RUNTIME_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/stopwatch.h"

namespace lplow {
namespace runtime {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Duration accumulator: count, total, and max of recorded intervals.
class Timer {
 public:
  void Record(double seconds);
  uint64_t count() const;
  double total_seconds() const;
  /// total_seconds / count; 0 when nothing has been recorded.
  double mean_seconds() const;
  double max_seconds() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  uint64_t count_ = 0;
  double total_seconds_ = 0;
  double max_seconds_ = 0;
};

/// RAII interval recorder; records the elapsed wall time into `timer` on
/// destruction. A null timer disables the recording.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer) {}
  ~ScopedTimer() {
    if (timer_ != nullptr) timer_->Record(watch_.ElapsedSeconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Dismisses the recording: the destructor becomes a no-op. For error
  /// paths that should not pollute count/max with an aborted interval.
  void Cancel() { timer_ = nullptr; }

 private:
  Timer* timer_;
  Stopwatch watch_;
};

/// Fixed log₂-bucketed value distribution: count, sum, and one counter per
/// power-of-two bucket, with deterministic quantiles (a quantile is always
/// the upper bound of the bucket that contains its rank — no interpolation,
/// so the same recorded multiset always reports the same percentiles).
///
/// Bucket boundaries are one shared process-wide table covering 2^-30 ..
/// 2^34 (sub-nanosecond timings up to tens-of-GiB byte sizes), so every
/// histogram in the process buckets identically and bucket counts of
/// deterministic quantities (bytes, rounds) are diff-stable across runs —
/// the property scripts/bench_compare.py strict-gates. Timing-valued
/// histograms have deterministic *counts* but machine-dependent bucket
/// placement; their percentiles are report-only, like timers.
class Histogram {
 public:
  /// Bucket i spans (2^(i-1+kMinExponent), 2^(i+kMinExponent)]; one final
  /// overflow bucket catches values beyond 2^kMaxExponent.
  static constexpr int kMinExponent = -30;
  static constexpr int kMaxExponent = 34;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExponent - kMinExponent + 2);

  /// The shared bucket-boundary table: kNumBuckets-1 ascending upper
  /// bounds (the overflow bucket has none). Same span for every histogram.
  static std::span<const double> BucketBounds();

  void Record(double value);

  uint64_t count() const;
  double sum() const;

  /// Deterministic quantile in [0,1]: the upper bound of the first bucket
  /// whose cumulative count reaches ceil(q * count). 0 when empty; the
  /// overflow bucket reports 2^kMaxExponent.
  double Quantile(double q) const;

  /// (exponent, count) for every non-empty bucket, ascending; the overflow
  /// bucket reports exponent kMaxExponent + 1.
  std::vector<std::pair<int, uint64_t>> NonzeroBuckets() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  uint64_t count_ = 0;
  double sum_ = 0;
  std::array<uint64_t, kNumBuckets> buckets_{};
};

/// Named metric registry. Thread-safe; names are sorted in the JSON export
/// so output is diff-stable.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the library's solvers report into.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Timer* GetTimer(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Writes {"counters":{...},"gauges":{...},"histograms":{...},
  /// "timers":{...}} (schema in docs/runtime.md).
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

  /// Zeroes every registered metric (registrations and pointers survive).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_METRICS_H_

// Blocking socket helpers shared by the `lp_served` daemon and the
// SocketSolveBackend client: dial/listen over Unix-domain or TCP sockets
// plus framed reads and writes of the wire protocol (src/runtime/wire.h).
//
// Endpoint grammar (docs/runtime.md §"Wire protocol"):
//   unix:/path/to.sock   Unix-domain stream socket at that path
//   tcp:host:port        TCP to `host` (IPv4 literal or hostname); a
//                        listener may use port 0 for an ephemeral port
//   /path/to.sock        bare paths stay valid as an alias for unix:
//
// All reads honor a millisecond deadline (poll + recv loops, EINTR-safe);
// -1 blocks indefinitely. A framed read spends ONE deadline across the
// header and the payload: however the peer trickles the bytes, ReadFrame
// returns within ~timeout_ms total, never 2x. Errors come back as Status —
// a timeout is DeadlineExceeded (a TYPED signal, so callers classify it
// without matching message text), a peer close is OutOfRange. Writes use
// MSG_NOSIGNAL: a dead peer is an error, never a SIGPIPE. TCP sockets
// (dialed and accepted) run with TCP_NODELAY: frames are latency-bound
// request/response units, never coalesce-worthy bulk.

#ifndef LPLOW_RUNTIME_NET_IO_H_
#define LPLOW_RUNTIME_NET_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/wire.h"
#include "src/util/status.h"

namespace lplow {
namespace runtime {
namespace net {

/// A parsed endpoint spec (grammar above).
struct Endpoint {
  enum class Family { kUnix, kTcp };
  Family family = Family::kUnix;
  std::string path;   // kUnix: the socket path.
  std::string host;   // kTcp: IPv4 literal or hostname.
  uint16_t port = 0;  // kTcp: 0 = ephemeral (listeners only).
};

/// Parses "unix:/path", "tcp:host:port", or a bare path (alias for unix:).
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// The canonical spec string ("unix:/path" or "tcp:host:port").
std::string FormatEndpoint(const Endpoint& endpoint);

/// Connects to the Unix socket at `path`. Returns the connected fd.
Result<int> DialUnix(const std::string& path);

/// Connects to `host:port` over TCP (TCP_NODELAY set).
Result<int> DialTcp(const std::string& host, uint16_t port);

/// Parses `spec` and dials whichever family it names.
Result<int> Dial(const std::string& spec);

/// Binds and listens on `path`. A stale socket file (no listener answers a
/// probe connect) is removed first; a file with a LIVE listener behind it
/// makes this fail with kAlreadyExists instead of hijacking the socket out
/// from under the running daemon.
Result<int> ListenUnix(const std::string& path, int backlog);

/// Binds and listens on `host:port`. Port 0 binds an ephemeral port; the
/// actually-bound port comes back through `bound_port` when non-null.
Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog,
                      uint16_t* bound_port = nullptr);

/// Parses `spec` and listens on whichever family it names. When non-null,
/// `bound` receives the canonical spec with any ephemeral TCP port
/// resolved — the string clients should dial.
Result<int> Listen(const std::string& spec, int backlog,
                   std::string* bound = nullptr);

/// Accepts one connection; returns the fd (TCP_NODELAY set on TCP
/// connections), or an error when the listen fd was closed (the daemon's
/// shutdown path).
Result<int> AcceptConnection(int listen_fd);

/// Writes all of `data` (EINTR-safe, MSG_NOSIGNAL).
Status WriteAll(int fd, const uint8_t* data, size_t size);

/// Reads exactly `size` bytes within `timeout_ms` (-1 = no deadline).
Status ReadExact(int fd, uint8_t* out, size_t size, int timeout_ms);

/// Writes one framed message. `version` stamps the frame header: a
/// responder passes the request frame's version so v1 clients get v1
/// responses; originators use the default.
Status WriteFrame(int fd, wire::FrameKind kind,
                  const std::vector<uint8_t>& payload,
                  uint8_t version = wire::kWireVersion);

/// Reads one framed message: 10-byte header, validation, then the payload.
/// `timeout_ms` is ONE deadline for the whole frame — the payload read gets
/// only what the header read left over.
Result<wire::Frame> ReadFrame(int fd, int timeout_ms,
                              uint32_t max_payload = wire::kMaxFramePayload);

/// close(fd), EINTR-safe and null-tolerant (fd < 0 is a no-op).
void CloseFd(int fd);

}  // namespace net
}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_NET_IO_H_

// Blocking Unix-domain socket helpers shared by the `lp_served` daemon and
// the SocketSolveBackend client: dial/listen plus framed reads and writes
// of the wire protocol (src/runtime/wire.h).
//
// All reads honor a millisecond deadline (poll + recv loops, EINTR-safe);
// -1 blocks indefinitely. Errors come back as Status — a timeout is
// ResourceExhausted("...timed out..."), a peer close is OutOfRange, so the
// client can account them separately. Writes use MSG_NOSIGNAL: a dead peer
// is an error, never a SIGPIPE.

#ifndef LPLOW_RUNTIME_NET_IO_H_
#define LPLOW_RUNTIME_NET_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/wire.h"
#include "src/util/status.h"

namespace lplow {
namespace runtime {
namespace net {

/// Connects to the Unix socket at `path`. Returns the connected fd.
Result<int> DialUnix(const std::string& path);

/// Binds and listens on `path` (unlinking any stale socket file first).
Result<int> ListenUnix(const std::string& path, int backlog);

/// Accepts one connection; returns the fd, or an error when the listen fd
/// was closed (the daemon's shutdown path).
Result<int> AcceptConnection(int listen_fd);

/// Writes all of `data` (EINTR-safe, MSG_NOSIGNAL).
Status WriteAll(int fd, const uint8_t* data, size_t size);

/// Reads exactly `size` bytes within `timeout_ms` (-1 = no deadline).
Status ReadExact(int fd, uint8_t* out, size_t size, int timeout_ms);

/// Writes one framed message. `version` stamps the frame header: a
/// responder passes the request frame's version so v1 clients get v1
/// responses; originators use the default.
Status WriteFrame(int fd, wire::FrameKind kind,
                  const std::vector<uint8_t>& payload,
                  uint8_t version = wire::kWireVersion);

/// Reads one framed message: 10-byte header, validation, then the payload,
/// all within `timeout_ms`.
Result<wire::Frame> ReadFrame(int fd, int timeout_ms,
                              uint32_t max_payload = wire::kMaxFramePayload);

/// close(fd), EINTR-safe and null-tolerant (fd < 0 is a no-op).
void CloseFd(int fd);

}  // namespace net
}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_NET_IO_H_

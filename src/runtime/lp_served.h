// SolveDaemon: the `lp_served` network daemon — a cross-process solver
// cluster node. Listens on a Unix socket or TCP port (endpoint grammar in
// src/runtime/net_io.h), speaks the wire protocol
// (src/runtime/wire.h), and drains every decoded solve job into a
// ShardedSolverService, routed by the job id exactly like the in-process
// backend (StableJobHash % shards), so the served results — and the
// engine's transcripts — are bit-identical to in-process execution.
//
// Connection model: one handler thread per accepted connection, strict
// request/response per connection (clients pool several connections for
// parallelism). Admission control: at most `max_inflight` solve jobs across
// all connections; a request over the cap is answered with kBusy and NOT
// queued — backpressure the client can act on (retry elsewhere, back off,
// or fall back to local solving).
//
// Shutdown: Shutdown() (or a kShutdown frame when allow_remote_shutdown)
// stops the acceptor, closes every connection, joins the handlers, and
// drains the service — a clean exit with no job abandoned mid-solve.

#ifndef LPLOW_RUNTIME_LP_SERVED_H_
#define LPLOW_RUNTIME_LP_SERVED_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/metrics.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/runtime/trace.h"
#include "src/util/status.h"

namespace lplow {
namespace runtime {

class SolveDaemon {
 public:
  struct Options {
    /// Endpoint to listen on (required): "unix:/path", "tcp:host:port"
    /// (port 0 = ephemeral; see bound_endpoint()), or a bare Unix socket
    /// path. A Unix endpoint whose socket file is owned by a LIVE listener
    /// is refused with kAlreadyExists — only a stale file is reclaimed.
    std::string socket_path;
    /// Shards and per-shard workers of the backing ShardedSolverService.
    size_t num_shards = 2;
    size_t threads_per_shard = 1;
    /// Max solve jobs admitted concurrently across all connections;
    /// 0 = unlimited. Requests over the cap get kBusy.
    size_t max_inflight = 0;
    /// Frame payload ceiling (malformed/hostile peers are cut off here).
    uint32_t max_frame_payload = 64u << 20;
    /// Honor kShutdown frames (the CLI daemon enables this so a client can
    /// stop it; embedded/test daemons usually keep it off).
    bool allow_remote_shutdown = false;
    /// Registry for wire.daemon.* metrics; null = MetricsRegistry::Global().
    MetricsRegistry* metrics = nullptr;
    /// Span recorder for the daemon's per-request decode/solve/encode spans
    /// (parented on the client's v2 wire context when present) and the
    /// trace JSON served to kStatsRequest scrapers. Observability only.
    /// Must outlive the daemon.
    trace::TraceRecorder* trace = nullptr;
  };

  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;       // Solve requests admitted.
    uint64_t solved = 0;         // OK responses written.
    uint64_t solve_errors = 0;   // Error responses written (bad job bytes).
    uint64_t busy_rejected = 0;  // kBusy answers (admission control).
    uint64_t malformed = 0;      // Frames that failed protocol decode.
    uint64_t pings = 0;
    uint64_t stats_requests = 0; // kStatsRequest scrapes answered.
  };

  /// Starts listening and accepting. Fails (with no daemon) when the
  /// socket cannot be bound.
  static Result<std::unique_ptr<SolveDaemon>> Start(const Options& options);

  /// Implies Shutdown().
  ~SolveDaemon();

  SolveDaemon(const SolveDaemon&) = delete;
  SolveDaemon& operator=(const SolveDaemon&) = delete;

  /// Blocks until a shutdown is requested (Shutdown(), a kShutdown frame,
  /// or RequestShutdown from a signal-driven caller).
  void WaitForShutdownRequest();

  /// Flags the daemon for shutdown without blocking (async-signal-unsafe
  /// work stays out of signal handlers: the handler calls this, the main
  /// thread does the actual Shutdown after WaitForShutdownRequest returns).
  void RequestShutdown();

  /// Stops accepting, closes every connection, joins all threads, drains
  /// the service, and unlinks the socket file. Idempotent.
  void Shutdown();

  const std::string& socket_path() const { return options_.socket_path; }
  /// The endpoint actually listening, in canonical spec form — for a TCP
  /// listener started on port 0 this carries the kernel-assigned port, so
  /// it is what clients should dial.
  const std::string& bound_endpoint() const { return bound_endpoint_; }
  size_t num_shards() const { return service_->num_shards(); }
  Stats stats() const;
  /// The backing service (per-shard solve accounting lives there).
  ShardedSolverService& service() { return *service_; }

 private:
  explicit SolveDaemon(const Options& options);

  void AcceptLoop();
  void HandleConnection(int fd);
  /// One solve request end-to-end: admission, routing, solve, response.
  /// `version` is the request frame's header version — it selects the
  /// payload dialect (v1 has no trace block) and is echoed on the response.
  void ServeRequest(int fd, const std::vector<uint8_t>& payload,
                    uint8_t version);
  /// One kStatsRequest: serves the registry JSON (and the recorder's trace
  /// JSON when asked and available) back as a kStatsResponse.
  Status ServeStats(int fd, const std::vector<uint8_t>& payload,
                    uint8_t version);

  Options options_;
  std::unique_ptr<ShardedSolverService> service_;
  MetricsRegistry* metrics_;
  trace::TraceRecorder* trace_;
  int listen_fd_ = -1;
  std::string bound_endpoint_;

  Counter* connections_counter_;
  Counter* requests_counter_;
  Counter* solved_counter_;
  Counter* solve_errors_counter_;
  Counter* busy_counter_;
  Counter* malformed_counter_;
  Counter* pings_counter_;
  Counter* stats_requests_counter_;
  Histogram* request_bytes_hist_;

  std::atomic<uint64_t> inflight_{0};
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool shut_down_ = false;
  Stats stats_;
  std::set<int> connection_fds_;
  std::vector<std::thread> handlers_;
  std::thread acceptor_;
};

}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_LP_SERVED_H_

#include "src/runtime/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lplow {
namespace runtime {

void Timer::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  total_seconds_ += seconds;
  max_seconds_ = std::max(max_seconds_, seconds);
}

uint64_t Timer::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Timer::total_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_seconds_;
}

double Timer::mean_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? total_seconds_ / count_ : 0.0;
}

double Timer::max_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_seconds_;
}

void Timer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  total_seconds_ = 0;
  max_seconds_ = 0;
}

std::span<const double> Histogram::BucketBounds() {
  // One shared table for every histogram in the process: kNumBuckets - 1
  // ascending powers of two (the overflow bucket has no upper bound).
  static const std::array<double, kNumBuckets - 1>* bounds = [] {
    auto* b = new std::array<double, kNumBuckets - 1>();
    for (size_t i = 0; i < b->size(); ++i) {
      (*b)[i] = std::ldexp(1.0, kMinExponent + static_cast<int>(i));
    }
    return b;
  }();
  return *bounds;
}

void Histogram::Record(double value) {
  const std::span<const double> bounds = BucketBounds();
  // First bucket whose upper bound holds the value; past the table = the
  // overflow bucket. Non-finite garbage lands in overflow too rather than
  // corrupting the distribution shape.
  size_t index;
  if (std::isnan(value)) {
    index = kNumBuckets - 1;
  } else {
    index = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin());
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += value;
  ++buckets_[index];
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Quantile(double q) const {
  const std::span<const double> bounds = BucketBounds();
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count_)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();  // Unreachable: cumulative == count_ by the end.
}

std::vector<std::pair<int, uint64_t>> Histogram::NonzeroBuckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, uint64_t>> out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] != 0) {
      out.emplace_back(kMinExponent + static_cast<int>(i), buckets_[i]);
    }
  }
  return out;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0;
  buckets_.fill(0);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Timer* MetricsRegistry::GetTimer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

namespace {

// Metric names are identifier-like by convention, but escape the JSON
// specials anyway so the export is always well-formed.
void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ':' << counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ':' << gauge->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ":{\"count\":" << hist->count() << ",\"sum\":" << hist->sum()
       << ",\"p50\":" << hist->Quantile(0.50)
       << ",\"p90\":" << hist->Quantile(0.90)
       << ",\"p99\":" << hist->Quantile(0.99) << ",\"buckets\":{";
    bool first_bucket = true;
    for (const auto& [exponent, bucket_count] : hist->NonzeroBuckets()) {
      if (!first_bucket) os << ',';
      first_bucket = false;
      // Keyed by bucket exponent: "2^k" counts values in (2^(k-1), 2^k];
      // "overflow" (exponent kMaxExponent + 1) counts the rest.
      if (exponent > Histogram::kMaxExponent) {
        os << "\"overflow\"";
      } else {
        os << "\"2^" << exponent << '"';
      }
      os << ':' << bucket_count;
    }
    os << "}}";
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, timer] : timers_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ":{\"count\":" << timer->count()
       << ",\"total_seconds\":" << timer->total_seconds()
       << ",\"mean_seconds\":" << timer->mean_seconds()
       << ",\"max_seconds\":" << timer->max_seconds() << '}';
  }
  os << "}}";
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  for (auto& [name, timer] : timers_) timer->Reset();
}

}  // namespace runtime
}  // namespace lplow

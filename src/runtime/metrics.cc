#include "src/runtime/metrics.h"

#include <algorithm>
#include <sstream>

namespace lplow {
namespace runtime {

void Timer::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  total_seconds_ += seconds;
  max_seconds_ = std::max(max_seconds_, seconds);
}

uint64_t Timer::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Timer::total_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_seconds_;
}

double Timer::max_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_seconds_;
}

void Timer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  total_seconds_ = 0;
  max_seconds_ = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Timer* MetricsRegistry::GetTimer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return it->second.get();
}

namespace {

// Metric names are identifier-like by convention, but escape the JSON
// specials anyway so the export is always well-formed.
void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ':' << counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ':' << gauge->value();
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, timer] : timers_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ":{\"count\":" << timer->count()
       << ",\"total_seconds\":" << timer->total_seconds()
       << ",\"max_seconds\":" << timer->max_seconds() << '}';
  }
  os << "}}";
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, timer] : timers_) timer->Reset();
}

}  // namespace runtime
}  // namespace lplow

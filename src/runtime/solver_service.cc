#include "src/runtime/solver_service.h"

#include <algorithm>
#include <thread>

namespace lplow {
namespace runtime {

namespace {

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(hw, 1);
}

}  // namespace

SolverService::SolverService(const Options& options)
    : pool_(std::make_unique<ThreadPool>(
          ResolveThreadCount(options.num_threads))),
      metrics_(options.metrics ? options.metrics
                               : &MetricsRegistry::Global()) {
  job_timer_ = metrics_->GetTimer("solver_service.job_seconds");
  submitted_counter_ = metrics_->GetCounter("solver_service.jobs_submitted");
  completed_counter_ = metrics_->GetCounter("solver_service.jobs_completed");
  failed_counter_ = metrics_->GetCounter("solver_service.jobs_failed");
  inflight_gauge_ = metrics_->GetGauge("solver_service.inflight");
}

SolverService::~SolverService() {
  Drain();
  pool_.reset();  // Joins the workers.
}

void SolverService::OnSubmit(const std::string& name) {
  submitted_counter_->Increment();
  Counter* kind_counter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = job_counters_.find(name);
    if (it == job_counters_.end()) {
      // First job of this kind: one registry registration, cached after.
      it = job_counters_
               .emplace(name,
                        metrics_->GetCounter("solver_service.jobs." + name))
               .first;
    }
    kind_counter = it->second;
    ++stats_.submitted;
    ++inflight_;
    inflight_gauge_->Set(static_cast<double>(inflight_));
  }
  kind_counter->Increment();
}

void SolverService::OnDone(bool failed) {
  completed_counter_->Increment();
  if (failed) failed_counter_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.completed;
  if (failed) ++stats_.failed;
  --inflight_;
  inflight_gauge_->Set(static_cast<double>(inflight_));
  if (inflight_ == 0) idle_cv_.notify_all();
}

void SolverService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

SolverService::Stats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SolverService::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace runtime
}  // namespace lplow

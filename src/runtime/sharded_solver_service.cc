#include "src/runtime/sharded_solver_service.h"

#include <algorithm>

namespace lplow {
namespace runtime {

ShardedSolverService::ShardedSolverService(const Options& options)
    : metrics_(options.metrics ? options.metrics
                               : &MetricsRegistry::Global()),
      trace_(options.trace) {
  const size_t num_shards = std::max<size_t>(options.num_shards, 1);
  const size_t threads = std::max<size_t>(options.threads_per_shard, 1);
  batch_jobs_counter_ = metrics_->GetCounter("service.shard.batch_jobs");
  queue_wait_hist_ =
      metrics_->GetHistogram("service.shard.queue_wait_seconds");
  execute_hist_ = metrics_->GetHistogram("service.shard.execute_seconds");
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    SolverService::Options sopt;
    sopt.num_threads = threads;
    sopt.metrics = metrics_;
    shard->service = std::make_unique<SolverService>(sopt);
    const std::string prefix = "service.shard." + std::to_string(i);
    shard->submitted_counter = metrics_->GetCounter(prefix + ".submitted");
    shard->completed_counter = metrics_->GetCounter(prefix + ".completed");
    shard->failed_counter = metrics_->GetCounter(prefix + ".failed");
    shard->batches_counter = metrics_->GetCounter(prefix + ".batches");
    shard->solves_counter = metrics_->GetCounter(prefix + ".solves");
    shard->solve_failures_counter =
        metrics_->GetCounter(prefix + ".solve_failures");
    shards_.push_back(std::move(shard));
  }
}

ShardedSolverService::~ShardedSolverService() {
  Drain();
  shards_.clear();  // Each ~SolverService drains and joins its pool.
}

void ShardedSolverService::Execute(uint64_t job_id, const char* kind,
                                   const std::function<void()>& task) {
  const size_t shard_index = ShardFor(job_id);
  Shard& shard = *shards_[shard_index];
  shard.solves.fetch_add(1, std::memory_order_relaxed);
  shard.solves_counter->Increment();
  SolveKindCounter(kind)->Increment();
  // The caller's span context is captured here, on the submitting thread;
  // the worker re-installs it so the queue-wait / execute pair lands under
  // the caller's span even though it runs elsewhere.
  const trace::SpanContext parent =
      trace_ != nullptr ? trace_->CurrentContext() : trace::SpanContext{};
  const uint64_t enqueue_us = trace::TraceRecorder::NowMicros();
  TaskGroup group(shard.service->pool());
  group.Run([&] {
    const uint64_t start_us = trace::TraceRecorder::NowMicros();
    queue_wait_hist_->Record(static_cast<double>(start_us - enqueue_us) *
                             1e-6);
    if (trace_ != nullptr) {
      trace_->RecordComplete("service.queue_wait", enqueue_us, start_us,
                             parent,
                             {{"shard", shard_index}, {"job_id", job_id}});
    }
    trace::ContextScope scope(trace_, parent);
    trace::TraceSpan span(trace_, "service.execute");
    span.Arg("shard", shard_index);
    span.Arg("job_id", job_id);
    task();
    execute_hist_->Record(
        static_cast<double>(trace::TraceRecorder::NowMicros() - start_us) *
        1e-6);
  });
  try {
    group.Wait();  // Helping wait; rethrows what the task threw.
  } catch (...) {
    // Counted as a solve failure, NOT a job failure: Execute has no future
    // and the exception propagates to the caller — if that caller is a
    // service job, the job wrapper counts it once under completed/failed.
    shard.solve_failures.fetch_add(1, std::memory_order_relaxed);
    shard.solve_failures_counter->Increment();
    throw;
  }
}

void ShardedSolverService::Drain() {
  // One pass is not enough: a job draining on shard Y may itself have
  // submitted follow-on work to an earlier-drained shard X. Sweep until a
  // full pass saw no new submissions — a job's submissions are visible to
  // the sweep once its shard drained (OnDone's mutex release), so an equal
  // before/after count proves the pass left nothing behind.
  for (;;) {
    uint64_t before = total_stats().submitted;
    for (auto& shard : shards_) shard->service->Drain();
    if (total_stats().submitted == before) return;
  }
}

ShardedSolverService::ShardStats ShardedSolverService::shard_stats(
    size_t shard) const {
  const Shard& s = *shards_[shard];
  ShardStats out;
  out.submitted = s.submitted.load(std::memory_order_relaxed);
  out.completed = s.completed.load(std::memory_order_relaxed);
  out.failed = s.failed.load(std::memory_order_relaxed);
  out.batches = s.batches.load(std::memory_order_relaxed);
  out.solves = s.solves.load(std::memory_order_relaxed);
  out.solve_failures = s.solve_failures.load(std::memory_order_relaxed);
  return out;
}

ShardedSolverService::ShardStats ShardedSolverService::total_stats() const {
  ShardStats total;
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardStats s = shard_stats(i);
    total.submitted += s.submitted;
    total.completed += s.completed;
    total.failed += s.failed;
    total.batches += s.batches;
    total.solves += s.solves;
    total.solve_failures += s.solve_failures;
  }
  return total;
}

Counter* ShardedSolverService::SolveKindCounter(const char* kind) {
  // Fast path: callers pass string literals, so after the first sighting
  // the same pointer comes back every time — a short lock-free scan
  // replaces the per-solve mutex + string compare (hot on the wire-serve
  // path, where every request is one Execute of kind "WireSolve").
  for (KindSlot& slot : kind_fast_) {
    const char* seen = slot.kind.load(std::memory_order_acquire);
    if (seen == kind) return slot.counter;
    if (seen == nullptr) break;  // Slots fill front-to-back.
  }
  std::lock_guard<std::mutex> lock(solve_kind_mu_);
  auto it = solve_kind_counters_.find(std::string_view(kind));
  if (it == solve_kind_counters_.end()) {
    // First solve of this kind: one registry registration, cached after.
    it = solve_kind_counters_
             .emplace(kind, metrics_->GetCounter(
                                std::string("service.shard.solves.") + kind))
             .first;
  }
  // Publish into the first free fast slot (publishers serialize on the
  // mutex; `counter` is written before the release store of `kind`, which
  // is what readers acquire). A full table or an aliased name just stays
  // on the slow path.
  for (KindSlot& slot : kind_fast_) {
    const char* seen = slot.kind.load(std::memory_order_relaxed);
    if (seen == kind) break;
    if (seen == nullptr) {
      slot.counter = it->second;
      slot.kind.store(kind, std::memory_order_release);
      break;
    }
  }
  return it->second;
}

void ShardedSolverService::NoteSubmitted(Shard& shard, size_t count) {
  shard.submitted.fetch_add(count, std::memory_order_relaxed);
  shard.submitted_counter->Increment(count);
}

void ShardedSolverService::NoteBatch(Shard& shard, size_t jobs_in_batch) {
  shard.batches.fetch_add(1, std::memory_order_relaxed);
  shard.batches_counter->Increment();
  batch_jobs_counter_->Increment(jobs_in_batch);
}

void ShardedSolverService::NoteDone(Shard& shard, bool failed) {
  shard.completed.fetch_add(1, std::memory_order_relaxed);
  shard.completed_counter->Increment();
  if (failed) {
    shard.failed.fetch_add(1, std::memory_order_relaxed);
    shard.failed_counter->Increment();
  }
}

}  // namespace runtime
}  // namespace lplow

// SocketSolveBackend: the engine-side client of the `lp_served` daemon — a
// runtime::SolveBackend whose heavy basis solves cross the process boundary
// as wire frames (src/runtime/wire.h) over pooled Unix-domain or TCP
// connections (endpoint grammar in src/runtime/net_io.h: "unix:/path",
// "tcp:host:port", or a bare path).
//
// Dispatch path: the engine checks WantsSerialized() (true here), encodes
// the solve job, and calls ExecuteSerialized. The client routes the job to
// its home endpoint (StableJobHash(job_id) % endpoints — the same stable
// rule the daemon's shards use), leases a pooled connection or dials a new
// one, and exchanges request/response with a per-request deadline.
//
// Routing modes:
//   kFailoverReplicas (default) — every endpoint is a replica of the same
//     cluster; a job starts at its home endpoint and fails over through
//     the ladder below.
//   kShardByJobHash — each endpoint is a shard that owns its hash slice of
//     the job space (a multi-daemon cluster partitioned the same way the
//     daemon's internal shards are). No cross-endpoint failover: a shard
//     that cannot serve sends the job straight to the local fallback, so a
//     daemon only ever sees its own slice. Results are bit-identical to
//     the replica mode and to in-process execution either way — routing is
//     pure dispatch policy under the determinism contract.
//
// Failure ladder (replica mode), in order:
//   1. retry on the same endpoint (a pooled connection may be stale);
//   2. fail over to the next *healthy* endpoint (an endpoint goes unhealthy
//      after `failover_threshold` consecutive failures; one success heals
//      it, and the home endpoint is always probed so a revived daemon is
//      rediscovered);
//   3. return false — the engine then runs the solve locally via Execute(),
//      which is bit-identical by the determinism contract, so failover
//      never changes results, only where the work ran.
//
// Pipelining: with pipeline_window == 1 (default) a request leases a
// connection exclusively for its round trip. With a window > 1 the
// endpoint's requests share ONE connection carrying up to `window` solves
// in flight; responses are matched back to callers by the job id inside
// the SolveResponse payload, so out-of-order responses and interleaved
// timeouts resolve correctly (a timed-out caller just deregisters — the
// connection survives, and its late response is discarded by job id when
// it eventually arrives).
//
// Backpressure: at most `max_inflight` ExecuteSerialized calls are admitted
// concurrently (a condition-variable gate); a kBusy answer from the daemon
// is not retried on that endpoint — it fails over or falls back.
//
// Byte accounting: every frame the client sends/receives is counted into
// `wire.client.tx_bytes` / `wire.client.rx_bytes` (plus per-frame-kind
// `wire.client.{tx,rx}_bytes.<kind>` counters) and per-endpoint
// EndpointStats.{tx,rx}_bytes — so the transport's real communication sits
// next to the paper's resample/sample byte counters in the same registry.

#ifndef LPLOW_RUNTIME_LP_CLIENT_H_
#define LPLOW_RUNTIME_LP_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/runtime/metrics.h"
#include "src/runtime/solve_backend.h"
#include "src/runtime/trace.h"
#include "src/runtime/wire.h"
#include "src/util/status.h"

namespace lplow {
namespace runtime {

class SocketSolveBackend final : public SolveBackend {
 public:
  enum class RoutingMode {
    /// Endpoints are replicas: home-endpoint-first with failover.
    kFailoverReplicas,
    /// Endpoints are shards keyed StableJobHash(job_id) % endpoints; no
    /// cross-endpoint failover (a failed shard means local fallback).
    kShardByJobHash,
  };

  struct Options {
    /// Endpoint specs of the lp_served daemons (>= 1 required):
    /// "unix:/path", "tcp:host:port", or a bare Unix socket path.
    std::vector<std::string> endpoints;
    /// How multiple endpoints divide the job space (see header comment).
    RoutingMode routing = RoutingMode::kFailoverReplicas;
    /// Solve requests in flight on one connection. 1 = exclusive
    /// lease-per-request (the legacy pool); > 1 shares one pipelined
    /// connection per endpoint with responses matched by job id.
    size_t pipeline_window = 1;
    /// Idle connections kept per endpoint; extras are closed on release.
    size_t max_pooled_connections = 4;
    /// Concurrent ExecuteSerialized calls admitted; 0 = unlimited. Callers
    /// over the cap block (backpressure), they are never dropped.
    size_t max_inflight = 0;
    /// Deadline for one request/response exchange. In lease mode a
    /// timed-out connection is closed, never pooled again — its response
    /// may still arrive and must not be read as the answer to a later
    /// request. In pipelined mode the connection survives a caller's
    /// timeout: the late response is dropped by job id instead.
    int request_timeout_ms = 30'000;
    /// Deadline for the daemon's hello on a fresh connection.
    int hello_timeout_ms = 5'000;
    /// Tries on one endpoint before failing over (>= 1; the first try may
    /// hit a stale pooled connection, so 2 is the useful default).
    int max_attempts_per_endpoint = 2;
    /// Consecutive failures that mark an endpoint unhealthy (skipped during
    /// failover until a probe succeeds).
    int failover_threshold = 3;
    uint32_t max_frame_payload = 64u << 20;
    /// Registry for wire.client.* metrics; null = MetricsRegistry::Global().
    MetricsRegistry* metrics = nullptr;
    /// Span recorder for the client's solve / pool-wait / RTT spans and the
    /// wire trace context stamped into v2 requests. Observability only —
    /// never changes routing, retries, or results. Must outlive the backend.
    trace::TraceRecorder* trace = nullptr;
  };

  /// Cross-endpoint accounting (per-endpoint detail in endpoint_stats()).
  struct Stats {
    uint64_t requests = 0;        // ExecuteSerialized calls.
    uint64_t remote_success = 0;  // Served remotely, response returned.
    uint64_t remote_errors = 0;   // Server said no, deterministically.
    uint64_t busy = 0;            // kBusy answers.
    uint64_t timeouts = 0;        // Exchanges cut by the deadline.
    uint64_t failovers = 0;       // Jobs moved off their home endpoint.
    uint64_t local_fallbacks = 0; // Execute() closures run in-process.
  };

  struct EndpointStats {
    uint64_t dials = 0;          // Dial ATTEMPTS (failures included).
    uint64_t dial_failures = 0;  // Dials (or hellos) that did not connect.
    uint64_t reuses = 0;         // Pooled-connection leases.
    uint64_t successes = 0;
    uint64_t failures = 0;
    uint64_t tx_bytes = 0;  // Frame bytes written to this endpoint.
    uint64_t rx_bytes = 0;  // Frame bytes read from this endpoint.
    int consecutive_failures = 0;
    bool healthy = true;
  };

  static Result<std::unique_ptr<SocketSolveBackend>> Create(
      const Options& options);

  ~SocketSolveBackend() override;

  SocketSolveBackend(const SocketSolveBackend&) = delete;
  SocketSolveBackend& operator=(const SocketSolveBackend&) = delete;

  bool WantsSerialized() const override { return true; }

  /// Ships `request` to the job's endpoint (failing over per the ladder
  /// above when routing allows). True with `*response` filled when a daemon
  /// served it; false when the caller must solve locally.
  bool ExecuteSerialized(uint64_t job_id, const char* kind,
                         const std::vector<uint8_t>& request,
                         std::vector<uint8_t>* response) override;

  /// The local-fallback leg: runs `task` inline on the calling thread.
  void Execute(uint64_t job_id, const char* kind,
               const std::function<void()>& task) override;

  /// Liveness probe: one kPing/kPong exchange with `endpoint`.
  Status Ping(size_t endpoint);

  /// Scrapes `endpoint`'s live observability state: one kStatsRequest /
  /// kStatsResponse exchange returning the daemon's MetricsRegistry JSON
  /// (plus its Chrome trace JSON when `include_trace`).
  Result<wire::StatsResponse> ScrapeStats(size_t endpoint,
                                          bool include_trace = false);

  /// Asks `endpoint`'s daemon to drain and exit (it must have been started
  /// with allow_remote_shutdown).
  Status RequestServerShutdown(size_t endpoint);

  /// Closes every pooled connection and every idle pipelined channel (new
  /// requests dial fresh). A pipelined connection with requests still in
  /// flight is left alone.
  void CloseIdleConnections();

  size_t num_endpoints() const { return endpoints_.size(); }
  const std::string& endpoint_path(size_t i) const;
  Stats stats() const;
  EndpointStats endpoint_stats(size_t endpoint) const;

 private:
  struct Endpoint;
  struct Channel;
  struct Pending;

  /// How one remote exchange ended — the typed signal ExecuteSerialized
  /// classifies stats with (never by matching status text).
  enum class RemoteOutcome {
    kOk,       // Response delivered.
    kBusy,     // Daemon answered kBusy (admission control).
    kTimeout,  // The request deadline cut the exchange.
    kRefused,  // Deterministic server-side refusal (no point failing over).
    kError,    // Anything else: dial/write/read/protocol failure.
  };

  explicit SocketSolveBackend(const Options& options);

  /// Leases a connection: pooled if available, else a fresh dial (hello
  /// consumed). `reused` tells the caller whether a failure might just be
  /// staleness worth one retry. Every dial attempt counts into
  /// EndpointStats.dials; failed dials/hellos into dial_failures.
  Result<int> LeaseConnection(Endpoint& ep, bool* reused);
  void ReturnConnection(Endpoint& ep, int fd);
  void NoteResult(Endpoint& ep, bool success);
  bool EndpointHealthy(const Endpoint& ep) const;

  /// Frame I/O with byte accounting (tx/rx totals, per-kind, per-endpoint).
  Status SendFrame(Endpoint& ep, int fd, wire::FrameKind kind,
                   const std::vector<uint8_t>& payload);
  Result<wire::Frame> RecvFrame(Endpoint& ep, int fd, int timeout_ms);
  void AccountTx(Endpoint& ep, wire::FrameKind kind, size_t payload_bytes);
  void AccountRx(Endpoint& ep, wire::FrameKind kind, size_t payload_bytes);

  /// One request/response on one endpoint (with the per-endpoint retry),
  /// dispatching to the leased or pipelined transport per pipeline_window.
  Status TryEndpoint(Endpoint& ep, const std::vector<uint8_t>& request,
                     uint64_t job_id, std::vector<uint8_t>* response,
                     RemoteOutcome* outcome);
  Status LeasedExchange(Endpoint& ep, const std::vector<uint8_t>& request,
                        uint64_t job_id, std::vector<uint8_t>* response,
                        RemoteOutcome* outcome, bool* retryable);
  Status PipelinedExchange(Endpoint& ep, const std::vector<uint8_t>& request,
                           uint64_t job_id, std::vector<uint8_t>* response,
                           RemoteOutcome* outcome, bool* retryable);
  /// Fails every pending pipelined request on `ch` and resets the
  /// connection (must hold ch.mu; `generation` guards double teardown).
  void FailChannelLocked(Endpoint& ep, Channel& ch, uint64_t generation,
                         const Status& status);
  /// Routes one received frame to its pending request (must hold ch.mu).
  void DispatchFrameLocked(Endpoint& ep, Channel& ch, wire::Frame frame);

  Options options_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;

  Counter* requests_counter_;
  Counter* remote_success_counter_;
  Counter* local_fallback_counter_;
  Counter* failover_counter_;
  Counter* retries_counter_;
  Counter* tx_bytes_counter_;
  Counter* rx_bytes_counter_;
  // Indexed by FrameKind value (0 unused); registered up front so the hot
  // path never takes the registry lock.
  std::vector<Counter*> tx_bytes_by_kind_;
  std::vector<Counter*> rx_bytes_by_kind_;
  Histogram* rtt_hist_;
  trace::TraceRecorder* trace_;

  mutable std::mutex stats_mu_;
  Stats stats_;

  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t inflight_ = 0;
};

/// One-shot remote scrape without building a backend: dials `endpoint`
/// ("unix:/path", "tcp:host:port", or a bare path), consumes the daemon's
/// hello, and exchanges kStatsRequest/kStatsResponse. This is what
/// `lp_client_demo --stats` and `lp_solve_cli --dump-metrics` use against a
/// live daemon.
Result<wire::StatsResponse> ScrapeDaemonStats(const std::string& endpoint,
                                              bool include_trace = false,
                                              int timeout_ms = 5'000);

}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_LP_CLIENT_H_

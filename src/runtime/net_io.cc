#include "src/runtime/net_io.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>

namespace lplow {
namespace runtime {
namespace net {

namespace {

using SteadyTime = std::chrono::steady_clock::time_point;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + strerror(errno));
}

/// Milliseconds left until `deadline`; -1 when there is no deadline.
int RemainingMs(const SteadyTime* deadline) {
  if (deadline == nullptr) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  *deadline - std::chrono::steady_clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

/// ReadExact against an absolute deadline (null = block forever). Keeping
/// the deadline absolute is what makes a multi-read sequence (frame header
/// then payload) spend one total budget instead of one per read.
Status ReadExactUntil(int fd, uint8_t* out, size_t size,
                      const SteadyTime* deadline) {
  size_t got = 0;
  while (got < size) {
    pollfd pfd{fd, POLLIN, 0};
    int ready;
    do {
      ready = poll(&pfd, 1, RemainingMs(deadline));
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return Errno("poll");
    if (ready == 0) return Status::DeadlineExceeded("read timed out");
    ssize_t n = recv(fd, out + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::OutOfRange("connection closed by peer");
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

void SetTcpNoDelay(int fd) {
  int one = 1;
  // Best-effort: a socket that rejects the option (e.g. AF_UNIX) still
  // carries frames correctly, just without the latency hint.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool IsInetSocket(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return false;
  }
  return addr.ss_family == AF_INET || addr.ss_family == AF_INET6;
}

}  // namespace

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  if (spec.empty()) return Status::InvalidArgument("empty endpoint spec");
  Endpoint out;
  if (spec.rfind("unix:", 0) == 0) {
    out.family = Endpoint::Family::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      return Status::InvalidArgument("unix endpoint missing a path: " + spec);
    }
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out.family = Endpoint::Family::kTcp;
    const std::string rest = spec.substr(4);
    // Split at the LAST colon so numeric IPv4 hosts parse; bracketed IPv6
    // is out of scope for this grammar (documented in docs/runtime.md).
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument("tcp endpoint must be tcp:host:port: " +
                                     spec);
    }
    out.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = strtoul(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535) {
      return Status::InvalidArgument("tcp endpoint has a bad port: " + spec);
    }
    out.port = static_cast<uint16_t>(port);
    return out;
  }
  // Back-compat: a bare path is a Unix socket (the pre-TCP endpoint form).
  out.family = Endpoint::Family::kUnix;
  out.path = spec;
  return out;
}

std::string FormatEndpoint(const Endpoint& endpoint) {
  if (endpoint.family == Endpoint::Family::kUnix) {
    return "unix:" + endpoint.path;
  }
  return "tcp:" + endpoint.host + ":" + std::to_string(endpoint.port);
}

Result<int> DialUnix(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " + path);
  }
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status st = Errno(("connect " + path).c_str());
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<int> DialTcp(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  const std::string port_str = std::to_string(port);
  addrinfo* res = nullptr;
  const int gai = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::InvalidArgument("resolve " + host + ": " +
                                   gai_strerror(gai));
  }
  Status last = Status::Internal("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    int rc;
    do {
      rc = connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      SetTcpNoDelay(fd);
      freeaddrinfo(res);
      return fd;
    }
    last = Errno(("connect tcp:" + host + ":" + port_str).c_str());
    CloseFd(fd);
  }
  freeaddrinfo(res);
  return last;
}

Result<int> Dial(const std::string& spec) {
  LPLOW_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(spec));
  if (endpoint.family == Endpoint::Family::kUnix) {
    return DialUnix(endpoint.path);
  }
  return DialTcp(endpoint.host, endpoint.port);
}

Result<int> ListenUnix(const std::string& path, int backlog) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " + path);
  }
  // A leftover socket file makes bind fail with EADDRINUSE, so something
  // must be removed — but only a STALE file. Probe with a connect first:
  // a live daemon answers, and unlinking its socket would silently steal
  // every future client from it.
  if (Result<int> probe = DialUnix(path); probe.ok()) {
    CloseFd(*probe);
    return Status::AlreadyExists("a live listener already owns " + path);
  }
  unlink(path.c_str());
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno(("bind " + path).c_str());
    CloseFd(fd);
    return st;
  }
  if (listen(fd, backlog) < 0) {
    Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog,
                      uint16_t* bound_port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  const std::string port_str = std::to_string(port);
  addrinfo* res = nullptr;
  const int gai = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::InvalidArgument("resolve " + host + ": " +
                                   gai_strerror(gai));
  }
  Status last = Status::Internal("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    int one = 1;
    (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, ai->ai_addr, ai->ai_addrlen) < 0 ||
        listen(fd, backlog) < 0) {
      last = Errno(("bind tcp:" + host + ":" + port_str).c_str());
      CloseFd(fd);
      continue;
    }
    if (bound_port != nullptr) {
      sockaddr_storage bound{};
      socklen_t len = sizeof(bound);
      if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        last = Errno("getsockname");
        CloseFd(fd);
        continue;
      }
      *bound_port =
          bound.ss_family == AF_INET6
              ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
              : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    }
    freeaddrinfo(res);
    return fd;
  }
  freeaddrinfo(res);
  return last;
}

Result<int> Listen(const std::string& spec, int backlog, std::string* bound) {
  LPLOW_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(spec));
  if (endpoint.family == Endpoint::Family::kUnix) {
    LPLOW_ASSIGN_OR_RETURN(int fd, ListenUnix(endpoint.path, backlog));
    if (bound != nullptr) *bound = FormatEndpoint(endpoint);
    return fd;
  }
  uint16_t bound_port = endpoint.port;
  LPLOW_ASSIGN_OR_RETURN(
      int fd, ListenTcp(endpoint.host, endpoint.port, backlog, &bound_port));
  endpoint.port = bound_port;
  if (bound != nullptr) *bound = FormatEndpoint(endpoint);
  return fd;
}

Result<int> AcceptConnection(int listen_fd) {
  while (true) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      if (IsInetSocket(fd)) SetTcpNoDelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, uint8_t* out, size_t size, int timeout_ms) {
  SteadyTime deadline_storage;
  const SteadyTime* deadline = nullptr;
  if (timeout_ms >= 0) {
    deadline_storage = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }
  return ReadExactUntil(fd, out, size, deadline);
}

Status WriteFrame(int fd, wire::FrameKind kind,
                  const std::vector<uint8_t>& payload, uint8_t version) {
  auto frame = wire::EncodeFrame(
      kind, std::span<const uint8_t>(payload.data(), payload.size()),
      version);
  return WriteAll(fd, frame.data(), frame.size());
}

Result<wire::Frame> ReadFrame(int fd, int timeout_ms, uint32_t max_payload) {
  // One deadline for the whole frame: a peer that trickles the header
  // cannot buy the payload a second timeout_ms on top.
  SteadyTime deadline_storage;
  const SteadyTime* deadline = nullptr;
  if (timeout_ms >= 0) {
    deadline_storage = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }
  uint8_t header_bytes[wire::kFrameHeaderBytes];
  LPLOW_RETURN_IF_ERROR(
      ReadExactUntil(fd, header_bytes, sizeof(header_bytes), deadline));
  BitReader r(header_bytes, sizeof(header_bytes));
  wire::Frame frame;
  LPLOW_ASSIGN_OR_RETURN(frame.header,
                         wire::DecodeFrameHeader(&r, max_payload));
  frame.payload.resize(frame.header.payload_size);
  if (frame.header.payload_size > 0) {
    LPLOW_RETURN_IF_ERROR(ReadExactUntil(fd, frame.payload.data(),
                                         frame.payload.size(), deadline));
  }
  return frame;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = close(fd);
  } while (rc < 0 && errno == EINTR);
}

}  // namespace net
}  // namespace runtime
}  // namespace lplow

#include "src/runtime/net_io.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>

namespace lplow {
namespace runtime {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + strerror(errno));
}

/// Milliseconds left until `deadline`; -1 when there is no deadline.
int RemainingMs(const std::chrono::steady_clock::time_point* deadline) {
  if (deadline == nullptr) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  *deadline - std::chrono::steady_clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

Result<int> DialUnix(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " + path);
  }
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status st = Errno(("connect " + path).c_str());
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<int> ListenUnix(const std::string& path, int backlog) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " + path);
  }
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // A previous daemon's socket file would make bind fail with EADDRINUSE;
  // stale files are the common case after a crash, so remove first.
  unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno(("bind " + path).c_str());
    CloseFd(fd);
    return st;
  }
  if (listen(fd, backlog) < 0) {
    Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<int> AcceptConnection(int listen_fd) {
  while (true) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, uint8_t* out, size_t size, int timeout_ms) {
  std::chrono::steady_clock::time_point deadline_storage;
  const std::chrono::steady_clock::time_point* deadline = nullptr;
  if (timeout_ms >= 0) {
    deadline_storage = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }
  size_t got = 0;
  while (got < size) {
    pollfd pfd{fd, POLLIN, 0};
    int ready;
    do {
      ready = poll(&pfd, 1, RemainingMs(deadline));
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return Errno("poll");
    if (ready == 0) return Status::ResourceExhausted("read timed out");
    ssize_t n = recv(fd, out + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::OutOfRange("connection closed by peer");
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFrame(int fd, wire::FrameKind kind,
                  const std::vector<uint8_t>& payload, uint8_t version) {
  auto frame = wire::EncodeFrame(
      kind, std::span<const uint8_t>(payload.data(), payload.size()),
      version);
  return WriteAll(fd, frame.data(), frame.size());
}

Result<wire::Frame> ReadFrame(int fd, int timeout_ms, uint32_t max_payload) {
  uint8_t header_bytes[wire::kFrameHeaderBytes];
  LPLOW_RETURN_IF_ERROR(
      ReadExact(fd, header_bytes, sizeof(header_bytes), timeout_ms));
  BitReader r(header_bytes, sizeof(header_bytes));
  wire::Frame frame;
  LPLOW_ASSIGN_OR_RETURN(frame.header,
                         wire::DecodeFrameHeader(&r, max_payload));
  frame.payload.resize(frame.header.payload_size);
  if (frame.header.payload_size > 0) {
    LPLOW_RETURN_IF_ERROR(ReadExact(fd, frame.payload.data(),
                                    frame.payload.size(), timeout_ms));
  }
  return frame;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = close(fd);
  } while (rc < 0 && errno == EINTR);
}

}  // namespace net
}  // namespace runtime
}  // namespace lplow

#include "src/runtime/wire.h"

#include <string>

namespace lplow {
namespace runtime {
namespace wire {

namespace {

// Shared vector codec for configs and values (the constraint codecs stay
// with their problems). Same pre-allocation discipline as the constraint
// decoders: validate the declared dimension against the remaining bytes
// before constructing the Vec.
void EncodeVec(const Vec& v, BitWriter* w) {
  w->PutU32(static_cast<uint32_t>(v.dim()));
  for (size_t i = 0; i < v.dim(); ++i) w->PutDouble(v[i]);
}

Result<Vec> DecodeVec(BitReader* r) {
  LPLOW_ASSIGN_OR_RETURN(uint32_t dim, r->GetU32());
  if (dim > r->remaining() / 8) {
    return Status::OutOfRange("vector dimension exceeds payload");
  }
  Vec v(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    LPLOW_ASSIGN_OR_RETURN(v[i], r->GetDouble());
  }
  return v;
}

Result<uint32_t> DecodeProblemDim(BitReader* r) {
  LPLOW_ASSIGN_OR_RETURN(uint32_t dim, r->GetU32());
  // The problem ctors CHECK dim >= 1; a decoder must return Status instead
  // of tripping an assert on hostile input.
  if (dim < 1 || dim > kMaxWireDim) {
    return Status::InvalidArgument("problem dimension out of range");
  }
  return dim;
}

// Shared SolverConfig codec for the LexLpSolver-backed problems (Chebyshev
// center, L-inf regression, enclosing annulus). Field order matches the
// LinearProgram codec's inline config block.
void EncodeSolverConfig(const SolverConfig& c, BitWriter* w) {
  w->PutDouble(c.feas_tol);
  w->PutDouble(c.tight_tol);
  w->PutDouble(c.lex_slack);
  w->PutDouble(c.pivot_tol);
  w->PutDouble(c.violation_tol);
  w->PutDouble(c.compare_tol);
  w->PutDouble(c.box_bound);
  w->PutU64(c.seed);
}

Result<SolverConfig> DecodeSolverConfig(BitReader* r) {
  SolverConfig c;
  LPLOW_ASSIGN_OR_RETURN(c.feas_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.tight_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.lex_slack, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.pivot_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.violation_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.compare_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.box_bound, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.seed, r->GetU64());
  return c;
}

}  // namespace

// ----------------------------------------------------------------- frames

FrameKind MaxFrameKindForVersion(uint8_t version) {
  // v1 predates the stats pair; a v1 peer sending kind 9 or 10 is broken,
  // not early.
  return version >= 2 ? FrameKind::kStatsResponse : FrameKind::kShutdown;
}

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello:
      return "hello";
    case FrameKind::kSolveRequest:
      return "solve_request";
    case FrameKind::kSolveResponse:
      return "solve_response";
    case FrameKind::kError:
      return "error";
    case FrameKind::kPing:
      return "ping";
    case FrameKind::kPong:
      return "pong";
    case FrameKind::kBusy:
      return "busy";
    case FrameKind::kShutdown:
      return "shutdown";
    case FrameKind::kStatsRequest:
      return "stats_request";
    case FrameKind::kStatsResponse:
      return "stats_response";
  }
  return "unknown";
}

void EncodeFrameHeader(FrameKind kind, uint32_t payload_size, BitWriter* w,
                       uint8_t version) {
  w->PutU32(kMagic);
  w->PutU8(version);
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutU32(payload_size);
}

Result<FrameHeader> DecodeFrameHeader(BitReader* r, uint32_t max_payload) {
  LPLOW_ASSIGN_OR_RETURN(uint32_t magic, r->GetU32());
  if (magic != kMagic) return Status::InvalidArgument("bad frame magic");
  FrameHeader header;
  LPLOW_ASSIGN_OR_RETURN(header.version, r->GetU8());
  if (header.version < kMinWireVersion || header.version > kWireVersion) {
    return Status::InvalidArgument(
        "unsupported wire version " + std::to_string(header.version) +
        " (this peer speaks " + std::to_string(kMinWireVersion) + ".." +
        std::to_string(kWireVersion) + ")");
  }
  LPLOW_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind < static_cast<uint8_t>(FrameKind::kHello) ||
      kind > static_cast<uint8_t>(MaxFrameKindForVersion(header.version))) {
    return Status::InvalidArgument("unknown frame kind " +
                                   std::to_string(kind));
  }
  header.kind = static_cast<FrameKind>(kind);
  LPLOW_ASSIGN_OR_RETURN(header.payload_size, r->GetU32());
  if (header.payload_size > max_payload) {
    return Status::ResourceExhausted(
        "frame payload " + std::to_string(header.payload_size) +
        " exceeds limit " + std::to_string(max_payload));
  }
  return header;
}

std::vector<uint8_t> EncodeFrame(FrameKind kind,
                                 std::span<const uint8_t> payload,
                                 uint8_t version) {
  BitWriter w;
  EncodeFrameHeader(kind, static_cast<uint32_t>(payload.size()), &w, version);
  w.PutBytes(payload.data(), payload.size());
  return w.Release();
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                          uint32_t max_payload) {
  BitReader r(data, size);
  Frame frame;
  LPLOW_ASSIGN_OR_RETURN(frame.header, DecodeFrameHeader(&r, max_payload));
  if (r.remaining() < frame.header.payload_size) {
    return Status::OutOfRange("truncated frame payload");
  }
  frame.payload.resize(frame.header.payload_size);
  LPLOW_RETURN_IF_ERROR(
      r.GetBytes(frame.payload.data(), frame.payload.size()));
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after frame");
  }
  return frame;
}

// ------------------------------------------------------- control payloads

std::vector<uint8_t> EncodeHelloPayload(const Hello& hello) {
  BitWriter w;
  w.PutVarU64(hello.num_shards);
  w.PutVarU64(hello.max_inflight);
  return w.Release();
}

Result<Hello> DecodeHelloPayload(const std::vector<uint8_t>& payload) {
  BitReader r(payload);
  Hello hello;
  LPLOW_ASSIGN_OR_RETURN(hello.num_shards, r.GetVarU64());
  LPLOW_ASSIGN_OR_RETURN(hello.max_inflight, r.GetVarU64());
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes in hello");
  }
  return hello;
}

std::vector<uint8_t> EncodeErrorPayload(const Status& status) {
  BitWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return w.Release();
}

Status DecodeErrorPayload(const std::vector<uint8_t>& payload) {
  BitReader r(payload);
  auto code = r.GetU8();
  if (!code.ok()) return code.status();
  auto message = r.GetString();
  if (!message.ok()) return message.status();
  if (*code == 0 || *code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("error payload carries unknown status");
  }
  return Status(static_cast<StatusCode>(*code), *std::move(message));
}

std::vector<uint8_t> EncodeStatsRequestPayload(const StatsRequest& request) {
  BitWriter w;
  uint8_t flags = 0;
  if (request.include_metrics) flags |= 0x01;
  if (request.include_trace) flags |= 0x02;
  w.PutU8(flags);
  return w.Release();
}

Result<StatsRequest> DecodeStatsRequestPayload(
    const std::vector<uint8_t>& payload) {
  BitReader r(payload);
  LPLOW_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
  if ((flags & ~uint8_t{0x03}) != 0) {
    return Status::InvalidArgument("stats request carries unknown flags");
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes in stats request");
  }
  StatsRequest request;
  request.include_metrics = (flags & 0x01) != 0;
  request.include_trace = (flags & 0x02) != 0;
  return request;
}

std::vector<uint8_t> EncodeStatsResponsePayload(const StatsResponse& response) {
  BitWriter w;
  w.PutString(response.metrics_json);
  w.PutString(response.trace_json);
  return w.Release();
}

Result<StatsResponse> DecodeStatsResponsePayload(
    const std::vector<uint8_t>& payload) {
  BitReader r(payload);
  StatsResponse response;
  LPLOW_ASSIGN_OR_RETURN(response.metrics_json, r.GetString());
  LPLOW_ASSIGN_OR_RETURN(response.trace_json, r.GetString());
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes in stats response");
  }
  return response;
}

// --------------------------------------------------------- solve payloads

namespace {

// Reads the shared request prefix — job id, problem kind, and (v2+) the
// trace block — leaving `r` positioned at the problem config. Both the
// daemon's peek and the full serve go through here so they cannot disagree
// on the layout.
Result<SolveRequestHead> ReadSolveRequestPrefix(BitReader* r,
                                                uint8_t version) {
  SolveRequestHead head;
  LPLOW_ASSIGN_OR_RETURN(head.job_id, r->GetU64());
  LPLOW_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind < static_cast<uint8_t>(ProblemKind::kLinearProgram) ||
      kind > static_cast<uint8_t>(ProblemKind::kEnclosingAnnulus)) {
    return Status::InvalidArgument("unknown problem kind " +
                                   std::to_string(kind));
  }
  head.problem = static_cast<ProblemKind>(kind);
  if (version >= 2) {
    LPLOW_ASSIGN_OR_RETURN(uint8_t flags, r->GetU8());
    if ((flags & ~kRequestFlagTraceContext) != 0) {
      return Status::InvalidArgument("solve request carries unknown flags");
    }
    if ((flags & kRequestFlagTraceContext) != 0) {
      LPLOW_ASSIGN_OR_RETURN(head.trace.trace_id, r->GetU64());
      LPLOW_ASSIGN_OR_RETURN(head.trace.parent_span, r->GetU64());
      if (!head.trace.present()) {
        return Status::InvalidArgument("solve request trace id is zero");
      }
    }
  }
  return head;
}

}  // namespace

Result<SolveRequestHead> PeekSolveRequestHead(
    const std::vector<uint8_t>& payload, uint8_t version) {
  BitReader r(payload);
  return ReadSolveRequestPrefix(&r, version);
}

Result<SolveResponseHead> PeekSolveResponseHead(
    const std::vector<uint8_t>& payload) {
  BitReader r(payload);
  SolveResponseHead head;
  LPLOW_ASSIGN_OR_RETURN(head.job_id, r.GetU64());
  LPLOW_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  LPLOW_ASSIGN_OR_RETURN(std::string message, r.GetString());
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("solve response carries unknown status");
  }
  head.status = code == 0
                    ? Status::OK()
                    : Status(static_cast<StatusCode>(code), std::move(message));
  return head;
}

std::vector<uint8_t> EncodeSolveErrorResponsePayload(uint64_t job_id,
                                                     const Status& status) {
  BitWriter w;
  w.PutU64(job_id);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return w.Release();
}

// ---------------------------------------------------------- problem codecs

void ProblemCodec<LinearProgram>::EncodeProblem(const LinearProgram& p,
                                                BitWriter* w) {
  EncodeVec(p.objective(), w);
  const SolverConfig& c = p.solver_config();
  w->PutDouble(c.feas_tol);
  w->PutDouble(c.tight_tol);
  w->PutDouble(c.lex_slack);
  w->PutDouble(c.pivot_tol);
  w->PutDouble(c.violation_tol);
  w->PutDouble(c.compare_tol);
  w->PutDouble(c.box_bound);
  w->PutU64(c.seed);
}

Result<LinearProgram> ProblemCodec<LinearProgram>::DecodeProblem(
    BitReader* r) {
  LPLOW_ASSIGN_OR_RETURN(Vec objective, DecodeVec(r));
  if (objective.dim() < 1 || objective.dim() > kMaxWireDim) {
    return Status::InvalidArgument("problem dimension out of range");
  }
  SolverConfig c;
  LPLOW_ASSIGN_OR_RETURN(c.feas_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.tight_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.lex_slack, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.pivot_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.violation_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.compare_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.box_bound, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.seed, r->GetU64());
  return LinearProgram(std::move(objective), c);
}

void ProblemCodec<LinearProgram>::EncodeValue(const LinearProgram::Value& v,
                                              BitWriter* w) {
  w->PutU8(v.feasible ? 1 : 0);
  EncodeVec(v.point, w);
  w->PutDouble(v.objective);
}

Result<LinearProgram::Value> ProblemCodec<LinearProgram>::DecodeValue(
    BitReader* r) {
  LinearProgram::Value v;
  LPLOW_ASSIGN_OR_RETURN(uint8_t feasible, r->GetU8());
  v.feasible = feasible != 0;
  LPLOW_ASSIGN_OR_RETURN(v.point, DecodeVec(r));
  LPLOW_ASSIGN_OR_RETURN(v.objective, r->GetDouble());
  return v;
}

void ProblemCodec<LinearSvm>::EncodeProblem(const LinearSvm& p,
                                            BitWriter* w) {
  w->PutU32(static_cast<uint32_t>(p.dim()));
  const LinearSvm::Config& c = p.config();
  w->PutDouble(c.solver.kkt_tol);
  w->PutVarU64(c.solver.max_epochs);
  w->PutDouble(c.solver.infeasible_norm_cap);
  w->PutDouble(c.solver.active_tol);
  w->PutDouble(c.margin_tol);
  w->PutDouble(c.value_tol);
}

Result<LinearSvm> ProblemCodec<LinearSvm>::DecodeProblem(BitReader* r) {
  LPLOW_ASSIGN_OR_RETURN(uint32_t dim, DecodeProblemDim(r));
  LinearSvm::Config c;
  LPLOW_ASSIGN_OR_RETURN(c.solver.kkt_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(uint64_t max_epochs, r->GetVarU64());
  c.solver.max_epochs = static_cast<size_t>(max_epochs);
  LPLOW_ASSIGN_OR_RETURN(c.solver.infeasible_norm_cap, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.solver.active_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.margin_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.value_tol, r->GetDouble());
  return LinearSvm(dim, c);
}

void ProblemCodec<LinearSvm>::EncodeValue(const LinearSvm::Value& v,
                                          BitWriter* w) {
  w->PutU8(v.separable ? 1 : 0);
  w->PutDouble(v.norm_squared);
  EncodeVec(v.u, w);
}

Result<LinearSvm::Value> ProblemCodec<LinearSvm>::DecodeValue(BitReader* r) {
  LinearSvm::Value v;
  LPLOW_ASSIGN_OR_RETURN(uint8_t separable, r->GetU8());
  v.separable = separable != 0;
  LPLOW_ASSIGN_OR_RETURN(v.norm_squared, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(v.u, DecodeVec(r));
  return v;
}

void ProblemCodec<MinEnclosingBall>::EncodeProblem(const MinEnclosingBall& p,
                                                   BitWriter* w) {
  w->PutU32(static_cast<uint32_t>(p.dim()));
  const MinEnclosingBall::Config& c = p.config();
  w->PutDouble(c.solver.tol);
  w->PutU64(c.solver.seed);
  w->PutDouble(c.contain_tol);
  w->PutDouble(c.value_tol);
}

Result<MinEnclosingBall> ProblemCodec<MinEnclosingBall>::DecodeProblem(
    BitReader* r) {
  LPLOW_ASSIGN_OR_RETURN(uint32_t dim, DecodeProblemDim(r));
  MinEnclosingBall::Config c;
  LPLOW_ASSIGN_OR_RETURN(c.solver.tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.solver.seed, r->GetU64());
  LPLOW_ASSIGN_OR_RETURN(c.contain_tol, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(c.value_tol, r->GetDouble());
  return MinEnclosingBall(dim, c);
}

void ProblemCodec<MinEnclosingBall>::EncodeValue(
    const MinEnclosingBall::Value& v, BitWriter* w) {
  EncodeVec(v.ball.center, w);
  w->PutDouble(v.ball.radius);
}

Result<MinEnclosingBall::Value> ProblemCodec<MinEnclosingBall>::DecodeValue(
    BitReader* r) {
  MinEnclosingBall::Value v;
  LPLOW_ASSIGN_OR_RETURN(v.ball.center, DecodeVec(r));
  LPLOW_ASSIGN_OR_RETURN(v.ball.radius, r->GetDouble());
  return v;
}

void ProblemCodec<ChebyshevCenter>::EncodeProblem(const ChebyshevCenter& p,
                                                  BitWriter* w) {
  w->PutU32(static_cast<uint32_t>(p.dim()));
  EncodeSolverConfig(p.solver_config(), w);
}

Result<ChebyshevCenter> ProblemCodec<ChebyshevCenter>::DecodeProblem(
    BitReader* r) {
  LPLOW_ASSIGN_OR_RETURN(uint32_t dim, DecodeProblemDim(r));
  LPLOW_ASSIGN_OR_RETURN(SolverConfig c, DecodeSolverConfig(r));
  return ChebyshevCenter(dim, c);
}

void ProblemCodec<ChebyshevCenter>::EncodeValue(
    const ChebyshevCenter::Value& v, BitWriter* w) {
  w->PutU8(v.feasible ? 1 : 0);
  EncodeVec(v.center, w);
  w->PutDouble(v.radius);
}

Result<ChebyshevCenter::Value> ProblemCodec<ChebyshevCenter>::DecodeValue(
    BitReader* r) {
  ChebyshevCenter::Value v;
  LPLOW_ASSIGN_OR_RETURN(uint8_t feasible, r->GetU8());
  v.feasible = feasible != 0;
  LPLOW_ASSIGN_OR_RETURN(v.center, DecodeVec(r));
  LPLOW_ASSIGN_OR_RETURN(v.radius, r->GetDouble());
  return v;
}

void ProblemCodec<LinfRegression>::EncodeProblem(const LinfRegression& p,
                                                 BitWriter* w) {
  w->PutU32(static_cast<uint32_t>(p.dim()));
  EncodeSolverConfig(p.solver_config(), w);
}

Result<LinfRegression> ProblemCodec<LinfRegression>::DecodeProblem(
    BitReader* r) {
  LPLOW_ASSIGN_OR_RETURN(uint32_t dim, DecodeProblemDim(r));
  LPLOW_ASSIGN_OR_RETURN(SolverConfig c, DecodeSolverConfig(r));
  return LinfRegression(dim, c);
}

void ProblemCodec<LinfRegression>::EncodeValue(const LinfRegression::Value& v,
                                               BitWriter* w) {
  w->PutU8(v.empty ? 1 : 0);
  w->PutU8(v.feasible ? 1 : 0);
  EncodeVec(v.w, w);
  w->PutDouble(v.t);
}

Result<LinfRegression::Value> ProblemCodec<LinfRegression>::DecodeValue(
    BitReader* r) {
  LinfRegression::Value v;
  LPLOW_ASSIGN_OR_RETURN(uint8_t empty, r->GetU8());
  v.empty = empty != 0;
  LPLOW_ASSIGN_OR_RETURN(uint8_t feasible, r->GetU8());
  v.feasible = feasible != 0;
  LPLOW_ASSIGN_OR_RETURN(v.w, DecodeVec(r));
  LPLOW_ASSIGN_OR_RETURN(v.t, r->GetDouble());
  return v;
}

void ProblemCodec<EnclosingAnnulus>::EncodeProblem(const EnclosingAnnulus& p,
                                                   BitWriter* w) {
  w->PutU32(static_cast<uint32_t>(p.dim()));
  EncodeSolverConfig(p.solver_config(), w);
}

Result<EnclosingAnnulus> ProblemCodec<EnclosingAnnulus>::DecodeProblem(
    BitReader* r) {
  LPLOW_ASSIGN_OR_RETURN(uint32_t dim, DecodeProblemDim(r));
  LPLOW_ASSIGN_OR_RETURN(SolverConfig c, DecodeSolverConfig(r));
  return EnclosingAnnulus(dim, c);
}

void ProblemCodec<EnclosingAnnulus>::EncodeValue(
    const EnclosingAnnulus::Value& v, BitWriter* w) {
  w->PutU8(v.empty ? 1 : 0);
  w->PutU8(v.feasible ? 1 : 0);
  EncodeVec(v.center, w);
  w->PutDouble(v.u);
  w->PutDouble(v.l);
}

Result<EnclosingAnnulus::Value> ProblemCodec<EnclosingAnnulus>::DecodeValue(
    BitReader* r) {
  EnclosingAnnulus::Value v;
  LPLOW_ASSIGN_OR_RETURN(uint8_t empty, r->GetU8());
  v.empty = empty != 0;
  LPLOW_ASSIGN_OR_RETURN(uint8_t feasible, r->GetU8());
  v.feasible = feasible != 0;
  LPLOW_ASSIGN_OR_RETURN(v.center, DecodeVec(r));
  LPLOW_ASSIGN_OR_RETURN(v.u, r->GetDouble());
  LPLOW_ASSIGN_OR_RETURN(v.l, r->GetDouble());
  return v;
}

// ------------------------------------------------------------ daemon path

namespace {

/// Decodes problem + constraints from `r` (positioned after the request
/// prefix), solves, and encodes the response — each stage under its own
/// daemon span when a recorder is attached. The one template the daemon's
/// per-kind switch instantiates for each ProblemKind.
template <WireSolvable P>
Result<std::vector<uint8_t>> ServeTyped(BitReader* r, uint64_t job_id,
                                        const ServeOptions& options) {
  std::vector<typename P::Constraint> constraints;
  Result<P> problem = Status::Internal("decode did not run");
  {
    trace::TraceSpan span(options.trace, "daemon.decode", options.parent);
    span.Arg("job_id", job_id);
    problem = ProblemCodec<P>::DecodeProblem(r);
    if (!problem.ok()) return problem.status();
    LPLOW_ASSIGN_OR_RETURN(uint64_t count, r->GetVarU64());
    // Every serialized constraint is at least one byte, so a count beyond
    // the remaining bytes cannot be honest — reject before reserving.
    if (count > r->remaining()) {
      return Status::OutOfRange("constraint count exceeds payload");
    }
    constraints.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      LPLOW_ASSIGN_OR_RETURN(auto c, problem->DeserializeConstraint(r));
      constraints.push_back(std::move(c));
    }
    if (!r->exhausted()) {
      return Status::InvalidArgument("trailing bytes in solve request");
    }
    span.Arg("constraints", constraints.size());
  }
  BasisResult<typename P::Value, typename P::Constraint> result;
  {
    trace::TraceSpan span(options.trace, "daemon.solve", options.parent);
    span.Arg("job_id", job_id);
    span.Arg("constraints", constraints.size());
    result = problem->SolveBasis(
        std::span<const typename P::Constraint>(constraints));
  }
  trace::TraceSpan span(options.trace, "daemon.encode", options.parent);
  span.Arg("job_id", job_id);
  std::vector<uint8_t> response =
      EncodeSolveResponsePayload(job_id, *problem, result);
  span.Arg("bytes", response.size());
  return response;
}

}  // namespace

Result<std::vector<uint8_t>> ServeSolveRequestPayload(
    const std::vector<uint8_t>& payload, const ServeOptions& options) {
  BitReader r(payload);
  LPLOW_ASSIGN_OR_RETURN(SolveRequestHead head,
                         ReadSolveRequestPrefix(&r, options.version));
  switch (head.problem) {
    case ProblemKind::kLinearProgram:
      return ServeTyped<LinearProgram>(&r, head.job_id, options);
    case ProblemKind::kLinearSvm:
      return ServeTyped<LinearSvm>(&r, head.job_id, options);
    case ProblemKind::kMinEnclosingBall:
      return ServeTyped<MinEnclosingBall>(&r, head.job_id, options);
    case ProblemKind::kChebyshevCenter:
      return ServeTyped<ChebyshevCenter>(&r, head.job_id, options);
    case ProblemKind::kLinfRegression:
      return ServeTyped<LinfRegression>(&r, head.job_id, options);
    case ProblemKind::kEnclosingAnnulus:
      return ServeTyped<EnclosingAnnulus>(&r, head.job_id, options);
  }
  return Status::InvalidArgument("unknown problem kind");
}

}  // namespace wire
}  // namespace runtime
}  // namespace lplow

#include "src/runtime/lp_served.h"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "src/runtime/net_io.h"
#include "src/runtime/wire.h"

namespace lplow {
namespace runtime {

SolveDaemon::SolveDaemon(const Options& options)
    : options_(options), trace_(options.trace) {
  ShardedSolverService::Options service_options;
  service_options.num_shards = options.num_shards;
  service_options.threads_per_shard = options.threads_per_shard;
  service_options.metrics = options.metrics;
  service_options.trace = options.trace;
  service_ = std::make_unique<ShardedSolverService>(service_options);
  metrics_ =
      options.metrics != nullptr ? options.metrics : &MetricsRegistry::Global();
  connections_counter_ = metrics_->GetCounter("wire.daemon.connections");
  requests_counter_ = metrics_->GetCounter("wire.daemon.requests");
  solved_counter_ = metrics_->GetCounter("wire.daemon.solved");
  solve_errors_counter_ = metrics_->GetCounter("wire.daemon.solve_errors");
  busy_counter_ = metrics_->GetCounter("wire.daemon.busy_rejected");
  malformed_counter_ = metrics_->GetCounter("wire.daemon.malformed");
  pings_counter_ = metrics_->GetCounter("wire.daemon.pings");
  stats_requests_counter_ = metrics_->GetCounter("wire.daemon.stats_requests");
  request_bytes_hist_ = metrics_->GetHistogram("wire.daemon.request_bytes");
}

Result<std::unique_ptr<SolveDaemon>> SolveDaemon::Start(
    const Options& options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("SolveDaemon requires a socket_path");
  }
  if (options.num_shards < 1 || options.threads_per_shard < 1) {
    return Status::InvalidArgument(
        "SolveDaemon requires num_shards >= 1 and threads_per_shard >= 1");
  }
  // No make_unique: the constructor is private.
  std::unique_ptr<SolveDaemon> daemon(new SolveDaemon(options));
  LPLOW_ASSIGN_OR_RETURN(
      daemon->listen_fd_,
      net::Listen(options.socket_path, /*backlog=*/64,
                  &daemon->bound_endpoint_));
  daemon->acceptor_ = std::thread([d = daemon.get()] { d->AcceptLoop(); });
  return daemon;
}

SolveDaemon::~SolveDaemon() { Shutdown(); }

void SolveDaemon::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void SolveDaemon::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void SolveDaemon::Shutdown() {
  RequestShutdown();
  if (stopping_.exchange(true)) {
    // A concurrent or earlier Shutdown owns the teardown; wait for the
    // acceptor it joins rather than racing it.
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [this] { return shut_down_; });
    return;
  }
  // shutdown() fails the blocking accept and the acceptor exits. close()
  // alone does NOT wake a thread already blocked in accept(2) on Linux —
  // the shutdown is what unblocks it. The fd itself is closed only after
  // the join: the acceptor reads listen_fd_ outside the lock, so it must
  // be gone before the value changes.
  // A daemon whose Start failed at Listen (e.g. kAlreadyExists: a live
  // daemon owns the path) never held the socket — its teardown must not
  // unlink the owner's address out from under it.
  const bool owned_listener = listen_fd_ >= 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ::shutdown(listen_fd_, SHUT_RDWR);
    // Handlers block in recv; shutdown() (not close — the handler still owns
    // the fd and closes it itself, so the descriptor cannot be reused under
    // it) makes those reads return "peer closed" and the handlers exit.
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  service_->Drain();
  // Only a Unix-family endpoint leaves a filesystem artifact to remove (a
  // TCP listener's port is released when the fd closes), and only if this
  // daemon actually bound it.
  if (Result<net::Endpoint> parsed = net::ParseEndpoint(options_.socket_path);
      owned_listener && parsed.ok() &&
      parsed->family == net::Endpoint::Family::kUnix) {
    unlink(parsed->path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shut_down_ = true;
  }
  shutdown_cv_.notify_all();
}

SolveDaemon::Stats SolveDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SolveDaemon::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<int> accepted = net::AcceptConnection(listen_fd_);
    if (!accepted.ok()) break;  // Listen fd closed: shutdown.
    const int fd = *accepted;
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      net::CloseFd(fd);
      break;
    }
    stats_.connections++;
    connections_counter_->Increment();
    connection_fds_.insert(fd);
    handlers_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void SolveDaemon::HandleConnection(int fd) {
  wire::Hello hello;
  hello.num_shards = service_->num_shards();
  hello.max_inflight = options_.max_inflight;
  Status st = net::WriteFrame(fd, wire::FrameKind::kHello,
                              wire::EncodeHelloPayload(hello));
  while (st.ok() && !stopping_.load(std::memory_order_acquire)) {
    Result<wire::Frame> frame =
        net::ReadFrame(fd, /*timeout_ms=*/-1, options_.max_frame_payload);
    if (!frame.ok()) {
      // A peer close (clean disconnect or our own shutdown) ends the
      // conversation quietly; anything else is a protocol violation the
      // peer gets told about before the cut.
      if (frame.status().code() != StatusCode::kOutOfRange) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.malformed++;
        malformed_counter_->Increment();
        net::WriteFrame(fd, wire::FrameKind::kError,
                        wire::EncodeErrorPayload(frame.status()));
      }
      break;
    }
    switch (frame->header.kind) {
      case wire::FrameKind::kPing: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.pings++;
        }
        pings_counter_->Increment();
        st = net::WriteFrame(fd, wire::FrameKind::kPong, {},
                             frame->header.version);
        break;
      }
      case wire::FrameKind::kSolveRequest: {
        ServeRequest(fd, frame->payload, frame->header.version);
        break;
      }
      case wire::FrameKind::kStatsRequest: {
        st = ServeStats(fd, frame->payload, frame->header.version);
        break;
      }
      case wire::FrameKind::kShutdown: {
        if (options_.allow_remote_shutdown) {
          // Ack first so the requesting client sees a response before the
          // connection drops, then flag the waiter (the daemon main thread
          // performs the actual Shutdown — never this handler, which would
          // otherwise join itself).
          net::WriteFrame(fd, wire::FrameKind::kPong, {});
          RequestShutdown();
        } else {
          net::WriteFrame(
              fd, wire::FrameKind::kError,
              wire::EncodeErrorPayload(Status::FailedPrecondition(
                  "daemon does not allow remote shutdown")));
        }
        st = Status::OutOfRange("connection done");  // Ends the loop.
        break;
      }
      default: {
        // kHello / kSolveResponse / kBusy / kPong / kError are
        // daemon-to-client kinds; a client sending one is broken.
        {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.malformed++;
          malformed_counter_->Increment();
        }
        net::WriteFrame(fd, wire::FrameKind::kError,
                        wire::EncodeErrorPayload(Status::InvalidArgument(
                            "unexpected frame kind from client")));
        st = Status::OutOfRange("connection done");
        break;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  connection_fds_.erase(fd);
  net::CloseFd(fd);
}

void SolveDaemon::ServeRequest(int fd, const std::vector<uint8_t>& payload,
                               uint8_t version) {
  if (options_.max_inflight > 0) {
    if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
        options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.busy_rejected++;
        busy_counter_->Increment();
      }
      net::WriteFrame(fd, wire::FrameKind::kBusy, {}, version);
      return;
    }
  }
  Result<wire::SolveRequestHead> head =
      wire::PeekSolveRequestHead(payload, version);
  if (!head.ok()) {
    if (options_.max_inflight > 0) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.malformed++;
    malformed_counter_->Increment();
    net::WriteFrame(fd, wire::FrameKind::kError,
                    wire::EncodeErrorPayload(head.status()), version);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests++;
  }
  requests_counter_->Increment();
  request_bytes_hist_->Record(static_cast<double>(payload.size()));
  // The daemon-side root span: parented on the client's wire context when
  // the v2 request carried one, so the client's solve span and this
  // request's decode/solve/encode children share one trace id.
  trace::TraceSpan req_span(
      trace_, "daemon.request",
      trace::SpanContext{head->trace.trace_id, head->trace.parent_span});
  req_span.Arg("job_id", head->job_id);
  req_span.Arg("bytes", payload.size());
  // Route through the sharded service exactly like the in-process backend:
  // same StableJobHash(job_id) % shards shard, same per-shard accounting,
  // so a served cluster's stats line up with the local ones.
  Result<std::vector<uint8_t>> response =
      Status::Internal("solve did not run");
  wire::ServeOptions serve_options;
  serve_options.version = version;
  serve_options.trace = trace_;
  serve_options.parent = req_span.context();
  service_->Execute(head->job_id, "WireSolve",
                    [&payload, &response, &serve_options] {
    response = wire::ServeSolveRequestPayload(payload, serve_options);
  });
  if (options_.max_inflight > 0) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (response.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.solved++;
    }
    solved_counter_->Increment();
    net::WriteFrame(fd, wire::FrameKind::kSolveResponse, *response, version);
    return;
  }
  // The job decoded far enough to know its id but could not be served
  // (unknown kind, truncated constraints, hostile dims...). Deterministic
  // failure: tell the client inside a SolveResponse so it can fall back to
  // solving locally instead of burning retries.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.solve_errors++;
  }
  solve_errors_counter_->Increment();
  net::WriteFrame(
      fd, wire::FrameKind::kSolveResponse,
      wire::EncodeSolveErrorResponsePayload(head->job_id, response.status()),
      version);
}

Status SolveDaemon::ServeStats(int fd, const std::vector<uint8_t>& payload,
                               uint8_t version) {
  Result<wire::StatsRequest> request =
      wire::DecodeStatsRequestPayload(payload);
  if (!request.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.malformed++;
      malformed_counter_->Increment();
    }
    net::WriteFrame(fd, wire::FrameKind::kError,
                    wire::EncodeErrorPayload(request.status()), version);
    return Status::OutOfRange("connection done");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.stats_requests++;
  }
  stats_requests_counter_->Increment();
  wire::StatsResponse response;
  if (request->include_metrics) response.metrics_json = metrics_->ToJson();
  if (request->include_trace && trace_ != nullptr) {
    response.trace_json = trace_->ToChromeJson();
  }
  return net::WriteFrame(fd, wire::FrameKind::kStatsResponse,
                         wire::EncodeStatsResponsePayload(response), version);
}

}  // namespace runtime
}  // namespace lplow

// Lock-cheap span tracing for the solve pipeline: every engine iteration,
// violator scan, basis solve, shard dispatch, and wire hop can record a
// span, and the whole run exports as Chrome trace_event JSON that loads
// directly in Perfetto or chrome://tracing (docs/runtime.md §"Tracing and
// histograms").
//
// Design goals, in order:
//   1. Disabled tracing is free. A `TraceSpan` built against a null or
//      disabled recorder reads no clock, takes no lock, and allocates
//      nothing — the engine hot path pays two predictable branches
//      (tests/trace_test.cc pins the zero-allocation property).
//   2. Recording is lock-cheap. Events append to a per-thread shard whose
//      mutex is only ever contended by the exporter, never by another
//      recording thread; span/trace ids come from one atomic counter.
//   3. Traces stitch across threads and the wire. Each thread carries a
//      stack of span contexts, so nested RAII spans parent naturally; a
//      `ContextScope` re-installs a parent on a worker thread, and the
//      (trace_id, parent_span) pair rides inside a v2 SolveRequest frame so
//      daemon-side spans attach under the client's trace (src/runtime/wire.h).
//
// Tracing never feeds back into solving: spans observe timestamps and ids
// but no solver state, so enabling a recorder cannot change transcripts,
// counters, or goldens — the determinism contract stays intact.

#ifndef LPLOW_RUNTIME_TRACE_H_
#define LPLOW_RUNTIME_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace lplow {
namespace runtime {
namespace trace {

/// Identity of one span: the trace it belongs to plus its own id. A zero
/// trace_id means "no context" — a span built under it starts a new trace.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// Thread-sharded span recorder. One recorder outlives every span and scope
/// built against it; all members are thread-safe.
class TraceRecorder {
 public:
  /// Spans carry at most this many key/value args (fixed so recording never
  /// allocates per-arg).
  static constexpr size_t kMaxArgs = 4;

  struct Arg {
    const char* key;  // Must outlive the recorder (string literals).
    uint64_t value;
  };

  /// One finished span as stored and exported. `tid` is the recording
  /// thread's registration index (dense from 0), not the OS thread id —
  /// stable enough for export, small enough for test assertions.
  struct EventRecord {
    const char* name = nullptr;  // Must outlive the recorder.
    uint64_t ts_us = 0;          // Steady-clock start, microseconds.
    uint64_t dur_us = 0;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;  // 0 = root span of its trace.
    uint32_t tid = 0;
    uint8_t num_args = 0;
    std::array<Arg, kMaxArgs> args{};
  };

  explicit TraceRecorder(bool enabled = true);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Names the process row in the exported trace ("lp_served", ...).
  void SetProcessLabel(std::string label);

  /// Fresh nonzero trace id, unique within this process.
  uint64_t NewTraceId() { return NextId(); }

  /// Steady-clock timestamp in microseconds (Stopwatch::NowMicros).
  static uint64_t NowMicros();

  /// Innermost span context installed on the calling thread by a live
  /// TraceSpan or ContextScope of THIS recorder; invalid context if none.
  SpanContext CurrentContext() const;

  /// Records a finished span from explicit timestamps — the async form, for
  /// intervals measured across threads (queue wait: enqueue on one thread,
  /// start on another). `parent` with a zero trace_id starts a new trace.
  /// Returns the recorded span's context (invalid when disabled).
  SpanContext RecordComplete(const char* name, uint64_t start_us,
                             uint64_t end_us, SpanContext parent,
                             std::initializer_list<Arg> args = {});

  size_t event_count() const;

  /// Copies out every recorded event (exporter order: stable-sorted by
  /// start timestamp).
  std::vector<EventRecord> Snapshot() const;

  /// Drops recorded events; thread registrations and ids survive.
  void Clear();

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one "X" (complete)
  /// event per span, stable-sorted by start timestamp, pid = this process,
  /// tid = thread registration index. Loads in Perfetto / chrome://tracing.
  void WriteChromeJson(std::ostream& os) const;
  std::string ToChromeJson() const;

 private:
  friend class TraceSpan;
  friend class ContextScope;

  struct ThreadShard {
    std::mutex mu;
    std::vector<EventRecord> events;
    uint32_t tid = 0;
  };

  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// This thread's shard (registered on first use, cached thread-locally).
  ThreadShard* GetShard();
  void Append(EventRecord ev);

  // Per-thread context stack plumbing (see trace.cc for the TLS stacks).
  void PushContext(SpanContext ctx);
  void PopContext(SpanContext ctx);

  const uint64_t id_;  // Process-unique; keys the TLS caches, never reused.
  std::atomic<bool> enabled_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::string process_label_;
  std::vector<std::unique_ptr<ThreadShard>> shards_;
  std::map<std::thread::id, ThreadShard*> shard_by_thread_;
};

/// RAII span: starts timing at construction, records at destruction, and is
/// the calling thread's current context in between (so nested spans parent
/// under it automatically). Inert — no clock read, no allocation — when the
/// recorder is null or disabled.
class TraceSpan {
 public:
  /// Parents under the thread's current context (new trace if none).
  TraceSpan(TraceRecorder* recorder, const char* name);

  /// Parents under an explicit context — e.g. one carried across the wire
  /// or captured before hopping threads.
  TraceSpan(TraceRecorder* recorder, const char* name, SpanContext parent);

  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key/value arg (silently dropped beyond kMaxArgs or when the
  /// span is inactive). Keys must be string literals.
  void Arg(const char* key, uint64_t value);

  /// This span's identity; invalid when inactive. The pair that crosses the
  /// wire as a v2 SolveRequest's trace context.
  SpanContext context() const { return ctx_; }

  bool active() const { return recorder_ != nullptr; }

 private:
  void Init(TraceRecorder* recorder, const char* name, SpanContext parent);

  TraceRecorder* recorder_ = nullptr;  // Null = inert span.
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
  SpanContext ctx_;
  uint64_t parent_span_ = 0;
  uint8_t num_args_ = 0;
  std::array<TraceRecorder::Arg, TraceRecorder::kMaxArgs> args_{};
};

/// Installs an explicit span context as the calling thread's current one for
/// the scope's lifetime — how a worker thread picks up the submitting
/// thread's span (or a daemon thread the client's wire context) as parent.
class ContextScope {
 public:
  ContextScope(TraceRecorder* recorder, SpanContext ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  SpanContext ctx_;
};

/// Splices several WriteChromeJson documents into one (client + scraped
/// daemon trace -> a single file Perfetto loads whole). Inputs must be in
/// the exporter's own format; empty strings are skipped.
std::string MergeChromeTraces(std::span<const std::string> traces);

}  // namespace trace
}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_TRACE_H_

#include "src/runtime/lp_client.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <unordered_map>
#include <utility>

#include "src/runtime/net_io.h"
#include "src/runtime/wire.h"
#include "src/util/logging.h"

namespace lplow {
namespace runtime {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Milliseconds until `deadline`, floored at 1 so a nearly-expired caller
/// still makes one poll; the caller's own deadline check decides expiry.
int RemainingMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  return std::max<int>(1, static_cast<int>(left.count()));
}

}  // namespace

/// One caller's slot in a pipelined channel, stack-allocated in
/// PipelinedExchange and only ever touched under Channel::mu. The reader
/// fills it in (outcome + status + payload), erases it from the pending
/// map, and notifies; the owner wakes on `done` and consumes it.
struct SocketSolveBackend::Pending {
  bool done = false;
  RemoteOutcome outcome = RemoteOutcome::kError;
  Status status;
  std::vector<uint8_t> payload;
};

/// The shared pipelined connection of one endpoint (pipeline_window > 1).
/// There is no background reader thread: whichever waiter arrives first
/// becomes the reader (leader/follower), reads ONE frame with ch.mu
/// released, dispatches it under ch.mu, and relinquishes the role — so the
/// connection is serviced exactly while someone is waiting on it.
///
/// `order` records the send order of solve job ids. Responses are matched
/// by the job id inside the payload; id-less replies (kBusy) are matched
/// FIFO against the front of `order` — valid because the daemon serves one
/// connection strictly in order. A timed-out caller erases its pending
/// entry but LEAVES its order entry: the daemon will still answer that
/// request, and the FIFO alignment must account for it (the late response
/// is dropped when no pending owner claims it).
///
/// Lock order: ch.mu may be held while taking ep.mu, never the reverse.
/// `send_mu` serializes frame writes and is only taken with ch.mu free, so
/// a sender blocked on a full socket buffer never stalls the reader.
struct SocketSolveBackend::Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::mutex send_mu;
  int fd = -1;
  /// Bumped on every teardown; guards a reader that raced a reset.
  uint64_t generation = 0;
  /// Registered exchanges not yet collected (window admission counts this).
  size_t inflight = 0;
  bool reader_active = false;
  std::deque<uint64_t> order;
  std::unordered_map<uint64_t, Pending*> pending;
};

struct SocketSolveBackend::Endpoint {
  std::string spec;
  std::mutex mu;
  std::vector<int> idle;  // Pooled connections, hello already consumed.
  EndpointStats stats;
  std::unique_ptr<Channel> channel;
};

namespace {

/// Scoped admission slot: blocks in the constructor until the in-flight
/// count is under the cap, releases (and wakes one waiter) on destruction.
class AdmissionSlot {
 public:
  AdmissionSlot(std::mutex* mu, std::condition_variable* cv, size_t* inflight,
                size_t cap)
      : mu_(mu), cv_(cv), inflight_(inflight), cap_(cap) {
    if (cap_ == 0) return;
    std::unique_lock<std::mutex> lock(*mu_);
    cv_->wait(lock, [this] { return *inflight_ < cap_; });
    ++*inflight_;
  }
  ~AdmissionSlot() {
    if (cap_ == 0) return;
    {
      std::lock_guard<std::mutex> lock(*mu_);
      --*inflight_;
    }
    cv_->notify_one();
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  std::mutex* mu_;
  std::condition_variable* cv_;
  size_t* inflight_;
  size_t cap_;
};

}  // namespace

SocketSolveBackend::SocketSolveBackend(const Options& options)
    : options_(options) {
  for (const std::string& spec : options.endpoints) {
    auto ep = std::make_unique<Endpoint>();
    ep->spec = spec;
    ep->channel = std::make_unique<Channel>();
    endpoints_.push_back(std::move(ep));
  }
  MetricsRegistry* metrics =
      options.metrics != nullptr ? options.metrics : &MetricsRegistry::Global();
  requests_counter_ = metrics->GetCounter("wire.client.requests");
  remote_success_counter_ = metrics->GetCounter("wire.client.remote_success");
  local_fallback_counter_ = metrics->GetCounter("wire.client.local_fallbacks");
  failover_counter_ = metrics->GetCounter("wire.client.failovers");
  retries_counter_ = metrics->GetCounter("wire.client.retries");
  tx_bytes_counter_ = metrics->GetCounter("wire.client.tx_bytes");
  rx_bytes_counter_ = metrics->GetCounter("wire.client.rx_bytes");
  const size_t kinds =
      static_cast<size_t>(wire::FrameKind::kStatsResponse) + 1;
  tx_bytes_by_kind_.assign(kinds, nullptr);
  rx_bytes_by_kind_.assign(kinds, nullptr);
  for (size_t k = static_cast<size_t>(wire::FrameKind::kHello); k < kinds;
       ++k) {
    const char* name = wire::FrameKindName(static_cast<wire::FrameKind>(k));
    tx_bytes_by_kind_[k] =
        metrics->GetCounter(std::string("wire.client.tx_bytes.") + name);
    rx_bytes_by_kind_[k] =
        metrics->GetCounter(std::string("wire.client.rx_bytes.") + name);
  }
  rtt_hist_ = metrics->GetHistogram("wire.client.rtt_seconds");
  trace_ = options.trace;
}

Result<std::unique_ptr<SocketSolveBackend>> SocketSolveBackend::Create(
    const Options& options) {
  if (options.endpoints.empty()) {
    return Status::InvalidArgument(
        "SocketSolveBackend requires at least one endpoint");
  }
  for (const std::string& spec : options.endpoints) {
    LPLOW_RETURN_IF_ERROR(net::ParseEndpoint(spec).status());
  }
  if (options.max_attempts_per_endpoint < 1 || options.failover_threshold < 1) {
    return Status::InvalidArgument(
        "max_attempts_per_endpoint and failover_threshold must be >= 1");
  }
  if (options.pipeline_window < 1) {
    return Status::InvalidArgument("pipeline_window must be >= 1");
  }
  return std::unique_ptr<SocketSolveBackend>(new SocketSolveBackend(options));
}

SocketSolveBackend::~SocketSolveBackend() { CloseIdleConnections(); }

void SocketSolveBackend::CloseIdleConnections() {
  for (auto& ep : endpoints_) {
    {
      std::lock_guard<std::mutex> lock(ep->mu);
      for (int fd : ep->idle) net::CloseFd(fd);
      ep->idle.clear();
    }
    Channel& ch = *ep->channel;
    std::lock_guard<std::mutex> lock(ch.mu);
    if (ch.inflight == 0 && ch.fd >= 0) {
      net::CloseFd(ch.fd);
      ch.fd = -1;
      ch.generation++;
      ch.order.clear();
    }
  }
}

const std::string& SocketSolveBackend::endpoint_path(size_t i) const {
  return endpoints_[i]->spec;
}

SocketSolveBackend::Stats SocketSolveBackend::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

SocketSolveBackend::EndpointStats SocketSolveBackend::endpoint_stats(
    size_t endpoint) const {
  Endpoint& ep = *endpoints_[endpoint];
  std::lock_guard<std::mutex> lock(ep.mu);
  return ep.stats;
}

bool SocketSolveBackend::EndpointHealthy(const Endpoint& ep) const {
  return ep.stats.consecutive_failures < options_.failover_threshold;
}

void SocketSolveBackend::NoteResult(Endpoint& ep, bool success) {
  std::lock_guard<std::mutex> lock(ep.mu);
  if (success) {
    ep.stats.successes++;
    ep.stats.consecutive_failures = 0;
  } else {
    ep.stats.failures++;
    ep.stats.consecutive_failures++;
  }
  ep.stats.healthy = EndpointHealthy(ep);
}

// ---------------------------------------------------------- frame I/O

void SocketSolveBackend::AccountTx(Endpoint& ep, wire::FrameKind kind,
                                   size_t payload_bytes) {
  const uint64_t bytes = wire::kFrameHeaderBytes + payload_bytes;
  tx_bytes_counter_->Increment(bytes);
  const size_t k = static_cast<size_t>(kind);
  if (k < tx_bytes_by_kind_.size() && tx_bytes_by_kind_[k] != nullptr) {
    tx_bytes_by_kind_[k]->Increment(bytes);
  }
  std::lock_guard<std::mutex> lock(ep.mu);
  ep.stats.tx_bytes += bytes;
}

void SocketSolveBackend::AccountRx(Endpoint& ep, wire::FrameKind kind,
                                   size_t payload_bytes) {
  const uint64_t bytes = wire::kFrameHeaderBytes + payload_bytes;
  rx_bytes_counter_->Increment(bytes);
  const size_t k = static_cast<size_t>(kind);
  if (k < rx_bytes_by_kind_.size() && rx_bytes_by_kind_[k] != nullptr) {
    rx_bytes_by_kind_[k]->Increment(bytes);
  }
  std::lock_guard<std::mutex> lock(ep.mu);
  ep.stats.rx_bytes += bytes;
}

Status SocketSolveBackend::SendFrame(Endpoint& ep, int fd,
                                     wire::FrameKind kind,
                                     const std::vector<uint8_t>& payload) {
  Status st = net::WriteFrame(fd, kind, payload);
  if (st.ok()) AccountTx(ep, kind, payload.size());
  return st;
}

Result<wire::Frame> SocketSolveBackend::RecvFrame(Endpoint& ep, int fd,
                                                  int timeout_ms) {
  Result<wire::Frame> frame =
      net::ReadFrame(fd, timeout_ms, options_.max_frame_payload);
  if (frame.ok()) AccountRx(ep, frame->header.kind, frame->payload.size());
  return frame;
}

// ---------------------------------------------------------- connections

Result<int> SocketSolveBackend::LeaseConnection(Endpoint& ep, bool* reused) {
  {
    std::lock_guard<std::mutex> lock(ep.mu);
    if (!ep.idle.empty()) {
      int fd = ep.idle.back();
      ep.idle.pop_back();
      ep.stats.reuses++;
      *reused = true;
      return fd;
    }
    // Every ATTEMPT counts — a dead daemon must show up in `dials`, not
    // hide behind a zero (the failed attempts land in dial_failures).
    ep.stats.dials++;
  }
  *reused = false;
  Result<int> dialed = net::Dial(ep.spec);
  if (!dialed.ok()) {
    std::lock_guard<std::mutex> lock(ep.mu);
    ep.stats.dial_failures++;
    return dialed.status();
  }
  const int fd = *dialed;
  // The daemon greets every connection; consuming (and sanity-checking) the
  // hello here means a pooled connection is always request-ready.
  Result<wire::Frame> frame = RecvFrame(ep, fd, options_.hello_timeout_ms);
  Status st = Status::OK();
  if (!frame.ok()) {
    st = frame.status();
  } else if (frame->header.kind != wire::FrameKind::kHello) {
    st = Status::InvalidArgument("expected hello frame from daemon");
  } else if (Result<wire::Hello> hello =
                 wire::DecodeHelloPayload(frame->payload);
             !hello.ok()) {
    st = hello.status();
  }
  if (!st.ok()) {
    net::CloseFd(fd);
    std::lock_guard<std::mutex> lock(ep.mu);
    ep.stats.dial_failures++;
    return st;
  }
  return fd;
}

void SocketSolveBackend::ReturnConnection(Endpoint& ep, int fd) {
  std::lock_guard<std::mutex> lock(ep.mu);
  if (ep.idle.size() < options_.max_pooled_connections) {
    ep.idle.push_back(fd);
    return;
  }
  net::CloseFd(fd);
}

// ------------------------------------------------------ leased transport

Status SocketSolveBackend::LeasedExchange(Endpoint& ep,
                                          const std::vector<uint8_t>& request,
                                          uint64_t job_id,
                                          std::vector<uint8_t>* response,
                                          RemoteOutcome* outcome,
                                          bool* retryable) {
  *outcome = RemoteOutcome::kError;
  *retryable = false;
  bool reused = false;
  Result<int> leased = [&]() -> Result<int> {
    trace::TraceSpan pool_span(trace_, "client.pool_wait");
    pool_span.Arg("job_id", job_id);
    return LeaseConnection(ep, &reused);
  }();
  if (!leased.ok()) {
    // Dialing failed; another immediate dial would fail the same way.
    NoteResult(ep, /*success=*/false);
    return leased.status();
  }
  const int fd = *leased;
  const uint64_t rtt_start = trace::TraceRecorder::NowMicros();
  Status st = SendFrame(ep, fd, wire::FrameKind::kSolveRequest, request);
  if (st.ok()) {
    Result<wire::Frame> frame =
        RecvFrame(ep, fd, options_.request_timeout_ms);
    if (frame.ok()) {
      // A completed round trip (any frame kind): histogram always, span
      // only when a recorder is attached. Timeouts are not round trips.
      const uint64_t rtt_end = trace::TraceRecorder::NowMicros();
      rtt_hist_->Record(static_cast<double>(rtt_end - rtt_start) * 1e-6);
      if (trace_ != nullptr) {
        trace_->RecordComplete("client.rtt", rtt_start, rtt_end,
                               trace_->CurrentContext(),
                               {{"job_id", job_id},
                                {"bytes", request.size()}});
      }
      switch (frame->header.kind) {
        case wire::FrameKind::kSolveResponse: {
          Result<wire::SolveResponseHead> head =
              wire::PeekSolveResponseHead(frame->payload);
          if (!head.ok() || head->job_id != job_id) {
            // Desynced or garbled stream — this connection cannot be
            // trusted for the next request either. A reused connection
            // may just have gone stale in the pool; worth a fresh dial.
            net::CloseFd(fd);
            NoteResult(ep, /*success=*/false);
            *retryable = true;
            return head.ok() ? Status::Internal(
                                   "solve response for a different job id")
                             : head.status();
          }
          ReturnConnection(ep, fd);
          NoteResult(ep, /*success=*/true);
          if (!head->status.ok()) {
            // Deterministic server-side refusal: the daemon decoded the
            // job and said no. Every replica would refuse identically,
            // so the caller goes straight to the local fallback.
            *outcome = RemoteOutcome::kRefused;
            return Status::FailedPrecondition("server refused solve: " +
                                              head->status.ToString());
          }
          *outcome = RemoteOutcome::kOk;
          *response = std::move(frame->payload);
          return Status::OK();
        }
        case wire::FrameKind::kBusy: {
          // The daemon is saturated, not broken: keep the connection and
          // the endpoint's health, let the caller fail over.
          ReturnConnection(ep, fd);
          *outcome = RemoteOutcome::kBusy;
          return Status::ResourceExhausted("endpoint busy");
        }
        case wire::FrameKind::kError: {
          net::CloseFd(fd);
          NoteResult(ep, /*success=*/false);
          return wire::DecodeErrorPayload(frame->payload);
        }
        default: {
          net::CloseFd(fd);
          NoteResult(ep, /*success=*/false);
          *retryable = true;
          return Status::InvalidArgument("unexpected frame kind from daemon");
        }
      }
    }
    st = frame.status();
    if (st.code() == StatusCode::kDeadlineExceeded) {
      // Timed out. The response may still arrive later, so the connection
      // can never be reused — pooling it would hand a stale response to
      // the next request.
      net::CloseFd(fd);
      NoteResult(ep, /*success=*/false);
      *outcome = RemoteOutcome::kTimeout;
      return st;
    }
  }
  // Write failed or the read hit a closed/garbled peer. A reused
  // connection may simply have gone stale in the pool (the daemon
  // restarted, an idle timeout...) — worth one fresh dial.
  net::CloseFd(fd);
  NoteResult(ep, /*success=*/false);
  *retryable = true;
  return st;
}

// --------------------------------------------------- pipelined transport

void SocketSolveBackend::FailChannelLocked(Endpoint& ep, Channel& ch,
                                           uint64_t generation,
                                           const Status& status) {
  (void)ep;
  if (ch.generation != generation) return;  // Already torn down / replaced.
  ch.generation++;
  if (ch.fd >= 0) {
    net::CloseFd(ch.fd);
    ch.fd = -1;
  }
  const Status failure =
      status.ok() ? Status::Internal("pipelined connection reset") : status;
  for (auto& [job_id, pend] : ch.pending) {
    pend->outcome = RemoteOutcome::kError;
    pend->status = failure;
    pend->done = true;
  }
  ch.pending.clear();
  ch.order.clear();
  ch.cv.notify_all();
}

void SocketSolveBackend::DispatchFrameLocked(Endpoint& ep, Channel& ch,
                                             wire::Frame frame) {
  switch (frame.header.kind) {
    case wire::FrameKind::kSolveResponse: {
      Result<wire::SolveResponseHead> head =
          wire::PeekSolveResponseHead(frame.payload);
      if (!head.ok()) {
        FailChannelLocked(ep, ch, ch.generation, head.status());
        return;
      }
      const uint64_t job_id = head->job_id;
      auto pos = std::find(ch.order.begin(), ch.order.end(), job_id);
      if (pos != ch.order.end()) ch.order.erase(pos);
      auto it = ch.pending.find(job_id);
      if (it == ch.pending.end()) {
        // A late response whose caller already timed out and deregistered:
        // dropped here, by job id — the connection itself stays good.
        return;
      }
      Pending* pend = it->second;
      ch.pending.erase(it);
      if (!head->status.ok()) {
        pend->outcome = RemoteOutcome::kRefused;
        pend->status = Status::FailedPrecondition("server refused solve: " +
                                                  head->status.ToString());
      } else {
        pend->outcome = RemoteOutcome::kOk;
        pend->status = Status::OK();
        pend->payload = std::move(frame.payload);
      }
      pend->done = true;
      ch.cv.notify_all();
      return;
    }
    case wire::FrameKind::kBusy: {
      // No job id on a busy frame: FIFO-match it to the oldest request
      // still on the wire (the daemon answers one connection in order).
      if (ch.order.empty()) {
        FailChannelLocked(ep, ch, ch.generation,
                          Status::InvalidArgument(
                              "busy frame with no request outstanding"));
        return;
      }
      const uint64_t job_id = ch.order.front();
      ch.order.pop_front();
      auto it = ch.pending.find(job_id);
      if (it == ch.pending.end()) return;  // Owner timed out; drop.
      Pending* pend = it->second;
      ch.pending.erase(it);
      pend->outcome = RemoteOutcome::kBusy;
      pend->status = Status::ResourceExhausted("endpoint busy");
      pend->done = true;
      ch.cv.notify_all();
      return;
    }
    case wire::FrameKind::kError: {
      // The daemon writes kError and closes: the whole channel is done.
      FailChannelLocked(ep, ch, ch.generation,
                        wire::DecodeErrorPayload(frame.payload));
      return;
    }
    default: {
      FailChannelLocked(
          ep, ch, ch.generation,
          Status::InvalidArgument("unexpected frame kind from daemon"));
      return;
    }
  }
}

Status SocketSolveBackend::PipelinedExchange(
    Endpoint& ep, const std::vector<uint8_t>& request, uint64_t job_id,
    std::vector<uint8_t>* response, RemoteOutcome* outcome, bool* retryable) {
  *outcome = RemoteOutcome::kError;
  *retryable = false;
  Channel& ch = *ep.channel;
  const auto deadline = SteadyClock::now() +
                        std::chrono::milliseconds(options_.request_timeout_ms);
  std::unique_lock<std::mutex> lock(ch.mu);
  // Window admission: at most pipeline_window exchanges share the wire.
  while (ch.inflight >= options_.pipeline_window) {
    if (ch.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      NoteResult(ep, /*success=*/false);
      *outcome = RemoteOutcome::kTimeout;
      return Status::DeadlineExceeded("pipeline window wait timed out");
    }
  }
  if (ch.fd < 0) {
    bool reused = false;
    Result<int> dialed = [&]() -> Result<int> {
      trace::TraceSpan pool_span(trace_, "client.pool_wait");
      pool_span.Arg("job_id", job_id);
      return LeaseConnection(ep, &reused);
    }();
    if (!dialed.ok()) {
      NoteResult(ep, /*success=*/false);
      return dialed.status();
    }
    ch.fd = *dialed;
    ch.reader_active = false;
    ch.order.clear();
  }
  if (ch.pending.count(job_id) != 0) {
    // Job ids are unique per engine run; a duplicate in flight would make
    // response matching ambiguous.
    return Status::Internal("duplicate job id in pipelined flight");
  }
  const uint64_t generation = ch.generation;
  const int fd = ch.fd;
  Pending pend;
  ch.pending[job_id] = &pend;
  ch.order.push_back(job_id);
  ch.inflight++;
  lock.unlock();

  const uint64_t rtt_start = trace::TraceRecorder::NowMicros();
  Status write_status;
  {
    // send_mu (never held with ch.mu) serializes frame writes so two
    // pipelined senders cannot interleave bytes on the shared socket.
    std::lock_guard<std::mutex> send_lock(ch.send_mu);
    write_status = SendFrame(ep, fd, wire::FrameKind::kSolveRequest, request);
  }
  lock.lock();
  if (!write_status.ok()) {
    FailChannelLocked(ep, ch, generation, write_status);
  }

  while (!pend.done) {
    if (SteadyClock::now() >= deadline) {
      // Deregister but LEAVE the order entry: the daemon will still answer
      // this request, and FIFO matching of id-less frames must stay
      // aligned. The late response is dropped by job id on arrival; the
      // connection survives for the other in-flight exchanges.
      ch.pending.erase(job_id);
      ch.inflight--;
      ch.cv.notify_all();
      NoteResult(ep, /*success=*/false);
      *outcome = RemoteOutcome::kTimeout;
      return Status::DeadlineExceeded("pipelined solve timed out");
    }
    if (!ch.reader_active && ch.fd >= 0 && ch.generation == generation) {
      // Leader/follower: this waiter becomes the reader, pulls ONE frame
      // with the lock released, dispatches it, and relinquishes the role.
      ch.reader_active = true;
      const int read_fd = ch.fd;
      lock.unlock();
      Result<wire::Frame> frame =
          RecvFrame(ep, read_fd, RemainingMs(deadline));
      lock.lock();
      ch.reader_active = false;
      if (ch.generation != generation) {
        // The channel was reset while we were reading; our pend (if still
        // live) was failed by the reset, so just re-check the loop.
        ch.cv.notify_all();
        continue;
      }
      if (frame.ok()) {
        DispatchFrameLocked(ep, ch, std::move(*frame));
      } else if (frame.status().code() != StatusCode::kDeadlineExceeded) {
        // Peer closed or stream garbled mid-pipeline: nothing on this
        // connection can be trusted any more.
        FailChannelLocked(ep, ch, generation, frame.status());
      }
      // A poll timeout just loops: the deadline check at the top decides
      // whether THIS caller is out of time; another waiter may have
      // longer to live and will take over reading.
      ch.cv.notify_all();
    } else {
      ch.cv.wait_until(lock, deadline);
    }
  }
  ch.inflight--;
  ch.cv.notify_all();
  lock.unlock();

  switch (pend.outcome) {
    case RemoteOutcome::kOk: {
      const uint64_t rtt_end = trace::TraceRecorder::NowMicros();
      rtt_hist_->Record(static_cast<double>(rtt_end - rtt_start) * 1e-6);
      if (trace_ != nullptr) {
        trace_->RecordComplete("client.rtt", rtt_start, rtt_end,
                               trace_->CurrentContext(),
                               {{"job_id", job_id},
                                {"bytes", request.size()}});
      }
      NoteResult(ep, /*success=*/true);
      *outcome = RemoteOutcome::kOk;
      *response = std::move(pend.payload);
      return Status::OK();
    }
    case RemoteOutcome::kRefused:
      NoteResult(ep, /*success=*/true);  // The daemon answered; it's alive.
      *outcome = RemoteOutcome::kRefused;
      return pend.status;
    case RemoteOutcome::kBusy:
      // Saturated, not broken: no health ding (mirrors the leased path).
      *outcome = RemoteOutcome::kBusy;
      return pend.status;
    default:
      NoteResult(ep, /*success=*/false);
      *outcome = RemoteOutcome::kError;
      *retryable = true;  // A fresh dial may succeed where the stale
                          // connection failed.
      return pend.status.ok()
                 ? Status::Internal("pipelined exchange failed")
                 : pend.status;
  }
}

// ------------------------------------------------------------- dispatch

Status SocketSolveBackend::TryEndpoint(Endpoint& ep,
                                       const std::vector<uint8_t>& request,
                                       uint64_t job_id,
                                       std::vector<uint8_t>* response,
                                       RemoteOutcome* outcome) {
  Status last = Status::Internal("no attempt made");
  *outcome = RemoteOutcome::kError;
  for (int attempt = 0; attempt < options_.max_attempts_per_endpoint;
       ++attempt) {
    if (attempt > 0) retries_counter_->Increment();
    bool retryable = false;
    Status st =
        options_.pipeline_window > 1
            ? PipelinedExchange(ep, request, job_id, response, outcome,
                                &retryable)
            : LeasedExchange(ep, request, job_id, response, outcome,
                             &retryable);
    if (st.ok()) return st;
    last = st;
    if (!retryable) return st;
  }
  return last;
}

bool SocketSolveBackend::ExecuteSerialized(uint64_t job_id, const char* kind,
                                           const std::vector<uint8_t>& request,
                                           std::vector<uint8_t>* response) {
  (void)kind;
  AdmissionSlot slot(&admission_mu_, &admission_cv_, &inflight_,
                     options_.max_inflight);
  trace::TraceSpan span(trace_, "client.solve");
  span.Arg("job_id", job_id);
  span.Arg("bytes", request.size());
  requests_counter_->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.requests++;
  }
  const size_t n = endpoints_.size();
  const size_t home = static_cast<size_t>(StableJobHash(job_id) % n);
  // In shard mode the home endpoint OWNS this job's hash slice: no other
  // daemon should ever see the job, so a failed shard means local fallback
  // (bit-identical by the determinism contract), not failover.
  const size_t fan =
      options_.routing == RoutingMode::kShardByJobHash ? 1 : n;
  for (size_t offset = 0; offset < fan; ++offset) {
    Endpoint& ep = *endpoints_[(home + offset) % n];
    if (offset > 0) {
      // Skip endpoints already marked down — but the home endpoint (offset
      // 0) is always probed, so a revived daemon gets rediscovered and the
      // routing returns to its stable assignment.
      bool healthy;
      {
        std::lock_guard<std::mutex> lock(ep.mu);
        healthy = EndpointHealthy(ep);
      }
      if (!healthy) continue;
      failover_counter_->Increment();
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.failovers++;
    }
    RemoteOutcome outcome = RemoteOutcome::kError;
    Status st = TryEndpoint(ep, request, job_id, response, &outcome);
    if (st.ok()) {
      remote_success_counter_->Increment();
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.remote_success++;
      return true;
    }
    if (outcome == RemoteOutcome::kRefused) {
      // Deterministic server refusal: identical on every replica, so
      // failover is pointless — straight to the local fallback.
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.remote_errors++;
      return false;
    }
    {
      // Classification is by the typed outcome the exchange observed — a
      // kBusy frame or a deadline expiry — never by status-text matching
      // (an oversized-frame rejection is kResourceExhausted too, and must
      // count as neither busy nor timeout).
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (outcome == RemoteOutcome::kBusy) {
        stats_.busy++;
      } else if (outcome == RemoteOutcome::kTimeout) {
        stats_.timeouts++;
      }
    }
    LPLOW_LOG(kWarning) << "endpoint " << ep.spec << " failed ("
                        << st.ToString() << "); "
                        << (offset + 1 < fan ? "failing over"
                                             : "falling back");
  }
  return false;
}

void SocketSolveBackend::Execute(uint64_t job_id, const char* kind,
                                 const std::function<void()>& task) {
  (void)job_id;
  (void)kind;
  task();
  local_fallback_counter_->Increment();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.local_fallbacks++;
}

// -------------------------------------------------------- control plane

Status SocketSolveBackend::Ping(size_t endpoint) {
  if (endpoint >= endpoints_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  Endpoint& ep = *endpoints_[endpoint];
  bool reused = false;
  LPLOW_ASSIGN_OR_RETURN(int fd, LeaseConnection(ep, &reused));
  Status st = SendFrame(ep, fd, wire::FrameKind::kPing, {});
  if (st.ok()) {
    Result<wire::Frame> frame =
        RecvFrame(ep, fd, options_.request_timeout_ms);
    if (frame.ok() && frame->header.kind == wire::FrameKind::kPong) {
      ReturnConnection(ep, fd);
      NoteResult(ep, /*success=*/true);
      return Status::OK();
    }
    st = frame.ok() ? Status::InvalidArgument("expected pong from daemon")
                    : frame.status();
  }
  net::CloseFd(fd);
  NoteResult(ep, /*success=*/false);
  return st;
}

Result<wire::StatsResponse> SocketSolveBackend::ScrapeStats(
    size_t endpoint, bool include_trace) {
  if (endpoint >= endpoints_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  Endpoint& ep = *endpoints_[endpoint];
  bool reused = false;
  LPLOW_ASSIGN_OR_RETURN(int fd, LeaseConnection(ep, &reused));
  wire::StatsRequest request;
  request.include_metrics = true;
  request.include_trace = include_trace;
  Status st = SendFrame(ep, fd, wire::FrameKind::kStatsRequest,
                        wire::EncodeStatsRequestPayload(request));
  if (st.ok()) {
    Result<wire::Frame> frame =
        RecvFrame(ep, fd, options_.request_timeout_ms);
    if (frame.ok() && frame->header.kind == wire::FrameKind::kStatsResponse) {
      Result<wire::StatsResponse> stats =
          wire::DecodeStatsResponsePayload(frame->payload);
      if (stats.ok()) {
        ReturnConnection(ep, fd);
        NoteResult(ep, /*success=*/true);
        return stats;
      }
      st = stats.status();
    } else if (frame.ok() && frame->header.kind == wire::FrameKind::kError) {
      // A v1 daemon rejects the unknown frame kind with kError; surface its
      // message (rather than a garbled-stream guess) to the scraper.
      st = wire::DecodeErrorPayload(frame->payload);
    } else if (frame.ok()) {
      st = Status::InvalidArgument("unexpected reply to stats request");
    } else {
      st = frame.status();
    }
  }
  net::CloseFd(fd);
  NoteResult(ep, /*success=*/false);
  return st;
}

Status SocketSolveBackend::RequestServerShutdown(size_t endpoint) {
  if (endpoint >= endpoints_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  Endpoint& ep = *endpoints_[endpoint];
  bool reused = false;
  LPLOW_ASSIGN_OR_RETURN(int fd, LeaseConnection(ep, &reused));
  Status st = SendFrame(ep, fd, wire::FrameKind::kShutdown, {});
  if (st.ok()) {
    Result<wire::Frame> frame =
        RecvFrame(ep, fd, options_.request_timeout_ms);
    if (frame.ok() && frame->header.kind == wire::FrameKind::kPong) {
      st = Status::OK();
    } else if (frame.ok() && frame->header.kind == wire::FrameKind::kError) {
      st = wire::DecodeErrorPayload(frame->payload);
    } else if (frame.ok()) {
      st = Status::InvalidArgument("unexpected reply to shutdown");
    } else {
      st = frame.status();
    }
  }
  // The daemon is exiting (or refused); either way this connection is done.
  net::CloseFd(fd);
  return st;
}

Result<wire::StatsResponse> ScrapeDaemonStats(const std::string& endpoint,
                                              bool include_trace,
                                              int timeout_ms) {
  SocketSolveBackend::Options options;
  options.endpoints = {endpoint};
  options.request_timeout_ms = timeout_ms;
  options.hello_timeout_ms = timeout_ms;
  LPLOW_ASSIGN_OR_RETURN(std::unique_ptr<SocketSolveBackend> backend,
                         SocketSolveBackend::Create(options));
  return backend->ScrapeStats(0, include_trace);
}

}  // namespace runtime
}  // namespace lplow

#include "src/runtime/lp_client.h"

#include <utility>

#include "src/runtime/net_io.h"
#include "src/runtime/wire.h"
#include "src/util/logging.h"

namespace lplow {
namespace runtime {

struct SocketSolveBackend::Endpoint {
  std::string path;
  std::mutex mu;
  std::vector<int> idle;  // Pooled connections, hello already consumed.
  EndpointStats stats;
};

namespace {

/// Scoped admission slot: blocks in the constructor until the in-flight
/// count is under the cap, releases (and wakes one waiter) on destruction.
class AdmissionSlot {
 public:
  AdmissionSlot(std::mutex* mu, std::condition_variable* cv, size_t* inflight,
                size_t cap)
      : mu_(mu), cv_(cv), inflight_(inflight), cap_(cap) {
    if (cap_ == 0) return;
    std::unique_lock<std::mutex> lock(*mu_);
    cv_->wait(lock, [this] { return *inflight_ < cap_; });
    ++*inflight_;
  }
  ~AdmissionSlot() {
    if (cap_ == 0) return;
    {
      std::lock_guard<std::mutex> lock(*mu_);
      --*inflight_;
    }
    cv_->notify_one();
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  std::mutex* mu_;
  std::condition_variable* cv_;
  size_t* inflight_;
  size_t cap_;
};

}  // namespace

SocketSolveBackend::SocketSolveBackend(const Options& options)
    : options_(options) {
  for (const std::string& path : options.endpoints) {
    auto ep = std::make_unique<Endpoint>();
    ep->path = path;
    endpoints_.push_back(std::move(ep));
  }
  MetricsRegistry* metrics =
      options.metrics != nullptr ? options.metrics : &MetricsRegistry::Global();
  requests_counter_ = metrics->GetCounter("wire.client.requests");
  remote_success_counter_ = metrics->GetCounter("wire.client.remote_success");
  local_fallback_counter_ = metrics->GetCounter("wire.client.local_fallbacks");
  failover_counter_ = metrics->GetCounter("wire.client.failovers");
  retries_counter_ = metrics->GetCounter("wire.client.retries");
  rtt_hist_ = metrics->GetHistogram("wire.client.rtt_seconds");
  trace_ = options.trace;
}

Result<std::unique_ptr<SocketSolveBackend>> SocketSolveBackend::Create(
    const Options& options) {
  if (options.endpoints.empty()) {
    return Status::InvalidArgument(
        "SocketSolveBackend requires at least one endpoint");
  }
  if (options.max_attempts_per_endpoint < 1 || options.failover_threshold < 1) {
    return Status::InvalidArgument(
        "max_attempts_per_endpoint and failover_threshold must be >= 1");
  }
  return std::unique_ptr<SocketSolveBackend>(new SocketSolveBackend(options));
}

SocketSolveBackend::~SocketSolveBackend() { CloseIdleConnections(); }

void SocketSolveBackend::CloseIdleConnections() {
  for (auto& ep : endpoints_) {
    std::lock_guard<std::mutex> lock(ep->mu);
    for (int fd : ep->idle) net::CloseFd(fd);
    ep->idle.clear();
  }
}

const std::string& SocketSolveBackend::endpoint_path(size_t i) const {
  return endpoints_[i]->path;
}

SocketSolveBackend::Stats SocketSolveBackend::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

SocketSolveBackend::EndpointStats SocketSolveBackend::endpoint_stats(
    size_t endpoint) const {
  Endpoint& ep = *endpoints_[endpoint];
  std::lock_guard<std::mutex> lock(ep.mu);
  return ep.stats;
}

bool SocketSolveBackend::EndpointHealthy(const Endpoint& ep) const {
  return ep.stats.consecutive_failures < options_.failover_threshold;
}

void SocketSolveBackend::NoteResult(Endpoint& ep, bool success) {
  std::lock_guard<std::mutex> lock(ep.mu);
  if (success) {
    ep.stats.successes++;
    ep.stats.consecutive_failures = 0;
  } else {
    ep.stats.failures++;
    ep.stats.consecutive_failures++;
  }
  ep.stats.healthy = EndpointHealthy(ep);
}

Result<int> SocketSolveBackend::LeaseConnection(Endpoint& ep, bool* reused) {
  {
    std::lock_guard<std::mutex> lock(ep.mu);
    if (!ep.idle.empty()) {
      int fd = ep.idle.back();
      ep.idle.pop_back();
      ep.stats.reuses++;
      *reused = true;
      return fd;
    }
  }
  *reused = false;
  LPLOW_ASSIGN_OR_RETURN(int fd, net::DialUnix(ep.path));
  // The daemon greets every connection; consuming (and sanity-checking) the
  // hello here means a pooled connection is always request-ready.
  Result<wire::Frame> frame =
      net::ReadFrame(fd, options_.hello_timeout_ms, options_.max_frame_payload);
  if (!frame.ok()) {
    net::CloseFd(fd);
    return frame.status();
  }
  if (frame->header.kind != wire::FrameKind::kHello) {
    net::CloseFd(fd);
    return Status::InvalidArgument("expected hello frame from daemon");
  }
  Result<wire::Hello> hello = wire::DecodeHelloPayload(frame->payload);
  if (!hello.ok()) {
    net::CloseFd(fd);
    return hello.status();
  }
  {
    std::lock_guard<std::mutex> lock(ep.mu);
    ep.stats.dials++;
  }
  return fd;
}

void SocketSolveBackend::ReturnConnection(Endpoint& ep, int fd) {
  std::lock_guard<std::mutex> lock(ep.mu);
  if (ep.idle.size() < options_.max_pooled_connections) {
    ep.idle.push_back(fd);
    return;
  }
  net::CloseFd(fd);
}

Status SocketSolveBackend::TryEndpoint(Endpoint& ep,
                                       const std::vector<uint8_t>& request,
                                       uint64_t job_id,
                                       std::vector<uint8_t>* response) {
  Status last = Status::Internal("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts_per_endpoint;
       ++attempt) {
    if (attempt > 0) retries_counter_->Increment();
    bool reused = false;
    Result<int> leased = [&]() -> Result<int> {
      trace::TraceSpan pool_span(trace_, "client.pool_wait");
      pool_span.Arg("job_id", job_id);
      pool_span.Arg("attempt", static_cast<uint64_t>(attempt));
      return LeaseConnection(ep, &reused);
    }();
    if (!leased.ok()) {
      // Dialing failed; another immediate dial would fail the same way.
      NoteResult(ep, /*success=*/false);
      return leased.status();
    }
    const int fd = *leased;
    const uint64_t rtt_start = trace::TraceRecorder::NowMicros();
    Status st = net::WriteFrame(fd, wire::FrameKind::kSolveRequest, request);
    if (st.ok()) {
      Result<wire::Frame> frame = net::ReadFrame(fd, options_.request_timeout_ms,
                                                 options_.max_frame_payload);
      if (frame.ok()) {
        // A completed round trip (any frame kind): histogram always, span
        // only when a recorder is attached. Timeouts are not round trips.
        const uint64_t rtt_end = trace::TraceRecorder::NowMicros();
        rtt_hist_->Record(static_cast<double>(rtt_end - rtt_start) * 1e-6);
        if (trace_ != nullptr) {
          trace_->RecordComplete("client.rtt", rtt_start, rtt_end,
                                 trace_->CurrentContext(),
                                 {{"job_id", job_id},
                                  {"attempt", static_cast<uint64_t>(attempt)},
                                  {"bytes", request.size()}});
        }
        switch (frame->header.kind) {
          case wire::FrameKind::kSolveResponse: {
            Result<wire::SolveResponseHead> head =
                wire::PeekSolveResponseHead(frame->payload);
            if (!head.ok() || head->job_id != job_id) {
              // Desynced or garbled stream — this connection cannot be
              // trusted for the next request either.
              net::CloseFd(fd);
              NoteResult(ep, /*success=*/false);
              last = head.ok() ? Status::Internal(
                                     "solve response for a different job id")
                               : head.status();
              continue;
            }
            ReturnConnection(ep, fd);
            NoteResult(ep, /*success=*/true);
            if (!head->status.ok()) {
              // Deterministic server-side refusal: the daemon decoded the
              // job and said no. Flagged FailedPrecondition so the caller
              // skips failover (every replica would refuse identically)
              // and solves locally.
              return Status::FailedPrecondition("server refused solve: " +
                                                head->status.ToString());
            }
            *response = std::move(frame->payload);
            return Status::OK();
          }
          case wire::FrameKind::kBusy: {
            // The daemon is saturated, not broken: keep the connection and
            // the endpoint's health, let the caller fail over.
            ReturnConnection(ep, fd);
            return Status::ResourceExhausted("endpoint busy");
          }
          case wire::FrameKind::kError: {
            net::CloseFd(fd);
            NoteResult(ep, /*success=*/false);
            return wire::DecodeErrorPayload(frame->payload);
          }
          default: {
            net::CloseFd(fd);
            NoteResult(ep, /*success=*/false);
            last = Status::InvalidArgument("unexpected frame kind from daemon");
            continue;
          }
        }
      }
      st = frame.status();
      if (st.code() == StatusCode::kResourceExhausted) {
        // Timed out. The response may still arrive later, so the connection
        // can never be reused — pooling it would hand a stale response to
        // the next request.
        net::CloseFd(fd);
        NoteResult(ep, /*success=*/false);
        return st;
      }
    }
    // Write failed or the read hit a closed/garbled peer. A reused
    // connection may simply have gone stale in the pool (the daemon
    // restarted, an idle timeout...) — worth one fresh dial.
    net::CloseFd(fd);
    NoteResult(ep, /*success=*/false);
    last = st;
  }
  return last;
}

bool SocketSolveBackend::ExecuteSerialized(uint64_t job_id, const char* kind,
                                           const std::vector<uint8_t>& request,
                                           std::vector<uint8_t>* response) {
  (void)kind;
  AdmissionSlot slot(&admission_mu_, &admission_cv_, &inflight_,
                     options_.max_inflight);
  trace::TraceSpan span(trace_, "client.solve");
  span.Arg("job_id", job_id);
  span.Arg("bytes", request.size());
  requests_counter_->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.requests++;
  }
  const size_t n = endpoints_.size();
  const size_t home = static_cast<size_t>(StableJobHash(job_id) % n);
  for (size_t offset = 0; offset < n; ++offset) {
    Endpoint& ep = *endpoints_[(home + offset) % n];
    if (offset > 0) {
      // Skip endpoints already marked down — but the home endpoint (offset
      // 0) is always probed, so a revived daemon gets rediscovered and the
      // routing returns to its stable assignment.
      bool healthy;
      {
        std::lock_guard<std::mutex> lock(ep.mu);
        healthy = EndpointHealthy(ep);
      }
      if (!healthy) continue;
      failover_counter_->Increment();
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.failovers++;
    }
    Status st = TryEndpoint(ep, request, job_id, response);
    if (st.ok()) {
      remote_success_counter_->Increment();
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.remote_success++;
      return true;
    }
    if (st.code() == StatusCode::kFailedPrecondition) {
      // Deterministic server refusal: identical on every replica, so
      // failover is pointless — straight to the local fallback.
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.remote_errors++;
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (st.code() == StatusCode::kResourceExhausted) {
        if (st.ToString().find("busy") != std::string::npos) {
          stats_.busy++;
        } else {
          stats_.timeouts++;
        }
      }
    }
    LPLOW_LOG(kWarning) << "endpoint " << ep.path << " failed ("
                        << st.ToString() << "); "
                        << (offset + 1 < n ? "failing over" : "falling back");
  }
  return false;
}

void SocketSolveBackend::Execute(uint64_t job_id, const char* kind,
                                 const std::function<void()>& task) {
  (void)job_id;
  (void)kind;
  task();
  local_fallback_counter_->Increment();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.local_fallbacks++;
}

Status SocketSolveBackend::Ping(size_t endpoint) {
  if (endpoint >= endpoints_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  Endpoint& ep = *endpoints_[endpoint];
  bool reused = false;
  LPLOW_ASSIGN_OR_RETURN(int fd, LeaseConnection(ep, &reused));
  Status st = net::WriteFrame(fd, wire::FrameKind::kPing, {});
  if (st.ok()) {
    Result<wire::Frame> frame = net::ReadFrame(fd, options_.request_timeout_ms,
                                               options_.max_frame_payload);
    if (frame.ok() && frame->header.kind == wire::FrameKind::kPong) {
      ReturnConnection(ep, fd);
      NoteResult(ep, /*success=*/true);
      return Status::OK();
    }
    st = frame.ok() ? Status::InvalidArgument("expected pong from daemon")
                    : frame.status();
  }
  net::CloseFd(fd);
  NoteResult(ep, /*success=*/false);
  return st;
}

Result<wire::StatsResponse> SocketSolveBackend::ScrapeStats(
    size_t endpoint, bool include_trace) {
  if (endpoint >= endpoints_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  Endpoint& ep = *endpoints_[endpoint];
  bool reused = false;
  LPLOW_ASSIGN_OR_RETURN(int fd, LeaseConnection(ep, &reused));
  wire::StatsRequest request;
  request.include_metrics = true;
  request.include_trace = include_trace;
  Status st = net::WriteFrame(fd, wire::FrameKind::kStatsRequest,
                              wire::EncodeStatsRequestPayload(request));
  if (st.ok()) {
    Result<wire::Frame> frame = net::ReadFrame(fd, options_.request_timeout_ms,
                                               options_.max_frame_payload);
    if (frame.ok() && frame->header.kind == wire::FrameKind::kStatsResponse) {
      Result<wire::StatsResponse> stats =
          wire::DecodeStatsResponsePayload(frame->payload);
      if (stats.ok()) {
        ReturnConnection(ep, fd);
        NoteResult(ep, /*success=*/true);
        return stats;
      }
      st = stats.status();
    } else if (frame.ok() && frame->header.kind == wire::FrameKind::kError) {
      // A v1 daemon rejects the unknown frame kind with kError; surface its
      // message (rather than a garbled-stream guess) to the scraper.
      st = wire::DecodeErrorPayload(frame->payload);
    } else if (frame.ok()) {
      st = Status::InvalidArgument("unexpected reply to stats request");
    } else {
      st = frame.status();
    }
  }
  net::CloseFd(fd);
  NoteResult(ep, /*success=*/false);
  return st;
}

Status SocketSolveBackend::RequestServerShutdown(size_t endpoint) {
  if (endpoint >= endpoints_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  Endpoint& ep = *endpoints_[endpoint];
  bool reused = false;
  LPLOW_ASSIGN_OR_RETURN(int fd, LeaseConnection(ep, &reused));
  Status st = net::WriteFrame(fd, wire::FrameKind::kShutdown, {});
  if (st.ok()) {
    Result<wire::Frame> frame = net::ReadFrame(fd, options_.request_timeout_ms,
                                               options_.max_frame_payload);
    if (frame.ok() && frame->header.kind == wire::FrameKind::kPong) {
      st = Status::OK();
    } else if (frame.ok() && frame->header.kind == wire::FrameKind::kError) {
      st = wire::DecodeErrorPayload(frame->payload);
    } else if (frame.ok()) {
      st = Status::InvalidArgument("unexpected reply to shutdown");
    } else {
      st = frame.status();
    }
  }
  // The daemon is exiting (or refused); either way this connection is done.
  net::CloseFd(fd);
  return st;
}

Result<wire::StatsResponse> ScrapeDaemonStats(const std::string& socket_path,
                                              bool include_trace,
                                              int timeout_ms) {
  SocketSolveBackend::Options options;
  options.endpoints = {socket_path};
  options.request_timeout_ms = timeout_ms;
  options.hello_timeout_ms = timeout_ms;
  LPLOW_ASSIGN_OR_RETURN(std::unique_ptr<SocketSolveBackend> backend,
                         SocketSolveBackend::Create(options));
  return backend->ScrapeStats(0, include_trace);
}

}  // namespace runtime
}  // namespace lplow

// A fixed-size, work-stealing-free thread pool plus structured fork-join
// primitives (TaskGroup, ParallelFor). This is the execution substrate for
// the concurrent site/machine emulation in src/models and for the
// SolverService job queue.
//
// Design constraints (see docs/runtime.md):
//   * deterministic protocols: the pool never owns randomness or ordering —
//     callers assign work to fixed indices and merge results at barriers, so
//     solver output is bit-identical for every thread count;
//   * no detached work: every task belongs to a TaskGroup (or is awaited via
//     the destructor), and ~ThreadPool drains the queue before joining;
//   * no deadlock under nesting: TaskGroup::Wait() helps execute queued pool
//     tasks while it waits, so a task may itself fork a group on the same
//     pool.

#ifndef LPLOW_RUNTIME_THREAD_POOL_H_
#define LPLOW_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lplow {
namespace runtime {

/// Fixed pool of worker threads draining one shared FIFO queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Prefer TaskGroup/ParallelFor: raw Submit has no
  /// completion handle, only the destructor's drain guarantee.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [begin, end) across the pool; blocks until
  /// all iterations finish and rethrows the first exception thrown.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  friend class TaskGroup;

  /// Pops and runs one queued task; false if the queue was empty.
  bool RunOneTask();
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Structured fork-join scope over an optional pool. Run() schedules a task
/// (inline when `pool` is null — the serial reference path), Wait() blocks
/// until every scheduled task finished and rethrows the first captured
/// exception. The waiting thread helps drain the pool queue, so groups nest
/// safely on one pool. The destructor waits (swallowing errors) — a group
/// never leaks running tasks past its scope.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);
  void Wait();

 private:
  void CaptureError();

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  size_t pending_ = 0;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [begin, end): inline when `pool` is null, otherwise
/// as contiguous index blocks across the pool with the caller participating.
/// Iteration i always sees the same index regardless of thread count, which
/// is what makes "write to slot i, merge at the barrier" deterministic.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

class SolveBackend;  // solve_backend.h
namespace trace {
class TraceRecorder;  // trace.h
}

/// How the engine's violator scans execute (engine/constraint_store.h).
/// Pure execution policy: violation bitmaps — and therefore transcripts,
/// weights, and deterministic counters — are bit-identical for every
/// setting (docs/engine.md §"SIMD violator scan").
enum class ScanStrategy : uint8_t {
  /// SIMD kernel when the problem supports it, pool-chunked when a pool is
  /// available and the store is large; the default.
  kAuto,
  /// The serial predicate-lambda reference path, no SIMD, no fusion.
  kSerial,
  /// Predicate-lambda evaluation fanned across the pool into a bitmap
  /// (the pre-SIMD pool path).
  kPoolBitmap,
  /// SIMD kernel, single-threaded even when a pool is available.
  kSimd,
  /// SIMD kernel with pool-chunked block ranges.
  kSimdPool,
};

/// Threading knob shared by the model solvers (CoordinatorOptions::runtime,
/// MpcOptions::runtime). The default is the serial reference path; results
/// are bit-identical for every setting.
struct RuntimeOptions {
  /// Worker threads for the per-round site/machine emulation; 1 = serial.
  size_t num_threads = 1;
  /// Optional externally owned pool (e.g. shared across a SolverService);
  /// overrides num_threads when set.
  ThreadPool* pool = nullptr;
  /// Where the engine's oversized-basis and Las Vegas fallback solves run
  /// (e.g. a ShardedSolverService); null = dispatch on the solver's own
  /// pool. Pure dispatch policy: results and deterministic counters are
  /// bit-identical for every backend (docs/runtime.md §"Sharded solver
  /// backend").
  SolveBackend* solver_backend = nullptr;
  /// Sample sizes at or above this route through the backend/pool instead
  /// of solving inline; 0 = the engine default (4096).
  size_t oversized_basis_threshold = 0;
  /// Span recorder for the engine's iteration / violator-scan / basis-solve
  /// spans (docs/runtime.md §"Tracing and histograms"); null or disabled =
  /// no tracing. Observability only — enabling it never changes results,
  /// transcripts, or deterministic counters. Must outlive the solve.
  trace::TraceRecorder* trace = nullptr;
  /// Violator-scan execution policy (see ScanStrategy). Results are
  /// bit-identical for every setting.
  ScanStrategy scan_strategy = ScanStrategy::kAuto;
};

/// Resolves RuntimeOptions to the pool a solver should use: the external
/// pool if set, else a fresh pool stored into *owned when num_threads > 1,
/// else nullptr (serial path).
ThreadPool* ResolvePool(const RuntimeOptions& options,
                        std::unique_ptr<ThreadPool>* owned);

}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_THREAD_POOL_H_

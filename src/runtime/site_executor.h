// SiteExecutor: the round-structured bridge between the model solvers and
// the ThreadPool. One RunRound() call emulates one synchronous protocol
// phase — every site/machine runs its handler, possibly concurrently, and
// the call returns only when all of them finished (the round barrier the
// paper's synchronous models assume).
//
// Determinism contract (docs/runtime.md): the body receives its fixed
// site index, must touch only per-site state plus thread-safe accounting
// (coord::Channel, mpc::MpcRuntime, runtime::Counter), and the solver merges
// per-site outputs after the barrier in site order. Under that contract the
// protocol transcript is bit-identical for every thread count.

#ifndef LPLOW_RUNTIME_SITE_EXECUTOR_H_
#define LPLOW_RUNTIME_SITE_EXECUTOR_H_

#include <cstddef>
#include <functional>

#include "src/runtime/thread_pool.h"

namespace lplow {
namespace runtime {

class SiteExecutor {
 public:
  /// `pool` may be null: every round then runs inline in site order, which
  /// is the serial reference path (RuntimeOptions{num_threads = 1}).
  SiteExecutor(ThreadPool* pool, size_t num_sites)
      : pool_(pool), num_sites_(num_sites) {}

  /// Runs body(site) for every site in [0, num_sites) and blocks until all
  /// complete. Exceptions from site bodies propagate (first one wins).
  void RunRound(const std::function<void(size_t)>& body) {
    ++rounds_run_;
    ParallelFor(pool_, 0, num_sites_, body);
  }

  size_t num_sites() const { return num_sites_; }
  size_t rounds_run() const { return rounds_run_; }
  bool parallel() const { return pool_ != nullptr && pool_->num_threads() > 1; }
  size_t threads() const { return parallel() ? pool_->num_threads() : 1; }

 private:
  ThreadPool* pool_;
  size_t num_sites_;
  size_t rounds_run_ = 0;
};

}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_SITE_EXECUTOR_H_

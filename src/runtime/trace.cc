#include "src/runtime/trace.h"

#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/util/stopwatch.h"

namespace lplow {
namespace runtime {
namespace trace {

namespace {

// Recorders are keyed in thread-local state by a process-unique id (never a
// raw pointer: ids are never reused, so a destroyed recorder's cache entries
// can never be mistaken for a new recorder at the same address).
std::atomic<uint64_t> g_next_recorder_id{1};

struct ShardCacheEntry {
  uint64_t recorder_id;
  void* shard;  // TraceRecorder::ThreadShard*, typed at the use site.
};

struct ContextEntry {
  uint64_t recorder_id;
  SpanContext ctx;
};

// Per-thread shard cache and span-context stack. Both are small vectors:
// a thread typically touches one or two recorders, and the context stack
// depth is the span nesting depth.
thread_local std::vector<ShardCacheEntry> tls_shard_cache;
thread_local std::vector<ContextEntry> tls_context_stack;

void WriteJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << *s;
    }
  }
  os << '"';
}

}  // namespace

TraceRecorder::TraceRecorder(bool enabled)
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      enabled_(enabled) {}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::SetProcessLabel(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  process_label_ = std::move(label);
}

uint64_t TraceRecorder::NowMicros() { return Stopwatch::NowMicros(); }

SpanContext TraceRecorder::CurrentContext() const {
  for (auto it = tls_context_stack.rbegin(); it != tls_context_stack.rend();
       ++it) {
    if (it->recorder_id == id_) return it->ctx;
  }
  return SpanContext{};
}

void TraceRecorder::PushContext(SpanContext ctx) {
  tls_context_stack.push_back(ContextEntry{id_, ctx});
}

void TraceRecorder::PopContext(SpanContext ctx) {
  // Scopes are strictly nested per thread, so the entry is at (or, with
  // interleaved recorders, near) the top.
  for (auto it = tls_context_stack.rbegin(); it != tls_context_stack.rend();
       ++it) {
    if (it->recorder_id == id_ && it->ctx.span_id == ctx.span_id &&
        it->ctx.trace_id == ctx.trace_id) {
      tls_context_stack.erase(std::next(it).base());
      return;
    }
  }
}

TraceRecorder::ThreadShard* TraceRecorder::GetShard() {
  for (const ShardCacheEntry& entry : tls_shard_cache) {
    if (entry.recorder_id == id_) {
      return static_cast<ThreadShard*>(entry.shard);
    }
  }
  ThreadShard* shard = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shard_by_thread_.find(std::this_thread::get_id());
    if (it != shard_by_thread_.end()) {
      shard = it->second;
    } else {
      shards_.push_back(std::make_unique<ThreadShard>());
      shard = shards_.back().get();
      shard->tid = static_cast<uint32_t>(shards_.size() - 1);
      shard_by_thread_.emplace(std::this_thread::get_id(), shard);
    }
  }
  // Cap the cache so a long-lived thread touching many short-lived
  // recorders (tests) cannot grow it without bound; evicted entries just
  // re-register through the slow path above.
  if (tls_shard_cache.size() >= 64) {
    tls_shard_cache.erase(tls_shard_cache.begin(),
                          tls_shard_cache.begin() + 32);
  }
  tls_shard_cache.push_back(ShardCacheEntry{id_, shard});
  return shard;
}

void TraceRecorder::Append(EventRecord ev) {
  ThreadShard* shard = GetShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  ev.tid = shard->tid;
  shard->events.push_back(ev);
}

SpanContext TraceRecorder::RecordComplete(const char* name, uint64_t start_us,
                                          uint64_t end_us, SpanContext parent,
                                          std::initializer_list<Arg> args) {
  if (!enabled()) return SpanContext{};
  EventRecord ev;
  ev.name = name;
  ev.ts_us = start_us;
  ev.dur_us = end_us >= start_us ? end_us - start_us : 0;
  ev.trace_id = parent.trace_id != 0 ? parent.trace_id : NewTraceId();
  ev.span_id = NextId();
  ev.parent_span_id = parent.span_id;
  for (const Arg& a : args) {
    if (ev.num_args >= kMaxArgs) break;
    ev.args[ev.num_args++] = a;
  }
  Append(ev);
  return SpanContext{ev.trace_id, ev.span_id};
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    n += shard->events.size();
  }
  return n;
}

std::vector<TraceRecorder::EventRecord> TraceRecorder::Snapshot() const {
  std::vector<EventRecord> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      events.insert(events.end(), shard->events.begin(), shard->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->events.clear();
  }
}

void TraceRecorder::WriteChromeJson(std::ostream& os) const {
  const std::vector<EventRecord> events = Snapshot();
  std::string label;
  {
    std::lock_guard<std::mutex> lock(mu_);
    label = process_label_;
  }
  const uint64_t pid = static_cast<uint64_t>(::getpid());
  os << "{\"traceEvents\":[";
  bool first = true;
  if (!label.empty()) {
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    WriteJsonString(os, label.c_str());
    os << "}}";
    first = false;
  }
  for (const EventRecord& ev : events) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":";
    WriteJsonString(os, ev.name);
    os << ",\"cat\":\"lplow\",\"ph\":\"X\",\"ts\":" << ev.ts_us
       << ",\"dur\":" << ev.dur_us << ",\"pid\":" << pid
       << ",\"tid\":" << ev.tid << ",\"args\":{\"trace_id\":" << ev.trace_id
       << ",\"span_id\":" << ev.span_id
       << ",\"parent_span_id\":" << ev.parent_span_id;
    for (uint8_t i = 0; i < ev.num_args; ++i) {
      os << ',';
      WriteJsonString(os, ev.args[i].key);
      os << ':' << ev.args[i].value;
    }
    os << "}}";
  }
  os << "\n]}";
}

std::string TraceRecorder::ToChromeJson() const {
  std::ostringstream os;
  WriteChromeJson(os);
  return os.str();
}

void TraceSpan::Init(TraceRecorder* recorder, const char* name,
                     SpanContext parent) {
  // The inert path: no clock, no lock, no allocation (trace_test pins it).
  if (recorder == nullptr || !recorder->enabled()) return;
  recorder_ = recorder;
  name_ = name;
  ctx_.trace_id =
      parent.trace_id != 0 ? parent.trace_id : recorder->NewTraceId();
  ctx_.span_id = recorder->NextId();
  parent_span_ = parent.span_id;
  recorder->PushContext(ctx_);
  start_us_ = TraceRecorder::NowMicros();
}

TraceSpan::TraceSpan(TraceRecorder* recorder, const char* name) {
  Init(recorder, name,
       recorder != nullptr ? recorder->CurrentContext() : SpanContext{});
}

TraceSpan::TraceSpan(TraceRecorder* recorder, const char* name,
                     SpanContext parent) {
  Init(recorder, name, parent);
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  const uint64_t end_us = TraceRecorder::NowMicros();
  recorder_->PopContext(ctx_);
  TraceRecorder::EventRecord ev;
  ev.name = name_;
  ev.ts_us = start_us_;
  ev.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  ev.trace_id = ctx_.trace_id;
  ev.span_id = ctx_.span_id;
  ev.parent_span_id = parent_span_;
  ev.num_args = num_args_;
  ev.args = args_;
  recorder_->Append(ev);
}

void TraceSpan::Arg(const char* key, uint64_t value) {
  if (recorder_ == nullptr || num_args_ >= TraceRecorder::kMaxArgs) return;
  args_[num_args_++] = TraceRecorder::Arg{key, value};
}

ContextScope::ContextScope(TraceRecorder* recorder, SpanContext ctx) {
  if (recorder == nullptr || !recorder->enabled()) return;
  recorder_ = recorder;
  ctx_ = ctx;
  recorder_->PushContext(ctx_);
}

ContextScope::~ContextScope() {
  if (recorder_ != nullptr) recorder_->PopContext(ctx_);
}

std::string MergeChromeTraces(std::span<const std::string> traces) {
  // Inputs are WriteChromeJson documents: {"traceEvents":[ <events> ]} —
  // splice the event lists textually. Not a general JSON merge; it relies
  // on the exporter's own shape (no nested arrays outside the event list).
  std::string merged = "{\"traceEvents\":[";
  bool first = true;
  for (const std::string& doc : traces) {
    const size_t open = doc.find('[');
    const size_t close = doc.rfind(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open) {
      continue;
    }
    std::string body = doc.substr(open + 1, close - open - 1);
    const size_t begin = body.find_first_not_of(" \t\n\r");
    if (begin == std::string::npos) continue;  // Empty event list.
    const size_t end = body.find_last_not_of(" \t\n\r");
    body = body.substr(begin, end - begin + 1);
    if (!first) merged += ',';
    first = false;
    merged += '\n';
    merged += body;
  }
  merged += "\n]}";
  return merged;
}

}  // namespace trace
}  // namespace runtime
}  // namespace lplow

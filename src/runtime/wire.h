// The lplow wire protocol: versioned, length-prefixed frames carrying
// serialized solve jobs and results between an engine client and an
// `lp_served` daemon (docs/runtime.md §"Wire protocol").
//
// Layout of one frame (all integers little-endian via util/bit_stream):
//
//   u32 magic   "LPW1" (0x3157504C)   — stream resync / protocol check
//   u8  version in [kMinWireVersion, kWireVersion]
//   u8  kind    FrameKind             — what the payload is (valid range
//                                       depends on the frame's version)
//   u32 size    payload byte count    — bounded by max_payload
//   u8  payload[size]
//
// Version history (additive changes only; a frame is interpreted under the
// version its own header declares, so a v2 daemon serves v1 clients):
//   v1 — kinds kHello..kShutdown; SolveRequest = job_id, kind, problem.
//   v2 — adds kStatsRequest/kStatsResponse and an optional trace context
//        (flags byte + trace_id/parent_span) in SolveRequest, so daemon
//        spans stitch under the client's trace (src/runtime/trace.h).
//
// Payload formats are per-kind binary codecs in the style the repo already
// uses for its protocol messages: every field is encoded with BitWriter
// primitives, and every decoder validates declared lengths against the
// remaining bytes BEFORE allocating, so untrusted input fails with a clean
// Status — never UB, never an allocation bomb (tests/wire_test.cc drives
// truncations at every byte and adversarial lengths under ASan/UBSan).
//
// Determinism contract: doubles cross the wire as their raw 8-byte images,
// so a remote SolveBasis result decodes bit-identical to the same solve run
// in-process — the transcript-identity guarantee the socket backend is
// pinned against (tests/socket_backend_test.cc).

#ifndef LPLOW_RUNTIME_WIRE_H_
#define LPLOW_RUNTIME_WIRE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/core/lp_type.h"
#include "src/problems/chebyshev_center.h"
#include "src/problems/enclosing_annulus.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/linf_regression.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/runtime/trace.h"
#include "src/util/bit_stream.h"
#include "src/util/status.h"

namespace lplow {
namespace runtime {
namespace wire {

/// Bytes "LPW1" on the wire (read back as a little-endian u32).
inline constexpr uint32_t kMagic = 0x3157504Cu;
/// The version this peer speaks and stamps on frames it originates.
/// Bumped on any frame or payload change; additive changes keep old
/// versions decodable (the versioning rule in docs/runtime.md).
inline constexpr uint8_t kWireVersion = 2;
/// Oldest version this peer still accepts: a frame whose header declares a
/// version in [kMinWireVersion, kWireVersion] is interpreted under THAT
/// version, and responses echo it — so a v2 daemon serves v1 clients.
inline constexpr uint8_t kMinWireVersion = 1;
/// Fixed frame header size: magic + version + kind + payload size.
inline constexpr size_t kFrameHeaderBytes = 10;
/// Default ceiling on one frame's payload. A peer declaring more is
/// malformed or hostile; the frame is rejected before any allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class FrameKind : uint8_t {
  /// Daemon -> client greeting sent on connect: varint num_shards,
  /// varint max_inflight (0 = unlimited).
  kHello = 1,
  /// Client -> daemon solve job (SolveRequest payload).
  kSolveRequest = 2,
  /// Daemon -> client result (SolveResponse payload; may carry an error
  /// status for a job that decoded but could not be served).
  kSolveResponse = 3,
  /// Protocol-level failure (Error payload: the Status); the sender closes
  /// the connection after writing it.
  kError = 4,
  /// Liveness probe; the daemon answers kPong with an empty payload.
  kPing = 5,
  kPong = 6,
  /// Admission-control rejection: the daemon is at max_inflight. Empty
  /// payload; the request was NOT queued — retry elsewhere or back off.
  kBusy = 7,
  /// Client asks the daemon to drain and exit (honored only when the
  /// daemon was started with allow_remote_shutdown).
  kShutdown = 8,
  /// v2+: client asks for the daemon's observability state (StatsRequest
  /// payload: which pieces to include).
  kStatsRequest = 9,
  /// v2+: the daemon's MetricsRegistry JSON and, when requested and
  /// available, its Chrome trace JSON (StatsResponse payload).
  kStatsResponse = 10,
};

/// The newest frame kind each wire version defines — the upper bound
/// DecodeFrameHeader enforces for a frame of that version.
FrameKind MaxFrameKindForVersion(uint8_t version);

/// Stable lower-snake name of a frame kind ("solve_request", "busy", ...),
/// used as the metric-key suffix of the per-kind wire byte counters
/// (`wire.client.tx_bytes.<name>`); "unknown" for out-of-range values.
const char* FrameKindName(FrameKind kind);

struct FrameHeader {
  uint8_t version = kWireVersion;
  FrameKind kind = FrameKind::kError;
  uint32_t payload_size = 0;
};

/// Appends the 10-byte header to `w`, stamped with `version` (a responder
/// echoes the request frame's version; an originator uses kWireVersion).
void EncodeFrameHeader(FrameKind kind, uint32_t payload_size, BitWriter* w,
                       uint8_t version = kWireVersion);

/// Decodes and validates a header: magic, version within
/// [kMinWireVersion, kWireVersion], kind known under that version, and
/// payload_size <= max_payload. Fails with a clean Status on anything else.
Result<FrameHeader> DecodeFrameHeader(BitReader* r,
                                      uint32_t max_payload = kMaxFramePayload);

struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// One fully framed message: header + payload bytes.
std::vector<uint8_t> EncodeFrame(FrameKind kind,
                                 std::span<const uint8_t> payload,
                                 uint8_t version = kWireVersion);

/// Whole-buffer decode (the socket layer reads header and payload
/// separately; this form serves tests and in-memory transports). The buffer
/// must contain exactly one frame — trailing bytes are an error.
Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                          uint32_t max_payload = kMaxFramePayload);

// ---------------------------------------------------------------- payloads

/// Job kinds the daemon can solve. One byte on the wire; every LP-type
/// problem the repo ships is solvable remotely.
enum class ProblemKind : uint8_t {
  kLinearProgram = 1,
  kLinearSvm = 2,
  kMinEnclosingBall = 3,
  kChebyshevCenter = 4,
  kLinfRegression = 5,
  kEnclosingAnnulus = 6,
};

/// Ceiling on a decoded problem dimension. The repo's problems are
/// low-dimensional by design (d ~ 2..10); anything larger in a request is
/// hostile input, and the ctors CHECK-fail on absurd values rather than
/// returning Status, so the decoder enforces the range first.
inline constexpr uint32_t kMaxWireDim = 1u << 16;

/// Hello payload.
struct Hello {
  uint64_t num_shards = 0;
  uint64_t max_inflight = 0;  // 0 = unlimited.
};
std::vector<uint8_t> EncodeHelloPayload(const Hello& hello);
Result<Hello> DecodeHelloPayload(const std::vector<uint8_t>& payload);

/// Error payload: the Status that aborted the exchange.
std::vector<uint8_t> EncodeErrorPayload(const Status& status);
/// Returns the carried (non-OK) status, or the decode failure itself.
Status DecodeErrorPayload(const std::vector<uint8_t>& payload);

/// Client-side trace identity riding inside a v2 SolveRequest: the daemon
/// parents its spans under (trace_id, parent_span) so one Chrome trace
/// shows the solve crossing the wire. All-zero = absent (and v1 requests
/// never carry one).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;

  bool present() const { return trace_id != 0; }
};

/// Bit flags of the v2 SolveRequest trace byte. Unknown bits are rejected.
inline constexpr uint8_t kRequestFlagTraceContext = 0x01;

/// StatsRequest payload (v2+): which observability pieces to return.
struct StatsRequest {
  bool include_metrics = true;
  bool include_trace = false;
};
std::vector<uint8_t> EncodeStatsRequestPayload(const StatsRequest& request);
Result<StatsRequest> DecodeStatsRequestPayload(
    const std::vector<uint8_t>& payload);

/// StatsResponse payload (v2+): the daemon's MetricsRegistry JSON plus its
/// Chrome trace JSON (empty string when not requested or not recorded).
struct StatsResponse {
  std::string metrics_json;
  std::string trace_json;
};
std::vector<uint8_t> EncodeStatsResponsePayload(const StatsResponse& response);
Result<StatsResponse> DecodeStatsResponsePayload(
    const std::vector<uint8_t>& payload);

/// The routing prefix of a SolveRequest payload: enough for the daemon to
/// pick a shard (and echo the job id on errors) without a full decode,
/// plus the v2 trace context when present. `version` is the request
/// frame's own header version.
struct SolveRequestHead {
  uint64_t job_id = 0;
  ProblemKind problem = ProblemKind::kLinearProgram;
  TraceContext trace;
};
Result<SolveRequestHead> PeekSolveRequestHead(
    const std::vector<uint8_t>& payload, uint8_t version = kWireVersion);

/// The status prefix of a SolveResponse payload: job id + status, readable
/// without knowing the problem type (the client uses it to classify server
/// errors before the engine decodes the basis).
struct SolveResponseHead {
  uint64_t job_id = 0;
  Status status;
};
Result<SolveResponseHead> PeekSolveResponseHead(
    const std::vector<uint8_t>& payload);

/// Per-kind codec: how one problem type and its f-value cross the wire.
/// Specialized for every LP-type problem the daemon serves; the primary
/// template is intentionally undefined so an unsupported problem fails to
/// compile (the engine gates on WireSolvable and falls back to local
/// dispatch instead).
template <typename P>
struct ProblemCodec;

template <>
struct ProblemCodec<LinearProgram> {
  static constexpr ProblemKind kKind = ProblemKind::kLinearProgram;
  static void EncodeProblem(const LinearProgram& p, BitWriter* w);
  static Result<LinearProgram> DecodeProblem(BitReader* r);
  static void EncodeValue(const LinearProgram::Value& v, BitWriter* w);
  static Result<LinearProgram::Value> DecodeValue(BitReader* r);
};

template <>
struct ProblemCodec<LinearSvm> {
  static constexpr ProblemKind kKind = ProblemKind::kLinearSvm;
  static void EncodeProblem(const LinearSvm& p, BitWriter* w);
  static Result<LinearSvm> DecodeProblem(BitReader* r);
  static void EncodeValue(const LinearSvm::Value& v, BitWriter* w);
  static Result<LinearSvm::Value> DecodeValue(BitReader* r);
};

template <>
struct ProblemCodec<MinEnclosingBall> {
  static constexpr ProblemKind kKind = ProblemKind::kMinEnclosingBall;
  static void EncodeProblem(const MinEnclosingBall& p, BitWriter* w);
  static Result<MinEnclosingBall> DecodeProblem(BitReader* r);
  static void EncodeValue(const MinEnclosingBall::Value& v, BitWriter* w);
  static Result<MinEnclosingBall::Value> DecodeValue(BitReader* r);
};

template <>
struct ProblemCodec<ChebyshevCenter> {
  static constexpr ProblemKind kKind = ProblemKind::kChebyshevCenter;
  static void EncodeProblem(const ChebyshevCenter& p, BitWriter* w);
  static Result<ChebyshevCenter> DecodeProblem(BitReader* r);
  static void EncodeValue(const ChebyshevCenter::Value& v, BitWriter* w);
  static Result<ChebyshevCenter::Value> DecodeValue(BitReader* r);
};

template <>
struct ProblemCodec<LinfRegression> {
  static constexpr ProblemKind kKind = ProblemKind::kLinfRegression;
  static void EncodeProblem(const LinfRegression& p, BitWriter* w);
  static Result<LinfRegression> DecodeProblem(BitReader* r);
  static void EncodeValue(const LinfRegression::Value& v, BitWriter* w);
  static Result<LinfRegression::Value> DecodeValue(BitReader* r);
};

template <>
struct ProblemCodec<EnclosingAnnulus> {
  static constexpr ProblemKind kKind = ProblemKind::kEnclosingAnnulus;
  static void EncodeProblem(const EnclosingAnnulus& p, BitWriter* w);
  static Result<EnclosingAnnulus> DecodeProblem(BitReader* r);
  static void EncodeValue(const EnclosingAnnulus::Value& v, BitWriter* w);
  static Result<EnclosingAnnulus::Value> DecodeValue(BitReader* r);
};

/// True for problem types with a wire codec — the gate the engine checks
/// before attempting serialized dispatch.
template <typename P>
concept WireSolvable = requires { ProblemCodec<P>::kKind; };

/// SolveRequest payload:
///   u64 job_id, u8 problem_kind,
///   v2+: u8 trace_flags, [u64 trace_id, u64 parent_span]  -- iff flagged,
///   problem config (per-kind), varint constraint_count, constraints
///   (problem wire format).
/// Everything after the trace block is byte-identical to v1, so a v2
/// request without context decodes to exactly the v1 semantics.
template <WireSolvable P>
std::vector<uint8_t> EncodeSolveRequestPayload(
    uint64_t job_id, const P& problem,
    std::span<const typename P::Constraint> sample, TraceContext trace = {},
    uint8_t version = kWireVersion) {
  BitWriter w;
  w.PutU64(job_id);
  w.PutU8(static_cast<uint8_t>(ProblemCodec<P>::kKind));
  if (version >= 2) {
    if (trace.present()) {
      w.PutU8(kRequestFlagTraceContext);
      w.PutU64(trace.trace_id);
      w.PutU64(trace.parent_span);
    } else {
      w.PutU8(0);
    }
  }
  ProblemCodec<P>::EncodeProblem(problem, &w);
  w.PutVarU64(sample.size());
  for (const auto& c : sample) problem.SerializeConstraint(c, &w);
  return w.Release();
}

/// SolveResponse payload:
///   u64 job_id, u8 status_code, string status_message,
///   [value (per-kind), varint basis_count, constraints]  -- iff OK.
template <WireSolvable P>
std::vector<uint8_t> EncodeSolveResponsePayload(
    uint64_t job_id, const P& problem,
    const BasisResult<typename P::Value, typename P::Constraint>& result) {
  BitWriter w;
  w.PutU64(job_id);
  w.PutU8(0);       // StatusCode::kOk.
  w.PutString("");  // Empty message on success.
  ProblemCodec<P>::EncodeValue(result.value, &w);
  w.PutVarU64(result.basis.size());
  for (const auto& c : result.basis) problem.SerializeConstraint(c, &w);
  return w.Release();
}

/// SolveResponse payload carrying an error instead of a result (the job
/// decoded far enough to know its id but could not be served).
std::vector<uint8_t> EncodeSolveErrorResponsePayload(uint64_t job_id,
                                                     const Status& status);

/// Decodes a SolveResponse payload back into the basis result. Fails when
/// the payload is malformed, echoes a different job id, or carries a non-OK
/// status (returned as-is).
template <WireSolvable P>
Result<BasisResult<typename P::Value, typename P::Constraint>>
DecodeSolveResponsePayload(const P& problem,
                           const std::vector<uint8_t>& payload,
                           uint64_t expected_job_id) {
  BitReader r(payload);
  LPLOW_ASSIGN_OR_RETURN(uint64_t job_id, r.GetU64());
  if (job_id != expected_job_id) {
    return Status::Internal("solve response for a different job id");
  }
  LPLOW_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  LPLOW_ASSIGN_OR_RETURN(std::string message, r.GetString());
  if (code != 0) {
    if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
      return Status::InvalidArgument("solve response carries unknown status");
    }
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  BasisResult<typename P::Value, typename P::Constraint> result;
  LPLOW_ASSIGN_OR_RETURN(result.value, ProblemCodec<P>::DecodeValue(&r));
  LPLOW_ASSIGN_OR_RETURN(uint64_t count, r.GetVarU64());
  // Every serialized constraint is at least one byte, so a count beyond the
  // remaining bytes cannot be honest — reject before reserving.
  if (count > r.remaining()) {
    return Status::OutOfRange("basis count exceeds payload");
  }
  result.basis.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    LPLOW_ASSIGN_OR_RETURN(auto c, problem.DeserializeConstraint(&r));
    result.basis.push_back(std::move(c));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes in solve response");
  }
  return result;
}

/// Knobs for serving one request payload: the request frame's version
/// (which fixes the payload layout) and, optionally, a recorder + parent
/// under which the daemon-side decode/solve/encode spans are recorded.
struct ServeOptions {
  uint8_t version = kWireVersion;
  trace::TraceRecorder* trace = nullptr;
  trace::SpanContext parent;
};

/// The daemon's whole request handler: decodes the per-kind job, runs
/// SolveBasis, and returns the encoded SolveResponse payload. A decode
/// failure comes back as the Status for the caller to frame (as an error
/// response when the job id is known, as kError otherwise). Deterministic:
/// the same request bytes always produce the same response bytes — tracing
/// observes the serve but never alters it.
Result<std::vector<uint8_t>> ServeSolveRequestPayload(
    const std::vector<uint8_t>& payload, const ServeOptions& options = {});

}  // namespace wire
}  // namespace runtime
}  // namespace lplow

#endif  // LPLOW_RUNTIME_WIRE_H_

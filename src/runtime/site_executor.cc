// SiteExecutor is header-only; this file anchors the module in the build.

#include "src/runtime/site_executor.h"

namespace lplow {
namespace runtime {
// (Intentionally empty.)
}  // namespace runtime
}  // namespace lplow

#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace lplow {
namespace runtime {

ThreadPool::ThreadPool(size_t num_threads) {
  LPLOW_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    LPLOW_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  runtime::ParallelFor(this, begin, end, fn);
}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // The destructor only guarantees the barrier; errors were the Wait()
    // caller's to observe.
  }
}

void TaskGroup::CaptureError() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    try {
      fn();
    } catch (...) {
      CaptureError();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      CaptureError();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) done_cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ == 0) break;
    }
    // Help: run queued pool tasks instead of blocking, so a task waiting on
    // a nested group makes progress even when every worker is busy.
    if (pool_ == nullptr || !pool_->RunOneTask()) {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    std::rethrow_exception(err);
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  const size_t n = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    // Same error semantics as the pooled path: every iteration runs, the
    // first exception is rethrown at the barrier — post-error state must
    // not depend on the thread count.
    std::exception_ptr first_error;
    for (size_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  // More shards than threads smooths out uneven per-index work (sites hold
  // different constraint counts) without a work-stealing scheduler.
  const size_t shards = std::min(n, 4 * pool->num_threads());
  TaskGroup group(pool);
  for (size_t s = 0; s < shards; ++s) {
    const size_t lo = begin + n * s / shards;
    const size_t hi = begin + n * (s + 1) / shards;
    if (lo == hi) continue;
    group.Run([&fn, lo, hi] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.Wait();
}

ThreadPool* ResolvePool(const RuntimeOptions& options,
                        std::unique_ptr<ThreadPool>* owned) {
  if (options.pool != nullptr) return options.pool;
  if (options.num_threads <= 1) return nullptr;
  *owned = std::make_unique<ThreadPool>(options.num_threads);
  return owned->get();
}

}  // namespace runtime
}  // namespace lplow

// Synthetic workload generators for examples, tests, and benchmarks. Every
// generator is deterministic given its seed, and each returns instances with
// a known or independently checkable optimum.

#ifndef LPLOW_WORKLOAD_GENERATORS_H_
#define LPLOW_WORKLOAD_GENERATORS_H_

#include <vector>

#include "src/baselines/chan_chen_2d.h"
#include "src/geometry/halfspace.h"
#include "src/geometry/vec.h"
#include "src/solvers/svm_qp.h"
#include "src/util/rng.h"

namespace lplow {
namespace workload {

// ---------------------------------------------------------------------- LP

struct LpInstance {
  std::vector<Halfspace> constraints;
  Vec objective;
};

/// Random feasible bounded LP: constraints are tangent halfspaces of random
/// points on a sphere of radius `radius` around `center` (so the feasible
/// region contains the center and the optimum is bounded and generic).
LpInstance RandomFeasibleLp(size_t n, size_t d, Rng* rng,
                            double radius = 100.0);

/// Infeasible LP: a feasible core plus a cluster of halfspaces whose
/// intersection with it is empty.
LpInstance RandomInfeasibleLp(size_t n, size_t d, Rng* rng);

/// Chebyshev (L-infinity) regression as an LP, the over-constrained ML
/// workload the paper's introduction motivates: fit y ~ w.x + b minimizing
/// the maximum absolute residual. Variables are (w_1..w_d, b, t), objective
/// minimizes t, and every sample contributes two halfspaces
/// |y_j - w.x_j - b| <= t.
struct RegressionData {
  std::vector<Vec> x;       // d-dimensional features.
  std::vector<double> y;    // Targets.
  Vec true_w;               // Ground-truth weights.
  double true_b = 0;        // Ground-truth intercept.
  double noise = 0;         // Max |noise| added (the optimal t is <= noise).
};

RegressionData RandomRegressionData(size_t n, size_t d, double noise,
                                    Rng* rng);

/// The LP encoding of Chebyshev regression (dimension d + 2).
LpInstance ChebyshevRegressionLp(const RegressionData& data);

// --------------------------------------------------------------------- SVM

/// Linearly separable labeled points with margin >= `margin` around a random
/// separating hyperplane through the origin.
std::vector<SvmPoint> SeparableSvmData(size_t n, size_t d, double margin,
                                       Rng* rng);

/// Non-separable data: separable base with `flips` labels inverted near the
/// boundary.
std::vector<SvmPoint> NonSeparableSvmData(size_t n, size_t d, Rng* rng);

// --------------------------------------------------------------------- MEB

/// Gaussian point cloud (generic position, unique MEB).
std::vector<Vec> GaussianCloud(size_t n, size_t d, Rng* rng,
                               double stddev = 10.0);

/// Points on or near a sphere: the MEB radius is ~`radius` and the support
/// set is well-defined; `surface_fraction` of points lie exactly on the
/// sphere.
std::vector<Vec> SphereCloud(size_t n, size_t d, double radius,
                             double surface_fraction, Rng* rng);

// -------------------------------------------------------------- envelopes

/// Random lower-envelope lines with a bounded minimum (for the Chan-Chen
/// baseline and 2-d LP experiments).
std::vector<baselines::Line2d> RandomEnvelopeLines(size_t n, Rng* rng);

// ------------------------------------------------------------ partitioning

/// Splits items into k parts: round-robin when `shuffled`, else contiguous
/// (adversarial skew: related constraints co-located).
template <typename T>
std::vector<std::vector<T>> Partition(const std::vector<T>& items, size_t k,
                                      bool shuffled, Rng* rng) {
  std::vector<std::vector<T>> parts(k);
  if (shuffled) {
    std::vector<size_t> order(items.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng->Shuffle(&order);
    for (size_t i = 0; i < items.size(); ++i) {
      parts[i % k].push_back(items[order[i]]);
    }
  } else {
    size_t per = (items.size() + k - 1) / k;
    for (size_t i = 0; i < items.size(); ++i) {
      parts[std::min(i / per, k - 1)].push_back(items[i]);
    }
  }
  return parts;
}

}  // namespace workload
}  // namespace lplow

#endif  // LPLOW_WORKLOAD_GENERATORS_H_

#include "src/workload/lp_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace lplow {
namespace workload {

namespace {

Status LineError(size_t line, const std::string& what) {
  std::ostringstream oss;
  oss << "line " << line << ": " << what;
  return Status::InvalidArgument(oss.str());
}

// Strips comments and returns whitespace-split tokens.
std::vector<std::string> Tokenize(const std::string& raw) {
  std::string line = raw;
  size_t hash = line.find('#');
  if (hash != std::string::npos) line.resize(hash);
  std::istringstream iss(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (iss >> tok) tokens.push_back(tok);
  return tokens;
}

bool ParseDouble(const std::string& s, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

Result<LpInstance> ReadLpInstance(std::istream& in) {
  LpInstance inst;
  size_t d = 0;
  bool have_header = false;
  bool have_objective = false;
  std::string raw;
  size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    auto tokens = Tokenize(raw);
    if (tokens.empty()) continue;
    if (tokens[0] == "lp") {
      if (have_header) return LineError(line_no, "duplicate 'lp' header");
      if (tokens.size() != 2) return LineError(line_no, "expected 'lp <d>'");
      int dim = 0;
      try {
        dim = std::stoi(tokens[1]);
      } catch (...) {
        return LineError(line_no, "bad dimension");
      }
      if (dim < 1 || dim > 64) {
        return LineError(line_no, "dimension out of range [1, 64]");
      }
      d = static_cast<size_t>(dim);
      have_header = true;
    } else if (tokens[0] == "objective") {
      if (!have_header) return LineError(line_no, "'objective' before 'lp'");
      if (have_objective) return LineError(line_no, "duplicate objective");
      if (tokens.size() != d + 1) {
        return LineError(line_no, "objective needs d coefficients");
      }
      inst.objective = Vec(d);
      for (size_t i = 0; i < d; ++i) {
        if (!ParseDouble(tokens[i + 1], &inst.objective[i])) {
          return LineError(line_no, "bad objective coefficient");
        }
      }
      have_objective = true;
    } else if (tokens[0] == "c") {
      if (!have_header) return LineError(line_no, "'c' before 'lp'");
      if (tokens.size() != d + 2) {
        return LineError(line_no, "constraint needs d coefficients and b");
      }
      Halfspace h(Vec(d), 0);
      for (size_t i = 0; i < d; ++i) {
        if (!ParseDouble(tokens[i + 1], &h.a[i])) {
          return LineError(line_no, "bad constraint coefficient");
        }
      }
      if (!ParseDouble(tokens[d + 1], &h.b)) {
        return LineError(line_no, "bad constraint offset");
      }
      inst.constraints.push_back(std::move(h));
    } else {
      return LineError(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!have_header) return Status::InvalidArgument("missing 'lp <d>' header");
  if (!have_objective) return Status::InvalidArgument("missing objective");
  return inst;
}

Result<LpInstance> ReadLpInstanceFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadLpInstance(in);
}

Status WriteLpInstance(const LpInstance& instance, std::ostream& out) {
  const size_t d = instance.objective.dim();
  out << "lp " << d << "\n";
  out << std::setprecision(17);
  out << "objective";
  for (size_t i = 0; i < d; ++i) out << " " << instance.objective[i];
  out << "\n";
  for (const Halfspace& h : instance.constraints) {
    if (h.dim() != d) {
      return Status::InvalidArgument("constraint dimension mismatch");
    }
    out << "c";
    for (size_t i = 0; i < d; ++i) out << " " << h.a[i];
    out << " " << h.b << "\n";
  }
  if (!out) return Status::Internal("write failed");
  return Status::OK();
}

Status WriteLpInstanceToFile(const LpInstance& instance,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return WriteLpInstance(instance, out);
}

}  // namespace workload
}  // namespace lplow

// Plain-text LP instance files, so downstream users can run the solvers on
// their own data (see examples/lp_solve_cli.cc).
//
// Format (whitespace-separated, '#' comments, blank lines ignored):
//
//     lp <d>
//     objective <c_1> ... <c_d>
//     c <a_1> ... <a_d> <b>          # constraint a.x <= b, repeated
//
// Writers emit the same format; round-trips are exact for values
// representable in decimal (17 significant digits are printed).

#ifndef LPLOW_WORKLOAD_LP_IO_H_
#define LPLOW_WORKLOAD_LP_IO_H_

#include <iosfwd>
#include <string>

#include "src/util/status.h"
#include "src/workload/generators.h"

namespace lplow {
namespace workload {

/// Parses an instance from a stream. Returns InvalidArgument with a
/// line-numbered message on malformed input.
Result<LpInstance> ReadLpInstance(std::istream& in);

/// Parses an instance from a file path.
Result<LpInstance> ReadLpInstanceFromFile(const std::string& path);

/// Writes an instance in the format above.
Status WriteLpInstance(const LpInstance& instance, std::ostream& out);

Status WriteLpInstanceToFile(const LpInstance& instance,
                             const std::string& path);

}  // namespace workload
}  // namespace lplow

#endif  // LPLOW_WORKLOAD_LP_IO_H_

// Traffic replay: a recorded request mix for soak-testing the sharded
// runtime under realistic skew, replayed bit-identically on any topology.
//
// RecordWorkload() synthesizes a heavy-traffic mix the way production
// traces look, not the way microbenchmarks do: job kinds follow a Zipf
// rank-frequency law over all six LP-type problems (a few kinds dominate,
// the tail is thin but present), instance sizes follow their own Zipf
// (small requests dominate, occasional large ones), and arrivals come from
// a Zipf-skewed tenant population whose ids double as routing keys — hot
// tenants hash to hot shards, which is exactly the load imbalance a shard
// sweep must absorb. Every job is stored as its wire SolveRequest payload
// (src/runtime/wire.h), so the recording is transport-agnostic.
//
// Replay() drives the recording through a ShardedSolverService — per-job
// Submit or coalesced BatchSubmit — serving each request either in-process
// (wire::ServeSolveRequestPayload) or through a SolveBackend's serialized
// path (e.g. SocketSolveBackend across a loopback daemon), with the
// backend's documented local-serve failover. The wire layer's determinism
// contract (same request bytes => same response bytes) makes the per-job
// response fingerprints, and the order-sensitive transcript hash folded
// from them, bit-identical across shard counts, thread counts, submission
// styles, and transports (tests/replay_test.cc pins this; the soak bench
// strict-gates it via scripts/bench_compare.py).

#ifndef LPLOW_WORKLOAD_REPLAY_H_
#define LPLOW_WORKLOAD_REPLAY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/runtime/metrics.h"
#include "src/runtime/sharded_solver_service.h"
#include "src/runtime/solve_backend.h"
#include "src/runtime/wire.h"

namespace lplow {
namespace workload {

/// Shape of the recorded mix. Every field feeds a deterministic draw from
/// `seed`, so equal options record byte-identical workloads.
struct RecordOptions {
  uint64_t seed = 0x5EEDC0DEULL;
  size_t num_jobs = 2000;
  /// Distinct traffic sources. A job's routing id is a pure function of its
  /// tenant, so all of one tenant's jobs land on one shard and the Zipf head
  /// concentrates there — the skew the service has to ride out.
  size_t num_tenants = 64;
  /// Zipf exponents (weight of rank i is 1/(i+1)^s; larger = more skewed).
  double tenant_zipf_s = 1.1;
  double kind_zipf_s = 1.0;
  double size_zipf_s = 1.3;
  /// Size classes: class c carries `base_constraints << c` constraints,
  /// c in [0, size_classes). Small classes dominate under the size Zipf.
  size_t base_constraints = 48;
  size_t size_classes = 4;
};

/// One recorded request: the routing key, the already-encoded wire
/// SolveRequest payload, and enough metadata to account for it.
struct RecordedJob {
  uint64_t job_id = 0;  // Routing key; shared by all jobs of one tenant.
  runtime::wire::ProblemKind kind = runtime::wire::ProblemKind::kLinearProgram;
  uint32_t constraints = 0;
  std::vector<uint8_t> request;
};

struct RecordedWorkload {
  uint64_t seed = 0;
  std::vector<RecordedJob> jobs;
  uint64_t request_bytes = 0;
  /// Jobs per problem kind, indexed by ProblemKind value - 1.
  std::array<uint64_t, 6> kind_jobs{};
};

/// Deterministically synthesizes the mix described by `options`.
RecordedWorkload RecordWorkload(const RecordOptions& options);

/// Stable lower-snake name of a problem kind ("linear_program", ...), the
/// suffix of the per-kind replay counters; "unknown" for bad values.
const char* ProblemKindName(runtime::wire::ProblemKind kind);

struct ReplayOptions {
  /// Serves each request through this backend's serialized path when it
  /// wants wire bytes (SocketSolveBackend), falling back to the in-process
  /// serve when the backend declines a job. Null, or a backend that does
  /// not take serialized jobs, serves everything in-process.
  runtime::SolveBackend* backend = nullptr;
  /// Registry for replay.* metrics; null = MetricsRegistry::Global().
  runtime::MetricsRegistry* metrics = nullptr;
  /// Submit jobs as one coalesced BatchSubmit instead of per-job Submit.
  bool batch = false;
};

struct ReplayResult {
  /// FNV-1a fingerprint of each job's SolveResponse payload, in recording
  /// order (completion order never leaks in).
  std::vector<uint64_t> job_hashes;
  /// Order-sensitive fold of `job_hashes`: the whole run's transcript.
  uint64_t transcript_hash = 0;
  uint64_t jobs_ok = 0;
  uint64_t jobs_failed = 0;   // Response carried a non-OK status.
  uint64_t remote_jobs = 0;   // Served through options.backend.
  uint64_t local_serves = 0;  // Served in-process (default or failover).
  uint64_t response_bytes = 0;
};

/// Replays `workload` through `service`, recording per-job latency into the
/// `replay.job_seconds` histogram (wall time — report-only percentiles) and
/// response sizes into `replay.response_bytes` (deterministic), plus
/// replay.jobs / replay.jobs_failed / replay.remote_jobs /
/// replay.local_serves / replay.kind.<name> counters. Blocks until every
/// job completed; the result is identical for every service topology.
ReplayResult Replay(const RecordedWorkload& workload,
                    runtime::ShardedSolverService* service,
                    const ReplayOptions& options = {});

}  // namespace workload
}  // namespace lplow

#endif  // LPLOW_WORKLOAD_REPLAY_H_

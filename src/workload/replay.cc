#include "src/workload/replay.h"

#include <atomic>
#include <cmath>
#include <cstddef>
#include <functional>
#include <future>
#include <string>
#include <utility>

#include "src/geometry/halfspace.h"
#include "src/geometry/vec.h"
#include "src/problems/chebyshev_center.h"
#include "src/problems/enclosing_annulus.h"
#include "src/problems/linear_program.h"
#include "src/problems/linear_svm.h"
#include "src/problems/linf_regression.h"
#include "src/problems/min_enclosing_ball.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/workload/generators.h"

namespace lplow {
namespace workload {
namespace {

namespace wire = runtime::wire;

uint64_t Fnv1aBytes(const std::vector<uint8_t>& bytes, uint64_t h) {
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Fnv1aU64(uint64_t v, uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Zipf sampler over ranks [0, n): weight of rank i is 1/(i+1)^s. Sampling
/// walks the precomputed CDF with one UniformDouble draw, so the draw count
/// per job is fixed and the recording is seed-stable.
class ZipfRanks {
 public:
  ZipfRanks(size_t n, double s) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Sample(Rng* rng) const {
    double u = rng->UniformDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

Vec RandomUnit(size_t d, Rng* rng) {
  Vec a(d);
  double norm = 0;
  while (norm < 1e-9) {
    for (size_t i = 0; i < d; ++i) a[i] = rng->Normal();
    norm = a.Norm();
  }
  return a / norm;
}

/// Bounded Chebyshev instance: d+1 positively-spanning facets pin the
/// feasible polytope around a random center, the rest are random supporting
/// halfspaces strictly farther out (same construction family as the test
/// generators, minus the planted-optimum bookkeeping).
std::vector<uint8_t> RecordChebyshev(uint64_t job_id, size_t n, size_t d,
                                     Rng* rng) {
  Vec center(d);
  for (size_t i = 0; i < d; ++i) center[i] = rng->UniformDouble(-5.0, 5.0);
  const double radius = rng->UniformDouble(0.5, 2.5);
  std::vector<Halfspace> cs;
  cs.reserve(n);
  for (size_t i = 0; i < d; ++i) {
    Vec a(d);
    a[i] = -1.0;
    cs.emplace_back(a, a.Dot(center) + radius);
  }
  Vec diag(d, 1.0 / std::sqrt(static_cast<double>(d)));
  cs.emplace_back(diag, diag.Dot(center) + radius);
  while (cs.size() < n) {
    Vec a = RandomUnit(d, rng);
    cs.emplace_back(a, a.Dot(center) + radius * rng->UniformDouble(1.2, 4.0));
  }
  ChebyshevCenter problem(d);
  return wire::EncodeSolveRequestPayload(job_id, problem,
                                         std::span<const Halfspace>(cs));
}

std::vector<uint8_t> RecordLinfRegression(uint64_t job_id, size_t n, size_t d,
                                          Rng* rng) {
  Vec w(d);
  for (size_t i = 0; i < d; ++i) w[i] = rng->UniformDouble(-2.0, 2.0);
  std::vector<RegressionPoint> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec x(d);
    for (size_t j = 0; j < d; ++j) x[j] = rng->UniformDouble(-3.0, 3.0);
    double y = w.Dot(x) + rng->UniformDouble(-0.5, 0.5);
    pts.push_back(RegressionPoint{std::move(x), y});
  }
  LinfRegression problem(d);
  return wire::EncodeSolveRequestPayload(job_id, problem,
                                         std::span<const RegressionPoint>(pts));
}

std::vector<uint8_t> RecordAnnulus(uint64_t job_id, size_t n, size_t d,
                                   Rng* rng) {
  Vec center(d);
  for (size_t i = 0; i < d; ++i) center[i] = rng->UniformDouble(-4.0, 4.0);
  const double inner = rng->UniformDouble(1.0, 2.0);
  const double outer = inner + rng->UniformDouble(0.5, 2.0);
  std::vector<Vec> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec p = center + RandomUnit(d, rng) * rng->UniformDouble(inner, outer);
    pts.push_back(std::move(p));
  }
  EnclosingAnnulus problem(d);
  return wire::EncodeSolveRequestPayload(job_id, problem,
                                         std::span<const Vec>(pts));
}

std::vector<uint8_t> RecordOneJob(uint64_t job_id, wire::ProblemKind kind,
                                  size_t n, size_t d, Rng* rng) {
  switch (kind) {
    case wire::ProblemKind::kLinearProgram: {
      auto inst = RandomFeasibleLp(n, d, rng);
      LinearProgram problem(inst.objective);
      return wire::EncodeSolveRequestPayload(
          job_id, problem, std::span<const Halfspace>(inst.constraints));
    }
    case wire::ProblemKind::kLinearSvm: {
      auto pts = SeparableSvmData(n, d, /*margin=*/0.15, rng);
      LinearSvm problem(d);
      return wire::EncodeSolveRequestPayload(job_id, problem,
                                             std::span<const SvmPoint>(pts));
    }
    case wire::ProblemKind::kMinEnclosingBall: {
      auto pts = GaussianCloud(n, d, rng);
      MinEnclosingBall problem(d);
      return wire::EncodeSolveRequestPayload(job_id, problem,
                                             std::span<const Vec>(pts));
    }
    case wire::ProblemKind::kChebyshevCenter:
      return RecordChebyshev(job_id, n, d, rng);
    case wire::ProblemKind::kLinfRegression:
      return RecordLinfRegression(job_id, n, d, rng);
    case wire::ProblemKind::kEnclosingAnnulus:
      return RecordAnnulus(job_id, n, d, rng);
  }
  return {};
}

}  // namespace

const char* ProblemKindName(wire::ProblemKind kind) {
  switch (kind) {
    case wire::ProblemKind::kLinearProgram:
      return "linear_program";
    case wire::ProblemKind::kLinearSvm:
      return "linear_svm";
    case wire::ProblemKind::kMinEnclosingBall:
      return "min_enclosing_ball";
    case wire::ProblemKind::kChebyshevCenter:
      return "chebyshev_center";
    case wire::ProblemKind::kLinfRegression:
      return "linf_regression";
    case wire::ProblemKind::kEnclosingAnnulus:
      return "enclosing_annulus";
  }
  return "unknown";
}

RecordedWorkload RecordWorkload(const RecordOptions& options) {
  // Rank order = frequency order under the kind Zipf: the LP head mirrors
  // the paper's motivating workload, the three PR-10 problems fill the
  // middle, and the annulus rides the tail (its basis solves are the
  // widest, so the tail placement keeps the mix's cost profile realistic).
  static constexpr wire::ProblemKind kKindByRank[6] = {
      wire::ProblemKind::kLinearProgram,
      wire::ProblemKind::kMinEnclosingBall,
      wire::ProblemKind::kLinfRegression,
      wire::ProblemKind::kChebyshevCenter,
      wire::ProblemKind::kLinearSvm,
      wire::ProblemKind::kEnclosingAnnulus,
  };
  ZipfRanks tenants(options.num_tenants, options.tenant_zipf_s);
  ZipfRanks kinds(6, options.kind_zipf_s);
  ZipfRanks sizes(options.size_classes, options.size_zipf_s);

  RecordedWorkload out;
  out.seed = options.seed;
  out.jobs.reserve(options.num_jobs);
  Rng mix_rng(options.seed);
  for (size_t i = 0; i < options.num_jobs; ++i) {
    RecordedJob job;
    const size_t tenant = tenants.Sample(&mix_rng);
    job.job_id = runtime::DeriveJobId(options.seed, tenant);
    job.kind = kKindByRank[kinds.Sample(&mix_rng)];
    job.constraints = static_cast<uint32_t>(options.base_constraints
                                            << sizes.Sample(&mix_rng));
    // The annulus basis needs 2d <= d + 3, so every kind draws d in {2, 3}.
    const size_t d = 2 + mix_rng.UniformIndex(2);
    Rng job_rng(options.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    job.request =
        RecordOneJob(job.job_id, job.kind, job.constraints, d, &job_rng);
    out.request_bytes += job.request.size();
    out.kind_jobs[static_cast<size_t>(job.kind) - 1]++;
    out.jobs.push_back(std::move(job));
  }
  return out;
}

ReplayResult Replay(const RecordedWorkload& workload,
                    runtime::ShardedSolverService* service,
                    const ReplayOptions& options) {
  runtime::MetricsRegistry& metrics = options.metrics != nullptr
                                          ? *options.metrics
                                          : runtime::MetricsRegistry::Global();
  runtime::Histogram* job_seconds = metrics.GetHistogram("replay.job_seconds");
  runtime::Histogram* resp_bytes_hist =
      metrics.GetHistogram("replay.response_bytes");
  runtime::Counter* jobs_counter = metrics.GetCounter("replay.jobs");
  runtime::Counter* failed_counter = metrics.GetCounter("replay.jobs_failed");
  runtime::Counter* remote_counter = metrics.GetCounter("replay.remote_jobs");
  runtime::Counter* local_counter = metrics.GetCounter("replay.local_serves");

  const size_t n = workload.jobs.size();
  // Per-job result slots, indexed by recording position: workers write
  // disjoint slots, so the aggregation below never depends on completion
  // order and the transcript is topology-invariant.
  struct Slot {
    uint64_t hash = 0;
    uint32_t bytes = 0;
    bool ok = false;
    bool remote = false;
  };
  std::vector<Slot> slots(n);
  runtime::SolveBackend* backend =
      (options.backend != nullptr && options.backend->WantsSerialized())
          ? options.backend
          : nullptr;

  auto serve_one = [&](size_t i) {
    const RecordedJob& job = workload.jobs[i];
    Stopwatch watch;
    std::vector<uint8_t> response;
    bool remote = false;
    if (backend != nullptr) {
      remote = backend->ExecuteSerialized(
          job.job_id, ProblemKindName(job.kind), job.request, &response);
    }
    if (!remote) {
      auto served = wire::ServeSolveRequestPayload(job.request);
      response = served.ok() ? std::move(*served)
                             : wire::EncodeSolveErrorResponsePayload(
                                   job.job_id, served.status());
    }
    job_seconds->Record(watch.ElapsedSeconds());
    resp_bytes_hist->Record(static_cast<double>(response.size()));
    Slot& slot = slots[i];
    slot.hash = Fnv1aBytes(response, 1469598103934665603ULL);
    slot.bytes = static_cast<uint32_t>(response.size());
    slot.remote = remote;
    auto head = wire::PeekSolveResponseHead(response);
    slot.ok = head.ok() && head->status.ok();
  };

  if (options.batch) {
    std::vector<std::pair<uint64_t, std::function<void()>>> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.emplace_back(workload.jobs[i].job_id, [&serve_one, i] {
        serve_one(i);
      });
    }
    auto futures = service->BatchSubmit("replay", std::move(batch));
    service->Drain();
    for (auto& f : futures) f.get();
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(service->Submit(workload.jobs[i].job_id, "replay",
                                        [&serve_one, i] { serve_one(i); }));
    }
    service->Drain();
    for (auto& f : futures) f.get();
  }

  ReplayResult result;
  result.job_hashes.reserve(n);
  uint64_t transcript = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    const Slot& slot = slots[i];
    result.job_hashes.push_back(slot.hash);
    transcript = Fnv1aU64(slot.hash, transcript);
    result.response_bytes += slot.bytes;
    if (slot.ok) {
      result.jobs_ok++;
    } else {
      result.jobs_failed++;
    }
    if (slot.remote) {
      result.remote_jobs++;
    } else {
      result.local_serves++;
    }
  }
  result.transcript_hash = transcript;

  jobs_counter->Increment(n);
  failed_counter->Increment(result.jobs_failed);
  remote_counter->Increment(result.remote_jobs);
  local_counter->Increment(result.local_serves);
  for (size_t k = 0; k < workload.kind_jobs.size(); ++k) {
    if (workload.kind_jobs[k] == 0) continue;
    metrics
        .GetCounter(std::string("replay.kind.") +
                    ProblemKindName(static_cast<wire::ProblemKind>(k + 1)))
        ->Increment(workload.kind_jobs[k]);
  }
  return result;
}

}  // namespace workload
}  // namespace lplow

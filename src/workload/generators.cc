#include "src/workload/generators.h"

#include <cmath>

#include "src/util/logging.h"

namespace lplow {
namespace workload {

namespace {

// Uniform direction on the unit sphere.
Vec RandomDirection(size_t d, Rng* rng) {
  Vec v(d);
  double norm = 0;
  do {
    for (size_t i = 0; i < d; ++i) v[i] = rng->Normal();
    norm = v.Norm();
  } while (norm < 1e-9);
  return v / norm;
}

}  // namespace

LpInstance RandomFeasibleLp(size_t n, size_t d, Rng* rng, double radius) {
  LpInstance out;
  out.objective = RandomDirection(d, rng);
  Vec center(d);
  for (size_t i = 0; i < d; ++i) center[i] = rng->UniformDouble(-10, 10);
  out.constraints.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    // Tangent halfspace at a random sphere point p: a = direction,
    // b = a . (center + radius * a) — contains the ball of radius `radius`.
    Vec a = RandomDirection(d, rng);
    double r = radius * rng->UniformDouble(1.0, 2.0);
    double b = a.Dot(center) + r;
    out.constraints.emplace_back(std::move(a), b);
  }
  return out;
}

LpInstance RandomInfeasibleLp(size_t n, size_t d, Rng* rng) {
  LPLOW_CHECK_GE(n, 2u);
  LpInstance out = RandomFeasibleLp(n > 2 ? n - 2 : 1, d, rng);
  // Add a contradictory pair: x_0 <= -M and -x_0 <= -M (x_0 >= M).
  Vec plus(d);
  plus[0] = 1.0;
  Vec minus(d);
  minus[0] = -1.0;
  out.constraints.emplace_back(plus, -1000.0);
  out.constraints.emplace_back(minus, -1000.0);
  return out;
}

RegressionData RandomRegressionData(size_t n, size_t d, double noise,
                                    Rng* rng) {
  RegressionData out;
  out.true_w = Vec(d);
  for (size_t i = 0; i < d; ++i) out.true_w[i] = rng->UniformDouble(-5, 5);
  out.true_b = rng->UniformDouble(-10, 10);
  out.noise = noise;
  out.x.reserve(n);
  out.y.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    Vec x(d);
    for (size_t i = 0; i < d; ++i) x[i] = rng->UniformDouble(-10, 10);
    double eps = rng->UniformDouble(-noise, noise);
    out.y.push_back(out.true_w.Dot(x) + out.true_b + eps);
    out.x.push_back(std::move(x));
  }
  return out;
}

LpInstance ChebyshevRegressionLp(const RegressionData& data) {
  const size_t d = data.true_w.dim();
  const size_t dim = d + 2;  // (w, b, t).
  LpInstance out;
  out.objective = Vec(dim);
  out.objective[dim - 1] = 1.0;  // min t.
  out.constraints.reserve(2 * data.x.size() + 1);
  for (size_t j = 0; j < data.x.size(); ++j) {
    // y_j - w.x_j - b <= t   =>   -w.x_j - b - t <= -y_j.
    Vec a1(dim);
    for (size_t i = 0; i < d; ++i) a1[i] = -data.x[j][i];
    a1[d] = -1.0;
    a1[d + 1] = -1.0;
    out.constraints.emplace_back(std::move(a1), -data.y[j]);
    // w.x_j + b - y_j <= t   =>   w.x_j + b - t <= y_j.
    Vec a2(dim);
    for (size_t i = 0; i < d; ++i) a2[i] = data.x[j][i];
    a2[d] = 1.0;
    a2[d + 1] = -1.0;
    out.constraints.emplace_back(std::move(a2), data.y[j]);
  }
  // t >= 0 keeps the LP bounded below even with degenerate data.
  Vec at(dim);
  at[dim - 1] = -1.0;
  out.constraints.emplace_back(std::move(at), 0.0);
  return out;
}

std::vector<SvmPoint> SeparableSvmData(size_t n, size_t d, double margin,
                                       Rng* rng) {
  LPLOW_CHECK_GT(margin, 0.0);
  Vec w = RandomDirection(d, rng);
  std::vector<SvmPoint> out;
  out.reserve(n);
  while (out.size() < n) {
    Vec x(d);
    for (size_t i = 0; i < d; ++i) x[i] = rng->UniformDouble(-10, 10);
    double proj = w.Dot(x);
    if (std::fabs(proj) < margin) {
      // Push the point out of the margin band along w.
      double push = (proj >= 0 ? margin : -margin) - proj +
                    (proj >= 0 ? 0.01 : -0.01);
      x += w * push;
      proj = w.Dot(x);
    }
    SvmPoint p;
    p.x = std::move(x);
    p.label = proj >= 0 ? 1 : -1;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<SvmPoint> NonSeparableSvmData(size_t n, size_t d, Rng* rng) {
  std::vector<SvmPoint> out = SeparableSvmData(n, d, 0.5, rng);
  // Flip a few labels: homogeneous hard-margin SVM becomes infeasible.
  size_t flips = std::max<size_t>(2, n / 100);
  for (size_t f = 0; f < flips && f < out.size(); ++f) {
    out[rng->UniformIndex(out.size())].label *= -1;
  }
  // Guarantee infeasibility regardless of which points were flipped: a
  // directly contradictory pair (same x, both labels).
  if (!out.empty()) {
    SvmPoint p = out[0];
    p.label = -p.label;
    out.push_back(p);
  }
  return out;
}

std::vector<Vec> GaussianCloud(size_t n, size_t d, Rng* rng, double stddev) {
  std::vector<Vec> out;
  out.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    Vec p(d);
    for (size_t i = 0; i < d; ++i) p[i] = rng->Normal(0, stddev);
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<Vec> SphereCloud(size_t n, size_t d, double radius,
                             double surface_fraction, Rng* rng) {
  std::vector<Vec> out;
  out.reserve(n);
  Vec center(d);
  for (size_t i = 0; i < d; ++i) center[i] = rng->UniformDouble(-5, 5);
  for (size_t j = 0; j < n; ++j) {
    Vec dir = RandomDirection(d, rng);
    double r = rng->Bernoulli(surface_fraction)
                   ? radius
                   : radius * rng->UniformDouble(0.0, 0.95);
    out.push_back(center + dir * r);
  }
  return out;
}

std::vector<baselines::Line2d> RandomEnvelopeLines(size_t n, Rng* rng) {
  LPLOW_CHECK_GE(n, 2u);
  std::vector<baselines::Line2d> out;
  out.reserve(n);
  // Tangents to the parabola y = x^2/2 at random x: slope x0, intercept
  // -x0^2/2; their upper envelope has a clean bounded minimum.
  for (size_t j = 0; j < n; ++j) {
    double x0 = rng->UniformDouble(-50, 50);
    out.push_back({x0, -x0 * x0 / 2.0});
  }
  // Guarantee both slope signs.
  out[0] = {-51.0, -51.0 * 51.0 / 2.0};
  out[1] = {51.0, -51.0 * 51.0 / 2.0};
  return out;
}

}  // namespace workload
}  // namespace lplow

#include "src/lowerbound/aug_index.h"

#include "src/lowerbound/curves.h"
#include "src/util/logging.h"

namespace lplow {
namespace lb {

AugIndexInstance RandomAugIndex(size_t m, Rng* rng) {
  LPLOW_CHECK_GE(m, 1u);
  AugIndexInstance out;
  out.bits.resize(m);
  for (auto& bit : out.bits) bit = rng->Bernoulli(0.5) ? 1 : 0;
  out.index = 1 + rng->UniformIndex(m);
  return out;
}

AugIndexReduction BuildTciFromAugIndex(const AugIndexInstance& instance,
                                       const Rational& bob_slope_magnitude) {
  LPLOW_CHECK(bob_slope_magnitude > Rational(0));
  const size_t m = instance.bits.size();
  const size_t istar = instance.index;
  LPLOW_CHECK_GE(istar, 1u);
  LPLOW_CHECK_LE(istar, m);

  // Alice: StepCurve over the m input bits plus one padding zero, giving
  // n = m + 2 points so the answer i*+1 <= n-1 stays interior.
  std::vector<uint8_t> padded = instance.bits;
  padded.push_back(0);
  AugIndexReduction out;
  out.index = istar;
  out.tci.a = StepCurve(padded, Rational(0));
  const size_t n = out.tci.a.size();
  LPLOW_CHECK_EQ(n, m + 2);

  // Bob: a line of slope -K anchored so b_{i*+1} = a_{i*} + i* + 1. Bob can
  // compute a_{i*} from his prefix x_1..x_{i*-1} alone (corrected indexing).
  Rational a_istar = out.tci.a[istar - 1];
  RationalPoint p2{Rational(static_cast<int64_t>(istar + 1)),
                   a_istar + Rational(static_cast<int64_t>(istar + 1))};
  RationalPoint p1{p2.x + Rational(1), p2.y - bob_slope_magnitude};
  out.tci.b = LineSegment(p2, p1, 1, static_cast<int64_t>(n));
  return out;
}

uint8_t DecodeAugIndexBit(const AugIndexReduction& reduction,
                          size_t tci_answer) {
  if (tci_answer == reduction.index) return 1;
  LPLOW_CHECK_EQ(tci_answer, reduction.index + 1);
  return 0;
}

}  // namespace lb
}  // namespace lplow

// The recursive hard distributions D_r of Section 5.3.3, in the validated
// gauge-corrected form described in DESIGN.md §4:
//
// * An instance of D_r consists of N = base_n sub-instances of D_{r-1}
//   (n_r = N^r points total), one of which — block z*, chosen uniformly —
//   carries the answer (Propositions 5.8/5.10).
// * The paper's slope-shift/origin-shift operators are realized as per-block
//   affine gauges y += alpha_i (x - x_start) + beta_i applied to BOTH curves
//   of a block, which provably preserves the block's TCI answer.
// * For even r the active player is Bob: B is the concatenation of all
//   blocks' gauged B-curves (so B is independent of z*, Observation 5.12),
//   with gauges chosen so B stays strictly decreasing and convex (each
//   alpha_i depends only on neighbouring blocks' slope ranges, never on z*,
//   preserving Observation 5.11's structure), and A is block z*'s gauged
//   A-curve extended linearly. For odd r the roles swap (A stitched, B
//   extended).
// * The base case is the (corrected) Lemma 5.6 Aug-Index reduction with
//   Bob-line slope -K, where K = (8(N+2))^{2r+6} dominates every gauge any
//   enclosing level can apply, keeping B decreasing throughout.

#ifndef LPLOW_LOWERBOUND_HARD_INSTANCE_H_
#define LPLOW_LOWERBOUND_HARD_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "src/lowerbound/tci.h"
#include "src/util/rng.h"

namespace lplow {
namespace lb {

struct HardInstanceOptions {
  /// N: sub-instances per level and base-case point count. Must be >= 3.
  size_t base_n = 8;
  /// r: recursion depth; the instance has base_n^r points.
  int rounds = 2;
  uint64_t seed = 0xD15717ULL;
};

struct HardInstance {
  TciInstance tci;
  /// The embedded answer index (1-based); equals TciAnswer(tci).
  size_t expected_answer = 0;
  /// z* chosen at each level, outermost first (empty for r = 1).
  std::vector<size_t> zstar_chain;
  size_t base_n = 0;
  int rounds = 0;
};

/// Samples an instance from D_r.
HardInstance BuildHardInstance(const HardInstanceOptions& options, Rng* rng);

}  // namespace lb
}  // namespace lplow

#endif  // LPLOW_LOWERBOUND_HARD_INSTANCE_H_

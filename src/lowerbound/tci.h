// The Two-Curve Intersection problem (Section 5.2): Alice holds the
// monotonically increasing convex sequence A, Bob the monotonically
// decreasing convex sequence B, and the answer is the smallest index i with
// a_i <= b_i and a_{i+1} > b_{i+1}.
//
// Convexity convention (DESIGN.md §4): both difference sequences are
// non-decreasing. The paper prints B's condition with the opposite sign
// (making B concave), but the Figure 1b reduction to linear programming
// requires every chord extension to lie BELOW its curve — true exactly when
// the curve is convex — so we adopt convex B; the Lemma 5.6 base case (a
// line) satisfies both conventions unchanged.

#ifndef LPLOW_LOWERBOUND_TCI_H_
#define LPLOW_LOWERBOUND_TCI_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/numeric/rational.h"
#include "src/util/status.h"

namespace lplow {
namespace lb {

struct TciInstance {
  std::vector<Rational> a;  // Alice, indices 1..n stored at 0..n-1.
  std::vector<Rational> b;  // Bob.

  size_t n() const { return a.size(); }
};

/// Checks the four promise conditions; on failure the status message pins
/// down the first offending index.
///   1. |A| == |B| >= 2
///   2. A strictly increasing, B strictly decreasing
///   3. A and B convex (differences non-decreasing)
///   4. a_1 <= b_1 and a_n > b_n (a crossing exists)
Status ValidateTci(const TciInstance& instance);

/// The answer index (1-based): smallest i with a_i <= b_i and
/// a_{i+1} > b_{i+1}. Requires a valid instance; returns nullopt when no
/// such index exists (promise violated).
std::optional<size_t> TciAnswer(const TciInstance& instance);

/// Applies the affine gauge y += slope * (x - x0) + offset to both curves
/// (x is the 1-based index). Adding a common affine function preserves
/// a_i - b_i pointwise and hence the TCI answer — the invariance behind the
/// paper's slope-shift and origin-shift operators.
void ApplyAffineGauge(TciInstance* instance, const Rational& slope,
                      const Rational& x0, const Rational& offset);

/// Serialized bit size of the instance (sum of coordinate bit lengths),
/// the communication measure of Theorem 7.
size_t TciBitComplexity(const TciInstance& instance);

}  // namespace lb
}  // namespace lplow

#endif  // LPLOW_LOWERBOUND_TCI_H_

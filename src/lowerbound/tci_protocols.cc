#include "src/lowerbound/tci_protocols.h"

#include <algorithm>
#include <vector>

#include "src/util/logging.h"

namespace lplow {
namespace lb {

size_t RationalWireBits(const Rational& value) {
  return value.BitLength() + 16;
}

Result<size_t> FullSendProtocol(const TciInstance& instance,
                                ProtocolStats* stats) {
  ProtocolStats local;
  ProtocolStats& st = stats ? *stats : local;
  st = ProtocolStats{};
  LPLOW_RETURN_IF_ERROR(ValidateTci(instance));

  // Alice -> Bob: the entire curve A.
  ++st.messages;
  st.rounds = 1;
  for (const auto& v : instance.a) st.bits += RationalWireBits(v);

  // Bob scans both curves for the crossing.
  auto ans = TciAnswer(instance);
  if (!ans) return Status::Internal("no crossing (promise violated)");
  return *ans;
}

Result<size_t> BlockDescentProtocol(const TciInstance& instance,
                                    const BlockDescentOptions& options,
                                    ProtocolStats* stats) {
  ProtocolStats local;
  ProtocolStats& st = stats ? *stats : local;
  st = ProtocolStats{};
  LPLOW_CHECK_GE(options.grid, 2u);
  LPLOW_RETURN_IF_ERROR(ValidateTci(instance));

  const size_t n = instance.n();
  // Invariant: a_lo <= b_lo and a_hi > b_hi, so the answer is in [lo, hi).
  size_t lo = 1, hi = n;

  for (size_t round = 0; round < options.max_rounds; ++round) {
    if (hi - lo == 1) return lo;  // Cell of width 1: lo is the answer.

    // Grid of at most grid+1 indices covering [lo, hi].
    std::vector<size_t> grid_idx;
    const size_t cells = std::min(options.grid, hi - lo);
    grid_idx.reserve(cells + 1);
    for (size_t j = 0; j <= cells; ++j) {
      grid_idx.push_back(lo + (hi - lo) * j / cells);
    }

    // Alice -> Bob: her values at the grid indices.
    ++st.messages;
    ++st.rounds;
    for (size_t idx : grid_idx) {
      st.bits += RationalWireBits(instance.a[idx - 1]);
    }

    // Bob locates the bracketing cell using only his own curve, and replies
    // with the new interval (two indices).
    size_t new_lo = lo, new_hi = hi;
    for (size_t j = 0; j + 1 < grid_idx.size(); ++j) {
      size_t l = grid_idx[j], h = grid_idx[j + 1];
      bool left_ok = instance.a[l - 1] <= instance.b[l - 1];
      bool right_cross = instance.a[h - 1] > instance.b[h - 1];
      if (left_ok && right_cross) {
        new_lo = l;
        new_hi = h;
        break;
      }
    }
    LPLOW_CHECK(new_hi - new_lo < hi - lo || hi - lo <= 1);
    ++st.messages;
    ++st.rounds;
    st.bits += 2 * 64;  // Two indices.
    lo = new_lo;
    hi = new_hi;
  }
  return Status::Internal("BlockDescent round cap reached");
}

}  // namespace lb
}  // namespace lplow

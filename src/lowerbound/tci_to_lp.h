// The TCI -> 2-d linear programming reduction of Section 5.2 / Figure 1b:
// extend every segment of both curves to a line whose upper halfplane is
// feasible, minimize y over the intersection, and floor the optimal x to
// recover the crossing index. Exact over rationals.

#ifndef LPLOW_LOWERBOUND_TCI_TO_LP_H_
#define LPLOW_LOWERBOUND_TCI_TO_LP_H_

#include <vector>

#include "src/lowerbound/tci.h"
#include "src/solvers/rational_lp2d.h"
#include "src/util/status.h"

namespace lplow {
namespace lb {

/// The 2n - 2 constraint lines (one per curve segment): y >= slope x + t.
std::vector<RationalLine> TciToLines(const TciInstance& instance);

struct TciLpResult {
  Rational x;      // LP optimum (the fractional crossing point).
  Rational y;
  size_t index;    // floor(x): the TCI answer (Corollary 8's decoding).
};

/// Solves the reduction LP exactly. Requires a valid instance (the promise
/// guarantees a bounded optimum).
Result<TciLpResult> SolveTciViaLp(const TciInstance& instance,
                                  uint64_t seed = 0x7C12D01ULL);

}  // namespace lb
}  // namespace lplow

#endif  // LPLOW_LOWERBOUND_TCI_TO_LP_H_

// Geometric curve primitives of Section 5.2, exact over rationals.
//
// StepCurve follows the corrected indexing (DESIGN.md §4.1): bit x_j drives
// increment j+1, i.e. z_1 = alpha + 1 and z_i = z_{i-1} + alpha + i + x_{i-1}
// for i >= 2 — so a prefix x_1..x_{j-1} determines z_1..z_j, which the
// Lemma 5.6 reduction requires (Bob computes a_{i*} from his prefix).

#ifndef LPLOW_LOWERBOUND_CURVES_H_
#define LPLOW_LOWERBOUND_CURVES_H_

#include <cstdint>
#include <vector>

#include "src/numeric/rational.h"

namespace lplow {
namespace lb {

/// A point in Q^2.
struct RationalPoint {
  Rational x;
  Rational y;
};

/// The sequence <z_1, ..., z_m> of the (corrected) step curve over bits
/// x_1..x_{m-1} with slope offset alpha: z_1 = alpha + 1,
/// z_i = z_{i-1} + alpha + i + x_{i-1}.
std::vector<Rational> StepCurve(const std::vector<uint8_t>& bits,
                                const Rational& alpha);

/// The sequence <z_a, ..., z_b> of points on the line through p1 and p2
/// (p1.x != p2.x) evaluated at integer abscissas a..b (paper Fact 5.5).
std::vector<Rational> LineSegment(const RationalPoint& p1,
                                  const RationalPoint& p2, int64_t a,
                                  int64_t b);

/// Consecutive differences z_{i+1} - z_i of a sequence (its "slopes").
std::vector<Rational> Slopes(const std::vector<Rational>& z);

/// Minimum and maximum slope of a sequence with >= 2 entries.
struct SlopeRange {
  Rational min;
  Rational max;
};
SlopeRange ComputeSlopeRange(const std::vector<Rational>& z);

}  // namespace lb
}  // namespace lplow

#endif  // LPLOW_LOWERBOUND_CURVES_H_

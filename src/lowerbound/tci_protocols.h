// Two-party communication protocols for TCI, with exact bit accounting —
// the upper bounds that bracket Theorem 7's Omega(n^{1/r} / r^2) lower
// bound in experiment E10:
//
// * FullSendProtocol    — Alice ships her whole curve; 1 message, O(n * bit)
//                         communication (the trivial upper bound).
// * BlockDescentProtocol — r-round grid descent: each round the sender
//                         transmits the curve values at g+1 grid indices of
//                         the current candidate interval; monotonicity of
//                         A - B localizes the crossing to one grid cell,
//                         shrinking the interval by factor g per round.
//                         With g = n^{1/r}: r rounds, O(r n^{1/r} bit)
//                         communication — matching the lower bound's
//                         n^{1/r} dependence.
//
// Message cost is counted as the exact sum of coordinate bit lengths plus a
// small per-value header (the bit-complexity measure of Section 5).

#ifndef LPLOW_LOWERBOUND_TCI_PROTOCOLS_H_
#define LPLOW_LOWERBOUND_TCI_PROTOCOLS_H_

#include <cstdint>

#include "src/lowerbound/tci.h"
#include "src/util/status.h"

namespace lplow {
namespace lb {

struct ProtocolStats {
  size_t messages = 0;
  size_t rounds = 0;  // Alternations (a message in each direction = 2).
  size_t bits = 0;
};

/// Cost model: one rational costs num bits + den bits + 16 header bits.
size_t RationalWireBits(const Rational& value);

/// Trivial protocol: Alice -> Bob, Bob answers.
Result<size_t> FullSendProtocol(const TciInstance& instance,
                                ProtocolStats* stats);

struct BlockDescentOptions {
  /// Grid cells per round; n^{1/r} gives r rounds.
  size_t grid = 8;
  size_t max_rounds = 200;
};

/// Grid-descent protocol (both players simulated honestly: each only reads
/// its own curve; everything else crosses the accounted channel).
Result<size_t> BlockDescentProtocol(const TciInstance& instance,
                                    const BlockDescentOptions& options,
                                    ProtocolStats* stats);

}  // namespace lb
}  // namespace lplow

#endif  // LPLOW_LOWERBOUND_TCI_PROTOCOLS_H_

#include "src/lowerbound/tci_to_lp.h"

#include "src/util/logging.h"

namespace lplow {
namespace lb {

std::vector<RationalLine> TciToLines(const TciInstance& instance) {
  std::vector<RationalLine> lines;
  const size_t n = instance.n();
  LPLOW_CHECK_GE(n, 2u);
  lines.reserve(2 * n - 2);
  auto add_segments = [&](const std::vector<Rational>& z) {
    for (size_t i = 0; i + 1 < z.size(); ++i) {
      RationalLine l;
      l.slope = z[i + 1] - z[i];
      // Through (i+1, z_i) in 1-based x: t = z_i - slope * (i+1).
      l.intercept = z[i] - l.slope * Rational(static_cast<int64_t>(i + 1));
      lines.push_back(std::move(l));
    }
  };
  add_segments(instance.a);
  add_segments(instance.b);
  return lines;
}

Result<TciLpResult> SolveTciViaLp(const TciInstance& instance, uint64_t seed) {
  std::vector<RationalLine> lines = TciToLines(instance);
  RationalLp2dSolver solver(seed);
  RationalLp2dSolution sol = solver.Solve(lines);
  if (!sol.bounded) {
    return Status::Unbounded("TCI reduction LP unbounded (invalid instance?)");
  }
  TciLpResult out;
  out.x = sol.x;
  out.y = sol.y;
  BigInt fl = sol.x.Floor();
  if (fl < BigInt(1)) return Status::Internal("LP optimum left of domain");
  out.index = static_cast<size_t>(fl.ToInt64());
  return out;
}

}  // namespace lb
}  // namespace lplow

// Augmented Indexing and the Lemma 5.6 reduction to TCI (corrected per
// DESIGN.md §4: bit x_j drives step-curve increment j+1, and Bob's anchor is
// p2 = (i*+1, a_{i*} + i* + 1), which makes the answer
//   i*      when x_{i*} = 1,
//   i* + 1  when x_{i*} = 0,
// exactly as the published proof argues).
//
// In Aug-Index_n, Alice holds x in {0,1}^n, Bob holds i* plus the prefix
// x_1..x_{i*-1}, and Bob must output x_{i*}. Its 1-round communication
// complexity is Omega(n), which transfers to TCI through this reduction.

#ifndef LPLOW_LOWERBOUND_AUG_INDEX_H_
#define LPLOW_LOWERBOUND_AUG_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/lowerbound/tci.h"
#include "src/util/rng.h"

namespace lplow {
namespace lb {

/// An Aug-Index instance over m bits.
struct AugIndexInstance {
  std::vector<uint8_t> bits;  // x_1..x_m (Alice's input).
  size_t index = 1;           // i* in [1, m] (Bob's input, 1-based).

  uint8_t TargetBit() const { return bits[index - 1]; }
};

/// Uniformly random instance (bits i.i.d. fair coins, index uniform).
AugIndexInstance RandomAugIndex(size_t m, Rng* rng);

struct AugIndexReduction {
  TciInstance tci;
  /// Decoding rule: answer == i* means bit 1; answer == i*+1 means bit 0.
  size_t index;
};

/// Builds the TCI_n instance of (corrected) Lemma 5.6 from an Aug-Index
/// instance over n-2 bits (so indices satisfy i* <= n-2 and the answer
/// i*+1 <= n-1 stays interior). `bob_slope_magnitude` K > 0 sets Bob's line
/// slope to -K; any K works for the reduction (the recursion of D_r uses
/// large K so Bob's curve dominates accumulated gauges).
AugIndexReduction BuildTciFromAugIndex(const AugIndexInstance& instance,
                                       const Rational& bob_slope_magnitude);

/// Decodes Bob's output bit from a TCI answer (inverse of the reduction).
uint8_t DecodeAugIndexBit(const AugIndexReduction& reduction,
                          size_t tci_answer);

}  // namespace lb
}  // namespace lplow

#endif  // LPLOW_LOWERBOUND_AUG_INDEX_H_

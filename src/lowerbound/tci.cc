#include "src/lowerbound/tci.h"

#include <sstream>

#include "src/util/logging.h"

namespace lplow {
namespace lb {

namespace {
std::string IndexMessage(const char* what, size_t i) {
  std::ostringstream oss;
  oss << what << " at index " << i;
  return oss.str();
}
}  // namespace

Status ValidateTci(const TciInstance& instance) {
  const auto& a = instance.a;
  const auto& b = instance.b;
  if (a.size() != b.size()) {
    return Status::InvalidArgument("curve length mismatch");
  }
  if (a.size() < 2) return Status::InvalidArgument("need at least 2 points");
  const size_t n = a.size();
  for (size_t i = 1; i < n; ++i) {
    if (!(a[i] > a[i - 1])) {
      return Status::InvalidArgument(IndexMessage("A not increasing", i + 1));
    }
    if (!(b[i] < b[i - 1])) {
      return Status::InvalidArgument(IndexMessage("B not decreasing", i + 1));
    }
  }
  for (size_t i = 2; i < n; ++i) {
    if ((a[i] - a[i - 1]) < (a[i - 1] - a[i - 2])) {
      return Status::InvalidArgument(IndexMessage("A not convex", i + 1));
    }
    if ((b[i] - b[i - 1]) < (b[i - 1] - b[i - 2])) {
      return Status::InvalidArgument(IndexMessage("B not convex", i + 1));
    }
  }
  if (!(a[0] <= b[0])) {
    return Status::InvalidArgument("a_1 > b_1: crossing before the domain");
  }
  if (!(a[n - 1] > b[n - 1])) {
    return Status::InvalidArgument("a_n <= b_n: no crossing in the domain");
  }
  return Status::OK();
}

std::optional<size_t> TciAnswer(const TciInstance& instance) {
  const auto& a = instance.a;
  const auto& b = instance.b;
  for (size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] <= b[i] && a[i + 1] > b[i + 1]) return i + 1;  // 1-based.
  }
  return std::nullopt;
}

void ApplyAffineGauge(TciInstance* instance, const Rational& slope,
                      const Rational& x0, const Rational& offset) {
  for (size_t i = 0; i < instance->a.size(); ++i) {
    Rational shift = slope * (Rational(static_cast<int64_t>(i + 1)) - x0) +
                     offset;
    instance->a[i] += shift;
    instance->b[i] += shift;
  }
}

size_t TciBitComplexity(const TciInstance& instance) {
  size_t bits = 0;
  for (const auto& v : instance.a) bits += v.BitLength();
  for (const auto& v : instance.b) bits += v.BitLength();
  return bits;
}

}  // namespace lb
}  // namespace lplow

#include "src/lowerbound/hard_instance.h"

#include <utility>

#include "src/lowerbound/aug_index.h"
#include "src/lowerbound/curves.h"
#include "src/util/logging.h"

namespace lplow {
namespace lb {

namespace {

struct BuiltLevel {
  TciInstance tci;
  size_t answer = 0;  // 1-based, strictly below the point count.
};

// K = (8 (N+2))^{2r+6}: dominates every gauge magnitude accumulated above
// the base level (validated by tests for the parameter ranges we use).
Rational BobSlopeMagnitude(size_t base_n, int rounds) {
  BigInt base(8 * static_cast<int64_t>(base_n + 2));
  BigInt k(1);
  int exponent = 2 * rounds + 6;
  for (int i = 0; i < exponent; ++i) k = k * base;
  return Rational(std::move(k));
}

// Applies gauge y += alpha * (local_x - 1) + beta to both curves.
void Gauge(TciInstance* t, const Rational& alpha, const Rational& beta) {
  for (size_t i = 0; i < t->a.size(); ++i) {
    Rational shift = alpha * Rational(static_cast<int64_t>(i)) + beta;
    t->a[i] += shift;
    t->b[i] += shift;
  }
}

BuiltLevel BuildRecursive(size_t n_base, int level, const Rational& bob_k,
                          Rng* rng, std::vector<size_t>* zstar_chain) {
  if (level == 1) {
    // Base case: the (corrected) Lemma 5.6 reduction over N-2 random bits.
    LPLOW_CHECK_GE(n_base, 3u);
    AugIndexInstance aug = RandomAugIndex(n_base - 2, rng);
    AugIndexReduction red = BuildTciFromAugIndex(aug, bob_k);
    BuiltLevel out;
    out.tci = std::move(red.tci);
    auto ans = TciAnswer(out.tci);
    LPLOW_CHECK(ans.has_value());
    out.answer = *ans;
    LPLOW_CHECK_LT(out.answer, out.tci.n());
    return out;
  }

  const size_t blocks = n_base;
  std::vector<BuiltLevel> sub;
  sub.reserve(blocks);
  for (size_t i = 0; i < blocks; ++i) {
    // Children consume the RNG in block order; z* is drawn afterwards so
    // the inactive player's assembly stays independent of it.
    sub.push_back(BuildRecursive(n_base, level - 1, bob_k, rng, nullptr));
  }
  const size_t n_sub = sub[0].tci.n();
  const size_t zstar = 1 + rng->UniformIndex(blocks);  // 1-based block.
  if (zstar_chain) zstar_chain->push_back(zstar);

  const bool even = (level % 2) == 0;
  const Rational one(1);

  // --- gauges: alpha_i so the active player's slope ranges are strictly
  // ordered across blocks (right-to-left for Bob/even, left-to-right for
  // Alice/odd).
  std::vector<Rational> alpha(blocks, Rational(0));
  if (even) {
    // Convex B: slope ranges ascend left-to-right (still all negative,
    // because the base slope magnitude K dominates every gauge).
    std::vector<SlopeRange> br;
    br.reserve(blocks);
    for (const auto& s : sub) br.push_back(ComputeSlopeRange(s.tci.b));
    for (size_t i = 1; i < blocks; ++i) {
      // min gauged slope of block i >= max gauged slope of block i-1 + 1.
      Rational needed = alpha[i - 1] + br[i - 1].max - br[i].min + one;
      alpha[i] = needed > Rational(0) ? needed : Rational(0);
    }
  } else {
    std::vector<SlopeRange> ar;
    ar.reserve(blocks);
    for (const auto& s : sub) ar.push_back(ComputeSlopeRange(s.tci.a));
    for (size_t i = 1; i < blocks; ++i) {
      // min gauged slope of block i >= max gauged slope of block i-1 + 1.
      Rational needed = alpha[i - 1] + ar[i - 1].max - ar[i].min + one;
      alpha[i] = needed > Rational(0) ? needed : Rational(0);
    }
  }

  // --- translations beta_i: stitch the active player's curve continuously;
  // the boundary step copies the right/next block's first slope (keeps
  // convexity/concavity at the seam).
  std::vector<Rational> beta(blocks, Rational(0));
  const Rational span(static_cast<int64_t>(n_sub - 1));
  if (even) {
    // Chain left-to-right (boundary step copies the next block's first
    // slope), then shift everything so block N's Bob curve ends at y = 0
    // (the paper's p_B = (n_r, 0) anchor).
    beta[0] = Rational(0);
    for (size_t i = 1; i < blocks; ++i) {
      Rational prev_last = sub[i - 1].tci.b.back() + alpha[i - 1] * span +
                           beta[i - 1];
      Rational first_slope = (sub[i].tci.b[1] - sub[i].tci.b[0]) + alpha[i];
      Rational target_first = prev_last + first_slope;
      beta[i] = target_first - sub[i].tci.b.front();
    }
    Rational global_last = sub[blocks - 1].tci.b.back() +
                           alpha[blocks - 1] * span + beta[blocks - 1];
    for (size_t i = 0; i < blocks; ++i) beta[i] -= global_last;
  } else {
    // Anchor: block 1's Alice curve starts at y = 1.
    beta[0] = one - sub[0].tci.a.front();
    for (size_t i = 1; i < blocks; ++i) {
      Rational prev_last = sub[i - 1].tci.a.back() + alpha[i - 1] * span +
                           beta[i - 1];
      Rational first_slope = (sub[i].tci.a[1] - sub[i].tci.a[0]) + alpha[i];
      Rational target_first = prev_last + first_slope;
      beta[i] = target_first - sub[i].tci.a.front();
    }
  }

  for (size_t i = 0; i < blocks; ++i) Gauge(&sub[i].tci, alpha[i], beta[i]);

  // --- assembly.
  const size_t n_total = blocks * n_sub;
  BuiltLevel out;
  out.tci.a.reserve(n_total);
  out.tci.b.reserve(n_total);

  const TciInstance& special = sub[zstar - 1].tci;
  const size_t start = (zstar - 1) * n_sub;  // 0-based global offset.
  if (even) {
    // B: concatenation of every block (independent of z*).
    for (size_t i = 0; i < blocks; ++i) {
      for (const auto& v : sub[i].tci.b) out.tci.b.push_back(v);
    }
    // A: block z* extended linearly on both sides.
    Rational first_slope = special.a[1] - special.a[0];
    Rational last_slope = special.a[n_sub - 1] - special.a[n_sub - 2];
    out.tci.a.assign(n_total, Rational(0));
    for (size_t i = 0; i < n_sub; ++i) out.tci.a[start + i] = special.a[i];
    for (size_t g = start; g-- > 0;) {
      out.tci.a[g] = out.tci.a[g + 1] - first_slope;
    }
    for (size_t g = start + n_sub; g < n_total; ++g) {
      out.tci.a[g] = out.tci.a[g - 1] + last_slope;
    }
  } else {
    // A: concatenation of every block (independent of z*).
    for (size_t i = 0; i < blocks; ++i) {
      for (const auto& v : sub[i].tci.a) out.tci.a.push_back(v);
    }
    // B: block z* extended linearly on both sides.
    Rational first_slope = special.b[1] - special.b[0];
    Rational last_slope = special.b[n_sub - 1] - special.b[n_sub - 2];
    out.tci.b.assign(n_total, Rational(0));
    for (size_t i = 0; i < n_sub; ++i) out.tci.b[start + i] = special.b[i];
    for (size_t g = start; g-- > 0;) {
      out.tci.b[g] = out.tci.b[g + 1] - first_slope;
    }
    for (size_t g = start + n_sub; g < n_total; ++g) {
      out.tci.b[g] = out.tci.b[g - 1] + last_slope;
    }
  }

  out.answer = start + sub[zstar - 1].answer;
  LPLOW_CHECK_LT(out.answer, n_total);
  return out;
}

}  // namespace

HardInstance BuildHardInstance(const HardInstanceOptions& options, Rng* rng) {
  LPLOW_CHECK_GE(options.base_n, 3u);
  LPLOW_CHECK_GE(options.rounds, 1);
  Rational bob_k = BobSlopeMagnitude(options.base_n, options.rounds);

  HardInstance out;
  out.base_n = options.base_n;
  out.rounds = options.rounds;
  // The chain is collected only at the top level of each recursion step, so
  // build levels outermost-first by peeling manually.
  std::vector<size_t> chain;
  BuiltLevel built =
      BuildRecursive(options.base_n, options.rounds, bob_k, rng, &chain);
  out.tci = std::move(built.tci);
  out.expected_answer = built.answer;
  out.zstar_chain = std::move(chain);
  return out;
}

}  // namespace lb
}  // namespace lplow

#include "src/lowerbound/curves.h"

#include "src/util/logging.h"

namespace lplow {
namespace lb {

std::vector<Rational> StepCurve(const std::vector<uint8_t>& bits,
                                const Rational& alpha) {
  const size_t m = bits.size() + 1;  // Points 1..m; bit j drives step j+1.
  std::vector<Rational> z;
  z.reserve(m);
  z.push_back(alpha + Rational(1));  // z_1.
  for (size_t i = 2; i <= m; ++i) {
    Rational step = alpha + Rational(static_cast<int64_t>(i)) +
                    Rational(static_cast<int64_t>(bits[i - 2]));
    z.push_back(z.back() + step);
  }
  return z;
}

std::vector<Rational> LineSegment(const RationalPoint& p1,
                                  const RationalPoint& p2, int64_t a,
                                  int64_t b) {
  LPLOW_CHECK(p1.x != p2.x);
  LPLOW_CHECK_LE(a, b);
  Rational slope = (p2.y - p1.y) / (p2.x - p1.x);
  std::vector<Rational> z;
  z.reserve(static_cast<size_t>(b - a + 1));
  for (int64_t i = a; i <= b; ++i) {
    z.push_back(slope * (Rational(i) - p1.x) + p1.y);
  }
  return z;
}

std::vector<Rational> Slopes(const std::vector<Rational>& z) {
  std::vector<Rational> out;
  if (z.size() < 2) return out;
  out.reserve(z.size() - 1);
  for (size_t i = 1; i < z.size(); ++i) out.push_back(z[i] - z[i - 1]);
  return out;
}

SlopeRange ComputeSlopeRange(const std::vector<Rational>& z) {
  LPLOW_CHECK_GE(z.size(), 2u);
  SlopeRange range{z[1] - z[0], z[1] - z[0]};
  for (size_t i = 2; i < z.size(); ++i) {
    Rational s = z[i] - z[i - 1];
    if (s < range.min) range.min = s;
    if (s > range.max) range.max = s;
  }
  return range;
}

}  // namespace lb
}  // namespace lplow

// Exact 2-d linear programming over rationals, specialized to the form the
// TCI -> LP reduction produces (Section 5.2 / Figure 1b):
//
//     minimize  y   subject to   y >= s_i * x + t_i   for every line i.
//
// Seidel's randomized incremental algorithm over Rational coordinates:
// expected O(n) line-processing with an exact 1-d subproblem per violation.
// Always feasible (the region above a finite set of lines is nonempty);
// unbounded exactly when all slopes have the same strict sign.

#ifndef LPLOW_SOLVERS_RATIONAL_LP2D_H_
#define LPLOW_SOLVERS_RATIONAL_LP2D_H_

#include <vector>

#include "src/numeric/rational.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {

/// A lower-bounding line y >= slope * x + intercept.
struct RationalLine {
  Rational slope;
  Rational intercept;

  Rational ValueAt(const Rational& x) const {
    return slope * x + intercept;
  }
};

struct RationalLp2dSolution {
  bool bounded = false;
  Rational x;  // Valid iff bounded.
  Rational y;
};

class RationalLp2dSolver {
 public:
  explicit RationalLp2dSolver(uint64_t seed = 0x2D2D2D2DULL) : seed_(seed) {}

  /// Exact minimum of y over the epigraph intersection. `lines` must be
  /// non-empty. Ties in x (flat segments at the minimum) resolve to the
  /// smallest x attaining the minimum.
  RationalLp2dSolution Solve(const std::vector<RationalLine>& lines) const;

 private:
  uint64_t seed_;
};

}  // namespace lplow

#endif  // LPLOW_SOLVERS_RATIONAL_LP2D_H_

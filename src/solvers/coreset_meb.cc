#include "src/solvers/coreset_meb.h"

#include <cmath>

#include "src/util/logging.h"

namespace lplow {

CoresetMebResult CoresetMebSolver::Solve(
    const std::vector<Vec>& points) const {
  CoresetMebResult out;
  if (points.empty()) return out;
  const double eps = config_.eps;
  LPLOW_CHECK_GT(eps, 0.0);
  const size_t cap =
      config_.max_iterations
          ? config_.max_iterations
          : static_cast<size_t>(std::ceil(2.0 / (eps * eps))) + 2;

  auto farthest = [&points](const Vec& c) {
    size_t best = 0;
    double best_d2 = -1;
    for (size_t i = 0; i < points.size(); ++i) {
      double d2 = (points[i] - c).NormSquared();
      if (d2 > best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    return best;
  };

  // Badoiu-Clarkson: start at an arbitrary point, repeatedly step 1/(i+1)
  // of the way toward the current farthest point.
  Vec center = points[0];
  out.coreset.push_back(points[0]);
  for (size_t i = 1; i <= cap; ++i) {
    size_t far_idx = farthest(center);
    const Vec& q = points[far_idx];
    out.coreset.push_back(q);
    ++out.iterations;
    center += (q - center) * (1.0 / static_cast<double>(i + 1));
  }
  // Final radius: exact max distance from the final center, guaranteed
  // within (1+eps) of the optimal radius.
  double radius = 0;
  for (const Vec& p : points) {
    radius = std::max(radius, (p - center).Norm());
  }
  out.ball.center = std::move(center);
  out.ball.radius = radius;
  return out;
}

}  // namespace lplow

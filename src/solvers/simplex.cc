#include "src/solvers/simplex.h"

#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace lplow {

namespace {

// Dense tableau: rows are constraints, last row is the (reduced) objective.
// Columns: structural variables, then one artificial per row, then RHS.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                      t_(rows * cols, 0.0) {}

  double& At(size_t r, size_t c) { return t_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return t_[r * cols_ + c]; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  void Pivot(size_t pr, size_t pc) {
    double piv = At(pr, pc);
    for (size_t c = 0; c < cols_; ++c) At(pr, c) /= piv;
    for (size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      double f = At(r, pc);
      if (f == 0.0) continue;
      for (size_t c = 0; c < cols_; ++c) At(r, c) -= f * At(pr, c);
    }
  }

 private:
  size_t rows_, cols_;
  std::vector<double> t_;
};

enum class PhaseResult { kOptimal, kUnbounded };

// Runs simplex iterations with Bland's rule on the objective row `obj_row`,
// restricted to columns [0, num_cols). `basis[r]` tracks the basic column of
// each constraint row.
PhaseResult RunSimplex(Tableau* t, size_t obj_row, size_t num_cols,
                       size_t rhs_col, std::vector<size_t>* basis,
                       double tol) {
  const size_t m = basis->size();
  for (size_t iter = 0;; ++iter) {
    // Bland: entering column = smallest index with negative reduced cost.
    size_t enter = num_cols;
    for (size_t c = 0; c < num_cols; ++c) {
      if (t->At(obj_row, c) < -tol) {
        enter = c;
        break;
      }
    }
    if (enter == num_cols) return PhaseResult::kOptimal;

    // Ratio test; Bland tie-break on smallest basis variable index.
    size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < m; ++r) {
      double a = t->At(r, enter);
      if (a > tol) {
        double ratio = t->At(r, rhs_col) / a;
        if (ratio < best_ratio - tol ||
            (ratio < best_ratio + tol &&
             (leave == m || (*basis)[r] < (*basis)[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) return PhaseResult::kUnbounded;
    t->Pivot(leave, enter);
    (*basis)[leave] = enter;
    // Anti-stall safety net: the dimensionality and Bland's rule bound the
    // iteration count; this guards against numerical livelock.
    if (iter > 50000) {
      LPLOW_LOG(kWarning) << "simplex iteration cap reached";
      return PhaseResult::kOptimal;
    }
  }
}

}  // namespace

LpSolution SimplexSolver::Solve(const std::vector<Halfspace>& constraints,
                                const Vec& objective) const {
  const size_t d = objective.dim();
  const size_t m = constraints.size();
  const double tol = config_.feas_tol;

  // Variables: x = xp - xm with xp, xm >= 0 (2d columns), slack per row (m
  // columns), artificial per negative-RHS row. Layout:
  // [xp(0..d) | xm(0..d) | slack(0..m) | artificials | RHS]
  const size_t slack0 = 2 * d;
  const size_t art0 = slack0 + m;

  // Count artificials: rows with b < 0 after orienting slack.
  size_t num_art = 0;
  for (const Halfspace& h : constraints) {
    if (h.b < 0) ++num_art;
  }
  const size_t rhs_col = art0 + num_art;
  const size_t cols = rhs_col + 1;
  const size_t obj_row = m;      // Phase-2 objective.
  const size_t art_row = m + 1;  // Phase-1 objective.
  Tableau t(m + 2, cols);

  std::vector<size_t> basis(m);
  size_t art_used = 0;
  for (size_t r = 0; r < m; ++r) {
    const Halfspace& h = constraints[r];
    double sign = h.b < 0 ? -1.0 : 1.0;  // Orient row so RHS >= 0.
    for (size_t j = 0; j < d; ++j) {
      t.At(r, j) = sign * h.a[j];
      t.At(r, d + j) = -sign * h.a[j];
    }
    t.At(r, slack0 + r) = sign;  // a.x + s = b  (s >= 0), oriented.
    t.At(r, rhs_col) = sign * h.b;
    if (h.b < 0) {
      size_t ac = art0 + art_used++;
      t.At(r, ac) = 1.0;
      basis[r] = ac;
    } else {
      basis[r] = slack0 + r;
    }
  }
  // Phase-2 objective row: min c.x -> reduced costs c on xp, -c on xm.
  for (size_t j = 0; j < d; ++j) {
    t.At(obj_row, j) = objective[j];
    t.At(obj_row, d + j) = -objective[j];
  }
  // Phase-1 objective: min sum of artificials; express in nonbasic terms by
  // subtracting artificial rows.
  if (num_art > 0) {
    for (size_t c = art0; c < art0 + num_art; ++c) t.At(art_row, c) = 1.0;
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] >= art0) {
        for (size_t c = 0; c < cols; ++c) t.At(art_row, c) -= t.At(r, c);
      }
    }
    PhaseResult pr = RunSimplex(&t, art_row, art0 + num_art, rhs_col, &basis,
                                tol);
    (void)pr;  // Phase 1 is never unbounded (objective >= 0).
    double art_value = -t.At(art_row, rhs_col);
    if (std::fabs(art_value) > 1e-6) {
      return LpSolution::Infeasible();
    }
    // Drive any artificial still basic out of the basis if possible.
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] < art0) continue;
      size_t enter = art0;
      for (size_t c = 0; c < art0; ++c) {
        if (std::fabs(t.At(r, c)) > tol) {
          enter = c;
          break;
        }
      }
      if (enter < art0) {
        t.Pivot(r, enter);
        basis[r] = enter;
      }
      // Otherwise the row is redundant (all-zero over structurals); harmless.
    }
  }

  PhaseResult pr = RunSimplex(&t, obj_row, art0, rhs_col, &basis, tol);
  if (pr == PhaseResult::kUnbounded) return LpSolution::Unbounded();

  Vec x(d);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < d) {
      x[basis[r]] += t.At(r, rhs_col);
    } else if (basis[r] < 2 * d) {
      x[basis[r] - d] -= t.At(r, rhs_col);
    }
  }
  return LpSolution::Optimal(x, objective.Dot(x));
}

}  // namespace lplow

#include "src/solvers/lp_types.h"

#include <sstream>

namespace lplow {

const char* LpStatusToString(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "Optimal";
    case LpStatus::kInfeasible:
      return "Infeasible";
    case LpStatus::kUnbounded:
      return "Unbounded";
  }
  return "?";
}

std::string LpSolution::ToString() const {
  std::ostringstream oss;
  oss << LpStatusToString(status);
  if (optimal()) oss << " obj=" << objective << " x=" << point.ToString();
  return oss.str();
}

std::vector<Halfspace> BoxConstraints(size_t dim, double bound) {
  std::vector<Halfspace> out;
  out.reserve(2 * dim);
  for (size_t i = 0; i < dim; ++i) {
    Vec plus(dim);
    plus[i] = 1.0;
    out.emplace_back(plus, bound);  // x_i <= M
    Vec minus(dim);
    minus[i] = -1.0;
    out.emplace_back(minus, bound);  // -x_i <= M
  }
  return out;
}

}  // namespace lplow

#include "src/solvers/lex_lp.h"

#include <cmath>

#include "src/util/logging.h"

namespace lplow {

LpSolution LexLpSolver::Solve(const std::vector<Halfspace>& constraints,
                              const Vec& objective) const {
  const size_t d = objective.dim();
  LpSolution first = seidel_.Solve(constraints, objective);
  if (!first.optimal()) return first;

  // Work on an augmented copy; each phase appends one upper-bound constraint.
  std::vector<Halfspace> augmented = constraints;
  augmented.reserve(constraints.size() + d + 1);
  // Fix the objective: c.x <= obj* (+ slack scaled to the value magnitude,
  // absorbing re-solve drift).
  auto slack_for = [&](double value) {
    return config_.lex_slack * std::max(1.0, std::fabs(value));
  };
  augmented.emplace_back(objective,
                         first.objective + slack_for(first.objective));

  Vec x = first.point;
  for (size_t i = 0; i < d; ++i) {
    Vec e(d);
    e[i] = 1.0;
    LpSolution phase = seidel_.Solve(augmented, e);
    if (!phase.optimal()) {
      // Numerically possible when drift exceeds the slack; keep the best
      // point so far — still an optimum, just with weaker tie-breaking.
      LPLOW_LOG(kDebug) << "lex phase " << i << " lost feasibility";
      break;
    }
    x = phase.point;
    augmented.emplace_back(e, phase.point[i] + slack_for(phase.point[i]));
  }
  return LpSolution::Optimal(x, objective.Dot(x));
}

bool LexLpSolver::TouchesBox(const LpSolution& solution) const {
  if (!solution.optimal()) return false;
  for (size_t i = 0; i < solution.point.dim(); ++i) {
    if (std::fabs(std::fabs(solution.point[i]) - config_.box_bound) <=
        config_.tight_tol * std::max(1.0, config_.box_bound)) {
      return true;
    }
  }
  return false;
}

}  // namespace lplow

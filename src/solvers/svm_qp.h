// Hard-margin linear SVM solver (homogeneous form, Section 4.2):
//
//     min ||u||^2   s.t.   y_j <u, x_j> >= 1   for all j.
//
// Writing z_j = y_j x_j, the dual is  max sum_j a_j - 1/2 ||sum_j a_j z_j||^2
// with a >= 0 (no equality coupling because there is no bias term), solved by
// cyclic coordinate ascent with exact per-coordinate maximization — the role
// [47]'s generic convex QP plays in Proposition 4.2. An exact active-set
// enumeration (SolveExactSmall) refines solutions on basis-sized inputs.

#ifndef LPLOW_SOLVERS_SVM_QP_H_
#define LPLOW_SOLVERS_SVM_QP_H_

#include <vector>

#include "src/geometry/vec.h"
#include "src/util/status.h"

namespace lplow {

/// One labeled example; constraint is label * <u, x> >= 1.
struct SvmPoint {
  Vec x;
  int label = 1;  // +1 or -1.

  /// z = y * x, the constraint normal.
  Vec Z() const { return label >= 0 ? x : x * -1.0; }
};

/// Separating hyperplane (through the origin) or infeasibility.
struct SvmSolution {
  bool separable = false;
  Vec u;                  // Valid iff separable.
  double norm_squared = 0;  // ||u||^2.
  std::vector<double> alpha;  // Dual coefficients (empty for exact solves).
};

class SvmSolver {
 public:
  struct Config {
    double kkt_tol = 1e-6;     // Max allowed constraint violation at exit.
    size_t max_epochs = 20000;  // Cyclic passes over the data.
    /// Dual objective above this cap is declared non-separable (the dual is
    /// unbounded exactly when the primal is infeasible).
    double infeasible_norm_cap = 1e10;
    /// Tolerance for treating an alpha as active in basis extraction.
    double active_tol = 1e-9;
  };

  SvmSolver() = default;
  explicit SvmSolver(Config config) : config_(config) {}

  /// Iterative dual solve; works for any m, approximate to kkt_tol.
  SvmSolution Solve(const std::vector<SvmPoint>& points) const;

  /// Exact solve by active-set enumeration; m must be small (<= ~16, cost
  /// 2^m * poly). Used for basis-sized subproblems and as a test oracle.
  SvmSolution SolveExactSmall(const std::vector<SvmPoint>& points) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace lplow

#endif  // LPLOW_SOLVERS_SVM_QP_H_

// Lexicographically-smallest optimal point, the exact f(.) of the paper's
// LP-type formulation of linear programming (Section 4.1 / Proposition 4.1):
// first minimize c.x, then x_1, then x_2, ... Implemented as d+1 sequential
// Seidel solves, each fixing the previously attained minima via upper-bound
// constraints (sufficient because each phase attains its minimum).

#ifndef LPLOW_SOLVERS_LEX_LP_H_
#define LPLOW_SOLVERS_LEX_LP_H_

#include <vector>

#include "src/geometry/halfspace.h"
#include "src/solvers/lp_types.h"
#include "src/solvers/seidel.h"

namespace lplow {

class LexLpSolver {
 public:
  explicit LexLpSolver(SolverConfig config = {})
      : config_(config), seidel_(config) {}

  /// Returns the lexicographically smallest point among the minimizers of
  /// c.x over `constraints` (intersected with the configured box).
  LpSolution Solve(const std::vector<Halfspace>& constraints,
                   const Vec& objective) const;

  /// True when the optimum sits on the artificial box boundary, which means
  /// the un-boxed program is unbounded (or its optimum exceeds the box).
  bool TouchesBox(const LpSolution& solution) const;

  const SolverConfig& config() const { return config_; }

 private:
  SolverConfig config_;
  SeidelSolver seidel_;
};

}  // namespace lplow

#endif  // LPLOW_SOLVERS_LEX_LP_H_

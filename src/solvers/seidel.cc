#include "src/solvers/seidel.h"

#include <cmath>

#include "src/util/logging.h"

namespace lplow {

namespace {

// Optimum of min c.x over the box |x_i| <= M alone: each coordinate sits at
// the corner favored by its objective sign (ties toward -M for determinism).
Vec BoxOptimum(const Vec& c, double box) {
  Vec x(c.dim());
  for (size_t i = 0; i < c.dim(); ++i) x[i] = c[i] > 0 ? -box : box;
  // For c[i] == 0 the rule above picks +box; any corner is optimal.
  return x;
}

// One-dimensional base case: min c*x s.t. a_j*x <= b_j, |x| <= M.
LpSolution Solve1D(const std::vector<Halfspace>& constraints, double c,
                   double box, double pivot_tol, double feas_tol) {
  double lo = -box;
  double hi = box;
  for (const Halfspace& h : constraints) {
    double a = h.a[0];
    if (a > pivot_tol) {
      hi = std::min(hi, h.b / a);
    } else if (a < -pivot_tol) {
      lo = std::max(lo, h.b / a);
    } else if (h.b < -feas_tol) {
      return LpSolution::Infeasible();
    }
  }
  if (lo > hi + feas_tol) return LpSolution::Infeasible();
  if (lo > hi) {
    // Within tolerance: collapse to midpoint.
    lo = hi = 0.5 * (lo + hi);
  }
  double x = c > 0 ? lo : (c < 0 ? hi : lo);
  Vec point(1);
  point[0] = x;
  return LpSolution::Optimal(point, c * x);
}

}  // namespace

LpSolution SeidelSolver::Solve(const std::vector<Halfspace>& constraints,
                               const Vec& objective) const {
  for (const Halfspace& h : constraints) {
    LPLOW_CHECK_EQ(h.dim(), objective.dim());
  }
  Rng rng(config_.seed);
  return SolveRecursive(constraints, objective, config_.box_bound, &rng);
}

LpSolution SeidelSolver::SolveRecursive(std::vector<Halfspace> constraints,
                                        Vec c, double box, Rng* rng) const {
  const size_t d = c.dim();
  LPLOW_CHECK_GE(d, 1u);
  if (d == 1) {
    return Solve1D(constraints, c[0], box, config_.pivot_tol,
                   config_.feas_tol);
  }

  rng->Shuffle(&constraints);
  Vec x = BoxOptimum(c, box);
  double obj = c.Dot(x);

  for (size_t i = 0; i < constraints.size(); ++i) {
    const Halfspace& h = constraints[i];
    if (h.Contains(x, config_.feas_tol)) continue;

    // The new optimum lies on the hyperplane a.x = b of the violated
    // constraint. Eliminate the variable with the largest |a_k|.
    size_t k = 0;
    double best = std::fabs(h.a[0]);
    for (size_t j = 1; j < d; ++j) {
      double v = std::fabs(h.a[j]);
      if (v > best) {
        best = v;
        k = j;
      }
    }
    if (best <= config_.pivot_tol) {
      // Constraint is (numerically) 0.x <= b with b < 0: infeasible.
      return LpSolution::Infeasible();
    }

    const double ak = h.a[k];
    const double bk = h.b;
    // Substitution: x_k = (bk - sum_{j != k} a_j x_j) / ak.
    // Reduced objective: c.x = c_k/ak * bk + sum_{j != k} (c_j - c_k a_j/ak) x_j.
    Vec c_red(d - 1);
    {
      size_t t = 0;
      for (size_t j = 0; j < d; ++j) {
        if (j == k) continue;
        c_red[t++] = c[j] - c[k] * h.a[j] / ak;
      }
    }

    // Reduce the first i constraints plus the box constraints on x_k (the
    // box on remaining variables is passed down as the recursive box).
    std::vector<Halfspace> reduced;
    reduced.reserve(i + 2);
    auto reduce_halfspace = [&](const Halfspace& g) {
      // g: sum_j g_j x_j <= gb. Substitute x_k.
      Vec a_red(d - 1);
      size_t t = 0;
      for (size_t j = 0; j < d; ++j) {
        if (j == k) continue;
        a_red[t++] = g.a[j] - g.a[k] * h.a[j] / ak;
      }
      double b_red = g.b - g.a[k] * bk / ak;
      reduced.emplace_back(std::move(a_red), b_red);
    };
    for (size_t j = 0; j < i; ++j) reduce_halfspace(constraints[j]);
    {
      Halfspace upper(Vec(d), box);  // x_k <= box
      upper.a[k] = 1.0;
      reduce_halfspace(upper);
      Halfspace lower(Vec(d), box);  // -x_k <= box
      lower.a[k] = -1.0;
      reduce_halfspace(lower);
    }

    LpSolution sub = SolveRecursive(std::move(reduced), c_red, box, rng);
    if (!sub.optimal()) return sub;

    // Lift the solution back.
    Vec lifted(d);
    {
      size_t t = 0;
      double xk = bk / ak;
      for (size_t j = 0; j < d; ++j) {
        if (j == k) continue;
        lifted[j] = sub.point[t];
        xk -= h.a[j] * sub.point[t] / ak;
        ++t;
      }
      lifted[k] = xk;
    }
    x = std::move(lifted);
    obj = c.Dot(x);
  }
  return LpSolution::Optimal(x, obj);
}

}  // namespace lplow

// Badoiu-Clarkson core-set algorithm for approximate minimum enclosing
// balls — the primitive that core vector machines [42] are built on, and a
// natural approximate alternative to the exact Welzl T_b for very large
// samples: O(n/eps^2) time, (1+eps)-approximate radius, and a core-set of
// O(1/eps^2) points whose exact MEB already (1+eps)-covers the input.

#ifndef LPLOW_SOLVERS_CORESET_MEB_H_
#define LPLOW_SOLVERS_CORESET_MEB_H_

#include <vector>

#include "src/solvers/welzl.h"

namespace lplow {

struct CoresetMebResult {
  Ball ball;                  // (1+eps)-approximate enclosing ball.
  std::vector<Vec> coreset;   // O(1/eps^2) points spanning the ball.
  size_t iterations = 0;
};

class CoresetMebSolver {
 public:
  struct Config {
    double eps = 0.01;  // Relative radius slack.
    /// Iteration cap; the Badoiu-Clarkson bound is ceil(2/eps^2), 0 = auto.
    size_t max_iterations = 0;
  };

  CoresetMebSolver() = default;
  explicit CoresetMebSolver(Config config) : config_(config) {}

  /// Approximate MEB of `points` (empty ball for empty input). The returned
  /// ball contains every point within (1+eps) * radius.
  CoresetMebResult Solve(const std::vector<Vec>& points) const;

 private:
  Config config_;
};

}  // namespace lplow

#endif  // LPLOW_SOLVERS_CORESET_MEB_H_

#include "src/solvers/welzl.h"

#include <cmath>
#include <sstream>

#include "src/geometry/linear_solve.h"
#include "src/util/logging.h"

namespace lplow {

bool Ball::Contains(const Vec& p, double tol) const {
  if (empty()) return false;
  // Compare distances rather than squared distances so tol acts on the
  // radius scale.
  return (p - center).Norm() <= radius + tol;
}

std::string Ball::ToString() const {
  std::ostringstream oss;
  oss << "Ball(center=" << center.ToString() << ", r=" << radius << ")";
  return oss.str();
}

Result<Ball> Circumsphere(const std::vector<Vec>& boundary,
                          double singular_tol) {
  if (boundary.empty()) return Ball{};
  const Vec& p0 = boundary[0];
  const size_t k = boundary.size() - 1;
  if (k == 0) {
    Ball b;
    b.center = p0;
    b.radius = 0;
    return b;
  }
  // Center = p0 + sum_j lambda_j (p_j - p0); equidistance to p0 and p_i gives
  // the Gram system  sum_j lambda_j 2 (p_i-p0).(p_j-p0) = |p_i - p0|^2.
  Mat gram(k, k);
  Vec rhs(k);
  for (size_t i = 0; i < k; ++i) {
    Vec vi = boundary[i + 1] - p0;
    for (size_t j = 0; j < k; ++j) {
      Vec vj = boundary[j + 1] - p0;
      gram.At(i, j) = 2.0 * vi.Dot(vj);
    }
    rhs[i] = vi.NormSquared();
  }
  auto lambda = SolveLinearSystem(std::move(gram), std::move(rhs),
                                  singular_tol);
  if (!lambda.ok()) return lambda.status();
  Ball b;
  b.center = p0;
  for (size_t j = 0; j < k; ++j) {
    b.center += (boundary[j + 1] - p0) * (*lambda)[j];
  }
  b.radius = (b.center - p0).Norm();
  return b;
}

Ball WelzlSolver::BallFromBoundary(const std::vector<Vec>& boundary) const {
  auto b = Circumsphere(boundary);
  if (b.ok()) return *b;
  // Affinely dependent boundary (e.g. duplicated points): drop the newest
  // point and retry; the caller's containment checks keep this safe.
  std::vector<Vec> reduced(boundary.begin(), boundary.end() - 1);
  if (reduced.empty()) return Ball{};
  return BallFromBoundary(reduced);
}

Ball WelzlSolver::SolveWithBoundary(std::vector<Vec>& points, size_t limit,
                                    std::vector<Vec>& boundary,
                                    size_t dim) const {
  Ball ball = BallFromBoundary(boundary);
  if (boundary.size() == dim + 1) return ball;
  for (size_t i = 0; i < limit; ++i) {
    if (ball.Contains(points[i], config_.tol)) continue;
    boundary.push_back(points[i]);
    ball = SolveWithBoundary(points, i, boundary, dim);
    boundary.pop_back();
    // Move-to-front keeps hard points early, giving the expected-linear
    // behaviour of Welzl's heuristic.
    Vec hard = points[i];
    for (size_t j = i; j > 0; --j) points[j] = points[j - 1];
    points[0] = std::move(hard);
  }
  return ball;
}

Ball WelzlSolver::Solve(const std::vector<Vec>& points) const {
  if (points.empty()) return Ball{};
  std::vector<Vec> pts = points;
  Rng rng(config_.seed);
  rng.Shuffle(&pts);
  std::vector<Vec> boundary;
  return SolveWithBoundary(pts, pts.size(), boundary, pts[0].dim());
}

}  // namespace lplow

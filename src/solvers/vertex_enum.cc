#include "src/solvers/vertex_enum.h"

#include <cmath>

#include "src/geometry/linear_solve.h"
#include "src/util/logging.h"

namespace lplow {

LpSolution VertexEnumSolver::Solve(const std::vector<Halfspace>& constraints,
                                   const Vec& objective) const {
  const size_t d = objective.dim();
  std::vector<Halfspace> all = constraints;
  std::vector<Halfspace> box = BoxConstraints(d, config_.box_bound);
  all.insert(all.end(), box.begin(), box.end());
  const size_t n = all.size();
  LPLOW_CHECK_GE(n, d);

  bool found = false;
  Vec best;
  double best_obj = 0;

  std::vector<size_t> idx(d);
  // Enumerate all d-subsets via manual odometer.
  for (size_t i = 0; i < d; ++i) idx[i] = i;
  auto advance = [&]() {
    size_t i = d;
    while (i-- > 0) {
      if (idx[i] + (d - i) < n) {
        ++idx[i];
        for (size_t j = i + 1; j < d; ++j) idx[j] = idx[j - 1] + 1;
        return true;
      }
    }
    return false;
  };

  do {
    Mat a(d, d);
    Vec b(d);
    for (size_t r = 0; r < d; ++r) {
      for (size_t c = 0; c < d; ++c) a.At(r, c) = all[idx[r]].a[c];
      b[r] = all[idx[r]].b;
    }
    auto x = SolveLinearSystem(std::move(a), std::move(b), config_.pivot_tol);
    if (!x.ok()) continue;
    bool feasible = true;
    for (const Halfspace& h : all) {
      if (!h.Contains(*x, config_.feas_tol)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    double obj = objective.Dot(*x);
    if (!found || obj < best_obj - config_.tight_tol ||
        (std::fabs(obj - best_obj) <= config_.tight_tol &&
         x->LexCompare(best, config_.tight_tol) < 0)) {
      found = true;
      best = std::move(*x);
      best_obj = obj;
    }
  } while (advance());

  if (!found) return LpSolution::Infeasible();
  return LpSolution::Optimal(best, best_obj);
}

}  // namespace lplow

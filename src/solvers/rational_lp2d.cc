#include "src/solvers/rational_lp2d.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lplow {

namespace {

// Minimizes line `l` over { x : l(x) >= other_j(x) for j < count }, the 1-d
// subproblem of Seidel's incremental step. Pre-condition (guaranteed by the
// caller): the region is nonempty, because l is violated at the previous
// optimum, so the previous optimum's x lies in the region. Returns the
// minimizing x.
Rational MinimizeOnLine(const RationalLine& l,
                        const std::vector<RationalLine>& others,
                        size_t count) {
  bool has_lo = false, has_hi = false;
  Rational lo, hi;
  for (size_t j = 0; j < count; ++j) {
    const RationalLine& o = others[j];
    Rational ds = l.slope - o.slope;
    int s = ds.sign();
    if (s == 0) {
      // Parallel: l dominates o everywhere or nowhere; the caller's
      // pre-condition rules out "nowhere".
      LPLOW_CHECK(l.intercept >= o.intercept);
      continue;
    }
    Rational bound = (o.intercept - l.intercept) / ds;
    if (s > 0) {
      if (!has_lo || bound > lo) {
        lo = bound;
        has_lo = true;
      }
    } else {
      if (!has_hi || bound < hi) {
        hi = bound;
        has_hi = true;
      }
    }
  }
  if (has_lo && has_hi) LPLOW_CHECK(lo <= hi);
  int ls = l.slope.sign();
  if (ls > 0) {
    // Need a lower bound or the minimum would be unbounded; the prefix
    // always contains a line of non-positive slope, which provides one.
    LPLOW_CHECK(has_lo);
    return lo;
  }
  if (ls < 0) {
    LPLOW_CHECK(has_hi);
    return hi;
  }
  // Flat line: any feasible x attains the minimum.
  if (has_lo) return lo;
  if (has_hi) return hi;
  return Rational(0);
}

}  // namespace

RationalLp2dSolution RationalLp2dSolver::Solve(
    const std::vector<RationalLine>& lines) const {
  LPLOW_CHECK(!lines.empty());
  RationalLp2dSolution out;

  // The minimum of an upper envelope of lines is bounded iff the slope set
  // touches both signs (or zero).
  size_t min_idx = 0, max_idx = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].slope < lines[min_idx].slope) min_idx = i;
    if (lines[i].slope > lines[max_idx].slope) max_idx = i;
  }
  if (lines[min_idx].slope.sign() > 0 || lines[max_idx].slope.sign() < 0) {
    out.bounded = false;
    return out;
  }

  std::vector<RationalLine> order;
  order.reserve(lines.size());
  order.push_back(lines[min_idx]);
  if (max_idx != min_idx) order.push_back(lines[max_idx]);
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i != min_idx && i != max_idx) order.push_back(lines[i]);
  }
  if (order.size() > 3) {
    // Shuffle the tail (the leading extreme-slope pair must stay in front so
    // every prefix has a bounded minimum).
    Rng rng(seed_);
    for (size_t i = order.size(); i > 3; --i) {
      size_t j = 2 + rng.UniformIndex(i - 2);
      std::swap(order[i - 1], order[j]);
    }
  }

  // Optimum of the leading pair.
  Rational x, y;
  if (order.size() == 1 || order[0].slope == order[1].slope) {
    // All slopes are zero (flat envelope): minimum is the max intercept.
    x = Rational(0);
    y = order[0].intercept;
    for (const auto& l : order) {
      if (l.intercept > y) y = l.intercept;
    }
    out.bounded = true;
    out.x = x;
    out.y = y;
    return out;
  }
  // V-shaped pair: optimum at the intersection.
  x = (order[0].intercept - order[1].intercept) /
      (order[1].slope - order[0].slope);
  y = order[0].ValueAt(x);

  for (size_t i = 2; i < order.size(); ++i) {
    const RationalLine& l = order[i];
    if (l.ValueAt(x) <= y) continue;  // Not violated.
    x = MinimizeOnLine(l, order, i);
    y = l.ValueAt(x);
  }

  out.bounded = true;
  out.x = x;
  out.y = y;
  return out;
}

}  // namespace lplow

#include "src/solvers/svm_qp.h"

#include <cmath>

#include "src/geometry/linear_solve.h"
#include "src/util/logging.h"

namespace lplow {

namespace {

// Exact refinement: once coordinate ascent has identified the active set
// (alpha_j > tol), the optimum solves the Gram system G alpha = 1 on that
// set; if the refined u is primal-feasible with nonnegative alpha, it is the
// exact optimum (KKT). Returns true and overwrites u on success.
bool PolishActiveSet(const std::vector<Vec>& z,
                     const std::vector<double>& alpha, double active_tol,
                     Vec* u) {
  std::vector<size_t> active;
  for (size_t j = 0; j < alpha.size(); ++j) {
    if (alpha[j] > active_tol) active.push_back(j);
  }
  if (active.empty() || active.size() > 3 * (u->dim() + 1)) return false;
  const size_t k = active.size();
  Mat gram(k, k);
  Vec one(k, 1.0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      gram.At(i, j) = z[active[i]].Dot(z[active[j]]);
    }
  }
  auto a = SolveLinearSystem(std::move(gram), std::move(one), 1e-12);
  if (!a.ok()) return false;
  Vec refined(u->dim());
  for (size_t i = 0; i < k; ++i) {
    if ((*a)[i] < -1e-9) return false;
    refined += z[active[i]] * (*a)[i];
  }
  for (const Vec& zj : z) {
    if (zj.Dot(refined) < 1.0 - 1e-9) return false;
  }
  *u = std::move(refined);
  return true;
}

}  // namespace

SvmSolution SvmSolver::Solve(const std::vector<SvmPoint>& points) const {
  SvmSolution out;
  if (points.empty()) return out;  // Vacuously non-separable result below.
  const size_t m = points.size();
  const size_t d = points[0].x.dim();

  std::vector<Vec> z;
  std::vector<double> znorm2(m);
  z.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    z.push_back(points[j].Z());
    znorm2[j] = z[j].NormSquared();
    if (znorm2[j] <= 0) {
      return out;  // y <u, 0> >= 1 is unsatisfiable: non-separable.
    }
  }

  std::vector<double> alpha(m, 0.0);
  Vec u(d);
  double sum_alpha = 0.0;
  for (size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    double max_violation = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (znorm2[j] <= 0) continue;  // Zero vector can never reach margin 1.
      double margin = z[j].Dot(u);
      double g = 1.0 - margin;  // Gradient of dual w.r.t. alpha_j.
      double na = std::max(0.0, alpha[j] + g / znorm2[j]);
      double delta = na - alpha[j];
      if (delta != 0.0) {
        alpha[j] = na;
        sum_alpha += delta;
        u += z[j] * delta;
      }
      if (g > max_violation && alpha[j] >= 0) max_violation = g;
    }
    // The dual objective sum(alpha) - 1/2 ||u||^2 increases monotonically and
    // is unbounded exactly when the primal is infeasible; at the separable
    // optimum it equals 1/2 ||u*||^2.
    double dual_objective = sum_alpha - 0.5 * u.NormSquared();
    if (dual_objective > 0.5 * config_.infeasible_norm_cap ||
        u.NormSquared() > config_.infeasible_norm_cap) {
      return out;  // Diverging dual => non-separable.
    }
    if (max_violation <= config_.kkt_tol) {
      // All margins >= 1 - tol and coordinate optimality holds; refine to
      // the exact KKT solution when the active set is small.
      PolishActiveSet(z, alpha, config_.active_tol, &u);
      out.separable = true;
      out.u = u;
      out.norm_squared = u.NormSquared();
      out.alpha = std::move(alpha);
      return out;
    }
  }
  // Epoch cap reached: try the exact polish; else scale u up to primal
  // feasibility and accept the (slightly superoptimal) certificate when the
  // residual violation is small, otherwise declare non-separable.
  if (PolishActiveSet(z, alpha, config_.active_tol, &u)) {
    out.separable = true;
    out.u = u;
    out.norm_squared = u.NormSquared();
    out.alpha = std::move(alpha);
    return out;
  }
  double worst = 0;
  for (size_t j = 0; j < m; ++j) {
    worst = std::max(worst, 1.0 - z[j].Dot(u));
  }
  if (worst < 0.2) {
    u *= 1.0 / (1.0 - worst);  // Now every margin is >= 1.
    out.separable = true;
    out.u = u;
    out.norm_squared = u.NormSquared();
    out.alpha = std::move(alpha);
  }
  return out;
}

SvmSolution SvmSolver::SolveExactSmall(
    const std::vector<SvmPoint>& points) const {
  SvmSolution best;
  const size_t m = points.size();
  LPLOW_CHECK_LE(m, 20u);
  if (m == 0) return best;
  const size_t d = points[0].x.dim();

  std::vector<Vec> z;
  z.reserve(m);
  for (const auto& p : points) z.push_back(p.Z());

  bool found = false;
  double best_norm = 0;
  Vec best_u;

  // The optimum u* = sum_{j in T} alpha_j z_j for the active set T (margins
  // exactly 1 on T), with alpha >= 0 and all other margins >= 1. Enumerate T.
  for (uint32_t mask = 1; mask < (1u << m); ++mask) {
    std::vector<size_t> t;
    for (size_t j = 0; j < m; ++j) {
      if (mask & (1u << j)) t.push_back(j);
    }
    if (t.size() > d + 1) continue;
    const size_t k = t.size();
    Mat gram(k, k);
    Vec one(k, 1.0);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) gram.At(i, j) = z[t[i]].Dot(z[t[j]]);
    }
    auto alpha = SolveLinearSystem(std::move(gram), std::move(one), 1e-12);
    if (!alpha.ok()) continue;
    bool nonneg = true;
    for (size_t i = 0; i < k; ++i) {
      if ((*alpha)[i] < -1e-9) {
        nonneg = false;
        break;
      }
    }
    if (!nonneg) continue;
    Vec u(d);
    for (size_t i = 0; i < k; ++i) u += z[t[i]] * (*alpha)[i];
    bool feasible = true;
    for (size_t j = 0; j < m; ++j) {
      if (z[j].Dot(u) < 1.0 - 1e-7) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    double norm = u.NormSquared();
    if (!found || norm < best_norm) {
      found = true;
      best_norm = norm;
      best_u = std::move(u);
    }
  }
  if (found) {
    best.separable = true;
    best.u = best_u;
    best.norm_squared = best_norm;
  }
  return best;
}

}  // namespace lplow

// Common types shared by the LP solvers.

#ifndef LPLOW_SOLVERS_LP_TYPES_H_
#define LPLOW_SOLVERS_LP_TYPES_H_

#include <string>
#include <vector>

#include "src/geometry/halfspace.h"
#include "src/geometry/vec.h"

namespace lplow {

enum class LpStatus {
  kOptimal = 0,
  kInfeasible = 1,
  // With the bounding box the library applies by default this only occurs
  // for callers that disable the box.
  kUnbounded = 2,
};

const char* LpStatusToString(LpStatus status);

/// Outcome of an LP solve: an optimal point and objective, or a status
/// explaining why none exists.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  Vec point;          // Valid iff status == kOptimal.
  double objective = 0.0;  // c . point.

  static LpSolution Optimal(Vec x, double obj) {
    LpSolution s;
    s.status = LpStatus::kOptimal;
    s.point = std::move(x);
    s.objective = obj;
    return s;
  }
  static LpSolution Infeasible() { return LpSolution{}; }
  static LpSolution Unbounded() {
    LpSolution s;
    s.status = LpStatus::kUnbounded;
    return s;
  }

  bool optimal() const { return status == LpStatus::kOptimal; }
  std::string ToString() const;
};

/// Numeric knobs shared across solvers. All tolerances are absolute; inputs
/// are expected to be reasonably scaled (coordinates within ~1e6), which the
/// workload generators guarantee.
struct SolverConfig {
  /// Feasibility slack tolerance: a constraint with slack >= -feas_tol is
  /// considered satisfied.
  double feas_tol = 1e-7;
  /// A constraint with |slack| <= tight_tol is considered tight (used for
  /// basis extraction; must absorb solver drift, which exceeds 1e-6).
  double tight_tol = 1e-4;
  /// Slack added to the phase-fixing constraints of the lexicographic solve.
  double lex_slack = 1e-7;
  /// Pivots below this are treated as zero in elimination.
  double pivot_tol = 1e-11;
  /// Property-(P2) violation-test tolerance (looser than feas_tol: it must
  /// absorb the cumulative drift of the lexicographic solve phases).
  double violation_tol = 1e-5;
  /// Relative tolerance for comparing f-values across solves.
  double compare_tol = 3e-5;
  /// Half-width M of the bounding box |x_i| <= M that makes LPs bounded.
  double box_bound = 1e7;
  /// Seed for the solver-internal shuffles.
  uint64_t seed = 0xC0FFEE123456789ULL;
};

/// The 2d box constraints |x_i| <= M as halfspaces.
std::vector<Halfspace> BoxConstraints(size_t dim, double bound);

}  // namespace lplow

#endif  // LPLOW_SOLVERS_LP_TYPES_H_

// Seidel's randomized incremental algorithm for low-dimensional linear
// programming (expected O(d! n) time), the T_b primitive of Proposition 4.1.
//
// Solves   min c.x   s.t.  a_j.x <= b_j  for all j,  |x_i| <= M (box).
//
// The box (SolverConfig::box_bound) plays the role of Seidel's initial
// bounded region; callers that want to detect genuinely unbounded programs
// can compare the optimum against the box boundary (LexLpSolver does this).

#ifndef LPLOW_SOLVERS_SEIDEL_H_
#define LPLOW_SOLVERS_SEIDEL_H_

#include <vector>

#include "src/geometry/halfspace.h"
#include "src/solvers/lp_types.h"
#include "src/util/rng.h"

namespace lplow {

class SeidelSolver {
 public:
  explicit SeidelSolver(SolverConfig config = {}) : config_(config) {}

  /// Solves min c.x over `constraints` intersected with the box. The input
  /// order is not modified; the solver shuffles an internal copy with its own
  /// seeded RNG, so results are deterministic for a fixed config seed.
  LpSolution Solve(const std::vector<Halfspace>& constraints,
                   const Vec& objective) const;

  const SolverConfig& config() const { return config_; }

 private:
  LpSolution SolveRecursive(std::vector<Halfspace> constraints, Vec objective,
                            double box, Rng* rng) const;

  SolverConfig config_;
};

}  // namespace lplow

#endif  // LPLOW_SOLVERS_SEIDEL_H_

// Minimum enclosing ball via Welzl's algorithm (move-to-front variant,
// recursion bounded by the support-set size <= d+1). The T_b primitive of
// Proposition 4.3 (core vector machines).

#ifndef LPLOW_SOLVERS_WELZL_H_
#define LPLOW_SOLVERS_WELZL_H_

#include <vector>

#include "src/geometry/vec.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {

/// A d-dimensional ball.
struct Ball {
  Vec center;
  double radius = -1.0;  // Negative encodes the empty ball.

  bool empty() const { return radius < 0; }

  /// True when p lies inside or on the ball, within absolute tolerance tol
  /// on the radius.
  bool Contains(const Vec& p, double tol) const;

  std::string ToString() const;
};

/// Smallest ball passing through all `boundary` points (their circumsphere
/// restricted to the affine hull). Fails on affinely dependent inputs.
Result<Ball> Circumsphere(const std::vector<Vec>& boundary,
                          double singular_tol = 1e-12);

class WelzlSolver {
 public:
  struct Config {
    double tol = 1e-9;         // Containment tolerance.
    uint64_t seed = 0xBA11BA11ULL;
  };

  WelzlSolver() = default;
  explicit WelzlSolver(Config config) : config_(config) {}

  /// Minimum enclosing ball of `points`. Returns the empty ball for an empty
  /// input; a zero-radius ball for a single point.
  Ball Solve(const std::vector<Vec>& points) const;

 private:
  Ball SolveWithBoundary(std::vector<Vec>& points, size_t limit,
                         std::vector<Vec>& boundary, size_t dim) const;
  Ball BallFromBoundary(const std::vector<Vec>& boundary) const;

  Config config_;
};

}  // namespace lplow

#endif  // LPLOW_SOLVERS_WELZL_H_

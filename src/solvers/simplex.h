// Dense two-phase primal simplex with Bland's anti-cycling rule.
//
// An independent oracle used to cross-check Seidel's algorithm in tests and
// to provide exact unboundedness detection (it does not add a bounding box).
// O(poly) dense tableau — intended for moderate instance sizes, not the
// streaming path.

#ifndef LPLOW_SOLVERS_SIMPLEX_H_
#define LPLOW_SOLVERS_SIMPLEX_H_

#include <vector>

#include "src/geometry/halfspace.h"
#include "src/solvers/lp_types.h"

namespace lplow {

class SimplexSolver {
 public:
  explicit SimplexSolver(SolverConfig config = {}) : config_(config) {}

  /// Solves min c.x s.t. a_j.x <= b_j (variables free). Returns kUnbounded
  /// when the objective is unbounded below on the feasible region.
  LpSolution Solve(const std::vector<Halfspace>& constraints,
                   const Vec& objective) const;

 private:
  SolverConfig config_;
};

}  // namespace lplow

#endif  // LPLOW_SOLVERS_SIMPLEX_H_

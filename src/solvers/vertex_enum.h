// Brute-force LP oracle: enumerate all d-subsets of constraints (including
// the box), intersect their boundary hyperplanes, and keep the best feasible
// vertex in (objective, lexicographic) order. O(C(n, d) * poly(d)) — a
// ground-truth oracle for tests on tiny instances, never used by algorithms.

#ifndef LPLOW_SOLVERS_VERTEX_ENUM_H_
#define LPLOW_SOLVERS_VERTEX_ENUM_H_

#include <vector>

#include "src/geometry/halfspace.h"
#include "src/solvers/lp_types.h"

namespace lplow {

class VertexEnumSolver {
 public:
  explicit VertexEnumSolver(SolverConfig config = {}) : config_(config) {}

  /// Lexicographically-smallest optimum over constraints + box, by exhaustive
  /// vertex enumeration.
  LpSolution Solve(const std::vector<Halfspace>& constraints,
                   const Vec& objective) const;

 private:
  SolverConfig config_;
};

}  // namespace lplow

#endif  // LPLOW_SOLVERS_VERTEX_ENUM_H_

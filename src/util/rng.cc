#include "src/util/rng.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "src/util/logging.h"

namespace lplow {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LPLOW_CHECK_LE(lo, hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  LPLOW_CHECK_GT(n, 0u);
  return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
}

double Rng::UniformDouble() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

int64_t Rng::Binomial(int64_t n, double p) {
  if (n <= 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // libstdc++'s sampler calls lgamma(), which writes the process-wide
  // `signgam` in glibc — a data race when independent Rng objects sample
  // concurrently (e.g. parallel SolverService jobs). Serializing here keeps
  // each engine's draw sequence exactly what it is single-threaded.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  return std::binomial_distribution<int64_t>(n, p)(engine_);
}

std::vector<size_t> Rng::SampleDistinctIndices(size_t n, size_t k) {
  LPLOW_CHECK_LE(k, n);
  // Floyd's algorithm: for j in [n-k, n), pick t uniform in [0, j]; insert t
  // unless already present, else insert j.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = UniformIndex(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::Fork() {
  uint64_t child_seed = engine_();
  // Avoid the (astronomically unlikely) degenerate all-zero seed.
  if (child_seed == 0) child_seed = 0x9e3779b97f4a7c15ULL;
  return Rng(child_seed);
}

Rng Rng::ForkStream(size_t stream_id) {
  LPLOW_CHECK_EQ(stream_id, streams_forked_);
  ++streams_forked_;
  Rng child = Fork();
  return Rng(child.engine()());
}

}  // namespace lplow

#include "src/util/bit_stream.h"

namespace lplow {

void BitWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BitWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BitWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void BitWriter::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BitWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BitWriter::PutBytes(const void* data, size_t size) {
  if (size == 0) return;  // data may be null for an empty span (vector.data()).
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void BitWriter::PutString(const std::string& s) {
  PutVarU64(s.size());
  PutBytes(s.data(), s.size());
}

// Bounds checks are written as `size > size_ - pos_` (never `pos_ + size >
// size_`): pos_ <= size_ is an invariant, so the subtraction cannot wrap,
// whereas the addition wraps for attacker-controlled sizes near UINT64_MAX
// and would let a huge read pass the check.

Result<uint8_t> BitReader::GetU8() {
  if (size_ - pos_ < 1) return Status::OutOfRange("GetU8 past end");
  return data_[pos_++];
}

Result<uint32_t> BitReader::GetU32() {
  if (size_ - pos_ < 4) return Status::OutOfRange("GetU32 past end");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> BitReader::GetU64() {
  if (size_ - pos_ < 8) return Status::OutOfRange("GetU64 past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<int64_t> BitReader::GetI64() {
  auto r = GetU64();
  if (!r.ok()) return r.status();
  return static_cast<int64_t>(*r);
}

Result<uint64_t> BitReader::GetVarU64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::OutOfRange("GetVarU64 past end");
    if (shift >= 64) return Status::OutOfRange("GetVarU64 overlong encoding");
    uint8_t byte = data_[pos_++];
    const uint64_t payload = byte & 0x7f;
    // A payload bit that would land at position >= 64 corresponds to no
    // uint64: reject instead of silently truncating (on the 10th byte,
    // shift is 63 and only the low payload bit fits). Wire peers must
    // agree byte-for-byte, so an overflowing encoding is an error, not a
    // wrong value.
    if (shift > 0 && (payload >> (64 - shift)) != 0) {
      return Status::OutOfRange("GetVarU64 value overflows 64 bits");
    }
    v |= payload << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  return v;
}

Result<double> BitReader::GetDouble() {
  auto r = GetU64();
  if (!r.ok()) return r.status();
  double d;
  uint64_t bits = *r;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Status BitReader::GetBytes(void* out, size_t size) {
  if (size > size_ - pos_) return Status::OutOfRange("GetBytes past end");
  if (size == 0) return Status::OK();  // out may be null for an empty span.
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return Status::OK();
}

Result<std::string> BitReader::GetString() {
  auto len = GetVarU64();
  if (!len.ok()) return len.status();
  // Compare in 64 bits before narrowing the declared length to size_t: on a
  // 32-bit size_t a truncating cast would alias a huge length onto a small
  // one and pass the bounds check.
  if (*len > static_cast<uint64_t>(size_ - pos_)) {
    return Status::OutOfRange("GetString past end");
  }
  const size_t n = static_cast<size_t>(*len);  // In range: bounded above.
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace lplow

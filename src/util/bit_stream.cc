#include "src/util/bit_stream.h"

namespace lplow {

void BitWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BitWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BitWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void BitWriter::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BitWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BitWriter::PutBytes(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void BitWriter::PutString(const std::string& s) {
  PutVarU64(s.size());
  PutBytes(s.data(), s.size());
}

Result<uint8_t> BitReader::GetU8() {
  if (pos_ + 1 > size_) return Status::OutOfRange("GetU8 past end");
  return data_[pos_++];
}

Result<uint32_t> BitReader::GetU32() {
  if (pos_ + 4 > size_) return Status::OutOfRange("GetU32 past end");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> BitReader::GetU64() {
  if (pos_ + 8 > size_) return Status::OutOfRange("GetU64 past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<int64_t> BitReader::GetI64() {
  auto r = GetU64();
  if (!r.ok()) return r.status();
  return static_cast<int64_t>(*r);
}

Result<uint64_t> BitReader::GetVarU64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::OutOfRange("GetVarU64 past end");
    if (shift >= 64) return Status::OutOfRange("GetVarU64 overlong encoding");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  return v;
}

Result<double> BitReader::GetDouble() {
  auto r = GetU64();
  if (!r.ok()) return r.status();
  double d;
  uint64_t bits = *r;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Status BitReader::GetBytes(void* out, size_t size) {
  if (pos_ + size > size_) return Status::OutOfRange("GetBytes past end");
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return Status::OK();
}

Result<std::string> BitReader::GetString() {
  auto len = GetVarU64();
  if (!len.ok()) return len.status();
  if (pos_ + *len > size_) return Status::OutOfRange("GetString past end");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return s;
}

}  // namespace lplow

// Lightweight logging and invariant-checking macros.
//
// LPLOW_CHECK*: fatal invariant checks, always on (library invariants are
// cheap O(1) comparisons; benches showed no measurable overhead). Used for
// programmer errors; recoverable conditions use Status instead.

#ifndef LPLOW_UTIL_LOGGING_H_
#define LPLOW_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace lplow {
namespace internal {

/// Terminates the process after printing `msg` with source location.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& msg);

/// Severity for LPLOW_LOG.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level printed; default kWarning so library internals stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Stream-style message collector that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace lplow

#define LPLOW_LOG(level)                                            \
  ::lplow::internal::LogMessage(::lplow::internal::LogLevel::level, \
                                __FILE__, __LINE__)                 \
      .stream()

#define LPLOW_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::lplow::internal::CheckFailed(__FILE__, __LINE__,                   \
                                     "Check failed: " #cond);              \
    }                                                                      \
  } while (false)

#define LPLOW_CHECK_OP_(a, b, op)                                          \
  do {                                                                     \
    if (!((a)op(b))) {                                                     \
      std::ostringstream _oss;                                             \
      _oss << "Check failed: " #a " " #op " " #b " (" << (a) << " vs "     \
           << (b) << ")";                                                  \
      ::lplow::internal::CheckFailed(__FILE__, __LINE__, _oss.str());      \
    }                                                                      \
  } while (false)

#define LPLOW_CHECK_EQ(a, b) LPLOW_CHECK_OP_(a, b, ==)
#define LPLOW_CHECK_NE(a, b) LPLOW_CHECK_OP_(a, b, !=)
#define LPLOW_CHECK_LT(a, b) LPLOW_CHECK_OP_(a, b, <)
#define LPLOW_CHECK_LE(a, b) LPLOW_CHECK_OP_(a, b, <=)
#define LPLOW_CHECK_GT(a, b) LPLOW_CHECK_OP_(a, b, >)
#define LPLOW_CHECK_GE(a, b) LPLOW_CHECK_OP_(a, b, >=)

/// Checks that a Status-returning expression is OK; fatal otherwise.
#define LPLOW_CHECK_OK(expr)                                                \
  do {                                                                      \
    ::lplow::Status _st = (expr);                                           \
    if (!_st.ok()) {                                                        \
      ::lplow::internal::CheckFailed(__FILE__, __LINE__,                    \
                                     "Status not OK: " + _st.ToString());   \
    }                                                                       \
  } while (false)

#endif  // LPLOW_UTIL_LOGGING_H_

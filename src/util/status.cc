#include "src/util/status.h"

namespace lplow {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kSamplingFailed:
      return "SamplingFailed";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lplow

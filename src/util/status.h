// Status / Result<T> error-handling primitives, in the style used across
// database engines (Arrow, RocksDB, LevelDB). The lplow library does not throw
// exceptions: fallible public APIs return Status or Result<T>.

#ifndef LPLOW_UTIL_STATUS_H_
#define LPLOW_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace lplow {

/// Machine-readable error category carried by Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kResourceExhausted,
  kInternal,
  kNumericalError,
  kInfeasible,
  kUnbounded,
  kSamplingFailed,
  kAlreadyExists,
  kDeadlineExceeded,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk (use the default constructor for success).
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status SamplingFailed(std::string msg) {
    return Status(StatusCode::kSamplingFailed, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error. The value is only accessible when status().ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok(). Checked in debug builds via assert-style CHECK in
  /// callers; accessing the value of an error Result is undefined.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression if it is not OK.
#define LPLOW_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::lplow::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// moves the value into `lhs`.
#define LPLOW_ASSIGN_OR_RETURN(lhs, expr)        \
  auto LPLOW_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!LPLOW_CONCAT_(_res_, __LINE__).ok())      \
    return LPLOW_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(LPLOW_CONCAT_(_res_, __LINE__)).value()

#define LPLOW_CONCAT_INNER_(a, b) a##b
#define LPLOW_CONCAT_(a, b) LPLOW_CONCAT_INNER_(a, b)

}  // namespace lplow

#endif  // LPLOW_UTIL_STATUS_H_

#include "src/util/logging.h"

#include <cstdlib>

namespace lplow {
namespace internal {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

void CheckFailed(const char* file, int line, const std::string& msg) {
  std::cerr << "[FATAL " << file << ":" << line << "] " << msg << std::endl;
  std::abort();
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_log_level) {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace lplow

#include "src/util/logging.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace lplow {
namespace internal {

namespace {
// The runtime emulates sites/machines on worker threads, so the level is
// atomic and emission is serialized: concurrent LPLOW_LOG lines never
// interleave mid-line.
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return g_log_level.load(std::memory_order_relaxed);
}
void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

void CheckFailed(const char* file, int line, const std::string& msg) {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << "[FATAL " << file << ":" << line << "] " << msg << std::endl;
  }
  std::abort();
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace lplow

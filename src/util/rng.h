// Deterministic random number generation.
//
// Every randomized component in lplow takes an explicit Rng (or a seed) so
// that algorithm runs, tests, and benchmarks are reproducible. Rng wraps a
// 64-bit Mersenne Twister and adds the distributions the algorithms need
// (including an exact Binomial sampler used by the one-pass with-replacement
// weighted reservoir).

#ifndef LPLOW_UTIL_RNG_H_
#define LPLOW_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace lplow {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed1234abcdef01ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n);

  /// Uniform real in [0, 1).
  double UniformDouble();

  /// Uniform real in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Binomial(n, p) via the standard library (exact distribution).
  int64_t Binomial(int64_t n, double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A uniformly random sample of `k` distinct indices from [0, n).
  /// Requires k <= n. O(k) expected time via Floyd's algorithm.
  std::vector<size_t> SampleDistinctIndices(size_t n, size_t k);

  /// Derives an independent child generator (for per-site/per-machine
  /// randomness in the distributed simulations).
  Rng Fork();

  /// The canonical per-site / per-machine stream derivation used by the
  /// engine and the model runtimes: consumes exactly one parent draw and
  /// re-tempers it through a scratch engine, so sibling streams seeded from
  /// consecutive parent outputs are decorrelated. `stream_id` must equal
  /// the number of streams already forked from this generator (streams are
  /// created in index order at setup) — that is what makes every site's
  /// draw sequence position-determined and thread-count-invariant.
  Rng ForkStream(size_t stream_id);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t streams_forked_ = 0;
};

}  // namespace lplow

#endif  // LPLOW_UTIL_RNG_H_

// Wall-clock stopwatch for coarse experiment timing (benchmarks use
// google-benchmark's timers; this is for example programs and logs).

#ifndef LPLOW_UTIL_STOPWATCH_H_
#define LPLOW_UTIL_STOPWATCH_H_

#include <chrono>

namespace lplow {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds since the steady-clock epoch. Comparable across threads
  /// and — because the steady clock's epoch is machine-wide — across
  /// processes on the same host, which is what lets daemon trace spans line
  /// up under a client trace (src/runtime/trace.h).
  static uint64_t NowMicros() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lplow

#endif  // LPLOW_UTIL_STOPWATCH_H_

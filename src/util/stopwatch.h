// Wall-clock stopwatch for coarse experiment timing (benchmarks use
// google-benchmark's timers; this is for example programs and logs).

#ifndef LPLOW_UTIL_STOPWATCH_H_
#define LPLOW_UTIL_STOPWATCH_H_

#include <chrono>

namespace lplow {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lplow

#endif  // LPLOW_UTIL_STOPWATCH_H_

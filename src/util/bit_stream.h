// Byte-oriented serialization with exact size accounting.
//
// The coordinator and MPC simulations exchange real serialized messages; the
// communication cost reported by benchmarks is the exact number of bytes that
// crossed a channel. BitWriter/BitReader provide primitive encoders (fixed
// width ints, varints, doubles) that modules compose into message formats.
// The same encoders compute the `bit(S)` term of Theorems 1-3.

#ifndef LPLOW_UTIL_BIT_STREAM_H_
#define LPLOW_UTIL_BIT_STREAM_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lplow {

/// Append-only byte buffer with typed encoders.
class BitWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);

  /// LEB128 variable-length encoding; small values cost few bytes, which
  /// matters for the `O(l/r * log n)` weight-exponent messages of Lemma 3.7.
  void PutVarU64(uint64_t v);

  void PutDouble(double v);

  void PutBytes(const void* data, size_t size);

  void PutString(const std::string& s);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size_bytes() const { return buf_.size(); }
  size_t size_bits() const { return buf_.size() * 8; }

  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential decoder over a byte buffer. All getters fail with
/// Status::OutOfRange on truncated input (never read past the end). Safe on
/// untrusted input: declared lengths are validated against the remaining
/// bytes in 64-bit arithmetic before any allocation or copy.
class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  /// A reader only borrows the buffer; binding one to a temporary
  /// (`BitReader r(writer.Release());`) would dangle immediately.
  explicit BitReader(std::vector<uint8_t>&&) = delete;
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<uint64_t> GetVarU64();
  Result<double> GetDouble();
  Status GetBytes(void* out, size_t size);
  Result<std::string> GetString();

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace lplow

#endif  // LPLOW_UTIL_BIT_STREAM_H_

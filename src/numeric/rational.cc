#include "src/numeric/rational.h"

#include "src/util/logging.h"

namespace lplow {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  LPLOW_CHECK(!den_.is_zero());
  Normalize();
}

void Rational::Normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  LPLOW_CHECK(!o.is_zero());
  return Rational(num_ * o.den_, den_ * o.num_);
}

int Rational::Compare(const Rational& o) const {
  // Denominators are positive, so compare num_*o.den_ with o.num_*den_.
  return (num_ * o.den_).Compare(o.num_ * den_);
}

BigInt Rational::Floor() const {
  BigInt q, r;
  BigInt::DivMod(num_, den_, &q, &r);
  // Truncated division rounds toward zero; fix up negatives with remainder.
  if (num_.is_negative() && !r.is_zero()) q = q - BigInt(1);
  return q;
}

BigInt Rational::Ceil() const {
  BigInt q, r;
  BigInt::DivMod(num_, den_, &q, &r);
  if (!num_.is_negative() && !r.is_zero()) q = q + BigInt(1);
  return q;
}

std::string Rational::ToString() const {
  if (is_integer()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

double Rational::ToDouble() const {
  // Scale down both parts together to stay in double range when possible.
  double n = num_.ToDouble();
  double d = den_.ToDouble();
  return n / d;
}

}  // namespace lplow

// Exact rational arithmetic over BigInt, always kept in lowest terms with a
// positive denominator. Used by the lower-bound module (curve coordinates,
// slopes, exact 2-d LP) where floating point would lose the answer.

#ifndef LPLOW_NUMERIC_RATIONAL_H_
#define LPLOW_NUMERIC_RATIONAL_H_

#include <string>

#include "src/numeric/bigint.h"

namespace lplow {

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// From an integer.
  Rational(int64_t v) : num_(v), den_(1) {}  // NOLINT(runtime/explicit)

  /// From a BigInt.
  Rational(BigInt v) : num_(std::move(v)), den_(1) {}  // NOLINT

  /// num / den; den must be nonzero. Normalizes sign and reduces.
  Rational(BigInt num, BigInt den);

  /// Convenience: p / q from machine integers. q must be nonzero.
  static Rational Make(int64_t p, int64_t q) {
    return Rational(BigInt(p), BigInt(q));
  }

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_integer() const { return den_ == BigInt(1); }
  int sign() const { return num_.sign(); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division; o must be nonzero.
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  /// Three-way comparison by cross multiplication.
  int Compare(const Rational& o) const;

  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  /// Largest integer <= value (mathematical floor, also for negatives).
  BigInt Floor() const;

  /// Smallest integer >= value.
  BigInt Ceil() const;

  /// "p" if integral else "p/q".
  std::string ToString() const;

  /// Approximate double value (for plotting / logging only).
  double ToDouble() const;

  /// Total bits in numerator plus denominator: the bit-complexity measure
  /// used when accounting communication of lower-bound instances.
  size_t BitLength() const { return num_.BitLength() + den_.BitLength(); }

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;  // Always > 0.
};

}  // namespace lplow

#endif  // LPLOW_NUMERIC_RATIONAL_H_

// Arbitrary-precision signed integers.
//
// The Section-5 hard instances use coordinates whose magnitudes grow like
// N^{O(r)}; the lower-bound module therefore computes exactly, over BigInt
// and Rational, rather than in floating point. The implementation is a
// classic sign-magnitude bignum over 32-bit limbs (schoolbook multiplication
// and Knuth Algorithm D division), which is ample for the instance sizes the
// experiments use.

#ifndef LPLOW_NUMERIC_BIGINT_H_
#define LPLOW_NUMERIC_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lplow {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine integer.
  BigInt(int64_t v);  // NOLINT(runtime/explicit): intended implicit.

  /// Parses an optionally signed decimal string ("-123"). Aborts on malformed
  /// input (inputs are programmer-supplied literals; use TryParse otherwise).
  static BigInt FromString(const std::string& s);

  /// Parses a decimal string; returns false on malformed input.
  static bool TryParse(const std::string& s, BigInt* out);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }

  /// -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;

  /// Truncated division (C++ semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Divisor must be nonzero.
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  /// Computes both quotient and remainder in one pass.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quot,
                     BigInt* rem);

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }

  /// Three-way comparison: negative/zero/positive as *this <=> o.
  int Compare(const BigInt& o) const;

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// Greatest common divisor, always non-negative.
  static BigInt Gcd(BigInt a, BigInt b);

  /// Base-10 representation.
  std::string ToString() const;

  /// Closest double (may overflow to +/-inf for huge values).
  double ToDouble() const;

  /// Returns the value as int64 if it fits, aborts otherwise.
  int64_t ToInt64() const;

  /// True if the value fits in int64.
  bool FitsInt64() const;

  /// Number of bits in the magnitude (0 for zero). This is the
  /// bit-complexity measure `bit(S)` for lower-bound instances.
  size_t BitLength() const;

 private:
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static void DivModMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              std::vector<uint32_t>* quot,
                              std::vector<uint32_t>* rem);
  void Trim();

  // Little-endian 32-bit limbs; empty means zero. negative_ is false for zero.
  std::vector<uint32_t> limbs_;
  bool negative_ = false;
};

}  // namespace lplow

#endif  // LPLOW_NUMERIC_BIGINT_H_

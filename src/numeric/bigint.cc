#include "src/numeric/bigint.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace lplow {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
}  // namespace

BigInt::BigInt(int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Careful with INT64_MIN: negate in unsigned arithmetic.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffULL));
  if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  // Pre-condition: |a| >= |b|.
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  LPLOW_CHECK_EQ(borrow, 0);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::DivModMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             std::vector<uint32_t>* quot,
                             std::vector<uint32_t>* rem) {
  LPLOW_CHECK(!b.empty());
  quot->clear();
  rem->clear();
  if (CompareMagnitude(a, b) < 0) {
    *rem = a;
    return;
  }
  if (b.size() == 1) {
    // Short division by a single limb.
    uint64_t divisor = b[0];
    quot->assign(a.size(), 0);
    uint64_t r = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (r << 32) | a[i];
      (*quot)[i] = static_cast<uint32_t>(cur / divisor);
      r = cur % divisor;
    }
    while (!quot->empty() && quot->back() == 0) quot->pop_back();
    if (r) rem->push_back(static_cast<uint32_t>(r));
    return;
  }

  // Knuth Algorithm D. Normalize so that the top limb of the divisor has its
  // high bit set.
  int shift = 0;
  uint32_t top = b.back();
  while (!(top & 0x80000000u)) {
    top <<= 1;
    ++shift;
  }
  auto shl = [shift](const std::vector<uint32_t>& v) {
    if (shift == 0) return v;
    std::vector<uint32_t> out(v.size() + 1, 0);
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << shift;
      out[i + 1] = static_cast<uint32_t>(static_cast<uint64_t>(v[i]) >>
                                         (32 - shift));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  std::vector<uint32_t> u = shl(a);
  std::vector<uint32_t> v = shl(b);
  size_t n = v.size();
  size_t m = u.size() - n;
  u.push_back(0);  // u has m + n + 1 limbs.
  quot->assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    uint64_t numerator = (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / v[n - 1];
    uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kBase ||
           (n >= 2 && qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2]))) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(u[i + j]) -
                  static_cast<int64_t>(p & 0xffffffffULL) - borrow;
      if (t < 0) {
        t += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = static_cast<int64_t>(u[j + n]) - static_cast<int64_t>(carry) -
                borrow;
    if (t < 0) {
      // qhat was one too large: add back.
      t += static_cast<int64_t>(kBase);
      --qhat;
      uint64_t c2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t s = static_cast<uint64_t>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<uint32_t>(s & 0xffffffffULL);
        c2 = s >> 32;
      }
      t += static_cast<int64_t>(c2);
      t &= static_cast<int64_t>(kBase) - 1;
    }
    u[j + n] = static_cast<uint32_t>(t);
    (*quot)[j] = static_cast<uint32_t>(qhat);
  }
  while (!quot->empty() && quot->back() == 0) quot->pop_back();
  // Denormalize the remainder.
  u.resize(n);
  if (shift) {
    for (size_t i = 0; i < n; ++i) {
      uint32_t hi = (i + 1 < n) ? u[i + 1] : 0;
      u[i] = (u[i] >> shift) |
             static_cast<uint32_t>(static_cast<uint64_t>(hi) << (32 - shift));
    }
  }
  while (!u.empty() && u.back() == 0) u.pop_back();
  *rem = std::move(u);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  if (negative_ == o.negative_) {
    out.limbs_ = AddMagnitude(limbs_, o.limbs_);
    out.negative_ = negative_;
  } else {
    int cmp = CompareMagnitude(limbs_, o.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMagnitude(limbs_, o.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = SubMagnitude(o.limbs_, limbs_);
      out.negative_ = o.negative_;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  out.limbs_ = MulMagnitude(limbs_, o.limbs_);
  out.negative_ = !out.limbs_.empty() && (negative_ != o.negative_);
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quot,
                    BigInt* rem) {
  LPLOW_CHECK(!b.is_zero());
  BigInt q, r;
  DivModMagnitude(a.limbs_, b.limbs_, &q.limbs_, &r.limbs_);
  q.negative_ = !q.limbs_.empty() && (a.negative_ != b.negative_);
  r.negative_ = !r.limbs_.empty() && a.negative_;
  q.Trim();
  r.Trim();
  if (quot) *quot = std::move(q);
  if (rem) *rem = std::move(r);
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q;
  DivMod(*this, o, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt r;
  DivMod(*this, o, nullptr, &r);
  return r;
}

int BigInt::Compare(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, o.limbs_);
  return negative_ ? -mag : mag;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide by 1e9 and collect 9-digit chunks.
  std::vector<uint32_t> mag = limbs_;
  std::string out;
  while (!mag.empty()) {
    uint64_t r = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (r << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      r = cur % 1000000000ULL;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int i = 0; i < 9; ++i) {
      out.push_back(static_cast<char>('0' + r % 10));
      r /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

BigInt BigInt::FromString(const std::string& s) {
  BigInt out;
  LPLOW_CHECK(TryParse(s, &out));
  return out;
}

bool BigInt::TryParse(const std::string& s, BigInt* out) {
  *out = BigInt();
  size_t i = 0;
  bool neg = false;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    neg = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) return false;
  BigInt acc;
  const BigInt ten(10);
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    acc = acc * ten + BigInt(s[i] - '0');
  }
  if (neg && !acc.is_zero()) acc.negative_ = true;
  *out = std::move(acc);
  return true;
}

double BigInt::ToDouble() const {
  double out = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * static_cast<double>(kBase) + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  uint64_t mag = 0;
  if (limbs_.size() >= 1) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) return mag <= (1ULL << 63);
  return mag < (1ULL << 63);
}

int64_t BigInt::ToInt64() const {
  LPLOW_CHECK(FitsInt64());
  uint64_t mag = 0;
  if (limbs_.size() >= 1) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  return negative_ ? -static_cast<int64_t>(mag) : static_cast<int64_t>(mag);
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  size_t bits = (limbs_.size() - 1) * 32;
  uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

}  // namespace lplow

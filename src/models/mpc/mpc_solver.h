// Theorem 3: the MPC implementation of Algorithm 1.
//
// The iteration scheme (sample -> basis -> violator scan -> reweight, the
// eps-net success test, the Las Vegas fallback) lives in the shared engine
// (src/engine/refinement.h); this file is the MPC *transport*: machines
// hold the partitioned input plus local weights in engine::ConstraintStore
// and each Algorithm 1 step is simulated with tree-structured communication
// so no machine ever handles more than O~(lambda n^delta nu^2) bytes in a
// round:
//
//   1. converge-cast: subtree weight totals flow leaf->root   (depth rounds)
//   2. root draws the m-way multinomial split; per-subtree counts flow
//      root->leaf down the tree                                (depth rounds)
//   3. machines send their local draws directly to the root    (1 round;
//      root receives m constraints = the permitted O~(n^delta) load)
//   4. root solves the sample basis; the basis (plus the previous
//      iteration's success bit) is broadcast down the tree     (depth rounds)
//   5. converge-cast of (violator weight, count) totals        (depth rounds)
//
// With fanout n^delta the depth is O(1/delta) and the iteration count is
// O(nu r) with r = 1/delta, giving the O(nu/delta^2) rounds of Theorem 3.
//
// Concurrency: with MpcOptions::runtime.num_threads > 1 the per-machine
// phases of each round (reweighting, local totals, local draws, violator
// counts) run in parallel on a runtime::ThreadPool, per-machine violator
// scans route through the store's pool-aware bitmap scan, and the engine
// runs oversized sample bases as pool tasks. Each machine owns a forked RNG
// stream (Rng::ForkStream, seeded in machine order from the root seed) and
// writes to per-machine slots merged after the round barrier; the
// tree-structured communication itself stays on the driver thread in fixed
// order. Results and load accounting are bit-identical for every thread
// count.

#ifndef LPLOW_MODELS_MPC_MPC_SOLVER_H_
#define LPLOW_MODELS_MPC_MPC_SOLVER_H_

#include <cmath>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/core/sampling.h"
#include "src/engine/constraint_store.h"
#include "src/engine/refinement.h"
#include "src/models/mpc/mpc_runtime.h"
#include "src/runtime/metrics.h"
#include "src/runtime/site_executor.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {
namespace mpc {

struct MpcOptions {
  /// The paper's delta: load O~(n^delta), rounds O(nu/delta^2). The weight
  /// rate uses r = round(1/delta).
  double delta = 0.5;
  EpsNetConfig net;
  /// Machine count; 0 = automatic ceil(n^{1-delta}).
  size_t machines = 0;
  size_t max_iterations = 0;
  uint64_t seed = 0x3BCC0DEULL;
  /// Concurrent machine emulation; the default is the serial reference
  /// path. Results are bit-identical for every thread count.
  runtime::RuntimeOptions runtime;
};

struct MpcStats {
  size_t n = 0;
  size_t machines = 0;
  size_t fanout = 0;
  size_t tree_depth = 0;
  size_t sample_size = 0;
  size_t rounds = 0;
  size_t max_load_bytes = 0;
  size_t total_bytes = 0;
  size_t iterations = 0;
  size_t successful_iterations = 0;
  size_t sample_bytes = 0;  // Serialized bytes of all eps-net samples drawn.
  bool direct_solve = false;
  size_t threads = 1;
};

namespace internal {

/// Per-machine state.
template <LpTypeProblem P>
struct Machine {
  engine::ConstraintStore<typename P::Constraint> store;
  double subtree_weight = 0;  // Filled by the converge-cast.
  Rng rng;  // Per-machine stream: local draws are thread-count-invariant.
};

/// The MPC RefinementTransport: converge-cast weights, split the sample
/// down the tree, draw at the machines, scan violators with a broadcast +
/// converge-cast; reweighting is applied on the next success broadcast.
template <LpTypeProblem P>
class MpcTransport {
 public:
  using Constraint = typename P::Constraint;
  using Value = typename P::Value;

  MpcTransport(const P& problem, std::vector<Machine<P>>& mach,
               MpcRuntime& rt, runtime::SiteExecutor& exec, Rng& rng,
               const engine::RefinementPolicy& policy, MpcStats& stats)
      : problem_(problem),
        mach_(mach),
        rt_(rt),
        exec_(exec),
        rng_(rng),
        policy_(policy),
        st_(stats) {}

  Result<std::vector<Constraint>> NextSample() {
    const size_t machines = mach_.size();
    const size_t m = policy_.sample_size;

    // ---- (0/4 of previous iteration) broadcast basis + success decision
    // down the tree; machines apply the reweighting locally.
    if (pending_update_) {
      size_t bytes = BasisMsgBytes(pending_basis_);
      for (size_t d = 0; d < std::max<size_t>(st_.tree_depth, 1); ++d) {
        rt_.BeginRound();
        for (size_t i : rt_.MachinesAtDepth(d)) {
          for (size_t c : rt_.Children(i)) rt_.Send(i, c, bytes);
        }
        rt_.EndRound();
        if (st_.tree_depth == 0) break;
      }
      // Reweight against exactly the value each machine just scanned, so
      // the fused path reuses the scan bitmap (identical weights either
      // way).
      exec_.RunRound([&](size_t i) {
        mach_[i].store.View().ScaleViolatorsFused(
            problem_, pending_value_, policy_.rate, policy_.scan_options());
      });
      pending_update_ = false;
    }

    // ---- (1) weight converge-cast.
    total_weight_ = AggregateWeights();
    if (total_weight_ <= 0) return Status::Internal("zero total weight");

    // ---- (2) multinomial split down the tree. Each machine receives its
    // subtree's count from its parent and splits it among itself and its
    // children's subtrees.
    std::vector<size_t> draw(machines, 0);
    {
      std::vector<size_t> subtree_count(machines, 0);
      subtree_count[0] = m;
      for (size_t d = 0; d < std::max<size_t>(st_.tree_depth + 1, 1); ++d) {
        bool is_split_round = d < st_.tree_depth;
        if (is_split_round) rt_.BeginRound();
        for (size_t i : rt_.MachinesAtDepth(d)) {
          auto children = rt_.Children(i);
          // Weights: own items, then each child's subtree.
          std::vector<double> parts;
          parts.push_back(mach_[i].store.View().TotalWeight());
          for (size_t c : children) parts.push_back(mach_[c].subtree_weight);
          std::vector<size_t> split =
              MultinomialSplit(parts, subtree_count[i], &rng_);
          draw[i] = split[0];
          for (size_t ci = 0; ci < children.size(); ++ci) {
            subtree_count[children[ci]] = split[ci + 1];
            if (is_split_round) {
              rt_.Send(i, children[ci], 8);  // The count message.
            }
          }
        }
        if (is_split_round) rt_.EndRound();
      }
    }

    // ---- (3) machines ship their draws straight to the root. Machines
    // draw concurrently from their own RNG streams (Send accounting is
    // thread-safe); the root merges the draws in machine order at the
    // barrier, so the pooled sample is thread-count-invariant.
    rt_.BeginRound();
    std::vector<Constraint> sample;
    sample.reserve(m);
    std::vector<std::vector<Constraint>> local_draws(machines);
    exec_.RunRound([&](size_t i) {
      auto& mc = mach_[i];
      if (draw[i] == 0 || mc.store.empty()) return;
      // Local exact weighted draws with replacement (prefix + binary
      // search, zero draws when the local weight is zero).
      std::vector<size_t> picks = mc.store.View().SampleIndices(draw[i], &mc.rng);
      size_t bytes = 0;
      local_draws[i].reserve(picks.size());
      for (size_t pick : picks) {
        local_draws[i].push_back(mc.store.items()[pick]);
        bytes += problem_.ConstraintBytes(mc.store.items()[pick]);
      }
      if (i != 0 && bytes > 0) rt_.Send(i, 0, bytes);
    });
    rt_.EndRound();
    for (auto& draws : local_draws) {
      for (auto& c : draws) sample.push_back(std::move(c));
    }
    if (sample.empty()) return Status::Internal("empty MPC sample");
    return sample;
  }

  engine::ViolatorScan ScanViolators(
      const BasisResult<Value, Constraint>& basis) {
    const size_t machines = mach_.size();
    // Broadcast the basis for the violator count (depth rounds), then
    // converge-cast violator totals (depth rounds).
    {
      size_t bytes = BasisMsgBytes(basis.basis);
      for (size_t d = 0; d < st_.tree_depth; ++d) {
        rt_.BeginRound();
        for (size_t i : rt_.MachinesAtDepth(d)) {
          for (size_t c : rt_.Children(i)) rt_.Send(i, c, bytes);
        }
        rt_.EndRound();
      }
    }
    std::vector<double> vw(machines, 0);
    std::vector<size_t> vc(machines, 0);
    exec_.RunRound([&](size_t i) {
      engine::ViolatorStats local = mach_[i].store.View().ScanViolators(
          problem_, basis.value, policy_.scan_options());
      vw[i] = local.weight;
      vc[i] = static_cast<size_t>(local.count);
    });
    for (size_t d = st_.tree_depth; d-- > 0;) {
      rt_.BeginRound();
      for (size_t i : rt_.MachinesAtDepth(d + 1)) {
        rt_.Send(i, rt_.Parent(i), 16);
        vw[rt_.Parent(i)] += vw[i];
        vc[rt_.Parent(i)] += vc[i];
      }
      rt_.EndRound();
    }
    return engine::ViolatorScan{total_weight_, vw[0],
                                static_cast<uint64_t>(vc[0])};
  }

  void EndIteration(bool success, const BasisResult<Value, Constraint>& basis) {
    if (success) {
      pending_update_ = true;
      pending_basis_ = basis.basis;
      pending_value_ = basis.value;
    }
  }

  void OnTerminal() {}

  /// Las Vegas fallback: gather everything at the root (counted).
  std::vector<Constraint> GatherAll() {
    rt_.BeginRound();
    std::vector<Constraint> all;
    all.reserve(st_.n);
    for (size_t i = 0; i < mach_.size(); ++i) {
      size_t bytes = 0;
      for (const auto& c : mach_[i].store.items()) {
        all.push_back(c);
        bytes += problem_.ConstraintBytes(c);
      }
      if (i != 0 && bytes > 0) rt_.Send(i, 0, bytes);
    }
    rt_.EndRound();
    return all;
  }

  Status IterationCapStatus() {
    // Unreachable today (MpcOptions has no fallback_to_direct switch), but
    // keep the cost accounting intact like the coordinator's cap path does.
    st_.rounds = rt_.rounds();
    st_.max_load_bytes = rt_.max_load_bytes();
    st_.total_bytes = rt_.total_bytes();
    return Status::Internal("MPC iteration cap reached");
  }

  Result<BasisResult<Value, Constraint>> Finish(
      BasisResult<Value, Constraint> result) {
    st_.rounds = rt_.rounds();
    st_.max_load_bytes = rt_.max_load_bytes();
    st_.total_bytes = rt_.total_bytes();
    auto& metrics = runtime::MetricsRegistry::Global();
    metrics.GetCounter("mpc.rounds")->Increment(st_.rounds);
    metrics.GetCounter("mpc.bytes")->Increment(st_.total_bytes);
    metrics.GetCounter("mpc.iterations")->Increment(st_.iterations);
    return result;
  }

 private:
  // Converge-cast of one double per machine: leaf-to-root, depth rounds.
  // Local totals are computed concurrently; the tree accumulation runs on
  // the driver thread in fixed order.
  double AggregateWeights() {
    exec_.RunRound([&](size_t i) {
      mach_[i].subtree_weight = mach_[i].store.View().TotalWeight();
    });
    for (size_t d = st_.tree_depth; d-- > 0;) {
      rt_.BeginRound();
      for (size_t i : rt_.MachinesAtDepth(d + 1)) {
        rt_.Send(i, rt_.Parent(i), 8);
        mach_[rt_.Parent(i)].subtree_weight += mach_[i].subtree_weight;
      }
      rt_.EndRound();
    }
    return mach_[0].subtree_weight;
  }

  size_t BasisMsgBytes(const std::vector<Constraint>& basis) {
    size_t total = 2;  // success flag + size byte (approx; exact enough).
    for (const auto& c : basis) total += problem_.ConstraintBytes(c);
    return total;
  }

  const P& problem_;
  std::vector<Machine<P>>& mach_;
  MpcRuntime& rt_;
  runtime::SiteExecutor& exec_;
  Rng& rng_;
  const engine::RefinementPolicy& policy_;
  MpcStats& st_;
  double total_weight_ = 0;
  std::vector<Constraint> pending_basis_;  // Reweighting applied on broadcast.
  bool pending_update_ = false;
  Value pending_value_{};
};

}  // namespace internal

template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>> SolveMpc(
    const P& problem,
    std::vector<std::vector<typename P::Constraint>> partitions,
    const MpcOptions& options, MpcStats* stats) {
  using Constraint = typename P::Constraint;
  MpcStats local;
  MpcStats& st = stats ? *stats : local;
  st = MpcStats{};

  size_t n = 0;
  for (const auto& part : partitions) n += part.size();
  if (n == 0) return Status::InvalidArgument("empty input");
  st.n = n;

  LPLOW_CHECK_GT(options.delta, 0.0);
  LPLOW_CHECK_LE(options.delta, 1.0);
  const int r = std::max(1, static_cast<int>(std::lround(1.0 / options.delta)));
  const size_t nu = problem.CombinatorialDimension();

  const double dn = static_cast<double>(n);
  size_t machines = options.machines
                        ? options.machines
                        : static_cast<size_t>(
                              std::ceil(std::pow(dn, 1.0 - options.delta)));
  machines = std::max<size_t>(machines, 1);
  const size_t fanout = std::max<size_t>(
      2, static_cast<size_t>(std::ceil(std::pow(dn, options.delta))));
  st.machines = machines;
  st.fanout = fanout;

  MpcRuntime rt(machines, fanout);
  st.tree_depth = rt.TreeDepth();

  // Distribute partitions onto machines (pad or fold as needed).
  std::vector<std::vector<Constraint>> mach_constraints(machines);
  for (size_t i = 0; i < partitions.size(); ++i) {
    auto& dst = mach_constraints[i % machines];
    for (auto& c : partitions[i]) dst.push_back(std::move(c));
  }
  std::vector<internal::Machine<P>> mach(machines);
  for (size_t i = 0; i < machines; ++i) {
    mach[i].store = engine::ConstraintStore<Constraint>(
        std::move(mach_constraints[i]));
  }

  Rng rng(options.seed);
  // Machine-order forks: machine i's local draws come from its own stream,
  // so the draw sequence does not depend on execution interleaving.
  for (size_t i = 0; i < machines; ++i) mach[i].rng = rng.ForkStream(i);

  std::unique_ptr<runtime::ThreadPool> owned_pool;
  runtime::ThreadPool* pool = runtime::ResolvePool(options.runtime, &owned_pool);
  runtime::SiteExecutor exec(pool, machines);
  st.threads = exec.threads();

  auto& metrics = runtime::MetricsRegistry::Global();
  metrics.GetCounter("mpc.solves")->Increment();
  runtime::ScopedTimer solve_timer(metrics.GetTimer("mpc.solve_seconds"));

  engine::RefinementPolicy policy =
      engine::MakePolicy(problem, n, r, options.net);
  policy.max_iterations =
      options.max_iterations
          ? options.max_iterations
          : ClarksonIterationCap(nu, static_cast<int>(1.0 / options.delta) + 1);
  policy.name = "SolveMpc";
  policy.pool = pool;
  engine::ApplyRuntimeOptions(policy, options.runtime, options.seed);
  st.sample_size = policy.sample_size;

  internal::MpcTransport<P> transport(problem, mach, rt, exec, rng, policy,
                                      st);
  engine::IterationCounters counters{&st.iterations,
                                     &st.successful_iterations,
                                     &st.direct_solve, &st.sample_bytes};
  return engine::RunRefinement(problem, transport, policy, counters);
}

}  // namespace mpc
}  // namespace lplow

#endif  // LPLOW_MODELS_MPC_MPC_SOLVER_H_

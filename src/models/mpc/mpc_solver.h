// Theorem 3: the MPC implementation of Algorithm 1.
//
// Machines hold the partitioned input plus local weights. Each iteration of
// Algorithm 1 is simulated with tree-structured communication so no machine
// ever handles more than O~(lambda n^delta nu^2) bytes in a round:
//
//   1. converge-cast: subtree weight totals flow leaf->root   (depth rounds)
//   2. root draws the m-way multinomial split; per-subtree counts flow
//      root->leaf down the tree                                (depth rounds)
//   3. machines send their local draws directly to the root    (1 round;
//      root receives m constraints = the permitted O~(n^delta) load)
//   4. root solves the sample basis; the basis (plus the previous
//      iteration's success bit) is broadcast down the tree     (depth rounds)
//   5. converge-cast of (violator weight, count) totals        (depth rounds)
//
// With fanout n^delta the depth is O(1/delta) and the iteration count is
// O(nu r) with r = 1/delta, giving the O(nu/delta^2) rounds of Theorem 3.
//
// Concurrency: with MpcOptions::runtime.num_threads > 1 the per-machine
// phases of each round (reweighting, local totals, local draws, violator
// counts) run in parallel on a runtime::ThreadPool. Each machine owns a
// forked RNG stream (seeded in machine order from the root seed) and writes
// to per-machine slots merged after the round barrier; the tree-structured
// communication itself stays on the driver thread in fixed order. Results
// and load accounting are bit-identical for every thread count.

#ifndef LPLOW_MODELS_MPC_MPC_SOLVER_H_
#define LPLOW_MODELS_MPC_MPC_SOLVER_H_

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/core/sampling.h"
#include "src/models/mpc/mpc_runtime.h"
#include "src/runtime/metrics.h"
#include "src/runtime/site_executor.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {
namespace mpc {

struct MpcOptions {
  /// The paper's delta: load O~(n^delta), rounds O(nu/delta^2). The weight
  /// rate uses r = round(1/delta).
  double delta = 0.5;
  EpsNetConfig net;
  /// Machine count; 0 = automatic ceil(n^{1-delta}).
  size_t machines = 0;
  size_t max_iterations = 0;
  uint64_t seed = 0x3BCC0DEULL;
  /// Concurrent machine emulation; the default is the serial reference
  /// path. Results are bit-identical for every thread count.
  runtime::RuntimeOptions runtime;
};

struct MpcStats {
  size_t n = 0;
  size_t machines = 0;
  size_t fanout = 0;
  size_t tree_depth = 0;
  size_t sample_size = 0;
  size_t rounds = 0;
  size_t max_load_bytes = 0;
  size_t total_bytes = 0;
  size_t iterations = 0;
  size_t successful_iterations = 0;
  bool direct_solve = false;
  size_t threads = 1;
};

namespace internal {

/// Per-machine state.
template <LpTypeProblem P>
struct Machine {
  std::vector<typename P::Constraint> constraints;
  std::vector<double> weights;
  double subtree_weight = 0;  // Filled by the converge-cast.
  Rng rng;  // Per-machine stream: local draws are thread-count-invariant.
};

}  // namespace internal

template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>> SolveMpc(
    const P& problem,
    std::vector<std::vector<typename P::Constraint>> partitions,
    const MpcOptions& options, MpcStats* stats) {
  using Constraint = typename P::Constraint;
  using Value = typename P::Value;
  MpcStats local;
  MpcStats& st = stats ? *stats : local;
  st = MpcStats{};

  size_t n = 0;
  for (const auto& part : partitions) n += part.size();
  if (n == 0) return Status::InvalidArgument("empty input");
  st.n = n;

  LPLOW_CHECK_GT(options.delta, 0.0);
  LPLOW_CHECK_LE(options.delta, 1.0);
  const int r = std::max(1, static_cast<int>(std::lround(1.0 / options.delta)));
  const size_t nu = problem.CombinatorialDimension();
  const size_t lambda = problem.VcDimension();
  const double eps = AlgorithmEpsilon(nu, n, r);
  const double rate = WeightIncreaseRate(n, r);
  const size_t m = EpsNetSampleSize(eps, lambda, options.net, nu + 1, n);
  st.sample_size = m;

  const double dn = static_cast<double>(n);
  size_t machines = options.machines
                        ? options.machines
                        : static_cast<size_t>(
                              std::ceil(std::pow(dn, 1.0 - options.delta)));
  machines = std::max<size_t>(machines, 1);
  const size_t fanout = std::max<size_t>(
      2, static_cast<size_t>(std::ceil(std::pow(dn, options.delta))));
  st.machines = machines;
  st.fanout = fanout;

  MpcRuntime rt(machines, fanout);
  st.tree_depth = rt.TreeDepth();

  // Distribute partitions onto machines (pad or fold as needed).
  std::vector<internal::Machine<P>> mach(machines);
  for (size_t i = 0; i < partitions.size(); ++i) {
    auto& dst = mach[i % machines];
    for (auto& c : partitions[i]) dst.constraints.push_back(std::move(c));
  }
  for (auto& mc : mach) mc.weights.assign(mc.constraints.size(), 1.0);

  Rng rng(options.seed);
  // Machine-order forks: machine i's local draws come from its own stream,
  // so the draw sequence does not depend on execution interleaving.
  for (auto& mc : mach) mc.rng = rng.Fork();

  std::unique_ptr<runtime::ThreadPool> owned_pool;
  runtime::ThreadPool* pool = runtime::ResolvePool(options.runtime, &owned_pool);
  runtime::SiteExecutor exec(pool, machines);
  st.threads = exec.threads();

  auto& metrics = runtime::MetricsRegistry::Global();
  metrics.GetCounter("mpc.solves")->Increment();
  runtime::ScopedTimer solve_timer(metrics.GetTimer("mpc.solve_seconds"));

  const size_t max_iters =
      options.max_iterations
          ? options.max_iterations
          : ClarksonIterationCap(nu, static_cast<int>(1.0 / options.delta) + 1);

  auto finish = [&](BasisResult<Value, Constraint> result)
      -> Result<BasisResult<Value, Constraint>> {
    st.rounds = rt.rounds();
    st.max_load_bytes = rt.max_load_bytes();
    st.total_bytes = rt.total_bytes();
    metrics.GetCounter("mpc.rounds")->Increment(st.rounds);
    metrics.GetCounter("mpc.bytes")->Increment(st.total_bytes);
    metrics.GetCounter("mpc.iterations")->Increment(st.iterations);
    return result;
  };

  auto basis_msg_bytes = [&](const std::vector<Constraint>& basis) {
    size_t total = 2;  // success flag + size byte (approx; exact enough).
    for (const auto& c : basis) total += problem.ConstraintBytes(c);
    return total;
  };

  // Converge-cast of one double per machine: leaf-to-root, depth rounds.
  // Local totals are computed concurrently; the tree accumulation runs on
  // the driver thread in fixed order.
  auto aggregate_weights = [&]() {
    exec.RunRound([&](size_t i) {
      auto& mc = mach[i];
      mc.subtree_weight = 0;
      for (double w : mc.weights) mc.subtree_weight += w;
    });
    for (size_t d = st.tree_depth; d-- > 0;) {
      rt.BeginRound();
      for (size_t i : rt.MachinesAtDepth(d + 1)) {
        rt.Send(i, rt.Parent(i), 8);
        mach[rt.Parent(i)].subtree_weight += mach[i].subtree_weight;
      }
      rt.EndRound();
    }
    return mach[0].subtree_weight;
  };

  std::vector<Constraint> pending_basis;  // Reweighting applied on broadcast.
  bool pending_update = false;
  Value pending_value{};

  for (size_t iter = 0; iter < max_iters; ++iter) {
    ++st.iterations;

    // ---- (0/4 of previous iteration) broadcast basis + success decision
    // down the tree; machines apply the reweighting locally.
    if (pending_update) {
      size_t bytes = basis_msg_bytes(pending_basis);
      for (size_t d = 0; d < std::max<size_t>(st.tree_depth, 1); ++d) {
        rt.BeginRound();
        for (size_t i : rt.MachinesAtDepth(d)) {
          for (size_t c : rt.Children(i)) rt.Send(i, c, bytes);
        }
        rt.EndRound();
        if (st.tree_depth == 0) break;
      }
      exec.RunRound([&](size_t i) {
        auto& mc = mach[i];
        for (size_t j = 0; j < mc.constraints.size(); ++j) {
          if (problem.Violates(pending_value, mc.constraints[j])) {
            mc.weights[j] *= rate;
          }
        }
      });
      pending_update = false;
    }

    // ---- (1) weight converge-cast.
    double total_weight = aggregate_weights();
    if (total_weight <= 0) return Status::Internal("zero total weight");

    // ---- (2) multinomial split down the tree. Each machine receives its
    // subtree's count from its parent and splits it among itself and its
    // children's subtrees.
    std::vector<size_t> draw(machines, 0);
    {
      std::vector<size_t> subtree_count(machines, 0);
      subtree_count[0] = m;
      for (size_t d = 0; d < std::max<size_t>(st.tree_depth + 1, 1); ++d) {
        bool is_split_round = d < st.tree_depth;
        if (is_split_round) rt.BeginRound();
        for (size_t i : rt.MachinesAtDepth(d)) {
          auto children = rt.Children(i);
          // Weights: own items, then each child's subtree.
          std::vector<double> parts;
          double own = 0;
          for (double w : mach[i].weights) own += w;
          parts.push_back(own);
          for (size_t c : children) parts.push_back(mach[c].subtree_weight);
          std::vector<size_t> split =
              MultinomialSplit(parts, subtree_count[i], &rng);
          draw[i] = split[0];
          for (size_t ci = 0; ci < children.size(); ++ci) {
            subtree_count[children[ci]] = split[ci + 1];
            if (is_split_round) {
              rt.Send(i, children[ci], 8);  // The count message.
            }
          }
        }
        if (is_split_round) rt.EndRound();
      }
    }

    // ---- (3) machines ship their draws straight to the root. Machines
    // draw concurrently from their own RNG streams (Send accounting is
    // thread-safe); the root merges the draws in machine order at the
    // barrier, so the pooled sample is thread-count-invariant.
    rt.BeginRound();
    std::vector<Constraint> sample;
    sample.reserve(m);
    std::vector<std::vector<Constraint>> local_draws(machines);
    exec.RunRound([&](size_t i) {
      if (draw[i] == 0 || mach[i].constraints.empty()) return;
      size_t bytes = 0;
      // Local exact weighted draws with replacement (prefix + binary search).
      std::vector<double> prefix(mach[i].weights.size());
      double acc = 0;
      for (size_t j = 0; j < mach[i].weights.size(); ++j) {
        acc += mach[i].weights[j];
        prefix[j] = acc;
      }
      if (acc <= 0) return;
      local_draws[i].reserve(draw[i]);
      for (size_t s = 0; s < draw[i]; ++s) {
        double target = mach[i].rng.UniformDouble() * acc;
        size_t pick =
            std::lower_bound(prefix.begin(), prefix.end(), target) -
            prefix.begin();
        if (pick >= prefix.size()) pick = prefix.size() - 1;
        local_draws[i].push_back(mach[i].constraints[pick]);
        bytes += problem.ConstraintBytes(mach[i].constraints[pick]);
      }
      if (i != 0 && bytes > 0) rt.Send(i, 0, bytes);
    });
    rt.EndRound();
    for (auto& draws : local_draws) {
      for (auto& c : draws) sample.push_back(std::move(c));
    }
    if (sample.empty()) return Status::Internal("empty MPC sample");

    // ---- (4) root solves the sample.
    auto basis = problem.SolveBasis(
        std::span<const Constraint>(sample.data(), sample.size()));

    // Broadcast the basis for the violator count (depth rounds), then
    // converge-cast violator totals (depth rounds).
    {
      size_t bytes = basis_msg_bytes(basis.basis);
      for (size_t d = 0; d < st.tree_depth; ++d) {
        rt.BeginRound();
        for (size_t i : rt.MachinesAtDepth(d)) {
          for (size_t c : rt.Children(i)) rt.Send(i, c, bytes);
        }
        rt.EndRound();
      }
    }
    double violator_weight = 0;
    size_t violator_count = 0;
    {
      std::vector<double> vw(machines, 0);
      std::vector<size_t> vc(machines, 0);
      exec.RunRound([&](size_t i) {
        for (size_t j = 0; j < mach[i].constraints.size(); ++j) {
          if (problem.Violates(basis.value, mach[i].constraints[j])) {
            vw[i] += mach[i].weights[j];
            ++vc[i];
          }
        }
      });
      for (size_t d = st.tree_depth; d-- > 0;) {
        rt.BeginRound();
        for (size_t i : rt.MachinesAtDepth(d + 1)) {
          rt.Send(i, rt.Parent(i), 16);
          vw[rt.Parent(i)] += vw[i];
          vc[rt.Parent(i)] += vc[i];
        }
        rt.EndRound();
      }
      violator_weight = vw[0];
      violator_count = vc[0];
    }

    if (violator_count == 0) {
      ++st.successful_iterations;  // Vacuous eps-net success.
      return finish(std::move(basis));
    }

    if (violator_weight <= eps * total_weight) {
      ++st.successful_iterations;
      pending_update = true;
      pending_basis = basis.basis;
      pending_value = basis.value;
    }
  }

  // Las Vegas fallback: gather everything at the root (counted) and solve.
  LPLOW_LOG(kWarning) << "SolveMpc hit iteration cap; direct fallback";
  rt.BeginRound();
  std::vector<Constraint> all;
  all.reserve(n);
  for (size_t i = 0; i < machines; ++i) {
    size_t bytes = 0;
    for (const auto& c : mach[i].constraints) {
      all.push_back(c);
      bytes += problem.ConstraintBytes(c);
    }
    if (i != 0 && bytes > 0) rt.Send(i, 0, bytes);
  }
  rt.EndRound();
  st.direct_solve = true;
  return finish(problem.SolveBasis(std::span<const Constraint>(all)));
}

}  // namespace mpc
}  // namespace lplow

#endif  // LPLOW_MODELS_MPC_MPC_SOLVER_H_

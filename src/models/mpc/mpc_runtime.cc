#include "src/models/mpc/mpc_runtime.h"

namespace lplow {
namespace mpc {

std::vector<size_t> MpcRuntime::MachinesAtDepth(size_t d) const {
  // Depth of machine i in the (1-indexed shifted) fanout-ary heap layout.
  std::vector<size_t> out;
  for (size_t i = 0; i < machines_; ++i) {
    size_t depth = 0;
    size_t j = i;
    while (j > 0) {
      j = (j - 1) / fanout_;
      ++depth;
    }
    if (depth == d) out.push_back(i);
  }
  return out;
}

}  // namespace mpc
}  // namespace lplow

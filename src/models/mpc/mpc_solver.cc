// SolveMpc is a header template (mpc_solver.h).

#include "src/models/mpc/mpc_solver.h"

namespace lplow {
namespace mpc {
// (Intentionally empty.)
}  // namespace mpc
}  // namespace lplow

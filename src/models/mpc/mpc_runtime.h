// The MPC (massively parallel computation) runtime: M machines exchanging
// serialized messages in synchronous rounds. The cost measure is the maximum
// load — bytes sent or received by any single machine in any round (paper
// Section 1, "load"), tracked per round by this runtime.
//
// Tree topology helpers implement the standard O(1/delta)-round broadcast and
// converge-cast of Goodrich-Sitchinava-Zhang [23] with fan-out ~ n^delta:
// machine 0 is the root, machine i's parent is (i-1)/fanout.
//
// Thread safety: Send may be called concurrently within a round (the
// runtime::SiteExecutor emulates the machines of one round in parallel);
// the load/byte/message counters are relaxed atomics, so totals and the
// per-round load vector are order-independent sums — identical to the serial
// path for every thread count. BeginRound/EndRound and the accessors belong
// to the driver thread, between round barriers.

#ifndef LPLOW_MODELS_MPC_MPC_RUNTIME_H_
#define LPLOW_MODELS_MPC_MPC_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/util/bit_stream.h"
#include "src/util/logging.h"

namespace lplow {
namespace mpc {

using Message = std::vector<uint8_t>;

/// Per-round load accounting over M machines.
class MpcRuntime {
 public:
  explicit MpcRuntime(size_t machines, size_t fanout)
      : machines_(machines), fanout_(fanout), round_load_(machines) {
    LPLOW_CHECK_GE(machines, 1u);
    LPLOW_CHECK_GE(fanout, 2u);
  }

  /// Starts a new round; per-machine round loads reset.
  void BeginRound() {
    ++rounds_;
    for (auto& load : round_load_) load.store(0, std::memory_order_relaxed);
  }

  /// Records msg_bytes flowing from machine `from` to machine `to` in the
  /// current round (both endpoints are charged, per the model's definition
  /// of load as information sent or received).
  void Send(size_t from, size_t to, size_t msg_bytes) {
    LPLOW_CHECK_LT(from, machines_);
    LPLOW_CHECK_LT(to, machines_);
    round_load_[from].fetch_add(msg_bytes, std::memory_order_relaxed);
    round_load_[to].fetch_add(msg_bytes, std::memory_order_relaxed);
    total_bytes_.fetch_add(msg_bytes, std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Call at the end of each round to fold the round loads into the maximum.
  void EndRound() {
    for (const auto& load : round_load_) {
      max_load_ = std::max(max_load_, load.load(std::memory_order_relaxed));
    }
  }

  // --- tree topology -------------------------------------------------------
  size_t Parent(size_t machine) const {
    LPLOW_CHECK_GT(machine, 0u);
    return (machine - 1) / fanout_;
  }
  std::vector<size_t> Children(size_t machine) const {
    std::vector<size_t> out;
    for (size_t c = machine * fanout_ + 1;
         c <= machine * fanout_ + fanout_ && c < machines_; ++c) {
      out.push_back(c);
    }
    return out;
  }
  /// Depth of the fanout-ary machine tree (root depth 0).
  size_t TreeDepth() const {
    size_t depth = 0;
    size_t covered = 1;
    size_t frontier = 1;
    while (covered < machines_) {
      frontier *= fanout_;
      covered += frontier;
      ++depth;
    }
    return depth;
  }
  /// Machines at depth exactly `d`, in index order.
  std::vector<size_t> MachinesAtDepth(size_t d) const;

  size_t machines() const { return machines_; }
  size_t fanout() const { return fanout_; }
  size_t rounds() const { return rounds_; }
  size_t max_load_bytes() const { return max_load_; }
  size_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  size_t messages() const { return messages_.load(std::memory_order_relaxed); }

 private:
  size_t machines_;
  size_t fanout_;
  size_t rounds_ = 0;
  std::atomic<size_t> messages_{0};
  std::atomic<size_t> total_bytes_{0};
  size_t max_load_ = 0;
  std::vector<std::atomic<size_t>> round_load_;
};

}  // namespace mpc
}  // namespace lplow

#endif  // LPLOW_MODELS_MPC_MPC_RUNTIME_H_

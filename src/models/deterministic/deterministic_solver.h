// The fourth model: a sampling-free, fully deterministic merge-and-reduce
// implementation of the paper's iterative-refinement scheme.
//
// The three protocol models of Theorems 1-3 draw their eps-net samples at
// random; this solver replaces the random draw with a deterministic
// merge-and-reduce selection and the success-gated reweighting with a
// deterministic every-iteration reweighting, while the loop itself
// (sample -> basis -> violator scan -> reweight, terminal exit, Las Vegas
// iteration-cap fallback) still runs unchanged in the shared engine
// (engine::RunRefinement, src/engine/refinement.h). It is the natural
// RNG-free baseline for the randomized bounds: identical loop, identical
// policy formulas, zero random bits.
//
// One iteration of the deterministic transport:
//
//   merge:  each block ships its locally heaviest min(m, |block|)
//           constraints to the driver (ties broken by ascending index);
//           the driver keeps the globally heaviest m, merged in
//           (weight desc, block asc, index asc) order.
//   reduce: the engine solves the basis of (previous basis + merged
//           candidates) and broadcasts it for the violator scan.
//   reweight: EVERY non-terminal iteration multiplies violator weights by
//           the paper rate n^{1/r}, saturating at kDeterministicWeightCeiling
//           so the unbounded update count cannot overflow double.
//
// Why this terminates (and is exact): the sample always contains the
// previous basis, so f(basis(sample)) never decreases (LP-type
// monotonicity). While f stalls, the violators of the stalled value gain
// weight geometrically and non-violators do not, so some violator
// eventually enters the global top-m — and a sampled violator forces a
// strict f increase (Property (P2)). f takes finitely many values, so the
// loop reaches the zero-violator terminal, where f(B) = f(S) exactly
// (Lemma 3.1). The engine's Las Vegas fallback additionally covers the
// (saturation-tie) corner where a stall could outlive the iteration cap.
//
// Determinism: there is no DeterministicOptions::seed — the model consumes
// ZERO random bits. Candidate selection, merges, scans, and reweighting are
// all fixed-order, so the transcript (basis bytes, iteration counts, byte
// counters) is bit-identical across reruns, thread counts, shard counts,
// and solve backends (tests/deterministic_test.cc,
// tests/engine_equivalence_test.cc, tests/sharded_service_test.cc).
//
// Concurrency: per-block candidate selection, violator scans, and
// reweighting run as runtime::SiteExecutor rounds (block-local scans route
// through ConstraintView's pool-aware bitmap scan), and the engine
// dispatches oversized sample bases and the fallback solve through the
// runtime::SolveBackend seam — exactly like the three randomized models.

#ifndef LPLOW_MODELS_DETERMINISTIC_DETERMINISTIC_SOLVER_H_
#define LPLOW_MODELS_DETERMINISTIC_DETERMINISTIC_SOLVER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/engine/constraint_store.h"
#include "src/engine/refinement.h"
#include "src/runtime/metrics.h"
#include "src/runtime/site_executor.h"
#include "src/runtime/thread_pool.h"
#include "src/util/status.h"

namespace lplow {
namespace det {

/// Violator weights saturate here instead of overflowing double: the
/// deterministic discipline reweights every iteration, so rate^iterations
/// can exceed DBL_MAX long before the iteration cap. Saturated violators
/// remain the global weight maximum, which is all the top-by-weight merge
/// needs for progress.
inline constexpr double kDeterministicWeightCeiling = 1e280;

/// Routing-key base for the engine's SolveBackend dispatches. The model has
/// no seed, so the base is a fixed constant — routing affects only *where*
/// a solve runs, never its result.
inline constexpr uint64_t kDeterministicJobId = 0xDE7E12317AC0DE5ULL;

struct DeterministicOptions {
  /// The paper's r: reweighting rate n^{1/r}; the merge window m uses the
  /// same eps-net size formula as the randomized models (the natural
  /// like-for-like comparison point).
  int r = 2;
  EpsNetConfig net;
  /// Iteration cap; 0 = automatic (ClarksonIterationCap).
  size_t max_iterations = 0;
  /// On hitting the cap: gather everything and solve directly (Las Vegas,
  /// default) or return Status::ResourceExhausted — there is no sampling to
  /// blame, the merge schedule simply ran out of iteration budget.
  bool fallback_to_direct = true;
  /// Deliberately NO seed field: the model draws zero random bits, so there
  /// is nothing to seed. Reruns are bit-identical by construction.
  runtime::RuntimeOptions runtime;
};

struct DeterministicStats {
  size_t n = 0;
  size_t blocks = 0;
  size_t sample_size = 0;        // The merge window m.
  size_t merge_rounds = 0;       // SiteExecutor rounds run.
  size_t candidate_bytes = 0;    // Upward: serialized candidate traffic.
  size_t broadcast_bytes = 0;    // Downward: basis broadcasts to blocks.
  size_t iterations = 0;
  size_t successful_iterations = 0;
  size_t sample_bytes = 0;  // Serialized bytes of all merge samples formed.
  bool direct_solve = false;
  size_t threads = 1;
};

namespace internal {

/// Indices of the `count` heaviest items of `view`, ties broken by
/// ascending index — the block-local half of the merge. Selection is
/// serial within the block (blocks run concurrently), so it is independent
/// of thread count by construction.
template <typename C>
std::vector<size_t> TopWeightIndices(const engine::ConstraintView<C>& view,
                                     size_t count) {
  std::vector<size_t> idx(view.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const size_t keep = std::min(count, idx.size());
  auto heavier = [&](size_t a, size_t b) {
    double wa = view.weight(a), wb = view.weight(b);
    return wa > wb || (wa == wb && a < b);
  };
  std::partial_sort(idx.begin(), idx.begin() + keep, idx.end(), heavier);
  idx.resize(keep);
  return idx;
}

/// The deterministic RefinementTransport: merge-and-reduce candidate
/// selection in place of the random eps-net draw, every-iteration
/// saturating reweighting in place of the success-gated one.
template <LpTypeProblem P>
class DeterministicTransport {
 public:
  using Constraint = typename P::Constraint;
  using Value = typename P::Value;

  DeterministicTransport(const P& problem,
                         std::vector<engine::ConstraintStore<Constraint>>& blocks,
                         runtime::SiteExecutor& exec,
                         const engine::RefinementPolicy& policy,
                         DeterministicStats& stats)
      : problem_(problem),
        blocks_(blocks),
        exec_(exec),
        policy_(policy),
        st_(stats) {}

  Result<std::vector<Constraint>> NextSample() {
    const size_t b = blocks_.size();
    const size_t m = policy_.sample_size;

    // --- merge round: block-local top-min(m, |block|) selection, run
    // concurrently into per-block slots.
    std::vector<std::vector<size_t>> local(b);
    exec_.RunRound([&](size_t i) {
      local[i] = TopWeightIndices(blocks_[i].View(), m);
    });

    // --- driver-side reduce: global top-m in (weight desc, block asc,
    // index asc) order. Candidates are "shipped" to the driver, so their
    // serialized size is the model's upward communication.
    struct Candidate {
      double weight;
      size_t block;
      size_t index;
    };
    std::vector<Candidate> candidates;
    for (size_t i = 0; i < b; ++i) {
      auto view = blocks_[i].View();
      for (size_t index : local[i]) {
        candidates.push_back(Candidate{view.weight(index), i, index});
        st_.candidate_bytes +=
            problem_.ConstraintBytes(blocks_[i].items()[index]);
      }
    }
    if (candidates.empty()) {
      return Status::Internal("empty deterministic merge");
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& c) {
                if (a.weight != c.weight) return a.weight > c.weight;
                if (a.block != c.block) return a.block < c.block;
                return a.index < c.index;
              });

    // The sample always contains the previous basis: monotone f, the crux
    // of the termination argument in the header comment.
    std::vector<Constraint> sample;
    sample.reserve(carry_basis_.size() + std::min(m, candidates.size()));
    for (const auto& c : carry_basis_) sample.push_back(c);
    for (size_t s = 0; s < candidates.size() && s < m; ++s) {
      sample.push_back(blocks_[candidates[s].block].items()[candidates[s].index]);
    }
    return sample;
  }

  engine::ViolatorScan ScanViolators(
      const BasisResult<Value, Constraint>& basis) {
    const size_t b = blocks_.size();
    // The basis is broadcast to every block for the scan (and reused by the
    // reweight round, like the coordinator's R3 value cache).
    st_.broadcast_bytes += b * BasisBytes(basis.basis);
    std::vector<double> total(b, 0), violating(b, 0);
    std::vector<uint64_t> counts(b, 0);
    exec_.RunRound([&](size_t i) {
      auto view = blocks_[i].View();
      total[i] = view.TotalWeight();
      engine::ViolatorStats local =
          view.ScanViolators(problem_, basis.value, policy_.scan_options());
      violating[i] = local.weight;
      counts[i] = local.count;
    });
    // Accumulate in block order: floating-point summation order is part of
    // the determinism guarantee.
    engine::ViolatorScan scan;
    for (size_t i = 0; i < b; ++i) {
      scan.total_weight += total[i];
      scan.violator_weight += violating[i];
      scan.violator_count += counts[i];
    }
    return scan;
  }

  void EndIteration(bool /*success*/, const BasisResult<Value, Constraint>& basis) {
    // Deterministic-reweighting discipline: every non-terminal iteration
    // reweights its violators, success or not — the eps-net success test is
    // telemetry here, not a gate. Progress during an f stall comes exactly
    // from this unconditional update (header comment).
    carry_basis_ = basis.basis;
    // Same value as the scan above, so the fused path reuses each block's
    // scan bitmap (identical weights either way).
    exec_.RunRound([&](size_t i) {
      blocks_[i].View().ScaleViolatorsFused(problem_, basis.value,
                                            policy_.rate,
                                            policy_.scan_options(),
                                            kDeterministicWeightCeiling);
    });
  }

  void OnTerminal() {}

  /// Las Vegas fallback: every block ships everything (counted as candidate
  /// traffic), merged in block order.
  std::vector<Constraint> GatherAll() {
    std::vector<Constraint> all;
    for (auto& block : blocks_) {
      for (const auto& c : block.items()) {
        st_.candidate_bytes += problem_.ConstraintBytes(c);
        all.push_back(c);
      }
    }
    return all;
  }

  Status IterationCapStatus() {
    st_.merge_rounds = exec_.rounds_run();
    return Status::ResourceExhausted("deterministic iteration cap reached");
  }

  Result<BasisResult<Value, Constraint>> Finish(
      BasisResult<Value, Constraint> result) {
    st_.merge_rounds = exec_.rounds_run();
    auto& metrics = runtime::MetricsRegistry::Global();
    metrics.GetCounter("deterministic.iterations")->Increment(st_.iterations);
    metrics.GetCounter("deterministic.candidate_bytes")
        ->Increment(st_.candidate_bytes);
    return result;
  }

 private:
  size_t BasisBytes(const std::vector<Constraint>& basis) {
    size_t total = 0;
    for (const auto& c : basis) total += problem_.ConstraintBytes(c);
    return total;
  }

  const P& problem_;
  std::vector<engine::ConstraintStore<Constraint>>& blocks_;
  runtime::SiteExecutor& exec_;
  const engine::RefinementPolicy& policy_;
  DeterministicStats& st_;
  // Previous iteration's basis, carried into the next sample.
  std::vector<Constraint> carry_basis_;
};

}  // namespace internal

template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>>
SolveDeterministic(const P& problem,
                   std::vector<std::vector<typename P::Constraint>> partitions,
                   const DeterministicOptions& options,
                   DeterministicStats* stats) {
  using Constraint = typename P::Constraint;
  DeterministicStats local;
  DeterministicStats& st = stats ? *stats : local;
  st = DeterministicStats{};

  const size_t b = partitions.size();
  if (b == 0) return Status::InvalidArgument("no blocks");
  size_t n = 0;
  for (const auto& part : partitions) n += part.size();
  if (n == 0) return Status::InvalidArgument("empty input");
  st.n = n;
  st.blocks = b;
  const size_t nu = problem.CombinatorialDimension();

  std::unique_ptr<runtime::ThreadPool> owned_pool;
  runtime::ThreadPool* pool = runtime::ResolvePool(options.runtime, &owned_pool);
  runtime::SiteExecutor exec(pool, b);
  st.threads = exec.threads();

  auto& metrics = runtime::MetricsRegistry::Global();
  metrics.GetCounter("deterministic.solves")->Increment();
  runtime::ScopedTimer solve_timer(
      metrics.GetTimer("deterministic.solve_seconds"));

  engine::RefinementPolicy policy =
      engine::MakePolicy(problem, n, options.r, options.net);
  policy.max_iterations = options.max_iterations
                              ? options.max_iterations
                              : ClarksonIterationCap(nu, options.r);
  policy.fallback_to_direct = options.fallback_to_direct;
  policy.name = "SolveDeterministic";
  policy.pool = pool;
  engine::ApplyRuntimeOptions(policy, options.runtime, kDeterministicJobId);
  st.sample_size = policy.sample_size;

  std::vector<engine::ConstraintStore<Constraint>> blocks;
  blocks.reserve(b);
  for (auto& part : partitions) {
    blocks.emplace_back(std::move(part));
  }

  internal::DeterministicTransport<P> transport(problem, blocks, exec, policy,
                                                st);

  if (n <= policy.sample_size || n <= nu + 1) {
    // The merge window covers the input: one gather, one solve.
    st.direct_solve = true;
    auto all = transport.GatherAll();
    return transport.Finish(
        engine::SolveSampleBasis(problem, all, policy, /*solve_seq=*/0));
  }

  engine::IterationCounters counters{&st.iterations,
                                     &st.successful_iterations,
                                     &st.direct_solve, &st.sample_bytes};
  return engine::RunRefinement(problem, transport, policy, counters);
}

}  // namespace det
}  // namespace lplow

#endif  // LPLOW_MODELS_DETERMINISTIC_DETERMINISTIC_SOLVER_H_

// SolveDeterministic is a header template (deterministic_solver.h).

#include "src/models/deterministic/deterministic_solver.h"

namespace lplow {
namespace det {
// (Intentionally empty.)
}  // namespace det
}  // namespace lplow

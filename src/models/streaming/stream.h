// The multi-pass streaming model: a constraint sequence that can only be
// scanned front-to-back, with pass accounting. Algorithms never index into
// the data; everything they retain between items counts against their space
// budget (tracked by the solver's SpaceMeter).

#ifndef LPLOW_MODELS_STREAMING_STREAM_H_
#define LPLOW_MODELS_STREAMING_STREAM_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "src/util/logging.h"

namespace lplow {
namespace stream {

/// Abstract one-way scan over a constraint sequence.
template <typename C>
class ConstraintStream {
 public:
  virtual ~ConstraintStream() = default;

  /// Rewinds to the beginning, starting a new pass.
  void Reset() {
    ++passes_started_;
    DoReset();
  }

  /// Next item, or nullopt at end of stream.
  virtual std::optional<C> Next() = 0;

  /// Number of items (known up front in our workloads; a solver that should
  /// not rely on it can spend a counting pass instead).
  virtual size_t size() const = 0;

  /// Passes started so far (the streaming cost measure of Theorem 1).
  size_t passes_started() const { return passes_started_; }

 protected:
  virtual void DoReset() = 0;

 private:
  size_t passes_started_ = 0;
};

/// In-memory vector-backed stream (the workload generators produce these).
template <typename C>
class VectorStream final : public ConstraintStream<C> {
 public:
  explicit VectorStream(std::vector<C> items) : items_(std::move(items)) {}

  std::optional<C> Next() override {
    if (pos_ >= items_.size()) return std::nullopt;
    return items_[pos_++];
  }

  size_t size() const override { return items_.size(); }

  const std::vector<C>& items() const { return items_; }

 protected:
  void DoReset() override { pos_ = 0; }

 private:
  std::vector<C> items_;
  size_t pos_ = 0;
};

/// Generator-backed stream: items are produced on demand by a factory
/// f(index) — lets benchmarks stream n >> memory constraints without
/// materializing them.
template <typename C>
class GeneratorStream final : public ConstraintStream<C> {
 public:
  GeneratorStream(size_t n, std::function<C(size_t)> gen)
      : n_(n), gen_(std::move(gen)) {}

  std::optional<C> Next() override {
    if (pos_ >= n_) return std::nullopt;
    return gen_(pos_++);
  }

  size_t size() const override { return n_; }

 protected:
  void DoReset() override { pos_ = 0; }

 private:
  size_t n_;
  std::function<C(size_t)> gen_;
  size_t pos_ = 0;
};

/// Tracks the peak number of constraints (and their serialized bytes) a
/// streaming algorithm holds at once — the space measure of Theorem 1.
class SpaceMeter {
 public:
  void Acquire(size_t items, size_t bytes) {
    current_items_ += items;
    current_bytes_ += bytes;
    peak_items_ = std::max(peak_items_, current_items_);
    peak_bytes_ = std::max(peak_bytes_, current_bytes_);
  }
  void Release(size_t items, size_t bytes) {
    LPLOW_CHECK_GE(current_items_, items);
    LPLOW_CHECK_GE(current_bytes_, bytes);
    current_items_ -= items;
    current_bytes_ -= bytes;
  }

  size_t peak_items() const { return peak_items_; }
  size_t peak_bytes() const { return peak_bytes_; }
  size_t current_items() const { return current_items_; }

 private:
  size_t current_items_ = 0;
  size_t current_bytes_ = 0;
  size_t peak_items_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace stream
}  // namespace lplow

#endif  // LPLOW_MODELS_STREAMING_STREAM_H_

// Streaming-model templates live in the headers; this file anchors the
// module in the library build.

#include "src/models/streaming/stream.h"

namespace lplow {
namespace stream {
// (Intentionally empty.)
}  // namespace stream
}  // namespace lplow

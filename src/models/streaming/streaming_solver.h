// Theorem 1: the multi-pass streaming implementation of Algorithm 1.
//
// The iteration scheme (sample -> basis -> violator scan -> reweight, the
// eps-net success test, the iteration-cap fallback) lives in the shared
// engine (src/engine/refinement.h); this file is the streaming *transport*:
// the stream is scanned one pass per iteration (pipelined — see below), the
// weight of a constraint is never stored: it is recomputed on the fly as
// rate^{a}, where a counts the stored successful-iteration bases the
// constraint violates (exactly the proof of Theorem 1), and the eps-net is
// drawn with a one-pass with-replacement weighted reservoir (Chao [14]
// aggregate, src/core/sampling.h).
//
// Pipelining: iteration t's violator scan (against basis B_t) and iteration
// t+1's sample pass are fused into one pass. While B_t's success is unknown
// until the pass ends, both candidate weight functions — with and without
// B_t counted — are available on the fly, so the pass fills two reservoirs
// and keeps the right one afterwards. This gives 1 pass per iteration plus
// the initial sampling pass, matching the paper's O(nu * r) pass bound; a
// simpler 2-passes-per-iteration mode is available for comparison.
//
// Concurrency: the pass itself is inherently sequential (the reservoir
// consumes RNG draws in stream order), but with
// StreamingOptions::runtime.num_threads > 1 the engine runs oversized
// sample bases as runtime::ThreadPool tasks. Results are bit-identical for
// every thread count.

#ifndef LPLOW_MODELS_STREAMING_STREAMING_SOLVER_H_
#define LPLOW_MODELS_STREAMING_STREAMING_SOLVER_H_

#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/core/sampling.h"
#include "src/engine/refinement.h"
#include "src/models/streaming/stream.h"
#include "src/runtime/metrics.h"
#include "src/runtime/site_executor.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {
namespace stream {

struct StreamingOptions {
  int r = 2;
  EpsNetConfig net;
  /// Fuse violation scan and next sample into one pass (paper-faithful).
  bool pipeline = true;
  /// Ablation hooks (experiment E13); 0 = paper values.
  double weight_rate_override = 0;
  double eps_override = 0;
  size_t sample_size_override = 0;
  /// Iteration cap; 0 = automatic (ClarksonIterationCap).
  size_t max_iterations = 0;
  uint64_t seed = 0x57AE4131ULL;
  /// Pool for the engine's oversized basis solves; the default is the
  /// serial reference path. Results are bit-identical for every setting.
  runtime::RuntimeOptions runtime;
};

struct StreamingStats {
  size_t n = 0;
  size_t sample_size = 0;
  size_t passes = 0;
  size_t iterations = 0;
  size_t successful_iterations = 0;
  size_t bases_stored = 0;
  size_t peak_items = 0;   // Peak constraints held simultaneously.
  size_t peak_bytes = 0;   // Their serialized size.
  size_t violation_tests = 0;
  size_t sample_bytes = 0;  // Serialized bytes of all eps-net samples drawn.
  bool direct_solve = false;
  size_t threads = 1;
};

namespace internal {

/// Weight of a constraint under the stored-bases weight function:
/// rate^{#bases violated}. Exponents are capped well below double overflow.
template <LpTypeProblem P>
double OnTheFlyWeight(const P& problem,
                      const std::vector<typename P::Value>& basis_values,
                      const typename P::Constraint& c, double rate,
                      size_t* violation_tests) {
  double w = 1.0;
  for (const auto& v : basis_values) {
    ++*violation_tests;
    if (problem.Violates(v, c)) w *= rate;
  }
  return w;
}

/// The streaming RefinementTransport: the sample for iteration t+1 is drawn
/// by the (optionally pipelined) pass that also scans iteration t's
/// violators; per-item weights are recomputed on the fly from the stored
/// successful bases.
template <LpTypeProblem P>
class StreamingTransport {
 public:
  using Constraint = typename P::Constraint;
  using Value = typename P::Value;

  StreamingTransport(const P& problem, ConstraintStream<Constraint>& input,
                     bool pipeline, Rng& rng, SpaceMeter& space,
                     const engine::RefinementPolicy& policy,
                     StreamingStats& stats)
      : problem_(problem),
        input_(input),
        pipeline_(pipeline),
        rng_(rng),
        space_(space),
        policy_(policy),
        st_(stats),
        base_passes_(input.passes_started()) {}

  Result<std::vector<Constraint>> NextSample() {
    const size_t m = policy_.sample_size;
    if (!initial_pass_done_) {
      // --- initial sampling pass (uniform weights; no bases yet).
      initial_pass_done_ = true;
      MultiChaoReservoir<Constraint> res(m, &rng_);
      input_.Reset();
      while (auto c = input_.Next()) res.Offer(*c, 1.0);
      if (res.empty()) return Status::InvalidArgument("empty stream");
      next_sample_ = res.Samples();
      sample_mem_ = 0;
      for (const auto& c : next_sample_) {
        sample_mem_ += problem_.ConstraintBytes(c);
      }
      space_.Acquire(next_sample_.size(), sample_mem_);
    }
    return std::move(next_sample_);
  }

  engine::ViolatorScan ScanViolators(
      const BasisResult<Value, Constraint>& basis) {
    const size_t m = policy_.sample_size;
    space_.Acquire(basis.basis.size(), BasisBytes(basis.basis));

    // --- violator scan against basis.value fused (optionally) with the
    // next iteration's sampling: two candidate reservoirs, one per outcome
    // of the not-yet-known success test.
    engine::ViolatorScan scan;
    res_no_.emplace(m, &rng_);   // B_t unsuccessful.
    res_yes_.emplace(m, &rng_);  // B_t successful.
    if (pipeline_) {
      space_.Acquire(2 * m, 2 * sample_mem_);  // Two candidate reservoirs.
    } else {
      space_.Acquire(m, sample_mem_);
    }
    input_.Reset();
    while (auto c = input_.Next()) {
      double w = OnTheFlyWeight(problem_, basis_values_, *c, policy_.rate,
                                &st_.violation_tests);
      scan.total_weight += w;
      ++st_.violation_tests;
      bool violates = problem_.Violates(basis.value, *c);
      if (violates) {
        scan.violator_weight += w;
        ++scan.violator_count;
      }
      if (pipeline_) {
        res_no_->Offer(*c, w);
        res_yes_->Offer(*c, violates ? w * policy_.rate : w);
      }
    }
    return scan;
  }

  void OnTerminal() {
    const size_t m = policy_.sample_size;
    space_.Release(pipeline_ ? 2 * m : m, 0);
    res_no_.reset();
    res_yes_.reset();
  }

  void EndIteration(bool success, const BasisResult<Value, Constraint>& basis) {
    const size_t m = policy_.sample_size;
    if (success) {
      basis_values_.push_back(basis.value);
      ++st_.bases_stored;
      // Basis stays resident (accounted at Acquire above).
    } else {
      space_.Release(basis.basis.size(), BasisBytes(basis.basis));
    }

    if (pipeline_) {
      next_sample_ = success ? res_yes_->Samples() : res_no_->Samples();
      space_.Release(2 * m, 2 * sample_mem_);  // Candidates collapse into one.
    } else {
      // Separate sampling pass under the updated weight function.
      MultiChaoReservoir<Constraint> res(m, &rng_);
      input_.Reset();
      while (auto c = input_.Next()) {
        double w = OnTheFlyWeight(problem_, basis_values_, *c, policy_.rate,
                                  &st_.violation_tests);
        res.Offer(*c, w);
      }
      next_sample_ = res.Samples();
      space_.Release(m, sample_mem_);
    }
    res_no_.reset();
    res_yes_.reset();
    sample_mem_ = 0;
    for (const auto& c : next_sample_) {
      sample_mem_ += problem_.ConstraintBytes(c);
    }
  }

  /// Las Vegas fallback (effectively unreachable with sane sample sizes):
  /// read the stream whole.
  std::vector<Constraint> GatherAll() {
    input_.Reset();
    std::vector<Constraint> all;
    all.reserve(st_.n);
    while (auto c = input_.Next()) all.push_back(std::move(*c));
    space_.Acquire(all.size(), 0);
    return all;
  }

  Status IterationCapStatus() {
    // Unreachable today (StreamingOptions has no fallback_to_direct
    // switch), but keep the pass/space accounting intact for when one
    // arrives.
    st_.passes = input_.passes_started() - base_passes_;
    st_.peak_items = space_.peak_items();
    st_.peak_bytes = space_.peak_bytes();
    return Status::Internal("streaming iteration cap reached");
  }

  Result<BasisResult<Value, Constraint>> Finish(
      BasisResult<Value, Constraint> result) {
    st_.passes = input_.passes_started() - base_passes_;
    st_.peak_items = space_.peak_items();
    st_.peak_bytes = space_.peak_bytes();
    auto& metrics = runtime::MetricsRegistry::Global();
    metrics.GetCounter("streaming.passes")->Increment(st_.passes);
    metrics.GetCounter("streaming.iterations")->Increment(st_.iterations);
    return result;
  }

 private:
  size_t BasisBytes(const std::vector<Constraint>& b) {
    size_t total = 0;
    for (const auto& c : b) total += problem_.ConstraintBytes(c);
    return total;
  }

  const P& problem_;
  ConstraintStream<Constraint>& input_;
  bool pipeline_;
  Rng& rng_;
  SpaceMeter& space_;
  const engine::RefinementPolicy& policy_;
  StreamingStats& st_;
  size_t base_passes_;
  bool initial_pass_done_ = false;
  std::vector<Constraint> next_sample_;
  size_t sample_mem_ = 0;
  // Stored successful-basis values (the weight function of the proof of
  // Theorem 1).
  std::vector<Value> basis_values_;
  std::optional<MultiChaoReservoir<Constraint>> res_no_;
  std::optional<MultiChaoReservoir<Constraint>> res_yes_;
};

}  // namespace internal

template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>> SolveStreaming(
    const P& problem, ConstraintStream<typename P::Constraint>& input,
    const StreamingOptions& options, StreamingStats* stats) {
  using Constraint = typename P::Constraint;
  StreamingStats local;
  StreamingStats& st = stats ? *stats : local;
  st = StreamingStats{};

  const size_t n = input.size();
  st.n = n;
  const size_t nu = problem.CombinatorialDimension();

  SpaceMeter space;
  Rng rng(options.seed);

  std::unique_ptr<runtime::ThreadPool> owned_pool;
  runtime::ThreadPool* pool = runtime::ResolvePool(options.runtime, &owned_pool);
  st.threads = pool != nullptr && pool->num_threads() > 1
                   ? pool->num_threads()
                   : 1;

  auto& metrics = runtime::MetricsRegistry::Global();
  metrics.GetCounter("streaming.solves")->Increment();
  runtime::ScopedTimer solve_timer(
      metrics.GetTimer("streaming.solve_seconds"));

  engine::RefinementPolicy policy = engine::MakePolicy(
      problem, n, options.r, options.net, options.eps_override,
      options.weight_rate_override, options.sample_size_override);
  policy.max_iterations = options.max_iterations
                              ? options.max_iterations
                              : ClarksonIterationCap(nu, options.r);
  policy.name = "SolveStreaming";
  policy.pool = pool;
  engine::ApplyRuntimeOptions(policy, options.runtime, options.seed);
  st.sample_size = policy.sample_size;

  internal::StreamingTransport<P> transport(problem, input, options.pipeline,
                                            rng, space, policy, st);

  if (n <= policy.sample_size || n <= nu + 1) {
    // Sample budget covers the stream: read it whole in one pass.
    st.direct_solve = true;
    input.Reset();
    std::vector<Constraint> all;
    all.reserve(n);
    size_t bytes = 0;
    while (auto c = input.Next()) {
      bytes += problem.ConstraintBytes(*c);
      all.push_back(std::move(*c));
    }
    space.Acquire(all.size(), bytes);
    return transport.Finish(problem.SolveBasis(
        std::span<const Constraint>(all)));
  }

  engine::IterationCounters counters{&st.iterations,
                                     &st.successful_iterations,
                                     &st.direct_solve, &st.sample_bytes};
  return engine::RunRefinement(problem, transport, policy, counters);
}

}  // namespace stream
}  // namespace lplow

#endif  // LPLOW_MODELS_STREAMING_STREAMING_SOLVER_H_
